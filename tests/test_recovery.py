"""Elastic in-run failure recovery (``repro.distributed.recovery``).

The contract under test: a seeded hard crash mid-sweep, under
``CommConfig.recovery`` in ``{"respawn", "shrink"}``, completes the
run with factors *bit-identical* to the fault-free baseline, on both
transport wires, leaving no shm residue — plus unit coverage for the
pieces (buddy replication, revoke-and-agree, the shrink host-map, the
hosted-rank equivalence that makes shrink bit-identical, and the
satellite behaviors: tcp connect cause chains and ``repro resume``
validation).
"""

import glob
import socket

import numpy as np
import pytest

import repro.cli as cli
from repro.core.errors import CheckpointError, ConfigError
from repro.core.hooi import HOOIOptions
from repro.core.rank_adaptive import RankAdaptiveOptions
from repro.distributed.checkpoint import SweepCheckpoint
from repro.distributed.mp_hooi import mp_hooi_dt, mp_rahosi_dt
from repro.distributed.mp_sthosvd import mp_sthosvd
from repro.distributed.recovery import (
    RecoveryEvent,
    run_elastic,
    shrink_host_map,
)
from repro.vmpi.faults import FaultPlan
from repro.vmpi.mp_comm import (
    CommConfig,
    ProcessComm,
    RankFailureError,
    run_spmd,
)
from repro.vmpi.transport import TransportClosedError, WorldRevokedError


def _shm_residue() -> list[str]:
    return glob.glob("/dev/shm/mpx*")


def _assert_tucker_equal(a, b) -> None:
    np.testing.assert_array_equal(a.core, b.core)
    assert len(a.factors) == len(b.factors)
    for u, v in zip(a.factors, b.factors):
        np.testing.assert_array_equal(u, v)


# ---------------------------------------------------------------------------
# the acceptance bar: crash mid-sweep, recover, bit-identical factors
# ---------------------------------------------------------------------------


class TestElasticBitIdentity:
    """Seeded ``crash(hard=True)`` mid-sweep into mp_hooi_dt on both
    wires, both policies — factors must equal the fault-free run's."""

    _OPTS = HOOIOptions(max_iters=3, seed=1)

    @pytest.fixture(scope="class")
    def x(self):
        return np.random.default_rng(0).standard_normal((8, 9, 7))

    @pytest.fixture(scope="class")
    def baseline(self, x):
        tucker, _ = mp_hooi_dt(x, (3, 3, 2), (2, 2, 1), self._OPTS)
        return tucker

    @pytest.mark.parametrize("policy", ["respawn", "shrink"])
    def test_hard_crash_mid_sweep(self, backend, policy, x, baseline):
        cfg = CommConfig(
            fault_plan=FaultPlan.kill(1, op_index=11),
            recovery=policy,
            collective_timeout=15.0,
        )
        tucker, stats = mp_hooi_dt(
            x, (3, 3, 2), (2, 2, 1), self._OPTS,
            comm_config=cfg, transport=backend,
        )
        _assert_tucker_equal(tucker, baseline)
        (event,) = stats.recovery_events
        assert isinstance(event, RecoveryEvent)
        assert event.policy == policy
        assert event.failed == (1,)
        assert event.relaunch_seconds > 0
        assert "rank 1" in event.source
        assert _shm_residue() == []

    def test_late_sweep_crash_resumes_mid_run(self, x, baseline):
        # op 40 lands in sweep 3 of 3: the continuation must restart
        # from the iteration-2 buddy replica, not from scratch.
        cfg = CommConfig(
            fault_plan=FaultPlan.kill(2, op_index=40),
            recovery="shrink",
            collective_timeout=15.0,
        )
        tucker, stats = mp_hooi_dt(
            x, (3, 3, 2), (2, 2, 1),
            HOOIOptions(max_iters=4, seed=1), comm_config=cfg,
        )
        base4, _ = mp_hooi_dt(
            x, (3, 3, 2), (2, 2, 1), HOOIOptions(max_iters=4, seed=1)
        )
        _assert_tucker_equal(tucker, base4)
        (event,) = stats.recovery_events
        assert event.resumed_iteration == 2

    def test_soft_crash_recovers_too(self, x, baseline):
        cfg = CommConfig(
            fault_plan=FaultPlan.kill(1, op_index=11, hard=False),
            recovery="respawn",
            collective_timeout=15.0,
        )
        tucker, stats = mp_hooi_dt(
            x, (3, 3, 2), (2, 2, 1), self._OPTS, comm_config=cfg
        )
        _assert_tucker_equal(tucker, baseline)
        assert stats.recovery_events[0].failed == (1,)

    def test_overlap_crash_recovers(self, x, baseline):
        # Satellite: peer death while the prefetch pipeline is armed —
        # recovery must still converge (no leaked in-flight slot).
        cfg = CommConfig(
            fault_plan=FaultPlan.kill(1, op_index=11),
            recovery="respawn",
            overlap=True,
            eager_max_words=64,
            collective_timeout=15.0,
        )
        tucker, _ = mp_hooi_dt(
            x, (3, 3, 2), (2, 2, 1), self._OPTS, comm_config=cfg
        )
        _assert_tucker_equal(tucker, baseline)

    def test_restart_policy_still_raises(self, x):
        cfg = CommConfig(
            fault_plan=FaultPlan.kill(1, op_index=11),
            collective_timeout=10.0,
        )
        with pytest.raises(RankFailureError):
            mp_hooi_dt(
                x, (3, 3, 2), (2, 2, 1), self._OPTS, comm_config=cfg
            )


class TestElasticOtherDrivers:
    def test_sthosvd_respawn(self, small3):
        base = mp_sthosvd(small3, (2, 1, 2), ranks=(3, 3, 2))
        cfg = CommConfig(
            fault_plan=FaultPlan.kill(1, op_index=6),
            recovery="respawn",
            collective_timeout=15.0,
        )
        out = mp_sthosvd(
            small3, (2, 1, 2), ranks=(3, 3, 2), comm_config=cfg
        )
        _assert_tucker_equal(out, base)

    def test_rahosi_shrink(self, small3):
        opts = RankAdaptiveOptions(seed=3, max_iters=4)
        base, _ = mp_rahosi_dt(small3, 0.4, (2, 2, 2), (2, 2, 1), opts)
        cfg = CommConfig(
            fault_plan=FaultPlan.kill(3, op_index=25),
            recovery="shrink",
            collective_timeout=15.0,
        )
        out, stats = mp_rahosi_dt(
            small3, 0.4, (2, 2, 2), (2, 2, 1), opts, comm_config=cfg
        )
        _assert_tucker_equal(out, base)
        # RNG state rode the replica: the resumed expand_factor draws
        # matched the uninterrupted run's (asserted by bit-identity),
        # and the recovery resumed from a post-growth boundary.
        assert stats.recovery_events[0].resumed_iteration >= 1


# ---------------------------------------------------------------------------
# pieces: replication, agreement, host_map, run_elastic policies
# ---------------------------------------------------------------------------


def _prog_replicate(comm: ProcessComm) -> tuple:
    """Replicate one boundary, return what this rank holds."""
    ck = SweepCheckpoint(
        algorithm="unit",
        iteration=5,
        shape=(4,),
        grid_dims=(comm.size,),
        ranks=(2,),
        factors=[np.full((4, 2), float(comm.rank))],
        extra={"world_size": comm.size, "backend": comm._t.kind},
    )
    mgr = comm.recovery_mgr
    mgr.replicate(ck)
    replica = SweepCheckpoint.from_bytes(mgr.replica_bytes)
    return mgr.buddy, mgr.protects, mgr.iteration, replica.factors[0][0, 0]


def _prog_agree(comm: ProcessComm) -> object:
    """Rank 2 dies hard; survivors revoke, agree, self-extract (the
    raised revoke routes each one through its RecoveryManager)."""
    if comm.rank == 2:
        import os

        os._exit(77)
    raise WorldRevokedError("unit: peer death", failed=(2,))


def _prog_revoke_all(comm: ProcessComm, _resume) -> None:
    raise WorldRevokedError("unit: always fails", failed=())


def _prog_hosted(comm: ProcessComm, blocks, shape) -> tuple:
    """The mp_hooi rank program with the same knobs mp_hooi_dt passes
    for ``HOOIOptions(max_iters=2, seed=1)`` (tree on, subspace LLSV)."""
    from repro.distributed.mp_hooi import _hooi_rank_program

    return _hooi_rank_program(
        comm, blocks, (2, 2, 1), shape, (3, 3, 2),
        True, "half", True, 1, 2, 1, "", None, None, None,
    )


class TestRecoveryPieces:
    def test_buddy_ring_replication(self, backend):
        cfg = CommConfig(recovery="respawn", collective_timeout=15.0)
        outs = run_spmd(
            _prog_replicate, 3, config=cfg, transport=backend
        )
        for rank, (buddy, protects, it, val) in enumerate(outs):
            assert buddy == (rank + 1) % 3
            assert protects == (rank - 1) % 3
            assert it == 5
            # the replica this rank holds is its predecessor's state
            assert val == float(protects)

    def test_buddy_offset_two(self):
        cfg = CommConfig(
            recovery="respawn", buddy_offset=2, collective_timeout=15.0
        )
        outs = run_spmd(_prog_replicate, 5, config=cfg)
        for rank, (buddy, protects, _, val) in enumerate(outs):
            assert buddy == (rank + 2) % 5
            assert val == float(protects) == float((rank - 2) % 5)

    def test_agreement_converges(self):
        cfg = CommConfig(
            recovery="respawn",
            collective_timeout=10.0,
            agree_timeout=1.0,
        )
        with pytest.raises(RankFailureError) as err:
            run_spmd(_prog_agree, 4, config=cfg)
        reports = err.value.recovery_reports
        # every survivor self-extracted with the same failed set
        assert sorted(reports) == [0, 1, 3]
        assert all(rep["failed"] == [2] for rep in reports.values())
        assert err.value.failed_ranks == (2,)

    def test_shrink_host_map_merges_into_buddy(self):
        hm = shrink_host_map(None, {1}, 4)
        assert hm == [[0], [2, 1], [3]]
        # sequential second failure: the orphan walks past dead hosts
        hm2 = shrink_host_map(hm, {2, 1}, 4)
        assert hm2 == [[0], [3, 1, 2]]

    def test_shrink_host_map_all_dead_raises(self):
        with pytest.raises(RankFailureError):
            shrink_host_map([[0, 1]], {0}, 2)

    def test_hosted_ranks_bit_identical(self, small3):
        # The theorem shrink relies on: running 4 logical ranks on 2
        # processes (threads) is bit-identical to 4 processes.
        base, _ = mp_hooi_dt(
            small3, (3, 3, 2), (2, 2, 1), HOOIOptions(max_iters=2, seed=1)
        )
        from repro.distributed.mp_hooi import _scatter_blocks
        from repro.vmpi.grid import ProcessorGrid

        blocks = _scatter_blocks(small3, ProcessorGrid((2, 2, 1)))
        outs = run_spmd(
            _prog_hosted, 4, blocks, tuple(small3.shape),
            host_map=[[0, 2], [1, 3]],
            config=CommConfig(collective_timeout=15.0),
        )
        core, factors, _ = outs[0]
        np.testing.assert_array_equal(core, base.core)
        for u, v in zip(factors, base.factors):
            np.testing.assert_array_equal(u, v)

    def test_host_map_validation(self):
        with pytest.raises(ValueError, match="host_map"):
            run_spmd(_prog_replicate, 3, host_map=[[0, 1]])
        with pytest.raises(ValueError, match="host_map"):
            run_spmd(
                _prog_replicate, 2, host_map=[[0], [1]],
                transport="star",
            )

    def test_run_elastic_without_replicas_reraises(self):
        # Survivor reports exist but no boundary was ever replicated
        # (iteration -1, no blob): run_elastic must re-raise rather
        # than resume from nothing.
        with pytest.raises(RankFailureError):
            run_elastic(
                _prog_revoke_all, 2, None, resume_slot=1,
                config=CommConfig(
                    recovery="respawn",
                    collective_timeout=5.0,
                    agree_timeout=0.5,
                ),
                timeout=60.0,
            )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="recovery"):
            run_spmd(
                _prog_replicate, 2,
                config=CommConfig(recovery="migrate"),
            )


# ---------------------------------------------------------------------------
# satellites: tcp connect cause chain, resume validation
# ---------------------------------------------------------------------------


class TestTcpConnectBackoff:
    def test_refused_connect_raises_closed_with_cause(self):
        from repro.vmpi.transport import TcpSocketTransport

        # A listener that never accepts mesh peers: bind and close, so
        # connects are refused for the whole (short) window.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        addr = probe.getsockname()[:2]
        probe.close()

        import time

        t = TcpSocketTransport.__new__(TcpSocketTransport)
        t.rank = 0
        t._config = CommConfig(tcp_connect_timeout=0.6)
        with pytest.raises(TransportClosedError) as err:
            t._connect_retry(addr, time.monotonic() + 0.6)
        assert "could not connect" in str(err.value)
        assert isinstance(err.value.__cause__, OSError)


class TestResumeValidation:
    def _checkpoint(self, tmp_path, **extra):
        ck = SweepCheckpoint(
            algorithm="mp_sthosvd",
            iteration=1,
            shape=(6, 5, 4),
            grid_dims=(2, 1, 1),
            ranks=(3,),
            factors=[np.eye(6)[:, :3]],
            extra=extra,
        )
        path = tmp_path / "ck.npz"
        ck.save(path)
        return path

    def _params(self, tmp_path, grid="2 1 1"):
        p = tmp_path / "params.txt"
        p.write_text(
            "Global dims = 6 5 4\n"
            "Ranks = 3 3 2\n"
            f"Processor grid dims = {grid}\n"
        )
        return p

    def test_grid_mismatch_fails_actionably(self, tmp_path):
        path = self._checkpoint(tmp_path, world_size=2, backend="shm")
        params = self._params(tmp_path, grid="1 2 1")
        with pytest.raises(ConfigError, match="processor grid"):
            cli.resume_main(
                [str(path), "--parameter-file", str(params)]
            )

    def test_backend_mismatch_fails_actionably(self, tmp_path):
        path = self._checkpoint(tmp_path, world_size=2, backend="shm")
        params = self._params(tmp_path)
        with pytest.raises(ConfigError, match="backend"):
            cli.resume_main(
                [
                    str(path), "--parameter-file", str(params),
                    "--backend", "tcp",
                ]
            )

    def test_inconsistent_world_size_fails(self, tmp_path):
        path = self._checkpoint(tmp_path, world_size=7, backend="shm")
        params = self._params(tmp_path)
        with pytest.raises(ConfigError, match="world size"):
            cli.resume_main(
                [str(path), "--parameter-file", str(params)]
            )

    def test_matching_metadata_resumes(self, tmp_path, small3):
        # End-to-end: a real elastic-format checkpoint (world_size +
        # backend recorded) resumes cleanly through the CLI.
        base = mp_sthosvd(small3, (2, 1, 1), ranks=(3, 3, 2))
        ck_path = tmp_path / "real.npz"
        with pytest.raises(RankFailureError):
            mp_sthosvd(
                small3, (2, 1, 1), ranks=(3, 3, 2),
                checkpoint_path=str(ck_path),
                comm_config=CommConfig(
                    fault_plan=FaultPlan.kill(1, op_index=8),
                    collective_timeout=10.0,
                ),
            )
        ck = SweepCheckpoint.load(ck_path)
        assert ck.extra["world_size"] == 2
        assert ck.extra["backend"] == "shm"
        out = mp_sthosvd(
            small3, (2, 1, 1), ranks=(3, 3, 2),
            resume_from=str(ck_path),
        )
        _assert_tucker_equal(out, base)
