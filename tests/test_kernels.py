"""The native kernels package: parity, edge shapes, backend contract.

``repro.kernels`` is the single TTM/Gram implementation every
execution layer routes through, so its correctness budget is strict:
fuzzed tight-tolerance parity against the retained tensordot/unfold
references, exact bit-identity between the public kernels and
``repro.tensor.ops``, exact Gram symmetry by construction, graceful
zero-extent handling (which the historical unfold path could not do),
and a fully-specified ``REPRO_KERNELS`` selection contract including
the numba-absent fallback.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import kernels
from repro.kernels import gemm, numba_backend
from repro.tensor import ops

NUMBA = numba_backend.AVAILABLE


def _random_tensor(data, *, allow_zero=False, max_d=4):
    rng = np.random.default_rng(data.draw(st.integers(0, 10**6)))
    d = data.draw(st.integers(1, max_d))
    low = 0 if allow_zero else 1
    shape = tuple(int(rng.integers(low, 7)) for _ in range(d))
    dtype = data.draw(st.sampled_from([np.float32, np.float64]))
    x = rng.standard_normal(shape).astype(dtype)
    if data.draw(st.booleans()):
        x = np.asfortranarray(x)
    mode = data.draw(st.integers(0, d - 1))
    return x, mode, rng


def _tol(dtype):
    return {"rtol": 2e-5, "atol": 2e-6} if dtype == np.float32 else {
        "rtol": 1e-12, "atol": 1e-13,
    }


class TestTTMParity:
    @settings(max_examples=80, deadline=None)
    @given(data=st.data())
    def test_matches_tensordot_reference(self, data):
        x, mode, rng = _random_tensor(data)
        r = int(rng.integers(1, 7))
        u = rng.standard_normal((r, x.shape[mode])).astype(x.dtype)
        got = kernels.ttm(x, u, mode)
        ref = gemm.ttm_reference(np.ascontiguousarray(x), u, mode)
        assert got.shape == ref.shape
        assert got.dtype == x.dtype
        assert got.flags.c_contiguous
        np.testing.assert_allclose(got, ref, **_tol(x.dtype))

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_transpose_spelling_is_bit_identical(self, data):
        """``ttm(x, u, m, transpose=True)`` and ``ttm(x, u.T, m)`` hand
        BLAS the identical operand view, so they agree to the bit —
        the equivalence the distributed slab fix relies on."""
        x, mode, rng = _random_tensor(data)
        r = int(rng.integers(1, 7))
        u = rng.standard_normal((x.shape[mode], r)).astype(x.dtype)
        a = kernels.ttm(x, u, mode, transpose=True)
        b = kernels.ttm(x, np.ascontiguousarray(u).T, mode)
        np.testing.assert_array_equal(a, b)

    def test_ops_layer_is_bit_identical(self, rng):
        """The public ``ops.ttm`` delegates here; no drift allowed."""
        x = rng.standard_normal((5, 4, 3))
        u = rng.standard_normal((6, 4))
        for mode, m in ((0, rng.standard_normal((2, 5))), (1, u[:, :4]),
                        (2, rng.standard_normal((2, 3)))):
            np.testing.assert_array_equal(
                ops.ttm(x, m, mode), kernels.ttm(x, m, mode)
            )

    def test_zero_extent_modes(self):
        x = np.zeros((3, 0, 4))
        u = np.zeros((2, 0))
        out = kernels.ttm(x, u, 1)
        assert out.shape == (3, 2, 4)
        np.testing.assert_array_equal(out, np.zeros((3, 2, 4)))
        out = kernels.ttm(x, np.zeros((5, 3)), 0)
        assert out.shape == (5, 0, 4)

    def test_d1_and_d2(self, rng):
        v = rng.standard_normal(6)
        u = rng.standard_normal((3, 6))
        np.testing.assert_allclose(
            kernels.ttm(v, u, 0), u @ v, rtol=1e-13
        )
        m = rng.standard_normal((4, 5))
        np.testing.assert_allclose(
            kernels.ttm(m, u[:, :5], 1), m @ u[:, :5].T, rtol=1e-13
        )

    def test_validation(self):
        x = np.zeros((3, 4))
        with pytest.raises(ValueError):
            kernels.ttm(x, np.zeros((2, 4)), 2)
        with pytest.raises(ValueError):
            kernels.ttm(x, np.zeros(4), 0)
        with pytest.raises(ValueError):
            kernels.ttm(x, np.zeros((2, 5)), 1)


class TestGramParity:
    @settings(max_examples=80, deadline=None)
    @given(data=st.data())
    def test_matches_unfold_reference(self, data):
        x, mode, _ = _random_tensor(data)
        got = kernels.gram(x, mode)
        n = x.shape[mode]
        assert got.shape == (n, n)
        assert got.dtype == x.dtype
        ref = gemm.gram_reference(np.ascontiguousarray(x), mode)
        np.testing.assert_allclose(got, ref, **_tol(x.dtype))

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_exactly_symmetric(self, data):
        """Bitwise symmetry by construction — no symmetrize pass."""
        x, mode, _ = _random_tensor(data)
        g = kernels.gram(x, mode)
        np.testing.assert_array_equal(g, g.T)

    def test_ops_layer_is_bit_identical(self, small3):
        for mode in range(3):
            np.testing.assert_array_equal(
                ops.gram(small3, mode), kernels.gram(small3, mode)
            )

    def test_zero_size_tensor(self):
        """The historical unfold path raised on zero extents (ambiguous
        ``-1`` reshape); the kernels handle them."""
        x = np.zeros((3, 0, 4))
        for mode, n in ((0, 3), (1, 0), (2, 4)):
            g = kernels.gram(x, mode)
            assert g.shape == (n, n)
            np.testing.assert_array_equal(g, np.zeros((n, n)))

    def test_validation(self):
        with pytest.raises(ValueError):
            kernels.gram(np.zeros((2, 2)), -3)


class TestBackendContract:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNELS", raising=False)
        with kernels.use_backend(None) as active:
            assert active == "numpy"
            assert kernels.backend_name() == "numpy"

    def test_unknown_name_warns_and_falls_back(self):
        with pytest.warns(RuntimeWarning, match="not a known"):
            with kernels.use_backend("speedy-mc-speedface") as active:
                assert active == "numpy"

    def test_env_var_is_read(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "numpy")
        with kernels.use_backend(None) as active:
            assert active == "numpy"

    @pytest.mark.skipif(NUMBA, reason="numba importable: no fallback")
    def test_numba_absent_warns_and_falls_back(self):
        with pytest.warns(RuntimeWarning, match="not importable"):
            with kernels.use_backend("numba") as active:
                assert active == "numpy"
        # and the kernels still work afterwards
        x = np.ones((2, 3, 4))
        assert kernels.gram(x, 1).shape == (3, 3)

    @pytest.mark.skipif(not NUMBA, reason="numba not installed")
    def test_numba_selectable(self):
        with kernels.use_backend("numba") as active:
            assert active == "numba"

    def test_use_backend_restores_previous(self):
        before = kernels.set_backend("numpy")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            with kernels.use_backend("nope"):
                pass
        assert kernels.backend_name() == before


@pytest.mark.skipif(not NUMBA, reason="numba not installed")
class TestNumbaBackend:
    """Compiled backend vs the NumPy definition of the kernels."""

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_ttm_parity(self, data):
        x, mode, rng = _random_tensor(data)
        r = int(rng.integers(1, 7))
        u = rng.standard_normal((r, x.shape[mode])).astype(x.dtype)
        with kernels.use_backend("numba"):
            got = kernels.ttm(x, u, mode)
        with kernels.use_backend("numpy"):
            ref = kernels.ttm(x, u, mode)
        np.testing.assert_allclose(got, ref, **_tol(x.dtype))

    @settings(max_examples=40, deadline=None)
    @given(data=st.data())
    def test_gram_parity(self, data):
        x, mode, _ = _random_tensor(data)
        with kernels.use_backend("numba"):
            got = kernels.gram(x, mode)
        with kernels.use_backend("numpy"):
            ref = kernels.gram(x, mode)
        # The pack is structurally identical, so the Gram GEMM sees
        # the same operand: exact agreement expected.
        np.testing.assert_array_equal(got, ref)

    def test_non_float_dtypes_fall_back(self):
        x = np.arange(24, dtype=np.int64).reshape(2, 3, 4)
        u = np.ones((2, 3), dtype=np.int64)
        with kernels.use_backend("numba"):
            out = kernels.ttm(x, u, 1)
        np.testing.assert_array_equal(out, gemm.ttm_apply(x, u, 1))
