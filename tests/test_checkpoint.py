"""Sweep-level checkpoint/restart: format, integrity, and the
kill-and-resume acceptance bar.

The headline guarantee (ISSUE acceptance criteria): kill a rank
mid-sweep with a seeded :class:`FaultPlan`, observe the failure within
seconds with the dead rank's identity and traceback, then resume from
the last checkpoint and obtain factors and core **bit-identical** to an
uninterrupted run — for ``mp_rahosi_dt``, ``mp_hooi_dt`` and
``mp_sthosvd``.
"""

import json
import os
import time

import numpy as np
import pytest

from repro.core.errors import CheckpointError
from repro.core.hooi import HOOIOptions
from repro.core.rank_adaptive import IterationRecord, RankAdaptiveOptions
from repro.distributed.checkpoint import (
    SweepCheckpoint,
    decode_history,
    encode_history,
    tensor_digest,
)
from repro.distributed.mp_hooi import mp_hooi_dt, mp_rahosi_dt
from repro.distributed.mp_sthosvd import mp_sthosvd
from repro.vmpi.faults import FaultPlan
from repro.vmpi.mp_comm import CommConfig, RankFailureError


def _example_checkpoint() -> SweepCheckpoint:
    rng = np.random.default_rng(0)
    return SweepCheckpoint(
        algorithm="mp_hooi_dt",
        iteration=2,
        shape=(8, 7, 6),
        grid_dims=(2, 1, 1),
        ranks=(3, 3, 2),
        factors=[rng.standard_normal((n, r)) for n, r in [(8, 3), (7, 3), (6, 2)]],
        versions=[4, 5, 6],
        rng_state={
            "bit_generator": "PCG64",
            "state": {"state": 2**100 + 7, "inc": 2**90 + 3},
            "has_uint32": 0,
            "uinteger": 0,
        },
        x_digest="abc123",
        extra={"ttm_count": 11, "history": [], "nested": {"a": [1, 2]}},
    )


class TestTensorDigest:
    def test_deterministic(self):
        x = np.arange(24.0).reshape(2, 3, 4)
        assert tensor_digest(x) == tensor_digest(x.copy())

    def test_sensitive_to_values(self):
        x = np.arange(24.0).reshape(2, 3, 4)
        y = x.copy()
        y[0, 0, 0] += 1e-12
        assert tensor_digest(x) != tensor_digest(y)

    def test_sensitive_to_dtype_and_shape(self):
        x = np.arange(6.0)
        assert tensor_digest(x) != tensor_digest(x.astype(np.float32))
        assert tensor_digest(x) != tensor_digest(x.reshape(2, 3))

    def test_noncontiguous_input(self):
        x = np.arange(24.0).reshape(4, 6)
        assert tensor_digest(x[:, ::2]) == tensor_digest(
            np.ascontiguousarray(x[:, ::2])
        )


class TestHistoryCodec:
    def test_roundtrip(self):
        history = [
            IterationRecord(
                iteration=1,
                ranks_used=(2, 2, 2),
                error=0.5,
                satisfied=False,
                storage_size=100,
                seconds=0.1,
            ),
            IterationRecord(
                iteration=2,
                ranks_used=(3, 3, 2),
                error=0.2,
                satisfied=True,
                storage_size=140,
                seconds=0.2,
                truncated_ranks=(2, 2, 2),
                truncated_error=0.25,
                truncated_storage=90,
            ),
        ]
        encoded = encode_history(history)
        json.dumps(encoded)  # must be JSON-able as-is
        assert decode_history(encoded) == history


class TestSweepCheckpointIO:
    def test_save_load_roundtrip(self, tmp_path):
        ck = _example_checkpoint()
        path = ck.save(tmp_path / "ck.npz")
        back = SweepCheckpoint.load(path)
        assert back.algorithm == ck.algorithm
        assert back.iteration == ck.iteration
        assert back.shape == ck.shape
        assert back.grid_dims == ck.grid_dims
        assert back.ranks == ck.ranks
        assert back.versions == ck.versions
        # PCG64 state holds >64-bit ints; they must survive JSON
        assert back.rng_state == ck.rng_state
        assert back.x_digest == ck.x_digest
        assert back.extra == ck.extra
        for a, b in zip(back.factors, ck.factors):
            np.testing.assert_array_equal(a, b)

    def test_atomic_overwrite_leaves_no_temp(self, tmp_path):
        ck = _example_checkpoint()
        path = tmp_path / "ck.npz"
        ck.save(path)
        ck.iteration = 3
        ck.save(path)
        assert os.listdir(tmp_path) == ["ck.npz"]
        assert SweepCheckpoint.load(path).iteration == 3

    def test_non_checkpoint_file_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, data=np.ones(3))
        with pytest.raises(CheckpointError, match="missing header"):
            SweepCheckpoint.load(path)

    def test_garbage_file_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(CheckpointError, match="could not read"):
            SweepCheckpoint.load(path)

    def test_tampered_factor_rejected(self, tmp_path):
        ck = _example_checkpoint()
        path = str(tmp_path / "ck.npz")
        ck.save(path)
        with np.load(path, allow_pickle=False) as data:
            arrays = {k: data[k] for k in data.files}
        arrays["factor0"] = arrays["factor0"].copy()
        arrays["factor0"][0, 0] += 1.0  # silent corruption
        np.savez(path, **arrays)
        with pytest.raises(CheckpointError, match="integrity digest"):
            SweepCheckpoint.load(path)

    def test_tampered_header_rejected(self, tmp_path):
        ck = _example_checkpoint()
        path = str(tmp_path / "ck.npz")
        ck.save(path)
        with np.load(path, allow_pickle=False) as data:
            arrays = {k: data[k] for k in data.files}
        header = json.loads(str(arrays["header"][()]))
        header["iteration"] = 99
        arrays["header"] = np.array(json.dumps(header))
        np.savez(path, **arrays)
        with pytest.raises(CheckpointError, match="integrity digest"):
            SweepCheckpoint.load(path)

    def test_unknown_version_rejected(self, tmp_path):
        ck = _example_checkpoint()
        path = str(tmp_path / "ck.npz")
        ck.save(path)
        with np.load(path, allow_pickle=False) as data:
            arrays = {k: data[k] for k in data.files}
        header = json.loads(str(arrays["header"][()]))
        header["version"] = 999
        arrays["header"] = np.array(json.dumps(header))
        np.savez(path, **arrays)
        with pytest.raises(CheckpointError, match="version 999"):
            SweepCheckpoint.load(path)


class TestDurability:
    """Crash-consistency of ``save()``: torn writes detected, failed
    replaces leave the previous checkpoint intact, and the rename is
    ordered to disk with a directory fsync."""

    def test_torn_write_detected(self, tmp_path):
        ck = _example_checkpoint()
        path = str(tmp_path / "ck.npz")
        ck.save(path)
        data = open(path, "rb").read()
        with open(path, "wb") as fh:
            fh.write(data[: len(data) // 2])  # torn tail
        with pytest.raises(CheckpointError):
            SweepCheckpoint.load(path)

    def test_failed_replace_preserves_previous(self, tmp_path, monkeypatch):
        ck = _example_checkpoint()
        path = str(tmp_path / "ck.npz")
        ck.save(path)

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", boom)
        ck.iteration = 99
        with pytest.raises(CheckpointError, match="could not write"):
            ck.save(path)
        monkeypatch.undo()
        # previous checkpoint intact and loadable, temp cleaned up
        assert os.listdir(tmp_path) == ["ck.npz"]
        assert SweepCheckpoint.load(path).iteration == 2

    def test_failed_write_leaves_no_first_file(self, tmp_path, monkeypatch):
        monkeypatch.setattr(os, "fsync", _raise_enospc)
        ck = _example_checkpoint()
        path = str(tmp_path / "ck.npz")
        with pytest.raises(CheckpointError, match="could not write"):
            ck.save(path)
        monkeypatch.undo()
        assert os.listdir(tmp_path) == []

    def test_directory_fsync_ordered_after_replace(self, tmp_path, monkeypatch):
        import repro.distributed.checkpoint as cp

        events = []
        real_replace = os.replace
        monkeypatch.setattr(
            os,
            "replace",
            lambda s, d: (events.append("replace"), real_replace(s, d))[1],
        )
        monkeypatch.setattr(
            cp, "_fsync_dir", lambda d: events.append(("fsync_dir", d))
        )
        _example_checkpoint().save(tmp_path / "ck.npz")
        assert events == ["replace", ("fsync_dir", str(tmp_path))]


def _raise_enospc(fd):
    raise OSError(28, "No space left on device")


class TestValidateResume:
    def _ck(self):
        return _example_checkpoint()

    def test_matching_config_passes(self):
        self._ck().validate_resume(
            algorithm="mp_hooi_dt",
            shape=(8, 7, 6),
            grid_dims=(2, 1, 1),
            x_digest="abc123",
        )

    def test_wrong_algorithm(self):
        with pytest.raises(CheckpointError, match="written by"):
            self._ck().validate_resume(
                algorithm="mp_sthosvd",
                shape=(8, 7, 6),
                grid_dims=(2, 1, 1),
            )

    def test_wrong_shape(self):
        with pytest.raises(CheckpointError, match="shape"):
            self._ck().validate_resume(
                algorithm="mp_hooi_dt",
                shape=(8, 7, 7),
                grid_dims=(2, 1, 1),
            )

    def test_wrong_grid(self):
        with pytest.raises(CheckpointError, match="grid"):
            self._ck().validate_resume(
                algorithm="mp_hooi_dt",
                shape=(8, 7, 6),
                grid_dims=(1, 2, 1),
            )

    def test_wrong_tensor_digest(self):
        with pytest.raises(CheckpointError, match="digest"):
            self._ck().validate_resume(
                algorithm="mp_hooi_dt",
                shape=(8, 7, 6),
                grid_dims=(2, 1, 1),
                x_digest="different",
            )


class TestKillAndResumeRAHOSI:
    """Acceptance: seeded kill mid-sweep -> fast detection -> resume
    bit-identical, for the rank-adaptive driver."""

    def test_kill_and_resume_bit_identical(self, tmp_path):
        rng = np.random.default_rng(7)
        x = rng.standard_normal((8, 7, 6))
        opts = RankAdaptiveOptions(max_iters=3, seed=0)
        run = dict(timeout=120)

        clean, s_clean = mp_rahosi_dt(x, 0.3, (1, 1, 1), (2, 1, 1), opts, **run)
        n_ops = len(s_clean.trace.records)
        assert n_ops > 10

        ck = str(tmp_path / "ra.npz")
        plan = FaultPlan.kill(1, op_index=n_ops - 1)
        t0 = time.monotonic()
        with pytest.raises(RankFailureError) as ei:
            mp_rahosi_dt(
                x, 0.3, (1, 1, 1), (2, 1, 1), opts,
                checkpoint_path=ck,
                comm_config=CommConfig(fault_plan=plan),
                **run,
            )
        assert time.monotonic() - t0 < 5.0
        assert ei.value.failed_ranks == (1,)
        assert "rank 1" in str(ei.value)
        assert "remote traceback" in str(ei.value)
        assert os.path.exists(ck)

        resumed, s_res = mp_rahosi_dt(
            x, 0.3, (1, 1, 1), (2, 1, 1), opts, resume_from=ck, **run
        )
        np.testing.assert_array_equal(resumed.core, clean.core)
        assert len(resumed.factors) == len(clean.factors)
        for a, b in zip(resumed.factors, clean.factors):
            np.testing.assert_array_equal(a, b)
        # deterministic diagnostics line up too (seconds excluded)
        assert [h.iteration for h in s_res.history] == [
            h.iteration for h in s_clean.history
        ]
        assert [h.ranks_used for h in s_res.history] == [
            h.ranks_used for h in s_clean.history
        ]
        assert [h.error for h in s_res.history] == [
            h.error for h in s_clean.history
        ]
        assert s_res.converged == s_clean.converged


class TestKillAndResumeSTHOSVD:
    """Acceptance: same bar for the d=4 STHOSVD driver."""

    def test_kill_and_resume_bit_identical(self, tmp_path):
        rng = np.random.default_rng(11)
        x = rng.standard_normal((6, 5, 4, 4))
        kwargs = dict(ranks=(3, 3, 2, 2), timeout=120)

        clean = mp_sthosvd(x, (2, 1, 1, 1), **kwargs)

        ck = str(tmp_path / "st.npz")
        # 3 collectives per mode: op 11 lands mid-mode-3, after the
        # mode-2 checkpoint.
        plan = FaultPlan.kill(1, op_index=11)
        t0 = time.monotonic()
        with pytest.raises(RankFailureError) as ei:
            mp_sthosvd(
                x, (2, 1, 1, 1),
                checkpoint_path=ck,
                comm_config=CommConfig(fault_plan=plan),
                **kwargs,
            )
        assert time.monotonic() - t0 < 5.0
        assert ei.value.failed_ranks == (1,)
        assert "remote traceback" in str(ei.value)
        assert os.path.exists(ck)
        assert SweepCheckpoint.load(ck).algorithm == "mp_sthosvd"

        resumed = mp_sthosvd(x, (2, 1, 1, 1), resume_from=ck, **kwargs)
        np.testing.assert_array_equal(resumed.core, clean.core)
        for a, b in zip(resumed.factors, clean.factors):
            np.testing.assert_array_equal(a, b)


class TestKillAndResumeHOOI:
    def test_kill_and_resume_bit_identical(self, tmp_path):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((8, 7, 6))
        opts = HOOIOptions(max_iters=3)
        ranks = (3, 3, 2)

        clean, s_clean = mp_hooi_dt(x, ranks, (2, 1, 1), opts, timeout=120)
        n_ops = len(s_clean.trace.records)

        ck = str(tmp_path / "hooi.npz")
        plan = FaultPlan.kill(0, op_index=n_ops - 1)
        with pytest.raises(RankFailureError) as ei:
            mp_hooi_dt(
                x, ranks, (2, 1, 1), opts,
                checkpoint_path=ck,
                comm_config=CommConfig(fault_plan=plan),
                timeout=120,
            )
        assert ei.value.failed_ranks == (0,)
        assert os.path.exists(ck)

        resumed, s_res = mp_hooi_dt(
            x, ranks, (2, 1, 1), opts, resume_from=ck, timeout=120
        )
        np.testing.assert_array_equal(resumed.core, clean.core)
        for a, b in zip(resumed.factors, clean.factors):
            np.testing.assert_array_equal(a, b)
        # counters are restored from the checkpoint, so the resumed
        # run's diagnostics equal the uninterrupted run's
        assert s_res.per_iteration_ttms == s_clean.per_iteration_ttms

    def test_checkpoint_only_after_non_final_iterations(self, tmp_path):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((6, 5, 4))
        ck = str(tmp_path / "hooi.npz")
        mp_hooi_dt(
            x, (2, 2, 2), (2, 1, 1), HOOIOptions(max_iters=2),
            checkpoint_path=ck, timeout=120,
        )
        back = SweepCheckpoint.load(ck)
        assert back.algorithm == "mp_hooi_dt"
        assert back.iteration == 1  # iteration 2 is final: never written
        assert back.ranks == (2, 2, 2)
        assert back.x_digest == tensor_digest(x)

    def test_resume_guard_rails(self, tmp_path):
        rng = np.random.default_rng(3)
        x = rng.standard_normal((6, 5, 4))
        ck = str(tmp_path / "hooi.npz")
        opts = HOOIOptions(max_iters=2)
        mp_hooi_dt(x, (2, 2, 2), (2, 1, 1), opts, checkpoint_path=ck, timeout=120)

        # different input tensor, same shape
        y = x + 1.0
        with pytest.raises(CheckpointError, match="digest"):
            mp_hooi_dt(y, (2, 2, 2), (2, 1, 1), opts, resume_from=ck, timeout=120)
        # mismatched target ranks
        with pytest.raises(CheckpointError, match="ranks"):
            mp_hooi_dt(x, (3, 2, 2), (2, 1, 1), opts, resume_from=ck, timeout=120)
        # nothing left to resume
        with pytest.raises(CheckpointError, match="nothing to resume"):
            mp_hooi_dt(
                x, (2, 2, 2), (2, 1, 1), HOOIOptions(max_iters=1),
                resume_from=ck, timeout=120,
            )
        # wrong driver for the checkpoint
        with pytest.raises(CheckpointError, match="written by"):
            mp_sthosvd(x, (2, 1, 1), ranks=(2, 2, 2), resume_from=ck, timeout=120)

    def test_orthogonality_guard_is_invisible_when_healthy(self):
        rng = np.random.default_rng(5)
        x = rng.standard_normal((6, 5, 4))
        opts = HOOIOptions(max_iters=2)
        plain, _ = mp_hooi_dt(x, (2, 2, 2), (2, 1, 1), opts, timeout=120)
        guarded, _ = mp_hooi_dt(
            x, (2, 2, 2), (2, 1, 1), opts,
            orthogonality_tol=1e-6, timeout=120,
        )
        np.testing.assert_array_equal(plain.core, guarded.core)
        for a, b in zip(plain.factors, guarded.factors):
            np.testing.assert_array_equal(a, b)
