"""Sequential HOOI and its variants (Alg. 2 + options)."""

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.core.hooi import HOOIOptions, VARIANTS, hooi, variant_options
from repro.linalg.llsv import LLSVMethod
from repro.tensor.random import random_orthonormal, tucker_plus_noise


@pytest.mark.parametrize("name", sorted(VARIANTS))
def test_all_variants_recover_lowrank(name, lowrank4):
    opts = variant_options(name, max_iters=2, seed=0)
    tucker, stats = hooi(lowrank4, (3, 4, 2, 3), opts)
    assert tucker.ranks == (3, 4, 2, 3)
    assert tucker.relative_error(lowrank4) < 1e-3
    assert stats.iterations == 2


def test_variants_agree(lowrank3):
    errors = {}
    for name in VARIANTS:
        opts = variant_options(name, max_iters=2, seed=1)
        tucker, _ = hooi(lowrank3, (4, 3, 5), opts)
        errors[name] = tucker.relative_error(lowrank3)
    vals = list(errors.values())
    assert max(vals) - min(vals) < 1e-6


def test_error_decreases_monotonically(lowrank3):
    """HOOI is block coordinate descent: the objective never worsens."""
    opts = HOOIOptions(max_iters=5, seed=2)
    _, stats = hooi(lowrank3, (3, 3, 3), opts)
    errs = stats.errors
    assert all(errs[i + 1] <= errs[i] + 1e-12 for i in range(len(errs) - 1))


def test_converges_within_two_iterations(lowrank4):
    """The paper's empirical claim: random init reaches STHOSVD-like
    error in 1-2 iterations on well-conditioned low-rank data."""
    from repro.core.sthosvd import sthosvd

    ref, _ = sthosvd(lowrank4, ranks=(3, 4, 2, 3))
    ref_err = ref.relative_error(lowrank4)
    opts = HOOIOptions(max_iters=2, seed=3)
    tucker, _ = hooi(lowrank4, (3, 4, 2, 3), opts)
    assert tucker.relative_error(lowrank4) <= ref_err * 1.05 + 1e-12


def test_tol_early_stop(lowrank3):
    opts = HOOIOptions(max_iters=50, tol=1e-8, seed=4)
    _, stats = hooi(lowrank3, (4, 3, 5), opts)
    assert stats.converged
    assert stats.iterations < 50


def test_error_identity_consistency(lowrank3):
    opts = HOOIOptions(max_iters=2, seed=5)
    tucker, stats = hooi(lowrank3, (4, 3, 5), opts)
    assert stats.errors[-1] == pytest.approx(
        tucker.relative_error(lowrank3), rel=1e-5, abs=1e-9
    )


def test_explicit_initial_factors(lowrank3):
    rng = np.random.default_rng(6)
    init = [
        random_orthonormal(n, r, seed=rng)
        for n, r in zip(lowrank3.shape, (4, 3, 5))
    ]
    opts = HOOIOptions(init=init, max_iters=1)
    tucker, _ = hooi(lowrank3, (4, 3, 5), opts)
    assert tucker.ranks == (4, 3, 5)


def test_hosvd_init(lowrank3):
    opts = HOOIOptions(init="hosvd", max_iters=1)
    tucker, _ = hooi(lowrank3, (4, 3, 5), opts)
    assert tucker.relative_error(lowrank3) < 1e-3


def test_wrong_init_shape_rejected(lowrank3):
    init = [np.zeros((4, 4))] * 3
    with pytest.raises(ConfigError):
        hooi(lowrank3, (4, 3, 5), HOOIOptions(init=init))


def test_wrong_init_count_rejected(lowrank3):
    rng = np.random.default_rng(7)
    init = [random_orthonormal(lowrank3.shape[0], 4, seed=rng)]
    with pytest.raises(ConfigError):
        hooi(lowrank3, (4, 3, 5), HOOIOptions(init=init))


def test_unknown_init_scheme(lowrank3):
    with pytest.raises(ConfigError):
        hooi(lowrank3, (4, 3, 5), HOOIOptions(init="identity"))


def test_unknown_variant_name():
    with pytest.raises(ConfigError):
        variant_options("hooi-xl")


def test_variant_overrides():
    opts = variant_options("hosi-dt", max_iters=7)
    assert opts.max_iters == 7
    assert opts.use_dimension_tree
    assert opts.llsv_method is LLSVMethod.SUBSPACE


def test_invalid_options():
    with pytest.raises(ConfigError):
        HOOIOptions(max_iters=0)
    with pytest.raises(ConfigError):
        HOOIOptions(n_subspace_iters=0)
    with pytest.raises(ConfigError):
        HOOIOptions(llsv_method=LLSVMethod.RANDOMIZED)


def test_invalid_ranks(lowrank3):
    with pytest.raises(ValueError):
        hooi(lowrank3, (99, 3, 5))


def test_full_rank_is_exact(small3):
    opts = HOOIOptions(max_iters=1, seed=8)
    tucker, _ = hooi(small3, small3.shape, opts)
    assert tucker.relative_error(small3) < 1e-10


def test_phase_seconds_recorded(lowrank3):
    opts = HOOIOptions(max_iters=1, seed=9)
    _, stats = hooi(lowrank3, (4, 3, 5), opts)
    assert stats.phase_seconds["ttm"] > 0
    assert stats.phase_seconds["llsv"] > 0


def test_multiple_subspace_iters(lowrank3):
    opts_1 = HOOIOptions(max_iters=1, n_subspace_iters=1, seed=10)
    opts_3 = HOOIOptions(max_iters=1, n_subspace_iters=3, seed=10)
    t1, s1 = hooi(lowrank3, (4, 3, 5), opts_1)
    t3, s3 = hooi(lowrank3, (4, 3, 5), opts_3)
    # Extra sweeps can only help (or match) within an iteration.
    assert s3.errors[-1] <= s1.errors[-1] + 1e-9
