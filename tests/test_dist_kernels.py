"""Distributed kernels: numerics match sequential; costs follow the
Table 1/2 scalings."""

import numpy as np
import pytest

from repro.distributed.arrays import SymbolicArray
from repro.distributed.dist_tensor import DistTensor
from repro.distributed.kernels import (
    dist_core_analysis_cost,
    dist_gram,
    dist_gram_evd_llsv,
    dist_multi_ttm,
    dist_subspace_llsv,
    dist_ttm,
)
from repro.tensor.ops import gram, multi_ttm, ttm
from repro.tensor.random import random_orthonormal
from repro.vmpi.cost import CostLedger
from repro.vmpi.grid import ProcessorGrid
from repro.vmpi.machine import MachineModel


def _dt(data, dims, machine=None):
    grid = ProcessorGrid(dims)
    return DistTensor(
        data, grid, CostLedger(machine or MachineModel(), grid.size)
    )


class TestDistTTM:
    def test_numerics(self, small3, rng):
        u = rng.standard_normal((small3.shape[0], 2))
        dt = _dt(small3, (2, 1, 2))
        out = dist_ttm(dt, u, 0, transpose=True)
        np.testing.assert_allclose(
            out.data, ttm(small3, u, 0, transpose=True), atol=1e-12
        )

    def test_flops_scale_inverse_p(self, small3, rng):
        u = rng.standard_normal((small3.shape[0], 2))
        f = {}
        for dims in [(1, 1, 1), (2, 1, 2)]:
            dt = _dt(small3, dims)
            dist_ttm(dt, u, 0, transpose=True)
            f[dims] = dt.ledger.phases["ttm"].flops
        # 4 ranks -> roughly a quarter of the per-rank flops (up to
        # uneven-split rounding).
        assert f[(2, 1, 2)] < f[(1, 1, 1)] / 2

    def test_no_comm_when_mode_grid_is_one(self, small3, rng):
        u = rng.standard_normal((small3.shape[0], 2))
        dt = _dt(small3, (1, 2, 2))
        dist_ttm(dt, u, 0, transpose=True)
        assert "ttm_comm" not in dt.ledger.phases

    def test_comm_when_mode_split(self, small3, rng):
        u = rng.standard_normal((small3.shape[0], 2))
        dt = _dt(small3, (2, 1, 1))
        dist_ttm(dt, u, 0, transpose=True)
        assert dt.ledger.phases["ttm_comm"].words > 0

    def test_symbolic_shape(self):
        dt = _dt(SymbolicArray((16, 16, 16)), (2, 2, 1))
        u = SymbolicArray((16, 3))
        out = dist_ttm(dt, u, 1, transpose=True)
        assert out.shape == (16, 3, 16)
        assert not out.concrete
        assert dt.ledger.seconds() > 0

    def test_multi_ttm(self, small4, rng):
        mats = [
            rng.standard_normal((n, 2)) for n in small4.shape
        ]
        dt = _dt(small4, (1, 2, 1, 2))
        out = dist_multi_ttm(dt, mats, skip=1, transpose=True)
        ref = multi_ttm(small4, mats, transpose=True, skip=1)
        # dist_multi_ttm contracts in increasing mode order; result is
        # order-independent.
        np.testing.assert_allclose(out.data, ref, atol=1e-11)


class TestDistGram:
    def test_numerics(self, small3):
        dt = _dt(small3, (2, 2, 1))
        g = dist_gram(dt, 0)
        np.testing.assert_allclose(g, gram(small3, 0), atol=1e-10)

    def test_redistribute_free_when_mode_grid_one(self, small3):
        dt = _dt(small3, (1, 2, 2))
        dist_gram(dt, 0)
        assert "redistribute_comm" not in dt.ledger.phases

    def test_redistribute_charged_when_split(self, small3):
        dt = _dt(small3, (2, 1, 2))
        dist_gram(dt, 0)
        assert dt.ledger.phases["redistribute_comm"].words > 0

    def test_allreduce_words_scale_with_n_squared(self):
        words = {}
        for n in (8, 16):
            dt = _dt(SymbolicArray((n, n, n)), (2, 2, 1))
            dist_gram(dt, 0)
            words[n] = dt.ledger.phases["gram_comm"].words
        assert words[16] == pytest.approx(4 * words[8])


class TestDistGramEVDLLSV:
    def test_matches_sequential(self, lowrank3):
        from repro.linalg.llsv import LLSVMethod, llsv

        dt = _dt(lowrank3, (2, 1, 2))
        factor, spec = dist_gram_evd_llsv(dt, 0, rank=4)
        ref = llsv(lowrank3, 0, rank=4, method=LLSVMethod.GRAM_EVD)
        np.testing.assert_allclose(
            factor @ factor.T, ref.factor @ ref.factor.T, atol=1e-8
        )
        np.testing.assert_allclose(
            spec, ref.sq_singular_values, rtol=1e-8
        )

    def test_evd_charged_sequentially(self, lowrank3):
        """The EVD charge must be identical at P=1 and P=4 — it does
        not parallelize (the STHOSVD bottleneck)."""
        secs = {}
        for dims in [(1, 1, 1), (2, 2, 1)]:
            dt = _dt(lowrank3, dims)
            dist_gram_evd_llsv(dt, 0, rank=4)
            secs[dims] = dt.ledger.seconds("evd")
        assert secs[(1, 1, 1)] == pytest.approx(secs[(2, 2, 1)])

    def test_threshold_selection(self, lowrank3):
        dt = _dt(lowrank3, (1, 1, 1))
        norm_sq = np.linalg.norm(lowrank3) ** 2
        factor, _ = dist_gram_evd_llsv(dt, 0, threshold_sq=1e-4 * norm_sq)
        assert factor.shape[1] == 4

    def test_symbolic_requires_rank(self):
        dt = _dt(SymbolicArray((8, 8, 8)), (1, 1, 1))
        with pytest.raises(ValueError):
            dist_gram_evd_llsv(dt, 0, threshold_sq=1.0)

    def test_symbolic_factor_shape(self):
        dt = _dt(SymbolicArray((8, 8, 8)), (2, 1, 1))
        factor, spec = dist_gram_evd_llsv(dt, 0, rank=3)
        assert factor.shape == (8, 3)
        assert spec is None

    def test_needs_spec(self, lowrank3):
        dt = _dt(lowrank3, (1, 1, 1))
        with pytest.raises(ValueError):
            dist_gram_evd_llsv(dt, 0)


class TestDistSubspaceLLSV:
    def test_matches_sequential(self, lowrank3):
        from repro.linalg.subspace import subspace_iteration_llsv

        u0 = random_orthonormal(lowrank3.shape[0], 4, seed=0)
        dt = _dt(lowrank3, (2, 1, 2))
        got = dist_subspace_llsv(dt, 0, u0, 4)
        ref = subspace_iteration_llsv(lowrank3, 0, u0, 4)
        np.testing.assert_allclose(got, ref, atol=1e-10)

    def test_qrcp_cheaper_than_evd(self, lowrank3):
        """The §3.4 claim: sequential QRCP is O((n/r)^2) cheaper than
        the sequential EVD."""
        u0 = random_orthonormal(lowrank3.shape[0], 4, seed=1)
        dt_s = _dt(lowrank3, (2, 1, 2))
        dist_subspace_llsv(dt_s, 0, u0, 4)
        dt_g = _dt(lowrank3, (2, 1, 2))
        dist_gram_evd_llsv(dt_g, 0, rank=4)
        assert dt_s.ledger.seconds("qrcp") < dt_g.ledger.seconds("evd")

    def test_rank_exceeds_width(self, lowrank3):
        u0 = random_orthonormal(lowrank3.shape[0], 3, seed=2)
        dt = _dt(lowrank3, (1, 1, 1))
        with pytest.raises(ValueError):
            dist_subspace_llsv(dt, 0, u0, 4)

    def test_symbolic(self):
        dt = _dt(SymbolicArray((16, 12, 10)), (2, 2, 1))
        u0 = SymbolicArray((16, 4))
        out = dist_subspace_llsv(dt, 0, u0, 4)
        assert out.shape == (16, 4)
        assert dt.ledger.seconds("qrcp") > 0
        assert dt.ledger.phases["subspace_comm"].words > 0


class TestCoreAnalysisCost:
    def test_charges_gather_and_analysis(self, rng):
        core = rng.standard_normal((3, 3, 3))
        dt = _dt(core, (2, 1, 2))
        dist_core_analysis_cost(dt)
        assert dt.ledger.phases["core_comm"].words > 0
        assert dt.ledger.phases["core_analysis"].seq_flops > 0
