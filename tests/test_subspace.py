"""Subspace-iteration LLSV (Alg. 5)."""

import numpy as np
import pytest

from repro.linalg.subspace import subspace_iteration_llsv
from repro.tensor.dense import unfold
from repro.tensor.random import random_orthonormal, tucker_plus_noise


def _leading_subspace(x, mode, r):
    u, _, _ = np.linalg.svd(unfold(x, mode), full_matrices=False)
    return u[:, :r]


class TestSubspaceIteration:
    def test_orthonormal_output(self, lowrank3):
        u0 = random_orthonormal(lowrank3.shape[0], 4, seed=0)
        q = subspace_iteration_llsv(lowrank3, 0, u0, 4)
        np.testing.assert_allclose(q.T @ q, np.eye(4), atol=1e-10)

    def test_recovers_leading_subspace_from_good_init(self, lowrank3):
        """Initialized with the exact subspace, one sweep preserves it."""
        u_true = _leading_subspace(lowrank3, 0, 4)
        q = subspace_iteration_llsv(lowrank3, 0, u_true, 4)
        np.testing.assert_allclose(
            q @ q.T, u_true @ u_true.T, atol=1e-6
        )

    def test_captures_energy_from_random_init(self, lowrank3):
        """On a strongly low-rank tensor even one random-start sweep
        captures almost all the unfolding energy."""
        u0 = random_orthonormal(lowrank3.shape[0], 4, seed=1)
        q = subspace_iteration_llsv(lowrank3, 0, u0, 4)
        mat = unfold(lowrank3, 0)
        captured = np.linalg.norm(q.T @ mat) / np.linalg.norm(mat)
        assert captured > 0.99

    def test_multiple_iterations_improve(self, rng):
        # A slowly decaying spectrum where one sweep is not enough.
        x = rng.standard_normal((20, 18, 16))
        u0 = random_orthonormal(20, 5, seed=2)
        mat = unfold(x, 0)
        cap1 = np.linalg.norm(
            subspace_iteration_llsv(x, 0, u0, 5, n_iters=1).T @ mat
        )
        cap50 = np.linalg.norm(
            subspace_iteration_llsv(x, 0, u0, 5, n_iters=50).T @ mat
        )
        best = np.linalg.norm(_leading_subspace(x, 0, 5).T @ mat)
        assert cap50 >= cap1 - 1e-9
        assert cap50 == pytest.approx(best, rel=1e-2)

    def test_rank_smaller_than_width(self, lowrank3):
        u0 = random_orthonormal(lowrank3.shape[0], 6, seed=3)
        q = subspace_iteration_llsv(lowrank3, 0, u0, 4)
        assert q.shape == (lowrank3.shape[0], 4)

    def test_rank_exceeding_width_rejected(self, lowrank3):
        u0 = random_orthonormal(lowrank3.shape[0], 3, seed=4)
        with pytest.raises(ValueError):
            subspace_iteration_llsv(lowrank3, 0, u0, 4)

    def test_wrong_row_count_rejected(self, lowrank3):
        u0 = random_orthonormal(lowrank3.shape[0] + 1, 3, seed=5)
        with pytest.raises(ValueError):
            subspace_iteration_llsv(lowrank3, 0, u0, 3)

    def test_zero_iters_rejected(self, lowrank3):
        u0 = random_orthonormal(lowrank3.shape[0], 3, seed=6)
        with pytest.raises(ValueError):
            subspace_iteration_llsv(lowrank3, 0, u0, 3, n_iters=0)

    def test_pivot_ordering_concentrates_energy(self):
        """QRCP ordering puts higher-energy directions first, so leading
        truncations of the resulting basis capture more energy."""
        x = tucker_plus_noise((24, 20, 18), (6, 6, 6), noise=1e-6, seed=8)
        u0 = random_orthonormal(24, 6, seed=9)
        q = subspace_iteration_llsv(x, 0, u0, 6)
        mat = unfold(x, 0)
        energies = np.linalg.norm(q.T @ mat, axis=1) ** 2
        # Leading column captures the most energy.
        assert energies[0] == pytest.approx(energies.max(), rel=1e-6)
