"""Convergence diagnostics."""

import numpy as np
import pytest

from repro.core.convergence import (
    error_improvement,
    max_factor_movement,
    principal_angles,
    subspace_distance,
)
from repro.tensor.random import random_orthonormal


class TestPrincipalAngles:
    def test_identical_subspaces(self):
        u = random_orthonormal(10, 3, seed=0)
        np.testing.assert_allclose(principal_angles(u, u), 0.0, atol=1e-7)

    def test_orthogonal_subspaces(self):
        u = np.eye(4)[:, :2]
        v = np.eye(4)[:, 2:]
        np.testing.assert_allclose(
            principal_angles(u, v), np.pi / 2, atol=1e-12
        )

    def test_rotation_invariance(self):
        u = random_orthonormal(12, 4, seed=1)
        rng = np.random.default_rng(2)
        q, _ = np.linalg.qr(rng.standard_normal((4, 4)))
        np.testing.assert_allclose(
            principal_angles(u, u @ q), 0.0, atol=1e-7
        )

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            principal_angles(np.eye(3)[:, :1], np.eye(4)[:, :1])

    def test_ascending(self):
        u = random_orthonormal(20, 4, seed=3)
        v = random_orthonormal(20, 4, seed=4)
        a = principal_angles(u, v)
        assert np.all(np.diff(a) >= -1e-12)


class TestSubspaceDistance:
    def test_bounds(self):
        u = random_orthonormal(16, 3, seed=5)
        v = random_orthonormal(16, 3, seed=6)
        d = subspace_distance(u, v)
        assert 0.0 <= d <= 1.0

    def test_extremes(self):
        u = np.eye(4)[:, :2]
        v = np.eye(4)[:, 2:]
        assert subspace_distance(u, u) == pytest.approx(0.0, abs=1e-6)
        assert subspace_distance(u, v) == pytest.approx(1.0)


class TestFactorMovement:
    def test_hooi_factors_settle(self, lowrank3):
        """After the first HOOI iteration the factors barely move —
        the observation behind the single-sweep choice of §3.4."""
        from repro.core.hooi import HOOIOptions
        from repro.core.dimension_tree import (
            SequentialTreeEngine,
            hooi_iteration_dt,
        )
        from repro.linalg.llsv import LLSVMethod

        rng = np.random.default_rng(7)
        ranks = (4, 3, 5)
        factors = [
            random_orthonormal(n, r, seed=rng)
            for n, r in zip(lowrank3.shape, ranks)
        ]
        movements = []
        for _ in range(3):
            before = [u.copy() for u in factors]
            engine = SequentialTreeEngine(
                factors, ranks, llsv_method=LLSVMethod.SUBSPACE
            )
            hooi_iteration_dt(lowrank3, engine)
            factors = engine.factors
            movements.append(max_factor_movement(before, factors))
        # First iteration moves a lot (random init), later ones barely.
        assert movements[0] > 10 * movements[2]

    def test_length_mismatch(self):
        u = random_orthonormal(5, 2, seed=8)
        with pytest.raises(ValueError):
            max_factor_movement([u], [u, u])

    def test_empty(self):
        assert max_factor_movement([], []) == 0.0


def test_error_improvement():
    assert error_improvement([0.5, 0.2, 0.15]) == pytest.approx(
        [0.3, 0.05]
    )
    assert error_improvement([0.5]) == []
