"""Dataset surrogates: structure, determinism, compressibility."""

import numpy as np
import pytest

from repro.core.sthosvd import sthosvd
from repro.datasets import (
    DATASETS,
    hcci_like,
    load_dataset,
    miranda_like,
    smooth_multilinear_field,
    sp_like,
)


class TestSmoothField:
    def test_shape_and_dtype(self):
        x = smooth_multilinear_field((10, 12, 8), seed=0)
        assert x.shape == (10, 12, 8)
        assert x.dtype == np.float64

    def test_deterministic(self):
        a = smooth_multilinear_field((8, 8, 8), seed=3)
        b = smooth_multilinear_field((8, 8, 8), seed=3)
        np.testing.assert_array_equal(a, b)

    def test_seed_changes_output(self):
        a = smooth_multilinear_field((8, 8, 8), seed=3)
        b = smooth_multilinear_field((8, 8, 8), seed=4)
        assert not np.allclose(a, b)

    def test_spectrum_decays(self):
        """The mode-unfolding singular values decay fast — the property
        that makes Tucker compression effective on simulation data."""
        x = smooth_multilinear_field((24, 24, 24), decay=0.7, seed=1)
        from repro.tensor.dense import unfold

        s = np.linalg.svd(unfold(x, 0), compute_uv=False)
        assert s[10] < 1e-2 * s[0]

    def test_smaller_decay_more_compressible(self):
        fast = smooth_multilinear_field(
            (20, 20, 20), decay=0.5, noise=0, seed=2
        )
        slow = smooth_multilinear_field(
            (20, 20, 20), decay=0.95, noise=0, seed=2
        )
        t_fast, _ = sthosvd(fast, eps=0.01)
        t_slow, _ = sthosvd(slow, eps=0.01)
        assert t_fast.storage_size() <= t_slow.storage_size()

    def test_validation(self):
        with pytest.raises(ValueError):
            smooth_multilinear_field((8, 8), num_terms=0)
        with pytest.raises(ValueError):
            smooth_multilinear_field((8, 8), decay=1.5)


class TestSurrogates:
    def test_miranda_shape(self):
        x = miranda_like(24, seed=0)
        assert x.shape == (24, 24, 24)
        assert x.dtype == np.float32

    def test_hcci_shape(self):
        x = hcci_like((16, 16, 5, 12), seed=0)
        assert x.shape == (16, 16, 5, 12)
        assert x.dtype == np.float64

    def test_sp_shape(self):
        x = sp_like((10, 10, 10, 3, 8), seed=0)
        assert x.shape == (10, 10, 10, 3, 8)
        assert x.ndim == 5

    def test_miranda_high_compression_at_eps_point1(self):
        """At eps = 0.1 the surrogate compresses hard (ranks << n),
        matching the paper's high-compression regime."""
        x = miranda_like(48, seed=0).astype(np.float64)
        tucker, _ = sthosvd(x, eps=0.1)
        assert all(r <= 12 for r in tucker.ranks)
        assert tucker.relative_error(x) <= 0.1

    def test_hcci_tolerance_rank_growth(self):
        x = hcci_like((24, 24, 5, 16), seed=0)
        loose, _ = sthosvd(x, eps=0.1)
        tight, _ = sthosvd(x, eps=0.01)
        assert tight.storage_size() >= loose.storage_size()


class TestRegistry:
    def test_all_registered(self):
        assert set(DATASETS) == {"miranda", "hcci", "sp"}

    def test_load_by_name(self):
        x = load_dataset("miranda", n=16, seed=1)
        assert x.shape == (16, 16, 16)

    def test_case_insensitive(self):
        x = load_dataset("MIRANDA", n=8)
        assert x.shape == (8, 8, 8)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("sdss")

    def test_metadata(self):
        spec = DATASETS["sp"]
        assert spec.paper_shape == (500, 500, 500, 11, 400)
        assert spec.paper_cores == 2048
