"""Unified LLSV dispatch."""

import numpy as np
import pytest

from repro.linalg.llsv import LLSVMethod, llsv
from repro.tensor.dense import unfold
from repro.tensor.random import random_orthonormal


def _captured(x, mode, q):
    mat = unfold(x, mode)
    return np.linalg.norm(q.T @ mat) / np.linalg.norm(mat)


class TestDispatch:
    def test_requires_rank_or_threshold(self, lowrank3):
        with pytest.raises(ValueError):
            llsv(lowrank3, 0)

    def test_rank_out_of_range(self, lowrank3):
        with pytest.raises(ValueError):
            llsv(lowrank3, 0, rank=0)
        with pytest.raises(ValueError):
            llsv(lowrank3, 0, rank=lowrank3.shape[0] + 1)

    def test_gram_evd_rank_specified(self, lowrank3):
        res = llsv(lowrank3, 0, rank=4, method=LLSVMethod.GRAM_EVD)
        assert res.factor.shape == (lowrank3.shape[0], 4)
        assert res.rank == 4
        assert res.sq_singular_values is not None
        assert _captured(lowrank3, 0, res.factor) > 0.999

    def test_gram_evd_error_specified(self, lowrank3):
        norm_sq = np.linalg.norm(lowrank3) ** 2
        res = llsv(
            lowrank3, 0, threshold_sq=1e-4 * norm_sq,
            method=LLSVMethod.GRAM_EVD,
        )
        assert res.rank == 4  # the construction rank in mode 0

    def test_lq_svd_matches_gram_evd(self, lowrank3):
        a = llsv(lowrank3, 1, rank=3, method=LLSVMethod.GRAM_EVD).factor
        b = llsv(lowrank3, 1, rank=3, method=LLSVMethod.LQ_SVD).factor
        np.testing.assert_allclose(a @ a.T, b @ b.T, atol=1e-6)

    def test_rank_caps_threshold_choice(self, lowrank3):
        norm_sq = np.linalg.norm(lowrank3) ** 2
        res = llsv(
            lowrank3, 0, rank=2, threshold_sq=1e-6 * norm_sq,
            method=LLSVMethod.GRAM_EVD,
        )
        assert res.rank == 2

    def test_randomized(self, lowrank3):
        res = llsv(lowrank3, 0, rank=4, method=LLSVMethod.RANDOMIZED, seed=0)
        assert res.factor.shape == (lowrank3.shape[0], 4)
        assert _captured(lowrank3, 0, res.factor) > 0.99
        assert res.sq_singular_values is None

    def test_randomized_needs_rank(self, lowrank3):
        with pytest.raises(ValueError):
            llsv(
                lowrank3, 0, threshold_sq=1.0, method=LLSVMethod.RANDOMIZED
            )

    def test_subspace(self, lowrank3):
        u0 = random_orthonormal(lowrank3.shape[0], 4, seed=1)
        res = llsv(
            lowrank3, 0, rank=4, method=LLSVMethod.SUBSPACE, u_prev=u0
        )
        assert res.factor.shape == (lowrank3.shape[0], 4)
        assert _captured(lowrank3, 0, res.factor) > 0.99

    def test_subspace_needs_u_prev(self, lowrank3):
        with pytest.raises(ValueError):
            llsv(lowrank3, 0, rank=4, method=LLSVMethod.SUBSPACE)

    def test_subspace_needs_rank(self, lowrank3):
        u0 = random_orthonormal(lowrank3.shape[0], 4, seed=1)
        with pytest.raises(ValueError):
            llsv(
                lowrank3, 0, threshold_sq=1.0,
                method=LLSVMethod.SUBSPACE, u_prev=u0,
            )

    def test_all_methods_capture_lowrank_energy(self, lowrank4):
        u0 = random_orthonormal(lowrank4.shape[2], 2, seed=2)
        for method in LLSVMethod:
            res = llsv(
                lowrank4, 2, rank=2, method=method, u_prev=u0, seed=3
            )
            assert _captured(lowrank4, 2, res.factor) > 0.99, method
