"""SPMD HOOI ground truth vs sequential implementations."""

import numpy as np
import pytest

from repro.core.hooi import VARIANTS, hooi, variant_options
from repro.distributed.spmd import scatter_tensor
from repro.distributed.spmd_hooi import (
    spmd_gram_evd_llsv,
    spmd_hooi,
    spmd_subspace_llsv,
)
from repro.linalg.subspace import subspace_iteration_llsv
from repro.tensor.random import random_orthonormal
from repro.vmpi.grid import ProcessorGrid


class TestSPMDSubspaceLLSV:
    @pytest.mark.parametrize("dims", [(1, 1, 1), (2, 1, 2), (2, 3, 1)])
    def test_matches_sequential(self, lowrank3, dims):
        u0 = random_orthonormal(lowrank3.shape[0], 4, seed=0)
        grid = ProcessorGrid(dims)
        blocks, layout = scatter_tensor(lowrank3, grid)
        got = spmd_subspace_llsv(blocks, layout, 0, u0, 4)
        ref = subspace_iteration_llsv(lowrank3, 0, u0, 4)
        np.testing.assert_allclose(got @ got.T, ref @ ref.T, atol=1e-8)

    def test_mode_split_grid(self, lowrank3):
        """Splitting the LLSV mode itself exercises the allgather
        redistribution path."""
        u0 = random_orthonormal(lowrank3.shape[1], 3, seed=1)
        grid = ProcessorGrid((1, 3, 2))
        blocks, layout = scatter_tensor(lowrank3, grid)
        got = spmd_subspace_llsv(blocks, layout, 1, u0, 3)
        ref = subspace_iteration_llsv(lowrank3, 1, u0, 3)
        np.testing.assert_allclose(got @ got.T, ref @ ref.T, atol=1e-8)

    def test_multiple_sweeps(self, lowrank3):
        u0 = random_orthonormal(lowrank3.shape[0], 4, seed=2)
        grid = ProcessorGrid((2, 1, 1))
        blocks, layout = scatter_tensor(lowrank3, grid)
        got = spmd_subspace_llsv(blocks, layout, 0, u0, 4, n_iters=3)
        ref = subspace_iteration_llsv(lowrank3, 0, u0, 4, n_iters=3)
        np.testing.assert_allclose(got @ got.T, ref @ ref.T, atol=1e-8)

    def test_rank_exceeds_width(self, lowrank3):
        u0 = random_orthonormal(lowrank3.shape[0], 2, seed=3)
        grid = ProcessorGrid((1, 1, 1))
        blocks, layout = scatter_tensor(lowrank3, grid)
        with pytest.raises(ValueError):
            spmd_subspace_llsv(blocks, layout, 0, u0, 3)


class TestSPMDGramEVD:
    def test_matches_sequential(self, lowrank3):
        from repro.linalg.llsv import LLSVMethod, llsv

        grid = ProcessorGrid((2, 2, 1))
        blocks, layout = scatter_tensor(lowrank3, grid)
        got = spmd_gram_evd_llsv(blocks, layout, 0, 4)
        ref = llsv(lowrank3, 0, rank=4, method=LLSVMethod.GRAM_EVD).factor
        np.testing.assert_allclose(got @ got.T, ref @ ref.T, atol=1e-8)


class TestSPMDHOOI:
    @pytest.mark.parametrize("name", sorted(VARIANTS))
    def test_all_variants_match_sequential(self, lowrank4, name):
        opts = variant_options(name, max_iters=2, seed=7)
        seq, seq_stats = hooi(lowrank4, (3, 4, 2, 3), opts)
        spmd = spmd_hooi(lowrank4, (3, 4, 2, 3), (1, 2, 2, 1), opts)
        assert spmd.ranks == seq.ranks
        assert spmd.relative_error(lowrank4) == pytest.approx(
            seq.relative_error(lowrank4), rel=1e-4, abs=1e-9
        )
        for a, b in zip(seq.factors, spmd.factors):
            np.testing.assert_allclose(a @ a.T, b @ b.T, atol=1e-6)

    def test_grid_invariance(self, lowrank4):
        opts = variant_options("hosi-dt", max_iters=2, seed=8)
        errs = []
        for dims in [(1, 1, 1, 1), (2, 2, 1, 1), (1, 2, 1, 3)]:
            t = spmd_hooi(lowrank4, (3, 4, 2, 3), dims, opts)
            errs.append(t.relative_error(lowrank4))
        assert max(errs) - min(errs) < 1e-8

    def test_matches_simulated_distributed(self, lowrank4):
        """The SPMD ground truth agrees with the semantically-global
        cost simulator for the same configuration."""
        from repro.distributed.hooi import dist_hooi

        opts = variant_options("hosi-dt", max_iters=2, seed=9)
        sim, _ = dist_hooi(lowrank4, (3, 4, 2, 3), (1, 2, 2, 1), options=opts)
        spmd = spmd_hooi(lowrank4, (3, 4, 2, 3), (1, 2, 2, 1), opts)
        assert sim.relative_error(lowrank4) == pytest.approx(
            spmd.relative_error(lowrank4), rel=1e-6, abs=1e-10
        )

    def test_grid_order(self, lowrank4):
        with pytest.raises(ValueError):
            spmd_hooi(lowrank4, (3, 4, 2, 3), (1, 1))
