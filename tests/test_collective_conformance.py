"""Cross-layer collective conformance suite.

One parametrized harness runs every collective (allreduce,
reduce-scatter, allgather, bcast, gather, barrier) across four
execution layers — the peer-to-peer ``mp_comm`` transport on both its
wires (pooled shared memory and TCP sockets; the shm wire in both the
deterministic rank-order algorithms and the tree-ordered power-of-two
ones), the legacy coordinator-star transport, and the in-process
executable block collectives of :mod:`repro.vmpi.collectives` — over
group sizes {1, 2, 3, 4, 7, 8} and payload corners (float32/float64,
integer dtypes, empty arrays, non-contiguous views, 0-d scalars,
ragged allgather extents, extents that do not divide the group size),
asserting *bit-identical* results against a NumPy reference.  The tcp
cases carry the ``transport_matrix`` marker so the CI matrix job can
select them; a dedicated trace-identity test additionally certifies
that shm and tcp produce *identical*
:class:`~repro.vmpi.trace.CollectiveRecord` sequences in every field
except ``shm_messages`` (the one backend-specific counter, zero on
tcp).

Payload values are integer-valued floats, so every summation order is
exact and bit-identity is well-defined for all reduction algorithms.

The divergence tests at the bottom certify the deadlock-safety
guarantee: mismatched collective sequences raise
:class:`~repro.vmpi.mp_comm.CollectiveTimeoutError` (surfaced by
``run_spmd``) instead of hanging the test run.
"""

import dataclasses
import time
from functools import lru_cache

import numpy as np
import pytest

from repro.vmpi.collectives import (
    allgather_blocks,
    allreduce_blocks,
    bcast_block,
    gather_blocks,
    reduce_scatter_blocks,
)
from repro.vmpi.mp_comm import CommConfig, run_spmd

GROUP_SIZES = (1, 2, 3, 4, 7, 8)
TRANSPORTS = (
    "p2p-det",
    "p2p-nondet",
    "star",
    "blocks",
    pytest.param("tcp", marks=pytest.mark.transport_matrix),
)

# Thresholds chosen so one run exercises both allreduce algorithm
# families (payloads of <= 24 words go latency-optimal, larger ones
# bandwidth-optimal) and both transport encodings (payloads of >= 256
# bytes ride shared memory, smaller ones pickle).
_P2P_CONFIG = CommConfig(
    collective_timeout=60.0, shm_min_bytes=256, eager_max_words=24
)


def _payloads(rank: int) -> dict[str, np.ndarray]:
    """Deterministic integer-valued per-rank payloads."""
    rng = np.random.default_rng(1000 + rank)

    def ints(shape, dtype):
        return rng.integers(-8, 9, size=shape).astype(dtype)

    wide = ints((6, 8), np.float64)
    return {
        "f64": ints((3, 4), np.float64),
        "f32": ints((4, 3), np.float32),
        "int64": rng.integers(-8, 9, size=(2, 3)),
        "big": ints((25, 8), np.float64),  # 200 words: long allreduce + shm
        "empty": np.zeros((0, 3), dtype=np.float64),
        "scalar": np.array(float(rng.integers(-8, 9))),
        "noncontig": wide[::2, 1::2],  # 3x4 strided view
        "uneven": ints((7, 2), np.float64),  # extent 7 never divides 2..8
        "ragged": ints((rank + 1, 2), np.float64),  # per-rank extent
    }


# (name, op, payload key, kwargs) — every rank runs these in order.
CASES = [
    ("allreduce-f64", "allreduce", "f64", {}),
    ("allreduce-f32", "allreduce", "f32", {}),
    ("allreduce-int64", "allreduce", "int64", {}),
    ("allreduce-big", "allreduce", "big", {}),
    ("allreduce-empty", "allreduce", "empty", {}),
    ("allreduce-scalar", "allreduce", "scalar", {}),
    ("allreduce-noncontig", "allreduce", "noncontig", {}),
    ("reduce_scatter-axis0", "reduce_scatter", "f64", {"axis": 0}),
    ("reduce_scatter-axis1", "reduce_scatter", "big", {"axis": 1}),
    ("reduce_scatter-uneven", "reduce_scatter", "uneven", {"axis": 0}),
    ("reduce_scatter-empty", "reduce_scatter", "empty", {"axis": 1}),
    ("reduce_scatter-noncontig", "reduce_scatter", "noncontig", {"axis": 0}),
    ("allgather-axis0", "allgather", "f64", {"axis": 0}),
    ("allgather-axis1", "allgather", "f32", {"axis": 1}),
    ("allgather-ragged", "allgather", "ragged", {"axis": 0}),
    ("allgather-empty", "allgather", "empty", {"axis": 0}),
    ("bcast-root0", "bcast", "f64", {"root": 0}),
    ("bcast-rootlast", "bcast", "noncontig", {"root": -1}),
    ("bcast-big", "bcast", "big", {"root": 0}),
    ("gather-root0", "gather", "f32", {"root": 0}),
    ("gather-rootlast", "gather", "scalar", {"root": -1}),
    ("barrier", "barrier", "f64", {}),
]


def _resolve_root(root: int, size: int) -> int:
    return root % size


def _conformance_program(comm) -> dict[str, object]:
    """The SPMD program: run every case, return {case: result}."""
    mine = _payloads(comm.rank)
    out: dict[str, object] = {}
    for name, op, key, kwargs in CASES:
        block = mine[key]
        if op == "allreduce":
            out[name] = comm.allreduce(block)
        elif op == "reduce_scatter":
            out[name] = comm.reduce_scatter(block, axis=kwargs["axis"])
        elif op == "allgather":
            out[name] = comm.allgather(block, axis=kwargs["axis"])
        elif op == "bcast":
            root = _resolve_root(kwargs["root"], comm.size)
            payload = block if comm.rank == root else None
            out[name] = comm.bcast(payload, root=root)
        elif op == "gather":
            root = _resolve_root(kwargs["root"], comm.size)
            out[name] = comm.gather(block, root=root)
        elif op == "barrier":
            out[name] = comm.barrier()
    return out


def _blocks_layer(size: int) -> list[dict[str, object]]:
    """Run the cases through the executable block collectives."""
    payloads = [_payloads(r) for r in range(size)]
    outs: list[dict[str, object]] = [{} for _ in range(size)]
    for name, op, key, kwargs in CASES:
        blocks = [p[key] for p in payloads]
        if op == "allreduce":
            results = allreduce_blocks(blocks)
        elif op == "reduce_scatter":
            results = reduce_scatter_blocks(blocks, axis=kwargs["axis"])
        elif op == "allgather":
            results = allgather_blocks(blocks, axis=kwargs["axis"])
        elif op == "bcast":
            root = _resolve_root(kwargs["root"], size)
            results = bcast_block(blocks[root], size)
        elif op == "gather":
            root = _resolve_root(kwargs["root"], size)
            results = gather_blocks(blocks, root=root)
        elif op == "barrier":
            # No data moves; the block layer's barrier is a no-op.
            results = [None] * size
        for r in range(size):
            outs[r][name] = results[r]
    return outs


@lru_cache(maxsize=None)
def _run_layer(transport: str, size: int) -> tuple:
    if transport == "blocks":
        return tuple(_blocks_layer(size))
    if transport == "star":
        return tuple(run_spmd(_conformance_program, size, transport="star"))
    if transport == "tcp":
        return tuple(
            run_spmd(
                _conformance_program,
                size,
                transport="tcp",
                config=_P2P_CONFIG,
            )
        )
    config = _P2P_CONFIG
    if transport == "p2p-nondet":
        config = CommConfig(
            collective_timeout=60.0,
            shm_min_bytes=256,
            eager_max_words=24,
            deterministic=False,
        )
    return tuple(
        run_spmd(_conformance_program, size, transport="p2p", config=config)
    )


def _reference(size: int) -> list[dict[str, object]]:
    """Pure-NumPy expected result of every case, per rank."""
    payloads = [_payloads(r) for r in range(size)]
    refs: list[dict[str, object]] = [{} for _ in range(size)]
    for name, op, key, kwargs in CASES:
        blocks = [p[key] for p in payloads]
        if op == "allreduce":
            total = blocks[0].copy()
            for b in blocks[1:]:
                total = total + b
            expected = [total] * size
        elif op == "reduce_scatter":
            total = blocks[0].copy()
            for b in blocks[1:]:
                total = total + b
            expected = np.array_split(total, size, axis=kwargs["axis"])
        elif op == "allgather":
            cat = np.concatenate(blocks, axis=kwargs["axis"])
            expected = [cat] * size
        elif op == "bcast":
            root = _resolve_root(kwargs["root"], size)
            expected = [np.asarray(blocks[root])] * size
        elif op == "gather":
            root = _resolve_root(kwargs["root"], size)
            expected = [
                blocks if r == root else None for r in range(size)
            ]
        elif op == "barrier":
            expected = [None] * size
        for r in range(size):
            refs[r][name] = expected[r]
    return refs


def _assert_bit_identical(got, expected, ctx: str) -> None:
    if expected is None:
        assert got is None, ctx
        return
    if isinstance(expected, list):
        assert isinstance(got, list) and len(got) == len(expected), ctx
        for g, e in zip(got, expected):
            _assert_bit_identical(g, e, ctx)
        return
    got = np.asarray(got)
    expected = np.asarray(expected)
    assert got.dtype == expected.dtype, f"{ctx}: dtype {got.dtype}"
    assert got.shape == expected.shape, f"{ctx}: shape {got.shape}"
    assert np.array_equal(got, expected), ctx


@pytest.mark.parametrize("transport", TRANSPORTS)
@pytest.mark.parametrize("size", GROUP_SIZES)
@pytest.mark.parametrize("case", [c[0] for c in CASES])
def test_conformance(transport, size, case):
    """Every collective, every layer, bit-identical to NumPy."""
    outs = _run_layer(transport, size)
    refs = _reference(size)
    for rank in range(size):
        _assert_bit_identical(
            outs[rank][case],
            refs[rank][case],
            f"{transport} p={size} rank={rank} {case}",
        )


def _traced_program(comm) -> list:
    """Run the full case list, return this rank's CollectiveRecords."""
    _conformance_program(comm)
    return list(comm.trace.records)


@lru_cache(maxsize=None)
def _run_traced(transport: str, size: int) -> tuple:
    return tuple(
        run_spmd(
            _traced_program, size, transport=transport, config=_P2P_CONFIG
        )
    )


@pytest.mark.transport_matrix
@pytest.mark.parametrize("size", (2, 3, 4))
def test_shm_and_tcp_traces_identical(size):
    """The two p2p wires leave the same CollectiveRecord sequence.

    Every field — op, algorithm chosen, group size, message/word/byte
    counters, phase — must match record-for-record; ``shm_messages``
    is the one backend-specific column (how many payloads rode a
    shared-memory segment), necessarily zero on tcp, so it is the only
    field masked out.
    """
    shm = _run_traced("shm", size)
    tcp = _run_traced("tcp", size)
    for rank in range(size):
        assert len(shm[rank]) == len(tcp[rank]), f"p={size} rank={rank}"
        for i, (a, b) in enumerate(zip(shm[rank], tcp[rank])):
            assert b.shm_messages == 0, f"p={size} rank={rank} [{i}]"
            assert dataclasses.replace(a, shm_messages=0) == b, (
                f"p={size} rank={rank} record {i}: {a} != {b}"
            )


def test_deterministic_p2p_matches_star_bitwise():
    """With rank-order reductions the new transport reproduces the
    star coordinator's left-to-right sums bit-for-bit (exactness of
    the integer payloads is not needed for this pairing)."""
    for size in (3, 4):
        p2p = _run_layer("p2p-det", size)
        star = _run_layer("star", size)
        for rank in range(size):
            for name, _, _, _ in CASES:
                _assert_bit_identical(
                    p2p[rank][name], star[rank][name], f"p={size} {name}"
                )


# ---------------------------------------------------------------------------
# deadlock safety: divergent sequences fail fast instead of hanging
# ---------------------------------------------------------------------------


def _prog_mismatched_ops(comm):
    if comm.rank == 0:
        comm.allreduce(np.ones(4))
    else:
        comm.barrier()


def _prog_mismatched_counts(comm):
    comm.allreduce(np.ones(4))
    if comm.rank == 0:
        comm.allreduce(np.ones(4))


def _prog_recv_nothing(comm):
    if comm.rank == 0:
        comm.recv(1, tag=7, timeout=1.0)


class TestDivergenceTimeout:
    @pytest.mark.parametrize(
        "transport",
        [
            "p2p",
            "star",
            pytest.param("tcp", marks=pytest.mark.transport_matrix),
        ],
    )
    def test_mismatched_ops_fail_fast(self, transport):
        start = time.monotonic()
        with pytest.raises(RuntimeError, match="CollectiveTimeoutError"):
            run_spmd(
                _prog_mismatched_ops,
                2,
                transport=transport,
                collective_timeout=1.5,
                timeout=60.0,
            )
        assert time.monotonic() - start < 30.0

    def test_mismatched_counts_fail_fast(self):
        start = time.monotonic()
        with pytest.raises(RuntimeError, match="diverged"):
            run_spmd(
                _prog_mismatched_counts,
                2,
                collective_timeout=1.5,
                timeout=60.0,
            )
        assert time.monotonic() - start < 30.0

    def test_point_to_point_recv_timeout(self):
        with pytest.raises(RuntimeError, match="CollectiveTimeoutError"):
            run_spmd(_prog_recv_nothing, 2, timeout=60.0)
