"""Distributed HOOI variants."""

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.core.hooi import VARIANTS, hooi, variant_options
from repro.distributed.arrays import SymbolicArray
from repro.distributed.hooi import dist_hooi


class TestConcrete:
    @pytest.mark.parametrize("name", sorted(VARIANTS))
    def test_matches_sequential(self, lowrank4, name):
        opts = variant_options(name, max_iters=2, seed=5)
        seq, seq_stats = hooi(lowrank4, (3, 4, 2, 3), opts)
        dist, dist_stats = dist_hooi(
            lowrank4, (3, 4, 2, 3), (1, 2, 2, 1), options=opts
        )
        assert dist is not None
        np.testing.assert_allclose(
            dist_stats.errors, seq_stats.errors, rtol=1e-7, atol=1e-10
        )

    def test_grid_does_not_change_numerics(self, lowrank4):
        opts = variant_options("hosi-dt", max_iters=2, seed=1)
        errs = []
        for dims in [(1, 1, 1, 1), (2, 2, 1, 1), (1, 1, 2, 2)]:
            _, stats = dist_hooi(lowrank4, (3, 4, 2, 3), dims, options=opts)
            errs.append(stats.errors[-1])
        assert max(errs) - min(errs) < 1e-10

    def test_tol_early_stop(self, lowrank4):
        opts = variant_options("hosi-dt", max_iters=50, tol=1e-9, seed=2)
        _, stats = dist_hooi(lowrank4, (3, 4, 2, 3), (1, 1, 1, 1), options=opts)
        assert stats.iterations < 50

    def test_breakdown_subspace_variant(self, lowrank4):
        opts = variant_options("hosi-dt", max_iters=1, seed=3)
        _, stats = dist_hooi(lowrank4, (3, 4, 2, 3), (1, 2, 2, 1), options=opts)
        assert {"ttm", "subspace", "qrcp"} <= set(stats.breakdown)
        assert "evd" not in stats.breakdown

    def test_breakdown_gram_variant(self, lowrank4):
        opts = variant_options("hooi", max_iters=1, seed=3)
        _, stats = dist_hooi(lowrank4, (3, 4, 2, 3), (1, 2, 2, 1), options=opts)
        assert {"ttm", "gram", "evd"} <= set(stats.breakdown)
        assert "qrcp" not in stats.breakdown


class TestSymbolic:
    def test_costs_only(self):
        x = SymbolicArray((64, 64, 64, 64), np.float32)
        opts = variant_options("hosi-dt", max_iters=2)
        tucker, stats = dist_hooi(x, (8, 8, 8, 8), (1, 4, 4, 1), options=opts)
        assert tucker is None
        assert stats.iterations == 2
        assert stats.errors == []
        assert stats.simulated_seconds > 0

    def test_dt_cheaper_than_direct(self):
        """Dimension trees reduce TTM flops ~d/2 (Table 1)."""
        x = SymbolicArray((64, 64, 64, 64), np.float32)
        ttm_flops = {}
        for name in ("hooi", "hooi-dt"):
            opts = variant_options(name, max_iters=1)
            _, stats = dist_hooi(x, (4, 4, 4, 4), (1, 1, 1, 1), options=opts)
            ttm_flops[name] = stats.ledger.phases["ttm"].flops
        ratio = ttm_flops["hooi"] / ttm_flops["hooi-dt"]
        assert 1.5 < ratio < 2.5  # d/2 = 2 at d=4

    def test_subspace_avoids_evd(self):
        x = SymbolicArray((512, 512, 512), np.float32)
        opts_g = variant_options("hooi-dt", max_iters=2)
        opts_s = variant_options("hosi-dt", max_iters=2)
        _, st_g = dist_hooi(x, (8, 8, 8), (1, 8, 8), options=opts_g)
        _, st_s = dist_hooi(x, (8, 8, 8), (1, 8, 8), options=opts_s)
        assert st_s.simulated_seconds < st_g.simulated_seconds

    def test_two_iterations_double_cost(self):
        x = SymbolicArray((64, 64, 64), np.float32)
        opts1 = variant_options("hosi-dt", max_iters=1)
        opts2 = variant_options("hosi-dt", max_iters=2)
        _, s1 = dist_hooi(x, (8, 8, 8), (2, 2, 2), options=opts1)
        _, s2 = dist_hooi(x, (8, 8, 8), (2, 2, 2), options=opts2)
        assert s2.simulated_seconds == pytest.approx(
            2 * s1.simulated_seconds, rel=1e-6
        )


class TestValidation:
    def test_grid_order(self, lowrank3):
        with pytest.raises(ConfigError):
            dist_hooi(lowrank3, (2, 2, 2), (1, 1))

    def test_bad_ranks(self, lowrank3):
        with pytest.raises(ValueError):
            dist_hooi(lowrank3, (99, 2, 2), (1, 1, 1))
