"""Table 1/2 closed forms and measured-vs-analytic proportionality."""

import numpy as np
import pytest

from repro.analysis.costs import (
    hooi_iteration_flops,
    hooi_iteration_words,
    ra_hosi_dt_flops,
    sthosvd_flops,
    sthosvd_words,
)
from repro.core.hooi import variant_options
from repro.distributed.arrays import SymbolicArray
from repro.distributed.hooi import dist_hooi
from repro.distributed.sthosvd import dist_sthosvd


class TestClosedForms:
    def test_sthosvd_gram_dominates_for_small_r(self):
        f = sthosvd_flops(n=512, d=3, r=8, p=1)
        assert f["gram"] > f["ttm"]

    def test_dt_factor_over_direct(self):
        direct = hooi_iteration_flops(64, 6, 4, 1, dimension_tree=False)
        tree = hooi_iteration_flops(64, 6, 4, 1, dimension_tree=True)
        assert direct["ttm"] / tree["ttm"] == pytest.approx(3.0)  # d/2

    def test_subspace_vs_gram_ratio(self):
        """LLSV via subspace iteration is ~(1/4)(n/r) cheaper (§3.4)."""
        n, d, r = 1024, 3, 16
        gram = hooi_iteration_flops(n, d, r, 1, subspace=False)
        sub = hooi_iteration_flops(n, d, r, 1, subspace=True)
        assert gram["llsv"] / sub["llsv"] == pytest.approx(n / r / 4)

    def test_sequential_terms(self):
        f = hooi_iteration_flops(100, 3, 5, 4, subspace=False)
        assert f["llsv_seq"] == 3 * 100**3
        f = hooi_iteration_flops(100, 3, 5, 4, subspace=True)
        assert f["llsv_seq"] == 3 * 100 * 25

    def test_ra_scales_with_iters(self):
        one = ra_hosi_dt_flops(64, 3, 4, 2, iters=1)
        three = ra_hosi_dt_flops(64, 3, 4, 2, iters=3)
        for k in one:
            assert three[k] == pytest.approx(3 * one[k])

    def test_words_zero_comm_on_unit_grid(self):
        w = sthosvd_words(64, 3, 4, (1, 1, 1))
        assert w["ttm"] == 0.0
        # Only the dn^2 allreduce term remains.
        assert w["llsv"] == pytest.approx(3 * 64**2)

    def test_dt_words_depend_on_p1_pd(self):
        w_mid = hooi_iteration_words(64, 4, 4, (1, 4, 4, 1))
        w_edge = hooi_iteration_words(64, 4, 4, (4, 1, 1, 4))
        assert w_mid["ttm"] == 0.0
        assert w_edge["ttm"] > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            sthosvd_flops(0, 3, 1, 1)
        with pytest.raises(ValueError):
            sthosvd_flops(4, 3, 8, 1)


class TestMeasuredVersusModel:
    """The ledger's measured counts must track the paper's closed forms:
    the measured/analytic ratio stays (near-)constant across a sweep."""

    def test_sthosvd_gram_flops_proportional(self):
        ratios = []
        for n in (32, 64, 128):
            x = SymbolicArray((n, n, n), np.float32)
            _, stats = dist_sthosvd(x, (1, 2, 2), ranks=(4, 4, 4))
            measured = stats.ledger.phases["gram"].flops
            model = sthosvd_flops(n, 3, 4, 4)["gram"]
            ratios.append(measured / model)
        assert max(ratios) / min(ratios) < 1.3

    def test_hosi_dt_ttm_flops_proportional(self):
        opts = variant_options("hosi-dt", max_iters=1)
        ratios = []
        for n in (32, 64, 128):
            x = SymbolicArray((n, n, n, n), np.float32)
            _, stats = dist_hooi(x, (4, 4, 4, 4), (1, 2, 2, 1), options=opts)
            measured = stats.ledger.phases["ttm"].flops
            model = hooi_iteration_flops(n, 4, 4, 4)["ttm"]
            ratios.append(measured / model)
        assert max(ratios) / min(ratios) < 1.3

    def test_direct_ttm_words_track_grid(self):
        """Direct HOOI TTM words grow with P_1 as (d-1)(rn^{d-1}/P)(P_1-1)."""
        opts = variant_options("hooi", max_iters=1)
        n, r = 64, 4
        measured, model = [], []
        for grid in [(2, 1, 1), (4, 1, 1), (8, 1, 1)]:
            x = SymbolicArray((n, n, n), np.float32)
            _, stats = dist_hooi(x, (r, r, r), grid, options=opts)
            measured.append(stats.ledger.phases["ttm_comm"].words)
            model.append(hooi_iteration_words(
                n, 3, r, grid, dimension_tree=False, subspace=True
            )["ttm"])
        ratios = [m / a for m, a in zip(measured, model)]
        assert max(ratios) / min(ratios) < 1.5

    def test_core_analysis_words_equal_core_size(self, lowrank4):
        from repro.distributed.rank_adaptive import dist_rank_adaptive_hooi
        from repro.core.rank_adaptive import RankAdaptiveOptions

        opts = RankAdaptiveOptions(max_iters=1)
        _, stats = dist_rank_adaptive_hooi(
            lowrank4, 0.05, (4, 5, 3, 4), (1, 2, 2, 1), options=opts
        )
        words = stats.ledger.phases["core_comm"].words
        core_size = 4 * 5 * 3 * 4
        # gather moves (P-1)/P of the core size.
        assert words == pytest.approx(core_size * 3 / 4, rel=1e-9)
