"""TensorLy-style facade."""

import numpy as np
import pytest

from repro.compat import partial_tucker, tucker, tucker_to_tensor
from repro.tensor.ops import relative_error
from repro.tensor.random import tucker_plus_noise


class TestTucker:
    def test_rank_specified(self, lowrank3):
        core, factors = tucker(lowrank3, rank=(4, 3, 5))
        assert core.shape == (4, 3, 5)
        assert len(factors) == 3
        rec = tucker_to_tensor((core, factors))
        assert relative_error(lowrank3, rec) < 1e-3

    def test_tol_specified(self, lowrank3):
        core, factors = tucker(lowrank3, tol=0.01)
        rec = tucker_to_tensor((core, factors))
        assert relative_error(lowrank3, rec) <= 0.01 * (1 + 1e-6)

    def test_tol_with_start_rank(self, lowrank3):
        core, factors = tucker(lowrank3, rank=(5, 5, 5), tol=0.01)
        rec = tucker_to_tensor((core, factors))
        assert relative_error(lowrank3, rec) <= 0.01 * (1 + 1e-6)

    def test_needs_spec(self, lowrank3):
        with pytest.raises(ValueError):
            tucker(lowrank3)

    def test_deterministic(self, lowrank3):
        a, _ = tucker(lowrank3, rank=(3, 3, 3), random_state=5)
        b, _ = tucker(lowrank3, rank=(3, 3, 3), random_state=5)
        np.testing.assert_array_equal(a, b)


class TestPartialTucker:
    def test_untouched_modes_full(self):
        x = tucker_plus_noise((12, 10, 8), (3, 3, 3), noise=1e-4, seed=0)
        core, factors = partial_tucker(x, modes=[0, 2], rank=[3, 3])
        assert core.shape == (3, 10, 3)
        assert len(factors) == 2

    def test_reconstruction(self):
        x = tucker_plus_noise((12, 10, 8), (3, 3, 3), noise=1e-4, seed=1)
        core, factors = partial_tucker(x, modes=[0, 2], rank=[3, 3])
        from repro.tensor.ops import multi_ttm

        rec = multi_ttm(core, factors, modes=[0, 2])
        assert relative_error(x, rec) < 1e-2

    def test_rank_mismatch(self, lowrank3):
        with pytest.raises(ValueError):
            partial_tucker(lowrank3, modes=[0], rank=[2, 2])
