"""Sequential STHOSVD (Alg. 1)."""

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.core.sthosvd import sthosvd
from repro.linalg.llsv import LLSVMethod
from repro.tensor.random import tucker_plus_noise


class TestErrorSpecified:
    @pytest.mark.parametrize("eps", [0.3, 0.1, 0.01])
    def test_error_guarantee(self, eps):
        x = tucker_plus_noise((15, 14, 13), (5, 5, 5), noise=0.05, seed=0)
        tucker, _ = sthosvd(x, eps=eps)
        assert tucker.relative_error(x) <= eps * (1 + 1e-9)

    def test_recovers_construction_ranks(self, lowrank4):
        tucker, _ = sthosvd(lowrank4, eps=1e-2)
        assert tucker.ranks == (3, 4, 2, 3)

    def test_looser_eps_smaller_ranks(self):
        x = tucker_plus_noise((16, 16, 16), (6, 6, 6), noise=0.02, seed=1)
        tight, _ = sthosvd(x, eps=0.01)
        loose, _ = sthosvd(x, eps=0.3)
        assert loose.storage_size() <= tight.storage_size()

    def test_orthonormal_factors(self, lowrank3):
        tucker, _ = sthosvd(lowrank3, eps=0.05)
        assert tucker.is_orthonormal()

    def test_core_identity_error(self, lowrank3):
        tucker, stats = sthosvd(lowrank3, eps=0.05)
        assert tucker.relative_error_via_core(stats.x_norm) == pytest.approx(
            tucker.relative_error(lowrank3), rel=1e-5, abs=1e-9
        )


class TestRankSpecified:
    def test_exact_ranks(self, lowrank4):
        tucker, _ = sthosvd(lowrank4, ranks=(2, 3, 2, 2))
        assert tucker.ranks == (2, 3, 2, 2)

    def test_full_ranks_exact(self, small3):
        tucker, _ = sthosvd(small3, ranks=small3.shape)
        assert tucker.relative_error(small3) < 1e-10

    def test_rank_caps_adaptive(self, lowrank4):
        tucker, _ = sthosvd(lowrank4, eps=1e-6, ranks=(2, 2, 2, 2))
        assert tucker.ranks == (2, 2, 2, 2)

    def test_invalid_ranks(self, small3):
        with pytest.raises(ValueError):
            sthosvd(small3, ranks=(99, 1, 1))


class TestOptions:
    def test_needs_eps_or_ranks(self, small3):
        with pytest.raises(ConfigError):
            sthosvd(small3)

    def test_nonpositive_eps(self, small3):
        with pytest.raises(ConfigError):
            sthosvd(small3, eps=0.0)

    def test_mode_order(self, lowrank3):
        a, _ = sthosvd(lowrank3, ranks=(4, 3, 5))
        b, stats = sthosvd(lowrank3, ranks=(4, 3, 5), mode_order=(2, 0, 1))
        assert stats.mode_order == (2, 0, 1)
        # Both are quasi-optimal; errors are close.
        assert a.relative_error(lowrank3) == pytest.approx(
            b.relative_error(lowrank3), abs=1e-4
        )

    def test_invalid_mode_order(self, small3):
        with pytest.raises(ConfigError):
            sthosvd(small3, ranks=(2, 2, 2), mode_order=(0, 0, 1))

    def test_lq_svd_method(self, lowrank3):
        a, _ = sthosvd(lowrank3, eps=0.05, method=LLSVMethod.GRAM_EVD)
        b, _ = sthosvd(lowrank3, eps=0.05, method=LLSVMethod.LQ_SVD)
        assert a.ranks == b.ranks

    def test_stats_populated(self, lowrank3):
        tucker, stats = sthosvd(lowrank3, eps=0.05)
        assert stats.ranks == tucker.ranks
        assert set(stats.spectra) == {0, 1, 2}
        assert stats.phase_seconds["llsv"] > 0
        assert stats.phase_seconds["ttm"] > 0

    def test_spectra_lengths_shrink(self, lowrank3):
        """Later modes see the already-truncated tensor, so their
        unfolding spectra have full mode length but the processed
        tensor shrinks (spectrum per mode has n_j entries)."""
        _, stats = sthosvd(lowrank3, eps=0.05)
        for mode, spec in stats.spectra.items():
            assert len(spec) == lowrank3.shape[mode]


class TestHOSVD:
    def test_error_guarantee(self):
        from repro.core.hosvd import hosvd

        x = tucker_plus_noise((14, 13, 12), (4, 4, 4), noise=0.05, seed=3)
        tucker = hosvd(x, eps=0.1)
        assert tucker.relative_error(x) <= 0.1 * (1 + 1e-9)

    def test_rank_specified(self, lowrank3):
        from repro.core.hosvd import hosvd

        tucker = hosvd(lowrank3, ranks=(4, 3, 5))
        assert tucker.ranks == (4, 3, 5)
        assert tucker.relative_error(lowrank3) < 1e-3

    def test_needs_spec(self, small3):
        from repro.core.hosvd import hosvd

        with pytest.raises(ConfigError):
            hosvd(small3)

    def test_agrees_with_sthosvd_on_lowrank(self, lowrank4):
        from repro.core.hosvd import hosvd

        a = hosvd(lowrank4, ranks=(3, 4, 2, 3))
        b, _ = sthosvd(lowrank4, ranks=(3, 4, 2, 3))
        assert a.relative_error(lowrank4) == pytest.approx(
            b.relative_error(lowrank4), abs=1e-5
        )
