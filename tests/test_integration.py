"""Cross-module integration scenarios."""

import numpy as np
import pytest

from repro import (
    LLSVMethod,
    hooi,
    rank_adaptive_hooi,
    sthosvd,
    tucker_plus_noise,
)
from repro.analysis.metrics import relative_size
from repro.core.hooi import variant_options
from repro.datasets import hcci_like, miranda_like


class TestCompressionPipeline:
    def test_compress_then_decompress_region(self):
        """The motivating Tucker use case: compress a simulation field,
        then decompress only a subregion without full reconstruction."""
        x = miranda_like(32, seed=0).astype(np.float64)
        tucker, _ = sthosvd(x, eps=0.05)
        region = (slice(4, 12), slice(0, 32), slice(16, 20))
        sub = tucker.extract_subtensor(region)
        rel = np.linalg.norm(sub - x[region]) / np.linalg.norm(x)
        assert rel <= 0.05

    def test_hooi_refines_sthosvd(self):
        """Classic usage: STHOSVD init + HOOI refinement never hurts."""
        x = tucker_plus_noise((16, 15, 14), (4, 4, 4), noise=0.1, seed=0)
        st_t, _ = sthosvd(x, ranks=(3, 3, 3))
        opts = variant_options(
            "hosi-dt", max_iters=3, init=[u.copy() for u in st_t.factors]
        )
        ho_t, _ = hooi(x, (3, 3, 3), opts)
        assert ho_t.relative_error(x) <= st_t.relative_error(x) + 1e-9

    def test_ra_vs_sthosvd_size_and_error(self):
        x = hcci_like((20, 20, 5, 12), seed=1)
        eps = 0.05
        st_t, _ = sthosvd(x, eps=eps)
        ra_t, ra_s = rank_adaptive_hooi(x, eps, st_t.ranks)
        assert ra_s.converged
        assert ra_t.relative_error(x) <= eps * (1 + 1e-6)
        assert relative_size(x.shape, ra_t.ranks) <= 1.0

    def test_error_specified_equals_rank_specified_roundtrip(self):
        x = tucker_plus_noise((14, 13, 12), (3, 3, 3), noise=1e-3, seed=2)
        es_t, _ = sthosvd(x, eps=0.01)
        rs_t, _ = sthosvd(x, ranks=es_t.ranks)
        assert rs_t.relative_error(x) == pytest.approx(
            es_t.relative_error(x), rel=1e-8
        )

    def test_lq_svd_pipeline(self):
        x = tucker_plus_noise((12, 12, 12), (3, 3, 3), noise=1e-3, seed=3)
        tucker, _ = sthosvd(x, eps=0.01, method=LLSVMethod.LQ_SVD)
        assert tucker.relative_error(x) <= 0.01


class TestSequentialDistributedParity:
    """The simulated-distributed stack must be numerically transparent."""

    def test_full_parity_matrix(self, lowrank4):
        from repro.distributed.hooi import dist_hooi
        from repro.distributed.sthosvd import dist_sthosvd

        seq_st, _ = sthosvd(lowrank4, eps=0.01)
        dist_st, _ = dist_sthosvd(lowrank4, (2, 1, 2, 1), eps=0.01)
        assert seq_st.ranks == dist_st.ranks

        for name in ("hooi", "hosi-dt"):
            opts = variant_options(name, max_iters=2, seed=9)
            seq_h, seq_stats = hooi(lowrank4, (3, 4, 2, 3), opts)
            _, dist_stats = dist_hooi(
                lowrank4, (3, 4, 2, 3), (1, 2, 2, 1), options=opts
            )
            # Contraction order differs (greedy vs increasing-mode), so
            # agreement is up to floating-point rounding, not bitwise.
            np.testing.assert_allclose(
                seq_stats.errors, dist_stats.errors, rtol=1e-4, atol=1e-10
            )

    def test_simulated_time_independent_of_data(self):
        """Two different concrete tensors of identical shape cost the
        same simulated time (costs depend on shapes only)."""
        from repro.distributed.sthosvd import dist_sthosvd

        a = tucker_plus_noise((12, 12, 12), (3, 3, 3), noise=0.1, seed=1)
        b = tucker_plus_noise((12, 12, 12), (3, 3, 3), noise=0.1, seed=2)
        _, sa = dist_sthosvd(a, (1, 2, 2), ranks=(3, 3, 3))
        _, sb = dist_sthosvd(b, (1, 2, 2), ranks=(3, 3, 3))
        assert sa.simulated_seconds == pytest.approx(sb.simulated_seconds)

    def test_symbolic_matches_concrete_costs(self):
        """Symbolic and concrete runs of the same configuration charge
        identical simulated costs."""
        from repro.distributed.arrays import SymbolicArray
        from repro.distributed.sthosvd import dist_sthosvd

        x = tucker_plus_noise((12, 12, 12), (3, 3, 3), noise=0.1, seed=3)
        _, sc = dist_sthosvd(x, (1, 2, 2), ranks=(3, 3, 3))
        _, ss = dist_sthosvd(
            SymbolicArray(x.shape, x.dtype), (1, 2, 2), ranks=(3, 3, 3)
        )
        assert ss.simulated_seconds == pytest.approx(sc.simulated_seconds)
