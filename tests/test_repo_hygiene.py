"""Repository hygiene: no Python bytecode may be tracked by git.

A ``.pyc`` (or anything under ``__pycache__``) that slips into the
index shadows source edits in subtle ways and bloats every clone; this
tier-1 test keeps the index clean permanently.
"""

import shutil
import subprocess
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent


def _tracked_files() -> list[str]:
    proc = subprocess.run(
        ["git", "ls-files"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=60,
    )
    if proc.returncode != 0:
        pytest.skip(f"git ls-files failed: {proc.stderr.strip()}")
    return proc.stdout.splitlines()


def test_no_bytecode_tracked() -> None:
    if shutil.which("git") is None or not (REPO_ROOT / ".git").exists():
        pytest.skip("not a git checkout")
    offenders = [
        path
        for path in _tracked_files()
        if path.endswith(".pyc") or "__pycache__" in path.split("/")
    ]
    assert not offenders, (
        "compiled bytecode is tracked by git (run 'git rm --cached' on "
        f"these and gitignore them): {offenders}"
    )
