"""TuckerTensor container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tucker import TuckerTensor
from repro.tensor.ops import multi_ttm
from repro.tensor.random import random_orthonormal, random_tucker


def _tt(shape=(8, 7, 6), ranks=(3, 2, 4), seed=0):
    rng = np.random.default_rng(seed)
    core = rng.standard_normal(ranks)
    factors = [
        random_orthonormal(n, r, seed=rng) for n, r in zip(shape, ranks)
    ]
    return TuckerTensor(core=core, factors=factors)


class TestConstruction:
    def test_metadata(self):
        tt = _tt()
        assert tt.shape == (8, 7, 6)
        assert tt.ranks == (3, 2, 4)
        assert tt.ndim == 3

    def test_factor_count_mismatch(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            TuckerTensor(
                core=rng.standard_normal((2, 2)),
                factors=[rng.standard_normal((4, 2))],
            )

    def test_factor_rank_mismatch(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            TuckerTensor(
                core=rng.standard_normal((2, 3)),
                factors=[
                    rng.standard_normal((4, 2)),
                    rng.standard_normal((4, 2)),
                ],
            )


class TestStorage:
    def test_storage_size(self):
        tt = _tt()
        assert tt.storage_size() == 3 * 2 * 4 + 8 * 3 + 7 * 2 + 6 * 4

    def test_compression_ratio(self):
        tt = _tt()
        assert tt.compression_ratio() == pytest.approx(
            (8 * 7 * 6) / tt.storage_size()
        )

    def test_full_size(self):
        assert _tt().full_size() == 8 * 7 * 6


class TestNumerics:
    def test_reconstruct(self):
        tt = _tt()
        np.testing.assert_allclose(
            tt.reconstruct(), multi_ttm(tt.core, tt.factors), atol=1e-12
        )

    def test_error_identity(self):
        """||X - X^||^2 == ||X||^2 - ||G||^2 when G = X x U^T (orthonormal)."""
        full, _, factors = random_tucker((10, 9, 8), (3, 3, 3), seed=1)
        rng = np.random.default_rng(2)
        x = full + 0.01 * rng.standard_normal(full.shape)
        core = multi_ttm(x, factors, transpose=True)
        tt = TuckerTensor(core=core, factors=list(factors))
        x_norm = np.linalg.norm(x)
        exact = tt.relative_error(x)
        via_core = tt.relative_error_via_core(x_norm)
        assert via_core == pytest.approx(exact, rel=1e-6)

    def test_relative_error_via_core_requires_positive_norm(self):
        with pytest.raises(ValueError):
            _tt().relative_error_via_core(0.0)

    def test_is_orthonormal(self):
        assert _tt().is_orthonormal()
        tt = _tt()
        tt.factors[0] = tt.factors[0] * 2
        assert not tt.is_orthonormal()

    def test_exact_representation(self):
        full, core, factors = random_tucker((8, 7, 6), (2, 3, 2), seed=3)
        tt = TuckerTensor(core=core, factors=list(factors))
        assert tt.relative_error(full) < 1e-12


class TestTruncate:
    def test_leading_truncation(self):
        tt = _tt()
        small = tt.truncate((2, 2, 2))
        assert small.ranks == (2, 2, 2)
        np.testing.assert_array_equal(small.core, tt.core[:2, :2, :2])
        for u_small, u in zip(small.factors, tt.factors):
            np.testing.assert_array_equal(u_small, u[:, :2])

    def test_truncate_noop(self):
        tt = _tt()
        same = tt.truncate(tt.ranks)
        np.testing.assert_array_equal(same.core, tt.core)

    def test_invalid_truncation(self):
        tt = _tt()
        with pytest.raises(ValueError):
            tt.truncate((4, 2, 2))  # exceeds current rank in mode 0
        with pytest.raises(ValueError):
            tt.truncate((0, 2, 2))
        with pytest.raises(ValueError):
            tt.truncate((2, 2))

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_truncation_is_valid_tucker(self, seed):
        """Any leading truncation of an orthonormal Tucker tensor has
        error ||X^||^2 - ||G(1:r)||^2 against the untruncated one."""
        rng = np.random.default_rng(seed)
        tt = _tt(seed=seed)
        r = tuple(rng.integers(1, x + 1) for x in tt.ranks)
        small = tt.truncate(r)
        diff = np.linalg.norm(tt.reconstruct() - small.reconstruct()) ** 2
        gap = (
            np.linalg.norm(tt.core) ** 2 - np.linalg.norm(small.core) ** 2
        )
        assert diff == pytest.approx(gap, rel=1e-6, abs=1e-9)


class TestSubtensorExtraction:
    def test_matches_full_reconstruction(self):
        tt = _tt()
        full = tt.reconstruct()
        region = (slice(1, 5), slice(0, 3), slice(2, 6))
        np.testing.assert_allclose(
            tt.extract_subtensor(region), full[region], atol=1e-12
        )

    def test_single_fiber(self):
        tt = _tt()
        full = tt.reconstruct()
        region = (slice(0, 8), slice(3, 4), slice(2, 3))
        np.testing.assert_allclose(
            tt.extract_subtensor(region), full[region], atol=1e-12
        )

    def test_wrong_region_order(self):
        with pytest.raises(ValueError):
            _tt().extract_subtensor((slice(0, 2),))
