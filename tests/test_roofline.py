"""Roofline analysis helpers."""

import pytest

from repro.analysis.roofline import (
    KERNELS,
    kernel_point,
    machine_balance,
)
from repro.vmpi.machine import MachineModel


class TestMachineBalance:
    def test_balance_value(self):
        m = MachineModel(
            flop_rate=1e10, node_mem_bw=1e9, cores_per_node=1
        )
        assert machine_balance(m, 1) == pytest.approx(10.0)

    def test_balance_grows_with_node_sharing(self):
        m = MachineModel(cores_per_node=128)
        assert machine_balance(m, 128) > machine_balance(m, 1)


class TestKernelPoints:
    def test_gram_intensity_2n(self):
        pt = kernel_point("sthosvd_gram", n=512, r=8, d=3)
        assert pt.intensity == pytest.approx(2 * 512)

    def test_ttm_intensity_2r(self):
        pt = kernel_point("hooi_ttm", n=512, r=8, d=3)
        assert pt.intensity == pytest.approx(2 * 8)

    def test_small_r_ttm_memory_bound_on_full_node(self):
        """The paper's §5 observation: small-r TTMs are bandwidth-bound
        once a node is fully packed (while the same kernel on a single
        rank with the whole node's bandwidth is not)."""
        pt = kernel_point("hooi_ttm", n=560, r=4, d=4, p=128)
        assert pt.memory_bound
        pt1 = kernel_point("hooi_ttm", n=560, r=4, d=4, p=1)
        assert not pt1.memory_bound

    def test_gram_compute_bound(self):
        pt = kernel_point("sthosvd_gram", n=3750, r=30, d=3, p=128)
        assert not pt.memory_bound

    def test_attainable_capped_by_peak(self):
        m = MachineModel()
        pt = kernel_point("sthosvd_gram", n=4096, r=8, d=3, machine=m)
        assert pt.attainable_flops == pytest.approx(m.flop_rate)

    def test_attainable_bandwidth_limited(self):
        m = MachineModel(cores_per_node=128)
        pt = kernel_point("hooi_ttm", n=512, r=4, d=3, p=128, machine=m)
        assert pt.attainable_flops < m.flop_rate

    def test_contraction_point(self):
        pt = kernel_point("subspace_contraction", n=512, r=8, d=3)
        assert pt.intensity == pytest.approx(2 * 8)
        assert pt.flops > 0 and pt.words > 0

    def test_unknown_kernel(self):
        with pytest.raises(ValueError):
            kernel_point("fft", n=8, r=2, d=3)

    def test_kernel_registry(self):
        for k in KERNELS:
            kernel_point(k, n=64, r=4, d=3)
