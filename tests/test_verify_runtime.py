"""Tier-2 dynamic verifier: injected mismatches must raise named,
rule-tagged errors; clean runs must stay bit- and trace-identical."""

import time

import numpy as np
import pytest

from repro.analysis.verify.runtime import (
    CollectiveSignature,
    DeadlockError,
    ShmLifecycleError,
    ShmSanitizer,
    WaitMonitor,
    match_signatures,
)
from repro.vmpi.mp_comm import (
    CommConfig,
    ProcessComm,
    RankFailureError,
    run_spmd,
)

VERIFY = CommConfig(verify=True)


def sig(**kw):
    base = dict(kind="allreduce", seq=1)
    base.update(kw)
    return CollectiveSignature(**base)


class TestMatchSignatures:
    def test_consistent_round_passes(self):
        s = sig(op="sum", dtype="float64", shape=(4, 4))
        assert match_signatures({0: s, 1: s, 2: s}) is None

    def test_single_member_skips(self):
        assert match_signatures({0: sig(kind="bcast")}) is None

    def test_kind_divergence_is_202(self):
        rule, msg = match_signatures(
            {0: sig(kind="allreduce"), 1: sig(kind="barrier")}
        )
        assert rule == "SPMD202"
        assert "rank 0" in msg and "rank 1" in msg

    def test_allreduce_shape_mismatch(self):
        rule, msg = match_signatures(
            {0: sig(shape=(4,)), 1: sig(shape=(5,))}
        )
        assert rule == "SPMD201"
        assert "shape" in msg

    def test_allreduce_dtype_mismatch(self):
        rule, _ = match_signatures(
            {0: sig(dtype="float64"), 1: sig(dtype="float32")}
        )
        assert rule == "SPMD201"

    def test_allgather_off_axis_shape_mismatch(self):
        mk = lambda shape: sig(kind="allgather", axis=0, shape=shape)
        # Differing along the concat axis is legal ...
        assert match_signatures({0: mk((2, 5)), 1: mk((3, 5))}) is None
        # ... differing off-axis is not.
        rule, _ = match_signatures({0: mk((2, 5)), 1: mk((2, 6))})
        assert rule == "SPMD201"

    def test_root_disagreement(self):
        rule, msg = match_signatures(
            {0: sig(kind="bcast", root=0), 1: sig(kind="bcast", root=1)}
        )
        assert rule == "SPMD201"
        assert "root" in msg

    def test_bcast_payload_shapes_may_differ(self):
        # Non-roots legally pass None (empty signature payload).
        assert (
            match_signatures(
                {
                    0: sig(kind="bcast", root=0, shape=(3,)),
                    1: sig(kind="bcast", root=0, shape=()),
                }
            )
            is None
        )


class TestShmSanitizer:
    def test_clean_cycle(self):
        s = ShmSanitizer(0)
        s.on_obtain("seg1")
        s.on_send("seg1")
        s.on_release("seg1")
        s.on_obtain("seg1")  # pooled -> reuse is fine
        assert s.leaked() == []
        s.check_exit()

    def test_use_after_release_is_211(self):
        s = ShmSanitizer(0)
        s.on_send("seg1")
        with pytest.raises(ShmLifecycleError, match="SPMD211"):
            s.on_obtain("seg1")

    def test_double_release_is_212(self):
        s = ShmSanitizer(0)
        s.on_send("seg1")
        s.on_release("seg1")
        with pytest.raises(ShmLifecycleError, match="SPMD212"):
            s.on_release("seg1")

    def test_leak_at_exit_is_213(self):
        s = ShmSanitizer(0)
        s.on_send("seg1")
        assert s.leaked() == ["seg1"]
        with pytest.raises(ShmLifecycleError, match="SPMD213"):
            s.check_exit()

    def test_unlink_forgets_state(self):
        s = ShmSanitizer(0)
        s.on_send("seg1")
        s.on_unlink("seg1")
        s.check_exit()


class TestWaitMonitor:
    @staticmethod
    def board(size):
        b = [0] * (3 * size)
        for r in range(size):
            b[3 * r] = -1
        return b

    def test_no_cycle_no_raise(self):
        b = self.board(2)
        m = WaitMonitor(b, 0, 2)
        m.begin_wait(1, 7)  # 1 is running, not waiting on 0
        m.probe()
        m.probe()

    def test_stable_cycle_raises_on_second_probe(self):
        b = self.board(2)
        m0 = WaitMonitor(b, 0, 2)
        m1 = WaitMonitor(b, 1, 2)
        m0.begin_wait(1, 7)
        m1.begin_wait(0, 9)
        m0.probe()  # first sighting arms the witness
        with pytest.raises(DeadlockError, match="SPMD203"):
            m0.probe()

    def test_transient_cycle_is_not_flagged(self):
        # The peer makes progress between probes (stamp changes):
        # exactly a ring pattern's in-flight cycle resolving.
        b = self.board(2)
        m0 = WaitMonitor(b, 0, 2)
        m1 = WaitMonitor(b, 1, 2)
        m0.begin_wait(1, 7)
        m1.begin_wait(0, 9)
        m0.probe()  # first sighting arms the witness
        m1.end_wait()
        m1.begin_wait(0, 10)  # peer progressed: new wait, new stamp
        m0.probe()  # witness differs -> re-arm, no raise
        # Only once the *new* cycle also holds still does it raise.
        with pytest.raises(DeadlockError):
            m0.probe()

    def test_three_rank_cycle_report_names_all(self):
        b = self.board(3)
        ms = [WaitMonitor(b, r, 3) for r in range(3)]
        ms[0].begin_wait(1, 1)
        ms[1].begin_wait(2, 2)
        ms[2].begin_wait(0, 3)
        ms[0].probe()
        with pytest.raises(DeadlockError) as ei:
            ms[0].probe()
        msg = str(ei.value)
        for r in range(3):
            assert f"rank {r}" in msg


# -- SPMD programs (module level: must be picklable) ------------------------


def _prog_clean(comm: ProcessComm):
    x = np.full((4, 4), float(comm.rank + 1))
    total = comm.allreduce(x)
    payload = np.arange(6.0) if comm.rank == 0 else None
    payload = comm.bcast(payload, root=0)
    part = comm.reduce_scatter(np.arange(8.0) + comm.rank, axis=0)
    g = comm.allgather(np.array([float(comm.rank)]), axis=0)
    comm.barrier()
    return {
        "total": total,
        "payload": payload,
        "part": part,
        "gathered": g,
        "trace": comm.trace.totals(),
    }


def _prog_wrong_root(comm: ProcessComm):
    payload = np.ones(3) if comm.rank == 0 else None
    root = 1 if comm.rank == 1 else 0  # injected: rank 1 disagrees
    return comm.bcast(payload, root=root)


def _prog_skip(comm: ProcessComm):
    if comm.rank != 1:  # injected: rank 1 skips the collective
        comm.allreduce(np.ones(2))
    return comm.rank


def _prog_reorder(comm: ProcessComm):
    if comm.rank == 0:  # injected: rank 0 swaps the two collectives
        comm.allreduce(np.ones(2))
        comm.barrier()
    else:
        comm.barrier()
        comm.allreduce(np.ones(2))
    return comm.rank


def _prog_shape_mismatch(comm: ProcessComm):
    n = 4 if comm.rank == 0 else 5  # injected: diverging block shape
    return comm.allreduce(np.ones(n))


def _prog_deadlock(comm: ProcessComm):
    # Injected: classic cross-recv. 0 waits on 1, 1 waits on 0.
    return comm.recv(1 - comm.rank, tag=5)


def _prog_subgroups(comm: ProcessComm):
    group = tuple(r for r in range(comm.size) if r % 2 == comm.rank % 2)
    total = comm.allreduce(np.array([1.0]), group=group)
    return float(total[0])


def _prog_use_after_release(comm: ProcessComm):
    # Injected pool corruption: rank 0 hands its in-flight segment
    # straight back to the free pool without waiting for the credit,
    # so the next big send reuses memory a peer may still be reading.
    big = np.full(80_000, float(comm.rank))  # 640 KB -> shm path
    if comm.rank == 0:
        comm.send(1, big, tag=0)
        t = comm._t
        name = next(iter(t._owned))
        t._free.setdefault(t._seg_size[name], __import__(
            "collections").deque()).append(name)
        comm.send(1, big, tag=1)  # reuses the in-flight segment
        return None
    got0 = comm.recv(0, tag=0)
    got1 = comm.recv(0, tag=1)
    return float(got0[0] + got1[0])


def _prog_double_release(comm: ProcessComm):
    # Injected duplicated credit: after the real round trip, rank 0
    # forges a second shmfree for the same segment.
    from repro.vmpi.mp_comm import _FREE_TAG

    big = np.full(80_000, float(comm.rank))
    if comm.rank == 0:
        comm.send(1, big, tag=0)
        comm.recv(1, tag=1)  # peer's reply implies the credit arrived
        t = comm._t
        t._drain_inbox()
        name = next(iter(t._owned))
        t._note(1, _FREE_TAG, name)  # duplicated credit
        return None
    got = comm.recv(0, tag=0)
    comm.send(0, np.array([1.0]), tag=1)
    return float(got[0])


def _prog_leak(comm: ProcessComm):
    # Injected leak: a big send nobody ever receives.
    big = np.full(80_000, float(comm.rank))
    if comm.rank == 0:
        comm.send(1, big, tag=42)  # rank 1 never posts this recv
    return comm.rank


def _prog_stalled(comm: ProcessComm):
    total = comm.allreduce(np.array([1.0]))
    return float(total[0])


class TestInjectedMismatches:
    def _expect(self, prog, size, rule, **kw):
        with pytest.raises(RankFailureError) as ei:
            run_spmd(prog, size, config=VERIFY, **kw)
        msg = str(ei.value)
        assert rule in msg, msg
        return msg

    def test_wrong_root_raises_mismatch(self):
        msg = self._expect(
            _prog_wrong_root, 3, "SPMD201", collective_timeout=15
        )
        assert "CollectiveMismatchError" in msg
        assert "root=0" in msg and "root=1" in msg
        assert "_prog_wrong_root" in msg  # both call sites named

    def test_skipped_collective_raises_divergence(self):
        msg = self._expect(
            _prog_skip, 3, "SPMD202", collective_timeout=4
        )
        assert "never submitted a signature" in msg

    def test_reordered_collective_raises_divergence(self):
        msg = self._expect(
            _prog_reorder, 2, "SPMD202", collective_timeout=15
        )
        assert "allreduce" in msg and "barrier" in msg

    def test_shape_mismatch_raises(self):
        msg = self._expect(
            _prog_shape_mismatch, 2, "SPMD201", collective_timeout=15
        )
        assert "shape" in msg

    def test_deadlock_cycle_reported_fast(self):
        start = time.monotonic()
        msg = self._expect(
            _prog_deadlock, 2, "SPMD203", collective_timeout=60
        )
        elapsed = time.monotonic() - start
        assert "DeadlockError" in msg
        assert "wait-for cycle" in msg
        assert "rank 0" in msg and "rank 1" in msg
        # The whole point: the cycle is *reported*, not timed out.
        assert elapsed < 30

    def test_use_after_release_raises_211(self):
        msg = self._expect(
            _prog_use_after_release, 2, "SPMD211", collective_timeout=10
        )
        assert "in flight" in msg

    def test_double_release_raises_212(self):
        msg = self._expect(
            _prog_double_release, 2, "SPMD212", collective_timeout=10
        )
        assert "released twice" in msg

    def test_leak_at_exit_raises_213(self):
        msg = self._expect(_prog_leak, 2, "SPMD213", collective_timeout=10)
        assert "leak" in msg


class TestCleanRunsUnperturbed:
    def test_bit_and_trace_identical(self):
        plain = run_spmd(_prog_clean, 4)
        verified = run_spmd(_prog_clean, 4, config=VERIFY)
        for p, v in zip(plain, verified):
            np.testing.assert_array_equal(p["total"], v["total"])
            np.testing.assert_array_equal(p["payload"], v["payload"])
            np.testing.assert_array_equal(p["part"], v["part"])
            np.testing.assert_array_equal(p["gathered"], v["gathered"])
            # Control traffic is counter-neutral: certified trace
            # counters must not move.
            assert p["trace"] == v["trace"]

    def test_disjoint_subgroups_verify(self):
        out = run_spmd(_prog_subgroups, 4, config=VERIFY)
        assert out == [2.0, 2.0, 2.0, 2.0]

    def test_single_rank_verify(self):
        out = run_spmd(_prog_stalled, 1, config=VERIFY)
        assert out == [1.0]

    def test_injected_stall_is_not_a_deadlock(self):
        # A 2 s delay holds rank 1 past the probe threshold; the board
        # shows rank 0 waiting on a *running* rank — no cycle, no
        # false positive.
        from repro.vmpi.faults import FaultPlan

        cfg = CommConfig(
            verify=True, fault_plan=FaultPlan.stall(1, 2.0, op_index=1)
        )
        out = run_spmd(_prog_stalled, 2, config=cfg)
        assert out == [2.0, 2.0]

    def test_verify_requires_p2p(self):
        with pytest.raises(ValueError, match="p2p"):
            run_spmd(_prog_stalled, 2, transport="star", config=VERIFY)


def _prog_sanitizer_probe(comm: ProcessComm):
    # verify=True on a non-shm wire: signature matching stays armed,
    # the shm-lifecycle sanitizer must not (there is no pool to audit).
    return {
        "verifying": comm._vrt is not None,
        "sanitizer_off": comm._t.sanitizer is None,
        "total": float(comm.allreduce(np.array([1.0]))[0]),
    }


@pytest.mark.transport_matrix
class TestVerifyOnTcp:
    """``CommConfig(verify=True)`` degrades gracefully off-shm: the
    signature matcher and deadlock detector keep working over sockets,
    while the shm-lifecycle sanitizer (SPMD211–213) is skipped."""

    def test_clean_run_bit_and_trace_identical(self):
        plain = run_spmd(_prog_clean, 4, transport="tcp")
        verified = run_spmd(_prog_clean, 4, transport="tcp", config=VERIFY)
        for p, v in zip(plain, verified):
            np.testing.assert_array_equal(p["total"], v["total"])
            np.testing.assert_array_equal(p["payload"], v["payload"])
            np.testing.assert_array_equal(p["part"], v["part"])
            np.testing.assert_array_equal(p["gathered"], v["gathered"])
            assert p["trace"] == v["trace"]

    def test_sanitizer_skipped_signature_matching_kept(self):
        out = run_spmd(
            _prog_sanitizer_probe, 2, transport="tcp", config=VERIFY
        )
        for report in out:
            assert report["verifying"]
            assert report["sanitizer_off"]
            assert report["total"] == 2.0

    def test_signature_mismatch_detected(self):
        with pytest.raises(RankFailureError) as ei:
            run_spmd(
                _prog_wrong_root,
                3,
                transport="tcp",
                config=VERIFY,
                collective_timeout=15,
            )
        msg = str(ei.value)
        assert "SPMD201" in msg
        assert "CollectiveMismatchError" in msg

    def test_deadlock_cycle_reported_fast(self):
        start = time.monotonic()
        with pytest.raises(RankFailureError) as ei:
            run_spmd(
                _prog_deadlock,
                2,
                transport="tcp",
                config=VERIFY,
                collective_timeout=60,
            )
        msg = str(ei.value)
        assert "SPMD203" in msg
        assert "wait-for cycle" in msg
        assert time.monotonic() - start < 30


class TestVerifiedDrivers:
    def test_mp_hooi_dt_verify_smoke(self):
        # The CI smoke: a 2x2 grid sweep under full verification must
        # produce the same factorization as the plain run.
        from repro.distributed.mp_hooi import mp_hooi_dt
        from repro.tensor.random import tucker_plus_noise

        x = tucker_plus_noise((12, 10, 8), (3, 2, 2), noise=1e-4, seed=0)
        plain, _ = mp_hooi_dt(x, (3, 2, 2), (2, 2, 1))
        checked, _ = mp_hooi_dt(x, (3, 2, 2), (2, 2, 1), comm_config=VERIFY)
        assert np.array_equal(plain.core, checked.core)
        assert all(
            np.array_equal(a, b)
            for a, b in zip(plain.factors, checked.factors)
        )

    def test_mp_sthosvd_verify_smoke(self):
        from repro.distributed.mp_sthosvd import mp_sthosvd
        from repro.tensor.random import tucker_plus_noise

        x = tucker_plus_noise((12, 10, 8), (3, 2, 2), noise=1e-4, seed=1)
        plain = mp_sthosvd(x, (2, 2, 1), ranks=(3, 2, 2))
        checked = mp_sthosvd(
            x, (2, 2, 1), ranks=(3, 2, 2), comm_config=VERIFY
        )
        assert np.array_equal(plain.core, checked.core)
