"""Cross-cutting accounting invariants of the simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hooi import variant_options
from repro.core.rank_adaptive import RankAdaptiveOptions
from repro.distributed.arrays import SymbolicArray
from repro.distributed.hooi import dist_hooi
from repro.distributed.rank_adaptive import dist_rank_adaptive_hooi
from repro.distributed.sthosvd import dist_sthosvd
from repro.vmpi.collectives import allreduce_blocks, reduce_scatter_blocks


class TestBreakdownAccounting:
    """breakdown must partition the total: sum == simulated_seconds."""

    def test_sthosvd(self):
        x = SymbolicArray((64, 64, 64), np.float32)
        _, stats = dist_sthosvd(x, (1, 4, 4), ranks=(4, 4, 4))
        assert sum(stats.breakdown.values()) == pytest.approx(
            stats.simulated_seconds, rel=1e-12
        )

    @pytest.mark.parametrize("name", ["hooi", "hosi-dt"])
    def test_hooi_variants(self, name):
        x = SymbolicArray((48, 48, 48, 48), np.float32)
        opts = variant_options(name, max_iters=2)
        _, stats = dist_hooi(x, (4, 4, 4, 4), (1, 2, 2, 1), options=opts)
        assert sum(stats.breakdown.values()) == pytest.approx(
            stats.simulated_seconds, rel=1e-12
        )

    def test_rank_adaptive_iterations_partition_total(self, lowrank4):
        opts = RankAdaptiveOptions(max_iters=3, stop_at_threshold=False)
        _, stats = dist_rank_adaptive_hooi(
            lowrank4, 0.05, (4, 5, 3, 4), (1, 2, 2, 1), options=opts
        )
        assert sum(stats.iteration_seconds) == pytest.approx(
            stats.simulated_seconds, rel=1e-12
        )
        # Per-iteration breakdowns partition per-iteration seconds.
        for secs, down in zip(
            stats.iteration_seconds, stats.iteration_breakdowns
        ):
            assert sum(down.values()) == pytest.approx(secs, rel=1e-9)


class TestCostMonotonicity:
    def test_more_ranks_never_slower_overall_shape(self):
        """Simulated time is non-increasing from 1 rank to a few ranks
        for compute-dominated configurations."""
        times = []
        for dims in [(1, 1, 1), (1, 2, 2), (1, 4, 4)]:
            x = SymbolicArray((256, 256, 256), np.float32)
            _, stats = dist_sthosvd(x, dims, ranks=(8, 8, 8))
            times.append(stats.simulated_seconds)
        assert times[0] >= times[1] >= times[2]

    def test_bigger_tensor_costs_more(self):
        def t(n):
            x = SymbolicArray((n, n, n), np.float32)
            _, stats = dist_sthosvd(x, (1, 2, 2), ranks=(4, 4, 4))
            return stats.simulated_seconds

        assert t(32) < t(64) < t(128)


class TestCollectiveProperties:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**6), p=st.integers(1, 6))
    def test_allreduce_linearity(self, seed, p):
        rng = np.random.default_rng(seed)
        a = [rng.standard_normal((3, 2)) for _ in range(p)]
        b = [rng.standard_normal((3, 2)) for _ in range(p)]
        lhs = allreduce_blocks([x + y for x, y in zip(a, b)])
        rhs = [
            x + y
            for x, y in zip(allreduce_blocks(a), allreduce_blocks(b))
        ]
        for l, r in zip(lhs, rhs):
            np.testing.assert_allclose(l, r, atol=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**6), p=st.integers(1, 6))
    def test_reduce_scatter_preserves_sum(self, seed, p):
        rng = np.random.default_rng(seed)
        blocks = [rng.standard_normal((7, 3)) for _ in range(p)]
        scattered = reduce_scatter_blocks(blocks, axis=0)
        np.testing.assert_allclose(
            np.concatenate(scattered, axis=0),
            sum(blocks),
            atol=1e-12,
        )


class TestNonCubicSymbolic:
    def test_anisotropic_symbolic_sthosvd(self):
        """Symbolic mode handles non-cubic shapes and uneven grids."""
        x = SymbolicArray((672, 672, 33, 626), np.float64)
        tucker, stats = dist_sthosvd(
            x, (1, 4, 1, 32), ranks=(20, 20, 8, 30)
        )
        assert tucker is None
        assert stats.ranks == (20, 20, 8, 30)
        assert stats.simulated_seconds > 0

    def test_grid_larger_than_small_mode(self):
        """A grid dimension exceeding a mode's extent yields empty
        blocks but consistent (finite, nonnegative) costs."""
        x = SymbolicArray((64, 2, 64), np.float32)
        _, stats = dist_sthosvd(x, (1, 4, 4), ranks=(4, 1, 4))
        assert np.isfinite(stats.simulated_seconds)
