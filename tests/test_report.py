"""Markdown report assembly."""

from repro.analysis.report import SECTIONS, generate_report


class TestGenerateReport:
    def test_includes_present_sections(self, tmp_path):
        (tmp_path / "table1_flops.txt").write_text("some table\n")
        (tmp_path / "weak_scaling.txt").write_text("weak data\n")
        report = generate_report(tmp_path)
        assert "## Table 1 — flop costs" in report
        assert "some table" in report
        assert "weak data" in report

    def test_lists_missing(self, tmp_path):
        report = generate_report(tmp_path)
        assert "Not regenerated in this run" in report
        assert "Figure 2 (top)" in report

    def test_custom_title(self, tmp_path):
        report = generate_report(tmp_path, title="My run")
        assert report.startswith("# My run")

    def test_sections_cover_all_benches(self):
        """Every save_result stem used by the harness has a section."""
        import re
        from pathlib import Path

        bench_dir = Path(__file__).resolve().parent.parent / "benchmarks"
        stems = set()
        for f in bench_dir.glob("bench_*.py"):
            stems.update(re.findall(r'save_result\(\s*"(\w+)"', f.read_text()))
        known = {s for s, _ in SECTIONS}
        assert stems <= known, stems - known
