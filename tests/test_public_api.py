"""Public API surface stability."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.tensor",
    "repro.linalg",
    "repro.core",
    "repro.vmpi",
    "repro.distributed",
    "repro.datasets",
    "repro.analysis",
    "repro.artifact",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_names_resolve(name):
    """Every name in a package's __all__ is actually importable."""
    mod = importlib.import_module(name)
    assert hasattr(mod, "__all__"), name
    for attr in mod.__all__:
        assert hasattr(mod, attr), f"{name}.{attr}"


@pytest.mark.parametrize("name", PACKAGES)
def test_all_sorted_and_unique(name):
    mod = importlib.import_module(name)
    names = list(mod.__all__)
    assert len(names) == len(set(names)), name


def test_top_level_quickstart_names():
    """The README quickstart's imports exist at the top level."""
    import repro

    for attr in (
        "rank_adaptive_hooi",
        "sthosvd",
        "hooi",
        "tucker_plus_noise",
        "TuckerTensor",
        "LLSVMethod",
    ):
        assert hasattr(repro, attr)


def test_version_dunder():
    import repro

    assert repro.__version__ == "1.0.0"


def test_console_scripts_callable():
    from repro.cli import hooi_main, sthosvd_main

    assert callable(sthosvd_main) and callable(hooi_main)
