"""QR with column pivoting: from-scratch Householder vs LAPACK."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.linalg.qrcp import householder_qrcp, qrcp


def _random(m, n, seed=0, rank=None):
    rng = np.random.default_rng(seed)
    if rank is None:
        return rng.standard_normal((m, n))
    return rng.standard_normal((m, rank)) @ rng.standard_normal((rank, n))


class TestHouseholderQRCP:
    def test_reconstruction(self):
        a = _random(8, 6, seed=1)
        q, r, piv = householder_qrcp(a)
        np.testing.assert_allclose(a[:, piv], q @ r, atol=1e-10)

    def test_orthonormal_q(self):
        a = _random(10, 4, seed=2)
        q, _, _ = householder_qrcp(a)
        np.testing.assert_allclose(q.T @ q, np.eye(4), atol=1e-10)

    def test_r_upper_triangular(self):
        a = _random(7, 7, seed=3)
        _, r, _ = householder_qrcp(a)
        np.testing.assert_allclose(r, np.triu(r), atol=1e-12)

    def test_diagonal_decreasing(self):
        """Pivoting sorts |R_jj| non-increasing (energy ordering the
        core-analysis heuristic relies on)."""
        a = _random(12, 8, seed=4)
        _, r, _ = householder_qrcp(a)
        d = np.abs(np.diag(r))
        assert np.all(d[:-1] >= d[1:] - 1e-10)

    def test_truncated_rank(self):
        a = _random(9, 6, seed=5)
        q, r, piv = householder_qrcp(a, rank=3)
        assert q.shape == (9, 3)
        assert r.shape == (3, 6)
        np.testing.assert_allclose(q.T @ q, np.eye(3), atol=1e-10)

    def test_wide_matrix(self):
        a = _random(4, 9, seed=6)
        q, r, piv = householder_qrcp(a)
        assert q.shape == (4, 4)
        np.testing.assert_allclose(a[:, piv], q @ r, atol=1e-10)

    def test_rank_deficient(self):
        a = _random(8, 6, seed=7, rank=3)
        q, r, piv = householder_qrcp(a)
        d = np.abs(np.diag(r))
        assert d[3] < 1e-8 * d[0]

    def test_zero_matrix(self):
        q, r, piv = householder_qrcp(np.zeros((5, 3)))
        np.testing.assert_allclose(q.T @ q, np.eye(3), atol=1e-12)
        np.testing.assert_allclose(r, 0.0, atol=1e-12)

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            householder_qrcp(_random(4, 4), rank=0)

    @settings(max_examples=25, deadline=None)
    @given(
        m=st.integers(2, 12),
        n=st.integers(2, 10),
        seed=st.integers(0, 10**6),
    )
    def test_reconstruction_property(self, m, n, seed):
        a = _random(m, n, seed=seed)
        q, r, piv = householder_qrcp(a)
        np.testing.assert_allclose(a[:, piv], q @ r, atol=1e-8)

    def test_same_column_space_as_lapack(self):
        a = _random(10, 5, seed=8)
        q_h, _, _ = householder_qrcp(a)
        q_l, _, _ = qrcp(a, method="lapack")
        # Same subspace: projectors agree.
        np.testing.assert_allclose(
            q_h @ q_h.T, q_l @ q_l.T, atol=1e-9
        )


class TestQRCPDispatch:
    def test_lapack_reconstruction(self):
        a = _random(8, 5, seed=9)
        q, r, piv = qrcp(a)
        np.testing.assert_allclose(a[:, piv], q @ r, atol=1e-10)

    def test_rank_truncation(self):
        a = _random(8, 5, seed=10)
        q, r, _ = qrcp(a, rank=2)
        assert q.shape == (8, 2)
        assert r.shape == (2, 5)

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            qrcp(_random(3, 3), method="cholesky")

    def test_householder_method_selected(self):
        a = _random(6, 4, seed=11)
        q, r, piv = qrcp(a, method="householder")
        np.testing.assert_allclose(a[:, piv], q @ r, atol=1e-9)
