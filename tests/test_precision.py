"""Mixed-precision behaviour (the paper runs float32 synthetic /
float32-float64 datasets)."""

import numpy as np
import pytest

from repro.core.hooi import variant_options, hooi
from repro.core.rank_adaptive import rank_adaptive_hooi
from repro.core.sthosvd import sthosvd
from repro.tensor.random import tucker_plus_noise


@pytest.fixture
def x32():
    return tucker_plus_noise(
        (16, 14, 12), (3, 3, 3), noise=1e-3, seed=0, dtype=np.float32
    )


class TestFloat32Pipelines:
    def test_sthosvd_dtype_flow(self, x32):
        tucker, _ = sthosvd(x32, eps=0.01)
        assert tucker.relative_error(x32) <= 0.01
        # Factors stay in a floating type compatible with the input.
        rec = tucker.reconstruct()
        assert rec.dtype in (np.float32, np.float64)

    @pytest.mark.parametrize("name", ["hooi", "hosi-dt"])
    def test_hooi_variants_float32(self, x32, name):
        opts = variant_options(name, max_iters=2, seed=1)
        tucker, _ = hooi(x32, (3, 3, 3), opts)
        assert tucker.relative_error(x32) < 5e-3

    def test_rank_adaptive_float32(self, x32):
        tucker, stats = rank_adaptive_hooi(x32, 0.01, (4, 4, 4))
        assert stats.converged
        assert tucker.relative_error(x32) <= 0.01 * (1 + 1e-5)

    def test_error_floor_scales_with_precision(self):
        """float32 cannot recover below ~1e-6 relative error; float64
        goes much lower on the same noiseless problem."""
        shapes, ranks = (14, 12, 10), (3, 3, 3)
        errs = {}
        for dtype in (np.float32, np.float64):
            x = tucker_plus_noise(
                shapes, ranks, noise=0.0, seed=2, dtype=dtype
            )
            tucker, _ = sthosvd(x, ranks=ranks)
            errs[dtype] = tucker.relative_error(x)
        assert errs[np.float64] < 1e-12
        assert errs[np.float32] < 1e-5
        assert errs[np.float64] < errs[np.float32]

    def test_distributed_float32(self, x32):
        from repro.distributed.sthosvd import dist_sthosvd

        tucker, stats = dist_sthosvd(x32, (2, 1, 2), eps=0.01)
        assert tucker.relative_error(x32) <= 0.01
        # float32 halves the words... the ledger counts elements, so
        # the simulated volume is dtype-independent by design.
        assert stats.simulated_seconds > 0

    def test_spmd_float32(self, x32):
        from repro.distributed.spmd import spmd_sthosvd

        tucker = spmd_sthosvd(x32, (2, 2, 1), eps=0.01)
        assert tucker.relative_error(x32) <= 0.01
