"""TTM kernels: identities against unfoldings, multi-TTM semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.dense import fold, unfold
from repro.tensor.ops import (
    contract_all_but_mode,
    gram,
    multi_ttm,
    relative_error,
    ttm,
    ttm_flops,
)


class TestTTM:
    def test_matches_unfolding_definition(self, small3, rng):
        for mode in range(3):
            u = rng.standard_normal((7, small3.shape[mode]))
            y = ttm(small3, u, mode)
            np.testing.assert_allclose(
                unfold(y, mode), u @ unfold(small3, mode), atol=1e-12
            )

    def test_transpose(self, small3, rng):
        u = rng.standard_normal((small3.shape[1], 3))
        y = ttm(small3, u, 1, transpose=True)
        np.testing.assert_allclose(
            unfold(y, 1), u.T @ unfold(small3, 1), atol=1e-12
        )

    def test_output_shape(self, small4, rng):
        u = rng.standard_normal((9, small4.shape[2]))
        y = ttm(small4, u, 2)
        assert y.shape == (5, 4, 9, 6)

    def test_identity_matrix_is_noop(self, small3):
        eye = np.eye(small3.shape[0])
        np.testing.assert_allclose(ttm(small3, eye, 0), small3, atol=1e-13)

    def test_dimension_mismatch(self, small3, rng):
        u = rng.standard_normal((4, small3.shape[0] + 1))
        with pytest.raises(ValueError):
            ttm(small3, u, 0)

    def test_non_matrix_factor(self, small3, rng):
        with pytest.raises(ValueError):
            ttm(small3, rng.standard_normal(6), 0)

    def test_successive_same_mode_ttms_compose(self, small3, rng):
        a = rng.standard_normal((5, small3.shape[0]))
        b = rng.standard_normal((3, 5))
        np.testing.assert_allclose(
            ttm(ttm(small3, a, 0), b, 0), ttm(small3, b @ a, 0), atol=1e-11
        )


class TestMultiTTM:
    def test_mode_order_invariance(self, small3, rng):
        """TTMs in distinct modes commute."""
        mats = [
            rng.standard_normal((2, small3.shape[0])),
            rng.standard_normal((3, small3.shape[1])),
            rng.standard_normal((2, small3.shape[2])),
        ]
        ref = ttm(ttm(ttm(small3, mats[0], 0), mats[1], 1), mats[2], 2)
        alt = ttm(ttm(ttm(small3, mats[2], 2), mats[0], 0), mats[1], 1)
        np.testing.assert_allclose(ref, alt, atol=1e-11)
        np.testing.assert_allclose(multi_ttm(small3, mats), ref, atol=1e-11)

    def test_skip(self, small3, rng):
        mats = [
            rng.standard_normal((small3.shape[j], 2)) for j in range(3)
        ]
        y = multi_ttm(small3, mats, transpose=True, skip=1)
        assert y.shape == (2, small3.shape[1], 2)

    def test_none_entries_skipped(self, small3, rng):
        u = rng.standard_normal((2, small3.shape[2]))
        y = multi_ttm(small3, [None, None, u])
        np.testing.assert_allclose(y, ttm(small3, u, 2), atol=1e-12)

    def test_explicit_modes(self, small4, rng):
        u1 = rng.standard_normal((2, small4.shape[1]))
        u3 = rng.standard_normal((2, small4.shape[3]))
        y = multi_ttm(small4, [u1, u3], modes=[1, 3])
        ref = ttm(ttm(small4, u1, 1), u3, 3)
        np.testing.assert_allclose(y, ref, atol=1e-12)

    def test_duplicate_modes_rejected(self, small3, rng):
        u = rng.standard_normal((2, small3.shape[0]))
        with pytest.raises(ValueError):
            multi_ttm(small3, [u, u], modes=[0, 0])

    def test_wrong_length_rejected(self, small3, rng):
        u = rng.standard_normal((2, small3.shape[0]))
        with pytest.raises(ValueError):
            multi_ttm(small3, [u])

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_orthonormal_compression_reduces_norm(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((6, 5, 4))
        from repro.tensor.random import random_orthonormal

        mats = [
            random_orthonormal(n, 2, seed=rng) for n in x.shape
        ]
        core = multi_ttm(x, mats, transpose=True)
        assert np.linalg.norm(core) <= np.linalg.norm(x) + 1e-10


class TestGram:
    def test_matches_unfolding(self, small4):
        for mode in range(small4.ndim):
            mat = unfold(small4, mode)
            np.testing.assert_allclose(
                gram(small4, mode), mat @ mat.T, atol=1e-10
            )

    def test_symmetric_psd(self, small3):
        g = gram(small3, 0)
        np.testing.assert_allclose(g, g.T, atol=1e-13)
        assert np.linalg.eigvalsh(g).min() >= -1e-10

    def test_trace_is_squared_norm(self, small3):
        g = gram(small3, 1)
        assert np.trace(g) == pytest.approx(np.linalg.norm(small3) ** 2)


class TestContractAllButMode:
    def test_matches_unfolding_product(self, rng):
        a = rng.standard_normal((6, 4, 5))
        b = rng.standard_normal((3, 4, 5))
        z = contract_all_but_mode(a, b, 0)
        expected = unfold(a, 0) @ unfold(b, 0).T
        np.testing.assert_allclose(z, expected, atol=1e-11)

    def test_all_modes(self, rng):
        a = rng.standard_normal((4, 5, 3, 2))
        for mode in range(4):
            shape_b = list(a.shape)
            shape_b[mode] = 2
            b = rng.standard_normal(shape_b)
            z = contract_all_but_mode(a, b, mode)
            np.testing.assert_allclose(
                z, unfold(a, mode) @ unfold(b, mode).T, atol=1e-11
            )

    def test_gram_special_case(self, small3):
        np.testing.assert_allclose(
            contract_all_but_mode(small3, small3, 1),
            gram(small3, 1),
            atol=1e-10,
        )

    def test_shape_mismatch(self, rng):
        a = rng.standard_normal((4, 5, 3))
        b = rng.standard_normal((2, 5, 4))
        with pytest.raises(ValueError):
            contract_all_but_mode(a, b, 0)

    def test_order_mismatch(self, rng):
        a = rng.standard_normal((4, 5, 3))
        b = rng.standard_normal((4, 5))
        with pytest.raises(ValueError):
            contract_all_but_mode(a, b, 0)


class TestRelativeError:
    def test_zero_for_equal(self, small3):
        assert relative_error(small3, small3) == 0.0

    def test_scaling(self, small3):
        assert relative_error(small3, 2 * small3) == pytest.approx(1.0)

    def test_zero_reference(self):
        z = np.zeros((2, 2))
        assert relative_error(z, z) == 0.0
        assert relative_error(z, np.ones((2, 2))) == np.inf


def test_ttm_flops():
    assert ttm_flops((10, 10, 10), 5, 0) == 2 * 5 * 1000
    assert ttm_flops((4, 3), 2, 1) == 2 * 2 * 12
