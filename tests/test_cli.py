"""End-to-end CLI driver tests (artifact-style parameter files)."""

import pytest

from repro.cli import hooi_main, sthosvd_main
from repro.core.errors import ConfigError

STHOSVD_CFG = """
Print options = true
Print timings = true
Noise = 0.0001
SV Threshold = 0.0
Perform STHOSVD = true
Processor grid dims = 1 2 2 2
Global dims = 20 20 20 20
Ranks = 4 4 4 4
"""

HOOI_CFG = """
Print options = true
Print timings = true
Dimension Tree Memoization = {dt}
HOOI Adapt core tensor gather type = false
Noise = 0.0001
HOOI-Adapt Threshold = {adapt}
HOOI max iters = {iters}
SVD Method = {svd}
Processor grid dims = 1 2 2 1
Global dims = 20 20 20 20
Construction Ranks = 4 4 4 4
Decomposition Ranks = {dranks}
"""


def _write(tmp_path, text, name="param.cfg"):
    f = tmp_path / name
    f.write_text(text)
    return str(f)


class TestSTHOSVDDriver:
    def test_fixed_rank(self, tmp_path, capsys):
        rc = sthosvd_main(["--parameter-file", _write(tmp_path, STHOSVD_CFG)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "STHOSVD ranks: (4, 4, 4, 4)" in out
        assert "Simulated wall time" in out
        assert "Gram" in out

    def test_error_specified(self, tmp_path, capsys):
        cfg = STHOSVD_CFG.replace("SV Threshold = 0.0", "SV Threshold = 0.01")
        sthosvd_main(["--parameter-file", _write(tmp_path, cfg)])
        out = capsys.readouterr().out
        assert "STHOSVD ranks: (4, 4, 4, 4)" in out

    def test_prints_options(self, tmp_path, capsys):
        sthosvd_main(["--parameter-file", _write(tmp_path, STHOSVD_CFG)])
        out = capsys.readouterr().out
        assert "global dims = 20 20 20 20" in out


class TestHOOIDriver:
    @pytest.mark.parametrize(
        "dt,svd,label",
        [
            ("false", 0, "HOOI"),
            ("true", 0, "HOOI-DT"),
            ("false", 2, "HOSI"),
            ("true", 2, "HOSI-DT"),
        ],
    )
    def test_fixed_rank_variants(self, tmp_path, capsys, dt, svd, label):
        cfg = HOOI_CFG.format(
            dt=dt, adapt=0.0, iters=2, svd=svd, dranks="4 4 4 4"
        )
        rc = hooi_main(["--parameter-file", _write(tmp_path, cfg)])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"Running {label}" in out
        assert "iteration 2: approximation error" in out
        assert "Final ranks: (4, 4, 4, 4)" in out

    def test_rank_adaptive(self, tmp_path, capsys):
        cfg = HOOI_CFG.format(
            dt="true", adapt=0.01, iters=3, svd=2, dranks="6 6 6 6"
        )
        hooi_main(["--parameter-file", _write(tmp_path, cfg)])
        out = capsys.readouterr().out
        assert "rank-adaptive HOSI-DT" in out
        assert "truncated to (4, 4, 4, 4)" in out
        assert "Converged: True" in out

    def test_bad_svd_method(self, tmp_path):
        cfg = HOOI_CFG.format(
            dt="true", adapt=0.0, iters=2, svd=7, dranks="4 4 4 4"
        )
        with pytest.raises(ConfigError):
            hooi_main(["--parameter-file", _write(tmp_path, cfg)])

    def test_missing_required_key(self, tmp_path):
        with pytest.raises(ConfigError):
            hooi_main(
                ["--parameter-file", _write(tmp_path, "Noise = 0.1\n")]
            )
