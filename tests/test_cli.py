"""End-to-end CLI driver tests (artifact-style parameter files)."""

import re

import pytest

from repro.cli import hooi_main, main, sthosvd_main
from repro.core.errors import ConfigError

STHOSVD_CFG = """
Print options = true
Print timings = true
Noise = 0.0001
SV Threshold = 0.0
Perform STHOSVD = true
Processor grid dims = 1 2 2 2
Global dims = 20 20 20 20
Ranks = 4 4 4 4
"""

HOOI_CFG = """
Print options = true
Print timings = true
Dimension Tree Memoization = {dt}
HOOI Adapt core tensor gather type = false
Noise = 0.0001
HOOI-Adapt Threshold = {adapt}
HOOI max iters = {iters}
SVD Method = {svd}
Processor grid dims = 1 2 2 1
Global dims = 20 20 20 20
Construction Ranks = 4 4 4 4
Decomposition Ranks = {dranks}
"""


def _write(tmp_path, text, name="param.cfg"):
    f = tmp_path / name
    f.write_text(text)
    return str(f)


class TestSTHOSVDDriver:
    def test_fixed_rank(self, tmp_path, capsys):
        rc = sthosvd_main(["--parameter-file", _write(tmp_path, STHOSVD_CFG)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "STHOSVD ranks: (4, 4, 4, 4)" in out
        assert "Simulated wall time" in out
        assert "Gram" in out

    def test_error_specified(self, tmp_path, capsys):
        cfg = STHOSVD_CFG.replace("SV Threshold = 0.0", "SV Threshold = 0.01")
        sthosvd_main(["--parameter-file", _write(tmp_path, cfg)])
        out = capsys.readouterr().out
        assert "STHOSVD ranks: (4, 4, 4, 4)" in out

    def test_prints_options(self, tmp_path, capsys):
        sthosvd_main(["--parameter-file", _write(tmp_path, STHOSVD_CFG)])
        out = capsys.readouterr().out
        assert "global dims = 20 20 20 20" in out


class TestHOOIDriver:
    @pytest.mark.parametrize(
        "dt,svd,label",
        [
            ("false", 0, "HOOI"),
            ("true", 0, "HOOI-DT"),
            ("false", 2, "HOSI"),
            ("true", 2, "HOSI-DT"),
        ],
    )
    def test_fixed_rank_variants(self, tmp_path, capsys, dt, svd, label):
        cfg = HOOI_CFG.format(
            dt=dt, adapt=0.0, iters=2, svd=svd, dranks="4 4 4 4"
        )
        rc = hooi_main(["--parameter-file", _write(tmp_path, cfg)])
        assert rc == 0
        out = capsys.readouterr().out
        assert f"Running {label}" in out
        assert "iteration 2: approximation error" in out
        assert "Final ranks: (4, 4, 4, 4)" in out

    def test_rank_adaptive(self, tmp_path, capsys):
        cfg = HOOI_CFG.format(
            dt="true", adapt=0.01, iters=3, svd=2, dranks="6 6 6 6"
        )
        hooi_main(["--parameter-file", _write(tmp_path, cfg)])
        out = capsys.readouterr().out
        assert "rank-adaptive HOSI-DT" in out
        assert "truncated to (4, 4, 4, 4)" in out
        assert "Converged: True" in out

    def test_bad_svd_method(self, tmp_path):
        cfg = HOOI_CFG.format(
            dt="true", adapt=0.0, iters=2, svd=7, dranks="4 4 4 4"
        )
        with pytest.raises(ConfigError):
            hooi_main(["--parameter-file", _write(tmp_path, cfg)])

    def test_missing_required_key(self, tmp_path):
        with pytest.raises(ConfigError):
            hooi_main(
                ["--parameter-file", _write(tmp_path, "Noise = 0.1\n")]
            )


# Small fixed-rank configs for the (real multi-process) checkpoint path.
MP_HOOI_CFG = """
Print options = false
Print timings = false
Dimension Tree Memoization = true
Noise = 0.0001
HOOI-Adapt Threshold = 0.0
HOOI max iters = 2
SVD Method = 0
Processor grid dims = 2 1 1
Global dims = 10 9 8
Construction Ranks = 3 3 2
Decomposition Ranks = 3 3 2
"""

MP_STHOSVD_CFG = """
Print options = false
Print timings = false
Noise = 0.0001
SV Threshold = 0.0
Processor grid dims = 2 1 1
Global dims = 10 9 8
Ranks = 3 3 2
"""


def _final_error(out: str) -> str:
    m = re.search(r"Final relative error: (\S+)", out)
    assert m, out
    return m.group(1)


class TestCheckpointResumeCLI:
    def test_hooi_checkpoint_then_resume(self, tmp_path, capsys):
        pfile = _write(tmp_path, MP_HOOI_CFG)
        ckdir = tmp_path / "ck"
        rc = main(
            ["hooi", "--parameter-file", pfile, "--checkpoint-dir", str(ckdir)]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Checkpointing to" in out
        assert (ckdir / "checkpoint.npz").exists()
        assert (ckdir / "parameters.cfg").read_text() == MP_HOOI_CFG
        err_run = _final_error(out)

        rc = main(["resume", str(ckdir / "checkpoint.npz")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Resuming mp_hooi_dt" in out
        assert _final_error(out) == err_run

    def test_sthosvd_checkpoint_then_resume(self, tmp_path, capsys):
        pfile = _write(tmp_path, MP_STHOSVD_CFG)
        ckdir = tmp_path / "ck"
        rc = main(
            [
                "sthosvd",
                "--parameter-file",
                pfile,
                "--checkpoint-dir",
                str(ckdir),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Running STHOSVD on 2 processes" in out
        err_run = _final_error(out)

        rc = main(["resume", str(ckdir / "checkpoint.npz")])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Resuming mp_sthosvd" in out
        assert _final_error(out) == err_run

    def test_checkpoint_dir_parameter_key(self, tmp_path, capsys):
        ckdir = tmp_path / "from-params"
        cfg = MP_HOOI_CFG + f"Checkpoint dir = {ckdir}\n"
        rc = hooi_main(["--parameter-file", _write(tmp_path, cfg)])
        assert rc == 0
        assert (ckdir / "checkpoint.npz").exists()
        capsys.readouterr()

    def test_resume_without_parameter_snapshot(self, tmp_path, capsys):
        pfile = _write(tmp_path, MP_HOOI_CFG)
        ckdir = tmp_path / "ck"
        main(
            ["hooi", "--parameter-file", pfile, "--checkpoint-dir", str(ckdir)]
        )
        capsys.readouterr()
        (ckdir / "parameters.cfg").unlink()
        with pytest.raises(ConfigError, match="no parameter file"):
            main(["resume", str(ckdir / "checkpoint.npz")])


class TestUmbrellaDispatcher:
    def test_unknown_command(self, capsys):
        assert main(["frobnicate"]) == 2
        assert "unknown command" in capsys.readouterr().err

    def test_no_command(self, capsys):
        assert main([]) == 2
        assert "usage: repro" in capsys.readouterr().err

    def test_help(self, capsys):
        assert main(["-h"]) == 0
        assert "usage: repro" in capsys.readouterr().err
