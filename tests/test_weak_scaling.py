"""Weak-scaling extension study."""

import pytest

from repro.analysis.scaling import weak_scaling


class TestWeakScaling:
    def test_points_per_algo_and_p(self):
        pts = weak_scaling(
            (64, 64, 64), (4, 4, 4), [1, 8],
            algorithms=("hosi-dt", "sthosvd"),
        )
        assert len(pts) == 4

    def test_hosi_dt_near_flat(self):
        """Per-rank work constant -> near-flat HOSI-DT weak scaling
        (communication adds a mild slope)."""
        pts = weak_scaling(
            (64, 64, 64), (4, 4, 4), [1, 8, 64],
            algorithms=("hosi-dt",),
        )
        t = {p.p: p.seconds for p in pts}
        assert t[64] < 4 * t[1]

    def test_sthosvd_grows_with_p(self):
        """STHOSVD's sequential EVD scales with the *global* mode size,
        so its weak-scaling curve climbs steeply."""
        pts = weak_scaling(
            (256, 256, 256), (8, 8, 8), [1, 64],
            algorithms=("sthosvd", "hosi-dt"),
        )
        t = {(p.algorithm, p.p): p.seconds for p in pts}
        sth_growth = t[("sthosvd", 64)] / t[("sthosvd", 1)]
        hosi_growth = t[("hosi-dt", 64)] / t[("hosi-dt", 1)]
        assert sth_growth > 2 * hosi_growth

    def test_shape_grows(self):
        pts = weak_scaling(
            (32, 32, 32), (4, 4, 4), [8], algorithms=("hosi-dt",)
        )
        # At p=8 each mode doubles: the best grid covers a 64^3 tensor.
        assert pts[0].p == 8
