"""Artifact-style dataset rank study workflow."""

import json

import pytest

from repro.artifact import (
    collect_rank_experiments,
    generate_rank_experiments,
    run_rank_experiments,
)
from repro.core.errors import ConfigError


@pytest.fixture
def study(tmp_path):
    out = generate_rank_experiments(
        tmp_path / "rank",
        dataset="miranda",
        dataset_kwargs={"n": 24},
        cores=16,
        tolerances=(0.1,),
        max_iters=3,
    )
    return out


class TestGenerate:
    def test_manifest(self, study):
        manifest = json.loads((study / "manifest.json").read_text())
        assert manifest["dataset"] == "miranda"
        assert manifest["cores"] == 16

    def test_default_cores_from_registry(self, tmp_path):
        out = generate_rank_experiments(
            tmp_path / "r2", dataset="hcci"
        )
        manifest = json.loads((out / "manifest.json").read_text())
        assert manifest["cores"] == 128  # paper's HCCI core count

    def test_unknown_dataset(self, tmp_path):
        with pytest.raises(ConfigError):
            generate_rank_experiments(tmp_path / "bad", dataset="nyx")


class TestRunCollect:
    def test_run_row_count(self, study):
        rows = run_rank_experiments(study)
        # 1 baseline + 3 starts x 3 iterations per tolerance.
        assert rows == 1 + 9

    def test_collect(self, study):
        run_rank_experiments(study)
        text = collect_rank_experiments(study)
        assert "miranda rank study" in text
        assert "sthosvd" in text
        assert "ra-hosi-dt (over)" in text
        assert (study / "figure.txt").exists()

    def test_collect_before_run(self, study):
        with pytest.raises(FileNotFoundError):
            collect_rank_experiments(study)
