"""CSV persistence round trips."""

import numpy as np
import pytest

from repro.analysis.csv_io import (
    read_scaling_csv,
    write_dataset_csv,
    write_scaling_csv,
)
from repro.analysis.scaling import ScalingPoint, strong_scaling


class TestScalingCSV:
    def test_roundtrip(self, tmp_path):
        pts = [
            ScalingPoint("sthosvd", 16, (1, 4, 4), 1.25, {"evd": 1.0}),
            ScalingPoint("hosi-dt", 16, (4, 2, 2), 0.5, {}),
        ]
        f = tmp_path / "scale.csv"
        write_scaling_csv(pts, f)
        got = read_scaling_csv(f)
        assert len(got) == 2
        assert got[0].algorithm == "sthosvd"
        assert got[0].grid == (1, 4, 4)
        assert got[0].seconds == 1.25
        assert got[1].p == 16

    def test_real_sweep_roundtrip(self, tmp_path):
        pts = strong_scaling(
            (32, 32, 32), (4, 4, 4), [1, 4], algorithms=("hosi-dt",)
        )
        f = tmp_path / "sweep.csv"
        write_scaling_csv(pts, f)
        got = read_scaling_csv(f)
        assert [(p.algorithm, p.p, p.seconds) for p in got] == [
            (p.algorithm, p.p, p.seconds) for p in pts
        ]


class TestDatasetCSV:
    def test_writes_all_rows(self, tmp_path):
        from repro.analysis.experiments import run_dataset_experiment
        from repro.datasets import miranda_like

        x = miranda_like(24, seed=0).astype(np.float64)
        exp = run_dataset_experiment(
            "miranda", x, cores=16, tolerances=(0.1,), seed=0
        )
        f = tmp_path / "dataset.csv"
        write_dataset_csv(exp, f)
        lines = f.read_text().strip().splitlines()
        # header + 1 baseline + 3 starts x 3 iterations
        assert len(lines) == 1 + 1 + 9
        assert lines[1].startswith("miranda,0.1,sthosvd")
        assert any("ra-hosi-dt,under" in ln for ln in lines)
