"""Unit tests for the Transport ABC and its backends.

The suite drives :class:`TcpSocketTransport` *in process* — two or
three transports meshed over loopback from threads — so framing,
timeout, and lifecycle behavior is tested without the launcher in the
way, plus launcher-shim smoke tests for ``repro run --backend tcp``.
"""

from __future__ import annotations

import pickle
import socket
import struct
import subprocess
import sys
import threading

import numpy as np
import pytest

from repro.vmpi.mp_comm import CommConfig
from repro.vmpi.transport import (
    CollectiveTimeoutError,
    ShmPoolTransport,
    TcpSocketTransport,
    Transport,
    TransportClosedError,
    open_rendezvous_listener,
    serve_rendezvous,
)


def _tcp_mesh(
    size: int, config: CommConfig | None = None
) -> list[TcpSocketTransport]:
    """Mesh ``size`` TcpSocketTransports over loopback, in threads
    (constructors block on each other's rendezvous check-in)."""
    config = config or CommConfig(collective_timeout=10.0)
    listener = open_rendezvous_listener("127.0.0.1")
    rendezvous = listener.getsockname()[:2]
    server = threading.Thread(
        target=serve_rendezvous, args=(listener, size, 10.0), daemon=True
    )
    server.start()
    out: list[TcpSocketTransport | None] = [None] * size
    errs: list[Exception] = []

    def build(rank: int) -> None:
        try:
            out[rank] = TcpSocketTransport(rank, size, config, rendezvous)
        except Exception as exc:  # pragma: no cover - setup failure
            errs.append(exc)

    threads = [
        threading.Thread(target=build, args=(r,)) for r in range(size)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=15.0)
    server.join(timeout=15.0)
    listener.close()
    assert not errs, errs
    assert all(t is not None for t in out)
    return out  # type: ignore[return-value]


@pytest.fixture
def pair():
    mesh = _tcp_mesh(2)
    yield mesh
    for t in mesh:
        t.close()


class TestTcpFraming:
    @pytest.mark.parametrize(
        "nbytes",
        [0, 1, 7, 8, 255, 4096, (1 << 18) + 13, (1 << 21) + 1],
    )
    def test_array_roundtrip_sizes(self, pair, nbytes):
        """Frames round-trip at every size class: empty, sub-header,
        pool-chunk-sized, and beyond the shm pool's largest class."""
        a, b = pair
        payload = np.arange(nbytes, dtype=np.uint8)
        a.send(1, (1, "x"), payload)
        got = b.recv(0, (1, "x"), timeout=10.0)
        np.testing.assert_array_equal(got, payload)
        assert got.dtype == payload.dtype

    def test_random_payload_property(self, pair):
        """Property-style sweep: random dtypes/shapes/objects arrive
        bit-identically and in order."""
        a, b = pair
        rng = np.random.default_rng(0)
        sent = []
        for i in range(40):
            kind = rng.integers(3)
            if kind == 0:
                n = int(rng.integers(0, 5000))
                payload = rng.standard_normal(n)
            elif kind == 1:
                payload = {
                    int(k): rng.standard_normal(int(rng.integers(1, 50)))
                    for k in range(int(rng.integers(1, 4)))
                }
            else:
                payload = ("token", int(rng.integers(1 << 30)))
            sent.append(payload)
            a.send(1, (2, i), payload)
        for i, payload in enumerate(sent):
            got = b.recv(0, (2, i), timeout=10.0)
            if isinstance(payload, np.ndarray):
                np.testing.assert_array_equal(got, payload)
            elif isinstance(payload, dict):
                assert sorted(got) == sorted(payload)
                for k in payload:
                    np.testing.assert_array_equal(got[k], payload[k])
            else:
                assert got == payload

    def test_noncontiguous_array(self, pair):
        a, b = pair
        base = np.arange(64.0).reshape(8, 8)
        a.send(1, (3, "nc"), base[:, ::2])
        np.testing.assert_array_equal(
            b.recv(0, (3, "nc"), timeout=10.0), base[:, ::2]
        )

    def test_zero_d_array(self, pair):
        a, b = pair
        a.send(1, (4, "0d"), np.float64(3.5) + np.zeros(()))
        got = b.recv(0, (4, "0d"), timeout=10.0)
        assert got.shape == ()
        assert float(got) == 3.5

    def test_self_send(self, pair):
        a, _ = pair
        a.send(0, (5, "self"), np.array([1.0, 2.0]))
        np.testing.assert_array_equal(
            a.recv(0, (5, "self"), timeout=5.0), [1.0, 2.0]
        )

    def test_counters_count_payload_not_wire(self, pair):
        """Counters account array words/bytes (trace-identical to the
        shm backend), not pickled frame bytes."""
        a, b = pair
        payload = np.zeros(1000)
        a.send(1, (6, "c"), payload)
        b.recv(0, (6, "c"), timeout=10.0)
        assert a.sent_messages == 1
        assert a.sent_words == 1000
        assert a.sent_bytes == 8000
        assert b.recv_messages == 1
        assert b.recv_words == 1000
        assert b.recv_bytes == 8000
        assert a.shm_messages == b.shm_messages == 0


class TestTcpTimeouts:
    def test_recv_timeout(self, pair):
        _, b = pair
        with pytest.raises(CollectiveTimeoutError, match="diverged"):
            b.recv(0, (9, "never"), timeout=0.3)

    def test_timeout_is_a_runtime_error_subclass(self):
        assert issubclass(TransportClosedError, CollectiveTimeoutError)
        assert issubclass(CollectiveTimeoutError, RuntimeError)

    def test_rendezvous_timeout_when_ranks_missing(self):
        listener = open_rendezvous_listener("127.0.0.1")
        try:
            with pytest.raises(CollectiveTimeoutError, match="checked in"):
                serve_rendezvous(listener, size=2, timeout=0.3)
        finally:
            listener.close()

    def test_mesh_setup_timeout_without_rendezvous_server(self):
        # Nobody listening at the rendezvous address: setup must fail
        # with a timeout, not hang.
        dead = open_rendezvous_listener("127.0.0.1")
        addr = dead.getsockname()[:2]
        dead.close()
        cfg = CommConfig(tcp_connect_timeout=0.5)
        with pytest.raises(CollectiveTimeoutError, match="connect"):
            TcpSocketTransport(0, 2, cfg, addr)

    def test_requires_rendezvous_for_multirank(self):
        with pytest.raises(ValueError, match="rendezvous"):
            TcpSocketTransport(0, 2, CommConfig(), None)

    def test_single_rank_needs_no_rendezvous(self):
        t = TcpSocketTransport(0, 1, CommConfig())
        t.send(0, (1, "a"), np.array([7.0]))
        np.testing.assert_array_equal(t.recv(0, (1, "a")), [7.0])
        t.close()


class TestTcpLifecycle:
    def test_double_close_is_safe(self):
        mesh = _tcp_mesh(2)
        for t in mesh:
            t.close()
        for t in mesh:
            t.close()  # second close must be a no-op

    def test_close_flushes_buffered_sends(self):
        """A rank that sends and immediately closes must not lose the
        tail: close() drains the tx buffers before the FIN."""
        a, b = _tcp_mesh(2)
        payload = np.arange(200_000, dtype=np.float64)
        a.send(1, (1, "tail"), payload)
        a.close()
        got = b.recv(0, (1, "tail"), timeout=10.0)
        np.testing.assert_array_equal(got, payload)
        b.close()

    def test_peer_close_raises_instead_of_full_timeout(self):
        """After a peer's clean close, waiting on it raises promptly
        (TransportClosedError) instead of burning the whole
        collective timeout."""
        a, b = _tcp_mesh(2, CommConfig(collective_timeout=30.0))
        a.close()
        with pytest.raises(TransportClosedError, match="closed"):
            b.recv(0, (1, "gone"), timeout=30.0)
        b.close()

    def test_torn_frame_detected(self):
        """A peer that dies mid-frame (header promised more bytes than
        arrived) surfaces as a torn-frame TransportClosedError — the
        failure mode shm cannot express."""
        a, b = _tcp_mesh(2)
        # Rank 0 writes a raw frame header promising 1000 bytes, sends
        # only 2, then closes the socket underneath the transport.
        sock = a._peers[1]
        sock.setblocking(True)
        sock.sendall(struct.pack(">Q", 1000) + b"xy")
        sock.close()
        a._sel.close()
        a._peers.clear()
        a._closed = True
        with pytest.raises(TransportClosedError, match="torn frame"):
            b.recv(0, (1, "torn"), timeout=10.0)
        b.close()

    def test_no_leaked_fds_after_close(self):
        """Selector and sockets are released on close: the transport
        holds no live peer sockets afterwards."""
        a, b = _tcp_mesh(2)
        socks = list(a._peers.values())
        a.close()
        b.close()
        assert a._peers == {}
        for s in socks:
            assert s.fileno() == -1  # closed, descriptor returned

    def test_purge_clears_pending(self, pair):
        a, b = pair
        a.send(1, (1, "x"), np.array([1.0]))
        b._pump(1.0)
        assert b._pending
        b.purge()
        assert not b._pending


class TestTransportContract:
    def test_shm_is_a_transport(self):
        assert issubclass(ShmPoolTransport, Transport)
        assert issubclass(TcpSocketTransport, Transport)

    def test_uses_shm_pool_flags(self):
        assert ShmPoolTransport.uses_shm_pool is True
        assert TcpSocketTransport.uses_shm_pool is False

    def test_kind_labels(self):
        assert ShmPoolTransport.kind == "shm"
        assert TcpSocketTransport.kind == "tcp"

    def test_counters_shape(self):
        t = TcpSocketTransport(0, 1, CommConfig())
        assert t.counters() == (0,) * 7
        t.close()

    def test_ctrl_channel_counter_neutral(self, pair):
        a, b = pair
        a.ctrl_send(1, (1, "sig"), {"round": 1})
        assert b.ctrl_recv(0, (1, "sig"), timeout=10.0) == {"round": 1}
        assert a.counters() == (0,) * 7
        assert b.counters() == (0,) * 7

    def test_dest_validation(self, pair):
        a, _ = pair
        with pytest.raises(ValueError, match="out of range"):
            a.send(5, (1, "x"), np.zeros(1))
        with pytest.raises(ValueError, match="out of range"):
            a.recv(-1, (1, "x"), timeout=0.1)


class TestLauncherShim:
    def test_detect_runners_always_has_local(self):
        from repro.distributed.launch import detect_runners

        runners = detect_runners()
        assert runners[:2] == ["fork", "loopback"]

    def test_build_rank_command_env_contract(self):
        from repro.distributed import launch

        argv, env = launch.build_rank_command(
            2, 4, ("127.0.0.1", 5555), "/tmp/job.pkl"
        )
        assert argv[0] == sys.executable
        assert argv[1:] == ["-m", "repro.distributed.launch"]
        assert env[launch.ENV_RANK] == "2"
        assert env[launch.ENV_WORLD_SIZE] == "4"
        assert env[launch.ENV_RENDEZVOUS] == "127.0.0.1:5555"
        assert env[launch.ENV_BACKEND] == "tcp"
        assert env[launch.ENV_PROGRAM] == "/tmp/job.pkl"
        assert "PYTHONPATH" in env

    def test_launch_spmd_loopback(self):
        from repro.distributed.launch import _smoke_program, launch_spmd

        assert launch_spmd(_smoke_program, 3) == [6.0, 6.0, 6.0]

    def test_launch_spmd_surfaces_failures(self):
        from repro.distributed.launch import launch_spmd
        from repro.vmpi.mp_comm import RankFailureError

        with pytest.raises(RankFailureError, match="boom"):
            launch_spmd(_prog_fail_rank1, 2, timeout=60.0)

    def test_unknown_runner_rejected(self):
        from repro.distributed.launch import _smoke_program, launch_spmd

        with pytest.raises(ValueError, match="unknown runner"):
            launch_spmd(_smoke_program, 2, runner="carrier-pigeon")

    def test_repro_run_tcp_smoke_cli(self):
        """End-to-end loopback smoke of ``repro run --backend tcp``:
        umbrella CLI -> launcher shim -> spawned subprocess ranks."""
        from repro.cli import main

        assert main(["run", "--backend", "tcp", "--smoke", "--np", "2"]) == 0


def _prog_fail_rank1(comm):
    if comm.rank == 1:
        raise ValueError("boom")
    return comm.rank
