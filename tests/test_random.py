"""Random tensor generators."""

import numpy as np
import pytest

from repro.tensor.dense import tensor_norm, unfold
from repro.tensor.random import (
    random_orthonormal,
    random_tucker,
    tucker_plus_noise,
)


class TestRandomOrthonormal:
    def test_orthonormal_columns(self):
        q = random_orthonormal(12, 5, seed=0)
        np.testing.assert_allclose(q.T @ q, np.eye(5), atol=1e-12)

    def test_shape_and_dtype(self):
        q = random_orthonormal(8, 3, seed=1, dtype=np.float32)
        assert q.shape == (8, 3)
        assert q.dtype == np.float32

    def test_deterministic(self):
        np.testing.assert_array_equal(
            random_orthonormal(6, 2, seed=42), random_orthonormal(6, 2, seed=42)
        )

    def test_square(self):
        q = random_orthonormal(5, 5, seed=0)
        np.testing.assert_allclose(q @ q.T, np.eye(5), atol=1e-12)

    def test_too_many_columns(self):
        with pytest.raises(ValueError):
            random_orthonormal(3, 4)


class TestRandomTucker:
    def test_exact_multilinear_rank(self):
        full, core, factors = random_tucker((10, 9, 8), (3, 2, 4), seed=0)
        assert core.shape == (3, 2, 4)
        for mode, r in enumerate((3, 2, 4)):
            assert np.linalg.matrix_rank(unfold(full, mode), tol=1e-8) == r

    def test_reconstruction_consistency(self):
        from repro.tensor.ops import multi_ttm

        full, core, factors = random_tucker((6, 7, 5), (2, 3, 2), seed=3)
        np.testing.assert_allclose(full, multi_ttm(core, factors), atol=1e-12)

    def test_factor_orthonormality(self):
        _, _, factors = random_tucker((6, 7, 5), (2, 3, 2), seed=5)
        for u in factors:
            np.testing.assert_allclose(
                u.T @ u, np.eye(u.shape[1]), atol=1e-12
            )


class TestTuckerPlusNoise:
    def test_noise_level(self):
        x0 = tucker_plus_noise((12, 12, 12), (3, 3, 3), noise=0.0, seed=9)
        x1 = tucker_plus_noise((12, 12, 12), (3, 3, 3), noise=0.01, seed=9)
        rel = tensor_norm(x1 - x0) / tensor_norm(x0)
        assert rel == pytest.approx(0.01, rel=1e-6)

    def test_zero_noise_is_low_rank(self):
        x = tucker_plus_noise((10, 10, 10), (2, 2, 2), noise=0.0, seed=2)
        s = np.linalg.svd(unfold(x, 0), compute_uv=False)
        assert s[2] < 1e-10 * s[0]

    def test_negative_noise_rejected(self):
        with pytest.raises(ValueError):
            tucker_plus_noise((5, 5), (2, 2), noise=-0.1)

    def test_dtype(self):
        x = tucker_plus_noise((5, 5), (2, 2), seed=0, dtype=np.float32)
        assert x.dtype == np.float32

    def test_generator_seed_shared_state(self):
        rng = np.random.default_rng(0)
        a = tucker_plus_noise((5, 5), (2, 2), seed=rng)
        b = tucker_plus_noise((5, 5), (2, 2), seed=rng)
        assert not np.allclose(a, b)
