"""Gram EVD and threshold-based rank selection."""

import numpy as np
import pytest

from repro.linalg.evd import gram_evd, rank_from_spectrum
from repro.tensor.ops import gram


class TestGramEVD:
    def test_descending_eigenvalues(self, small3):
        vals, _ = gram_evd(gram(small3, 0))
        assert np.all(np.diff(vals) <= 1e-9)

    def test_nonnegative(self, small3):
        vals, _ = gram_evd(gram(small3, 1))
        assert np.all(vals >= 0)

    def test_eigenpairs(self, small3):
        g = gram(small3, 0)
        vals, vecs = gram_evd(g)
        np.testing.assert_allclose(g @ vecs, vecs * vals, atol=1e-8)

    def test_matches_singular_values(self, small3):
        from repro.tensor.dense import unfold

        vals, _ = gram_evd(gram(small3, 2))
        s = np.linalg.svd(unfold(small3, 2), compute_uv=False)
        np.testing.assert_allclose(vals, s**2, rtol=1e-8)

    def test_negative_noise_clipped(self):
        g = np.diag([1.0, -1e-15])
        vals, _ = gram_evd(g)
        assert vals.min() >= 0.0


class TestRankFromSpectrum:
    def test_exact_cutoff(self):
        # tail sums: r=1 -> 4+1=5, r=2 -> 1, r=3 -> 0
        vals = np.array([10.0, 4.0, 1.0])
        assert rank_from_spectrum(vals, 5.0) == 1
        assert rank_from_spectrum(vals, 4.999) == 2
        assert rank_from_spectrum(vals, 1.0) == 2
        assert rank_from_spectrum(vals, 0.5) == 3

    def test_zero_threshold_full_rank(self):
        vals = np.array([3.0, 2.0, 1.0])
        assert rank_from_spectrum(vals, 0.0) == 3

    def test_zero_threshold_with_zero_tail(self):
        vals = np.array([3.0, 2.0, 0.0, 0.0])
        assert rank_from_spectrum(vals, 0.0) == 2

    def test_huge_threshold_returns_at_least_one(self):
        vals = np.array([3.0, 2.0])
        assert rank_from_spectrum(vals, 100.0) == 1

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            rank_from_spectrum(np.array([1.0]), -1.0)
