"""Grid auto-tuning."""

import math

import pytest

from repro.analysis.autotune import autotune_grid
from repro.vmpi.machine import MachineModel


class TestAutotune:
    def test_returns_valid_grid(self):
        choice = autotune_grid((128, 128, 128), (8, 8, 8), 16)
        assert math.prod(choice.grid) == 16
        assert choice.seconds > 0
        assert choice.grid in choice.candidates

    def test_best_of_candidates(self):
        choice = autotune_grid((128, 128, 128), (8, 8, 8), 16)
        assert choice.seconds == min(choice.candidates.values())

    def test_exhaustive_at_least_as_good(self):
        heur = autotune_grid((128, 128, 128), (8, 8, 8), 8)
        exh = autotune_grid(
            (128, 128, 128), (8, 8, 8), 8, exhaustive=True
        )
        assert exh.seconds <= heur.seconds + 1e-12
        assert len(exh.candidates) >= len(heur.candidates)

    def test_sthosvd_prefers_p1_one_commheavy(self):
        machine = MachineModel(beta=3.2e-8, alpha=2e-5)
        choice = autotune_grid(
            (256, 256, 256), (8, 8, 8), 8, "sthosvd",
            machine=machine, exhaustive=True,
        )
        assert choice.grid[0] == 1

    def test_infeasible_shape(self):
        with pytest.raises(ValueError):
            autotune_grid((2, 2, 2), (1, 1, 1), 1024, exhaustive=False)

    def test_p_one(self):
        choice = autotune_grid((32, 32, 32), (4, 4, 4), 1)
        assert choice.grid == (1, 1, 1)


class TestCLIAuto:
    def test_sthosvd_auto_grid(self, tmp_path, capsys):
        from repro.cli import sthosvd_main

        cfg = tmp_path / "a.cfg"
        cfg.write_text(
            "Print options = false\n"
            "Processor grid dims = auto\n"
            "Processors = 8\n"
            "Global dims = 20 20 20\n"
            "Ranks = 4 4 4\n"
        )
        sthosvd_main(["--parameter-file", str(cfg)])
        out = capsys.readouterr().out
        assert "Auto-tuned grid for sthosvd at P=8" in out
        assert "STHOSVD ranks: (4, 4, 4)" in out

    def test_hooi_auto_grid(self, tmp_path, capsys):
        from repro.cli import hooi_main

        cfg = tmp_path / "h.cfg"
        cfg.write_text(
            "Print options = false\n"
            "Processor grid dims = auto\n"
            "Processors = 4\n"
            "Global dims = 20 20 20\n"
            "Construction Ranks = 4 4 4\n"
            "SVD Method = 2\n"
            "Dimension Tree Memoization = true\n"
        )
        hooi_main(["--parameter-file", str(cfg)])
        out = capsys.readouterr().out
        assert "Auto-tuned grid for hosi-dt at P=4" in out

    def test_auto_requires_processors(self, tmp_path):
        from repro.cli import sthosvd_main
        from repro.core.errors import ConfigError

        cfg = tmp_path / "bad.cfg"
        cfg.write_text(
            "Processor grid dims = auto\n"
            "Global dims = 8 8 8\n"
            "Ranks = 2 2 2\n"
        )
        with pytest.raises(ConfigError):
            sthosvd_main(["--parameter-file", str(cfg)])
