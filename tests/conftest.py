"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor.random import tucker_plus_noise


@pytest.fixture(
    params=[
        "shm",
        pytest.param("tcp", marks=pytest.mark.transport_matrix),
    ]
)
def backend(request) -> str:
    """Transport backend for backend-parameterized mp-layer tests.

    Every test taking this fixture runs once per backend, proving the
    transports interchangeable (bit-identical results, identical
    collective traces).  The tcp cases carry the ``transport_matrix``
    marker so the CI matrix job can select them (``-m
    transport_matrix``); they stay in tier-1 too — kept small — so a
    plain ``pytest`` run covers both wires.
    """
    return request.param


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small3(rng: np.random.Generator) -> np.ndarray:
    """Small random (non-low-rank) 3-way tensor."""
    return rng.standard_normal((6, 5, 4))


@pytest.fixture
def small4(rng: np.random.Generator) -> np.ndarray:
    """Small random 4-way tensor."""
    return rng.standard_normal((5, 4, 3, 6))


@pytest.fixture
def lowrank4() -> np.ndarray:
    """4-way low-multilinear-rank tensor plus mild noise."""
    return tucker_plus_noise((16, 14, 12, 10), (3, 4, 2, 3), noise=1e-5, seed=7)


@pytest.fixture
def lowrank3() -> np.ndarray:
    """3-way low-multilinear-rank tensor plus mild noise."""
    return tucker_plus_noise((20, 18, 16), (4, 3, 5), noise=1e-5, seed=11)
