"""Core analysis: prefix sums, storage grid, and the eq. (3) solver."""

import itertools
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.core_analysis import (
    greedy_rank_truncation,
    leading_subtensor_energies,
    solve_rank_truncation,
    storage_cost_grid,
)


class TestLeadingSubtensorEnergies:
    def test_matches_direct_norms(self, rng):
        core = rng.standard_normal((4, 3, 5))
        energies = leading_subtensor_energies(core)
        for idx in itertools.product(range(4), range(3), range(5)):
            sl = tuple(slice(0, i + 1) for i in idx)
            assert energies[idx] == pytest.approx(
                np.linalg.norm(core[sl]) ** 2, rel=1e-10
            )

    def test_total_energy(self, rng):
        core = rng.standard_normal((3, 3, 3, 3))
        energies = leading_subtensor_energies(core)
        assert energies[-1, -1, -1, -1] == pytest.approx(
            np.linalg.norm(core) ** 2
        )

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_monotone_nondecreasing(self, seed):
        rng = np.random.default_rng(seed)
        core = rng.standard_normal((3, 4, 2))
        energies = leading_subtensor_energies(core)
        for axis in range(3):
            assert np.all(np.diff(energies, axis=axis) >= -1e-12)


class TestStorageCostGrid:
    def test_matches_formula(self):
        shape, core_shape = (10, 20, 30), (3, 2, 4)
        cost = storage_cost_grid(shape, core_shape)
        for idx in itertools.product(range(3), range(2), range(4)):
            r = tuple(i + 1 for i in idx)
            expected = math.prod(r) + sum(
                n * rj for n, rj in zip(shape, r)
            )
            assert cost[idx] == pytest.approx(expected)

    def test_order_mismatch(self):
        with pytest.raises(ValueError):
            storage_cost_grid((10, 10), (2, 2, 2))


def _brute_force(core, target, shape):
    energies = leading_subtensor_energies(core)
    best, best_cost = None, np.inf
    for idx in itertools.product(*(range(r) for r in core.shape)):
        if energies[idx] >= target - 1e-9:
            r = tuple(i + 1 for i in idx)
            cost = math.prod(r) + sum(n * rj for n, rj in zip(shape, r))
            if cost < best_cost:
                best, best_cost = r, cost
    return best, best_cost


class TestSolveRankTruncation:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(0)
        shape = (30, 25, 20)
        for trial in range(10):
            core = rng.standard_normal((4, 5, 3)) * rng.geometric(
                0.4, size=(4, 5, 3)
            )
            total = np.linalg.norm(core) ** 2
            target = 0.9 * total
            got = solve_rank_truncation(core, target, shape)
            ref, ref_cost = _brute_force(core, target, shape)
            assert got is not None and ref is not None
            got_cost = math.prod(got) + sum(
                n * r for n, r in zip(shape, got)
            )
            assert got_cost == pytest.approx(ref_cost)

    def test_feasibility(self, rng):
        core = rng.standard_normal((5, 4, 3))
        total = np.linalg.norm(core) ** 2
        target = 0.75 * total
        ranks = solve_rank_truncation(core, target, (50, 40, 30))
        energies = leading_subtensor_energies(core)
        assert energies[tuple(r - 1 for r in ranks)] >= target * (1 - 1e-9)

    def test_infeasible_returns_none(self, rng):
        core = rng.standard_normal((3, 3))
        total = np.linalg.norm(core) ** 2
        assert solve_rank_truncation(core, 2 * total, (10, 10)) is None

    def test_full_core_feasible_at_exact_total(self, rng):
        """Rounding guard: target exactly equal to the total energy must
        keep the full core feasible."""
        core = rng.standard_normal((3, 4))
        total = float(np.linalg.norm(core) ** 2)
        ranks = solve_rank_truncation(core, total, (10, 10))
        assert ranks is not None

    def test_zero_target_minimal(self, rng):
        core = np.abs(rng.standard_normal((4, 4))) + 0.1
        ranks = solve_rank_truncation(core, 0.0, (10, 10))
        assert ranks == (1, 1)

    def test_concentrated_core_truncates_hard(self):
        core = np.zeros((5, 5, 5))
        core[0, 0, 0] = 10.0
        core[4, 4, 4] = 0.01
        ranks = solve_rank_truncation(
            core, 0.99 * np.linalg.norm(core) ** 2, (20, 20, 20)
        )
        assert ranks == (1, 1, 1)

    def test_cross_mode_tradeoff(self):
        """The exhaustive solver may pick unequal ranks when mode sizes
        differ (the flexibility STHOSVD's greedy choice lacks)."""
        rng = np.random.default_rng(4)
        core = rng.standard_normal((4, 4))
        core[2:, :] *= 0.01
        shape = (1000, 10)  # mode-0 columns are expensive
        total = np.linalg.norm(core) ** 2
        ranks = solve_rank_truncation(core, 0.9 * total, shape)
        assert ranks[0] <= 2


class TestGreedyTruncation:
    def test_feasible(self, rng):
        core = rng.standard_normal((5, 4, 3))
        total = np.linalg.norm(core) ** 2
        target = 0.8 * total
        ranks = greedy_rank_truncation(core, target, (50, 40, 30))
        energies = leading_subtensor_energies(core)
        assert energies[tuple(r - 1 for r in ranks)] >= target * (1 - 1e-9)

    def test_never_beats_exhaustive(self, rng):
        shape = (40, 35, 30)
        for seed in range(5):
            gen = np.random.default_rng(seed)
            core = gen.standard_normal((4, 4, 4)) * 2.0 ** -gen.integers(
                0, 6, size=(4, 4, 4)
            )
            total = np.linalg.norm(core) ** 2
            target = 0.85 * total
            exh = solve_rank_truncation(core, target, shape)
            gre = greedy_rank_truncation(core, target, shape)

            def cost(r):
                return math.prod(r) + sum(n * x for n, x in zip(shape, r))

            assert cost(exh) <= cost(gre) + 1e-9

    def test_infeasible_returns_none(self, rng):
        core = rng.standard_normal((3, 3))
        total = np.linalg.norm(core) ** 2
        assert greedy_rank_truncation(core, 2 * total, (9, 9)) is None
