"""Fault injection, fast failure detection, and guard rails.

Certifies the robustness contract of the SPMD layer: a seeded
``FaultPlan`` reproduces every failure mode deterministically, a dead
rank aborts the job in seconds (not the full run timeout) with its
identity and remote traceback in the error, shared memory is swept on
every exit path, and the numerics guard rails catch corrupted data at
the collective where it first appears.

Injection happens at the Transport payload boundary (before wire
encoding), so the same seeded plan must behave identically on the
pooled-shm and tcp wires; ``TestTcpWireFaults`` certifies that, plus
retry-with-backoff and checkpoint/restart over sockets.  The
torn-frame/partial-recv failure mode (a peer dying mid-frame) is
covered at the unit level in ``test_transport.py`` and at the job
level by the tcp rows of ``TestCrashDetection``.
"""

import glob
import os
import time

import numpy as np
import pytest

from repro.core.errors import NumericalFaultError
from repro.distributed.kernels import check_factor_orthogonality
from repro.vmpi.faults import (
    EXIT_INJECTED_CRASH,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedRankCrash,
)
from repro.vmpi.mp_comm import (
    CommConfig,
    ProcessComm,
    RankFailureError,
    run_spmd,
)

# Module-level SPMD programs (must be picklable).


def _prog_rounds(comm: ProcessComm, n: int = 6) -> np.ndarray:
    out = np.zeros(8)
    for _ in range(n):
        comm.phase = "sweep"
        out = out + comm.allreduce(np.arange(8.0) + comm.rank)
    return out


def _prog_subgroup(comm: ProcessComm) -> float:
    group = tuple(r for r in range(comm.size) if r % 2 == comm.rank % 2)
    total = comm.allreduce(np.array([1.0]), group=group)
    return float(total[0])


def _prog_hard_exit(comm: ProcessComm) -> None:
    if comm.rank == 1:
        os._exit(77)  # dies without posting any result
    comm.allreduce(np.ones(4))


def _prog_nan(comm: ProcessComm) -> float:
    block = np.ones(4)
    if comm.rank == 0:
        block[2] = np.nan
    comm.phase = "gram"
    return float(comm.allreduce(block)[2])


def _prog_sleep(comm: ProcessComm) -> None:
    time.sleep(5.0)


def _prog_injector_off(comm: ProcessComm) -> bool:
    return comm._inj is None


def _prog_shm_clean(comm: ProcessComm) -> float:
    # 640 KB payloads force the pooled shared-memory path.
    big = np.full(80_000, float(comm.rank))
    out = comm.allreduce(big)
    out = comm.allreduce(out)
    return float(out[0])


def _prog_shm_raise(comm: ProcessComm) -> None:
    big = np.full(80_000, float(comm.rank))
    comm.allreduce(big)
    if comm.rank == 0:
        raise ValueError("mid-run boom")
    comm.allreduce(big)


def _fired_log(comm: ProcessComm, n: int = 3) -> list:
    for _ in range(n):
        comm.allreduce(np.ones(2))
    return list(comm._inj.fired) if comm._inj is not None else []


def _shm_residue() -> list[str]:
    return glob.glob("/dev/shm/mpx*")


class TestFaultSpecPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("explode", rank=0)

    def test_delay_needs_duration(self):
        with pytest.raises(ValueError, match="delay > 0"):
            FaultSpec("delay", rank=0)

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultSpec("crash", rank=-1)

    def test_for_rank_filters(self):
        plan = FaultPlan(
            faults=(
                FaultSpec("crash", rank=1),
                FaultSpec("drop", rank=0, op_index=2),
            )
        )
        assert len(plan.for_rank(0)) == 1
        assert plan.for_rank(0)[0].kind == "drop"
        assert plan.for_rank(2) == ()

    def test_matches_trigger_point(self):
        spec = FaultSpec("crash", rank=1, op_index=3, phase="ttm")
        assert spec.matches(1, 3, "ttm")
        assert not spec.matches(1, 3, "gram")
        assert not spec.matches(1, 2, "ttm")
        assert not spec.matches(0, 3, "ttm")

    def test_plan_is_picklable(self):
        import pickle

        plan = FaultPlan.kill(1, op_index=4, phase="sweep")
        clone = pickle.loads(pickle.dumps(plan))
        assert clone == plan

    def test_injected_crash_pickles_hard_flag(self):
        import pickle

        exc = pickle.loads(
            pickle.dumps(InjectedRankCrash("x", hard=False))
        )
        assert exc.hard is False


class TestInjectorUnit:
    def test_crash_fires_once_at_trigger(self):
        inj = FaultInjector(FaultPlan.kill(0, op_index=2), rank=0)
        inj.at_collective(1, "")
        with pytest.raises(InjectedRankCrash):
            inj.at_collective(2, "")
        assert inj.fired == [("crash", 2, "")]

    def test_count_limits_firings(self):
        plan = FaultPlan(faults=(FaultSpec("drop", rank=0, count=2),))
        inj = FaultInjector(plan, rank=0)
        inj.at_collective(1, "")
        drops = [inj.on_send(np.ones(2))[1] for _ in range(4)]
        assert drops == [True, True, False, False]

    def test_bitflip_is_seeded_deterministic(self):
        plan = FaultPlan(
            faults=(FaultSpec("bitflip", rank=0, op_index=1),), seed=9
        )
        payload = np.arange(16.0)
        flipped = []
        for _ in range(2):
            inj = FaultInjector(plan, rank=0)
            inj.at_collective(1, "")
            out, dropped = inj.on_send(payload.copy())
            assert not dropped
            flipped.append(out)
        np.testing.assert_array_equal(flipped[0], flipped[1])
        assert not np.array_equal(flipped[0], payload)
        # exactly one element changed by exactly one bit
        assert np.sum(flipped[0] != payload) == 1

    def test_bitflip_does_not_mutate_original(self):
        plan = FaultPlan(faults=(FaultSpec("bitflip", rank=0),))
        inj = FaultInjector(plan, rank=0)
        inj.at_collective(1, "")
        payload = np.arange(4.0)
        keep = payload.copy()
        inj.on_send(payload)
        np.testing.assert_array_equal(payload, keep)


@pytest.mark.parametrize(
    "transport",
    [
        "p2p",
        "star",
        pytest.param("tcp", marks=pytest.mark.transport_matrix),
    ],
)
class TestCrashDetection:
    def test_crash_fails_fast_with_identity_and_traceback(
        self, transport
    ):
        """The acceptance bar: a mid-sweep kill fails within 5 s and the
        error names the dead rank and carries its remote traceback."""
        cfg = CommConfig(fault_plan=FaultPlan.kill(1, op_index=3))
        t0 = time.monotonic()
        with pytest.raises(RankFailureError) as ei:
            run_spmd(_prog_rounds, 2, config=cfg, transport=transport)
        assert time.monotonic() - t0 < 5.0
        err = ei.value
        assert err.failed_ranks == (1,)
        msg = str(err)
        assert "rank 1" in msg
        assert "injected crash" in msg
        assert "collective #3" in msg
        assert "remote traceback" in msg
        assert "InjectedRankCrash" in msg

    def test_trace_tail_in_error(self, transport):
        cfg = CommConfig(fault_plan=FaultPlan.kill(0, op_index=4))
        with pytest.raises(RankFailureError) as ei:
            run_spmd(_prog_rounds, 2, config=cfg, transport=transport)
        msg = str(ei.value)
        # 3 completed collectives before the crash at #4.
        assert "last collectives" in msg
        assert "allreduce" in msg
        assert "phase=sweep" in msg


class TestFailureDetection:
    def test_dead_process_detected_by_exitcode(self):
        """A rank that dies without posting anything (no report, no
        sentinel) is detected by liveness polling, not the timeout."""
        t0 = time.monotonic()
        with pytest.raises(RankFailureError) as ei:
            run_spmd(_prog_hard_exit, 2, timeout=120)
        assert time.monotonic() - t0 < 5.0
        err = ei.value
        assert err.failed_ranks == (1,)
        assert err.exitcodes == {1: 77}
        assert "exitcode 77" in str(err)

    def test_injected_hard_crash_exitcode_constant(self):
        cfg = CommConfig(fault_plan=FaultPlan.kill(1, op_index=2))
        with pytest.raises(RankFailureError):
            run_spmd(_prog_rounds, 2, config=cfg)
        assert EXIT_INJECTED_CRASH == 86

    def test_succeeded_and_aborted_ranks_listed(self):
        """Disjoint subgroups: ranks 0/2 finish, rank 3 crashes softly,
        rank 1 (3's partner) is aborted."""
        cfg = CommConfig(
            fault_plan=FaultPlan.kill(3, op_index=1, hard=False)
        )
        with pytest.raises(RankFailureError) as ei:
            run_spmd(_prog_subgroup, 4, config=cfg)
        err = ei.value
        assert err.failed_ranks == (3,)
        assert set(err.succeeded_ranks) == {0, 2}
        assert err.aborted_ranks == (1,)
        msg = str(err)
        assert "[3] failed" in msg and "[0, 2] succeeded" in msg

    def test_timeout_path_message(self):
        t0 = time.monotonic()
        with pytest.raises(RankFailureError, match="timed out"):
            run_spmd(_prog_sleep, 2, timeout=1.0)
        # teardown (terminate + join) is bounded, not the 5 s sleep
        assert time.monotonic() - t0 < 4.0


class TestWireFaults:
    def test_dropped_send_kills_the_collective(self):
        plan = FaultPlan(faults=(FaultSpec("drop", rank=0, op_index=2),))
        cfg = CommConfig(fault_plan=plan, collective_timeout=1.5)
        with pytest.raises(RankFailureError) as ei:
            run_spmd(_prog_rounds, 2, config=cfg, timeout=60)
        assert "CollectiveTimeoutError" in str(ei.value)

    def test_bitflip_reproducible_across_runs(self):
        plan = FaultPlan(
            faults=(FaultSpec("bitflip", rank=0, op_index=2),), seed=3
        )
        cfg = CommConfig(fault_plan=plan)
        a = run_spmd(_prog_rounds, 2, config=cfg)
        b = run_spmd(_prog_rounds, 2, config=cfg)
        clean = run_spmd(_prog_rounds, 2)
        for r in range(2):  # seeded -> replayable
            np.testing.assert_array_equal(a[r], b[r])
        # the corrupted wire message reached at least one rank's result
        assert any(
            not np.array_equal(a[r], clean[r]) for r in range(2)
        )

    def test_delay_rides_out_with_retries(self):
        plan = FaultPlan.stall(0, 2.5, op_index=2)
        ok = run_spmd(
            _prog_rounds,
            2,
            config=CommConfig(
                fault_plan=plan,
                collective_timeout=1.0,
                transient_retries=3,
                retry_backoff=2.0,
            ),
        )
        np.testing.assert_array_equal(ok[0], ok[1])

    def test_delay_without_retries_times_out(self):
        plan = FaultPlan.stall(0, 2.5, op_index=2)
        with pytest.raises(RankFailureError):
            run_spmd(
                _prog_rounds,
                2,
                config=CommConfig(
                    fault_plan=plan, collective_timeout=1.0
                ),
                timeout=60,
            )

    def test_fired_log_records_injections(self):
        plan = FaultPlan.stall(0, 0.01, op_index=2, phase="")
        out = run_spmd(_fired_log, 2, config=CommConfig(fault_plan=plan))
        assert out[0] == [("delay", 2, "")]
        assert out[1] == []


@pytest.mark.transport_matrix
class TestTcpWireFaults:
    """The seeded fault plans behave identically over sockets.

    Injection fires at the Transport payload boundary, before the wire
    encoding diverges, so a given plan must produce the *same*
    corrupted results on tcp as on shm — not merely "a" failure."""

    def test_dropped_send_kills_the_collective(self):
        plan = FaultPlan(faults=(FaultSpec("drop", rank=0, op_index=2),))
        cfg = CommConfig(fault_plan=plan, collective_timeout=1.5)
        with pytest.raises(RankFailureError) as ei:
            run_spmd(
                _prog_rounds, 2, config=cfg, transport="tcp", timeout=60
            )
        assert "CollectiveTimeoutError" in str(ei.value)

    def test_bitflip_identical_corruption_on_both_wires(self):
        plan = FaultPlan(
            faults=(FaultSpec("bitflip", rank=0, op_index=2),), seed=3
        )
        cfg = CommConfig(fault_plan=plan)
        shm = run_spmd(_prog_rounds, 2, config=cfg, transport="shm")
        tcp = run_spmd(_prog_rounds, 2, config=cfg, transport="tcp")
        clean = run_spmd(_prog_rounds, 2, transport="tcp")
        for r in range(2):
            np.testing.assert_array_equal(shm[r], tcp[r])
        assert any(
            not np.array_equal(tcp[r], clean[r]) for r in range(2)
        )

    def test_delay_rides_out_with_retries(self):
        plan = FaultPlan.stall(0, 2.5, op_index=2)
        ok = run_spmd(
            _prog_rounds,
            2,
            transport="tcp",
            config=CommConfig(
                fault_plan=plan,
                collective_timeout=1.0,
                transient_retries=3,
                retry_backoff=2.0,
            ),
        )
        np.testing.assert_array_equal(ok[0], ok[1])

    def test_kill_and_resume_bit_identical(self, tmp_path):
        """Checkpoint/restart works unchanged over sockets: seeded kill
        mid-run, checkpoint written, tcp resume matches the clean tcp
        run (which itself matches shm bit-for-bit)."""
        from repro.distributed.checkpoint import SweepCheckpoint
        from repro.distributed.mp_sthosvd import mp_sthosvd

        rng = np.random.default_rng(11)
        x = rng.standard_normal((6, 5, 4, 4))
        kwargs = dict(ranks=(3, 3, 2, 2), timeout=120, transport="tcp")

        clean = mp_sthosvd(x, (2, 1, 1, 1), **kwargs)

        ck = str(tmp_path / "st.npz")
        plan = FaultPlan.kill(1, op_index=11)
        with pytest.raises(RankFailureError) as ei:
            mp_sthosvd(
                x, (2, 1, 1, 1),
                checkpoint_path=ck,
                comm_config=CommConfig(fault_plan=plan),
                **kwargs,
            )
        assert ei.value.failed_ranks == (1,)
        assert os.path.exists(ck)
        assert SweepCheckpoint.load(ck).algorithm == "mp_sthosvd"

        resumed = mp_sthosvd(x, (2, 1, 1, 1), resume_from=ck, **kwargs)
        np.testing.assert_array_equal(resumed.core, clean.core)
        for a, b in zip(resumed.factors, clean.factors):
            np.testing.assert_array_equal(a, b)


class TestGuardRails:
    def test_nan_screen_raises_typed_error(self):
        cfg = CommConfig(check_numerics=True)
        with pytest.raises(RankFailureError) as ei:
            run_spmd(_prog_nan, 2, config=cfg)
        msg = str(ei.value)
        assert "NumericalFaultError" in msg
        assert "non-finite" in msg
        assert "allreduce" in msg
        assert "phase 'gram'" in msg

    def test_nan_screen_off_by_default(self):
        out = run_spmd(_prog_nan, 2)
        assert np.isnan(out[0])

    def test_orthogonality_check_passes_orthonormal(self):
        q, _ = np.linalg.qr(np.random.default_rng(0).standard_normal((8, 3)))
        drift = check_factor_orthogonality(q, mode=1, rank=0, tol=1e-8)
        assert drift < 1e-10

    def test_orthogonality_check_catches_drift(self):
        q, _ = np.linalg.qr(np.random.default_rng(0).standard_normal((8, 3)))
        q[0, 0] += 1e-3
        with pytest.raises(NumericalFaultError) as ei:
            check_factor_orthogonality(
                q, mode=2, rank=5, tol=1e-8, phase="llsv"
            )
        assert ei.value.mode == 2
        assert ei.value.rank == 5
        assert ei.value.phase == "llsv"
        assert "mode-2" in str(ei.value)

    def test_injection_disabled_means_no_injector(self):
        out = run_spmd(_prog_injector_off, 2)
        assert out == [True, True]

    def test_plan_for_other_rank_means_no_injector(self):
        cfg = CommConfig(fault_plan=FaultPlan.kill(7))
        out = run_spmd(_prog_injector_off, 2, config=cfg)
        assert out == [True, True]


@pytest.mark.parametrize("transport", ["p2p", "star"])
class TestShmHygiene:
    def test_clean_run_leaves_no_residue(self, transport):
        before = set(_shm_residue())
        run_spmd(_prog_shm_clean, 2, transport=transport)
        assert set(_shm_residue()) <= before

    def test_mid_collective_raise_leaves_no_residue(self, transport):
        before = set(_shm_residue())
        with pytest.raises(RankFailureError, match="mid-run boom"):
            run_spmd(
                _prog_shm_raise,
                2,
                transport=transport,
                collective_timeout=2.0,
                timeout=60,
            )
        assert set(_shm_residue()) <= before

    def test_hard_crash_leaves_no_residue(self, transport):
        """An os._exit'ed rank orphans its segments (no channel.close);
        the launcher's token sweep must reclaim them."""
        before = set(_shm_residue())
        # Kill at op 2: rank 1 already holds pooled segments from the
        # first big allreduce, and os._exit skips channel.close().
        cfg = CommConfig(fault_plan=FaultPlan.kill(1, op_index=2))
        with pytest.raises(RankFailureError):
            run_spmd(_prog_shm_clean, 2, transport=transport, config=cfg)
        assert set(_shm_residue()) <= before


class TestStarCoordinatorDrain:
    def test_hard_crash_does_not_hang_the_coordinator(self):
        """A star worker that dies before posting its sentinel used to
        leave the coordinator blocked until terminate; the drain path
        (stand-in sentinels) must keep teardown fast."""
        cfg = CommConfig(fault_plan=FaultPlan.kill(1, op_index=2))
        t0 = time.monotonic()
        with pytest.raises(RankFailureError):
            run_spmd(_prog_rounds, 2, transport="star", config=cfg)
        assert time.monotonic() - t0 < 8.0
