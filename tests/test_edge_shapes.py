"""Edge-case shapes: singleton modes, d=2, full ranks, tiny tensors."""

import numpy as np
import pytest

from repro.core.hooi import HOOIOptions, hooi
from repro.core.rank_adaptive import rank_adaptive_hooi
from repro.core.sthosvd import sthosvd
from repro.distributed.sthosvd import dist_sthosvd
from repro.tensor.dense import unfold
from repro.tensor.random import tucker_plus_noise


class TestSingletonModes:
    """HCCI/SP have small 'variable' modes; the degenerate case is
    extent 1."""

    def test_sthosvd_with_singleton(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((8, 1, 6))
        tucker, _ = sthosvd(x, ranks=(3, 1, 3))
        assert tucker.ranks == (3, 1, 3)

    def test_hooi_with_singleton(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((8, 1, 6))
        tucker, _ = hooi(x, (3, 1, 3), HOOIOptions(max_iters=2))
        assert tucker.ranks == (3, 1, 3)

    def test_rank_adaptive_with_singleton(self):
        x = tucker_plus_noise((10, 1, 8), (2, 1, 2), noise=1e-3, seed=2)
        tucker, stats = rank_adaptive_hooi(x, 0.01, (3, 1, 3))
        assert stats.converged
        assert tucker.ranks[1] == 1


class TestMatrixCase:
    """d=2 Tucker is the truncated SVD; all algorithms must agree with
    LAPACK."""

    def test_sthosvd_matches_svd(self):
        rng = np.random.default_rng(3)
        a = rng.standard_normal((20, 15))
        tucker, _ = sthosvd(a, ranks=(4, 4))
        u, s, vt = np.linalg.svd(a, full_matrices=False)
        best = (u[:, :4] * s[:4]) @ vt[:4]
        assert np.linalg.norm(
            tucker.reconstruct() - best
        ) < 1e-8 * np.linalg.norm(best)

    def test_hooi_matches_svd(self):
        from repro.linalg.llsv import LLSVMethod

        rng = np.random.default_rng(4)
        a = rng.standard_normal((20, 15))
        # Gaussian matrices have a flat spectrum; the exact Gram-EVD
        # update converges to the truncated SVD (subspace iteration
        # would need many sweeps here).
        tucker, _ = hooi(
            a, (4, 4),
            HOOIOptions(
                max_iters=50, seed=5, llsv_method=LLSVMethod.GRAM_EVD
            ),
        )
        u, s, vt = np.linalg.svd(a, full_matrices=False)
        best_err = np.linalg.norm(a - (u[:, :4] * s[:4]) @ vt[:4])
        got_err = np.linalg.norm(a - tucker.reconstruct())
        assert got_err == pytest.approx(best_err, rel=1e-5)

    def test_distributed_matrix(self):
        rng = np.random.default_rng(5)
        a = rng.standard_normal((16, 12))
        tucker, _ = dist_sthosvd(a, (2, 2), ranks=(3, 3))
        seq, _ = sthosvd(a, ranks=(3, 3))
        assert tucker.relative_error(a) == pytest.approx(
            seq.relative_error(a), rel=1e-8
        )


class TestTreeEnabledLowOrder:
    """``use_dimension_tree=True`` on 1-D/2-D inputs must not trip the
    ``split_modes`` two-mode minimum anywhere in the stack — sequential
    HOOI handles these directly, and the mp layer falls back to the
    direct subiteration (``tree_applicable``)."""

    def test_sequential_hooi_tree_2d(self):
        rng = np.random.default_rng(7)
        a = rng.standard_normal((14, 11))
        opts = HOOIOptions(max_iters=3, seed=8, use_dimension_tree=True)
        tucker, _ = hooi(a, (3, 3), opts)
        assert tucker.ranks == (3, 3)

    def test_rank_adaptive_tree_2d(self):
        x = tucker_plus_noise((16, 12), (3, 3), noise=1e-4, seed=9)
        from repro.core.rank_adaptive import RankAdaptiveOptions

        tucker, stats = rank_adaptive_hooi(
            x,
            1e-2,
            (2, 2),
            RankAdaptiveOptions(use_dimension_tree=True, max_iters=4),
        )
        assert stats.converged

    def test_mp_hooi_dt_2d_falls_back_to_direct(self):
        from repro.distributed.mp_hooi import mp_hooi_dt
        from repro.distributed.spmd_hooi import spmd_hooi

        x = tucker_plus_noise((12, 10), (3, 2), noise=1e-4, seed=10)
        opts = HOOIOptions(max_iters=2, seed=11, use_dimension_tree=True)
        par, stats = mp_hooi_dt(x, (3, 2), (2, 2), opts)
        assert not stats.used_tree  # tree memoizes nothing at d = 2
        ref = spmd_hooi(
            x,
            (3, 2),
            (2, 2),
            HOOIOptions(max_iters=2, seed=11, use_dimension_tree=False),
        )
        assert np.array_equal(par.core, ref.core)

    def test_mp_hooi_dt_1d(self):
        from repro.distributed.mp_hooi import mp_hooi_dt

        rng = np.random.default_rng(12)
        x = rng.standard_normal(17)
        opts = HOOIOptions(max_iters=2, seed=13, use_dimension_tree=True)
        tucker, stats = mp_hooi_dt(x, (3,), (2,), opts)
        assert not stats.used_tree
        assert tucker.ranks == (3,)
        assert tucker.core.shape == (3,)

    def test_mp_rahosi_dt_2d(self):
        from repro.core.rank_adaptive import RankAdaptiveOptions
        from repro.distributed.mp_hooi import mp_rahosi_dt

        x = tucker_plus_noise((14, 12), (3, 3), noise=1e-4, seed=14)
        tucker, stats = mp_rahosi_dt(
            x,
            1e-2,
            (2, 2),
            (2, 1),
            RankAdaptiveOptions(max_iters=4, seed=15),
        )
        assert not stats.used_tree
        assert stats.converged
        rec = np.linalg.norm(tucker.reconstruct() - x) / np.linalg.norm(x)
        assert rec <= 1e-2


class TestFullRank:
    def test_full_ranks_lossless(self, small3):
        tucker, _ = sthosvd(small3, ranks=small3.shape)
        assert tucker.relative_error(small3) < 1e-10
        # Full-rank Tucker is *larger* than the input (no compression).
        assert tucker.compression_ratio() < 1.0

    def test_rank_adaptive_tiny_eps_full_noise(self, rng):
        """Pure noise at eps near machine precision pushes ranks to the
        dimensions; RA must cope and report convergence status."""
        x = rng.standard_normal((6, 6, 6))
        tucker, stats = rank_adaptive_hooi(
            x, 1e-7, (6, 6, 6),
        )
        if stats.converged:
            assert tucker.relative_error(x) <= 1e-7 * (1 + 1e-3)


class TestTinyTensors:
    def test_two_by_two(self):
        rng = np.random.default_rng(6)
        x = rng.standard_normal((2, 2, 2))
        tucker, _ = sthosvd(x, ranks=(1, 1, 1))
        assert tucker.ranks == (1, 1, 1)

    def test_rank_one_everything(self):
        x = np.ones((4, 4, 4))
        tucker, _ = sthosvd(x, eps=0.5)
        assert tucker.ranks == (1, 1, 1)
        assert tucker.relative_error(x) < 1e-10

    def test_zero_tensor(self):
        x = np.zeros((4, 4, 4))
        tucker, _ = sthosvd(x, ranks=(1, 1, 1))
        assert tucker.relative_error(x) == 0.0

    def test_unfold_singleton_all_modes(self):
        x = np.arange(6.0).reshape(1, 6, 1)
        for mode in range(3):
            m = unfold(x, mode)
            assert m.size == 6
