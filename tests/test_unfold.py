"""Unfold/fold: conventions, inverses, and the Kronecker identity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.dense import DenseTensor, fold, tensor_norm, unfold
from repro.tensor.ops import multi_ttm


def test_unfold_shape(small3):
    for mode in range(3):
        mat = unfold(small3, mode)
        assert mat.shape == (
            small3.shape[mode],
            small3.size // small3.shape[mode],
        )


def test_unfold_negative_mode(small3):
    np.testing.assert_array_equal(unfold(small3, -1), unfold(small3, 2))


def test_unfold_mode_out_of_range(small3):
    with pytest.raises(ValueError):
        unfold(small3, 3)
    with pytest.raises(ValueError):
        unfold(small3, -4)


def test_unfold_known_small_case():
    # Kolda & Bader's running example: X[i, j, k] with columns being
    # mode fibers in Fortran order of the remaining modes.
    x = np.arange(24).reshape(3, 4, 2)
    m0 = unfold(x, 0)
    # First column of the mode-0 unfolding is the (j=0, k=0) fiber.
    np.testing.assert_array_equal(m0[:, 0], x[:, 0, 0])
    # Second column varies the lowest remaining mode (j) fastest.
    np.testing.assert_array_equal(m0[:, 1], x[:, 1, 0])
    np.testing.assert_array_equal(m0[:, 4], x[:, 0, 1])


def test_fold_inverts_unfold(small4):
    for mode in range(small4.ndim):
        mat = unfold(small4, mode)
        np.testing.assert_array_equal(fold(mat, mode, small4.shape), small4)


def test_fold_shape_mismatch(small3):
    mat = unfold(small3, 0)
    with pytest.raises(ValueError):
        fold(mat, 1, small3.shape)  # rows disagree with shape[1]


def test_unfold_rows_are_mode_fibers(small4):
    mat = unfold(small4, 2)
    # Every column of the unfolding must appear as a mode-2 fiber.
    fibers = {
        tuple(small4[i, j, :, k])
        for i in range(small4.shape[0])
        for j in range(small4.shape[1])
        for k in range(small4.shape[3])
    }
    for col in mat.T:
        assert tuple(col) in fibers


def test_multi_ttm_kronecker_identity(rng):
    """unfold(X x1 U1 ... xd Ud, j) == Uj X_(j) kron(U_d..U_{j+1},U_{j-1}..U_1)^T."""
    x = rng.standard_normal((4, 3, 5))
    mats = [rng.standard_normal((r, n)) for r, n in zip((2, 2, 3), x.shape)]
    y = multi_ttm(x, mats)
    for j in range(3):
        others = [mats[m] for m in reversed(range(3)) if m != j]
        kron = others[0]
        for m in others[1:]:
            kron = np.kron(kron, m)
        expected = mats[j] @ unfold(x, j) @ kron.T
        np.testing.assert_allclose(unfold(y, j), expected, atol=1e-10)


@settings(max_examples=30, deadline=None)
@given(
    shape=st.lists(st.integers(1, 5), min_size=1, max_size=4),
    mode_seed=st.integers(0, 10**6),
)
def test_fold_unfold_roundtrip_property(shape, mode_seed):
    rng = np.random.default_rng(mode_seed)
    x = rng.standard_normal(tuple(shape))
    mode = mode_seed % len(shape)
    np.testing.assert_array_equal(fold(unfold(x, mode), mode, shape), x)


def test_tensor_norm_matches_frobenius(small4):
    assert tensor_norm(small4) == pytest.approx(np.linalg.norm(small4))


def test_tensor_norm_zero():
    assert tensor_norm(np.zeros((3, 3))) == 0.0


class TestDenseTensor:
    def test_norm_cached(self, small3):
        t = DenseTensor(small3)
        expected = float(np.linalg.norm(small3))
        assert t.norm() == pytest.approx(expected)
        # Mutate underlying data: the cached value must not change,
        # demonstrating compute-once semantics.
        t.data[:] = 0
        assert t.norm() == pytest.approx(expected)

    def test_metadata(self, small3):
        t = DenseTensor(small3)
        assert t.shape == small3.shape
        assert t.ndim == 3
        assert t.size == small3.size

    def test_unfold_passthrough(self, small3):
        t = DenseTensor(small3)
        np.testing.assert_array_equal(t.unfold(1), unfold(small3, 1))
