"""Executed schedules match the closed-form alpha-beta cost formulas.

Every collective algorithm the peer-to-peer ``mp_comm`` transport can
select has a closed-form per-rank ``(words, messages)`` profile in
:mod:`repro.vmpi.collectives`.  These tests run real multi-process
collectives, read back the :class:`~repro.vmpi.trace.CollectiveRecord`
message counters the transport recorded, and assert they equal the
formulas exactly — same alpha terms (message counts), same beta terms
(word counts; payload extents are chosen divisible by the group size so
no rounding slack is needed).

This is the executable certificate that the simulator's charges and the
executing layer's traffic describe the same schedules.
"""

import math
from functools import lru_cache

import numpy as np
import pytest

from repro.vmpi.collectives import (
    allgather_cost,
    allreduce_cost,
    allreduce_crossover_words,
    allreduce_short_cost,
    bcast_cost,
    gather_cost,
    rabenseifner_allreduce_cost,
    recursive_doubling_allreduce_cost,
    reduce_scatter_cost,
    reduce_scatter_halving_cost,
    select_allreduce_algorithm,
)
from repro.vmpi.mp_comm import CommConfig, run_spmd

SIZES = (2, 3, 4, 8)

# Payload extents divisible by every group size in SIZES, so the
# n(p-1)/p terms of the cost formulas are integers and counter
# equality can be exact.
N_SHORT = 48  # at or below eager_max_words -> latency-optimal family
N_LONG = 4800  # above it -> bandwidth-optimal family
M_BLOCK = 24  # per-rank block extent for allgather / gather

# The seven traced operations, in program order.
OPS = (
    "allreduce-short",
    "allreduce-long",
    "reduce_scatter",
    "allgather",
    "bcast",
    "gather",
    "barrier",
)


def _ceil_log2(p: int) -> float:
    return float(math.ceil(math.log2(p)))


def _traced_program(comm):
    """Run one collective of each flavour; return the trace records."""
    comm.allreduce(np.arange(N_SHORT, dtype=np.float64) + comm.rank)
    comm.allreduce(np.arange(N_LONG, dtype=np.float64) + comm.rank)
    comm.reduce_scatter(
        np.full((N_LONG,), float(comm.rank + 1)), axis=0
    )
    comm.allgather(np.full((M_BLOCK,), float(comm.rank)), axis=0)
    payload = np.arange(N_LONG, dtype=np.float64)
    comm.bcast(payload if comm.rank == 0 else None, root=0)
    comm.gather(np.full((M_BLOCK,), float(comm.rank)), root=0)
    comm.barrier()
    return comm.trace.records


@lru_cache(maxsize=None)
def _run(size: int, deterministic: bool) -> tuple:
    """Per-rank CollectiveRecord lists for one traced run."""
    config = CommConfig(
        collective_timeout=60.0,
        shm_min_bytes=1,  # every array message rides shared memory
        deterministic=deterministic,
        eager_max_words=N_SHORT,  # N_SHORT -> short, N_LONG -> long
    )
    return tuple(run_spmd(_traced_program, size, config=config))


def _expected_allreduce(short: bool, deterministic: bool, p: int):
    """(algorithm name, cost formula) the transport must have picked."""
    pow2 = p & (p - 1) == 0
    if short and not deterministic and pow2:
        return "recursive-doubling", recursive_doubling_allreduce_cost
    if short:
        return "bruck-gather", allreduce_short_cost
    if deterministic or not pow2:
        return "pairwise-rs+ring-ag", allreduce_cost
    return "rabenseifner", rabenseifner_allreduce_cost


def _expected_reduce_scatter(deterministic: bool, p: int):
    pow2 = p & (p - 1) == 0
    if deterministic or not pow2:
        return "pairwise", reduce_scatter_cost
    return "recursive-halving", reduce_scatter_halving_cost


@pytest.mark.parametrize("deterministic", [True, False])
@pytest.mark.parametrize("size", SIZES)
def test_symmetric_collectives_match_cost_formulas(size, deterministic):
    """Allreduce / reduce-scatter / allgather / barrier counters equal
    the closed forms on every rank (these schedules are symmetric)."""
    for records in _run(size, deterministic):
        by_op = dict(zip(OPS, records))
        assert [r.op for r in records] == [
            "allreduce",
            "allreduce",
            "reduce_scatter",
            "allgather",
            "bcast",
            "gather",
            "barrier",
        ]

        for op, n, short in (
            ("allreduce-short", N_SHORT, True),
            ("allreduce-long", N_LONG, False),
        ):
            algo, cost = _expected_allreduce(short, deterministic, size)
            rec = by_op[op]
            words, msgs = cost(n, size)
            assert rec.algorithm == algo
            assert rec.group_size == size
            assert rec.sent_words == words
            assert rec.sent_messages == msgs
            assert rec.recv_words == words
            assert rec.recv_messages == msgs
            assert rec.sent_bytes == rec.sent_words * 8  # float64

        algo, cost = _expected_reduce_scatter(deterministic, size)
        rec = by_op["reduce_scatter"]
        words, msgs = cost(N_LONG, size)
        assert rec.algorithm == algo
        assert (rec.sent_words, rec.sent_messages) == (words, msgs)
        assert (rec.recv_words, rec.recv_messages) == (words, msgs)

        rec = by_op["allgather"]
        words, msgs = allgather_cost(M_BLOCK * size, size)
        assert rec.algorithm == "ring"
        assert (rec.sent_words, rec.sent_messages) == (words, msgs)
        assert (rec.recv_words, rec.recv_messages) == (words, msgs)

        rec = by_op["barrier"]
        assert rec.algorithm == "dissemination"
        assert rec.sent_words == 0
        assert rec.sent_messages == _ceil_log2(size)
        assert rec.recv_messages == _ceil_log2(size)


@pytest.mark.parametrize("size", SIZES)
def test_rooted_collectives_match_cost_formulas(size):
    """Bcast / gather are rooted: certify the cost formulas against the
    root's message rounds and the per-rank receive profile."""
    ranks = _run(size, True)
    bcast_recs = [dict(zip(OPS, r))["bcast"] for r in ranks]
    gather_recs = [dict(zip(OPS, r))["gather"] for r in ranks]

    # Binomial bcast: the formula's beta term is the n words every
    # non-root receives exactly once; its alpha term is the root's
    # ceil(log2 p) sequential sends (the tree's critical path).
    words, msgs = bcast_cost(N_LONG, size)
    assert all(r.algorithm == "binomial" for r in bcast_recs)
    assert bcast_recs[0].sent_messages == msgs
    for rec in bcast_recs[1:]:
        assert rec.recv_words == words
        assert rec.recv_messages == 1
    assert sum(r.sent_messages for r in bcast_recs) == size - 1
    assert sum(r.recv_words for r in bcast_recs) == N_LONG * (size - 1)

    # Binomial gather: the root receives n(p-1)/p words in
    # ceil(log2 p) messages — exactly the formula's two terms.
    words, msgs = gather_cost(M_BLOCK * size, size)
    assert all(r.algorithm == "binomial" for r in gather_recs)
    assert gather_recs[0].recv_words == words
    assert gather_recs[0].recv_messages == msgs
    # Every non-root forwards its data exactly once (plus subtree).
    assert sum(r.sent_words for r in gather_recs) >= M_BLOCK * (size - 1)


@pytest.mark.parametrize("deterministic", [True, False])
@pytest.mark.parametrize("size", SIZES)
def test_array_traffic_rides_shared_memory(size, deterministic):
    """With shm_min_bytes=1 every array-carrying message of the
    reduction collectives uses the zero-copy segment path."""
    for records in _run(size, deterministic):
        by_op = dict(zip(OPS, records))
        for op in ("allreduce-short", "allreduce-long", "reduce_scatter"):
            rec = by_op[op]
            assert rec.shm_messages == rec.sent_messages, op
        assert by_op["barrier"].shm_messages == 0


def _selection_program(comm):
    comm.allreduce(np.zeros(64))
    comm.allreduce(np.zeros(32768))
    return [r.algorithm for r in comm.trace.records]


def test_default_threshold_drives_selection():
    """Without an eager_max_words override the executing transport
    consults the same alpha-beta crossover the cost model uses."""
    p = 4
    assert select_allreduce_algorithm(64, p) == "short"
    assert select_allreduce_algorithm(32768, p) == "long"
    assert 64 < allreduce_crossover_words(p) < 32768
    algos = run_spmd(_selection_program, p)[0]
    assert algos == ["bruck-gather", "pairwise-rs+ring-ag"]


def test_crossover_consistency():
    """select_allreduce_algorithm is the indicator of the crossover."""
    for p in (2, 3, 4, 7, 8, 16):
        n_star = allreduce_crossover_words(p)
        if math.isinf(n_star):
            assert p <= 2
            assert select_allreduce_algorithm(1e12, p) == "short"
            continue
        assert select_allreduce_algorithm(n_star * 0.5, p) == "short"
        assert select_allreduce_algorithm(n_star * 2.0, p) == "long"


def _star_trace_program(comm):
    comm.allreduce(np.ones(32))
    comm.barrier()
    return comm.trace.records


def test_star_transport_traces_traffic():
    """The legacy star transport records its (coordinator-shaped)
    traffic too, so benchmarks can compare bytes moved per transport."""
    records = run_spmd(_star_trace_program, 3, transport="star")[0]
    assert [r.op for r in records] == ["allreduce", "barrier"]
    assert all(r.algorithm == "star" for r in records)
    ar = records[0]
    assert ar.sent_words == 32  # one request up to the coordinator
    assert ar.recv_words == 32  # one reply back down
    assert ar.shm_messages == 0
