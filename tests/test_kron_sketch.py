"""Kronecker-structured randomized range finder (Minster et al.)."""

import numpy as np
import pytest

from repro.linalg.randomized import kronecker_range_finder
from repro.tensor.dense import unfold
from repro.tensor.random import tucker_plus_noise


def _captured(x, mode, q):
    mat = unfold(x, mode)
    return np.linalg.norm(q.T @ mat) / np.linalg.norm(mat)


class TestKroneckerSketch:
    def test_orthonormal(self, lowrank3):
        q = kronecker_range_finder(lowrank3, 0, 4, seed=0)
        np.testing.assert_allclose(q.T @ q, np.eye(4), atol=1e-10)

    def test_captures_lowrank_range(self, lowrank3):
        for mode in range(3):
            q = kronecker_range_finder(lowrank3, mode, 5, seed=1)
            assert _captured(lowrank3, mode, q) > 0.999, mode

    def test_4way(self, lowrank4):
        q = kronecker_range_finder(lowrank4, 1, 4, seed=2)
        assert q.shape == (lowrank4.shape[1], 4)
        assert _captured(lowrank4, 1, q) > 0.999

    def test_rank_capped_at_mode_extent(self):
        x = tucker_plus_noise((5, 12, 12), (3, 3, 3), noise=1e-4, seed=3)
        q = kronecker_range_finder(x, 0, 99, seed=4)
        assert q.shape == (5, 5)

    def test_oversample_helps_or_matches(self, lowrank3):
        lean = kronecker_range_finder(lowrank3, 0, 4, oversample=0, seed=5)
        fat = kronecker_range_finder(lowrank3, 0, 4, oversample=8, seed=5)
        assert _captured(lowrank3, 0, fat) >= _captured(
            lowrank3, 0, lean
        ) - 1e-6

    def test_invalid_rank(self, lowrank3):
        with pytest.raises(ValueError):
            kronecker_range_finder(lowrank3, 0, 0)

    def test_deterministic(self, lowrank3):
        a = kronecker_range_finder(lowrank3, 0, 3, seed=6)
        b = kronecker_range_finder(lowrank3, 0, 3, seed=6)
        np.testing.assert_array_equal(a, b)

    def test_small_sketch_budget_on_tiny_modes(self):
        """Modes too small to host the requested sketch size degrade
        gracefully (sketch capped at the mode products)."""
        x = tucker_plus_noise((12, 2, 2), (2, 2, 2), noise=1e-4, seed=7)
        q = kronecker_range_finder(x, 0, 4, oversample=8, seed=8)
        assert q.shape == (12, 4)
