"""Comm/compute overlap (``CommConfig.overlap``): identity and attribution.

The pipelined deterministic collectives must be a pure scheduling
change: bit-identical results, identical collective traces (ops,
algorithms, message/word counters), on both transport wires.  The only
observable difference is where receive waits land — overlapped waits
move to the ``collective_wait_hidden_seconds`` histogram, which the
attribution report surfaces as hidden wait.

Failure behavior under overlap is load-bearing too: a peer that
hard-crashes mid-pipeline must surface as a prompt
:class:`~repro.vmpi.mp_comm.RankFailureError` — the prefetch helper
must neither deadlock on its one-in-flight slot nor leak it across
the abort.
"""

import glob
import time

import numpy as np
import pytest

from repro.analysis.attribution import format_attribution_report
from repro.observability.profile import RunProfile
from repro.vmpi.faults import FaultPlan
from repro.vmpi.mp_comm import (
    CommConfig,
    ProcessComm,
    RankFailureError,
    run_spmd,
)

# Payload sizes chosen so the deterministic allreduce takes the long
# pairwise-rs+ring-ag path (the overlapped one) with eager_max_words
# forced low, on 3 ranks (non-power-of-two: always deterministic
# algorithms).
_N = 60_000


def _cfg(overlap: bool, profile: bool = False) -> CommConfig:
    return CommConfig(
        deterministic=True,
        overlap=overlap,
        eager_max_words=1024,
        collective_timeout=60.0,
        profile=profile,
    )


def _prog_mixed(comm: ProcessComm) -> tuple:
    """One of each overlapped collective plus a serial allgather."""
    rng = np.random.default_rng(100 + comm.rank)
    a = comm.allreduce(rng.standard_normal(_N))
    m = comm.reduce_scatter(rng.standard_normal((30, 40)), axis=0)
    g = comm.allgather(m, axis=0)
    trace = [
        (r.op, r.algorithm, r.group_size, r.sent_messages, r.sent_words,
         r.recv_messages, r.recv_words)
        for r in comm.trace.records
    ]
    return a, m, g, trace


def _prog_subgroup(comm: ProcessComm) -> tuple:
    group = tuple(r for r in range(comm.size) if r != 1)
    if comm.rank == 1:
        return (None,)
    out = comm.allreduce(
        np.full(_N, float(comm.rank)), group=group
    )
    return (out,)


class TestOverlapIdentity:
    def test_bit_and_trace_identical(self, backend):
        off = run_spmd(_prog_mixed, 3, config=_cfg(False), transport=backend)
        on = run_spmd(_prog_mixed, 3, config=_cfg(True), transport=backend)
        algs = {t[0]: t[1] for t in on[0][3]}
        # the long deterministic path — the one that pipelines — ran
        assert algs["allreduce"] == "pairwise-rs+ring-ag"
        assert algs["reduce_scatter"] == "pairwise"
        for r in range(3):
            for k in range(3):
                np.testing.assert_array_equal(off[r][k], on[r][k])
            assert off[r][3] == on[r][3]

    def test_subgroup_overlap(self, backend):
        off = run_spmd(_prog_subgroup, 3, config=_cfg(False), transport=backend)
        on = run_spmd(_prog_subgroup, 3, config=_cfg(True), transport=backend)
        for r in (0, 2):
            np.testing.assert_array_equal(off[r][0], on[r][0])

    def test_single_rank_group_unaffected(self):
        out = run_spmd(_prog_mixed, 1, config=_cfg(True))
        assert out[0][0].shape == (_N,)


class TestOverlapFailure:
    """Hard peer death during pipelined collectives (satellite of the
    elastic-recovery PR): the prefetch helper's one-in-flight slot must
    neither deadlock the surviving ranks nor leak shm segments."""

    def test_hard_crash_fails_fast(self, backend):
        cfg = CommConfig(
            deterministic=True,
            overlap=True,
            eager_max_words=1024,
            collective_timeout=8.0,
            fault_plan=FaultPlan.kill(1, op_index=2),
        )
        t0 = time.monotonic()
        with pytest.raises(RankFailureError) as err:
            run_spmd(_prog_mixed, 3, config=cfg, transport=backend)
        # Well under the 8 s per-recv deadline x pipeline depth: the
        # abort must come from death detection, not timeout stacking.
        assert time.monotonic() - t0 < 30.0
        assert 1 in err.value.failed_ranks

    def test_soft_crash_mid_pipeline(self, backend):
        # Soft crash: the dying rank raises through the pipelined
        # collective while its prefetch slot is armed; its own
        # shutdown path must not hang on the in-flight receive.
        cfg = CommConfig(
            deterministic=True,
            overlap=True,
            eager_max_words=1024,
            collective_timeout=8.0,
            fault_plan=FaultPlan.kill(2, op_index=1, hard=False),
        )
        t0 = time.monotonic()
        with pytest.raises(RankFailureError) as err:
            run_spmd(_prog_mixed, 3, config=cfg, transport=backend)
        assert time.monotonic() - t0 < 30.0
        assert 2 in err.value.failed_ranks

    def test_hard_crash_leaves_no_shm_residue(self):
        cfg = CommConfig(
            deterministic=True,
            overlap=True,
            eager_max_words=1024,
            collective_timeout=8.0,
            fault_plan=FaultPlan.kill(0, op_index=3),
        )
        with pytest.raises(RankFailureError):
            run_spmd(_prog_mixed, 3, config=cfg, transport="shm")
        assert glob.glob("/dev/shm/mpx*") == []


class TestOverlapAttribution:
    @pytest.mark.parametrize("overlap", [False, True])
    def test_wait_moves_to_hidden_histogram(self, overlap):
        prof: dict = {}
        run_spmd(
            _prog_mixed, 3, config=_cfg(overlap, profile=True),
            profile_out=prof,
        )
        hists = prof[0].metrics["histograms"]
        hidden = hists.get("collective_wait_hidden_seconds")
        if overlap:
            # every overlapped receive's wait is attributed as hidden
            assert hidden is not None and hidden["count"] > 0
        else:
            assert hidden is None
        # transfer accounting is overlap-independent
        assert hists["collective_transfer_seconds"]["count"] > 0

    def test_report_shows_hidden_wait(self):
        prof: dict = {}
        run_spmd(
            _prog_mixed, 3, config=_cfg(True, profile=True),
            profile_out=prof,
        )
        profile = RunProfile.from_ranks(prof)
        report = format_attribution_report(profile)
        assert "hidden behind compute" in report
