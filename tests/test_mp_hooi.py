"""Process-parallel HOSI, memoized HOOI, and rank-adaptive HOSI."""

import numpy as np
import pytest

from repro.analysis.costs import hooi_ttm_count
from repro.core.hooi import HOOIOptions, hooi, variant_options
from repro.core.rank_adaptive import (
    RankAdaptiveOptions,
    rank_adaptive_hooi,
)
from repro.distributed.layout import BlockLayout
from repro.distributed.mp_hooi import (
    MPTreeEngine,
    mp_hooi_dt,
    mp_hosi,
    mp_rahosi_dt,
)
from repro.distributed.spmd_hooi import spmd_hooi
from repro.linalg.llsv import LLSVMethod
from repro.tensor.random import random_orthonormal, tucker_plus_noise
from repro.vmpi.collectives import hooi_collective_counts
from repro.vmpi.grid import ProcessorGrid
from repro.vmpi.mp_comm import ProcessComm, run_spmd


class TestMPHOSI:
    @pytest.mark.parametrize("dims", [(1, 1, 1), (2, 2, 1), (1, 2, 2)])
    def test_matches_sequential(self, dims):
        x = tucker_plus_noise((14, 12, 10), (3, 3, 2), noise=1e-4, seed=1)
        opts = variant_options("hosi", max_iters=2, seed=7)
        seq, _ = hooi(x, (3, 3, 2), opts)
        par = mp_hosi(x, (3, 3, 2), dims, max_iters=2, seed=7)
        assert par.relative_error(x) == pytest.approx(
            seq.relative_error(x), rel=1e-6
        )
        for a, b in zip(seq.factors, par.factors):
            np.testing.assert_allclose(a @ a.T, b @ b.T, atol=1e-7)

    def test_4way(self):
        x = tucker_plus_noise((8, 8, 8, 8), (2, 2, 2, 2), noise=1e-4, seed=2)
        par = mp_hosi(x, (2, 2, 2, 2), (1, 2, 2, 1), max_iters=2, seed=3)
        assert par.relative_error(x) < 1e-3

    def test_validation(self):
        x = np.zeros((4, 4, 4))
        with pytest.raises(ValueError):
            mp_hosi(x, (2, 2, 2), (1, 1))
        with pytest.raises(ValueError):
            mp_hosi(x, (9, 2, 2), (1, 1, 1))


class TestMPHooiDT:
    @pytest.mark.parametrize("dims", [(1, 1, 1), (2, 2, 1), (1, 2, 2)])
    def test_bitwise_vs_spmd_tree(self, dims):
        """The mp tree engine is bit-identical to the in-process SPMD
        tree engine (deterministic transport)."""
        x = tucker_plus_noise((12, 11, 10), (3, 3, 2), noise=1e-4, seed=4)
        opts = HOOIOptions(max_iters=2, seed=5)
        ref = spmd_hooi(x, (3, 3, 2), dims, opts)
        par, stats = mp_hooi_dt(x, (3, 3, 2), dims, opts)
        assert stats.used_tree
        assert np.array_equal(par.core, ref.core)
        for a, b in zip(par.factors, ref.factors):
            assert np.array_equal(a, b)

    def test_bitwise_vs_spmd_direct(self):
        x = tucker_plus_noise((10, 9, 8), (2, 3, 2), noise=1e-4, seed=6)
        opts = HOOIOptions(max_iters=2, seed=7, use_dimension_tree=False)
        ref = spmd_hooi(x, (2, 3, 2), (1, 2, 2), opts)
        par, stats = mp_hooi_dt(x, (2, 3, 2), (1, 2, 2), opts)
        assert not stats.used_tree
        assert np.array_equal(par.core, ref.core)
        for a, b in zip(par.factors, ref.factors):
            assert np.array_equal(a, b)

    def test_gram_evd_llsv_bitwise(self):
        x = tucker_plus_noise((10, 9, 8), (2, 2, 2), noise=1e-4, seed=8)
        opts = HOOIOptions(
            max_iters=2, seed=9, llsv_method=LLSVMethod.GRAM_EVD
        )
        ref = spmd_hooi(x, (2, 2, 2), (2, 1, 2), opts)
        par, _ = mp_hooi_dt(x, (2, 2, 2), (2, 1, 2), opts)
        assert np.array_equal(par.core, ref.core)
        for a, b in zip(par.factors, ref.factors):
            assert np.array_equal(a, b)

    @pytest.mark.parametrize("rule", ["half", "single"])
    @pytest.mark.parametrize("d", [3, 4])
    def test_per_iteration_ttm_count_certified(self, d, rule):
        """Traced TTM counts match the memoized Table 1 formula: the
        core TTM appears only in the final iteration's count."""
        shape = (8, 7, 6, 5)[:d]
        ranks = (2, 2, 2, 2)[:d]
        grid = (2, 2, 1, 1)[:d]
        x = tucker_plus_noise(shape, ranks, noise=1e-3, seed=10)
        opts = HOOIOptions(max_iters=3, seed=11)
        _, stats = mp_hooi_dt(x, ranks, grid, opts, rule=rule)
        expected = [
            hooi_ttm_count(d, rule=rule, include_core=False),
            hooi_ttm_count(d, rule=rule, include_core=False),
            hooi_ttm_count(d, rule=rule, include_core=True),
        ]
        assert stats.per_iteration_ttms == expected
        # The trace tells the same story: the engine counters and the
        # phase-tagged reduce-scatters agree exactly.
        assert stats.trace.count("reduce_scatter", "ttm", "core") == sum(
            expected
        )
        assert stats.trace.count("reduce_scatter", "core") == 1

    def test_core_ttm_once_not_per_iteration(self):
        """Regression for the trailing core-forming TTM: two outer
        iterations cost T, T+1 TTMs — not (T+1), (T+1)."""
        x = tucker_plus_noise((8, 8, 8), (2, 2, 2), noise=1e-3, seed=12)
        _, stats = mp_hooi_dt(
            x, (2, 2, 2), (1, 2, 2), HOOIOptions(max_iters=2, seed=13)
        )
        t = hooi_ttm_count(3, include_core=False)
        assert stats.per_iteration_ttms == [t, t + 1]
        # Direct path gets the same fix.
        _, stats = mp_hooi_dt(
            x,
            (2, 2, 2),
            (1, 2, 2),
            HOOIOptions(max_iters=2, seed=13, use_dimension_tree=False),
        )
        td = hooi_ttm_count(3, dimension_tree=False, include_core=False)
        assert stats.per_iteration_ttms == [td, td + 1]

    def test_collective_schedule_certified(self):
        """Rank 0's phase-tagged trace matches the closed-form
        per-iteration collective counts of the subspace variant."""
        d = 4
        x = tucker_plus_noise(
            (7, 6, 6, 5), (2, 2, 2, 2), noise=1e-3, seed=14
        )
        _, stats = mp_hooi_dt(
            x,
            (2, 2, 2, 2),
            (1, 2, 2, 1),
            HOOIOptions(max_iters=1, seed=15, n_subspace_iters=2),
        )
        n_ttms = hooi_ttm_count(d)
        expected = hooi_collective_counts(
            d, n_ttms, subspace=True, n_subspace_iters=2
        )
        trace = stats.trace
        assert trace.count("reduce_scatter") == expected["reduce_scatter"]
        assert trace.count("allgather") == expected["allgather"]
        assert trace.count("allreduce") == expected["allreduce"]
        # Phase split: tree TTMs + core vs LLSV-internal reduce-scatters.
        assert trace.count("reduce_scatter", "ttm", "core") == n_ttms
        assert (
            trace.count("reduce_scatter", "llsv")
            == expected["reduce_scatter"] - n_ttms
        )

    def test_gram_evd_schedule_certified(self):
        d = 3
        x = tucker_plus_noise((8, 7, 6), (2, 2, 2), noise=1e-3, seed=16)
        _, stats = mp_hooi_dt(
            x,
            (2, 2, 2),
            (2, 1, 2),
            HOOIOptions(
                max_iters=1, seed=17, llsv_method=LLSVMethod.GRAM_EVD
            ),
        )
        n_ttms = hooi_ttm_count(d)
        expected = hooi_collective_counts(d, n_ttms, subspace=False)
        assert (
            stats.trace.count("reduce_scatter")
            == expected["reduce_scatter"]
        )
        assert stats.trace.count("allgather") == expected["allgather"]
        assert stats.trace.count("allreduce") == expected["allreduce"]

    def test_unknown_llsv_rejected(self):
        from repro.core.errors import ConfigError

        x = np.zeros((4, 4, 4))
        with pytest.raises(ConfigError):
            mp_hooi_dt(
                x,
                (2, 2, 2),
                (1, 1, 1),
                HOOIOptions(llsv_method=LLSVMethod.LQ_SVD),
            )


def _prog_cache(
    comm: ProcessComm,
    blocks: list[np.ndarray],
    grid_dims: tuple[int, ...],
    shape: tuple[int, ...],
    ranks: tuple[int, ...],
) -> dict:
    """Exercise MPTreeEngine memoization + eviction inside a worker."""
    grid = ProcessorGrid(grid_dims)
    coords = grid.coords(comm.rank)
    layout = BlockLayout(shape, grid)
    rng = np.random.default_rng(0)
    factors = [
        random_orthonormal(n, r, seed=rng) for n, r in zip(shape, ranks)
    ]
    engine = MPTreeEngine(comm, coords, factors, ranks)
    state = (blocks[comm.rank], layout, ())
    out: dict = {}

    c1 = engine.contract(state, (2, 1))
    out["misses_after_first"] = engine.cache_misses
    out["ttms_after_first"] = engine.ttm_count
    c2 = engine.contract(state, (2, 1))
    out["hits_after_repeat"] = engine.cache_hits
    out["ttms_after_repeat"] = engine.ttm_count
    out["repeat_identical"] = bool(np.array_equal(c1[0], c2[0]))

    # Updating factor 0 must NOT evict nodes built from modes {2, 1}.
    engine.update_factor(c1, 0)
    engine.contract(state, (2, 1))
    out["hits_after_unrelated_update"] = engine.cache_hits

    # Updating factor 1 evicts every node that used it: the (2,) node
    # survives, the (2, 1) node is recomputed.
    engine.update_factor(engine.contract(state, (2, 0)), 1)
    before = engine.ttm_count
    engine.contract(state, (2, 1))
    out["ttms_for_partial_recompute"] = engine.ttm_count - before

    # reset_factors invalidates everything (the RA truncation path).
    engine.reset_factors(engine.factors, engine.ranks)
    before = engine.ttm_count
    engine.contract(state, (2, 1))
    out["ttms_after_reset"] = engine.ttm_count - before
    return out


class TestMPTreeEngineCache:
    def test_memoization_and_eviction(self):
        shape, ranks = (6, 6, 6), (2, 2, 2)
        x = tucker_plus_noise(shape, ranks, noise=1e-3, seed=18)
        grid = ProcessorGrid((1, 1, 1))
        layout = BlockLayout(shape, grid)
        blocks = [
            np.ascontiguousarray(x[layout.local_slices(coords)])
            for _, coords in grid.iter_ranks()
        ]
        (out,) = run_spmd(
            _prog_cache, 1, blocks, (1, 1, 1), shape, ranks
        )
        assert out["misses_after_first"] == 2
        assert out["ttms_after_first"] == 2
        # Exact repeat: both nodes served from cache, no new TTM.
        assert out["hits_after_repeat"] == 2
        assert out["ttms_after_repeat"] == 2
        assert out["repeat_identical"]
        # Mode-0 update leaves {2,1}-nodes valid.
        assert out["hits_after_unrelated_update"] == 4
        # Mode-1 update: (2,) reused, (2,1) recomputed -> exactly 1 TTM.
        assert out["ttms_for_partial_recompute"] == 1
        # Version bump-all: everything recomputed.
        assert out["ttms_after_reset"] == 2


class TestMPRAHOSI:
    def test_matches_sequential_ra(self):
        x = tucker_plus_noise(
            (8, 9, 8, 7), (3, 3, 3, 2), noise=1e-4, seed=1
        )
        eps = 1e-2
        opts = RankAdaptiveOptions(seed=0)
        seq, seq_stats = rank_adaptive_hooi(x, eps, (2, 2, 2, 2), opts)
        par, stats = mp_rahosi_dt(x, eps, (2, 2, 2, 2), (1, 2, 2, 1), opts)
        assert stats.converged
        assert stats.first_satisfied == seq_stats.first_satisfied
        assert par.ranks == seq.ranks
        assert len(stats.history) == len(seq_stats.history)
        for mine, ref in zip(stats.history, seq_stats.history):
            assert mine.ranks_used == ref.ranks_used
            assert mine.satisfied == ref.satisfied
            assert mine.error == pytest.approx(ref.error, abs=1e-8)
        assert stats.history[-1].truncated_ranks == par.ranks
        rec = np.linalg.norm(par.reconstruct() - x) / np.linalg.norm(x)
        assert rec <= eps

    def test_growth_path(self):
        """Under-estimated start grows ranks before satisfying."""
        x = tucker_plus_noise((9, 8, 8), (4, 4, 3), noise=1e-5, seed=2)
        par, stats = mp_rahosi_dt(
            x,
            1e-3,
            (2, 2, 2),
            (1, 2, 2),
            RankAdaptiveOptions(seed=3, alpha=1.5, max_iters=4),
        )
        assert stats.converged
        assert len(stats.history) >= 2
        grown = stats.history[1].ranks_used
        assert all(g > s for g, s in zip(grown, (2, 2, 2)))
        rec = np.linalg.norm(par.reconstruct() - x) / np.linalg.norm(x)
        assert rec <= 1e-3

    def test_core_formed_every_iteration(self):
        """RA consumes the core each iteration, so every per-iteration
        TTM count includes the core-forming TTM."""
        x = tucker_plus_noise((8, 8, 8), (3, 3, 3), noise=1e-4, seed=4)
        _, stats = mp_rahosi_dt(
            x,
            1e-2,
            (2, 2, 2),
            (2, 2, 1),
            RankAdaptiveOptions(seed=5, max_iters=3),
        )
        t_full = hooi_ttm_count(3, include_core=True)
        assert stats.per_iteration_ttms == [t_full] * len(
            stats.per_iteration_ttms
        )
        assert stats.trace.count(
            "reduce_scatter", "core"
        ) == len(stats.per_iteration_ttms)

    def test_eps_validation(self):
        from repro.core.errors import ConfigError

        x = np.zeros((4, 4, 4))
        with pytest.raises(ConfigError):
            mp_rahosi_dt(x, 0.0, (2, 2, 2), (1, 1, 1))
        with pytest.raises(ConfigError):
            mp_rahosi_dt(x, 1.0, (2, 2, 2), (1, 1, 1))
