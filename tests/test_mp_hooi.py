"""Process-parallel HOSI."""

import numpy as np
import pytest

from repro.core.hooi import hooi, variant_options
from repro.distributed.mp_hooi import mp_hosi
from repro.tensor.random import tucker_plus_noise


class TestMPHOSI:
    @pytest.mark.parametrize("dims", [(1, 1, 1), (2, 2, 1), (1, 2, 2)])
    def test_matches_sequential(self, dims):
        x = tucker_plus_noise((14, 12, 10), (3, 3, 2), noise=1e-4, seed=1)
        opts = variant_options("hosi", max_iters=2, seed=7)
        seq, _ = hooi(x, (3, 3, 2), opts)
        par = mp_hosi(x, (3, 3, 2), dims, max_iters=2, seed=7)
        assert par.relative_error(x) == pytest.approx(
            seq.relative_error(x), rel=1e-6
        )
        for a, b in zip(seq.factors, par.factors):
            np.testing.assert_allclose(a @ a.T, b @ b.T, atol=1e-7)

    def test_4way(self):
        x = tucker_plus_noise((8, 8, 8, 8), (2, 2, 2, 2), noise=1e-4, seed=2)
        par = mp_hosi(x, (2, 2, 2, 2), (1, 2, 2, 1), max_iters=2, seed=3)
        assert par.relative_error(x) < 1e-3

    def test_validation(self):
        x = np.zeros((4, 4, 4))
        with pytest.raises(ValueError):
            mp_hosi(x, (2, 2, 2), (1, 1))
        with pytest.raises(ValueError):
            mp_hosi(x, (9, 2, 2), (1, 1, 1))
