"""Distributed rank-adaptive HOOI."""

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.core.rank_adaptive import RankAdaptiveOptions, rank_adaptive_hooi
from repro.distributed.arrays import SymbolicArray
from repro.distributed.rank_adaptive import dist_rank_adaptive_hooi


class TestDistRankAdaptive:
    def test_meets_tolerance(self, lowrank4):
        tucker, stats = dist_rank_adaptive_hooi(
            lowrank4, 0.01, (4, 5, 3, 4), (1, 2, 2, 1)
        )
        assert stats.converged
        assert tucker.relative_error(lowrank4) <= 0.01 * (1 + 1e-6)

    def test_matches_sequential(self, lowrank4):
        opts = RankAdaptiveOptions(max_iters=3, seed=0)
        seq_t, seq_s = rank_adaptive_hooi(lowrank4, 0.01, (4, 5, 3, 4), opts)
        dist_t, dist_s = dist_rank_adaptive_hooi(
            lowrank4, 0.01, (4, 5, 3, 4), (1, 2, 1, 2), options=opts
        )
        assert dist_t.ranks == seq_t.ranks
        assert dist_s.first_satisfied == seq_s.first_satisfied
        assert [r.ranks_used for r in dist_s.history] == [
            r.ranks_used for r in seq_s.history
        ]

    def test_iteration_seconds_recorded(self, lowrank4):
        opts = RankAdaptiveOptions(max_iters=3, stop_at_threshold=False)
        _, stats = dist_rank_adaptive_hooi(
            lowrank4, 0.05, (4, 5, 3, 4), (1, 2, 2, 1), options=opts
        )
        assert len(stats.iteration_seconds) == len(stats.history) == 3
        assert all(s > 0 for s in stats.iteration_seconds)
        assert stats.simulated_seconds == pytest.approx(
            sum(stats.iteration_seconds), rel=1e-9
        )

    def test_core_analysis_charged(self, lowrank4):
        _, stats = dist_rank_adaptive_hooi(
            lowrank4, 0.05, (4, 5, 3, 4), (1, 2, 2, 1)
        )
        assert stats.breakdown.get("core_analysis", 0) > 0
        assert stats.breakdown.get("core_comm", 0) > 0

    def test_undershoot_grows(self, lowrank4):
        opts = RankAdaptiveOptions(max_iters=6, alpha=2.0)
        tucker, stats = dist_rank_adaptive_hooi(
            lowrank4, 0.01, (1, 1, 1, 1), (1, 1, 2, 2), options=opts
        )
        assert stats.converged
        assert stats.first_satisfied > 1

    def test_symbolic_rejected(self):
        x = SymbolicArray((8, 8, 8))
        with pytest.raises(ConfigError):
            dist_rank_adaptive_hooi(x, 0.1, (2, 2, 2), (1, 1, 1))

    def test_bad_eps(self, lowrank4):
        with pytest.raises(ConfigError):
            dist_rank_adaptive_hooi(lowrank4, 1.5, (2, 2, 2, 2), (1,) * 4)

    def test_grid_order(self, lowrank4):
        with pytest.raises(ConfigError):
            dist_rank_adaptive_hooi(lowrank4, 0.1, (2, 2, 2, 2), (1, 1))

    def test_gram_variant(self, lowrank4):
        opts = RankAdaptiveOptions(
            use_dimension_tree=False,
            llsv_method=__import__(
                "repro.linalg.llsv", fromlist=["LLSVMethod"]
            ).LLSVMethod.GRAM_EVD,
        )
        tucker, stats = dist_rank_adaptive_hooi(
            lowrank4, 0.01, (4, 5, 3, 4), (1, 2, 2, 1), options=opts
        )
        assert stats.converged
        assert "evd" in stats.breakdown
