"""Cost ledger accounting."""

import pytest

from repro.vmpi.cost import CostLedger, PhaseCost
from repro.vmpi.machine import MachineModel


@pytest.fixture
def ledger() -> CostLedger:
    return CostLedger(MachineModel(flop_rate=1e9, alpha=1e-6, beta=1e-9), 4)


class TestCharging:
    def test_compute(self, ledger):
        dt = ledger.compute("ttm", 1e9)
        assert dt == pytest.approx(1.0)
        assert ledger.seconds("ttm") == pytest.approx(1.0)
        assert ledger.total_flops() == pytest.approx(1e9)

    def test_sequential(self, ledger):
        ledger.sequential("evd", 5e8)
        assert ledger.seconds("evd") == pytest.approx(0.5)
        assert ledger.total_seq_flops() == pytest.approx(5e8)
        assert ledger.total_flops() == 0.0

    def test_comm(self, ledger):
        ledger.comm("ttm_comm", 1e9, 10)
        assert ledger.seconds("ttm_comm") == pytest.approx(1.0, rel=1e-3)
        assert ledger.total_words() == pytest.approx(1e9)

    def test_comm_noop(self, ledger):
        assert ledger.comm("x", 0.0, 0.0) == 0.0
        assert "x" not in ledger.phases

    def test_accumulation(self, ledger):
        ledger.compute("ttm", 1e9)
        ledger.compute("ttm", 1e9)
        assert ledger.seconds("ttm") == pytest.approx(2.0)

    def test_total_across_phases(self, ledger):
        ledger.compute("a", 1e9)
        ledger.sequential("b", 1e9)
        assert ledger.seconds() == pytest.approx(2.0)


class TestReporting:
    def test_breakdown_sorted(self, ledger):
        ledger.compute("small", 1e6)
        ledger.compute("big", 1e9)
        assert list(ledger.breakdown()) == ["big", "small"]

    def test_snapshot_delta(self, ledger):
        ledger.compute("a", 1e9)
        snap = ledger.snapshot()
        ledger.compute("a", 2e9)
        assert ledger.seconds_since(snap) == pytest.approx(2.0)

    def test_snapshot_is_deep(self, ledger):
        ledger.compute("a", 1e9)
        snap = ledger.snapshot()
        ledger.compute("a", 1e9)
        assert snap["a"].seconds == pytest.approx(1.0)


class TestMerge:
    def test_merge(self):
        m = MachineModel(flop_rate=1e9)
        a, b = CostLedger(m, 2), CostLedger(m, 2)
        a.compute("x", 1e9)
        b.compute("x", 1e9)
        b.comm("y", 100, 1)
        a.merge(b)
        assert a.seconds("x") == pytest.approx(2.0)
        assert "y" in a.phases

    def test_merge_p_mismatch(self):
        m = MachineModel()
        with pytest.raises(ValueError):
            CostLedger(m, 2).merge(CostLedger(m, 4))


def test_invalid_rank_count():
    with pytest.raises(ValueError):
        CostLedger(MachineModel(), 0)


def test_phasecost_merge():
    a = PhaseCost(1.0, 2.0, 3.0, 4.0, 5.0)
    a.merge(PhaseCost(1.0, 1.0, 1.0, 1.0, 1.0))
    assert (a.seconds, a.flops, a.seq_flops, a.words, a.messages) == (
        2.0, 3.0, 4.0, 5.0, 6.0,
    )
