"""Metrics, breakdown grouping, and ASCII reporting."""

import pytest

from repro.analysis.breakdown import DISPLAY_GROUPS, group_breakdown
from repro.analysis.metrics import (
    compression_ratio,
    relative_size,
    tucker_storage,
)
from repro.analysis.reporting import (
    format_breakdown,
    format_series,
    format_table,
)


class TestMetrics:
    def test_tucker_storage(self):
        assert tucker_storage((10, 10), (2, 3)) == 6 + 20 + 30

    def test_compression_ratio(self):
        assert compression_ratio((10, 10), (2, 3)) == pytest.approx(100 / 56)

    def test_relative_size_inverse(self):
        assert relative_size((10, 10), (2, 3)) == pytest.approx(56 / 100)

    def test_order_mismatch(self):
        with pytest.raises(ValueError):
            tucker_storage((10, 10), (2,))


class TestGroupBreakdown:
    def test_grouping(self):
        raw = {
            "ttm": 1.0,
            "ttm_comm": 0.5,
            "gram": 2.0,
            "evd": 3.0,
            "qrcp": 0.25,
        }
        out = group_breakdown(raw)
        assert out["TTM"] == pytest.approx(1.5)
        assert out["Gram"] == pytest.approx(2.0)
        assert out["EVD"] == pytest.approx(3.0)
        assert out["QRCP"] == pytest.approx(0.25)

    def test_unknown_phase_goes_to_other(self):
        out = group_breakdown({"mystery": 1.0})
        assert out == {"Other": 1.0}

    def test_total_preserved(self):
        raw = {"ttm": 1.0, "subspace": 2.0, "core_comm": 0.5, "zzz": 0.1}
        out = group_breakdown(raw)
        assert sum(out.values()) == pytest.approx(sum(raw.values()))

    def test_zero_groups_dropped(self):
        out = group_breakdown({"ttm": 1.0})
        assert "EVD" not in out

    def test_groups_cover_known_phases(self):
        known = {p for ps in DISPLAY_GROUPS.values() for p in ps}
        assert "redistribute_comm" in known


class TestFormatting:
    def test_table_alignment(self):
        s = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = s.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert "10" in lines[3]

    def test_table_title(self):
        s = format_table(["x"], [[1]], title="T1")
        assert s.splitlines()[0] == "T1"

    def test_series(self):
        s = format_series(
            "P", [1, 2], {"sthosvd": [4.0, 2.0], "hosi": [1.0, 0.5]}
        )
        assert "sthosvd" in s and "hosi" in s
        assert len(s.splitlines()) == 4

    def test_breakdown_table(self):
        s = format_breakdown(
            ["cfg1", "cfg2"],
            [{"TTM": 1.0}, {"TTM": 0.5, "EVD": 2.0}],
        )
        assert "total" in s
        assert "EVD" in s

    def test_empty_rows(self):
        s = format_table(["a"], [])
        assert len(s.splitlines()) == 2
