"""Property-based tests of the library's central invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.core_analysis import (
    leading_subtensor_energies,
    solve_rank_truncation,
)
from repro.core.rank_adaptive import rank_adaptive_hooi
from repro.core.sthosvd import sthosvd
from repro.core.tucker import TuckerTensor
from repro.tensor.dense import tensor_norm
from repro.tensor.ops import multi_ttm
from repro.tensor.random import random_orthonormal, tucker_plus_noise

shapes3 = st.tuples(
    st.integers(4, 10), st.integers(4, 10), st.integers(4, 10)
)


@settings(max_examples=15, deadline=None)
@given(shape=shapes3, seed=st.integers(0, 10**6))
def test_error_identity_holds_for_any_orthonormal_projection(shape, seed):
    """||X - X^||^2 = ||X||^2 - ||G||^2 for any orthonormal factors."""
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(shape)
    ranks = tuple(max(1, n // 2) for n in shape)
    factors = [
        random_orthonormal(n, r, seed=rng) for n, r in zip(shape, ranks)
    ]
    core = multi_ttm(x, factors, transpose=True)
    tt = TuckerTensor(core=core, factors=factors)
    lhs = tensor_norm(x - tt.reconstruct()) ** 2
    rhs = tensor_norm(x) ** 2 - tensor_norm(core) ** 2
    assert lhs == pytest.approx(rhs, rel=1e-8, abs=1e-8)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    eps=st.sampled_from([0.5, 0.2, 0.05]),
)
def test_sthosvd_error_guarantee_property(seed, eps):
    rng = np.random.default_rng(seed)
    shape = tuple(int(rng.integers(6, 12)) for _ in range(3))
    ranks = tuple(max(1, n // 3) for n in shape)
    x = tucker_plus_noise(shape, ranks, noise=0.1, seed=rng)
    tucker, _ = sthosvd(x, eps=eps)
    assert tucker.relative_error(x) <= eps * (1 + 1e-9)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_rank_adaptive_honours_budget_property(seed):
    rng = np.random.default_rng(seed)
    shape = tuple(int(rng.integers(8, 14)) for _ in range(3))
    ranks = tuple(max(1, n // 4) for n in shape)
    x = tucker_plus_noise(shape, ranks, noise=0.01, seed=rng)
    eps = 0.05
    tucker, stats = rank_adaptive_hooi(
        x, eps, tuple(r + 1 for r in ranks)
    )
    if stats.converged:
        assert tucker.relative_error(x) <= eps * (1 + 1e-6)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_truncation_solver_feasible_and_no_better_than_full(seed):
    rng = np.random.default_rng(seed)
    core = rng.standard_normal((4, 3, 5))
    total = float(np.linalg.norm(core) ** 2)
    frac = float(rng.uniform(0.3, 0.999))
    target = frac * total
    shape = tuple(int(rng.integers(10, 50)) for _ in range(3))
    ranks = solve_rank_truncation(core, target, shape)
    assert ranks is not None
    energies = leading_subtensor_energies(core)
    assert energies[tuple(r - 1 for r in ranks)] >= target * (1 - 1e-9)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10**6))
def test_multi_ttm_agrees_with_kron_unfolding(seed):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((4, 5, 3))
    mats = [rng.standard_normal((2, n)) for n in x.shape]
    from repro.tensor.dense import unfold

    y = multi_ttm(x, mats)
    kron = np.kron(mats[2], mats[1])
    np.testing.assert_allclose(
        unfold(y, 0), mats[0] @ unfold(x, 0) @ kron.T, atol=1e-9
    )


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 10**6), p_exp=st.integers(0, 5))
def test_simulated_time_positive_and_monotone_with_work(seed, p_exp):
    """More iterations never cost less simulated time."""
    from repro.core.hooi import variant_options
    from repro.distributed.arrays import SymbolicArray
    from repro.distributed.hooi import dist_hooi

    p = 2**p_exp
    x = SymbolicArray((32, 32, 32), np.float32)
    from repro.vmpi.grid import suggested_grids

    grid = suggested_grids(p, 3)[0]
    _, s1 = dist_hooi(
        x, (4, 4, 4), grid, options=variant_options("hosi-dt", max_iters=1)
    )
    _, s2 = dist_hooi(
        x, (4, 4, 4), grid, options=variant_options("hosi-dt", max_iters=2)
    )
    assert 0 < s1.simulated_seconds < s2.simulated_seconds
