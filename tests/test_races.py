"""Tier-2 happens-before race sanitizer (``race_detect=True``).

Detector-logic unit tests (vector clocks, the edge sources, the
SPMD221–223 verdicts) plus the end-to-end contract: a seeded
hosted-rank race fires deterministically on both transports and goes
silent once the accesses are ordered through the message layer, and a
clean run with detection on is bit-identical to detection off.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.analysis.verify.races import (
    RaceDetector,
    RaceError,
    VectorClock,
    get_detector,
    reset_detector,
)
from repro.vmpi.mp_comm import CommConfig, RankFailureError, run_spmd


def in_thread(fn):
    """Run ``fn`` on a fresh thread (its own tid/clock); re-raise any
    exception in the caller, return ``fn``'s result otherwise."""
    box: list[object] = []
    err: list[BaseException] = []

    def runner():
        try:
            box.append(fn())
        except BaseException as exc:  # noqa: BLE001 - test harness
            err.append(exc)

    t = threading.Thread(target=runner)
    t.start()
    t.join()
    if err:
        raise err[0]
    return box[0] if box else None


# ---------------------------------------------------------------------------
# vector clocks
# ---------------------------------------------------------------------------


class TestVectorClock:
    def test_tick_and_get(self):
        c = VectorClock()
        assert c.get(1) == 0
        assert c.tick(1) == 1
        assert c.tick(1) == 2
        assert c.get(1) == 2

    def test_merge_is_pointwise_max(self):
        a = VectorClock({1: 3, 2: 1})
        b = VectorClock({2: 5, 3: 2})
        a.merge(b)
        assert a.clocks == {1: 3, 2: 5, 3: 2}

    def test_copy_is_independent(self):
        a = VectorClock({1: 1})
        b = a.copy()
        b.tick(1)
        assert a.get(1) == 1
        assert b.get(1) == 2


# ---------------------------------------------------------------------------
# detector verdicts and edge sources
# ---------------------------------------------------------------------------


class TestDetectorVerdicts:
    def test_unordered_write_write_is_spmd221(self):
        det = RaceDetector()
        det.on_access("loc", "w")
        with pytest.raises(RaceError) as ei:
            in_thread(lambda: det.on_access("loc", "w"))
        assert ei.value.rule_id == "SPMD221"
        assert "SPMD221" in str(ei.value)
        # both conflicting stacks are in the message.
        assert str(ei.value).count("[") >= 2
        assert det.races

    def test_unordered_read_after_write_is_spmd222(self):
        det = RaceDetector()
        det.on_access("loc", "w")
        with pytest.raises(RaceError) as ei:
            in_thread(lambda: det.on_access("loc", "r"))
        assert ei.value.rule_id == "SPMD222"

    def test_unordered_write_after_read_is_spmd222(self):
        det = RaceDetector()
        det.on_access("loc", "r")
        with pytest.raises(RaceError) as ei:
            in_thread(lambda: det.on_access("loc", "w"))
        assert ei.value.rule_id == "SPMD222"

    def test_same_thread_accesses_never_race(self):
        det = RaceDetector()
        det.on_access("loc", "w")
        det.on_access("loc", "r")
        det.on_access("loc", "w")
        assert det.races == []

    def test_reads_do_not_race_with_reads(self):
        det = RaceDetector()
        det.on_access("loc", "r")
        in_thread(lambda: det.on_access("loc", "r"))
        assert det.races == []

    def test_channel_edge_orders_accesses(self):
        det = RaceDetector()
        det.on_access("loc", "w")
        det.channel_send((0, 1))

        def consumer():
            det.channel_recv((0, 1))
            det.on_access("loc", "w")

        in_thread(consumer)
        assert det.races == []

    def test_traced_body_edge_via_pop_and_merge(self):
        """The arrival-funnel pattern: a pump thread pops the snapshot
        without merging; the consuming thread merges it later."""
        det = RaceDetector()
        det.on_access("loc", "w")
        det.channel_send((0, 1))
        snap = in_thread(lambda: det.channel_pop((0, 1)))  # pump thread
        assert snap is not None

        def consumer():
            det.merge_clock(snap)
            det.on_access("loc", "w")

        in_thread(consumer)
        assert det.races == []

    def test_pump_thread_pop_does_not_order_pump_itself(self):
        """channel_pop deliberately does NOT merge — the pump thread
        stays unordered against the sender."""
        det = RaceDetector()
        det.on_access("loc", "w")
        det.channel_send((0, 1))

        def pump():
            det.channel_pop((0, 1))
            det.on_access("loc", "w")

        with pytest.raises(RaceError):
            in_thread(pump)

    def test_lock_edge_orders_accesses(self):
        det = RaceDetector()
        det.on_access("loc", "w")
        det.lock_release("L")

        def other():
            det.lock_acquire("L")
            det.on_access("loc", "w")

        in_thread(other)
        assert det.races == []

    def test_fork_join_orders_accesses(self):
        det = RaceDetector()
        det.on_access("loc", "w")
        fp = det.fork_point()

        def worker():
            det.merge_clock(fp)  # join on task entry
            det.on_access("loc", "w")
            return det.fork_point()  # completion token

        token = in_thread(worker)
        det.join_point(token)
        det.on_access("loc", "w")
        assert det.races == []

    def test_transport_occupancy_spmd223(self):
        det = RaceDetector()
        det.enter_transport(42)
        with pytest.raises(RaceError) as ei:
            in_thread(lambda: det.enter_transport(42))
        assert ei.value.rule_id == "SPMD223"
        det.exit_transport(42)

    def test_transport_reentrancy_same_thread_ok(self):
        det = RaceDetector()
        det.enter_transport(42)
        det.enter_transport(42)  # collectives nest sends
        det.exit_transport(42)
        # still occupied by this thread at depth 1; a second thread
        # must still trip the guard.
        with pytest.raises(RaceError):
            in_thread(lambda: det.enter_transport(42))
        det.exit_transport(42)
        # fully exited: another thread may now enter.
        in_thread(lambda: det.enter_transport(42))

    def test_global_detector_reset_isolation(self):
        a = get_detector()
        assert get_detector() is a
        b = reset_detector()
        assert b is not a
        assert get_detector() is b


# ---------------------------------------------------------------------------
# end-to-end: seeded hosted-rank race, both transports
# ---------------------------------------------------------------------------


def _prog_hosted_shared(comm, fixed):
    """Two logical ranks hosted as threads in one process touch the
    same (annotated) shared object between two barriers.

    ``fixed=False`` seeds the race: the writes are concurrent — no
    message orders them — so the vector-clock detector must flag
    SPMD221 *deterministically*, whichever thread the scheduler runs
    first.  ``fixed=True`` orders them through the message layer
    (rank 0 writes, sends; rank 1 receives, writes) and the same
    program must run silently.
    """
    comm.barrier()
    if fixed:
        if comm.rank == 0:
            comm.annotate_write("shared-buf")
            comm.send(1, np.zeros(1), tag=7)
        else:
            comm.recv(0, tag=7)
            comm.annotate_write("shared-buf")
    else:
        comm.annotate_write("shared-buf")
    comm.barrier()
    return comm.rank


class TestHostedRankRace:
    def test_seeded_race_fires_deterministically(self, backend):
        with pytest.raises(RankFailureError) as ei:
            run_spmd(
                _prog_hosted_shared,
                2,
                False,
                host_map=[[0, 1]],
                config=CommConfig(race_detect=True, collective_timeout=15.0),
                transport=backend,
                timeout=60.0,
            )
        msg = str(ei.value)
        assert "SPMD221" in msg
        assert "shared-buf" in msg
        assert "no happens-before order" in msg
        # both conflicting sites survive the process boundary.
        assert "rank-0" in msg and "rank-1" in msg

    def test_ordered_accesses_are_silent(self, backend):
        outs = run_spmd(
            _prog_hosted_shared,
            2,
            True,
            host_map=[[0, 1]],
            config=CommConfig(race_detect=True, collective_timeout=15.0),
            transport=backend,
            timeout=60.0,
        )
        assert outs == [0, 1]

    def test_annotations_off_detector_is_free(self, backend):
        # same racy program without race_detect: annotations are
        # no-ops, the run completes.
        outs = run_spmd(
            _prog_hosted_shared,
            2,
            False,
            host_map=[[0, 1]],
            config=CommConfig(collective_timeout=15.0),
            transport=backend,
            timeout=60.0,
        )
        assert outs == [0, 1]


# ---------------------------------------------------------------------------
# end-to-end: clean runs are bit-identical with detection on
# ---------------------------------------------------------------------------


def _prog_numeric(comm, n):
    """A clean mixed collective/p2p workload whose result must not
    depend on whether the sanitizer is watching."""
    rng = np.random.default_rng(1000 + comm.rank)
    x = rng.standard_normal(n)
    total = comm.allreduce(x)
    rows = comm.allgather(x.reshape(1, -1))
    top = comm.bcast(total if comm.rank == 0 else None, root=0)
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    comm.send(right, x, tag=3)
    nbr = comm.recv(left, tag=3)
    comm.barrier()
    return total, rows, top, nbr


class TestBitIdentity:
    def test_overlap_worker_is_clean_under_detection(self, backend):
        """The overlap prefetch thread pumps the transport while the
        main thread computes — the fork/join edges and the
        same-thread-reentrancy rule must keep the one-in-flight
        contract (SPMD223) and the shm accesses race-free, and the
        result bit-identical to the non-overlapped detect-on run."""
        plain = run_spmd(
            _prog_numeric, 2, 256,
            config=CommConfig(race_detect=True, collective_timeout=15.0),
            transport=backend, timeout=60.0,
        )
        overlapped = run_spmd(
            _prog_numeric, 2, 256,
            config=CommConfig(
                race_detect=True, overlap=True, collective_timeout=15.0
            ),
            transport=backend, timeout=60.0,
        )
        for b, t in zip(plain, overlapped):
            for bb, tt in zip(b, t):
                np.testing.assert_array_equal(bb, tt)

    def test_detect_on_matches_detect_off(self, backend):
        base = run_spmd(
            _prog_numeric, 2, 64,
            config=CommConfig(collective_timeout=15.0),
            transport=backend, timeout=60.0,
        )
        traced = run_spmd(
            _prog_numeric, 2, 64,
            config=CommConfig(race_detect=True, collective_timeout=15.0),
            transport=backend, timeout=60.0,
        )
        for b, t in zip(base, traced):
            for bb, tt in zip(b, t):
                np.testing.assert_array_equal(bb, tt)
