"""Smoke tests: every shipped example runs end to end.

The heavy examples are monkeypatched down to toy sizes so this stays
fast; what is being tested is that the example code paths exercise the
public API without raising.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _run(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = _run("quickstart.py", capsys)
    assert "OK: tolerance met." in out


def test_parameter_driver(capsys):
    out = _run("parameter_driver.py", capsys)
    assert "repro-sthosvd" in out
    assert "Converged: True" in out


def test_dimension_tree_tour(capsys):
    out = _run("dimension_tree_tour.py", capsys)
    assert "{1,2,3,4,5,6}" in out
    assert "caterpillar" in out


def test_trace_timeline(capsys):
    out = _run("trace_timeline.py", capsys)
    assert "phase" in out and "#" in out


def test_process_parallel(capsys):
    out = _run("process_parallel.py", capsys)
    assert "process-parallel STHOSVD" in out


def test_artifact_workflow(capsys):
    out = _run("artifact_workflow.py", capsys)
    assert "step 3: collected figure" in out
    assert "hosi-dt" in out


@pytest.mark.slow
def test_compress_simulation(capsys):
    out = _run("compress_simulation.py", capsys)
    assert "decompressed slab" in out


@pytest.mark.slow
def test_scaling_study(capsys):
    out = _run("scaling_study.py", capsys)
    assert "faster than" in out


@pytest.mark.slow
def test_variant_comparison(capsys):
    out = _run("variant_comparison.py", capsys)
    assert "hosi-dt" in out
