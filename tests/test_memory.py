"""Memory accounting and single-node feasibility analysis."""

import numpy as np
import pytest

from repro.analysis.memory import (
    max_cubic_dim,
    required_nodes,
    tensor_fits,
)
from repro.distributed.sthosvd import dist_sthosvd
from repro.distributed.arrays import SymbolicArray
from repro.vmpi.cost import CostLedger
from repro.vmpi.machine import MachineModel, perlmutter_like


class TestLedgerMemory:
    def test_peak_tracked(self):
        led = CostLedger(MachineModel(), 4)
        led.note_memory(100.0)
        led.note_memory(50.0)
        assert led.peak_words == 100.0

    def test_feasibility(self):
        m = MachineModel(node_mem_words=1000, cores_per_node=4)
        led = CostLedger(m, 4)
        led.note_memory(200.0)
        assert led.memory_feasible()
        led.note_memory(300.0)
        assert not led.memory_feasible()

    def test_float32_doubles_budget(self):
        m = MachineModel(node_mem_words=1000, cores_per_node=4)
        led = CostLedger(m, 4)
        led.note_memory(400.0)
        assert not led.memory_feasible(dtype_bytes=8)
        assert led.memory_feasible(dtype_bytes=4)


class TestKernelMemoryNotes:
    def test_sthosvd_records_peak(self):
        x = SymbolicArray((64, 64, 64), np.float32)
        _, stats = dist_sthosvd(x, (1, 2, 2), ranks=(4, 4, 4))
        # Peak must at least cover the input block.
        assert stats.ledger.peak_words >= 64 * 64 * 64 / 4

    def test_peak_decreases_with_p(self):
        peaks = {}
        for dims in [(1, 1, 1), (1, 4, 4)]:
            x = SymbolicArray((64, 64, 64), np.float32)
            _, stats = dist_sthosvd(x, dims, ranks=(4, 4, 4))
            peaks[dims] = stats.ledger.peak_words
        assert peaks[(1, 4, 4)] < peaks[(1, 1, 1)]


class TestFeasibility:
    def test_paper_3way_choice_fits_one_node(self):
        """The paper's 3750^3 float32 pick fits on one 512 GB node."""
        assert tensor_fits((3750, 3750, 3750), dtype_bytes=4)

    def test_much_larger_3way_does_not(self):
        assert not tensor_fits((5500, 5500, 5500), dtype_bytes=4)

    def test_paper_4way_choice_fits_one_node(self):
        """560^4 float32 is right at the single-node limit (the paper
        maximized it)."""
        assert tensor_fits((560, 560, 560, 560), dtype_bytes=4)
        assert not tensor_fits((640, 640, 640, 640), dtype_bytes=4)

    def test_max_cubic_dim_brackets_paper_choices(self):
        n3 = max_cubic_dim(3, dtype_bytes=4)
        n4 = max_cubic_dim(4, dtype_bytes=4)
        # Paper: 3750 and 560 under its (unstated) workspace budget.
        assert 3750 <= n3 <= 5200
        assert 560 <= n4 <= 650

    def test_max_dim_consistent_with_fits(self):
        n = max_cubic_dim(3, dtype_bytes=4)
        assert tensor_fits((n, n, n), dtype_bytes=4)

    def test_more_ranks_more_memory(self):
        small = max_cubic_dim(3, p=1)
        big = max_cubic_dim(3, p=1024)
        assert big > small

    def test_required_nodes(self):
        m = perlmutter_like()
        # SP dataset: 4.4 TB double precision needs multiple 512 GB
        # nodes (the paper ran it on 16).
        nodes = required_nodes(
            (500, 500, 500, 11, 400), dtype_bytes=8, machine=m
        )
        assert 9 <= nodes <= 16

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            max_cubic_dim(0)
