"""Tier-1 static lint: rule positives, negatives, and the CLI."""

from pathlib import Path

from repro.analysis.verify import lint_paths, lint_source
from repro.analysis.verify.cli import lint_main
from repro.analysis.verify.rules import (
    RULES,
    Baseline,
    Finding,
    filter_findings,
)


def ids(findings):
    return [f.rule_id for f in findings]


class TestRuleRegistry:
    def test_ids_unique_and_well_formed(self):
        assert len(RULES) == 21
        for rid, r in RULES.items():
            assert rid == r.id
            assert rid.startswith("SPMD")
            assert r.tier in ("static", "dynamic")
            assert r.severity in ("error", "warning")

    def test_static_dynamic_split(self):
        static = {r.id for r in RULES.values() if r.tier == "static"}
        assert static == {f"SPMD10{i}" for i in range(1, 7)} | {
            f"SPMD12{i}" for i in range(1, 7)
        }


class TestSPMD101:
    def test_collective_in_rank_branch(self):
        src = """
import numpy as np
def prog(comm):
    if comm.rank == 0:
        comm.allreduce(np.ones(3))
"""
        assert ids(lint_source(src)) == ["SPMD101"]

    def test_taint_through_assignment(self):
        src = """
def prog(comm):
    me = comm.rank
    if me > 0:
        comm.barrier()
"""
        assert ids(lint_source(src)) == ["SPMD101"]

    def test_taint_through_grid_coords(self):
        src = """
def prog(comm, grid):
    coords = grid.coords(comm.rank)
    if coords[0] == 0:
        comm.barrier()
"""
        assert ids(lint_source(src)) == ["SPMD101"]

    def test_rank_dependent_early_return_before_collective(self):
        src = """
import numpy as np
def prog(comm):
    if comm.rank != 0:
        return None
    comm.allreduce(np.ones(2))
"""
        assert ids(lint_source(src)) == ["SPMD101"]

    def test_payload_prep_pattern_is_clean(self):
        # The sanctioned idiom: rank-dependent payload, collective
        # outside the branch (mp_hooi's checkpoint broadcast).
        src = """
import numpy as np
def prog(comm):
    payload = np.ones(3) if comm.rank == 0 else None
    payload = comm.bcast(payload, root=0)
    if comm.rank == 0:
        extra = payload * 2
    return payload
"""
        assert lint_source(src) == []

    def test_early_return_after_last_collective_is_clean(self):
        # mp_sthosvd's tail: non-roots return None after the final
        # collective — nothing later is stranded.
        src = """
import numpy as np
def prog(comm):
    out = comm.gather(np.ones(2), root=0)
    if comm.rank != 0:
        return None
    return out
"""
        assert lint_source(src) == []

    def test_coords_branch_without_collective_is_clean(self):
        src = """
def prog(comm, grid):
    coords = grid.coords(comm.rank)
    if coords[1] == 0:
        local = 1.0
    else:
        local = 0.0
    return local
"""
        assert lint_source(src) == []

    def test_pragma_suppression(self):
        src = """
import numpy as np
def prog(comm):
    if comm.rank == 0:
        comm.allreduce(np.ones(3))  # spmdlint: ignore[SPMD101]
"""
        assert lint_source(src) == []

    def test_bare_pragma_suppresses_everything(self):
        src = """
import numpy as np
def prog(comm):
    if comm.rank == 0:
        comm.allreduce(np.ones(3))  # spmdlint: ignore
"""
        assert lint_source(src) == []


class TestSPMD102:
    def test_diverging_branch_schedules(self):
        src = """
import numpy as np
def prog(comm):
    if comm.rank == 0:
        comm.bcast(np.ones(3), root=0)
    else:
        comm.allreduce(np.ones(3))
"""
        assert "SPMD102" in ids(lint_source(src))

    def test_differing_roots_across_branches(self):
        src = """
import numpy as np
def prog(comm):
    if comm.rank == 0:
        comm.bcast(np.ones(3), root=0)
    else:
        comm.bcast(None, root=1)
"""
        assert "SPMD102" in ids(lint_source(src))

    def test_rank_dependent_root_argument(self):
        src = """
def prog(comm):
    comm.bcast(None, root=comm.rank)
"""
        assert ids(lint_source(src)) == ["SPMD102"]

    def test_identical_branch_schedules_are_not_102(self):
        # Same kind+root on both sides: schedules match (SPMD101 is
        # also silent — every rank still reaches one bcast).
        src = """
import numpy as np
def prog(comm):
    if comm.rank == 0:
        out = comm.bcast(np.ones(3), root=0)
    else:
        out = comm.bcast(None, root=0)
    return out
"""
        assert lint_source(src) == []


class TestSPMD103:
    def test_send_without_recv(self):
        src = """
import numpy as np
def prog(comm):
    comm.send(1, np.ones(2), tag=3)
"""
        assert "SPMD103" in ids(lint_source(src))

    def test_recv_without_send(self):
        src = """
def prog(comm):
    return comm.recv(0, tag=1)
"""
        assert "SPMD103" in ids(lint_source(src))

    def test_disjoint_literal_tags(self):
        src = """
import numpy as np
def prog(comm):
    if comm.rank == 0:
        comm.send(1, np.ones(2), tag=1)
    else:
        got = comm.recv(0, tag=2)
"""
        assert "SPMD103" in ids(lint_source(src))

    def test_matched_pair_is_clean(self):
        src = """
import numpy as np
def prog(comm):
    if comm.rank == 0:
        comm.send(1, np.ones(2), tag=1)
    else:
        got = comm.recv(0, tag=1)
"""
        assert "SPMD103" not in ids(lint_source(src))


class TestSPMD104:
    def test_unseeded_default_rng(self):
        src = """
import numpy as np
def prog(comm):
    rng = np.random.default_rng()
    return rng.normal()
"""
        assert ids(lint_source(src)) == ["SPMD104"]

    def test_global_rng_call(self):
        src = """
import numpy as np
def prog(comm):
    return np.random.randn(3)
"""
        assert ids(lint_source(src)) == ["SPMD104"]

    def test_seeded_rng_is_clean(self):
        src = """
import numpy as np
def prog(comm):
    rng = np.random.default_rng(1234)
    return rng.normal()
"""
        assert lint_source(src) == []

    def test_outside_spmd_region_is_clean(self):
        src = """
import numpy as np
def helper():
    return np.random.default_rng()
"""
        assert lint_source(src) == []


class TestSPMD105:
    def test_returned_handle(self):
        src = """
from multiprocessing.shared_memory import SharedMemory
def make(n):
    shm = SharedMemory(create=True, size=n)
    return shm
"""
        assert ids(lint_source(src)) == ["SPMD105"]

    def test_handle_stored_on_attribute(self):
        src = """
from multiprocessing import shared_memory
class Pool:
    def grab(self, n):
        shm = shared_memory.SharedMemory(create=True, size=n)
        self.segs[shm.name] = shm
"""
        assert ids(lint_source(src)) == ["SPMD105"]

    def test_closed_handle_is_clean(self):
        src = """
from multiprocessing.shared_memory import SharedMemory
def roundtrip(n):
    shm = SharedMemory(create=True, size=n)
    data = bytes(shm.buf[:4])
    shm.close()
    return data
"""
        assert lint_source(src) == []


class TestSPMD106:
    def test_drifted_phase_keyword(self):
        src = """
def kernel(comm, block):
    comm.allreduce(block, phase="gramm")
"""
        assert "SPMD106" in ids(lint_source(src))

    def test_drifted_phase_default(self):
        src = """
def kernel(comm, block, phase="ttm_typo"):
    comm.allreduce(block)
"""
        assert "SPMD106" in ids(lint_source(src))

    def test_drifted_phase_attribute(self):
        src = """
def prog(comm):
    comm.phase = "lsv"
"""
        assert "SPMD106" in ids(lint_source(src))

    def test_drifted_ledger_charge(self):
        src = """
def price(ledger):
    ledger.comm("subspace_com", 10.0, 2.0)
"""
        assert "SPMD106" in ids(lint_source(src))

    def test_known_phases_and_untagged_are_clean(self):
        src = """
def kernel(comm, block, phase="ttm"):
    comm.phase = "llsv"
    comm.phase = ""
    comm.allreduce(block, phase="gram")

def price(ledger):
    ledger.comm("gram_comm", 10.0)
    ledger.compute("evd", 1.0, 2.0)
"""
        assert "SPMD106" not in ids(lint_source(src))

    def test_non_literal_tags_are_skipped(self):
        src = """
def kernel(comm, block, phase):
    comm.allreduce(block, phase=phase)
    ledger.comm(f"{phase}_comm", 4.0)
"""
        assert "SPMD106" not in ids(lint_source(src))

    def test_vocabulary_matches_trace_module(self):
        from repro.vmpi.trace import PHASES

        srcs = [f'def f(comm, x):\n    comm.phase = "{p}"\n' for p in PHASES]
        for src in srcs:
            assert "SPMD106" not in ids(lint_source(src))


class TestFilteringAndBaseline:
    SRC = """
import numpy as np
def prog(comm):
    if comm.rank == 0:
        comm.allreduce(np.ones(3))
    rng = np.random.default_rng()
"""

    def test_select(self):
        found = lint_source(self.SRC)
        only = filter_findings(found, select={"SPMD104"})
        assert ids(only) == ["SPMD104"]

    def test_ignore(self):
        found = lint_source(self.SRC)
        rest = filter_findings(found, ignore={"SPMD104"})
        assert "SPMD104" not in ids(rest)

    def test_baseline_roundtrip(self, tmp_path):
        found = lint_source(self.SRC, "prog.py")
        bl = Baseline.from_findings(found)
        path = tmp_path / "baseline.json"
        bl.save(path)
        loaded = Baseline.load(path)
        assert filter_findings(found, baseline=loaded) == []

    def test_fingerprint_is_line_number_insensitive(self):
        a = Finding("SPMD101", "f.py", 10, "msg", "comm.barrier()")
        b = Finding("SPMD101", "f.py", 99, "other msg", "comm.barrier()")
        assert a.fingerprint() == b.fingerprint()


class TestCLI:
    def test_clean_tree_exits_zero(self, capsys):
        # The acceptance gate: the fixed tree has zero findings.
        rc = lint_main(["src/repro/distributed", "src/repro/vmpi"])
        assert rc == 0

    def test_full_package_is_clean(self):
        assert lint_paths(["src/repro"]) == []

    def test_findings_exit_one(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "def prog(comm):\n"
            "    if comm.rank == 0:\n"
            "        comm.barrier()\n"
        )
        rc = lint_main([str(bad)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "SPMD101" in out
        assert f"{bad}:3" in out

    def test_warnings_only_strict_flag(self, tmp_path):
        warn = tmp_path / "warn.py"
        warn.write_text(
            "import numpy as np\n"
            "def prog(comm):\n"
            "    return np.random.default_rng()\n"
        )
        assert lint_main([str(warn)]) == 0
        assert lint_main([str(warn), "--strict"]) == 1

    def test_missing_path_exits_two(self, capsys):
        assert lint_main(["definitely/not/here.py"]) == 2

    def test_unknown_rule_id_exits_two(self, capsys):
        assert lint_main(["src/repro/vmpi", "--select", "SPMD999"]) == 2

    def test_write_and_apply_baseline(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "def prog(comm):\n"
            "    if comm.rank == 0:\n"
            "        comm.barrier()\n"
        )
        bl = tmp_path / "baseline.json"
        assert lint_main([str(bad), "--write-baseline", str(bl)]) == 0
        assert lint_main([str(bad), "--baseline", str(bl)]) == 0

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rid in RULES:
            assert rid in out

    def test_umbrella_dispatch(self, capsys):
        from repro.cli import main

        assert main(["lint", "--list-rules"]) == 0
