"""Distributed STHOSVD."""

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.core.sthosvd import sthosvd
from repro.distributed.arrays import SymbolicArray
from repro.distributed.sthosvd import dist_sthosvd


class TestConcrete:
    @pytest.mark.parametrize(
        "dims", [(1, 1, 1, 1), (2, 2, 1, 1), (1, 2, 2, 2)]
    )
    def test_matches_sequential(self, lowrank4, dims):
        seq, _ = sthosvd(lowrank4, ranks=(3, 4, 2, 3))
        dist, _ = dist_sthosvd(lowrank4, dims, ranks=(3, 4, 2, 3))
        assert dist.ranks == seq.ranks
        assert dist.relative_error(lowrank4) == pytest.approx(
            seq.relative_error(lowrank4), rel=1e-8
        )

    def test_error_specified(self, lowrank4):
        tucker, stats = dist_sthosvd(lowrank4, (1, 2, 1, 2), eps=0.01)
        assert tucker.ranks == (3, 4, 2, 3)
        assert tucker.relative_error(lowrank4) <= 0.01

    def test_breakdown_phases(self, lowrank4):
        _, stats = dist_sthosvd(lowrank4, (1, 2, 1, 2), ranks=(3, 4, 2, 3))
        assert {"gram", "evd", "ttm"} <= set(stats.breakdown)
        assert stats.simulated_seconds > 0
        assert stats.grid_dims == (1, 2, 1, 2)

    def test_mode_order(self, lowrank4):
        t1, _ = dist_sthosvd(
            lowrank4, (1, 1, 1, 1), ranks=(3, 4, 2, 3),
            mode_order=(3, 2, 1, 0),
        )
        assert t1.ranks == (3, 4, 2, 3)


class TestSymbolic:
    def test_costs_only(self):
        x = SymbolicArray((64, 64, 64), np.float32)
        tucker, stats = dist_sthosvd(x, (1, 4, 4), ranks=(4, 4, 4))
        assert tucker is None
        assert stats.ranks == (4, 4, 4)
        assert stats.simulated_seconds > 0

    def test_requires_ranks(self):
        x = SymbolicArray((16, 16, 16))
        with pytest.raises(ConfigError):
            dist_sthosvd(x, (1, 1, 1), eps=0.1)

    def test_evd_bottleneck_at_scale(self):
        """Large single dimension + many cores: the sequential EVD
        dominates (the paper's 3-way STHOSVD plateau in Fig. 2)."""
        x = SymbolicArray((2048, 2048, 2048), np.float32)
        _, stats = dist_sthosvd(x, (1, 64, 64), ranks=(16, 16, 16))
        assert stats.breakdown["evd"] > 0.5 * stats.simulated_seconds

    def test_gram_dominates_at_small_p(self):
        x = SymbolicArray((2048, 2048, 2048), np.float32)
        _, stats = dist_sthosvd(x, (1, 1, 1), ranks=(16, 16, 16))
        assert stats.breakdown["gram"] > stats.breakdown["evd"]

    def test_strong_scaling_monotone_until_plateau(self):
        x = SymbolicArray((512, 512, 512), np.float32)
        times = []
        for dims in [(1, 1, 1), (1, 2, 2), (1, 4, 4), (1, 8, 8)]:
            _, stats = dist_sthosvd(x, dims, ranks=(8, 8, 8))
            times.append(stats.simulated_seconds)
        assert all(t2 <= t1 * 1.01 for t1, t2 in zip(times, times[1:]))


class TestValidation:
    def test_needs_spec(self, lowrank3):
        with pytest.raises(ConfigError):
            dist_sthosvd(lowrank3, (1, 1, 1))

    def test_grid_order(self, lowrank3):
        with pytest.raises(ConfigError):
            dist_sthosvd(lowrank3, (1, 1), ranks=(2, 2, 2))

    def test_bad_eps(self, lowrank3):
        with pytest.raises(ConfigError):
            dist_sthosvd(lowrank3, (1, 1, 1), eps=-0.5)

    def test_bad_mode_order(self, lowrank3):
        with pytest.raises(ConfigError):
            dist_sthosvd(
                lowrank3, (1, 1, 1), ranks=(2, 2, 2), mode_order=(0, 0, 1)
            )
