"""Raw tensor I/O."""

import numpy as np
import pytest

from repro.datasets.io import (
    load_raw,
    load_raw_slab,
    load_slices,
    save_raw,
    save_slices,
)


class TestRawRoundtrip:
    def test_roundtrip(self, tmp_path, small4):
        p = tmp_path / "x.raw"
        save_raw(small4, p)
        np.testing.assert_array_equal(load_raw(p), small4)

    def test_dtype_preserved(self, tmp_path):
        x = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
        p = tmp_path / "x.raw"
        save_raw(x, p)
        got = load_raw(p)
        assert got.dtype == np.float32
        np.testing.assert_array_equal(got, x)

    def test_fortran_order_on_disk(self, tmp_path):
        """First mode varies fastest on disk (TuckerMPI convention)."""
        x = np.arange(6, dtype=np.float64).reshape(2, 3)
        p = tmp_path / "x.raw"
        save_raw(x, p)
        flat = np.fromfile(p, dtype=np.float64)
        np.testing.assert_array_equal(flat, x.ravel(order="F"))

    def test_missing_sidecar(self, tmp_path):
        p = tmp_path / "x.raw"
        np.zeros(4).tofile(p)
        with pytest.raises(FileNotFoundError):
            load_raw(p)

    def test_size_mismatch(self, tmp_path, small3):
        p = tmp_path / "x.raw"
        save_raw(small3, p)
        # Truncate the payload behind the metadata's back.
        data = p.read_bytes()
        p.write_bytes(data[: len(data) // 2])
        with pytest.raises(ValueError):
            load_raw(p)


class TestSlabReads:
    def test_slab_matches_full(self, tmp_path, small4):
        p = tmp_path / "x.raw"
        save_raw(small4, p)
        slab = load_raw_slab(p, 1, 4)
        np.testing.assert_array_equal(slab, small4[..., 1:4])

    def test_full_range(self, tmp_path, small3):
        p = tmp_path / "x.raw"
        save_raw(small3, p)
        np.testing.assert_array_equal(
            load_raw_slab(p, 0, small3.shape[-1]), small3
        )

    def test_out_of_range(self, tmp_path, small3):
        p = tmp_path / "x.raw"
        save_raw(small3, p)
        with pytest.raises(ValueError):
            load_raw_slab(p, 0, small3.shape[-1] + 1)


class TestSliceDirectory:
    def test_roundtrip(self, tmp_path, small4):
        paths = save_slices(small4, tmp_path / "slices", slab=2)
        assert len(paths) == 3  # last mode extent 6, slab 2
        np.testing.assert_array_equal(
            load_slices(tmp_path / "slices"), small4
        )

    def test_uneven_slab(self, tmp_path, small3):
        save_slices(small3, tmp_path / "s", slab=3)  # extent 4 -> 3+1
        np.testing.assert_array_equal(
            load_slices(tmp_path / "s"), small3
        )

    def test_empty_directory(self, tmp_path):
        (tmp_path / "empty").mkdir()
        with pytest.raises(FileNotFoundError):
            load_slices(tmp_path / "empty")

    def test_bad_slab(self, tmp_path, small3):
        with pytest.raises(ValueError):
            save_slices(small3, tmp_path / "s", slab=0)

    def test_pipeline_compress_from_disk(self, tmp_path):
        """End to end: generate -> save slices -> reload -> compress."""
        from repro.core.sthosvd import sthosvd
        from repro.datasets import miranda_like

        x = miranda_like(24, seed=0).astype(np.float64)
        save_slices(x, tmp_path / "m", slab=8)
        y = load_slices(tmp_path / "m")
        tucker, _ = sthosvd(y, eps=0.1)
        assert tucker.relative_error(x) <= 0.1
