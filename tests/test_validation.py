"""Argument validation helpers."""

import pytest

from repro.tensor.validation import check_mode, check_ranks, check_shape


class TestCheckMode:
    def test_valid(self):
        assert check_mode(3, 0) == 0
        assert check_mode(3, 2) == 2

    def test_negative_wraps(self):
        assert check_mode(4, -1) == 3
        assert check_mode(4, -4) == 0

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_mode(3, 3)
        with pytest.raises(ValueError):
            check_mode(3, -4)

    def test_float_coerced(self):
        assert check_mode(3, 1.0) == 1


class TestCheckShape:
    def test_valid(self):
        assert check_shape([3, 4]) == (3, 4)

    def test_empty(self):
        with pytest.raises(ValueError):
            check_shape([])

    def test_nonpositive(self):
        with pytest.raises(ValueError):
            check_shape([3, 0])
        with pytest.raises(ValueError):
            check_shape([3, -1])


class TestCheckRanks:
    def test_valid(self):
        assert check_ranks((5, 6), (2, 3)) == (2, 3)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            check_ranks((5, 6), (2,))

    def test_exceeding(self):
        with pytest.raises(ValueError):
            check_ranks((5, 6), (6, 3))

    def test_exceeding_clipped_when_allowed(self):
        assert check_ranks((5, 6), (9, 3), allow_exceed=True) == (5, 3)

    def test_nonpositive_rank(self):
        with pytest.raises(ValueError):
            check_ranks((5, 6), (0, 3))
        with pytest.raises(ValueError):
            check_ranks((5, 6), (0, 3), allow_exceed=True)
