"""Dataset experiment protocol (Figs. 4-9 machinery)."""

import pytest

from repro.analysis.experiments import (
    rank_start_variants,
    run_dataset_experiment,
)
from repro.analysis.metrics import relative_size
from repro.datasets import miranda_like


class TestRankStartVariants:
    def test_three_kinds(self):
        starts = rank_start_variants((8, 8, 8), (100, 100, 100))
        assert [s.kind for s in starts] == ["perfect", "over", "under"]

    def test_over_is_25_percent_up(self):
        starts = {s.kind: s.ranks for s in rank_start_variants(
            (8, 8, 8), (100, 100, 100)
        )}
        assert starts["over"] == (10, 10, 10)
        assert starts["under"] == (6, 6, 6)

    def test_over_clipped_to_shape(self):
        starts = {s.kind: s.ranks for s in rank_start_variants(
            (8,), (9,)
        )}
        assert starts["over"] == (9,)

    def test_under_at_least_one(self):
        starts = {s.kind: s.ranks for s in rank_start_variants(
            (1, 1), (10, 10)
        )}
        assert starts["under"] == (1, 1)


@pytest.fixture(scope="module")
def miranda_exp():
    x = miranda_like(32, seed=0).astype("float64")
    return run_dataset_experiment(
        "miranda", x, cores=64, tolerances=(0.1, 0.01), seed=0
    ), x


class TestDatasetExperiment:
    def test_baselines_meet_eps(self, miranda_exp):
        exp, x = miranda_exp
        for eps, base in exp.baselines.items():
            assert base.error <= eps * (1 + 1e-6)
            assert base.seconds > 0

    def test_all_nine_runs_present(self, miranda_exp):
        exp, _ = miranda_exp
        assert len(exp.adaptive) == 2 * 3  # 2 tolerances x 3 starts
        for eps in (0.1, 0.01):
            for kind in ("perfect", "over", "under"):
                assert exp.adaptive_for(eps, kind) is not None

    def test_adaptive_meets_eps(self, miranda_exp):
        exp, _ = miranda_exp
        for run in exp.adaptive:
            assert run.stats.converged, (run.eps, run.start.kind)
            last_trunc = [
                r for r in run.history if r.truncated_error is not None
            ][-1]
            assert last_trunc.truncated_error <= run.eps * (1 + 1e-6)

    def test_time_to_threshold(self, miranda_exp):
        exp, _ = miranda_exp
        run = exp.adaptive_for(0.1, "over")
        t = run.time_to_threshold()
        assert t is not None and 0 < t <= run.stats.simulated_seconds

    def test_final_relative_size(self, miranda_exp):
        exp, x = miranda_exp
        run = exp.adaptive_for(0.1, "perfect")
        rs = run.final_relative_size(x.shape)
        assert rs is not None and 0 < rs < 1

    def test_high_compression_ra_competitive_size(self, miranda_exp):
        """At eps = 0.1 the RA final size is at least comparable to
        STHOSVD's (paper: often better)."""
        exp, x = miranda_exp
        base = exp.baselines[0.1]
        run = exp.adaptive_for(0.1, "perfect")
        rs = run.final_relative_size(x.shape)
        assert rs <= base.relative_size * 1.3

    def test_unknown_run_raises(self, miranda_exp):
        exp, _ = miranda_exp
        with pytest.raises(KeyError):
            exp.adaptive_for(0.5, "perfect")
