"""Artifact-style batch workflow (generate -> run -> collect)."""

import json

import pytest

from repro.artifact import (
    collect_scale_experiments,
    generate_scale_experiments,
    run_scale_experiments,
)
from repro.core.errors import ConfigError


@pytest.fixture
def exp_dir(tmp_path):
    return generate_scale_experiments(
        tmp_path / "exp",
        shape=(64, 64, 64),
        ranks=(4, 4, 4),
        proc_scale=(1, 4, 16),
        algorithms=("sthosvd", "hosi-dt"),
    )


class TestGenerate:
    def test_layout(self, exp_dir):
        assert (exp_dir / "manifest.json").exists()
        cfgs = sorted((exp_dir / "configs").glob("*.cfg"))
        assert len(cfgs) == 6  # 2 algos x 3 P values

    def test_manifest(self, exp_dir):
        manifest = json.loads((exp_dir / "manifest.json").read_text())
        assert manifest["kind"] == "strong_scaling"
        assert manifest["proc_scale"] == [1, 4, 16]
        assert len(manifest["points"]) == 6

    def test_configs_parse(self, exp_dir):
        from repro.config import ParameterFile

        for cfg in (exp_dir / "configs").glob("*.cfg"):
            params = ParameterFile.from_path(cfg)
            assert params.get_str("algorithm") in ("sthosvd", "hosi-dt")
            assert len(params.get_ints("global dims")) == 3

    def test_unknown_algorithm(self, tmp_path):
        with pytest.raises(ConfigError):
            generate_scale_experiments(
                tmp_path / "bad", algorithms=("magic",)
            )


class TestRunCollect:
    def test_run_writes_all_csvs(self, exp_dir):
        n = run_scale_experiments(exp_dir)
        assert n == 6
        assert len(list((exp_dir / "csv").glob("*.csv"))) == 6

    def test_collect_figure(self, exp_dir):
        run_scale_experiments(exp_dir)
        text = collect_scale_experiments(exp_dir)
        assert "strong scaling" in text
        assert "sthosvd" in text and "hosi-dt" in text
        assert (exp_dir / "figure.txt").exists()
        assert (exp_dir / "collected.csv").exists()

    def test_collect_tolerates_missing_points(self, exp_dir):
        run_scale_experiments(exp_dir)
        # Simulate one failed "job".
        victim = next((exp_dir / "csv").glob("*.csv"))
        victim.unlink()
        text = collect_scale_experiments(exp_dir)
        assert "missing points" in text

    def test_results_scale_down(self, exp_dir):
        run_scale_experiments(exp_dir)
        collect_scale_experiments(exp_dir)
        import csv as csvmod

        with (exp_dir / "collected.csv").open(newline="") as fh:
            rows = list(csvmod.DictReader(fh))
        hosi = {
            int(r["p"]): float(r["seconds"])
            for r in rows
            if r["algorithm"] == "hosi-dt"
        }
        assert hosi[16] < hosi[1]

    def test_rerun_idempotent(self, exp_dir):
        run_scale_experiments(exp_dir)
        a = collect_scale_experiments(exp_dir)
        run_scale_experiments(exp_dir)
        b = collect_scale_experiments(exp_dir)
        assert a == b
