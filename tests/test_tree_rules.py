"""Dimension-tree split-rule ablation plumbing."""

import numpy as np
import pytest

from repro.core.dimension_tree import (
    SPLIT_RULES,
    SequentialTreeEngine,
    contraction_schedule,
    hooi_iteration_dt,
    leaf_order,
    split_modes,
)
from repro.tensor.random import random_orthonormal, tucker_plus_noise


class TestSingleRule:
    def test_split(self):
        mu, eta = split_modes((0, 1, 2, 3), rule="single")
        assert eta == (0,)
        assert mu == (3, 2, 1)

    @pytest.mark.parametrize("d", [2, 3, 4, 5, 6])
    def test_leaf_order_preserved(self, d):
        assert leaf_order(d, rule="single") == list(range(d))

    @pytest.mark.parametrize("d", [3, 4, 5, 6])
    def test_more_ttms_than_half(self, d):
        n_single = len(contraction_schedule(d, rule="single"))
        n_half = len(contraction_schedule(d, rule="half"))
        assert n_single >= n_half

    def test_unknown_rule(self):
        with pytest.raises(ValueError):
            split_modes((0, 1, 2), rule="golden")
        assert set(SPLIT_RULES) == {"half", "single"}

    def test_numerics_identical_across_rules(self):
        """Tree shape changes cost, never the computed subspaces."""
        shape, ranks = (10, 9, 8, 7), (2, 3, 2, 2)
        x = tucker_plus_noise(shape, ranks, noise=1e-4, seed=0)
        rng = np.random.default_rng(1)
        init = [
            random_orthonormal(n, r, seed=rng)
            for n, r in zip(shape, ranks)
        ]
        cores = {}
        for rule in SPLIT_RULES:
            engine = SequentialTreeEngine(
                [u.copy() for u in init], ranks
            )
            hooi_iteration_dt(x, engine, rule=rule)
            cores[rule] = engine.core
        assert np.linalg.norm(cores["half"]) == pytest.approx(
            np.linalg.norm(cores["single"]), rel=1e-8
        )
