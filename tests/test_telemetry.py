"""Flight recorder, live telemetry, and causal postmortem timelines.

Certifies the always-on observability contract: the per-rank flight
ring is bounded and bit-identity-preserving, rings merge into one
causally-ordered global timeline regardless of wall-clock skew,
``build_postmortem`` names the diverging rank and collective for every
failure shape (crash, laggard, mismatch, early exit), the live
telemetry channel heartbeats and flags stalls before
``CollectiveTimeoutError`` fires, the JSONL export validates against
its schema, and a seeded deadlock and a seeded rank crash each produce
the *same* postmortem verdict on the shm and tcp wires.
"""

import threading
import time

import numpy as np
import pytest

from repro.observability.spans import Histogram, MetricsRegistry
from repro.observability.telemetry import (
    FlightRecorder,
    FlightRing,
    TelemetryMonitor,
    build_postmortem,
    format_event,
    merge_flight_rings,
    validate_telemetry_jsonl,
)
from repro.vmpi.faults import FaultPlan
from repro.vmpi.mp_comm import (
    CommConfig,
    ProcessComm,
    RankFailureError,
    run_spmd,
)

# Module-level SPMD programs (must be picklable).


def _prog_clean(comm: ProcessComm, arr: np.ndarray) -> np.ndarray:
    comm.phase = "ttm"
    comm.note_progress(iteration=1, total=2)
    out = comm.allreduce(arr * (comm.rank + 1))
    comm.note_event("checkpoint", {"mode": 1})
    comm.barrier()
    return out


def _prog_deadlock(comm: ProcessComm) -> str:
    """Rank 1 skips the second allreduce: ranks 0 and 2 hang at op #2."""
    comm.phase = "gram"
    comm.allreduce(np.ones(2))
    if comm.rank == 1:
        return "early"
    comm.allreduce(np.ones(2))
    return "late"


def _prog_crash_site(comm: ProcessComm) -> int:
    """barrier (#1), allreduce (#2), allreduce (#3) — the kill site."""
    comm.barrier()
    comm.allreduce(np.ones(3))
    comm.allreduce(np.ones(3))
    return comm.rank


def _prog_straggler(comm: ProcessComm) -> int:
    """Rank 0 naps between collectives; rank 1 stalls in op #2."""
    comm.phase = "ttm"
    comm.note_progress(iteration=1, total=2)
    comm.allreduce(np.ones(2))
    if comm.rank == 0:
        time.sleep(1.2)
    comm.note_progress(iteration=2, total=2)
    comm.allreduce(np.ones(2))
    return comm.rank


# Synthetic-ring helpers.


def _ev(seq, t, kind, op_id, phase="", detail=""):
    return (seq, t, kind, op_id, phase, detail)


def _ring(rank, events, *, wall_origin=0.0, clock=None, seq=None):
    return FlightRing(
        rank=rank,
        wall_origin=wall_origin,
        capacity=256,
        seq=len(events) if seq is None else seq,
        events=list(events),
        clock=clock,
    )


class TestFlightRecorder:
    def test_ring_is_bounded_and_counts_drops(self):
        fr = FlightRecorder(rank=3, capacity=8)
        for i in range(20):
            fr.record("post", i, "ttm", {"i": i})
        ring = fr.snapshot()
        assert fr.seq == 20
        assert len(ring.events) == 8
        assert ring.dropped == 12
        # The ring keeps the *latest* events; seq numbers survive wrap.
        assert [ev[0] for ev in ring.events] == list(range(13, 21))
        assert len(ring.tail(3)) == 3

    def test_capacity_floor(self):
        assert FlightRecorder(rank=0, capacity=1).capacity >= 8

    def test_open_collective_tracking(self):
        fr = FlightRecorder(rank=0)
        assert fr.open_collective() is None
        fr.record("collective_begin", 1, "gram", ("allreduce", 4))
        open_ev = fr.open_collective()
        assert open_ev is not None and open_ev[3] == 1
        fr.record("collective_end", 1, "gram", ("allreduce", 4))
        assert fr.open_collective() is None

    def test_last_state_names_open_op(self):
        fr = FlightRecorder(rank=2)
        fr.record("collective_begin", 5, "evd", ("reduce_scatter", 3))
        state = fr.snapshot().last_state()
        assert state["open_op"] == "reduce_scatter"
        assert state["op_id"] == 5
        assert state["phase"] == "evd"

    def test_last_state_empty_ring(self):
        state = _ring(0, []).last_state()
        assert state["open_op"] is None
        assert state["last_kind"] is None
        assert state["op_id"] == 0

    def test_snapshot_carries_clock(self):
        fr = FlightRecorder(rank=1)
        fr.record("post", 1, "")
        ring = fr.snapshot({0: 3, 1: 7})
        assert ring.clock == {0: 3, 1: 7}

    def test_format_event_renders_details(self):
        line = format_event(_ev(9, 1.25, "collective_begin", 4, "ttm",
                                ("allreduce", 6)))
        assert "#9" in line and "op#4" in line
        assert "phase=ttm" in line and "allreduce p=6" in line
        line = format_event(_ev(1, 0.0, "sweep", 2, "", {"iteration": 3}))
        assert "iteration=3" in line


class TestMergeFlightRings:
    def test_op_ids_beat_wall_clock_skew(self):
        # Rank 1's wall clock is an hour ahead; the collective sequence
        # number must still interleave the ranks causally.
        r0 = _ring(0, [
            _ev(1, 0.0, "collective_begin", 1, "", ("allreduce", 2)),
            _ev(2, 0.1, "collective_end", 1, "", ("allreduce", 2)),
            _ev(3, 0.2, "collective_begin", 2, "", ("barrier", 2)),
        ], wall_origin=1000.0)
        r1 = _ring(1, [
            _ev(1, 0.0, "collective_begin", 1, "", ("allreduce", 2)),
            _ev(2, 0.1, "collective_end", 1, "", ("allreduce", 2)),
            _ev(3, 0.2, "collective_begin", 2, "", ("barrier", 2)),
        ], wall_origin=4600.0)
        rows = merge_flight_rings({0: r0, 1: r1})
        assert [r["op_id"] for r in rows] == [1, 1, 1, 1, 2, 2]
        # Within op #1: every begin precedes every end.
        kinds = [r["kind"] for r in rows[:4]]
        assert kinds == ["collective_begin", "collective_begin",
                         "collective_end", "collective_end"]

    def test_stage_order_within_one_op(self):
        r0 = _ring(0, [
            _ev(1, 0.5, "collective_begin", 1, "", ("allreduce", 2)),
            _ev(2, 0.6, "post", 1, "", ""),
            _ev(3, 0.7, "collective_end", 1, "", ""),
        ])
        # Rank 1's post carries an *earlier* wall time than rank 0's
        # begin — stage order must still put all begins first.
        r1 = _ring(1, [
            _ev(1, 0.0, "collective_begin", 1, "", ("allreduce", 2)),
            _ev(2, 0.1, "post", 1, "", ""),
        ])
        rows = merge_flight_rings({0: r0, 1: r1})
        assert [r["kind"] for r in rows] == [
            "collective_begin", "collective_begin", "post", "post",
            "collective_end",
        ]


class TestBuildPostmortem:
    def _blocked(self, rank, op_id, op="allreduce", t=1.0):
        return _ring(rank, [
            _ev(1, t, "collective_begin", op_id, "gram", (op, 3)),
        ])

    def _finished(self, rank, op_id):
        return _ring(rank, [
            _ev(1, 0.0, "collective_begin", op_id, "gram", ("allreduce", 3)),
            _ev(2, 0.1, "collective_end", op_id, "gram", ("allreduce", 3)),
        ])

    def test_laggard_branch(self):
        pm = build_postmortem({
            0: self._blocked(0, 4),
            1: self._finished(1, 2),
            2: self._blocked(2, 4),
        })
        assert pm.diverging == [1]
        assert pm.collective == "allreduce"
        assert pm.op_id == 4
        assert "never reached allreduce (op #4)" in pm.verdict
        assert "[0, 2] blocked waiting" in pm.verdict

    def test_completed_early_branch(self):
        pm = build_postmortem({
            0: self._blocked(0, 2),
            1: self._finished(1, 2),
            2: self._blocked(2, 2),
        }, completed=[1])
        assert pm.diverging == [1]
        assert pm.collective == "allreduce"
        assert "completed while ranks [0, 2] still blocked" in pm.verdict

    def test_mismatched_collectives_branch(self):
        pm = build_postmortem({
            0: self._blocked(0, 3, op="allreduce"),
            1: self._blocked(1, 3, op="allreduce"),
            2: self._blocked(2, 3, op="reduce_scatter"),
        })
        assert pm.diverging == [2]
        assert pm.collective == "reduce_scatter"
        assert "mismatched collectives at op #3" in pm.verdict

    def test_crashed_branch_names_rank_and_op(self):
        pm = build_postmortem({
            0: self._blocked(0, 3),
            1: self._blocked(1, 3),
            2: self._blocked(2, 3),
        }, crashed=[1])
        assert pm.crashed == [1]
        assert pm.diverging == [1]
        assert pm.verdict.startswith("rank 1 crashed inside allreduce (op #3)")
        assert "ranks [0, 2] still blocked" in pm.verdict

    def test_crashed_between_collectives(self):
        pm = build_postmortem({0: self._finished(0, 2)}, crashed=[0])
        assert "crashed between collectives (op #2)" in pm.verdict

    def test_crashed_rank_without_ring_is_ignored(self):
        pm = build_postmortem({
            0: self._blocked(0, 2),
            1: self._blocked(1, 2),
        }, crashed=[5])
        assert pm.crashed == []
        assert "all ranks blocked in allreduce (op #2)" in pm.verdict

    def test_vector_clock_refinement(self):
        rings = {
            0: self._blocked(0, 2),
            1: self._blocked(1, 2),
        }
        rings[0].clock = {0: 2, 1: 1}
        rings[1].clock = {0: 3, 1: 4}
        pm = build_postmortem(rings)
        assert pm.verdict.endswith(
            "causally earliest stop: rank 0 (vector clocks)"
        )

    def test_no_rings(self):
        pm = build_postmortem({})
        assert pm.verdict == "no flight-recorder events collected"
        assert pm.diverging == []

    def test_lines_and_render(self):
        pm = build_postmortem({
            0: self._blocked(0, 2),
            1: self._finished(1, 2),
        }, completed=[1])
        lines = pm.lines()
        assert lines[0].startswith("postmortem:")
        assert any("rank 0: blocked in allreduce (op #2)" in l for l in lines)
        assert any("rank 1: completed" in l for l in lines)
        text = pm.render()
        assert "global timeline" in text
        assert "r0 collective_begin" in text


class TestTelemetryMonitor:
    def _beat(self, op_id, seconds=None, op="allreduce"):
        sample = {
            "kind": "heartbeat",
            "rank": 1,
            "ts": time.time(),
            "op_id": op_id,
            "phase": "ttm",
            "progress": {"iteration": 2, "total": 5},
            "flight_seq": op_id,
            "blocked": None,
            "metrics": {},
        }
        if seconds is not None:
            sample["blocked"] = {"op": op, "op_id": op_id, "seconds": seconds}
        return sample

    def test_stall_flagged_once_per_collective(self):
        mon = TelemetryMonitor(stall_after=0.5)
        mon.on_start(2, "p2p")
        mon.on_sample(1, self._beat(3, seconds=0.6))
        mon.on_sample(1, self._beat(3, seconds=1.2))  # same op: no dup
        assert len(mon.stalls()) == 1
        mon.on_sample(1, self._beat(4, seconds=0.9))  # next op: new stall
        assert len(mon.stalls()) == 2
        assert mon.stalls()[0]["rank"] == 1

    def test_render_shows_progress_and_stall(self):
        mon = TelemetryMonitor(stall_after=0.5)
        mon.on_start(2, "tcp")
        mon.on_sample(1, self._beat(3, seconds=0.8))
        mon.on_done(0, "ok")
        text = mon.render()
        assert "repro top" in text and "backend=tcp" in text
        assert "STALLED" in text
        assert "sweep 2/5" in text
        assert "done(ok)" in text
        assert "starting" not in text  # both ranks accounted for

    def test_jsonl_roundtrip_validates(self):
        mon = TelemetryMonitor(stall_after=0.5)
        mon.on_start(2, "p2p")
        mon.on_sample(1, self._beat(3, seconds=0.8))
        mon.on_done(1, "error")
        mon.on_postmortem("rank 1 crashed", [1])
        counts = validate_telemetry_jsonl(mon.jsonl())
        assert counts == {
            "run": 1, "heartbeat": 1, "stall": 1, "final": 1,
            "postmortem": 1,
        }

    @pytest.mark.parametrize("line, match", [
        ('{"v": 2, "ts": 1, "kind": "run", "size": 2, "backend": "p2p"}',
         "schema version"),
        ('{"v": 1, "ts": 1, "kind": "mystery"}', "unknown record kind"),
        ('{"v": 1, "kind": "final", "rank": 0, "status": "ok"}',
         "missing ts"),
        ('{"v": 1, "ts": 1, "kind": "stall", "rank": 0}',
         "missing 'op'"),
        ("not json", "invalid JSON"),
        ("[1, 2]", "expected object"),
    ])
    def test_validator_rejects_malformed_lines(self, line, match):
        with pytest.raises(ValueError, match=match):
            validate_telemetry_jsonl([line])

    def test_validator_rejects_empty_log(self):
        with pytest.raises(ValueError, match="empty"):
            validate_telemetry_jsonl([])


class TestMetricsEdgeCases:
    """Registry hardening: zero-count histograms, bucket clamps, and
    snapshots taken mid-update from another thread."""

    def test_zero_count_histogram_snapshot(self):
        assert Histogram().snapshot() == {"count": 0, "total": 0.0}

    def test_huge_value_clamps_to_top_bucket(self):
        h = Histogram()
        h.observe(2.0 ** 40)
        snap = h.snapshot()
        assert snap["count"] == 1 and snap["max"] == 2.0 ** 40
        # One observation, clamped into the single top bucket.
        assert sum(snap["buckets"].values()) == 1
        assert len(snap["buckets"]) == 1

    def test_nonpositive_values_land_in_bottom_bucket(self):
        h = Histogram()
        h.observe(0.0)
        h.observe(-1.5)
        snap = h.snapshot()
        assert snap["count"] == 2
        assert snap["min"] == -1.5
        assert sum(snap["buckets"].values()) == 2
        assert len(snap["buckets"]) == 1  # both in the bottom bucket

    def test_snapshot_during_concurrent_updates(self):
        reg = MetricsRegistry()
        stop = threading.Event()

        def hammer():
            i = 0
            while not stop.is_set():
                reg.observe(f"hist_{i % 64}", float(i % 7))
                reg.gauge(f"gauge_{i % 64}", float(i))
                reg.inc(f"ctr_{i % 64}")
                i += 1

        writer = threading.Thread(target=hammer, daemon=True)
        writer.start()
        try:
            for _ in range(200):
                snap = reg.snapshot()
                assert set(snap) == {"counters", "gauges", "histograms"}
                for h in snap["histograms"].values():
                    assert h["count"] >= 0
        finally:
            stop.set()
            writer.join(timeout=5.0)


# ---------------------------------------------------------------------------
# Live runs: bit-identity, cross-wire postmortems, telemetry channel.
# ---------------------------------------------------------------------------


class TestFlightBitIdentity:
    def test_flight_on_matches_flight_off(self):
        arr = np.random.default_rng(3).standard_normal(64)
        off = run_spmd(_prog_clean, 2, arr, timeout=60.0,
                       config=CommConfig(flight=False))
        on = run_spmd(_prog_clean, 2, arr, timeout=60.0,
                      config=CommConfig(flight=True))
        for a, b in zip(off, on):
            assert np.array_equal(a, b)


#: The acceptance literal for the seeded deadlock: asserting the exact
#: string on every backend is what "identical verdicts on shm and tcp"
#: means operationally.
_DEADLOCK_VERDICT = (
    "rank(s) [1] completed while ranks [0, 2] still blocked in "
    "allreduce (op #2)"
)
_CRASH_VERDICT = (
    "rank 1 crashed inside allreduce (op #3); ranks [0, 2] still blocked"
)


class TestPostmortemCrossWire:
    def test_seeded_deadlock_postmortem(self, backend):
        with pytest.raises(RankFailureError) as info:
            run_spmd(
                _prog_deadlock, 3, timeout=60.0, transport=backend,
                collective_timeout=2.0,
            )
        exc = info.value
        pm = exc.postmortem
        assert pm is not None
        assert pm.verdict == _DEADLOCK_VERDICT
        assert pm.diverging == [1]
        assert pm.collective == "allreduce" and pm.op_id == 2
        # All three rings reached the launcher: the early exiter ships
        # its ring before its result, the timed-out ranks embed theirs
        # in the failure report.
        assert set(exc.flight_records) == {0, 1, 2}
        # Satellite: the error message carries the flight tails and the
        # postmortem block.
        msg = str(exc)
        assert "flight recorder (last" in msg
        assert "postmortem: " + _DEADLOCK_VERDICT in msg

    def test_seeded_crash_postmortem(self, backend):
        cfg = CommConfig(
            fault_plan=FaultPlan.kill(1, op_index=3),
            collective_timeout=15.0,
        )
        with pytest.raises(RankFailureError) as info:
            run_spmd(
                _prog_crash_site, 3, timeout=60.0, transport=backend,
                config=cfg,
            )
        exc = info.value
        pm = exc.postmortem
        assert pm is not None
        assert pm.verdict == _CRASH_VERDICT
        assert pm.crashed == [1] and pm.diverging == [1]
        assert pm.collective == "allreduce" and pm.op_id == 3
        # The crashed rank shipped its ring before dying; its last
        # state shows the collective it died inside.
        assert exc.flight_records[1].last_state()["open_op"] == "allreduce"

    def test_timeline_is_causally_ordered(self):
        with pytest.raises(RankFailureError) as info:
            run_spmd(_prog_deadlock, 3, timeout=60.0, collective_timeout=2.0)
        pm = info.value.postmortem
        op_ids = [row["op_id"] for row in pm.timeline]
        assert op_ids == sorted(op_ids)
        # Within each op every begin precedes every end.
        for op in set(op_ids):
            kinds = [r["kind"] for r in pm.timeline if r["op_id"] == op]
            if "collective_end" in kinds and "collective_begin" in kinds:
                assert kinds.index("collective_end") > max(
                    i for i, k in enumerate(kinds)
                    if k == "collective_begin"
                )

    def test_flight_off_still_fails_cleanly(self):
        with pytest.raises(RankFailureError) as info:
            run_spmd(
                _prog_deadlock, 3, timeout=60.0, collective_timeout=2.0,
                config=CommConfig(flight=False),
            )
        assert info.value.flight_records == {}

    def test_hosted_ranks_ship_rings_too(self):
        # Two processes hosting three ranks (the shrink topology): every
        # hosted rank still contributes its own ring to the postmortem.
        with pytest.raises(RankFailureError) as info:
            run_spmd(
                _prog_deadlock, 3, timeout=60.0, collective_timeout=2.0,
                host_map=[[0, 1], [2]],
            )
        exc = info.value
        assert set(exc.flight_records) == {0, 1, 2}
        assert exc.postmortem.verdict == _DEADLOCK_VERDICT


class TestLiveTelemetryChannel:
    def test_monitor_heartbeats_and_stall_flag(self, backend):
        mon = TelemetryMonitor(stall_after=0.4)
        cfg = CommConfig(telemetry_interval=0.1)
        out = run_spmd(
            _prog_straggler, 2, timeout=60.0, transport=backend,
            config=cfg, monitor=mon,
        )
        assert out == [0, 1]
        counts = validate_telemetry_jsonl(mon.jsonl())
        assert counts["run"] == 1
        assert counts["final"] == 2
        assert counts["heartbeat"] >= 2
        # Rank 1 sat in the second allreduce ~1.2s >> stall_after: the
        # stall was flagged while the run was still live, long before
        # any CollectiveTimeoutError would fire.
        stalls = mon.stalls()
        assert any(s["rank"] == 1 and s["op"] == "allreduce" for s in stalls)
        text = mon.render()
        assert "done(ok)" in text and "backend=" in text

    def test_monitor_sees_postmortem_on_failure(self):
        mon = TelemetryMonitor(stall_after=5.0)
        with pytest.raises(RankFailureError):
            run_spmd(
                _prog_deadlock, 3, timeout=60.0, collective_timeout=2.0,
                config=CommConfig(telemetry_interval=0.1), monitor=mon,
            )
        counts = validate_telemetry_jsonl(mon.jsonl())
        assert counts.get("postmortem") == 1
        rec = [e for e in mon.events if e["kind"] == "postmortem"][0]
        assert rec["verdict"] == _DEADLOCK_VERDICT
        assert rec["diverging"] == [1]

    def test_monitor_with_star_transport_rejected(self):
        with pytest.raises(ValueError, match="monitor"):
            run_spmd(
                _prog_clean, 2, np.ones(4), timeout=60.0,
                transport="star", monitor=TelemetryMonitor(),
            )
