"""ASCII dimension-tree rendering (paper Fig. 1)."""

import pytest

from repro.core.tree_render import render_tree


class TestRenderTree:
    def test_order6_structure(self):
        out = render_tree(6)
        # Root holds all six modes.
        assert "{1,2,3,4,5,6}" in out
        # Every factor-update leaf appears.
        for j in range(1, 7):
            assert f"update U{j}" in out
        # The first contraction off the root is in the trailing half,
        # highest mode first (paper's layout argument).
        assert "[TTM 6,5,4]" in out

    def test_order2(self):
        out = render_tree(2)
        assert "update U1" in out and "update U2" in out

    def test_single_rule(self):
        out = render_tree(4, rule="single")
        assert "{1,2,3,4}" in out
        assert "[TTM 4,3,2]" in out

    def test_each_leaf_once(self):
        out = render_tree(5)
        for j in range(1, 6):
            assert out.count(f"update U{j}") == 1

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            render_tree(1)

    def test_core_note(self):
        assert "core" in render_tree(4)
