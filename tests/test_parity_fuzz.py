"""Property-based parity fuzzing across the three execution layers.

For random shapes, ranks, grids, and variants, the sequential
implementation, the cost-simulated distributed implementation, and the
genuinely SPMD implementation must agree numerically.  This is the
strongest single guarantee the test suite offers about the simulator's
faithfulness.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.hooi import hooi, variant_options
from repro.core.sthosvd import sthosvd
from repro.distributed.hooi import dist_hooi
from repro.distributed.mp_hooi import mp_hooi_dt
from repro.distributed.mp_sthosvd import mp_sthosvd
from repro.distributed.spmd import spmd_sthosvd
from repro.distributed.spmd_hooi import spmd_hooi
from repro.distributed.sthosvd import dist_sthosvd
from repro.tensor.random import tucker_plus_noise


def _random_problem(data):
    rng = np.random.default_rng(data.draw(st.integers(0, 10**6)))
    d = data.draw(st.integers(3, 4))
    shape = tuple(int(rng.integers(6, 13)) for _ in range(d))
    ranks = tuple(max(1, n // 3) for n in shape)
    grid = tuple(int(rng.integers(1, 3)) for _ in range(d))
    x = tucker_plus_noise(shape, ranks, noise=1e-3, seed=rng)
    return x, ranks, grid


@settings(max_examples=12, deadline=None)
@given(data=st.data())
def test_sthosvd_three_way_parity(data):
    x, ranks, grid = _random_problem(data)
    seq, _ = sthosvd(x, ranks=ranks)
    sim, _ = dist_sthosvd(x, grid, ranks=ranks)
    spmd = spmd_sthosvd(x, grid, ranks=ranks)
    e_seq = seq.relative_error(x)
    assert sim.relative_error(x) == pytest.approx(
        e_seq, rel=1e-5, abs=1e-9
    )
    assert spmd.relative_error(x) == pytest.approx(
        e_seq, rel=1e-5, abs=1e-9
    )


@settings(max_examples=8, deadline=None)
@given(
    data=st.data(),
    variant=st.sampled_from(["hooi", "hooi-dt", "hosi", "hosi-dt"]),
)
def test_hooi_three_way_parity(data, variant):
    x, ranks, grid = _random_problem(data)
    opts = variant_options(
        variant, max_iters=2, seed=data.draw(st.integers(0, 100))
    )
    seq, _ = hooi(x, ranks, opts)
    sim, _ = dist_hooi(x, ranks, grid, options=opts)
    spmd = spmd_hooi(x, ranks, grid, opts)
    e_seq = seq.relative_error(x)
    assert sim.relative_error(x) == pytest.approx(
        e_seq, rel=1e-3, abs=1e-8
    )
    assert spmd.relative_error(x) == pytest.approx(
        e_seq, rel=1e-3, abs=1e-8
    )


# The backend fixture is function-scoped but constant across the
# examples of one parametrized run, so suppressing the fixture health
# check is sound — hypothesis just cannot see that the value never
# changes between examples.
@settings(
    max_examples=4,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_mp_layer_parity(data, backend):
    """The real-process layer agrees with the other two: bit-identical
    to the in-process SPMD layer (same algorithm, deterministic
    rank-order reductions over real message passing — on either wire),
    and matching the cost-simulated layer's ranks, factors (up to
    column sign), and reconstruction error."""
    x, ranks, grid = _random_problem(data)
    # Cap at 4 worker processes so each example stays cheap.
    grid = tuple(
        g if int(np.prod(grid[:i + 1])) <= 4 else 1
        for i, g in enumerate(grid)
    )
    spmd = spmd_sthosvd(x, grid, ranks=ranks)
    mp = mp_sthosvd(x, grid, ranks=ranks, transport=backend)

    assert mp.core.dtype == spmd.core.dtype
    assert np.array_equal(mp.core, spmd.core)
    for u_mp, u_spmd in zip(mp.factors, spmd.factors):
        assert np.array_equal(u_mp, u_spmd)

    sim, _ = dist_sthosvd(x, grid, ranks=ranks)
    assert mp.core.shape == sim.core.shape  # identical ranks
    for u_mp, u_sim in zip(mp.factors, sim.factors):
        assert u_mp.shape == u_sim.shape
        signs = np.sign(np.sum(u_mp * u_sim, axis=0))
        np.testing.assert_allclose(u_mp * signs, u_sim, atol=1e-6)
    assert mp.relative_error(x) == pytest.approx(
        sim.relative_error(x), rel=1e-6, abs=1e-10
    )


@settings(
    max_examples=3,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data(), use_tree=st.booleans())
def test_mp_hooi_dt_parity(data, use_tree, backend):
    """The mp tree engine (and its direct fallback) is bit-identical to
    the in-process SPMD HOOI on fuzzed problems, on either wire."""
    x, ranks, grid = _random_problem(data)
    grid = tuple(
        g if int(np.prod(grid[:i + 1])) <= 4 else 1
        for i, g in enumerate(grid)
    )
    opts = variant_options(
        "hosi-dt" if use_tree else "hosi",
        max_iters=2,
        seed=data.draw(st.integers(0, 100)),
    )
    spmd = spmd_hooi(x, ranks, grid, opts)
    mp, stats = mp_hooi_dt(x, ranks, grid, opts, transport=backend)

    assert stats.used_tree == use_tree
    assert mp.core.dtype == spmd.core.dtype
    assert np.array_equal(mp.core, spmd.core)
    for u_mp, u_spmd in zip(mp.factors, spmd.factors):
        assert np.array_equal(u_mp, u_spmd)


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_simulated_seconds_deterministic(data):
    """Identical configurations charge identical simulated costs."""
    x, ranks, grid = _random_problem(data)
    _, a = dist_sthosvd(x, grid, ranks=ranks)
    _, b = dist_sthosvd(x, grid, ranks=ranks)
    assert a.simulated_seconds == b.simulated_seconds
    assert a.breakdown == b.breakdown
