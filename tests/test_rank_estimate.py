"""Initial-rank estimation from sampled spectra."""

import pytest

from repro.core.errors import ConfigError
from repro.core.rank_estimate import estimate_ranks
from repro.core.sthosvd import sthosvd
from repro.tensor.random import tucker_plus_noise


class TestEstimateRanks:
    def test_bracket_true_ranks(self, lowrank4):
        est = estimate_ranks(lowrank4, 0.01, margin=1.0)
        # With a strongly low-rank tensor the estimate lands on (or
        # just above) the construction ranks.
        true = (3, 4, 2, 3)
        assert all(t <= e <= t + 2 for t, e in zip(true, est))

    def test_margin_overestimates(self, lowrank4):
        bare = estimate_ranks(lowrank4, 0.01, margin=1.0, seed=0)
        fat = estimate_ranks(lowrank4, 0.01, margin=1.5, seed=0)
        assert all(f >= b for b, f in zip(bare, fat))

    def test_clipped_to_shape(self):
        x = tucker_plus_noise((6, 6, 6), (5, 5, 5), noise=0.3, seed=0)
        est = estimate_ranks(x, 1e-4, margin=3.0)
        assert all(e <= 6 for e in est)

    def test_full_sampling_matches_sthosvd_choice(self):
        """With every column sampled, the per-mode choice equals the
        one STHOSVD's first mode would make."""
        x = tucker_plus_noise((14, 12, 10), (3, 3, 3), noise=0.02, seed=1)
        est = estimate_ranks(
            x, 0.1, sample_columns=10**6, margin=1.0
        )
        tucker, stats = sthosvd(x, eps=0.1)
        # Mode 0 is computed from the untruncated tensor in both.
        assert est[0] == tucker.ranks[0]

    def test_good_ra_seed(self):
        """End to end: the estimate seeds RA-HOOI into convergence
        within two iterations."""
        from repro.core.rank_adaptive import (
            RankAdaptiveOptions,
            rank_adaptive_hooi,
        )

        x = tucker_plus_noise((20, 18, 16), (4, 4, 4), noise=0.02, seed=2)
        est = estimate_ranks(x, 0.05)
        tucker, stats = rank_adaptive_hooi(
            x, 0.05, est, RankAdaptiveOptions(max_iters=3)
        )
        assert stats.converged
        assert stats.first_satisfied <= 2

    def test_validation(self, lowrank3):
        with pytest.raises(ConfigError):
            estimate_ranks(lowrank3, 0.0)
        with pytest.raises(ConfigError):
            estimate_ranks(lowrank3, 0.1, sample_columns=0)
        with pytest.raises(ConfigError):
            estimate_ranks(lowrank3, 0.1, margin=0.5)

    def test_deterministic(self, lowrank3):
        a = estimate_ranks(lowrank3, 0.05, seed=3)
        b = estimate_ranks(lowrank3, 0.05, seed=3)
        assert a == b
