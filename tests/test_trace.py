"""Event tracing and timeline rendering."""

import numpy as np
import pytest

from repro.distributed.arrays import SymbolicArray
from repro.distributed.hooi import dist_hooi
from repro.distributed.sthosvd import dist_sthosvd
from repro.vmpi.cost import CostKind
from repro.vmpi.machine import MachineModel
from repro.vmpi.trace import TraceEvent, TracingLedger, render_timeline


class TestTracingLedger:
    def test_records_all_kinds(self):
        led = TracingLedger(MachineModel(), 4)
        led.compute("a", 1e9)
        led.sequential("b", 1e9)
        led.comm("c", 1e6, 2)
        kinds = [e.kind for e in led.events]
        assert kinds == [
            CostKind.COMPUTE, CostKind.SEQUENTIAL, CostKind.COMM,
        ]

    def test_events_are_contiguous(self):
        led = TracingLedger(MachineModel(), 1)
        led.compute("a", 1e9)
        led.compute("b", 2e9)
        assert led.events[1].start == pytest.approx(led.events[0].end)

    def test_zero_cost_not_recorded(self):
        led = TracingLedger(MachineModel(), 1)
        led.comm("a", 0.0, 0.0)
        assert led.events == []

    def test_totals_match_base_ledger(self):
        led = TracingLedger(MachineModel(), 2)
        led.compute("a", 1e9)
        led.comm("b", 1e6, 1)
        assert sum(e.seconds for e in led.events) == pytest.approx(
            led.seconds()
        )


class TestDriversWithTrace:
    def test_sthosvd_trace(self):
        x = SymbolicArray((64, 64, 64), np.float32)
        _, stats = dist_sthosvd(x, (1, 2, 2), ranks=(4, 4, 4), trace=True)
        events = stats.ledger.events
        assert events
        # STHOSVD structure: a gram step precedes the first EVD.
        phases = [e.phase for e in events]
        assert phases.index("gram") < phases.index("evd")

    def test_hooi_trace(self):
        from repro.core.hooi import variant_options

        x = SymbolicArray((32, 32, 32), np.float32)
        _, stats = dist_hooi(
            x, (4, 4, 4), (2, 2, 1),
            options=variant_options("hosi-dt", max_iters=1),
            trace=True,
        )
        phases = {e.phase for e in stats.ledger.events}
        assert "ttm" in phases and "qrcp" in phases

    def test_trace_off_by_default(self):
        x = SymbolicArray((32, 32, 32), np.float32)
        _, stats = dist_sthosvd(x, (1, 2, 2), ranks=(4, 4, 4))
        assert not hasattr(stats.ledger, "events")


class TestRenderTimeline:
    def test_empty(self):
        assert render_timeline([]) == "(no events)"

    def test_lanes_and_totals(self):
        events = [
            TraceEvent("a", CostKind.COMPUTE, 0.0, 1.0),
            TraceEvent("b", CostKind.COMM, 1.0, 1.0),
        ]
        out = render_timeline(events, width=20)
        lines = out.splitlines()
        assert len(lines) == 3
        assert lines[1].startswith("a")
        assert "#" in lines[1] and "#" in lines[2]

    def test_short_events_visible(self):
        events = [
            TraceEvent("long", CostKind.COMPUTE, 0.0, 100.0),
            TraceEvent("blip", CostKind.COMM, 100.0, 1e-9),
        ]
        out = render_timeline(events, width=30)
        blip_line = [l for l in out.splitlines() if l.startswith("blip")][0]
        assert "#" in blip_line
