"""Event tracing and timeline rendering."""

import numpy as np
import pytest

from repro.distributed.arrays import SymbolicArray
from repro.distributed.hooi import dist_hooi
from repro.distributed.sthosvd import dist_sthosvd
from repro.vmpi.cost import CostKind
from repro.vmpi.machine import MachineModel
from repro.vmpi.trace import TraceEvent, TracingLedger, render_timeline


class TestTracingLedger:
    def test_records_all_kinds(self):
        led = TracingLedger(MachineModel(), 4)
        led.compute("a", 1e9)
        led.sequential("b", 1e9)
        led.comm("c", 1e6, 2)
        kinds = [e.kind for e in led.events]
        assert kinds == [
            CostKind.COMPUTE, CostKind.SEQUENTIAL, CostKind.COMM,
        ]

    def test_events_are_contiguous(self):
        led = TracingLedger(MachineModel(), 1)
        led.compute("a", 1e9)
        led.compute("b", 2e9)
        assert led.events[1].start == pytest.approx(led.events[0].end)

    def test_zero_cost_not_recorded(self):
        led = TracingLedger(MachineModel(), 1)
        led.comm("a", 0.0, 0.0)
        assert led.events == []

    def test_totals_match_base_ledger(self):
        led = TracingLedger(MachineModel(), 2)
        led.compute("a", 1e9)
        led.comm("b", 1e6, 1)
        assert sum(e.seconds for e in led.events) == pytest.approx(
            led.seconds()
        )


class TestDriversWithTrace:
    def test_sthosvd_trace(self):
        x = SymbolicArray((64, 64, 64), np.float32)
        _, stats = dist_sthosvd(x, (1, 2, 2), ranks=(4, 4, 4), trace=True)
        events = stats.ledger.events
        assert events
        # STHOSVD structure: a gram step precedes the first EVD.
        phases = [e.phase for e in events]
        assert phases.index("gram") < phases.index("evd")

    def test_hooi_trace(self):
        from repro.core.hooi import variant_options

        x = SymbolicArray((32, 32, 32), np.float32)
        _, stats = dist_hooi(
            x, (4, 4, 4), (2, 2, 1),
            options=variant_options("hosi-dt", max_iters=1),
            trace=True,
        )
        phases = {e.phase for e in stats.ledger.events}
        assert "ttm" in phases and "qrcp" in phases

    def test_trace_off_by_default(self):
        x = SymbolicArray((32, 32, 32), np.float32)
        _, stats = dist_sthosvd(x, (1, 2, 2), ranks=(4, 4, 4))
        assert not hasattr(stats.ledger, "events")


class TestRenderTimeline:
    def test_empty(self):
        assert render_timeline([]) == "(no events)"

    def test_lanes_and_totals(self):
        events = [
            TraceEvent("a", CostKind.COMPUTE, 0.0, 1.0),
            TraceEvent("b", CostKind.COMM, 1.0, 1.0),
        ]
        out = render_timeline(events, width=20)
        lines = out.splitlines()
        assert len(lines) == 3
        assert lines[1].startswith("a")
        assert "#" in lines[1] and "#" in lines[2]

    def test_short_events_visible(self):
        events = [
            TraceEvent("long", CostKind.COMPUTE, 0.0, 100.0),
            TraceEvent("blip", CostKind.COMM, 100.0, 1e-9),
        ]
        out = render_timeline(events, width=30)
        blip_line = [l for l in out.splitlines() if l.startswith("blip")][0]
        assert "#" in blip_line


class TestCommTracePhases:
    """Phase tagging on the executed-collective trace (CommTrace)."""

    @staticmethod
    def record(op, phase):
        from repro.vmpi.trace import CollectiveRecord

        return CollectiveRecord(op, "ring", 4, 1, 8, 64, 1, 8, 64, 0, phase)

    @staticmethod
    def dummy_comm():
        """The minimum _comm_phase needs: a mutable ``phase`` slot and
        the (disabled) profiler hook it probes on entry/exit."""

        class _Dummy:
            phase = ""
            profiler = None

        return _Dummy()

    def test_for_phase_exact_match_only(self):
        # Overlapping names: "ttm" must not swallow "ttm_comm".
        from repro.vmpi.trace import CommTrace

        t = CommTrace()
        t.add(self.record("allreduce", "ttm"))
        t.add(self.record("allreduce", "ttm_comm"))
        t.add(self.record("bcast", "ttm"))
        assert [r.phase for r in t.for_phase("ttm")] == ["ttm", "ttm"]
        assert [r.phase for r in t.for_phase("ttm_comm")] == ["ttm_comm"]

    def test_for_phase_multiple_names(self):
        from repro.vmpi.trace import CommTrace

        t = CommTrace()
        t.add(self.record("allreduce", "gram"))
        t.add(self.record("allreduce", "evd"))
        t.add(self.record("allreduce", "gram_evd"))
        got = t.for_phase("gram", "evd")
        assert [r.phase for r in got] == ["gram", "evd"]

    def test_count_restricted_to_phases(self):
        from repro.vmpi.trace import CommTrace

        t = CommTrace()
        t.add(self.record("allreduce", "ttm"))
        t.add(self.record("allreduce", "ttm_comm"))
        t.add(self.record("barrier", "ttm"))
        assert t.count("allreduce") == 2
        assert t.count("allreduce", "ttm") == 1
        assert t.count("allreduce", "ttm", "ttm_comm") == 2
        assert t.count("barrier", "ttm_comm") == 0

    def test_nested_comm_phase_restores_outer(self):
        from repro.distributed.kernels import _comm_phase

        comm = self.dummy_comm()
        with _comm_phase(comm, "outer"):
            assert comm.phase == "outer"
            with _comm_phase(comm, "inner"):
                assert comm.phase == "inner"
            assert comm.phase == "outer"
        assert comm.phase == ""

    def test_nested_comm_phase_tags_records(self):
        from repro.distributed.kernels import _comm_phase
        from repro.vmpi.trace import CommTrace

        comm = self.dummy_comm()
        trace = CommTrace()
        with _comm_phase(comm, "sweep"):
            trace.add(self.record("allreduce", comm.phase))
            with _comm_phase(comm, "sweep_ttm"):
                trace.add(self.record("reduce_scatter", comm.phase))
            trace.add(self.record("allgather", comm.phase))
        assert [r.phase for r in trace.records] == [
            "sweep",
            "sweep_ttm",
            "sweep",
        ]
        # Overlapping prefixes stay distinct on lookup.
        assert len(trace.for_phase("sweep")) == 2
        assert len(trace.for_phase("sweep_ttm")) == 1

    def test_comm_phase_restores_on_exception(self):
        from repro.distributed.kernels import _comm_phase

        comm = self.dummy_comm()
        comm.phase = "base"
        try:
            with _comm_phase(comm, "risky"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert comm.phase == "base"
