"""Tier-1b protocol model checker: fixture corpus and CLI.

A corpus of small SPMD programs with known-good and known-mismatched
collective schedules, asserting the exact rule ID (SPMD121–126) and
that counterexamples carry *both* call sites.  Plus the repo-level
invariant behind CI's `protocol-and-race` job: the checker reports
zero findings over `src/repro` modulo the committed baseline of
sanctioned control-plane escapes.
"""

from pathlib import Path

from repro.analysis.verify.cli import lint_main
from repro.analysis.verify.protocol import (
    RESERVED_TAG_KINDS,
    check_paths,
    check_source,
)
from repro.analysis.verify.rules import Baseline

REPO = Path(__file__).resolve().parent.parent


def ids(findings):
    return [f.rule_id for f in findings]


# ---------------------------------------------------------------------------
# known-good programs: the idioms the repo's drivers actually use
# ---------------------------------------------------------------------------


class TestCleanPrograms:
    def test_straight_line_collectives(self):
        src = """
def prog(comm, x):
    y = comm.allreduce(x)
    y = comm.bcast(y, root=0)
    comm.barrier()
    return y
"""
        assert check_source(src) == []

    def test_rank_independent_loop(self):
        src = """
def prog(comm, x, max_iters):
    for it in range(max_iters):
        x = comm.allreduce(x)
    return x
"""
        assert check_source(src) == []

    def test_symbolic_iterable_loop(self):
        src = """
def prog(comm, modes, x):
    for m in modes:
        x = comm.reduce_scatter(x)
    return x
"""
        assert check_source(src) == []

    def test_ring_neighbors_resolve(self):
        """``(rank ± 1) % size`` projects to a concrete peer graph in
        which every send finds its receive."""
        src = """
def prog(comm, x):
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    comm.send(right, x, tag=5)
    return comm.recv(left, tag=5)
"""
        assert check_source(src) == []

    def test_root_fanout_pairing_idiom(self):
        """send-in-one-arm / recv-in-the-other under ``rank == root``
        is the sanctioned pairing idiom, not a divergence."""
        src = """
def prog(comm, x, root):
    if comm.rank == root:
        for r in range(comm.size):
            if r != root:
                comm.send(r, x, tag=3)
    else:
        x = comm.recv(root, tag=3)
    return x
"""
        assert check_source(src) == []

    def test_early_return_after_last_collective(self):
        """``if rank != root: return None`` after the gather — the
        repo-wide post-collective idiom (mp_gather_core) — is clean."""
        src = """
def prog(comm, x, root):
    g = comm.gather(x, root=root)
    if comm.rank != root:
        return None
    return g
"""
        assert check_source(src) == []

    def test_interprocedural_inlining(self):
        src = """
def helper(comm, x):
    return comm.allreduce(x)

def prog(comm, x):
    y = helper(comm, x)
    return helper(comm, y)
"""
        assert check_source(src) == []

    def test_convergence_bcast_idiom(self):
        """Data-dependent break after a root-0 bcast (the rahosi
        convergence pattern): every rank sees the same payload, so the
        break is replicated — clean."""
        src = """
def prog(comm, x, max_iters):
    for it in range(max_iters):
        x = comm.allreduce(x)
        payload = comm.bcast(x, root=0)
        if payload is None:
            break
    return x
"""
        assert check_source(src) == []


# ---------------------------------------------------------------------------
# known-mismatched programs: one per rule, exact IDs + two call sites
# ---------------------------------------------------------------------------


class TestSPMD121:
    def test_rank_dependent_trip_count(self):
        src = """
def prog(comm, x):
    for i in range(comm.rank + 1):
        x = comm.allreduce(x)
    return x
"""
        fs = check_source(src, "fx.py")
        assert ids(fs) == ["SPMD121"]
        # counterexample: the loop site and the enclosed collective.
        assert "fx.py:3" in fs[0].message
        assert "fx.py:4" in fs[0].message
        assert "allreduce" in fs[0].message

    def test_tainted_while_loop(self):
        src = """
def prog(comm, x):
    n = comm.rank
    while n > 0:
        comm.barrier()
        n = n - 1
    return x
"""
        assert ids(check_source(src)) == ["SPMD121"]

    def test_size_dependent_trip_is_fine(self):
        src = """
def prog(comm, x):
    for i in range(comm.size):
        x = comm.allreduce(x)
    return x
"""
        assert check_source(src) == []


class TestSPMD122:
    def test_conditional_collective_kind_mismatch(self):
        """The headline counterexample: rank A awaits allreduce while
        rank B issues reduce_scatter."""
        src = """
def prog(comm, x):
    if comm.rank == 0:
        x = comm.allreduce(x)
    else:
        x = comm.reduce_scatter(x)
    return x
"""
        fs = check_source(src, "fx.py")
        assert ids(fs) == ["SPMD122"]
        msg = fs[0].message
        assert "rank 0" in msg
        assert "allreduce" in msg and "reduce_scatter" in msg
        assert "fx.py:4" in msg and "fx.py:6" in msg

    def test_one_armed_symbolic_root_collective(self):
        src = """
def prog(comm, x, root):
    if comm.rank == root:
        x = comm.allreduce(x)
    return x
"""
        assert ids(check_source(src)) == ["SPMD122"]

    def test_rank_dependent_early_return_strands_collective(self):
        src = """
def prog(comm, x, root):
    if comm.rank != root:
        return None
    return comm.allreduce(x)
"""
        fs = check_source(src, "fx.py")
        assert ids(fs) == ["SPMD122"]
        assert "fx.py:4" in fs[0].message  # the early return
        assert "fx.py:5" in fs[0].message  # the stranded collective

    def test_mismatch_through_helper(self):
        src = """
def helper(comm, x):
    return comm.allreduce(x)

def prog(comm, x):
    if comm.rank == 0:
        return helper(comm, x)
    return x
"""
        assert ids(check_source(src)) == ["SPMD122"]


class TestSPMD123:
    def test_phase_tag_diverges_across_ranks(self):
        src = """
def prog(comm, x):
    if comm.rank % 2 == 0:
        comm.phase = "ttm"
    else:
        comm.phase = "gram"
    return comm.allreduce(x)
"""
        fs = check_source(src, "fx.py")
        assert ids(fs) == ["SPMD123"]
        msg = fs[0].message
        assert "'ttm'" in msg and "'gram'" in msg

    def test_same_phase_both_arms_is_fine(self):
        src = """
def prog(comm, x):
    if comm.rank % 2 == 0:
        comm.phase = "ttm"
    else:
        comm.phase = "ttm"
    return comm.allreduce(x)
"""
        assert check_source(src) == []


class TestSPMD124:
    def test_raw_post_in_buddy_namespace(self):
        src = """
def prog(comm, x):
    comm._t._post(1, ("buddy", 7), b"x")
    return x
"""
        fs = check_source(src)
        assert ids(fs) == ["SPMD124"]
        assert "'buddy'" in fs[0].message

    def test_tag_via_module_constant(self):
        src = """
_MY_TAG = "agree"

def prog(comm, x):
    tag = (_MY_TAG, 3)
    comm._t._post(1, tag, b"x")
    return x
"""
        assert ids(check_source(src)) == ["SPMD124"]

    def test_reserved_kinds_cover_control_planes(self):
        assert {"buddy", "agree", "shmfree", "revoke", "ctl", "vfy",
                "vok", "p2p"} <= set(RESERVED_TAG_KINDS)

    def test_user_namespace_is_fine(self):
        src = """
def prog(comm, x):
    comm._t._post(1, ("mytag", 7), b"x")
    return x
"""
        assert check_source(src) == []

    def test_pragma_suppresses(self):
        src = """
def prog(comm, x):
    comm._t._post(1, ("buddy", 7), b"x")  # spmdlint: ignore[SPMD124]
    return x
"""
        assert check_source(src) == []


class TestSPMD125:
    def test_tag_mismatch(self):
        src = """
def prog(comm, x):
    if comm.rank == 0:
        comm.send(1, x, tag=1)
    if comm.rank == 1:
        x = comm.recv(0, tag=2)
    return x
"""
        fs = check_source(src, "fx.py")
        assert ids(fs) == ["SPMD125", "SPMD125"]
        # both dangling edges name the nearest candidate site.
        assert "fx.py:6" in fs[0].message
        assert "fx.py:4" in fs[1].message

    def test_send_with_no_recv_at_all(self):
        src = """
def prog(comm, x):
    if comm.rank == 0:
        comm.send(1, x, tag=9)
    return x
"""
        assert ids(check_source(src)) == ["SPMD125"]


class TestSPMD126:
    def test_collective_after_shutdown(self):
        src = """
def prog(comm, x):
    x = comm.allreduce(x)
    comm.verify_shutdown()
    comm.barrier()
    return x
"""
        fs = check_source(src, "fx.py")
        assert ids(fs) == ["SPMD126"]
        assert "fx.py:4" in fs[0].message  # the shutdown point
        assert "fx.py:5" in fs[0].message  # the late barrier

    def test_shutdown_last_is_fine(self):
        src = """
def prog(comm, x):
    x = comm.allreduce(x)
    comm.verify_shutdown()
    return x
"""
        assert check_source(src) == []


# ---------------------------------------------------------------------------
# repo-level invariant and CLI plumbing
# ---------------------------------------------------------------------------


class TestRepoInvariant:
    def test_repo_protocol_clean_modulo_baseline(self, monkeypatch):
        """The acceptance bar: zero findings over src/repro with the
        committed baseline of sanctioned control-plane escapes.

        Fingerprints hash the path as scanned, so this runs from the
        repo root with a relative path — the same invocation CI uses.
        """
        monkeypatch.chdir(REPO)
        baseline = Baseline.load("baselines/protocol-baseline.json")
        fs = check_paths(["src/repro"], baseline=baseline)
        assert fs == [], [f.render() for f in fs]

    def test_baseline_covers_only_sanctioned_owners(self):
        """Unbaselined findings exist and live exactly in the modules
        that own the reserved namespaces (recovery's buddy/agree
        rounds) — the baseline is not hiding real user-code escapes."""
        fs = check_paths([str(REPO / "src/repro")])
        assert fs, "expected sanctioned SPMD124 escapes without baseline"
        assert {f.rule_id for f in fs} == {"SPMD124"}
        assert {Path(f.path).name for f in fs} == {"recovery.py"}


class TestCLI:
    def test_protocol_flag_catches_fixture(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "def prog(comm, x):\n"
            "    if comm.rank == 0:\n"
            "        x = comm.allreduce(x)\n"
            "    else:\n"
            "        x = comm.reduce_scatter(x)\n"
            "    return x\n"
        )
        rc = lint_main(["--protocol", str(bad)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "SPMD122" in out

    def test_without_flag_protocol_rules_stay_silent(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text(
            "def prog(comm, x):\n"
            "    for i in range(comm.rank + 1):\n"
            "        x = comm.allreduce(x)\n"
            "    return x\n"
        )
        rc = lint_main([str(bad)])
        out = capsys.readouterr().out
        assert "SPMD121" not in out
        assert rc in (0, 1)  # spmdlint may have its own opinion

    def test_strict_with_baseline_is_clean_on_repo(self, capsys, monkeypatch):
        monkeypatch.chdir(REPO)
        rc = lint_main(
            [
                "--protocol",
                "--strict",
                "--baseline",
                "baselines/protocol-baseline.json",
                "src/repro",
            ]
        )
        capsys.readouterr()
        assert rc == 0
