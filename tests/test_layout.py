"""Block layout index math."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed.layout import BlockLayout
from repro.vmpi.grid import ProcessorGrid


class TestBlockLayout:
    def test_blocks_tile_global_exactly(self, rng):
        shape = (7, 6, 5)
        grid = ProcessorGrid((2, 3, 2))
        layout = BlockLayout(shape, grid)
        coverage = np.zeros(shape, dtype=int)
        for _, coords in grid.iter_ranks():
            coverage[layout.local_slices(coords)] += 1
        np.testing.assert_array_equal(coverage, 1)

    @settings(max_examples=25, deadline=None)
    @given(
        shape=st.lists(st.integers(1, 9), min_size=1, max_size=3),
        seed=st.integers(0, 10**6),
    )
    def test_tiling_property(self, shape, seed):
        rng = np.random.default_rng(seed)
        dims = tuple(int(rng.integers(1, s + 1)) for s in shape)
        grid = ProcessorGrid(dims)
        layout = BlockLayout(shape, grid)
        coverage = np.zeros(tuple(shape), dtype=int)
        for _, coords in grid.iter_ranks():
            coverage[layout.local_slices(coords)] += 1
        np.testing.assert_array_equal(coverage, 1)

    def test_local_shape_matches_slices(self):
        layout = BlockLayout((10, 7), ProcessorGrid((3, 2)))
        for _, coords in layout.grid.iter_ranks():
            sl = layout.local_slices(coords)
            assert layout.local_shape(coords) == tuple(
                s.stop - s.start for s in sl
            )

    def test_max_local_shape(self):
        layout = BlockLayout((10, 7), ProcessorGrid((3, 2)))
        assert layout.max_local_shape() == (4, 4)
        assert layout.max_local_size() == 16

    def test_even_split(self):
        layout = BlockLayout((8, 8), ProcessorGrid((2, 4)))
        assert layout.max_local_shape() == (4, 2)
        for _, coords in layout.grid.iter_ranks():
            assert layout.local_size(coords) == 8

    def test_mode_share(self):
        layout = BlockLayout((10, 7), ProcessorGrid((3, 2)))
        assert layout.mode_share(0) == 4
        assert layout.mode_share(1) == 4

    def test_grid_order_mismatch(self):
        with pytest.raises(ValueError):
            BlockLayout((4, 4, 4), ProcessorGrid((2, 2)))

    def test_coords_order_mismatch(self):
        layout = BlockLayout((4, 4), ProcessorGrid((2, 2)))
        with pytest.raises(ValueError):
            layout.local_slices((0,))

    def test_more_ranks_than_extent(self):
        """Grids larger than a mode produce empty blocks, not errors."""
        layout = BlockLayout((2, 4), ProcessorGrid((4, 1)))
        sizes = [
            layout.local_size(c) for _, c in layout.grid.iter_ranks()
        ]
        assert sorted(sizes) == [0, 0, 4, 4]
