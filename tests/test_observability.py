"""Span profiler, metrics, renderers, and the attribution report.

Certifies the observability contract of the mp layer: profiled runs
are bit-identical to unprofiled ones for every driver, the gathered
``RunProfile`` renders a valid Chrome trace with one lane per rank,
per-rank metrics carry the documented counters/gauges/histograms, a
failed rank ships its partial profile and last open span inside
``RankFailureError``, and the measured-vs-modeled attribution report
stays machine-parseable.
"""

import json
import re
import time

import numpy as np
import pytest

from repro.analysis.attribution import (
    attribution_rows,
    collective_rows,
    format_attribution_report,
    parse_attribution_report,
)
from repro.core.hooi import HOOIOptions
from repro.core.rank_adaptive import RankAdaptiveOptions
from repro.distributed.mp_hooi import mp_hooi_dt, mp_rahosi_dt
from repro.distributed.mp_sthosvd import mp_sthosvd
from repro.observability.profile import RunProfile, validate_chrome_trace
from repro.observability.spans import (
    Histogram,
    RankProfile,
    Span,
    SpanProfiler,
    merge_intervals,
)
from repro.tensor.random import tucker_plus_noise
from repro.vmpi.faults import FaultPlan
from repro.vmpi.mp_comm import (
    CommConfig,
    ProcessComm,
    RankFailureError,
    run_spmd,
)
from repro.vmpi.trace import PHASES, render_lanes

SHAPE, RANKS, GRID = (12, 10, 8), (4, 3, 3), (2, 2, 1)


def _tensor() -> np.ndarray:
    return tucker_plus_noise(SHAPE, RANKS, noise=1e-4, seed=0)


# Module-level SPMD programs (must be picklable).


def _prog_profiled_crash(comm: ProcessComm) -> float:
    prof = comm.profiler
    if prof is not None:
        prof.begin("stuck step", "phase", "ttm")
    comm.phase = "ttm"
    out = np.zeros(4)
    for _ in range(4):
        out = out + comm.allreduce(np.ones(4))
    if prof is not None:
        prof.end()
    return float(out.sum())


def _prog_trivial(comm: ProcessComm) -> float:
    return float(comm.allreduce(np.ones(2)).sum())


class TestSpanProfiler:
    def test_nesting_depth_and_order(self):
        prof = SpanProfiler(rank=0)
        prof.begin("sweep 1", "sweep")
        prof.begin("ttm", "phase", "ttm")
        prof.begin("allreduce", "collective", "ttm")
        prof.end()
        prof.end()
        prof.end()
        cats = [(s.name, s.category, s.depth) for s in prof.spans]
        # Spans close innermost-first; depth is the enclosing count.
        assert cats == [
            ("allreduce", "collective", 2),
            ("ttm", "phase", 1),
            ("sweep 1", "sweep", 0),
        ]
        assert all(s.seconds >= 0 for s in prof.spans)

    def test_end_returns_duration(self):
        prof = SpanProfiler(rank=0)
        prof.begin("k", "kernel")
        time.sleep(0.01)
        dt = prof.end()
        assert dt >= 0.009
        assert prof.spans[0].seconds == dt

    def test_capacity_keeps_earliest_and_counts_drops(self):
        prof = SpanProfiler(rank=0, capacity=3)
        for i in range(5):
            prof.begin(f"s{i}", "kernel")
            prof.end()
        assert [s.name for s in prof.spans] == ["s0", "s1", "s2"]
        assert prof.dropped == 2
        assert prof.rank_profile().dropped == 2

    def test_open_span_reports_innermost(self):
        prof = SpanProfiler(rank=1)
        assert prof.open_span() is None
        prof.begin("sweep 1", "sweep")
        prof.begin("gram", "phase", "gram")
        info = prof.open_span()
        assert info is not None
        assert info["name"] == "gram"
        assert info["phase"] == "gram"
        assert info["open_for"] >= 0
        assert info["wall_start"] == pytest.approx(
            prof.wall_origin + info["start"]
        )

    def test_rank_profile_is_picklable_snapshot(self):
        import pickle

        prof = SpanProfiler(rank=2)
        prof.begin("x", "kernel")
        prof.end()
        prof.metrics.inc("ttm_flops", 10.0)
        prof.metrics.observe("checkpoint_write_seconds", 0.5)
        snap = pickle.loads(pickle.dumps(prof.rank_profile()))
        assert snap.rank == 2
        assert snap.metrics["counters"]["ttm_flops"] == 10.0
        hist = snap.metrics["histograms"]["checkpoint_write_seconds"]
        assert hist["count"] == 1 and hist["total"] == 0.5


class TestHistogramAndIntervals:
    def test_histogram_stats(self):
        h = Histogram()
        for v in (0.5, 1.0, 2.0, 2.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["total"] == 5.5
        assert snap["min"] == 0.5 and snap["max"] == 2.0
        assert sum(snap["buckets"].values()) == 4

    def test_empty_histogram(self):
        assert Histogram().snapshot() == {"count": 0, "total": 0.0}

    def test_merge_intervals_unions_nested(self):
        merged = merge_intervals([(0.0, 2.0), (1.0, 1.5), (3.0, 4.0)])
        assert merged == [(0.0, 2.0), (3.0, 4.0)]

    def test_phase_seconds_is_union_not_sum(self):
        # A nested same-phase span (the mp_subspace_llsv-inside-mp_ttm
        # shape) must not double-count.
        spans = (
            Span("ttm", "phase", "ttm", 0.0, 2.0, 0),
            Span("ttm", "phase", "ttm", 0.5, 1.0, 1),
        )
        p = RankProfile(
            rank=0,
            wall_origin=0.0,
            spans=spans,
            dropped=0,
            metrics={},
        )
        assert p.phase_seconds() == {"ttm": 2.0}
        assert p.phase_intervals() == {"ttm": [(0.0, 2.0)]}


def _profiled_pair(driver):
    """Run ``driver(profile_cfg, sink)`` and ``driver(None, None)``."""
    sink: dict[int, object] = {}
    plain = driver(None, None)
    profiled = driver(CommConfig(profile=True), sink)
    return plain, profiled, sink


class TestBitIdentity:
    def test_mp_hooi_dt(self):
        x = _tensor()
        opts = HOOIOptions(use_dimension_tree=True, max_iters=2, seed=0)

        def drive(cfg, sink):
            return mp_hooi_dt(
                x, RANKS, GRID, opts, comm_config=cfg, profile_out=sink
            )[0]

        plain, profiled, sink = _profiled_pair(drive)
        assert np.array_equal(plain.core, profiled.core)
        assert all(
            np.array_equal(a, b)
            for a, b in zip(plain.factors, profiled.factors)
        )
        assert sorted(sink) == [0, 1, 2, 3]

    def test_mp_rahosi_dt(self):
        x = _tensor()
        opts = RankAdaptiveOptions(
            max_iters=2, use_dimension_tree=True, seed=0
        )

        def drive(cfg, sink):
            return mp_rahosi_dt(
                x,
                0.3,
                (2, 2, 2),
                GRID,
                opts,
                comm_config=cfg,
                profile_out=sink,
            )[0]

        plain, profiled, sink = _profiled_pair(drive)
        assert np.array_equal(plain.core, profiled.core)
        assert all(
            np.array_equal(a, b)
            for a, b in zip(plain.factors, profiled.factors)
        )
        assert sorted(sink) == [0, 1, 2, 3]

    def test_mp_sthosvd(self):
        x = _tensor()

        def drive(cfg, sink):
            return mp_sthosvd(
                x, GRID, ranks=RANKS, comm_config=cfg, profile_out=sink
            )

        plain, profiled, sink = _profiled_pair(drive)
        assert np.array_equal(plain.core, profiled.core)
        assert all(
            np.array_equal(a, b)
            for a, b in zip(plain.factors, profiled.factors)
        )
        assert sorted(sink) == [0, 1, 2, 3]


class TestGatheredProfile:
    @pytest.fixture(scope="class")
    def run(self):
        """One profiled mp_hooi_dt run shared by the render tests."""
        x = _tensor()
        sink: dict[int, object] = {}
        opts = HOOIOptions(use_dimension_tree=True, max_iters=2, seed=0)
        _, stats = mp_hooi_dt(
            x,
            RANKS,
            GRID,
            opts,
            comm_config=CommConfig(profile=True),
            profile_out=sink,
        )
        return RunProfile.from_ranks(sink), stats

    def test_stats_carries_the_profile(self, run):
        _, stats = run
        assert isinstance(stats.profile, RunProfile)
        assert stats.profile.size == 4

    def test_chrome_trace_valid_one_lane_per_rank(self, run):
        profile, _ = run
        trace = profile.chrome_trace()
        validate_chrome_trace(trace)
        json.dumps(trace)  # must be serializable as-is
        tids = {
            e["tid"]
            for e in trace["traceEvents"]
            if e["ph"] == "X"
        }
        assert tids == {0, 1, 2, 3}
        names = {
            e["args"]["name"]
            for e in trace["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
        }
        assert names == {f"rank {r}" for r in range(4)}

    def test_span_vocabulary(self, run):
        profile, _ = run
        p0 = profile.ranks[0]
        cats = {s.category for s in p0.spans}
        assert cats == {"sweep", "phase", "kernel", "collective"}
        assert {s.phase for s in p0.spans if s.phase} <= PHASES
        sweeps = [s.name for s in p0.by_category("sweep")]
        assert sweeps.count("sweep 1") == 1
        assert sweeps.count("sweep 2") == 1

    def test_metrics_presence(self, run):
        profile, _ = run
        payload = profile.metrics()
        assert sorted(payload["ranks"]) == ["0", "1", "2", "3"]
        for rank_metrics in payload["ranks"].values():
            assert rank_metrics["spans"] > 0
            assert rank_metrics["counters"]["ttm_flops"] > 0
            gauges = rank_metrics["gauges"]
            for name in (
                "ttm_count",
                "cache_hits",
                "cache_misses",
                "cache_evictions",
                "sent_bytes",
                "recv_bytes",
            ):
                assert name in gauges
            hists = rank_metrics["histograms"]
            assert hists["collective_wait_seconds"]["count"] > 0
            assert hists["collective_transfer_seconds"]["count"] > 0

    def test_timeline_renders_rank_lanes(self, run):
        profile, _ = run
        text = profile.timeline()
        assert "rank 0" in text and "rank 3" in text
        assert "measured s" in text

    def test_attribution_report_round_trip(self, run):
        profile, _ = run
        report = format_attribution_report(profile)
        rows = parse_attribution_report(report)
        assert {r["phase"] for r in rows} >= {"ttm", "llsv"}
        for row in rows:
            float(row["measured mean s"])
            float(row["imbalance"])
            float(row["critical path s"])
        assert collective_rows(profile)

    def test_checkpoint_write_histogram(self, tmp_path):
        x = _tensor()
        sink: dict[int, object] = {}
        opts = HOOIOptions(use_dimension_tree=True, max_iters=2, seed=0)
        mp_hooi_dt(
            x,
            RANKS,
            GRID,
            opts,
            comm_config=CommConfig(profile=True),
            checkpoint_path=str(tmp_path / "ck.npz"),
            profile_out=sink,
        )
        hists = sink[0].metrics["histograms"]
        assert hists["checkpoint_write_seconds"]["count"] >= 1


class TestFailurePath:
    def test_failed_rank_ships_partial_profile(self):
        cfg = CommConfig(
            profile=True,
            fault_plan=FaultPlan.kill(1, op_index=2, hard=False),
        )
        with pytest.raises(RankFailureError) as exc_info:
            run_spmd(_prog_profiled_crash, 4, config=cfg, timeout=60.0)
        err = exc_info.value
        assert 1 in err.profiles
        partial = err.profiles[1]
        assert partial.open_span is not None
        assert partial.open_span["name"] == "stuck step"
        assert partial.open_span["phase"] == "ttm"
        assert "last open span" in str(err)
        assert "'stuck step'" in str(err)

    def test_profile_requires_p2p(self):
        with pytest.raises(ValueError, match="p2p"):
            run_spmd(
                _prog_trivial,
                2,
                transport="star",
                config=CommConfig(profile=True),
                timeout=30.0,
            )


class TestAttributionSynthetic:
    @staticmethod
    def _profile() -> RunProfile:
        def rank(r: int, ttm: float, llsv: float) -> RankProfile:
            return RankProfile(
                rank=r,
                wall_origin=100.0 + r,
                spans=(
                    Span("ttm", "phase", "ttm", 0.0, ttm, 0),
                    Span(
                        "allreduce", "collective", "ttm", 0.1, ttm / 2, 1
                    ),
                    Span("llsv", "phase", "llsv", ttm, llsv, 0),
                ),
                dropped=0,
                metrics={
                    "counters": {},
                    "gauges": {},
                    "histograms": {
                        "collective_wait_seconds": {
                            "count": 1,
                            "total": 0.3,
                        },
                        "collective_transfer_seconds": {
                            "count": 1,
                            "total": 0.1,
                        },
                    },
                },
            )

        return RunProfile([rank(0, 1.0, 1.0), rank(1, 3.0, 1.0)])

    def test_rows_imbalance_and_critical_path(self):
        rows = {
            r.phase: r for r in attribution_rows(self._profile())
        }
        ttm = rows["ttm"]
        assert ttm.mean_s == pytest.approx(2.0)
        assert ttm.max_s == pytest.approx(3.0)
        assert ttm.imbalance == pytest.approx(1.5)
        # One instance per rank; the slowest rank took 3s.
        assert ttm.critical_path_s == pytest.approx(3.0)
        assert ttm.model_s is None and ttm.flag == ""

    def test_divergence_flag_on_shares(self):
        # Measured shares: ttm 2/3, llsv 1/3.  Modeled shares: ttm
        # 0.1 (ratio 6.7 -> divergent), llsv 0.4 (ratio 1.2 ->
        # clean); the core_comm charge has no measured row and only
        # feeds the model total.
        model = {"ttm": 1.0, "gram": 4.0, "core_comm": 5.0}
        rows = {
            r.phase: r
            for r in attribution_rows(self._profile(), model)
        }
        assert rows["ttm"].flag == "DIVERGENT"
        assert rows["llsv"].flag == ""

    def test_report_round_trip_with_model(self):
        model = {"ttm": 1.0, "gram": 1.0}
        report = format_attribution_report(
            self._profile(), model, model_label="dist_hooi"
        )
        assert "model: dist_hooi" in report
        assert "blocked wait" in report
        rows = parse_attribution_report(report)
        assert {r["phase"] for r in rows} == {"ttm", "llsv"}

    def test_parse_rejects_reportless_text(self):
        with pytest.raises(ValueError):
            parse_attribution_report("nothing to see here")


class TestChromeTraceValidation:
    def test_rejects_malformed(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": []})
        with pytest.raises(ValueError):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "Z", "name": "x"}]}
            )

    def test_empty_run_profile_rejected(self):
        with pytest.raises(ValueError):
            RunProfile([])


class TestMismatchHardening:
    """Model/profile phase mismatches stay visible and parseable.

    Regressions for the attribution hardening: ledger phases no
    measured phase covers surface as ``MODEL-ONLY`` rows instead of
    silently dropping model time, the parser names the exact corrupt
    cell, and the shared timeline renderer tolerates the degenerate
    lane sets a crashed rank's partial profile produces.
    """

    def test_model_only_rows_for_uncovered_model_phases(self):
        profile = TestAttributionSynthetic._profile()
        # Measured phases are {ttm, llsv}; neither maps to the core
        # charges, so both must appear as zero-measured rows.
        model = {"ttm": 1.0, "core": 2.0, "core_comm": 5.0}
        rows = {r.phase: r for r in attribution_rows(profile, model)}
        for phase in ("core", "core_comm"):
            assert rows[phase].flag == "MODEL-ONLY"
            assert rows[phase].mean_s == 0.0
            assert rows[phase].measured_share == 0.0
        assert rows["core"].model_s == pytest.approx(2.0)
        report = format_attribution_report(profile, model)
        parsed = parse_attribution_report(report)
        flags = {r["phase"]: r["flag"] for r in parsed}
        assert flags["core"] == "MODEL-ONLY"
        assert flags["core_comm"] == "MODEL-ONLY"

    def test_zero_model_charges_not_surfaced(self):
        profile = TestAttributionSynthetic._profile()
        rows = attribution_rows(profile, {"ttm": 1.0, "core": 0.0})
        assert "core" not in {r.phase for r in rows}

    def test_parse_names_the_corrupt_cell(self):
        report = format_attribution_report(
            TestAttributionSynthetic._profile()
        )
        lines = report.splitlines()
        head = next(
            i for i, l in enumerate(lines) if l.startswith("phase  ")
        )
        lines[head + 2] = re.sub(r"\d", "x", lines[head + 2])
        with pytest.raises(ValueError, match="neither numeric nor"):
            parse_attribution_report("\n".join(lines))

    def test_render_lanes_degenerate_inputs(self):
        assert render_lanes([]) == "(no events)"
        assert render_lanes([("r0", [])]) == "(no events)"
        assert (
            render_lanes([("r0", [(0.0, 0.0)])])
            == "(zero-duration trace)"
        )

    def test_render_lanes_clamps_negative_start(self):
        # A truncated partial profile can carry an interval starting
        # before the shared origin: render the visible part, never
        # wrap around via negative indices.
        out = render_lanes(
            [("r0", [(-0.5, 0.2)]), ("r1", [(0.0, 1.0)])], width=10
        )
        lane = next(
            l for l in out.splitlines() if l.startswith("r0")
        )
        bar = lane.split("|")[1]
        assert bar[0] == "#"
        assert "#" not in bar[5:]
