"""Real process-parallel mini-MPI and process-parallel STHOSVD.

The ``TestRunSPMD`` cases take the ``backend`` fixture (conftest) and
run once per transport wire — pooled shared memory and TCP sockets —
so the core collective semantics, subgrouping, failure surfacing, and
timeout plumbing are certified on both.  ``TestTimeoutHygiene``'s shm
segment-release test stays shm-only by construction (it inspects the
pool internals)."""

import time

import numpy as np
import pytest

from repro.core.sthosvd import sthosvd
from repro.distributed.mp_sthosvd import mp_sthosvd
from repro.tensor.random import tucker_plus_noise
from repro.vmpi.mp_comm import ProcessComm, run_spmd

# Module-level SPMD programs (must be picklable).


def _prog_allreduce(comm: ProcessComm) -> float:
    block = np.full((2, 2), float(comm.rank + 1))
    total = comm.allreduce(block)
    return float(total[0, 0])


def _prog_reduce_scatter(comm: ProcessComm) -> np.ndarray:
    block = np.arange(8.0) + comm.rank
    return comm.reduce_scatter(block, axis=0)


def _prog_allgather(comm: ProcessComm) -> np.ndarray:
    return comm.allgather(np.array([float(comm.rank)]), axis=0)


def _prog_bcast(comm: ProcessComm) -> float:
    payload = np.array([42.0]) if comm.rank == 1 else None
    return float(comm.bcast(payload, root=1)[0])


def _prog_gather(comm: ProcessComm) -> int:
    out = comm.gather(np.array([comm.rank]), root=0)
    if comm.rank == 0:
        return sum(int(b[0]) for b in out)
    assert out is None
    return -1


def _prog_subgroup(comm: ProcessComm) -> float:
    # Two disjoint groups: even and odd ranks.
    group = tuple(
        r for r in range(comm.size) if r % 2 == comm.rank % 2
    )
    total = comm.allreduce(np.array([1.0]), group=group)
    return float(total[0])


def _prog_fail(comm: ProcessComm) -> None:
    if comm.rank == 1:
        raise ValueError("boom")


def _prog_config_timeout(comm: ProcessComm) -> float:
    return float(comm.config.collective_timeout)


def _prog_timeout_purge(comm: ProcessComm) -> dict:
    """Rank 0 parks shm segments (pooled + in-flight) and then times
    out on a recv that never comes; the exception path must unlink all
    of them."""
    import glob

    from repro.vmpi.mp_comm import CollectiveTimeoutError

    big = np.full(80_000, float(comm.rank))  # 640 KB -> shm path
    if comm.rank == 0:
        # One segment that completes the round trip (lands in the free
        # pool once the ack returns) and one that stays in flight.
        comm.send(1, big, tag=0)
        comm.send(1, big, tag=1)
        comm.recv(1, tag=0)  # ack for tag 0 definitely processed
        owned_before = len(comm._t._owned)
        timed_out = False
        try:
            comm.recv(1, tag=99)  # never sent
        except CollectiveTimeoutError:
            timed_out = True
        leftover = glob.glob(f"/dev/shm/mpx{comm._t._run_token}r0*")
        return {
            "timed_out": timed_out,
            "owned_before": owned_before,
            "owned_after": len(comm._t._owned),
            "leftover": leftover,
        }
    got0 = comm.recv(0, tag=0)
    got1 = comm.recv(0, tag=1)
    comm.send(0, np.array([1.0]), tag=0)
    # Stay alive past rank 0's timeout so queues do not tear down early.
    time.sleep(2.5)
    return {"sum": float(got0[0] + got1[0])}


class TestRunSPMD:
    def test_allreduce(self, backend):
        out = run_spmd(_prog_allreduce, 3, transport=backend)
        assert out == [6.0, 6.0, 6.0]  # 1+2+3

    def test_reduce_scatter(self, backend):
        out = run_spmd(_prog_reduce_scatter, 2, transport=backend)
        total = np.arange(8.0) * 2 + 1  # rank0 + rank1
        np.testing.assert_allclose(out[0], total[:4])
        np.testing.assert_allclose(out[1], total[4:])

    def test_allgather(self, backend):
        out = run_spmd(_prog_allgather, 3, transport=backend)
        for o in out:
            np.testing.assert_array_equal(o, [0.0, 1.0, 2.0])

    def test_bcast(self, backend):
        out = run_spmd(_prog_bcast, 3, transport=backend)
        assert out == [42.0, 42.0, 42.0]

    def test_gather(self, backend):
        out = run_spmd(_prog_gather, 3, transport=backend)
        assert out[0] == 0 + 1 + 2
        assert out[1] == out[2] == -1

    def test_disjoint_subgroups(self, backend):
        out = run_spmd(_prog_subgroup, 4, transport=backend)
        assert out == [2.0, 2.0, 2.0, 2.0]

    def test_single_rank(self, backend):
        assert run_spmd(_prog_allreduce, 1, transport=backend) == [1.0]

    def test_worker_failure_surfaced(self, backend):
        with pytest.raises(RuntimeError, match="boom"):
            run_spmd(_prog_fail, 2, transport=backend)

    def test_failure_carries_remote_traceback_and_rank_sets(self, backend):
        from repro.vmpi.mp_comm import RankFailureError

        with pytest.raises(RankFailureError) as ei:
            run_spmd(_prog_fail, 2, transport=backend)
        err = ei.value
        assert err.failed_ranks == (1,)
        assert 1 not in err.succeeded_ranks
        msg = str(err)
        assert "rank 1 failed" in msg
        assert "ValueError('boom')" in msg
        # the *remote* frame, not the launcher's
        assert "rank 1 remote traceback" in msg
        assert "_prog_fail" in msg
        assert 'raise ValueError("boom")' in msg

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            run_spmd(_prog_allreduce, 0)


class TestTimeoutHygiene:
    def test_collective_timeout_configurable(self, backend):
        out = run_spmd(
            _prog_config_timeout,
            2,
            transport=backend,
            collective_timeout=7.5,
        )
        assert out == [7.5, 7.5]

    def test_config_object_timeout(self):
        from repro.vmpi.mp_comm import CommConfig

        out = run_spmd(
            _prog_config_timeout, 2, config=CommConfig(collective_timeout=9.0)
        )
        assert out == [9.0, 9.0]

    def test_shorthand_overrides_config(self):
        from repro.vmpi.mp_comm import CommConfig

        out = run_spmd(
            _prog_config_timeout,
            2,
            config=CommConfig(collective_timeout=9.0),
            collective_timeout=3.0,
        )
        assert out == [3.0, 3.0]

    def test_timeout_releases_shm_segments(self):
        """A timed-out rank unlinks every pooled and in-flight segment
        it owns — no ``/dev/shm`` leak for embedders that drive the
        transport without ``run_spmd``'s run-token sweep."""
        out = run_spmd(_prog_timeout_purge, 2, collective_timeout=1.0)
        report = out[0]
        assert report["timed_out"]
        assert report["owned_before"] >= 1  # segments were actually parked
        assert report["owned_after"] == 0
        assert report["leftover"] == []
        assert out[1]["sum"] == 0.0  # rank 1 received both payloads


class TestMPSTHOSVD:
    @pytest.mark.parametrize("dims", [(1, 1, 1), (2, 2, 1), (2, 1, 2)])
    def test_matches_sequential(self, dims, backend):
        x = tucker_plus_noise((14, 12, 10), (3, 3, 2), noise=1e-4, seed=0)
        seq, _ = sthosvd(x, ranks=(3, 3, 2))
        par = mp_sthosvd(x, dims, ranks=(3, 3, 2), transport=backend)
        assert par.ranks == seq.ranks
        assert par.relative_error(x) == pytest.approx(
            seq.relative_error(x), rel=1e-8
        )

    def test_error_specified(self):
        x = tucker_plus_noise((14, 12, 10), (3, 3, 2), noise=1e-4, seed=1)
        par = mp_sthosvd(x, (2, 1, 2), eps=0.01)
        assert par.ranks == (3, 3, 2)
        assert par.relative_error(x) <= 0.01

    def test_validation(self):
        x = np.zeros((4, 4, 4))
        with pytest.raises(ValueError):
            mp_sthosvd(x, (1, 1, 1))
        with pytest.raises(ValueError):
            mp_sthosvd(x, (1, 1), ranks=(2, 2, 2))
