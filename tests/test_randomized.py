"""Randomized range finder baseline."""

import numpy as np
import pytest

from repro.linalg.randomized import randomized_range_finder


def _lowrank(m, n, r, seed=0, noise=1e-8):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, r)) @ rng.standard_normal((r, n))
    return a + noise * rng.standard_normal((m, n))


class TestRangeFinder:
    def test_orthonormal(self):
        q = randomized_range_finder(_lowrank(20, 30, 4), 4, seed=0)
        np.testing.assert_allclose(q.T @ q, np.eye(4), atol=1e-10)

    def test_captures_range(self):
        a = _lowrank(25, 40, 5)
        q = randomized_range_finder(a, 5, seed=1)
        residual = a - q @ (q.T @ a)
        assert np.linalg.norm(residual) < 1e-5 * np.linalg.norm(a)

    def test_power_iterations_help_on_flat_spectrum(self):
        rng = np.random.default_rng(2)
        u, _ = np.linalg.qr(rng.standard_normal((40, 40)))
        v, _ = np.linalg.qr(rng.standard_normal((40, 40)))
        s = np.concatenate([np.full(5, 10.0), np.full(35, 3.0)])
        a = u @ np.diag(s) @ v.T

        def err(p):
            q = randomized_range_finder(
                a, 5, oversample=0, power_iters=p, seed=3
            )
            return np.linalg.norm(a - q @ (q.T @ a))

        assert err(4) < err(0)

    def test_rank_capped_at_rows(self):
        q = randomized_range_finder(_lowrank(4, 30, 3), 10, seed=4)
        assert q.shape == (4, 4)

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            randomized_range_finder(_lowrank(5, 5, 2), 0)

    def test_deterministic_with_seed(self):
        a = _lowrank(10, 12, 3, seed=5)
        q1 = randomized_range_finder(a, 3, seed=6)
        q2 = randomized_range_finder(a, 3, seed=6)
        np.testing.assert_array_equal(q1, q2)
