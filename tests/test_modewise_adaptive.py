"""Mode-wise rank-adaptive HOOI (Xiao-Yang ablation)."""

import pytest

from repro.core.errors import ConfigError
from repro.core.modewise_adaptive import (
    ModewiseOptions,
    modewise_adaptive_hooi,
)
from repro.tensor.random import tucker_plus_noise


class TestOptions:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ModewiseOptions(max_iters=0)
        with pytest.raises(ConfigError):
            ModewiseOptions(slack=0)


class TestModewise:
    def test_meets_tolerance(self, lowrank4):
        tucker, stats = modewise_adaptive_hooi(
            lowrank4, 0.01, (4, 5, 3, 4)
        )
        assert stats.converged
        assert tucker.relative_error(lowrank4) <= 0.01 * (1 + 1e-6)

    def test_contracts_overestimated_ranks(self, lowrank4):
        tucker, stats = modewise_adaptive_hooi(
            lowrank4, 0.01, (6, 7, 5, 6)
        )
        # Per-mode spectra reveal the true ranks immediately.
        assert tucker.ranks == (3, 4, 2, 3)

    def test_expands_underestimated_ranks(self, lowrank4):
        tucker, stats = modewise_adaptive_hooi(
            lowrank4, 0.001, (2, 2, 2, 2), ModewiseOptions(max_iters=8)
        )
        assert stats.converged
        assert any(r > 2 for r in tucker.ranks)

    def test_rank_one_start_cannot_expand(self, lowrank4):
        """Documented limitation: a mode's rank is capped by the product
        of the other modes' ranks, so an all-ones start is stuck at
        rank one in every mode (Alg. 3's alpha-growth is not)."""
        tucker, stats = modewise_adaptive_hooi(
            lowrank4, 0.001, (1, 1, 1, 1), ModewiseOptions(max_iters=4)
        )
        assert tucker.ranks == (1, 1, 1, 1)
        assert not stats.converged

    def test_rank_history_tracked(self, lowrank4):
        _, stats = modewise_adaptive_hooi(lowrank4, 0.01, (4, 5, 3, 4))
        assert len(stats.rank_history) == stats.iterations
        assert len(stats.errors) == stats.iterations

    def test_invalid_eps(self, lowrank4):
        with pytest.raises(ConfigError):
            modewise_adaptive_hooi(lowrank4, 0.0, (2, 2, 2, 2))

    def test_greedy_never_beats_cross_mode_truncation(self):
        """The paper's §5 claim quantified: RA-HOSI-DT's cross-mode
        core analysis finds storage at least as small as the per-mode
        greedy strategy on an anisotropic-spectrum tensor."""
        from repro.core.rank_adaptive import (
            RankAdaptiveOptions,
            rank_adaptive_hooi,
        )

        x = tucker_plus_noise(
            (30, 24, 18), (6, 4, 3), noise=0.05, seed=5
        )
        eps = 0.15
        mw_t, mw_s = modewise_adaptive_hooi(x, eps, (6, 4, 3))
        ra_t, ra_s = rank_adaptive_hooi(
            x, eps, (6, 4, 3),
            RankAdaptiveOptions(max_iters=3, stop_at_threshold=False),
        )
        assert mw_s.converged and ra_s.converged
        assert ra_t.storage_size() <= mw_t.storage_size() * 1.05
