"""Processor grids and grid suggestion heuristics."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vmpi.grid import ProcessorGrid, candidate_grids, suggested_grids


class TestProcessorGrid:
    def test_size(self):
        assert ProcessorGrid((2, 3, 4)).size == 24

    def test_coords_rank_roundtrip(self):
        g = ProcessorGrid((2, 3, 4))
        seen = set()
        for r in range(g.size):
            c = g.coords(r)
            assert g.rank(c) == r
            seen.add(c)
        assert len(seen) == g.size

    @settings(max_examples=25, deadline=None)
    @given(
        dims=st.lists(st.integers(1, 4), min_size=1, max_size=4),
        r_seed=st.integers(0, 10**6),
    )
    def test_bijection_property(self, dims, r_seed):
        g = ProcessorGrid(dims)
        r = r_seed % g.size
        assert g.rank(g.coords(r)) == r

    def test_rank_out_of_range(self):
        g = ProcessorGrid((2, 2))
        with pytest.raises(ValueError):
            g.coords(4)
        with pytest.raises(ValueError):
            g.rank((2, 0))
        with pytest.raises(ValueError):
            g.rank((0,))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            ProcessorGrid(())
        with pytest.raises(ValueError):
            ProcessorGrid((2, 0))

    def test_mode_comm_ranks(self):
        g = ProcessorGrid((2, 3))
        ranks = g.mode_comm_ranks(1, (1, 0))
        assert ranks == [g.rank((1, c)) for c in range(3)]
        # Sub-communicators partition the ranks.
        all_comms = [
            tuple(g.mode_comm_ranks(1, (i, 0))) for i in range(2)
        ]
        flat = [r for comm in all_comms for r in comm]
        assert sorted(flat) == list(range(6))

    def test_mode_size(self):
        g = ProcessorGrid((2, 3, 4))
        assert [g.mode_size(j) for j in range(3)] == [2, 3, 4]

    def test_iter_ranks(self):
        g = ProcessorGrid((2, 2))
        items = list(g.iter_ranks())
        assert len(items) == 4
        assert items[0] == (0, (0, 0))


class TestCandidateGrids:
    def test_all_products_correct(self):
        for g in candidate_grids(12, 3):
            assert math.prod(g) == 12

    def test_exhaustive_count(self):
        # Ordered factorizations of 8 = 2^3 into 2 slots: (1,8),(2,4),
        # (4,2),(8,1) -> 4.
        assert len(candidate_grids(8, 2)) == 4

    def test_p_one(self):
        assert candidate_grids(1, 3) == [(1, 1, 1)]

    def test_invalid(self):
        with pytest.raises(ValueError):
            candidate_grids(0, 2)


class TestSuggestedGrids:
    @pytest.mark.parametrize("p", [1, 2, 16, 128, 4096])
    @pytest.mark.parametrize("d", [3, 4, 5])
    def test_products(self, p, d):
        for g in suggested_grids(p, d):
            assert math.prod(g) == p

    def test_includes_p1_equals_1(self):
        grids = suggested_grids(64, 3)
        assert any(g[0] == 1 for g in grids)

    def test_includes_p1_pd_equals_1(self):
        grids = suggested_grids(64, 4)
        assert any(g[0] == 1 and g[-1] == 1 for g in grids)

    def test_shape_filter(self):
        # Mode extents of 2 cannot host 64 ranks.
        grids = suggested_grids(64, 3, shape=(2, 2, 4096))
        for g in grids:
            assert all(gj <= nj for gj, nj in zip(g, (2, 2, 4096)))
        assert grids  # never empty

    def test_fallback_when_all_filtered(self):
        grids = suggested_grids(7, 3, shape=(2, 2, 100))
        assert grids
        assert all(math.prod(g) in (7,) or max(g) <= 100 for g in grids)

    def test_nontrivial_factorization_of_odd_p(self):
        for g in suggested_grids(12, 3):
            assert math.prod(g) == 12
