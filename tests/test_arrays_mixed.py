"""Symbolic/concrete dispatch helpers, including mixed operands."""

import numpy as np
import pytest

from repro.distributed.arrays import (
    SymbolicArray,
    any_contract,
    any_gram,
    any_shape,
    any_ttm,
    is_concrete,
)


class TestIsConcrete:
    def test_ndarray(self):
        assert is_concrete(np.zeros((2, 2)))

    def test_symbolic(self):
        assert not is_concrete(SymbolicArray((2, 2)))


class TestAnyTTM:
    def test_concrete_path(self, small3, rng):
        u = rng.standard_normal((small3.shape[0], 2))
        out = any_ttm(small3, u, 0, transpose=True)
        assert isinstance(out, np.ndarray)
        assert out.shape == (2,) + small3.shape[1:]

    def test_symbolic_path(self):
        x = SymbolicArray((8, 7, 6))
        u = SymbolicArray((7, 3))
        out = any_ttm(x, u, 1, transpose=True)
        assert isinstance(out, SymbolicArray)
        assert out.shape == (8, 3, 6)

    def test_mixed_concrete_tensor_symbolic_factor(self, small3):
        """Mixing falls through to shape propagation — no crash, and
        the shape math still validates."""
        u = SymbolicArray((small3.shape[0], 2))
        out = any_ttm(small3, u, 0, transpose=True)
        assert isinstance(out, SymbolicArray)
        assert out.shape == (2,) + small3.shape[1:]

    def test_symbolic_shape_mismatch(self):
        x = SymbolicArray((8, 7, 6))
        u = SymbolicArray((5, 3))
        with pytest.raises(ValueError):
            any_ttm(x, u, 1, transpose=True)

    def test_untransposed_symbolic(self):
        x = SymbolicArray((8, 7, 6))
        u = SymbolicArray((9, 8))
        out = any_ttm(x, u, 0)
        assert out.shape == (9, 7, 6)


class TestAnyGramContract:
    def test_gram_symbolic(self):
        g = any_gram(SymbolicArray((8, 7, 6)), 1)
        assert g.shape == (7, 7)

    def test_gram_concrete(self, small3):
        g = any_gram(small3, 0)
        assert isinstance(g, np.ndarray)

    def test_contract_symbolic(self):
        a = SymbolicArray((8, 7, 6))
        b = SymbolicArray((3, 7, 6))
        z = any_contract(a, b, 0)
        assert z.shape == (8, 3)

    def test_any_shape(self, small3):
        assert any_shape(small3) == small3.shape
        assert any_shape(SymbolicArray((2, 3))) == (2, 3)


def test_hooi_tol_subspace_stop(lowrank3):
    from repro.core.hooi import HOOIOptions, hooi

    # The threshold sits above the converged subspace-movement noise
    # floor (~1e-8 on this problem — the exact level depends on BLAS
    # accumulation order, so 1e-8 itself is knife-edged) but far below
    # the ~1e-5 movement of the still-converging second iteration: the
    # stop must trigger on subspace stagnation, well before max_iters.
    opts = HOOIOptions(max_iters=30, tol_subspace=1e-7, seed=0)
    _, stats = hooi(lowrank3, (4, 3, 5), opts)
    assert stats.converged
    assert stats.iterations < 30
