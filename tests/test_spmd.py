"""Ground-truth SPMD execution on per-rank blocks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sthosvd import sthosvd
from repro.distributed.spmd import (
    gather_tensor,
    scatter_tensor,
    spmd_gram,
    spmd_multi_ttm,
    spmd_sthosvd,
    spmd_ttm,
    subcomm_apply,
)
from repro.tensor.ops import gram, multi_ttm, ttm
from repro.vmpi.collectives import allreduce_blocks
from repro.vmpi.grid import ProcessorGrid


class TestScatterGather:
    def test_roundtrip(self, small4):
        grid = ProcessorGrid((2, 1, 3, 1))
        blocks, layout = scatter_tensor(small4, grid)
        np.testing.assert_array_equal(
            gather_tensor(blocks, layout), small4
        )

    def test_blocks_are_copies(self, small3):
        grid = ProcessorGrid((2, 1, 1))
        blocks, _ = scatter_tensor(small3, grid)
        blocks[0][...] = 0
        assert not np.allclose(small3[:3], 0)


class TestSubcommApply:
    def test_identity(self, small3):
        grid = ProcessorGrid((2, 2, 1))
        blocks, _ = scatter_tensor(small3, grid)
        out = subcomm_apply(blocks, grid, 0, lambda bs: [b + 0 for b in bs])
        for a, b in zip(out, blocks):
            np.testing.assert_array_equal(a, b)

    def test_allreduce_within_subcomm_only(self, rng):
        grid = ProcessorGrid((2, 2))
        # All blocks same shape so allreduce works per column comm.
        blocks = [rng.standard_normal((3, 3)) for _ in range(4)]
        out = subcomm_apply(blocks, grid, 0, allreduce_blocks)
        # Sub-communicators along mode 0 hold ranks {(0,c),(1,c)}.
        for c in range(2):
            r0, r1 = grid.rank((0, c)), grid.rank((1, c))
            expected = blocks[r0] + blocks[r1]
            np.testing.assert_allclose(out[r0], expected)
            np.testing.assert_allclose(out[r1], expected)

    def test_size_change_rejected(self, small3):
        grid = ProcessorGrid((2, 1, 1))
        blocks, _ = scatter_tensor(small3, grid)
        with pytest.raises(ValueError):
            subcomm_apply(blocks, grid, 0, lambda bs: bs[:1])


class TestSPMDTTM:
    @pytest.mark.parametrize("dims", [(1, 1, 1), (2, 1, 1), (2, 1, 3)])
    def test_matches_sequential(self, small3, rng, dims):
        u = rng.standard_normal((small3.shape[0], 4))
        grid = ProcessorGrid(dims)
        blocks, layout = scatter_tensor(small3, grid)
        out_blocks, out_layout = spmd_ttm(blocks, layout, u, 0)
        got = gather_tensor(out_blocks, out_layout)
        np.testing.assert_allclose(
            got, ttm(small3, u, 0, transpose=True), atol=1e-11
        )

    def test_every_mode(self, small4, rng):
        grid = ProcessorGrid((2, 2, 1, 2))
        for mode in range(4):
            u = rng.standard_normal((small4.shape[mode], 2))
            blocks, layout = scatter_tensor(small4, grid)
            out_blocks, out_layout = spmd_ttm(blocks, layout, u, mode)
            np.testing.assert_allclose(
                gather_tensor(out_blocks, out_layout),
                ttm(small4, u, mode, transpose=True),
                atol=1e-11,
            )

    def test_untransposed_decompression(self, small3, rng):
        u = rng.standard_normal((9, small3.shape[1]))
        grid = ProcessorGrid((1, 2, 2))
        blocks, layout = scatter_tensor(small3, grid)
        out_blocks, out_layout = spmd_ttm(
            blocks, layout, u, 1, transpose=False
        )
        np.testing.assert_allclose(
            gather_tensor(out_blocks, out_layout),
            ttm(small3, u, 1),
            atol=1e-11,
        )

    def test_multi_ttm(self, small4, rng):
        mats = [rng.standard_normal((n, 2)) for n in small4.shape]
        grid = ProcessorGrid((2, 1, 3, 1))
        blocks, layout = scatter_tensor(small4, grid)
        out_blocks, out_layout = spmd_multi_ttm(
            blocks, layout, mats, skip=2
        )
        ref = multi_ttm(small4, mats, transpose=True, skip=2)
        np.testing.assert_allclose(
            gather_tensor(out_blocks, out_layout), ref, atol=1e-11
        )


class TestSPMDGram:
    @pytest.mark.parametrize("dims", [(1, 1, 1), (2, 2, 1), (3, 2, 2)])
    def test_matches_sequential(self, small3, dims):
        grid = ProcessorGrid(dims)
        blocks, layout = scatter_tensor(small3, grid)
        for mode in range(3):
            got = spmd_gram(blocks, layout, mode)
            np.testing.assert_allclose(
                got, gram(small3, mode), atol=1e-10
            )

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 10**6))
    def test_gram_property(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((5, 6, 4))
        dims = tuple(int(rng.integers(1, 3)) for _ in range(3))
        grid = ProcessorGrid(dims)
        blocks, layout = scatter_tensor(x, grid)
        mode = int(rng.integers(0, 3))
        np.testing.assert_allclose(
            spmd_gram(blocks, layout, mode), gram(x, mode), atol=1e-10
        )


class TestSPMDSTHOSVD:
    @pytest.mark.parametrize(
        "dims", [(1, 1, 1, 1), (2, 2, 1, 1), (1, 2, 2, 2), (4, 1, 1, 1)]
    )
    def test_matches_sequential(self, lowrank4, dims):
        seq, _ = sthosvd(lowrank4, ranks=(3, 4, 2, 3))
        spmd = spmd_sthosvd(lowrank4, dims, ranks=(3, 4, 2, 3))
        assert spmd.ranks == seq.ranks
        assert spmd.relative_error(lowrank4) == pytest.approx(
            seq.relative_error(lowrank4), rel=1e-6
        )
        # Same subspaces mode by mode.
        for a, b in zip(seq.factors, spmd.factors):
            np.testing.assert_allclose(a @ a.T, b @ b.T, atol=1e-7)

    def test_error_specified(self, lowrank4):
        spmd = spmd_sthosvd(lowrank4, (1, 2, 1, 2), eps=0.01)
        assert spmd.ranks == (3, 4, 2, 3)
        assert spmd.relative_error(lowrank4) <= 0.01

    def test_matches_cost_simulated_numerics(self, lowrank4):
        """SPMD ground truth vs the semantically-global simulator."""
        from repro.distributed.sthosvd import dist_sthosvd

        sim, _ = dist_sthosvd(lowrank4, (2, 2, 1, 1), ranks=(3, 4, 2, 3))
        spmd = spmd_sthosvd(lowrank4, (2, 2, 1, 1), ranks=(3, 4, 2, 3))
        np.testing.assert_allclose(
            np.abs(sim.core), np.abs(spmd.core), atol=1e-7
        )

    def test_needs_spec(self, lowrank4):
        with pytest.raises(ValueError):
            spmd_sthosvd(lowrank4, (1, 1, 1, 1))

    def test_grid_order(self, lowrank4):
        with pytest.raises(ValueError):
            spmd_sthosvd(lowrank4, (1, 1), ranks=(3, 4, 2, 3))
