"""Machine model: roofline, node packing, kernel timings."""

import pytest

from repro.vmpi.machine import MachineModel, perlmutter_like


class TestNodes:
    def test_single_node(self):
        m = MachineModel(cores_per_node=128)
        assert m.nodes(1) == 1
        assert m.nodes(128) == 1

    def test_multi_node(self):
        m = MachineModel(cores_per_node=128)
        assert m.nodes(129) == 2
        assert m.nodes(4096) == 32


class TestBandwidthPerRank:
    def test_decreases_within_node(self):
        m = MachineModel()
        assert m.bw_per_rank(1) > m.bw_per_rank(64) > m.bw_per_rank(128)

    def test_constant_across_full_nodes(self):
        """Fully packed nodes give every rank the same share — aggregate
        bandwidth grows with node count (the multi-node scaling
        resumption of §4.1)."""
        m = MachineModel(cores_per_node=128)
        assert m.bw_per_rank(128) == pytest.approx(m.bw_per_rank(256))
        assert m.bw_per_rank(128) == pytest.approx(m.bw_per_rank(4096))


class TestComputeSeconds:
    def test_compute_bound(self):
        m = MachineModel(flop_rate=1e9, node_mem_bw=1e12)
        assert m.compute_seconds(1e9, 10.0, 1) == pytest.approx(1.0)

    def test_memory_bound(self):
        m = MachineModel(flop_rate=1e12, node_mem_bw=1e9, cores_per_node=1)
        assert m.compute_seconds(10.0, 1e9, 1) == pytest.approx(1.0)

    def test_memory_bound_kernel_does_not_scale_within_node(self):
        """A bandwidth-bound kernel's per-rank time stays ~constant as
        ranks share the node (total work / node bandwidth)."""
        m = MachineModel(flop_rate=1e15, node_mem_bw=1e9, cores_per_node=128)
        words_total = 1e9
        t1 = m.compute_seconds(0, words_total / 1, 1)
        t64 = m.compute_seconds(0, words_total / 64, 64)
        assert t64 == pytest.approx(t1, rel=1e-9)

    def test_zero_mem_words(self):
        m = MachineModel()
        assert m.compute_seconds(m.flop_rate, 0.0, 4) == pytest.approx(1.0)


class TestSequentialAndComm:
    def test_sequential(self):
        m = MachineModel(flop_rate=2e9)
        assert m.sequential_seconds(2e9) == pytest.approx(1.0)

    def test_comm(self):
        m = MachineModel(alpha=1e-6, beta=1e-9)
        assert m.comm_seconds(1e9, 0) == pytest.approx(1.0)
        assert m.comm_seconds(0, 1e6) == pytest.approx(1.0)

    def test_evd_cubic(self):
        m = MachineModel()
        assert m.evd_seconds(200) == pytest.approx(8 * m.evd_seconds(100))

    def test_qrcp_scaling(self):
        m = MachineModel()
        assert m.qrcp_seconds(100, 20) == pytest.approx(
            4 * m.qrcp_seconds(100, 10)
        )


class TestValidation:
    def test_bad_rates(self):
        with pytest.raises(ValueError):
            MachineModel(flop_rate=0)
        with pytest.raises(ValueError):
            MachineModel(node_mem_bw=-1)

    def test_bad_latency(self):
        with pytest.raises(ValueError):
            MachineModel(alpha=-1e-6)

    def test_bad_cores(self):
        with pytest.raises(ValueError):
            MachineModel(cores_per_node=0)


def test_perlmutter_preset():
    m = perlmutter_like()
    assert m.cores_per_node == 128
    assert m.flop_rate > 0
