"""DistTensor handle: blocks, assembly, gather, symbolic mode."""

import numpy as np
import pytest

from repro.distributed.arrays import SymbolicArray
from repro.distributed.dist_tensor import DistTensor
from repro.vmpi.cost import CostLedger
from repro.vmpi.grid import ProcessorGrid
from repro.vmpi.machine import MachineModel


def _dt(data, dims):
    grid = ProcessorGrid(dims)
    return DistTensor(data, grid, CostLedger(MachineModel(), grid.size))


class TestConcrete:
    def test_blocks_are_views(self, small3):
        dt = _dt(small3, (2, 1, 2))
        block = dt.local_block(0)
        block[...] = 7.0
        assert np.all(dt.data[dt.layout.local_slices((0, 0, 0))] == 7.0)

    def test_all_blocks_cover(self, small3):
        dt = _dt(small3.copy(), (2, 1, 2))
        total = sum(b.size for b in dt.all_blocks())
        assert total == small3.size

    def test_assemble_inverts_blocks(self, small4):
        dt = _dt(small4, (1, 2, 1, 3))
        blocks = [b.copy() for b in dt.all_blocks()]
        rebuilt = DistTensor.assemble(
            blocks, small4.shape, dt.grid, dt.ledger
        )
        np.testing.assert_array_equal(rebuilt.data, small4)

    def test_assemble_shape_check(self, small4):
        dt = _dt(small4, (1, 2, 1, 3))
        blocks = [b.copy() for b in dt.all_blocks()]
        blocks[0] = blocks[0][:2]
        with pytest.raises(ValueError):
            DistTensor.assemble(blocks, small4.shape, dt.grid, dt.ledger)

    def test_gather_charges_cost(self, small3):
        dt = _dt(small3, (2, 2, 1))
        out = dt.gather()
        assert out is small3
        assert dt.ledger.phases["core_comm"].words > 0

    def test_gather_free_on_one_rank(self, small3):
        dt = _dt(small3, (1, 1, 1))
        dt.gather()
        assert "core_comm" not in dt.ledger.phases

    def test_metadata(self, small3):
        dt = _dt(small3, (1, 1, 1))
        assert dt.shape == small3.shape
        assert dt.ndim == 3
        assert dt.size == small3.size
        assert dt.concrete


class TestSymbolic:
    def test_no_blocks(self):
        dt = _dt(SymbolicArray((8, 8)), (2, 2))
        assert not dt.concrete
        with pytest.raises(TypeError):
            dt.local_block(0)

    def test_gather_still_charges(self):
        dt = _dt(SymbolicArray((8, 8)), (2, 2))
        dt.gather()
        assert dt.ledger.phases["core_comm"].words > 0


class TestValidation:
    def test_grid_ledger_mismatch(self, small3):
        grid = ProcessorGrid((2, 1, 1))
        with pytest.raises(ValueError):
            DistTensor(small3, grid, CostLedger(MachineModel(), 4))

    def test_like_shares_grid(self, small3, rng):
        dt = _dt(small3, (2, 1, 1))
        other = dt.like(rng.standard_normal((4, 5, 4)))
        assert other.grid is dt.grid
        assert other.ledger is dt.ledger


class TestSymbolicArray:
    def test_metadata(self):
        s = SymbolicArray((3, 4, 5))
        assert s.ndim == 3
        assert s.size == 60

    def test_negative_extent(self):
        with pytest.raises(ValueError):
            SymbolicArray((3, -1))
