"""STHOSVD mode-order heuristic."""

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.core.sthosvd import auto_mode_order, sthosvd
from repro.distributed.arrays import SymbolicArray
from repro.distributed.sthosvd import dist_sthosvd
from repro.tensor.random import tucker_plus_noise


class TestAutoModeOrder:
    def test_smallest_key_first(self):
        # keys n^2/(n-r): 100^2/95=105.3, 10^2/5=20, 50^2/45=55.6
        order = auto_mode_order((100, 10, 50), (5, 5, 5))
        assert order == (1, 2, 0)

    def test_without_ranks_smallest_mode_first(self):
        assert auto_mode_order((10, 100, 50)) == (0, 2, 1)

    def test_untruncated_mode_goes_last(self):
        order = auto_mode_order((10, 10, 10), (10, 2, 2))
        assert order[-1] == 0

    def test_is_permutation(self):
        order = auto_mode_order((7, 7, 7, 7))
        assert sorted(order) == [0, 1, 2, 3]

    def test_order_mismatch(self):
        with pytest.raises(ValueError):
            auto_mode_order((10, 10), (2,))

    def test_exchange_optimality_brute_force(self):
        """The closed-form key matches the brute-force optimum of the
        Gram-dominated cost model on random instances."""
        import itertools

        rng = np.random.default_rng(0)
        for _ in range(20):
            d = int(rng.integers(2, 5))
            shape = tuple(int(rng.integers(4, 60)) for _ in range(d))
            ranks = tuple(
                int(rng.integers(1, max(2, n // 2))) for n in shape
            )

            def cost(order):
                size = float(np.prod(shape))
                total = 0.0
                for j in order:
                    total += shape[j] * size
                    size *= ranks[j] / shape[j]
                return total

            best = min(
                itertools.permutations(range(d)), key=cost
            )
            got = auto_mode_order(shape, ranks)
            assert cost(got) == pytest.approx(cost(best), rel=1e-9)


class TestSTHOSVDAutoOrder:
    def test_auto_accepted(self, lowrank3):
        tucker, stats = sthosvd(lowrank3, eps=0.05, mode_order="auto")
        assert tucker.relative_error(lowrank3) <= 0.05
        assert sorted(stats.mode_order) == [0, 1, 2]

    def test_unknown_string(self, lowrank3):
        with pytest.raises(ConfigError):
            sthosvd(lowrank3, eps=0.05, mode_order="random")

    def test_auto_beats_ascending_on_skewed_shapes(self):
        """With one huge mode first in ascending order, the heuristic
        (small modes first) saves an order of magnitude of Gram flops."""
        shape, ranks = (512, 32, 32), (4, 4, 4)
        x = SymbolicArray(shape, np.float32)
        flops = {}
        for key, order in [
            ("ascending", None),
            ("auto", auto_mode_order(shape, ranks)),
        ]:
            _, stats = dist_sthosvd(
                x, (1, 1, 1), ranks=ranks, mode_order=order
            )
            flops[key] = stats.ledger.total_flops()
        assert flops["auto"] < 0.2 * flops["ascending"]

    def test_error_guarantee_unchanged(self):
        x = tucker_plus_noise((20, 12, 16), (3, 3, 3), noise=0.05, seed=0)
        t_asc, _ = sthosvd(x, eps=0.1)
        t_auto, _ = sthosvd(x, eps=0.1, mode_order="auto")
        assert t_auto.relative_error(x) <= 0.1
        assert t_asc.relative_error(x) <= 0.1
