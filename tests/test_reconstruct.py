"""Chunked decompression."""

import numpy as np
import pytest

from repro.core.reconstruct import (
    iter_slabs,
    reconstruct_into,
    streamed_relative_error,
)
from repro.core.sthosvd import sthosvd
from repro.tensor.random import tucker_plus_noise


@pytest.fixture
def compressed():
    x = tucker_plus_noise((18, 16, 14), (4, 4, 4), noise=1e-3, seed=0)
    tucker, _ = sthosvd(x, ranks=(4, 4, 4))
    return x, tucker


class TestIterSlabs:
    def test_slabs_tile_reconstruction(self, compressed):
        x, tucker = compressed
        full = tucker.reconstruct()
        for mode in range(3):
            seen = np.zeros_like(full)
            for sl, block in iter_slabs(tucker, mode, slab=5):
                index = [slice(None)] * 3
                index[mode] = sl
                seen[tuple(index)] = block
            np.testing.assert_allclose(seen, full, atol=1e-12)

    def test_slab_count(self, compressed):
        _, tucker = compressed
        slabs = list(iter_slabs(tucker, 0, slab=5))
        assert len(slabs) == 4  # 18 -> 5+5+5+3

    def test_invalid_args(self, compressed):
        _, tucker = compressed
        with pytest.raises(ValueError):
            list(iter_slabs(tucker, 0, slab=0))
        with pytest.raises(ValueError):
            list(iter_slabs(tucker, 5, slab=2))


class TestReconstructInto:
    def test_matches_direct(self, compressed):
        _, tucker = compressed
        out = np.empty(tucker.shape)
        reconstruct_into(tucker, out, mode=1, slab=4)
        np.testing.assert_allclose(out, tucker.reconstruct(), atol=1e-12)

    def test_memmap_target(self, compressed, tmp_path):
        _, tucker = compressed
        mm = np.memmap(
            tmp_path / "out.raw",
            dtype=np.float64,
            mode="w+",
            shape=tucker.shape,
        )
        reconstruct_into(tucker, mm, slab=6)
        np.testing.assert_allclose(
            np.array(mm), tucker.reconstruct(), atol=1e-12
        )

    def test_shape_mismatch(self, compressed):
        _, tucker = compressed
        with pytest.raises(ValueError):
            reconstruct_into(tucker, np.empty((2, 2, 2)))


class TestStreamedError:
    def test_matches_direct_error(self, compressed):
        x, tucker = compressed
        direct = tucker.relative_error(x)
        for mode in range(3):
            streamed = streamed_relative_error(
                tucker, x, mode=mode, slab=7
            )
            assert streamed == pytest.approx(direct, rel=1e-10)

    def test_zero_reference(self, compressed):
        _, tucker = compressed
        z = np.zeros(tucker.shape)
        assert streamed_relative_error(tucker, z) == np.inf

    def test_shape_mismatch(self, compressed):
        _, tucker = compressed
        with pytest.raises(ValueError):
            streamed_relative_error(tucker, np.zeros((3, 3, 3)))
