"""Sequential rank-adaptive HOOI (Alg. 3)."""

import numpy as np
import pytest

from repro.core.errors import ConfigError
from repro.core.rank_adaptive import (
    RankAdaptiveOptions,
    expand_factor,
    rank_adaptive_hooi,
)
from repro.linalg.llsv import LLSVMethod
from repro.tensor.random import random_orthonormal, tucker_plus_noise


class TestExpandFactor:
    def test_preserves_existing_columns(self):
        u = random_orthonormal(10, 3, seed=0)
        rng = np.random.default_rng(1)
        big = expand_factor(u, 5, rng)
        np.testing.assert_array_equal(big[:, :3], u)

    def test_orthonormal_result(self):
        u = random_orthonormal(12, 4, seed=2)
        rng = np.random.default_rng(3)
        big = expand_factor(u, 7, rng)
        np.testing.assert_allclose(big.T @ big, np.eye(7), atol=1e-10)

    def test_noop_when_not_growing(self):
        u = random_orthonormal(8, 4, seed=4)
        rng = np.random.default_rng(5)
        assert expand_factor(u, 3, rng) is u
        assert expand_factor(u, 4, rng) is u

    def test_cannot_exceed_rows(self):
        u = random_orthonormal(5, 4, seed=6)
        with pytest.raises(ValueError):
            expand_factor(u, 6, np.random.default_rng(7))


class TestOptions:
    def test_alpha_must_exceed_one(self):
        with pytest.raises(ConfigError):
            RankAdaptiveOptions(alpha=1.0)

    def test_max_iters_positive(self):
        with pytest.raises(ConfigError):
            RankAdaptiveOptions(max_iters=0)

    def test_truncation_name(self):
        with pytest.raises(ConfigError):
            RankAdaptiveOptions(truncation="random")

    def test_llsv_kernel_restricted(self):
        with pytest.raises(ConfigError):
            RankAdaptiveOptions(llsv_method=LLSVMethod.RANDOMIZED)


class TestRankAdaptive:
    @pytest.mark.parametrize("eps", [0.2, 0.05])
    def test_meets_tolerance(self, eps):
        x = tucker_plus_noise((18, 16, 14), (4, 4, 4), noise=0.02, seed=0)
        tucker, stats = rank_adaptive_hooi(x, eps, (5, 5, 5))
        assert stats.converged
        assert tucker.relative_error(x) <= eps * (1 + 1e-6)

    def test_perfect_start_one_iteration(self, lowrank4):
        tucker, stats = rank_adaptive_hooi(
            lowrank4, 0.01, (3, 4, 2, 3),
            RankAdaptiveOptions(max_iters=3),
        )
        assert stats.first_satisfied == 1
        assert tucker.ranks == (3, 4, 2, 3)

    def test_overshoot_truncates(self, lowrank4):
        tucker, stats = rank_adaptive_hooi(
            lowrank4, 0.01, (5, 6, 4, 5),
            RankAdaptiveOptions(max_iters=3),
        )
        assert stats.first_satisfied == 1
        # Truncation recovers (close to) the construction ranks.
        assert tucker.ranks == (3, 4, 2, 3)

    def test_undershoot_grows_then_converges(self, lowrank4):
        tucker, stats = rank_adaptive_hooi(
            lowrank4, 0.01, (1, 1, 1, 1),
            RankAdaptiveOptions(max_iters=6, alpha=2.0),
        )
        assert stats.converged
        assert tucker.relative_error(lowrank4) <= 0.01 * (1 + 1e-6)
        # Ranks grew before convergence.
        assert stats.first_satisfied > 1

    def test_ranks_grow_by_alpha(self, lowrank4):
        _, stats = rank_adaptive_hooi(
            lowrank4, 1e-4, (1, 1, 1, 1),
            RankAdaptiveOptions(max_iters=2, alpha=2.0),
        )
        h = stats.history
        assert h[0].ranks_used == (1, 1, 1, 1)
        assert h[1].ranks_used == (2, 2, 2, 2)

    def test_history_records(self, lowrank4):
        _, stats = rank_adaptive_hooi(lowrank4, 0.01, (4, 5, 3, 4))
        assert len(stats.history) >= 1
        rec = stats.history[-1]
        assert rec.satisfied
        assert rec.truncated_ranks is not None
        assert rec.truncated_error <= 0.01 * (1 + 1e-6)
        assert rec.truncated_storage <= rec.storage_size
        assert rec.seconds > 0

    def test_stop_at_threshold_false_continues(self, lowrank4):
        opts = RankAdaptiveOptions(max_iters=3, stop_at_threshold=False)
        _, stats = rank_adaptive_hooi(lowrank4, 0.05, (4, 5, 3, 4), opts)
        assert len(stats.history) == 3

    def test_stop_at_threshold_true_stops(self, lowrank4):
        opts = RankAdaptiveOptions(max_iters=3, stop_at_threshold=True)
        _, stats = rank_adaptive_hooi(lowrank4, 0.05, (4, 5, 3, 4), opts)
        assert len(stats.history) == stats.first_satisfied

    def test_greedy_truncation_option(self, lowrank4):
        opts = RankAdaptiveOptions(truncation="greedy")
        tucker, stats = rank_adaptive_hooi(lowrank4, 0.01, (4, 5, 3, 4), opts)
        assert stats.converged
        assert tucker.relative_error(lowrank4) <= 0.01 * (1 + 1e-6)

    def test_unreachable_eps_returns_unconverged(self, rng):
        """Full-noise tensor cannot be compressed to eps=1e-8 in a few
        rank-growth steps from rank 1."""
        x = rng.standard_normal((10, 10, 10))
        _, stats = rank_adaptive_hooi(
            x, 1e-8, (1, 1, 1), RankAdaptiveOptions(max_iters=2)
        )
        assert not stats.converged
        assert stats.first_satisfied is None

    def test_gram_evd_variant(self, lowrank4):
        opts = RankAdaptiveOptions(
            llsv_method=LLSVMethod.GRAM_EVD, use_dimension_tree=False
        )
        tucker, stats = rank_adaptive_hooi(lowrank4, 0.01, (4, 5, 3, 4), opts)
        assert stats.converged
        assert tucker.relative_error(lowrank4) <= 0.01 * (1 + 1e-6)

    def test_invalid_eps(self, lowrank4):
        with pytest.raises(ConfigError):
            rank_adaptive_hooi(lowrank4, 0.0, (2, 2, 2, 2))
        with pytest.raises(ConfigError):
            rank_adaptive_hooi(lowrank4, 1.0, (2, 2, 2, 2))

    def test_init_ranks_clipped(self, lowrank4):
        """Initial ranks beyond the tensor dims are clipped, not an error."""
        tucker, stats = rank_adaptive_hooi(lowrank4, 0.01, (99, 99, 99, 99))
        assert stats.converged

    def test_core_analysis_time_recorded(self, lowrank4):
        _, stats = rank_adaptive_hooi(lowrank4, 0.05, (4, 5, 3, 4))
        assert stats.phase_seconds.get("core_analysis", 0.0) > 0

    def test_better_compression_than_sthosvd_possible(self):
        """RA's cross-mode truncation is never *worse* than STHOSVD's
        greedy per-mode choice on this structured example (paper §5)."""
        from repro.core.sthosvd import sthosvd

        x = tucker_plus_noise((20, 18, 16), (5, 5, 5), noise=0.03, seed=9)
        eps = 0.1
        st_t, _ = sthosvd(x, eps=eps)
        ra_t, ra_s = rank_adaptive_hooi(
            x, eps, st_t.ranks,
            RankAdaptiveOptions(max_iters=3, stop_at_threshold=False),
        )
        assert ra_s.converged
        assert ra_t.storage_size() <= st_t.storage_size() * 1.25
