"""Dimension-tree structure and the memoized HOOI iteration (Alg. 4)."""

import numpy as np
import pytest

from repro.core.dimension_tree import (
    SequentialTreeEngine,
    contraction_schedule,
    direct_ttm_count,
    hooi_iteration_direct,
    hooi_iteration_dt,
    leaf_order,
    memoized_ttm_count,
    split_modes,
    tree_applicable,
    tree_nodes,
)
from repro.linalg.llsv import LLSVMethod
from repro.tensor.random import random_orthonormal, tucker_plus_noise


class TestSplitModes:
    def test_root_split_order6(self):
        """Paper Fig. 1: trailing half contracted first, in reverse."""
        mu, eta = split_modes((0, 1, 2, 3, 4, 5))
        assert mu == (5, 4, 3)
        assert eta == (0, 1, 2)

    def test_odd_count(self):
        mu, eta = split_modes((0, 1, 2))
        assert mu == (2, 1)
        assert eta == (0,)

    def test_two_modes(self):
        mu, eta = split_modes((3, 4))
        assert mu == (4,)
        assert eta == (3,)

    def test_single_mode_rejected(self):
        with pytest.raises(ValueError):
            split_modes((1,))


class TestTreeStructure:
    @pytest.mark.parametrize("d", [2, 3, 4, 5, 6, 7])
    def test_leaves_visited_in_mode_order(self, d):
        assert leaf_order(d) == list(range(d))

    @pytest.mark.parametrize("d", [2, 3, 4, 5, 6])
    def test_every_mode_is_a_leaf(self, d):
        nodes = tree_nodes(d)
        leaves = [n for n in nodes if len(n) == 1]
        assert sorted(next(iter(n)) for n in leaves) == list(range(d))

    def test_root_is_all_modes(self):
        assert tree_nodes(4)[0] == frozenset(range(4))

    @pytest.mark.parametrize("d", [3, 4, 6])
    def test_first_ttm_is_mode_d(self, d):
        """The first TTM off the root is in the last mode (layout
        optimization, §3.3)."""
        assert contraction_schedule(d)[0] == d - 1

    @pytest.mark.parametrize("d", [2, 3, 4, 5, 6])
    def test_schedule_fewer_ttms_than_direct(self, d):
        """The tree performs fewer TTMs than the direct d*(d-1)."""
        n_tree = len(contraction_schedule(d))
        n_direct = d * (d - 1)
        if d > 2:
            assert n_tree < n_direct
        else:
            assert n_tree == n_direct

    def test_schedule_counts_order4(self):
        # Root: contract {3,2} then recurse {0,1}; contract {0,1} then
        # recurse {2,3}; each 2-mode subtree adds 2 TTMs.
        sched = contraction_schedule(4)
        assert len(sched) == 8
        assert sched[:2] == [3, 2]


class _RecordingEngine:
    """Engine stub that logs traversal events without numerics."""

    def __init__(self, d: int) -> None:
        self.last_mode = d - 1
        self.events: list[tuple[str, int]] = []
        self.n_ttms = 0

    def contract(self, tensor, modes):
        for m in modes:
            self.events.append(("ttm", m))
            self.n_ttms += 1
        return tensor

    def update_factor(self, tensor, mode):
        self.events.append(("update", mode))

    def form_core(self, tensor, mode):
        self.events.append(("core", mode))


class TestTraversalInvariants:
    """§3.3 invariants over d = 3..6 for both split rules."""

    @pytest.mark.parametrize("d", [3, 4, 5, 6])
    @pytest.mark.parametrize("rule", ["half", "single"])
    def test_leaves_increasing_both_rules(self, d, rule):
        assert leaf_order(d, rule) == list(range(d))

    @pytest.mark.parametrize("d", [3, 4, 5, 6])
    @pytest.mark.parametrize("rule", ["half", "single"])
    def test_core_one_ttm_after_last_update(self, d, rule):
        """The core is formed exactly one TTM after the final factor
        update: the traversal's last events are ``update(d-1)`` then
        ``core(d-1)``, with no TTM in between (the core TTM is the
        ``form_core`` call itself)."""
        engine = _RecordingEngine(d)
        hooi_iteration_dt(object(), engine, rule=rule)
        assert engine.events[-2:] == [("update", d - 1), ("core", d - 1)]
        updates = [e for e in engine.events if e[0] == "update"]
        assert [m for _, m in updates] == list(range(d))

    @pytest.mark.parametrize("d", [1, 2, 3, 4, 5, 6])
    @pytest.mark.parametrize("rule", ["half", "single"])
    def test_count_formula_matches_schedule(self, d, rule):
        """The closed-form recurrence equals the executed schedule
        length plus the core TTM."""
        if d >= 2:
            expected = len(contraction_schedule(d, rule)) + 1
            assert memoized_ttm_count(d, rule) == expected
        assert (
            memoized_ttm_count(d, rule, include_core=False)
            == memoized_ttm_count(d, rule) - 1
        )

    @pytest.mark.parametrize(
        ("d", "expected"), [(3, 6), (4, 9), (5, 13), (6, 17)]
    )
    def test_half_rule_closed_values(self, d, expected):
        assert memoized_ttm_count(d, "half") == expected

    @pytest.mark.parametrize("d", [3, 4, 5, 6])
    def test_single_rule_closed_form(self, d):
        """Caterpillar tree: d(d+1)/2 - 1 TTMs plus the core."""
        assert memoized_ttm_count(d, "single") == d * (d + 1) // 2

    @pytest.mark.parametrize("d", [1, 2, 3, 4, 5, 6])
    def test_direct_count(self, d):
        assert direct_ttm_count(d) == d * (d - 1) + 1

    @pytest.mark.parametrize("d", [3, 4, 5, 6])
    @pytest.mark.parametrize("rule", ["half", "single"])
    def test_tree_beats_direct_from_3(self, d, rule):
        assert memoized_ttm_count(d, rule) < direct_ttm_count(d)

    def test_applicability_boundary(self):
        assert not tree_applicable(1)
        assert not tree_applicable(2)
        assert tree_applicable(3)
        # At d = 2 the tree saves nothing over the direct sweep.
        assert memoized_ttm_count(2) == direct_ttm_count(2)


class TestEngineEquivalence:
    @pytest.mark.parametrize("d", [3, 4])
    def test_dt_matches_direct_gram(self, d):
        """One memoized iteration produces the same subspaces as one
        direct iteration (both update modes in increasing order with
        the same intermediate quantities)."""
        shape = (12, 11, 10, 9)[:d]
        ranks = (3, 2, 4, 2)[:d]
        x = tucker_plus_noise(shape, ranks, noise=1e-3, seed=0)
        rng = np.random.default_rng(1)
        init = [
            random_orthonormal(n, r, seed=rng) for n, r in zip(shape, ranks)
        ]

        f_direct = [u.copy() for u in init]
        core_direct = hooi_iteration_direct(
            x, f_direct, ranks, llsv_method=LLSVMethod.GRAM_EVD
        )

        engine = SequentialTreeEngine(
            [u.copy() for u in init], ranks,
            llsv_method=LLSVMethod.GRAM_EVD,
        )
        hooi_iteration_dt(x, engine)

        for a, b in zip(f_direct, engine.factors):
            np.testing.assert_allclose(a @ a.T, b @ b.T, atol=1e-8)
        assert np.linalg.norm(core_direct) == pytest.approx(
            np.linalg.norm(engine.core), rel=1e-8
        )

    def test_dt_matches_direct_subspace(self):
        shape, ranks = (12, 11, 10), (3, 3, 3)
        x = tucker_plus_noise(shape, ranks, noise=1e-4, seed=2)
        rng = np.random.default_rng(3)
        init = [
            random_orthonormal(n, r, seed=rng) for n, r in zip(shape, ranks)
        ]

        f_direct = [u.copy() for u in init]
        core_direct = hooi_iteration_direct(
            x, f_direct, ranks, llsv_method=LLSVMethod.SUBSPACE
        )
        engine = SequentialTreeEngine(
            [u.copy() for u in init], ranks,
            llsv_method=LLSVMethod.SUBSPACE,
        )
        hooi_iteration_dt(x, engine)

        for a, b in zip(f_direct, engine.factors):
            np.testing.assert_allclose(a @ a.T, b @ b.T, atol=1e-7)
        assert np.linalg.norm(core_direct) == pytest.approx(
            np.linalg.norm(engine.core), rel=1e-7
        )

    def test_engine_records_timings(self):
        shape, ranks = (10, 9, 8), (2, 2, 2)
        x = tucker_plus_noise(shape, ranks, noise=1e-4, seed=4)
        rng = np.random.default_rng(5)
        init = [
            random_orthonormal(n, r, seed=rng) for n, r in zip(shape, ranks)
        ]
        timings: dict[str, float] = {}
        engine = SequentialTreeEngine(init, ranks, timings=timings)
        hooi_iteration_dt(x, engine)
        assert timings["ttm"] > 0
        assert timings["llsv"] > 0

    def test_core_formed_at_last_leaf(self):
        shape, ranks = (8, 7, 6), (2, 2, 2)
        x = tucker_plus_noise(shape, ranks, noise=1e-4, seed=6)
        rng = np.random.default_rng(7)
        init = [
            random_orthonormal(n, r, seed=rng) for n, r in zip(shape, ranks)
        ]
        engine = SequentialTreeEngine(init, ranks)
        hooi_iteration_dt(x, engine)
        assert engine.core is not None
        assert engine.core.shape == ranks
