"""Block collectives and their alpha-beta cost formulas."""

import numpy as np
import pytest

from repro.vmpi.collectives import (
    allgather_blocks,
    allgather_cost,
    allreduce_blocks,
    allreduce_cost,
    alltoall_blocks,
    alltoall_cost,
    bcast_block,
    bcast_cost,
    gather_blocks,
    gather_cost,
    reduce_scatter_blocks,
    reduce_scatter_cost,
)


@pytest.fixture
def blocks(rng):
    return [rng.standard_normal((6, 4)) for _ in range(4)]


class TestAllreduce:
    def test_sum(self, blocks):
        out = allreduce_blocks(blocks)
        expected = sum(blocks)
        for b in out:
            np.testing.assert_allclose(b, expected)

    def test_result_is_copy(self, blocks):
        out = allreduce_blocks(blocks)
        out[0][:] = 0
        assert not np.allclose(out[1], 0)

    def test_shape_mismatch(self, blocks):
        blocks[1] = blocks[1][:3]
        with pytest.raises(ValueError):
            allreduce_blocks(blocks)

    def test_empty(self):
        with pytest.raises(ValueError):
            allreduce_blocks([])


class TestReduceScatter:
    def test_sum_then_scatter(self, blocks):
        out = reduce_scatter_blocks(blocks, axis=0)
        expected = np.array_split(sum(blocks), 4, axis=0)
        assert len(out) == 4
        for got, exp in zip(out, expected):
            np.testing.assert_allclose(got, exp)

    def test_uneven_split(self, rng):
        blocks = [rng.standard_normal((7, 2)) for _ in range(3)]
        out = reduce_scatter_blocks(blocks, axis=0)
        assert [b.shape[0] for b in out] == [3, 2, 2]

    def test_concat_inverts(self, blocks):
        out = reduce_scatter_blocks(blocks, axis=1)
        np.testing.assert_allclose(
            np.concatenate(out, axis=1), sum(blocks)
        )


class TestAllgather:
    def test_concatenation(self, blocks):
        out = allgather_blocks(blocks, axis=0)
        expected = np.concatenate(blocks, axis=0)
        for b in out:
            np.testing.assert_allclose(b, expected)

    def test_inverse_of_reduce_scatter(self, blocks):
        """allgather(reduce_scatter(blocks)) replicates the full sum."""
        scattered = reduce_scatter_blocks(blocks, axis=0)
        gathered = allgather_blocks(scattered, axis=0)
        np.testing.assert_allclose(gathered[0], sum(blocks))


class TestAlltoall:
    def test_transpose_semantics(self, rng):
        p = 3
        send = [
            [rng.standard_normal(2) for _ in range(p)] for _ in range(p)
        ]
        recv = alltoall_blocks(send)
        for i in range(p):
            for j in range(p):
                np.testing.assert_array_equal(recv[j][i], send[i][j])

    def test_ragged_rejected(self, rng):
        send = [[rng.standard_normal(2)] * 2, [rng.standard_normal(2)]]
        with pytest.raises(ValueError):
            alltoall_blocks(send)


class TestBcastGather:
    def test_bcast(self, rng):
        block = rng.standard_normal((3, 3))
        out = bcast_block(block, 5)
        assert len(out) == 5
        for b in out:
            np.testing.assert_array_equal(b, block)

    def test_bcast_invalid_p(self, rng):
        with pytest.raises(ValueError):
            bcast_block(rng.standard_normal(2), 0)

    def test_gather(self, blocks):
        out = gather_blocks(blocks, root=1)
        assert out[0] is None and out[2] is None
        assert len(out[1]) == 4
        np.testing.assert_array_equal(out[1][3], blocks[3])


class TestCostFormulas:
    @pytest.mark.parametrize(
        "fn",
        [
            allreduce_cost,
            reduce_scatter_cost,
            allgather_cost,
            alltoall_cost,
            bcast_cost,
            gather_cost,
        ],
    )
    def test_zero_at_p1(self, fn):
        assert fn(1e6, 1) == (0.0, 0.0)

    def test_allreduce_is_twice_reduce_scatter(self):
        """Ring allreduce = reduce-scatter + allgather."""
        n, p = 1e6, 8
        rs_w, _ = reduce_scatter_cost(n, p)
        ar_w, _ = allreduce_cost(n, p)
        assert ar_w == pytest.approx(2 * rs_w)

    def test_words_approach_n_at_large_p(self):
        w, _ = reduce_scatter_cost(1000.0, 1000)
        assert w == pytest.approx(999.0)

    def test_bcast_log_messages(self):
        _, msgs = bcast_cost(100.0, 8)
        assert msgs == 3.0

    def test_words_monotone_in_p(self):
        prev = 0.0
        for p in (2, 4, 8, 16):
            w, _ = allgather_cost(1000.0, p)
            assert w >= prev
            prev = w
