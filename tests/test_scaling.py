"""Strong-scaling harness (Fig. 2 machinery)."""

import numpy as np
import pytest

from repro.analysis.scaling import (
    ALGORITHMS,
    default_grid,
    run_variant,
    strong_scaling,
)
from repro.core.errors import ConfigError
from repro.distributed.arrays import SymbolicArray


class TestDefaultGrid:
    def test_sthosvd_prefers_p1_one(self):
        g = default_grid(64, (512, 512, 512), "sthosvd")
        assert g[0] == 1

    def test_dt_prefers_edges_one(self):
        g = default_grid(64, (512, 512, 512, 512), "hosi-dt")
        assert g[0] == 1 and g[-1] == 1

    def test_product(self):
        import math

        for algo in ALGORITHMS:
            assert math.prod(default_grid(128, (256,) * 3, algo)) == 128


class TestRunVariant:
    def test_sthosvd_dispatch(self):
        x = SymbolicArray((32, 32, 32), np.float32)
        _, stats = run_variant(x, "sthosvd", (1, 2, 2), ranks=(4, 4, 4))
        assert stats.simulated_seconds > 0

    def test_hooi_requires_ranks(self):
        x = SymbolicArray((32, 32, 32), np.float32)
        with pytest.raises(ConfigError):
            run_variant(x, "hosi-dt", (1, 2, 2))

    def test_concrete_dispatch(self, lowrank3):
        tucker, stats = run_variant(
            lowrank3, "hosi-dt", (1, 2, 2), ranks=(4, 3, 5)
        )
        assert tucker is not None


class TestStrongScaling:
    def test_point_per_algo_and_p(self):
        pts = strong_scaling(
            (64, 64, 64), (4, 4, 4), [1, 4],
            algorithms=("sthosvd", "hosi-dt"),
        )
        assert len(pts) == 4
        keys = {(p.algorithm, p.p) for p in pts}
        assert ("sthosvd", 1) in keys and ("hosi-dt", 4) in keys

    def test_times_decrease_initially(self):
        pts = strong_scaling(
            (128, 128, 128), (8, 8, 8), [1, 8],
            algorithms=("hosi-dt",),
        )
        t = {p.p: p.seconds for p in pts}
        assert t[8] < t[1]

    def test_paper_shape_sthosvd_plateaus_hosi_dt_scales(self):
        """The headline Fig. 2 (3-way) shape at the paper's dimensions."""
        pts = strong_scaling(
            (3750, 3750, 3750), (30, 30, 30), [64, 4096],
            algorithms=("sthosvd", "hosi-dt"),
        )
        t = {(p.algorithm, p.p): p.seconds for p in pts}
        sth_speedup = t[("sthosvd", 64)] / t[("sthosvd", 4096)]
        hosi_speedup = t[("hosi-dt", 64)] / t[("hosi-dt", 4096)]
        assert sth_speedup < 8  # EVD plateau (64x more cores, <8x faster)
        assert hosi_speedup > 20  # keeps scaling
        # At 4096 cores HOSI-DT beats STHOSVD by a large factor.
        assert (
            t[("sthosvd", 4096)] / t[("hosi-dt", 4096)] > 50
        )

    def test_hooi_twice_sthosvd_at_evd_plateau(self):
        """Gram-based HOOI does 2x the EVDs over two iterations, so it
        plateaus at ~2x STHOSVD's time (paper §4.1)."""
        pts = strong_scaling(
            (3750, 3750, 3750), (30, 30, 30), [4096],
            algorithms=("sthosvd", "hooi-dt"),
        )
        t = {p.algorithm: p.seconds for p in pts}
        assert t["hooi-dt"] / t["sthosvd"] == pytest.approx(2.0, rel=0.25)

    def test_concrete_data_run(self, lowrank3):
        pts = strong_scaling(
            lowrank3.shape, (4, 3, 5), [1, 2],
            algorithms=("hosi-dt",), data=lowrank3,
        )
        assert len(pts) == 2
