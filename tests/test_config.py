"""Parameter-file parsing."""

import pytest

from repro.config import ParameterFile, parse_parameter_text
from repro.core.errors import ConfigError

SAMPLE = """
Print options = true
Print timings = false
# a comment
Noise = 0.0001
Processor grid dims = 1 2 2 2
Global dims = 100 100 100 100   # trailing comment
Ranks = 10 10 10 10
SV Threshold = 0.0
"""


class TestParser:
    def test_basic(self):
        vals = parse_parameter_text(SAMPLE)
        assert vals["noise"] == "0.0001"
        assert vals["processor grid dims"] == "1 2 2 2"

    def test_comments_stripped(self):
        vals = parse_parameter_text(SAMPLE)
        assert vals["global dims"] == "100 100 100 100"

    def test_blank_lines_ignored(self):
        assert parse_parameter_text("\n\n  \n") == {}

    def test_case_insensitive_keys(self):
        vals = parse_parameter_text("FOO Bar = 3")
        assert vals["foo bar"] == "3"

    def test_missing_equals(self):
        with pytest.raises(ConfigError):
            parse_parameter_text("just some text")

    def test_empty_key(self):
        with pytest.raises(ConfigError):
            parse_parameter_text("= 3")

    def test_last_wins(self):
        vals = parse_parameter_text("A = 1\nA = 2")
        assert vals["a"] == "2"


class TestTypedAccess:
    @pytest.fixture
    def params(self):
        return ParameterFile.from_text(SAMPLE)

    def test_bool(self, params):
        assert params.get_bool("Print options") is True
        assert params.get_bool("Print timings") is False
        assert params.get_bool("Missing", True) is True

    def test_bool_variants(self):
        p = ParameterFile.from_text("a = YES\nb = off\nc = 1")
        assert p.get_bool("a") and p.get_bool("c") and not p.get_bool("b")

    def test_bad_bool(self, params):
        with pytest.raises(ConfigError):
            ParameterFile.from_text("a = maybe").get_bool("a")

    def test_float(self, params):
        assert params.get_float("Noise") == pytest.approx(1e-4)

    def test_bad_float(self):
        with pytest.raises(ConfigError):
            ParameterFile.from_text("a = x").get_float("a")

    def test_int_list(self, params):
        assert params.get_ints("Ranks") == (10, 10, 10, 10)
        assert params.get_ints("Missing", (1, 2)) == (1, 2)

    def test_bad_int_list(self):
        with pytest.raises(ConfigError):
            ParameterFile.from_text("a = 1 x 3").get_ints("a")

    def test_missing_required(self, params):
        with pytest.raises(ConfigError):
            params.get_str("nonexistent")

    def test_has(self, params):
        assert params.has("ranks")
        assert not params.has("bogus")

    def test_from_path(self, tmp_path):
        f = tmp_path / "x.cfg"
        f.write_text("A = 5")
        assert ParameterFile.from_path(f).get_int("a") == 5
