"""repro — Parallel Rank-Adaptive Higher Order Orthogonal Iteration.

A from-scratch Python reproduction of the SC '25 paper "Parallel
Rank-Adaptive Higher Order Orthogonal Iteration" (Pinheiro, Devarakonda,
Ballard): rank-adaptive HOOI with dimension-tree TTM memoization and
subspace-iteration LLSV (RA-HOSI-DT), the STHOSVD baseline, and a
simulated distributed-memory substrate (virtual MPI with a
latency/bandwidth/flop-rate machine model) standing in for
TuckerMPI-on-Perlmutter.

Quickstart
----------
>>> import numpy as np
>>> from repro import rank_adaptive_hooi, sthosvd, tucker_plus_noise
>>> x = tucker_plus_noise((40, 40, 40), (5, 5, 5), noise=1e-3, seed=0)
>>> tt, stats = rank_adaptive_hooi(x, eps=1e-2, init_ranks=(6, 6, 6))
>>> tt.relative_error(x) <= 1e-2
True
"""

from repro._version import __version__
from repro.core import (
    HOOIOptions,
    HOOIStats,
    RankAdaptiveOptions,
    RankAdaptiveStats,
    STHOSVDStats,
    TuckerTensor,
    hooi,
    hosvd,
    rank_adaptive_hooi,
    solve_rank_truncation,
    sthosvd,
    variant_options,
)
from repro.linalg import LLSVMethod
from repro.tensor import (
    fold,
    multi_ttm,
    random_tucker,
    relative_error,
    tensor_norm,
    ttm,
    tucker_plus_noise,
    unfold,
)

__all__ = [
    "HOOIOptions",
    "HOOIStats",
    "LLSVMethod",
    "RankAdaptiveOptions",
    "RankAdaptiveStats",
    "STHOSVDStats",
    "TuckerTensor",
    "__version__",
    "fold",
    "hooi",
    "hosvd",
    "multi_ttm",
    "random_tucker",
    "rank_adaptive_hooi",
    "relative_error",
    "solve_rank_truncation",
    "sthosvd",
    "tensor_norm",
    "ttm",
    "tucker_plus_noise",
    "unfold",
    "variant_options",
]
