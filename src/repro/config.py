"""TuckerMPI-style ``Key = value`` parameter files.

The paper's artifact drives every experiment through parameter files
(see the Artifact Description); this module parses the same format,
including the keys used there (``Global dims``, ``Processor grid
dims``, ``Dimension Tree Memoization``, ``SVD Method``, ``HOOI-Adapt
Threshold``, ...).  Lines are ``Key = value`` with ``#`` comments;
keys are case-insensitive.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.errors import ConfigError

__all__ = ["ParameterFile", "parse_parameter_text"]


def parse_parameter_text(text: str) -> dict[str, str]:
    """Parse parameter-file text into a {lowercased key: raw value} map."""
    out: dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if "=" not in line:
            raise ConfigError(f"line {lineno}: expected 'Key = value': {raw!r}")
        key, value = line.split("=", 1)
        key = " ".join(key.lower().split())
        value = value.strip()
        if not key:
            raise ConfigError(f"line {lineno}: empty key")
        out[key] = value
    return out


_TRUE = {"true", "1", "yes", "on"}
_FALSE = {"false", "0", "no", "off"}


@dataclass
class ParameterFile:
    """Typed accessor over a parsed parameter map."""

    values: dict[str, str] = field(default_factory=dict)

    @classmethod
    def from_text(cls, text: str) -> "ParameterFile":
        return cls(parse_parameter_text(text))

    @classmethod
    def from_path(cls, path: str | Path) -> "ParameterFile":
        return cls.from_text(Path(path).read_text())

    def has(self, key: str) -> bool:
        """Whether the parameter file sets ``key``."""
        return key.lower() in self.values

    def get_str(self, key: str, default: str | None = None) -> str:
        """Raw string value of ``key`` (or ``default``)."""
        raw = self.values.get(key.lower())
        if raw is None:
            if default is None:
                raise ConfigError(f"missing required parameter {key!r}")
            return default
        return raw

    def get_bool(self, key: str, default: bool | None = None) -> bool:
        """Boolean value (accepts true/false/1/0/yes/no/on/off)."""
        raw = self.values.get(key.lower())
        if raw is None:
            if default is None:
                raise ConfigError(f"missing required parameter {key!r}")
            return default
        low = raw.lower()
        if low in _TRUE:
            return True
        if low in _FALSE:
            return False
        raise ConfigError(f"parameter {key!r}: cannot parse bool from {raw!r}")

    def get_int(self, key: str, default: int | None = None) -> int:
        """Integer value of ``key`` (or ``default``)."""
        raw = self.values.get(key.lower())
        if raw is None:
            if default is None:
                raise ConfigError(f"missing required parameter {key!r}")
            return default
        try:
            return int(raw)
        except ValueError as exc:
            raise ConfigError(
                f"parameter {key!r}: cannot parse int from {raw!r}"
            ) from exc

    def get_float(self, key: str, default: float | None = None) -> float:
        """Float value of ``key`` (or ``default``)."""
        raw = self.values.get(key.lower())
        if raw is None:
            if default is None:
                raise ConfigError(f"missing required parameter {key!r}")
            return default
        try:
            return float(raw)
        except ValueError as exc:
            raise ConfigError(
                f"parameter {key!r}: cannot parse float from {raw!r}"
            ) from exc

    def get_path(self, key: str, default: str | None = None) -> Path | None:
        """Filesystem path value of ``key`` (``None`` when unset).

        Unlike the scalar accessors this never raises on a missing
        key — path-valued parameters (``Checkpoint dir``) are always
        optional.
        """
        raw = self.values.get(key.lower(), default)
        if raw is None or not str(raw).strip():
            return None
        return Path(raw)

    def get_ints(
        self, key: str, default: Sequence[int] | None = None
    ) -> tuple[int, ...]:
        """Whitespace-separated integer list (e.g. grid/rank vectors)."""
        raw = self.values.get(key.lower())
        if raw is None:
            if default is None:
                raise ConfigError(f"missing required parameter {key!r}")
            return tuple(default)
        try:
            return tuple(int(tok) for tok in raw.split())
        except ValueError as exc:
            raise ConfigError(
                f"parameter {key!r}: cannot parse int list from {raw!r}"
            ) from exc
