"""Virtual MPI: a simulated distributed-memory substrate.

The paper runs on TuckerMPI (C++/MPI) on NERSC Perlmutter.  mpi4py is
unavailable here, so this subpackage provides the stand-in described in
DESIGN.md: a d-dimensional processor grid, faithful block-level
collectives (validated against NumPy references in the test suite), and
an alpha-beta-gamma machine model with a memory-bandwidth roofline.
Distributed algorithms execute their numerics exactly (semantically
global) while a :class:`~repro.vmpi.cost.CostLedger` charges per-rank
flop, memory and communication costs derived from the block layout —
the LogGP-style discrete simulation approach.  Simulated seconds are
reported for all scaling experiments.
"""

from repro.vmpi.collectives import (
    allgather_blocks,
    allreduce_blocks,
    alltoall_blocks,
    bcast_block,
    gather_blocks,
    reduce_scatter_blocks,
    select_allreduce_algorithm,
)
from repro.vmpi.cost import CostKind, CostLedger, PhaseCost
from repro.vmpi.faults import (
    EXIT_INJECTED_CRASH,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedRankCrash,
)
from repro.vmpi.grid import ProcessorGrid, candidate_grids, suggested_grids
from repro.vmpi.machine import MachineModel, perlmutter_like
from repro.vmpi.mp_comm import (
    CollectiveTimeoutError,
    CommConfig,
    ProcessComm,
    RankFailureError,
    StarComm,
    run_spmd,
)
from repro.vmpi.trace import CollectiveRecord, CommTrace
from repro.vmpi.transport import (
    ShmPoolTransport,
    TcpSocketTransport,
    Transport,
    TransportClosedError,
)

__all__ = [
    "CollectiveRecord",
    "CollectiveTimeoutError",
    "CommConfig",
    "CommTrace",
    "CostKind",
    "CostLedger",
    "EXIT_INJECTED_CRASH",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedRankCrash",
    "MachineModel",
    "PhaseCost",
    "ProcessComm",
    "ProcessorGrid",
    "RankFailureError",
    "ShmPoolTransport",
    "StarComm",
    "TcpSocketTransport",
    "Transport",
    "TransportClosedError",
    "allgather_blocks",
    "allreduce_blocks",
    "alltoall_blocks",
    "bcast_block",
    "candidate_grids",
    "gather_blocks",
    "perlmutter_like",
    "reduce_scatter_blocks",
    "run_spmd",
    "select_allreduce_algorithm",
    "suggested_grids",
]
