"""d-dimensional processor grids (TuckerMPI's ``Processor grid dims``).

A grid assigns each of ``P`` ranks a coordinate in a
``P_1 x ... x P_d`` lattice; the tensor is block-distributed
accordingly, and each collective in a distributed kernel runs inside a
per-mode sub-communicator of size ``P_j``.  Grid choice matters (paper
§4): STHOSVD favours ``P_1 = 1`` and the dimension-tree HOOI variants
favour ``P_1 = P_d = 1``; experiments search a candidate set and report
the fastest, mirroring the paper's methodology.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Iterator, Sequence

import numpy as np

__all__ = ["ProcessorGrid", "candidate_grids", "suggested_grids"]


class ProcessorGrid:
    """Cartesian rank lattice of shape ``dims`` (C-order rank layout)."""

    def __init__(self, dims: Sequence[int]):
        self.dims = tuple(int(x) for x in dims)
        if not self.dims:
            raise ValueError("grid needs at least one dimension")
        if any(x < 1 for x in self.dims):
            raise ValueError(f"grid dims must be positive, got {self.dims}")
        self.size = math.prod(self.dims)

    @property
    def ndim(self) -> int:
        return len(self.dims)

    def coords(self, rank: int) -> tuple[int, ...]:
        """Grid coordinates of ``rank``."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range for size {self.size}")
        return tuple(int(c) for c in np.unravel_index(rank, self.dims))

    def rank(self, coords: Sequence[int]) -> int:
        """Rank of grid ``coords``."""
        coords = tuple(int(c) for c in coords)
        if len(coords) != self.ndim:
            raise ValueError("coordinate order mismatch")
        for c, n in zip(coords, self.dims):
            if not 0 <= c < n:
                raise ValueError(f"coords {coords} outside grid {self.dims}")
        return int(np.ravel_multi_index(coords, self.dims))

    def mode_size(self, mode: int) -> int:
        """Sub-communicator size along ``mode`` (``P_j``)."""
        return self.dims[mode]

    def mode_comm_ranks(self, mode: int, coords: Sequence[int]) -> list[int]:
        """Ranks in the mode-``mode`` sub-communicator through ``coords``."""
        coords = list(coords)
        out = []
        for c in range(self.dims[mode]):
            coords[mode] = c
            out.append(self.rank(coords))
        return out

    def iter_ranks(self) -> Iterator[tuple[int, tuple[int, ...]]]:
        """Yield ``(rank, coords)`` for every rank in order."""
        for r in range(self.size):
            yield r, self.coords(r)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessorGrid({'x'.join(map(str, self.dims))})"


def _prime_factors(p: int) -> list[int]:
    out: list[int] = []
    f = 2
    while f * f <= p:
        while p % f == 0:
            out.append(f)
            p //= f
        f += 1
    if p > 1:
        out.append(p)
    return out


def _spread(p: int, slots: int) -> tuple[int, ...]:
    """Factor ``p`` across ``slots`` as evenly as possible."""
    dims = [1] * slots
    for f in sorted(_prime_factors(p), reverse=True):
        j = int(np.argmin(dims))
        dims[j] *= f
    return tuple(sorted(dims, reverse=True))


def candidate_grids(p: int, d: int) -> list[tuple[int, ...]]:
    """All ordered factorizations of ``p`` into ``d`` grid dimensions.

    Exhaustive — intended for small ``p`` (tests) or offline sweeps; the
    experiment harness uses :func:`suggested_grids`.
    """
    if p < 1 or d < 1:
        raise ValueError("p and d must be positive")

    def rec(remaining: int, slots: int) -> Iterator[tuple[int, ...]]:
        if slots == 1:
            yield (remaining,)
            return
        for f in range(1, remaining + 1):
            if remaining % f == 0:
                for rest in rec(remaining // f, slots - 1):
                    yield (f, *rest)

    return list(rec(p, d))


def suggested_grids(
    p: int,
    d: int,
    shape: Sequence[int] | None = None,
) -> list[tuple[int, ...]]:
    """Heuristic grid candidates for an experiment at ``p`` ranks.

    Includes balanced grids, ``P_1 = 1`` grids (good for STHOSVD),
    ``P_1 = P_d = 1`` grids (good for dimension-tree HOOI), and
    last-mode-only grids.  When ``shape`` is given, grids asking for
    more ranks than a mode has slabs are dropped (load imbalance would
    make them strictly worse).
    """
    if p < 1 or d < 1:
        raise ValueError("p and d must be positive")
    cands: set[tuple[int, ...]] = set()
    cands.add(_spread_to(p, d, active=list(range(d))))
    cands.add(_spread_to(p, d, active=list(range(1, d))))  # P_1 = 1
    if d >= 3:
        cands.add(_spread_to(p, d, active=list(range(1, d - 1))))  # P_1=P_d=1
    cands.add(_spread_to(p, d, active=[d - 1]))  # all in last mode
    if d >= 2:
        cands.add(_spread_to(p, d, active=[d - 2, d - 1]))
    out = []
    for g in sorted(cands):
        if shape is not None and any(
            gj > nj for gj, nj in zip(g, shape)
        ):
            continue
        out.append(g)
    # Never return an empty candidate list: fall back to a single-slot
    # grid in the largest mode, capped at its extent.
    if not out:
        g = [1] * d
        j = int(np.argmax(shape)) if shape is not None else d - 1
        g[j] = min(p, shape[j]) if shape is not None else p
        out.append(tuple(g))
    return out


def _spread_to(p: int, d: int, active: list[int]) -> tuple[int, ...]:
    """Spread ``p`` over the ``active`` mode slots, 1 elsewhere."""
    if not active:
        active = list(range(d))
    packed = _spread(p, len(active))
    dims = [1] * d
    # Larger factors go to later modes (they usually have larger extents
    # in the paper's datasets, e.g. the time mode).
    for slot, f in zip(sorted(active), sorted(packed)):
        dims[slot] = f
    # Put the residual product in the last active slot if rounding left
    # any imbalance (cannot happen with _spread, but keep the invariant).
    assert math.prod(dims) == p
    return tuple(dims)


def grid_product_check(dims: Sequence[int], p: int) -> bool:
    """Whether ``dims`` is a valid grid for ``p`` ranks."""
    return math.prod(int(x) for x in dims) == int(p)
