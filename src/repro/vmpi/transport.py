"""Pluggable point-to-point transports for the process-parallel layer.

:class:`~repro.vmpi.mp_comm.ProcessComm` runs its collective
algorithms over an abstract :class:`Transport`: tagged, non-blocking
``send`` / blocking ``recv`` point-to-point messaging plus the
lifecycle, fault-injection, verification, and profiling hooks the rest
of the stack taps.  Two backends implement it:

* :class:`ShmPoolTransport` — the fast single-host default.  Per-rank
  ``multiprocessing`` inbox queues carry tagged messages; NumPy
  payloads above ``CommConfig.shm_min_bytes`` travel through *pooled*
  ``multiprocessing.shared_memory`` segments without pickling (two
  memcpys and one credit message in steady state).
* :class:`TcpSocketTransport` — length-prefixed pickled frames over
  per-peer persistent TCP connections (``socket`` + ``selectors``,
  non-blocking with buffered writes so symmetric exchange patterns
  cannot deadlock on full socket buffers).  Ranks find each other
  through a tiny rendezvous server (:func:`serve_rendezvous`) reached
  via a ``host:port`` the launcher plumbs in — the same env contract
  whether ranks are forked locally, spawned as loopback subprocesses
  by :mod:`repro.distributed.launch`, or (later) started over ssh on
  other hosts.

The contract that makes backends interchangeable:

* **Counters** (``sent_words``/``sent_bytes``/... ) account *payload*
  array words/bytes, not wire encodings, so
  :class:`~repro.vmpi.trace.CollectiveRecord` traces are identical
  across backends (``shm_messages`` is the one backend-specific
  column: it counts zero-copy segment rides and is 0 on TCP).
* **Fault hooks** (:class:`~repro.vmpi.faults.FaultInjector`) fire at
  the transport boundary in :meth:`Transport.send`, so seeded
  delay/drop/bitflip plans corrupt shm segments and TCP frames alike.
* **Timeouts** all surface as :class:`CollectiveTimeoutError` (TCP
  adds :class:`TransportClosedError`, a subclass, for a peer that
  vanished mid-frame), so retry-with-backoff, purge-on-timeout, and
  the launcher's failure detection work unchanged.
* **Control traffic** (:meth:`Transport.ctrl_send` /
  :meth:`Transport.ctrl_recv`, used by the tier-2 verifier) and the
  shm free-credits are counter-neutral, so verified runs stay
  trace-identical to plain runs on every backend.
"""

from __future__ import annotations

import os
import pickle
import queue as queue_mod
import random
import selectors
import socket
import struct
import time
from abc import ABC, abstractmethod
from collections import deque

import multiprocessing as mp
import numpy as np

try:  # pragma: no cover - always present on CPython >= 3.8
    from multiprocessing import shared_memory as _shm_mod
except ImportError:  # pragma: no cover - platform without shm
    _shm_mod = None

__all__ = [
    "CollectiveTimeoutError",
    "ShmPoolTransport",
    "TcpSocketTransport",
    "Transport",
    "TransportClosedError",
    "WorldRevokedError",
    "open_rendezvous_listener",
    "serve_rendezvous",
]


class CollectiveTimeoutError(RuntimeError):
    """A communicator wait exceeded ``CommConfig.collective_timeout``.

    Raised instead of hanging when collective call sequences diverge
    across ranks (mismatched operations, different call counts) or a
    peer died.
    """


class TransportClosedError(CollectiveTimeoutError):
    """A TCP peer connection broke or closed mid-conversation.

    Subclasses :class:`CollectiveTimeoutError` so every existing
    timeout path (purge, retry-with-backoff, launcher abort) treats a
    vanished peer exactly like a diverged one — just without waiting
    out the full collective timeout.
    """


class WorldRevokedError(RuntimeError):
    """The communicator was revoked after a peer failure.

    ULFM-style: once any party (a surviving rank that saw a
    :class:`TransportClosedError`, or the launcher's liveness poll)
    decides a rank is dead, it posts a revoke notice on
    :data:`_REVOKE_TAG`; every blocked ``recv`` on the receiving
    transport then raises this instead of waiting out its timeout.
    Deliberately *not* a :class:`CollectiveTimeoutError` subclass: the
    retry-with-backoff path must not swallow a revoke (the world is
    not coming back), it must surface to the recovery handler.
    """

    def __init__(self, message: str, failed: tuple[int, ...] = ()) -> None:
        super().__init__(message)
        #: best-effort hint of the dead ranks carried by the notice.
        self.failed_hint = tuple(failed)


# ---------------------------------------------------------------------------
# payload helpers (shared by all backends)
# ---------------------------------------------------------------------------


def _contig(a: np.ndarray) -> np.ndarray:
    """C-contiguous view/copy that, unlike ``np.ascontiguousarray``,
    preserves 0-d shapes."""
    a = np.asarray(a)
    return a if a.flags["C_CONTIGUOUS"] else np.ascontiguousarray(a)


def _payload_arrays(payload: object) -> list[tuple[object, np.ndarray]] | None:
    """View a payload as keyed arrays, or ``None`` if it is not one.

    Collectives move either a bare ``ndarray`` or a ``dict`` mapping
    group positions to ``ndarray`` chunks; anything else (tags, tokens,
    user objects) takes the pickle path.
    """
    if isinstance(payload, np.ndarray):
        return [(None, payload)]
    if isinstance(payload, dict) and payload and all(
        isinstance(v, np.ndarray) for v in payload.values()
    ):
        return list(payload.items())
    return None


def _unregister_shm(shm) -> None:
    """Detach ``shm`` from this process's resource tracker.

    The receiving rank unlinks every segment after copying it out; the
    creator must forget it or the (fork-shared) resource tracker would
    warn about, and double-unlink, segments at interpreter shutdown.
    """
    try:  # pragma: no cover - tracker internals vary across versions
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def _unlink_segment(shm) -> None:
    """Remove a segment's backing file without touching the resource
    tracker.

    ``SharedMemory.unlink()`` also unregisters the name, but every
    process already unregistered at create/attach time (fork shares one
    tracker, so unmatched unregisters make it spew KeyErrors)."""
    try:
        os.unlink(os.path.join("/dev/shm", shm._name.lstrip("/")))
    except OSError:  # pragma: no cover - already swept / non-Linux
        pass


def _align8(n: int) -> int:
    return (n + 7) & ~7


def _segment_class(nbytes: int) -> int:
    """Pooled segments come in power-of-two size classes (>= 256 B) so
    a freed segment can be reused for any later payload of its class."""
    size = 256
    while size < nbytes:
        size <<= 1
    return size


# Transport-internal tag on which a receiver returns a drained segment
# to its owner for reuse.  Credit traffic, not data traffic: it is
# excluded from the message counters the cost formulas are checked
# against (like the rendezvous control messages of a real MPI).
_FREE_TAG = ("shmfree",)

# Revoke notices (elastic recovery).  Counter-neutral like the free
# credits: a revoked run must leave the CollectiveRecord traces of the
# work done so far identical to an unfailed run's prefix.  The body is
# a sequence of suspected-dead ranks; the source may be a surviving
# rank (tcp in-band) or the launcher itself (shm, posted with src=-1
# straight into the inbox queues).
_REVOKE_TAG = ("revoke",)

#: Lazily resolved races._TracedBody (the analysis package imports the
#: distributed drivers, which import this module — a module-scope
#: import here would be circular, exactly like the verifier hooks).
_TRACED_BODY = None


def _traced_body_cls():
    global _TRACED_BODY
    if _TRACED_BODY is None:
        from repro.analysis.verify.races import _TracedBody

        _TRACED_BODY = _TracedBody
    return _TRACED_BODY


# ---------------------------------------------------------------------------
# the Transport contract
# ---------------------------------------------------------------------------


class Transport(ABC):
    """Tagged point-to-point messaging between SPMD ranks.

    ``send`` never blocks (backends buffer outbound traffic) so the
    symmetric exchange patterns of the collective algorithms cannot
    deadlock; ``recv`` buffers out-of-order arrivals by ``(source,
    tag)`` and raises :class:`CollectiveTimeoutError` when nothing
    arrives in time.  Subclasses implement the wire: how a body
    reaches a peer (:meth:`_post`), how payloads are encoded/accounted
    (:meth:`_send_payload` / :meth:`_decode`), and how inbound traffic
    is pumped into the pending buffers (:meth:`_pump`).

    The hook attributes (``injector``, ``sanitizer``, ``monitor``,
    ``profiler``) are installed by :class:`~repro.vmpi.mp_comm.
    ProcessComm` / the launcher; ``None`` keeps every boundary at a
    single ``is None`` test.
    """

    #: backend name, e.g. ``"shm"`` / ``"tcp"`` (``repro run --backend``).
    kind = "abstract"
    #: whether payloads may ride pooled shared-memory segments — gates
    #: the shm-lifecycle sanitizer (meaningless on socket backends).
    uses_shm_pool = False

    #: A blocked recv registers on the wait-for board immediately but
    #: only starts probing for cycles after this long — transient
    #: cycles of correct send-then-recv patterns (ring allgather,
    #: dissemination barrier) resolve within a message latency and
    #: never survive until the probe phase, let alone two stable
    #: probes.
    _PROBE_AFTER = 1.0
    #: Poll slice while a deadlock monitor is watching (the monitor
    #: needs wake-ups to probe; without one the inbox wait can park a
    #: full second per slice).
    _PROBE_SLICE = 0.25

    def __init__(self, rank: int, size: int, config) -> None:
        self.rank = rank
        self.size = size
        self._config = config
        #: set by ProcessComm when a FaultPlan targets this rank.
        self.injector = None
        #: verify mode only: shm lifecycle state machine and wait-for
        #: board (both from repro.analysis.verify.runtime, installed
        #: lazily by ProcessComm so the import stays one-directional).
        self.sanitizer = None
        self.monitor = None
        #: profile mode only: the rank's SpanProfiler (installed by
        #: ProcessComm) — recv() splits its time into blocked-wait vs
        #: copy-out histograms.  None keeps the hot path at one test.
        self.profiler = None
        #: race_detect mode only: the process-global happens-before
        #: detector (repro.analysis.verify.races, installed lazily by
        #: ProcessComm).  Sends snapshot the sender's vector clock
        #: onto a per-(src, dst) channel, arrivals carry it to the
        #: consuming thread, and shm segment accesses plus endpoint
        #: occupancy are checked.  None keeps every boundary at one
        #: `is None` test, like the other hooks.
        self.race_detector = None
        #: always-on flight recorder (repro.observability.telemetry,
        #: installed by ProcessComm unless CommConfig.flight is off) —
        #: send() logs one "post" event per outbound payload.  A pure
        #: observer: nothing on the payload path changes, and None
        #: keeps the boundary at one `is None` test like the other
        #: hooks.
        self.flight = None
        #: verify mode only (shm backend): dedicated per-pair duplex
        #: pipes for the control rounds; ``None`` falls back to the
        #: generic tagged-message control channel.
        self.ctrl_conns: dict[int, object] | None = None
        #: elastic recovery: set when a revoke notice arrives on
        #: :data:`_REVOKE_TAG`; every blocked wait then raises
        #: :class:`WorldRevokedError` unless ``_in_recovery`` is set
        #: (the agreement rounds themselves must keep receiving).
        self.revoked = False
        self.revoked_hint: set[int] = set()
        self._in_recovery = False
        self._pending: dict[tuple, deque] = {}
        self.sent_messages = 0
        self.sent_words = 0
        self.sent_bytes = 0
        self.recv_messages = 0
        self.recv_words = 0
        self.recv_bytes = 0
        self.shm_messages = 0

    def counters(self) -> tuple[int, ...]:
        return (
            self.sent_messages,
            self.sent_words,
            self.sent_bytes,
            self.recv_messages,
            self.recv_words,
            self.recv_bytes,
            self.shm_messages,
        )

    # -- wire primitives (backend-specific) ---------------------------------

    @abstractmethod
    def _post(self, dest: int, tag: tuple, body: object) -> None:
        """Raw wire write of an already-encoded body — no counters, no
        fault hooks (control traffic and free-credits ride this)."""

    @abstractmethod
    def _send_payload(self, dest: int, tag: tuple, payload: object) -> None:
        """Encode ``payload``, account it, and post it to ``dest``."""

    @abstractmethod
    def _pump(self, timeout: float) -> None:
        """Block up to ``timeout`` seconds for inbound traffic, moving
        every arrival into the pending buffers via :meth:`_note`."""

    def _check_peer(self, src: int) -> None:
        """Raise if ``src`` can no longer deliver (a vanished TCP peer);
        the default backend has no such signal."""

    # -- shared plumbing ----------------------------------------------------

    def _note(self, src: int, tag: tuple, body: object) -> None:
        det = self.race_detector
        # Every _post appends exactly one clock snapshot to the
        # (src, dst) channel, so every noted arrival pops exactly one
        # (revoke notices included — a skipped pop would shift the
        # FIFO and merge stale, weaker clocks into later consumers).
        # The snapshot is present only when the sender shares this
        # process (hosted ranks); cross-process channels stay empty.
        clock = (
            det.channel_pop((src, self.rank)) if det is not None else None
        )
        if tag == _REVOKE_TAG:
            self.revoked = True
            try:
                self.revoked_hint.update(int(r) for r in body)
            except TypeError:  # pragma: no cover - malformed notice
                pass
            return
        if clock is not None:
            # Carry the sender's clock with the body so the
            # happens-before edge is merged by the thread that
            # *consumes* the message in _recv_body — under overlap the
            # pumping thread may be the prefetch worker, and crediting
            # it with the edge would invent order that does not exist.
            body = _traced_body_cls()(clock, body)
        self._pending.setdefault((src, tag), deque()).append(body)

    def post_revoke(self, failed: set[int] | frozenset[int]) -> None:
        """Broadcast a revoke notice to every peer believed alive.

        Best effort: posts to ranks not in ``failed`` and swallows
        wire errors (a peer that died between detection and broadcast
        is exactly who the notice is about).  Also revokes *this*
        transport so the local rank cannot re-enter a collective.
        """
        self.revoked = True
        self.revoked_hint.update(failed)
        notice = sorted(self.revoked_hint)
        for peer in range(self.size):
            if peer == self.rank or peer in failed:
                continue
            try:
                self._post(peer, _REVOKE_TAG, notice)
            except (OSError, CollectiveTimeoutError):
                self.revoked_hint.add(peer)

    def _check_revoked(self) -> None:
        if self.revoked and not self._in_recovery:
            raise WorldRevokedError(
                f"rank {self.rank}: communicator revoked — peer "
                f"failure reported (suspected dead: "
                f"{sorted(self.revoked_hint) or 'unknown'})",
                failed=tuple(sorted(self.revoked_hint)),
            )

    def _decode(self, src: int, body: tuple) -> object:
        """Decode a received body and account the payload arrays."""
        self.recv_messages += 1
        payload = body[1]
        arrays = _payload_arrays(payload)
        if arrays is not None:
            self.recv_words += sum(a.size for _, a in arrays)
            self.recv_bytes += sum(a.nbytes for _, a in arrays)
        return payload

    # -- send ---------------------------------------------------------------

    def send(self, dest: int, tag: tuple, payload: object) -> None:
        """Send ``payload`` to ``dest`` (non-blocking).

        The fault-injection boundary: seeded drop/bitflip specs fire
        here, on every backend — a dropped message advances the
        sender's counters but never touches the wire, a bit-flipped
        one is corrupted before encoding (so it rides an shm segment
        or a TCP frame identically).
        """
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} out of range for size {self.size}")
        fr = self.flight
        if fr is not None:
            # Collective tags lead with the op counter; p2p tags with
            # "p2p".  Observational only — dropped-injected sends are
            # logged too (the rank *did* post them).
            op_id = tag[0] if tag and isinstance(tag[0], int) else 0
            fr.record("post", op_id, "", dest)
        det = self.race_detector
        if det is not None:
            det.enter_transport(id(self))
        try:
            if self.injector is not None:
                payload, dropped = self.injector.on_send(payload)
                if dropped:
                    # Lost on the wire: the sender did its part
                    # (counters advance) but nothing reaches the peer.
                    arrays = _payload_arrays(payload)
                    if arrays is not None:
                        self.sent_words += sum(a.size for _, a in arrays)
                        self.sent_bytes += sum(a.nbytes for _, a in arrays)
                    self.sent_messages += 1
                    return
            self._send_payload(dest, tag, payload)
        finally:
            if det is not None:
                det.exit_transport(id(self))

    # -- recv ---------------------------------------------------------------

    def recv(self, src: int, tag: tuple, timeout: float | None = None) -> object:
        prof = self.profiler
        if prof is None:
            return self._decode(src, self._recv_body(src, tag, timeout))
        # Wait-vs-transfer split: time blocked for the message versus
        # time copying the payload out (shm memcpy / unpickle).
        t0 = time.perf_counter()
        body = self._recv_body(src, tag, timeout)
        t1 = time.perf_counter()
        out = self._decode(src, body)
        prof.metrics.observe("collective_wait_seconds", t1 - t0)
        prof.metrics.observe(
            "collective_transfer_seconds", time.perf_counter() - t1
        )
        return out

    def recv_prefetch(
        self, src: int, tag: tuple, timeout: float | None = None
    ) -> object:
        """:meth:`recv`, called from the overlap worker.

        Identical wire behavior, but blocked time lands in
        ``collective_wait_hidden_seconds``: the main thread is doing
        payload math while this wait runs, so attributing it to
        ``collective_wait_seconds`` would double-count the interval as
        both compute and wait.  Single-user contract: the comm layer
        guarantees at most one thread is inside the transport at any
        instant (a prefetch is submitted only after every send of the
        step has completed, and joined before the main thread's next
        transport call), so no locking is needed here.
        """
        prof = self.profiler
        if prof is None:
            return self._decode(src, self._recv_body(src, tag, timeout))
        t0 = time.perf_counter()
        body = self._recv_body(src, tag, timeout)
        t1 = time.perf_counter()
        out = self._decode(src, body)
        prof.metrics.observe("collective_wait_hidden_seconds", t1 - t0)
        prof.metrics.observe(
            "collective_transfer_seconds", time.perf_counter() - t1
        )
        return out

    def _recv_body(
        self, src: int, tag: tuple, timeout: float | None
    ) -> object:
        """The shared blocking wait: next body for ``(src, tag)``."""
        if not 0 <= src < self.size:
            raise ValueError(f"src {src} out of range for size {self.size}")
        timeout = (
            self._config.collective_timeout if timeout is None else timeout
        )
        key = (src, tag)
        start = time.monotonic()
        deadline = start + timeout
        mon = self.monitor
        det = self.race_detector
        if det is not None:
            det.enter_transport(id(self))
        registered = False
        try:
            while True:
                waiting = self._pending.get(key)
                if waiting:
                    body = waiting.popleft()
                    if det is not None and isinstance(
                        body, _traced_body_cls()
                    ):
                        det.merge_clock(body.clock)
                        body = body.body
                    return body
                self._check_revoked()
                self._check_peer(src)
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise CollectiveTimeoutError(
                        f"rank {self.rank}: no message from rank {src} "
                        f"with tag {tag!r} after {timeout:.1f}s — "
                        f"collective call sequences have diverged across "
                        f"ranks (or a peer died)"
                    )
                poll = min(remaining, 1.0)
                if mon is not None:
                    if not registered:
                        op_id = tag[0] if isinstance(tag[0], int) else 0
                        mon.begin_wait(src, op_id)
                        registered = True
                    if time.monotonic() - start >= self._PROBE_AFTER:
                        mon.probe()  # raises DeadlockError when stable
                    poll = min(poll, self._PROBE_SLICE)
                self._pump(poll)
        finally:
            if det is not None:
                det.exit_transport(id(self))
            if registered:
                mon.end_wait()

    # -- verify-mode control channel ----------------------------------------
    #
    # Signature/verdict traffic of the tier-2 verifier.  Deliberately
    # counter-neutral (like the shm free-credits): it must not perturb
    # the CollectiveRecord counters the alpha-beta cost formulas are
    # certified against, so a verify run stays trace-identical to a
    # plain one.

    def ctrl_send(self, dest: int, tag: tuple, payload: object) -> None:
        self._post(dest, ("ctl",) + tuple(tag), ("ctl", payload))

    def ctrl_recv(
        self, src: int, tag: tuple, timeout: float | None = None
    ) -> object:
        body = self._recv_body(src, ("ctl",) + tuple(tag), timeout)
        return body[1]

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Release wire resources (sockets, segments, mappings)."""

    def purge(self) -> None:
        """Exception-path cleanup after a dead collective: release
        anything a non-returning peer could leak (pending buffers
        always; pooled shm segments on the shm backend)."""
        self._pending.clear()

    def verify_shutdown(self, grace: float = 0.5) -> None:
        """End-of-rank sanitizer check: every segment this rank sent
        must have been credited back.  Late credits from peers that
        finished marginally after us get a bounded grace drain before
        a leak is declared (SPMD213).  A no-op on backends without a
        sanitizer (non-shm transports skip the lifecycle checks but
        keep signature matching and deadlock detection)."""
        if self.sanitizer is None:
            return
        deadline = time.monotonic() + grace
        while self.sanitizer.leaked() and time.monotonic() < deadline:
            self._pump(0.01)
        self.sanitizer.check_exit()


# ---------------------------------------------------------------------------
# pooled shared-memory backend (the fast single-host default)
# ---------------------------------------------------------------------------


class ShmPoolTransport(Transport):
    """Tagged point-to-point messaging over per-rank inbox queues.

    Array payloads of at least ``CommConfig.shm_min_bytes`` travel
    through *pooled* ``multiprocessing.shared_memory`` segments: the
    receiver copies the data out, caches its mapping, and returns the
    segment name to the owner on :data:`_FREE_TAG` so the next send
    reuses the already-faulted-in pages.  In steady state a large
    message is two memcpys and one tiny control message — no pickling,
    no pipe chunking, no segment creation.  ``close`` unlinks every
    segment the rank still owns; ``run_spmd`` sweeps the run-token
    prefix afterwards as a crash backstop.
    """

    kind = "shm"
    uses_shm_pool = True

    _POOL_CAP = 16  # free segments kept per size class before unlinking

    def __init__(
        self,
        rank: int,
        size: int,
        inboxes: list["mp.Queue"],
        run_token: str,
        config,
    ) -> None:
        super().__init__(rank, size, config)
        self._inboxes = inboxes
        self._inbox = inboxes[rank]
        self._run_token = run_token
        self._ctrl_pending: dict[int, deque] = {}
        self._shm_seq = 0
        self._owned: dict[str, object] = {}  # name -> SharedMemory
        self._seg_size: dict[str, int] = {}
        self._free: dict[int, deque] = {}  # size class -> free names
        self._rx_cache: dict[str, object] = {}  # attached peer segments

    # -- shared-memory segment pool -----------------------------------------

    def _obtain_segment(self, total: int):
        """A segment with >= ``total`` bytes: pooled if available."""
        self._drain_inbox()
        cls = _segment_class(total)
        free = self._free.get(cls)
        if free:
            name = free.popleft()
            if self.sanitizer is not None:
                self.sanitizer.on_obtain(name)
            return self._owned[name], name
        self._shm_seq += 1
        name = f"mpx{self._run_token}r{self.rank}n{self._shm_seq}"
        shm = _shm_mod.SharedMemory(create=True, size=cls, name=name)
        _unregister_shm(shm)
        # Sanctioned escape: the pool owns the handle; close()/purge()
        # and the launcher's run-token sweep end its lifecycle, and in
        # verify mode the ShmSanitizer audits every transition.
        self._owned[name] = shm  # spmdlint: ignore[SPMD105]
        self._seg_size[name] = cls
        return shm, name

    def _release_segment(self, name: str) -> None:
        """An ack came back: pool the segment (or unlink the excess)."""
        if self.sanitizer is not None:
            self.sanitizer.on_release(name)
        cls = self._seg_size[name]
        free = self._free.setdefault(cls, deque())
        if len(free) < self._POOL_CAP:
            free.append(name)
            return
        shm = self._owned.pop(name)
        del self._seg_size[name]
        shm.close()
        _unlink_segment(shm)
        if self.sanitizer is not None:
            self.sanitizer.on_unlink(name)

    def _drain_inbox(self) -> None:
        """Move queued arrivals into the pending buffers (non-blocking),
        processing segment-return acks as they surface."""
        while True:
            try:
                got_src, got_tag, body = self._inbox.get_nowait()
            except queue_mod.Empty:
                return
            self._note(got_src, got_tag, body)

    def _note(self, src: int, tag: tuple, body: object) -> None:
        if tag == _FREE_TAG:
            det = self.race_detector
            if det is not None:
                # Consumer -> owner edge: the peer finished reading
                # the segment before crediting it back, so the owner's
                # next write to this segment is ordered after that
                # read.  Credits ride a direct inbox put (not _post),
                # hence their own channel key.
                det.channel_recv(("free", src, self.rank))
            self._release_segment(body)
            return
        super()._note(src, tag, body)

    def _pump(self, timeout: float) -> None:
        try:
            got_src, got_tag, body = self._inbox.get(timeout=timeout)
        except queue_mod.Empty:
            return
        self._note(got_src, got_tag, body)

    def close(self) -> None:
        """Unlink pooled segments, unmap everything this rank touched.

        In-flight segments (sent, not yet acked) stay on disk for the
        launcher's run-token sweep — a peer may not have attached yet.
        """
        self._drain_inbox()
        for free in self._free.values():
            for name in free:
                shm = self._owned.pop(name)
                del self._seg_size[name]
                shm.close()
                _unlink_segment(shm)
        self._free.clear()
        for shm in self._owned.values():
            shm.close()
        for shm in self._rx_cache.values():
            shm.close()
        self._rx_cache.clear()
        if self.ctrl_conns is not None:
            for conn in self.ctrl_conns.values():
                try:
                    conn.close()
                except OSError:  # pragma: no cover - already closed
                    pass

    def purge(self) -> None:
        """Unlink *every* segment this rank owns, pooled and in-flight.

        The exception path of a timed-out collective: the peers this
        rank was exchanging with are not coming back for the in-flight
        segments, so leaving them on disk would leak ``/dev/shm`` for
        any embedder that drives the transport without ``run_spmd``'s
        run-token sweep.  Unlinking is safe even if a straggler is
        still attached — the mapping stays valid until it closes.
        """
        self._drain_inbox()
        for name, shm in list(self._owned.items()):
            shm.close()
            _unlink_segment(shm)
        self._owned.clear()
        self._seg_size.clear()
        self._free.clear()
        for shm in self._rx_cache.values():
            shm.close()
        self._rx_cache.clear()
        if self.sanitizer is not None:
            self.sanitizer.clear()

    # -- wire ---------------------------------------------------------------

    def _post(self, dest: int, tag: tuple, body: object) -> None:
        det = self.race_detector
        if det is not None:
            det.channel_send((self.rank, dest))
        self._inboxes[dest].put((self.rank, tag, body))

    def _send_payload(self, dest: int, tag: tuple, payload: object) -> None:
        arrays = _payload_arrays(payload)
        body: tuple
        if arrays is not None:
            contig = [(k, _contig(a)) for k, a in arrays]
            nbytes = sum(a.nbytes for _, a in contig)
            words = sum(a.size for _, a in contig)
            single = isinstance(payload, np.ndarray)
            use_shm = (
                _shm_mod is not None
                and nbytes >= self._config.shm_min_bytes
                and nbytes > 0
            )
            if use_shm:
                total = sum(_align8(a.nbytes) for _, a in contig)
                shm, name = self._obtain_segment(total)
                if self.race_detector is not None:
                    self.race_detector.on_access(("shm", name), "w")
                metas: list[tuple[object, tuple, str, int]] = []
                offset = 0
                for key, a in contig:
                    view = np.ndarray(
                        a.shape, dtype=a.dtype, buffer=shm.buf, offset=offset
                    )
                    view[...] = a
                    del view
                    metas.append((key, a.shape, a.dtype.str, offset))
                    offset += _align8(a.nbytes)
                body = ("shm", name, metas, single)
                self.shm_messages += 1
                if self.sanitizer is not None:
                    self.sanitizer.on_send(name)
            else:
                body = ("pkl", {k: a for k, a in contig} if not single
                        else contig[0][1])
            self.sent_words += words
            self.sent_bytes += nbytes
        else:
            body = ("pkl", payload)
        self.sent_messages += 1
        self._post(dest, tag, body)

    def _decode(self, src: int, body: tuple) -> object:
        kind = body[0]
        if kind != "shm":
            return super()._decode(src, body)
        self.recv_messages += 1
        _, name, metas, single = body
        shm = self._rx_cache.get(name)
        if shm is None:
            shm = _shm_mod.SharedMemory(name=name)
            _unregister_shm(shm)  # attach auto-registers on 3.11
            # Sanctioned escape: the receive cache keeps peer
            # mappings warm across messages; close() unmaps them.
            self._rx_cache[name] = shm  # spmdlint: ignore[SPMD105]
        det = self.race_detector
        if det is not None:
            det.on_access(("shm", name), "r")
        items: list[tuple[object, np.ndarray]] = []
        for key, shape, dtype_str, offset in metas:
            view = np.ndarray(
                shape, dtype=np.dtype(dtype_str),
                buffer=shm.buf, offset=offset,
            )
            items.append((key, view.copy()))
            del view
        # Hand the drained segment back to its owner for reuse.
        if det is not None:
            # Ordering edge for the credit (rides a direct inbox put,
            # not _post — see the _FREE_TAG branch of _note).
            det.channel_send(("free", self.rank, src))
        self._inboxes[src].put((self.rank, _FREE_TAG, name))
        self.recv_words += sum(a.size for _, a in items)
        self.recv_bytes += sum(a.nbytes for _, a in items)
        if single:
            return items[0][1]
        return dict(items)

    # -- verify-mode control channel over the duplex-pipe mesh --------------
    #
    # ``mp.Queue.put`` hands every message to a feeder thread, so a
    # control round over the inbox queues pays two thread wake-ups per
    # hop; ``Connection.send`` is a synchronous ``os.write``, which
    # roughly halves the verifier's fixed per-collective latency.
    # ``None`` entries fall back to the generic tagged-message channel
    # (embedders driving the transport directly).

    def ctrl_send(self, dest: int, tag: tuple, payload: object) -> None:
        conns = self.ctrl_conns
        if conns is not None and dest in conns:
            conns[dest].send((tuple(tag), payload))
            return
        super().ctrl_send(dest, tag, payload)

    def ctrl_recv(
        self, src: int, tag: tuple, timeout: float | None = None
    ) -> object:
        conns = self.ctrl_conns
        if conns is None or src not in conns:
            return super().ctrl_recv(src, tag, timeout)
        want = tuple(tag)
        timeout = (
            self._config.collective_timeout if timeout is None else timeout
        )
        # Out-of-round messages on the same pipe (a diverged peer, or
        # two groups sharing this pair) park here, exactly like the
        # queue channel's tag-keyed pending map.
        pending = self._ctrl_pending.setdefault(src, deque())
        for i, (got, payload) in enumerate(pending):
            if got == want:
                del pending[i]
                return payload
        conn = conns[src]
        deadline = time.monotonic() + timeout
        while True:
            # The pipe wait must still observe revoke notices, which
            # arrive on the inbox queue, not the ctrl pipes.
            self._drain_inbox()
            self._check_revoked()
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise CollectiveTimeoutError(
                    f"rank {self.rank}: no control message from rank "
                    f"{src} with tag {want!r} after {timeout:.1f}s — "
                    f"collective call sequences have diverged across "
                    f"ranks (or a peer died)"
                )
            if not conn.poll(min(remaining, 1.0)):
                continue
            try:
                got, payload = conn.recv()
            except EOFError:
                raise CollectiveTimeoutError(
                    f"rank {self.rank}: control channel to rank {src} "
                    f"closed mid-round (peer died)"
                ) from None
            if got == want:
                return payload
            pending.append((got, payload))


# ---------------------------------------------------------------------------
# TCP socket backend
# ---------------------------------------------------------------------------

#: Frame header: 8-byte big-endian payload length.
_LEN = struct.Struct(">Q")

#: Per-syscall read/write granularity.
_IO_CHUNK = 1 << 20


def _sock_send_obj(sock: socket.socket, obj: object) -> None:
    """Blocking framed pickle send (rendezvous / handshake only)."""
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_LEN.pack(len(data)) + data)


def _sock_recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            raise TransportClosedError(
                f"connection closed after {len(buf)} of {n} expected "
                "bytes (torn frame)"
            )
        buf += chunk
    return bytes(buf)


def _sock_recv_obj(sock: socket.socket) -> object:
    (n,) = _LEN.unpack(_sock_recv_exact(sock, _LEN.size))
    return pickle.loads(_sock_recv_exact(sock, n))


def open_rendezvous_listener(
    host: str = "127.0.0.1", port: int = 0
) -> socket.socket:
    """A listening socket for :func:`serve_rendezvous` — bind first,
    read the chosen port from ``getsockname()``, then hand the
    ``host:port`` to the ranks (env var or worker argument)."""
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
    listener.bind((host, port))
    listener.listen(128)
    return listener


def serve_rendezvous(
    listener: socket.socket, size: int, timeout: float = 60.0
) -> dict[int, tuple[str, int]]:
    """Run one address-exchange round for ``size`` ranks.

    Every rank connects, announces ``("hello", rank, host, port)`` (its
    own mesh listener), and receives the full ``{rank: (host, port)}``
    map once all ranks have checked in.  Returns the map (the launcher
    may log it).  Closes the accepted connections but not ``listener``
    — the caller owns that (and may keep serving result traffic on it,
    as :mod:`repro.distributed.launch` does).
    """
    listener.settimeout(timeout)
    conns: list[socket.socket] = []
    addrs: dict[int, tuple[str, int]] = {}
    try:
        while len(addrs) < size:
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                raise CollectiveTimeoutError(
                    f"rendezvous: only {len(addrs)} of {size} ranks "
                    f"checked in within {timeout:.1f}s"
                ) from None
            conn.settimeout(timeout)
            msg = _sock_recv_obj(conn)
            if not (isinstance(msg, tuple) and msg and msg[0] == "hello"):
                conn.close()
                continue
            _, rank, host, port = msg
            addrs[int(rank)] = (str(host), int(port))
            conns.append(conn)
        for conn in conns:
            _sock_send_obj(conn, addrs)
    finally:
        for conn in conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
    return addrs


class TcpSocketTransport(Transport):
    """Length-prefixed pickled frames over per-peer TCP connections.

    Mesh establishment: each rank opens its own listener on an
    ephemeral port, registers ``(rank, host, port)`` with the
    rendezvous server at ``rendezvous``, receives the full address
    map, then connects to every lower rank and accepts from every
    higher one (a rank handshake names the connector).  Connections
    are persistent for the lifetime of the rank.

    Steady state is non-blocking: ``send`` appends a frame to the
    peer's write buffer and flushes opportunistically; ``recv`` pumps
    a :mod:`selectors` loop that drains readable sockets (parsing
    complete frames into the pending buffers) and flushes writable
    ones — so symmetric exchanges progress even when both directions
    exceed the kernel socket buffers.  A peer that disappears raises
    :class:`TransportClosedError` at the next interaction (mid-frame
    closes are reported as torn frames with the byte counts), feeding
    the same failure paths as a collective timeout.

    Wire format: ``8-byte big-endian length || pickle((tag, body))``.
    Payload arrays are pickled (protocol 5 keeps them zero-copy on the
    encode side); counters account array words/bytes exactly like the
    shm backend, so traces match across backends.
    """

    kind = "tcp"
    uses_shm_pool = False

    def __init__(
        self,
        rank: int,
        size: int,
        config,
        rendezvous: tuple[str, int] | None = None,
        *,
        bind_host: str = "127.0.0.1",
        advertise_host: str | None = None,
    ) -> None:
        super().__init__(rank, size, config)
        self._sel = selectors.DefaultSelector()
        self._peers: dict[int, socket.socket] = {}
        self._rx: dict[int, bytearray] = {}
        self._tx: dict[int, bytearray] = {}
        self._writable: set[int] = set()  # peers with WRITE interest on
        self._gone: set[int] = set()  # peers whose connection closed
        self._closed = False
        if size > 1:
            if rendezvous is None:
                raise ValueError(
                    "TcpSocketTransport needs a rendezvous (host, port) "
                    "for size > 1"
                )
            self._establish_mesh(rendezvous, bind_host, advertise_host)

    # -- mesh setup ---------------------------------------------------------

    @property
    def _connect_timeout(self) -> float:
        return float(getattr(self._config, "tcp_connect_timeout", 20.0))

    def _connect_retry(
        self, addr: tuple[str, int], deadline: float
    ) -> socket.socket:
        """Connect with jittered exponential backoff until ``deadline``
        — the peer's listener (or the rendezvous server) may not be up
        yet.

        The backoff doubles from 50 ms toward 1 s with ±50% jitter, so
        a wide world starting up does not hammer one listener in
        lockstep.  Exhaustion raises :class:`TransportClosedError`
        *from* the last socket error, so callers (and tracebacks) see
        the real cause (``ConnectionRefusedError``, ``EHOSTUNREACH``,
        ...) chained under the timeout instead of a bare refusal.
        """
        last: Exception | None = None
        delay = 0.05
        while time.monotonic() < deadline:
            try:
                return socket.create_connection(addr, timeout=1.0)
            except OSError as exc:
                last = exc
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                sleep = delay * (0.5 + random.random())
                time.sleep(min(sleep, max(remaining, 0.0)))
                delay = min(delay * 2.0, 1.0)
        raise TransportClosedError(
            f"rank {self.rank}: could not connect to {addr[0]}:{addr[1]} "
            f"within {self._connect_timeout:.1f}s "
            f"(last error: {last!r})"
        ) from last

    def _establish_mesh(
        self,
        rendezvous: tuple[str, int],
        bind_host: str,
        advertise_host: str | None,
    ) -> None:
        timeout = self._connect_timeout
        deadline = time.monotonic() + timeout
        listener = open_rendezvous_listener(bind_host)
        try:
            port = listener.getsockname()[1]
            rdv = self._connect_retry(tuple(rendezvous), deadline)
            try:
                rdv.settimeout(timeout)
                _sock_send_obj(
                    rdv,
                    ("hello", self.rank, advertise_host or bind_host, port),
                )
                addrs = _sock_recv_obj(rdv)
            finally:
                rdv.close()
            # Lower ranks are (or will be) accepting: connect to them;
            # higher ranks connect to us: accept and read the rank
            # handshake.  The listen backlog holds early connectors,
            # so ordering across ranks cannot deadlock.
            for peer in range(self.rank):
                sock = self._connect_retry(tuple(addrs[peer]), deadline)
                sock.settimeout(timeout)
                _sock_send_obj(sock, ("peer", self.rank))
                self._peers[peer] = sock
            for _ in range(self.size - self.rank - 1):
                listener.settimeout(max(0.1, deadline - time.monotonic()))
                try:
                    sock, _ = listener.accept()
                except socket.timeout:
                    raise CollectiveTimeoutError(
                        f"rank {self.rank}: mesh setup timed out waiting "
                        f"for higher-rank connections "
                        f"({len(self._peers)} of {self.size - 1} peers up)"
                    ) from None
                sock.settimeout(timeout)
                msg = _sock_recv_obj(sock)
                self._peers[int(msg[1])] = sock
        finally:
            listener.close()
        for peer, sock in self._peers.items():
            sock.setblocking(False)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._rx[peer] = bytearray()
            self._tx[peer] = bytearray()
            self._sel.register(sock, selectors.EVENT_READ, peer)

    # -- wire ---------------------------------------------------------------

    def _post(self, dest: int, tag: tuple, body: object) -> None:
        det = self.race_detector
        if det is not None:
            det.channel_send((self.rank, dest))
        if dest == self.rank:
            # Self-sends never touch the wire (the shm backend routes
            # them through the own-inbox queue; here the pending map
            # plays that role directly).
            self._note(dest, tag, body)
            return
        data = pickle.dumps((tag, body), protocol=pickle.HIGHEST_PROTOCOL)
        buf = self._tx[dest]
        buf += _LEN.pack(len(data))
        buf += data
        self._flush(dest)

    def _send_payload(self, dest: int, tag: tuple, payload: object) -> None:
        arrays = _payload_arrays(payload)
        if arrays is not None:
            contig = [(k, _contig(a)) for k, a in arrays]
            self.sent_words += sum(a.size for _, a in contig)
            self.sent_bytes += sum(a.nbytes for _, a in contig)
            single = isinstance(payload, np.ndarray)
            body = ("pkl", contig[0][1] if single
                    else {k: a for k, a in contig})
        else:
            body = ("pkl", payload)
        self.sent_messages += 1
        self._post(dest, tag, body)

    def _set_write_interest(self, peer: int, want: bool) -> None:
        if want == (peer in self._writable) or peer in self._gone:
            return
        events = selectors.EVENT_READ
        if want:
            events |= selectors.EVENT_WRITE
            self._writable.add(peer)
        else:
            self._writable.discard(peer)
        self._sel.modify(self._peers[peer], events, peer)

    def _flush(self, peer: int) -> None:
        """Write as much buffered output to ``peer`` as the kernel
        accepts; leave the rest for the selector loop."""
        buf = self._tx[peer]
        sock = self._peers[peer]
        while buf:
            try:
                n = sock.send(memoryview(buf)[:_IO_CHUNK])
            except (BlockingIOError, InterruptedError):
                break
            except OSError as exc:
                self._mark_gone(peer)
                raise TransportClosedError(
                    f"rank {self.rank}: connection to rank {peer} broke "
                    f"mid-send ({exc}) — the peer died or closed early"
                ) from exc
            del buf[:n]
        self._set_write_interest(peer, bool(buf))

    def _mark_gone(self, peer: int) -> None:
        self._gone.add(peer)
        self._writable.discard(peer)
        try:
            self._sel.unregister(self._peers[peer])
        except (KeyError, ValueError):  # pragma: no cover - already out
            pass

    def _read(self, peer: int) -> None:
        sock = self._peers[peer]
        buf = self._rx[peer]
        closed = False
        while True:
            try:
                chunk = sock.recv(_IO_CHUNK)
            except (BlockingIOError, InterruptedError):
                break
            except OSError as exc:
                self._mark_gone(peer)
                raise TransportClosedError(
                    f"rank {self.rank}: connection from rank {peer} "
                    f"failed mid-recv ({exc})"
                ) from exc
            if not chunk:
                closed = True
                break
            buf += chunk
            if len(chunk) < _IO_CHUNK:
                break  # drained for now; selector wakes us for more
        self._parse(peer)
        if closed:
            self._mark_gone(peer)
            if buf:
                promised = (
                    _LEN.unpack_from(buf)[0] if len(buf) >= _LEN.size
                    else None
                )
                raise TransportClosedError(
                    f"rank {self.rank}: rank {peer} closed the "
                    f"connection mid-frame — partial recv of "
                    f"{len(buf)} bytes"
                    + (
                        f" of a frame promising {promised}"
                        if promised is not None
                        else " (incomplete header)"
                    )
                    + " (torn frame)"
                )

    def _parse(self, peer: int) -> None:
        buf = self._rx[peer]
        while len(buf) >= _LEN.size:
            (n,) = _LEN.unpack_from(buf)
            end = _LEN.size + n
            if len(buf) < end:
                break
            tag, body = pickle.loads(bytes(memoryview(buf)[_LEN.size:end]))
            del buf[:end]
            self._note(peer, tag, body)

    def _pump(self, timeout: float) -> None:
        if not self._peers or self._closed:
            if timeout > 0:
                time.sleep(min(timeout, 0.01))
            return
        for key, mask in self._sel.select(timeout):
            peer = key.data
            if mask & selectors.EVENT_WRITE:
                self._flush(peer)
            if mask & selectors.EVENT_READ:
                self._read(peer)

    def _check_peer(self, src: int) -> None:
        if src in self._gone and src != self.rank:
            raise TransportClosedError(
                f"rank {self.rank}: rank {src} closed its connection and "
                "no buffered message matches — the peer finished early, "
                "diverged, or died"
            )

    # -- lifecycle ----------------------------------------------------------

    def close(self, linger: float = 5.0) -> None:
        """Flush buffered output (bounded by ``linger`` seconds), then
        close every peer connection.  Safe to call twice."""
        if self._closed:
            return
        self._closed = True
        deadline = time.monotonic() + linger
        for peer, sock in self._peers.items():
            buf = self._tx.get(peer)
            while buf and peer not in self._gone:
                if time.monotonic() >= deadline:
                    break
                try:
                    n = sock.send(memoryview(buf)[:_IO_CHUNK])
                    del buf[:n]
                except (BlockingIOError, InterruptedError):
                    time.sleep(0.002)
                except OSError:
                    break
            try:
                self._sel.unregister(sock)
            except (KeyError, ValueError):
                pass
            try:
                sock.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._sel.close()
        self._peers.clear()
