"""Event tracing and timeline rendering for the simulated machine.

A :class:`TracingLedger` records every charge as an ordered event; the
renderer turns the event list into an ASCII timeline (one lane per
phase) so a run's structure — the Gram/EVD alternation of STHOSVD, the
tree-shaped TTM bursts of HOSI-DT — can be inspected without plotting.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vmpi.cost import CostKind, CostLedger
from repro.vmpi.machine import MachineModel

__all__ = ["TraceEvent", "TracingLedger", "render_timeline"]


@dataclass(frozen=True)
class TraceEvent:
    """One charged step."""

    phase: str
    kind: CostKind
    start: float
    seconds: float

    @property
    def end(self) -> float:
        return self.start + self.seconds


class TracingLedger(CostLedger):
    """Cost ledger that additionally records an ordered event trace."""

    def __init__(self, machine: MachineModel, p: int) -> None:
        super().__init__(machine, p)
        self.events: list[TraceEvent] = []
        self._clock = 0.0

    def _record(self, phase: str, kind: CostKind, dt: float) -> None:
        if dt > 0:
            self.events.append(
                TraceEvent(phase, kind, self._clock, dt)
            )
            self._clock += dt

    def compute(self, phase: str, flops: float, mem_words: float = 0.0):
        dt = super().compute(phase, flops, mem_words)
        self._record(phase, CostKind.COMPUTE, dt)
        return dt

    def sequential(self, phase: str, flops: float):
        dt = super().sequential(phase, flops)
        self._record(phase, CostKind.SEQUENTIAL, dt)
        return dt

    def comm(self, phase: str, words: float, messages: float = 1.0):
        dt = super().comm(phase, words, messages)
        self._record(phase, CostKind.COMM, dt)
        return dt


def render_timeline(
    events: list[TraceEvent], *, width: int = 72
) -> str:
    """ASCII timeline: one lane per phase, ``#`` marks busy intervals.

    Events shorter than one column still print a single mark so brief
    steps (latency-bound collectives) remain visible.
    """
    if not events:
        return "(no events)"
    total = max(e.end for e in events)
    if total <= 0:
        return "(zero-duration trace)"
    phases = []
    for e in events:
        if e.phase not in phases:
            phases.append(e.phase)
    label_w = max(len(p) for p in phases) + 1
    lines = [
        f"{'phase'.ljust(label_w)}|{'-' * width}| total "
        f"{total:.4g} simulated s"
    ]
    for phase in phases:
        lane = [" "] * width
        for e in events:
            if e.phase != phase:
                continue
            a = int(e.start / total * width)
            b = max(int(e.end / total * width), a + 1)
            for i in range(a, min(b, width)):
                lane[i] = "#"
        secs = sum(e.seconds for e in events if e.phase == phase)
        lines.append(
            f"{phase.ljust(label_w)}|{''.join(lane)}| {secs:.4g}s"
        )
    return "\n".join(lines)
