"""Event tracing and timeline rendering for the simulated machine.

A :class:`TracingLedger` records every charge as an ordered event; the
renderer turns the event list into an ASCII timeline (one lane per
phase) so a run's structure — the Gram/EVD alternation of STHOSVD, the
tree-shaped TTM bursts of HOSI-DT — can be inspected without plotting.

This module also defines the *executed*-communication trace used by the
real process-parallel layer: every collective a
:class:`~repro.vmpi.mp_comm.ProcessComm` runs appends one
:class:`CollectiveRecord` (algorithm chosen, messages and words
actually sent/received by this rank) to a :class:`CommTrace`.  The
schedule-vs-cost tests certify these executed counts against the
closed-form ``*_cost`` formulas of :mod:`repro.vmpi.collectives`, so
the simulator's charges and the executed schedules stay in agreement.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.vmpi.cost import CostKind, CostLedger
from repro.vmpi.machine import MachineModel

__all__ = [
    "PHASES",
    "CollectiveRecord",
    "CommTrace",
    "TraceEvent",
    "TracingLedger",
    "render_lanes",
    "render_timeline",
]

#: Canonical phase vocabulary, shared by every layer that attributes
#: work to an algorithm phase: the executed mp layer
#: (:attr:`CollectiveRecord.phase` / :meth:`CommTrace.for_phase` and
#: the span profiler's phase spans) and the simulator's
#: :class:`~repro.vmpi.cost.CostLedger` charges.  The first row is the
#: executed vocabulary, the second the simulator's compute phases, the
#: third its communication phases.  Drivers must tag work with one of
#: these (or the empty string, meaning "untagged"); the static lint
#: rule SPMD106 enforces the vocabulary over every string literal that
#: flows into a ``phase`` keyword/attribute or a ledger charge.
PHASES = frozenset({
    "ttm", "llsv", "gram", "core",
    "evd", "subspace", "qrcp", "core_analysis",
    "ttm_comm", "gram_comm", "subspace_comm",
    "redistribute_comm", "core_comm",
    # elastic-recovery phases (repro.distributed.recovery): the buddy
    # replication of sweep state, the revoke-and-agree rounds, and the
    # recovery continuation itself — one namespace shared by profiler
    # spans, trace records, and the lint rules (SPMD106/SPMD123).
    "buddy_replicate", "agree", "recovery",
})


@dataclass(frozen=True)
class CollectiveRecord:
    """Executed-communication profile of one collective on one rank.

    ``words`` count array *elements* moved (the unit the alpha-beta
    cost formulas use); ``bytes`` count raw payload bytes.  Envelope
    metadata (tags, shapes) is not counted — the cost formulas only
    charge payload words, and tests compare "same beta words
    ±rounding".

    ``phase`` carries the algorithm phase the caller attributed the
    collective to (``"ttm"``, ``"llsv"``, ``"core"``, ...), using the
    same vocabulary as the simulator's :class:`~repro.vmpi.cost`
    ledger phases — this is how the executed mp layer's per-phase
    collective counts are certified against the closed-form schedules
    (e.g. the memoized TTM count of Table 1).  Empty when the caller
    set no phase.
    """

    op: str
    algorithm: str
    group_size: int
    sent_messages: int
    sent_words: int
    sent_bytes: int
    recv_messages: int
    recv_words: int
    recv_bytes: int
    shm_messages: int
    phase: str = ""


@dataclass
class CommTrace:
    """Ordered per-rank list of executed collective records."""

    records: list[CollectiveRecord] = field(default_factory=list)

    def add(self, record: CollectiveRecord) -> None:
        self.records.append(record)

    def for_op(self, op: str) -> list[CollectiveRecord]:
        """All records of one collective kind, in execution order."""
        return [r for r in self.records if r.op == op]

    def for_phase(self, *phases: str) -> list[CollectiveRecord]:
        """All records attributed to any of the given phases."""
        return [r for r in self.records if r.phase in phases]

    def count(self, op: str, *phases: str) -> int:
        """Number of ``op`` collectives, optionally restricted to phases."""
        return sum(
            1
            for r in self.records
            if r.op == op and (not phases or r.phase in phases)
        )

    def tail(self, n: int = 6) -> list[str]:
        """Compact one-line summaries of the last ``n`` records.

        The failure path of ``run_spmd`` embeds this in its error so a
        crashed rank's last collectives — the context a post-mortem
        needs — survive the process boundary as plain strings.
        """
        out = []
        total = len(self.records)
        for i, r in enumerate(self.records[-n:], start=max(total - n, 0)):
            phase = f" phase={r.phase}" if r.phase else ""
            out.append(
                f"#{i + 1}/{total} {r.op}[{r.algorithm}] p={r.group_size}"
                f"{phase} sent={r.sent_messages}msg/{r.sent_words}w "
                f"recv={r.recv_messages}msg/{r.recv_words}w"
            )
        return out

    def totals(self) -> dict[str, int]:
        """Aggregate message/word/byte counters over all records."""
        keys = (
            "sent_messages",
            "sent_words",
            "sent_bytes",
            "recv_messages",
            "recv_words",
            "recv_bytes",
            "shm_messages",
        )
        return {
            k: sum(getattr(r, k) for r in self.records) for k in keys
        }


@dataclass(frozen=True)
class TraceEvent:
    """One charged step."""

    phase: str
    kind: CostKind
    start: float
    seconds: float

    @property
    def end(self) -> float:
        return self.start + self.seconds


class TracingLedger(CostLedger):
    """Cost ledger that additionally records an ordered event trace."""

    def __init__(self, machine: MachineModel, p: int) -> None:
        super().__init__(machine, p)
        self.events: list[TraceEvent] = []
        self._clock = 0.0

    def _record(self, phase: str, kind: CostKind, dt: float) -> None:
        if dt > 0:
            self.events.append(
                TraceEvent(phase, kind, self._clock, dt)
            )
            self._clock += dt

    def compute(self, phase: str, flops: float, mem_words: float = 0.0):
        dt = super().compute(phase, flops, mem_words)
        self._record(phase, CostKind.COMPUTE, dt)
        return dt

    def sequential(self, phase: str, flops: float):
        dt = super().sequential(phase, flops)
        self._record(phase, CostKind.SEQUENTIAL, dt)
        return dt

    def comm(self, phase: str, words: float, messages: float = 1.0):
        dt = super().comm(phase, words, messages)
        self._record(phase, CostKind.COMM, dt)
        return dt


def render_lanes(
    lanes: list[tuple[str, list[tuple[float, float]]]],
    *,
    width: int = 72,
    total: float | None = None,
    lane_header: str = "phase",
    unit: str = "simulated s",
) -> str:
    """ASCII timeline: one lane per label, ``#`` marks busy intervals.

    Each lane is ``(label, [(start, end), ...])`` on a shared clock.
    Intervals shorter than one column still print a single mark so
    brief steps (latency-bound collectives) remain visible.  Shared by
    :func:`render_timeline` (one lane per simulated phase) and the
    span profiler's measured timeline (one lane per rank).
    """
    if not lanes:
        return "(no events)"
    intervals = [iv for _, ivs in lanes for iv in ivs]
    if not intervals:
        return "(no events)"
    if total is None:
        total = max(end for _, end in intervals)
    if total <= 0:
        return "(zero-duration trace)"
    label_w = max(len(lbl) for lbl, _ in lanes) + 1
    lines = [
        f"{lane_header.ljust(label_w)}|{'-' * width}| total "
        f"{total:.4g} {unit}"
    ]
    for label, ivs in lanes:
        lane = [" "] * width
        busy = 0.0
        for start, end in ivs:
            # Clamp to the axis: partial profiles (a crashed rank's
            # truncated spans joined against healthy peers) can carry
            # intervals starting before the shared origin or ending
            # past the supplied total — render the visible part
            # instead of wrapping around via negative indices.
            a = max(int(start / total * width), 0)
            b = max(int(end / total * width), a + 1)
            for i in range(a, min(b, width)):
                lane[i] = "#"
            busy += max(end - start, 0.0)
        lines.append(
            f"{label.ljust(label_w)}|{''.join(lane)}| {busy:.4g}s"
        )
    return "\n".join(lines)


def render_timeline(
    events: list[TraceEvent], *, width: int = 72
) -> str:
    """ASCII timeline of a simulated trace: one lane per phase."""
    if not events:
        return "(no events)"
    phases: list[str] = []
    for e in events:
        if e.phase not in phases:
            phases.append(e.phase)
    lanes = [
        (p, [(e.start, e.end) for e in events if e.phase == p])
        for p in phases
    ]
    return render_lanes(lanes, width=width)
