"""Block-level collectives and their alpha-beta cost formulas.

Two layers live here:

* **Executable collectives** operating on lists of per-rank NumPy
  blocks.  These implement the actual data movement (validated against
  NumPy references in the tests) and are used by the scatter/gather
  paths of :class:`repro.distributed.dist_tensor.DistTensor` and by the
  small-``P`` SPMD validation tests.
* **Cost formulas** returning per-rank ``(words, messages)`` for each
  collective under standard bandwidth-optimal algorithms (ring
  reduce-scatter/allgather, ring allreduce, binomial-tree broadcast).
  The distributed kernels charge these to the
  :class:`~repro.vmpi.cost.CostLedger`.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

__all__ = [
    "allreduce_blocks",
    "reduce_scatter_blocks",
    "allgather_blocks",
    "alltoall_blocks",
    "bcast_block",
    "gather_blocks",
    "allreduce_cost",
    "reduce_scatter_cost",
    "allgather_cost",
    "alltoall_cost",
    "bcast_cost",
    "gather_cost",
    "allreduce_short_cost",
    "recursive_doubling_allreduce_cost",
    "rabenseifner_allreduce_cost",
    "reduce_scatter_halving_cost",
    "allreduce_crossover_words",
    "select_allreduce_algorithm",
    "hooi_collective_counts",
    "fit_alpha_beta",
    "transport_crossover_bytes",
]


# ---------------------------------------------------------------------------
# executable collectives
# ---------------------------------------------------------------------------


def _check_blocks(blocks: Sequence[np.ndarray]) -> None:
    if len(blocks) == 0:
        raise ValueError("collective needs at least one rank")
    shape = blocks[0].shape
    for i, b in enumerate(blocks):
        if b.shape != shape:
            raise ValueError(
                f"rank {i} block shape {b.shape} differs from {shape}"
            )


def allreduce_blocks(blocks: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Sum of all ranks' blocks, replicated to every rank."""
    _check_blocks(blocks)
    total = blocks[0].copy()
    for b in blocks[1:]:
        total += b
    return [total.copy() for _ in blocks]


def reduce_scatter_blocks(
    blocks: Sequence[np.ndarray], axis: int = 0
) -> list[np.ndarray]:
    """Sum all ranks' blocks, then scatter equal slabs along ``axis``.

    Rank ``i`` receives the ``i``-th of ``p`` near-equal slabs (NumPy
    ``array_split`` semantics, so extents need not divide evenly).
    """
    _check_blocks(blocks)
    total = blocks[0].copy()
    for b in blocks[1:]:
        total += b
    return [s.copy() for s in np.array_split(total, len(blocks), axis=axis)]


def allgather_blocks(
    blocks: Sequence[np.ndarray], axis: int = 0
) -> list[np.ndarray]:
    """Concatenate all ranks' blocks along ``axis``; replicate result."""
    if len(blocks) == 0:
        raise ValueError("collective needs at least one rank")
    cat = np.concatenate(list(blocks), axis=axis)
    return [cat.copy() for _ in blocks]


def alltoall_blocks(
    send: Sequence[Sequence[np.ndarray]],
) -> list[list[np.ndarray]]:
    """Personalized all-to-all: ``recv[j][i] = send[i][j]``."""
    p = len(send)
    for i, row in enumerate(send):
        if len(row) != p:
            raise ValueError(f"rank {i} sends {len(row)} pieces, expected {p}")
    return [[send[i][j].copy() for i in range(p)] for j in range(p)]


def bcast_block(block: np.ndarray, p: int) -> list[np.ndarray]:
    """Replicate ``block`` to ``p`` ranks."""
    if p < 1:
        raise ValueError("p must be positive")
    return [block.copy() for _ in range(p)]


def gather_blocks(
    blocks: Sequence[np.ndarray], root: int = 0
) -> list[np.ndarray | None]:
    """Collect every rank's block at ``root`` (others receive ``None``)."""
    out: list[np.ndarray | None] = [None] * len(blocks)
    out[root] = list(b.copy() for b in blocks)  # type: ignore[assignment]
    return out


# ---------------------------------------------------------------------------
# cost formulas: per-rank (words, messages)
# ---------------------------------------------------------------------------


def allreduce_cost(n: float, p: int) -> tuple[float, float]:
    """Ring allreduce of ``n`` total words over ``p`` ranks."""
    if p <= 1:
        return 0.0, 0.0
    return 2.0 * n * (p - 1) / p, 2.0 * (p - 1)


def reduce_scatter_cost(n: float, p: int) -> tuple[float, float]:
    """Ring reduce-scatter of ``n`` total words over ``p`` ranks."""
    if p <= 1:
        return 0.0, 0.0
    return n * (p - 1) / p, float(p - 1)


def allgather_cost(n: float, p: int) -> tuple[float, float]:
    """Ring allgather whose *result* is ``n`` words, over ``p`` ranks."""
    if p <= 1:
        return 0.0, 0.0
    return n * (p - 1) / p, float(p - 1)


def alltoall_cost(n_local: float, p: int) -> tuple[float, float]:
    """Personalized all-to-all where each rank holds ``n_local`` words."""
    if p <= 1:
        return 0.0, 0.0
    return n_local * (p - 1) / p, float(p - 1)


def bcast_cost(n: float, p: int) -> tuple[float, float]:
    """Binomial-tree broadcast of ``n`` words over ``p`` ranks."""
    if p <= 1:
        return 0.0, 0.0
    return float(n), float(math.ceil(math.log2(p)))


def gather_cost(n: float, p: int) -> tuple[float, float]:
    """Binomial-tree gather of ``n`` total words to one root over ``p``
    ranks (root bandwidth ``n (p-1)/p``, ``log p`` latency rounds)."""
    if p <= 1:
        return 0.0, 0.0
    return n * (p - 1) / p, float(math.ceil(math.log2(p)))


# ---------------------------------------------------------------------------
# per-algorithm schedule costs (certified against executed schedules)
# ---------------------------------------------------------------------------
#
# The executing mini-MPI (:mod:`repro.vmpi.mp_comm`) selects a concrete
# algorithm per collective call; each algorithm below has a closed-form
# per-rank ``(words, messages)`` profile that
# ``tests/test_schedule_cost.py`` asserts against the message counters
# the transport actually records.  The generic ``*_cost`` formulas above
# (what the simulator charges) correspond to the large-payload
# bandwidth-optimal members of these families.


def allreduce_short_cost(n: float, p: int) -> tuple[float, float]:
    """Latency-optimal allreduce for short payloads of ``n`` words.

    Bruck-style recursive-doubling allgather of all ``p`` contributions
    followed by a local rank-order reduction: ``ceil(log2 p)`` rounds,
    ``n (p-1)`` words sent per rank.  Works for any ``p`` and reduces
    in deterministic rank order (bit-identical to a sequential
    left-to-right sum).
    """
    if p <= 1:
        return 0.0, 0.0
    return n * (p - 1), float(math.ceil(math.log2(p)))


def recursive_doubling_allreduce_cost(n: float, p: int) -> tuple[float, float]:
    """Recursive-doubling allreduce on partial sums (power-of-two ``p``):
    ``ceil(log2 p)`` exchanges of the full ``n``-word payload."""
    if p <= 1:
        return 0.0, 0.0
    return n * math.ceil(math.log2(p)), float(math.ceil(math.log2(p)))


def rabenseifner_allreduce_cost(n: float, p: int) -> tuple[float, float]:
    """Rabenseifner allreduce (power-of-two ``p``): recursive-halving
    reduce-scatter + recursive-doubling allgather.  Bandwidth matches
    the ring allreduce (``2n(p-1)/p`` words) at ``2 ceil(log2 p)``
    messages instead of ``2(p-1)``."""
    if p <= 1:
        return 0.0, 0.0
    return 2.0 * n * (p - 1) / p, 2.0 * math.ceil(math.log2(p))


def reduce_scatter_halving_cost(n: float, p: int) -> tuple[float, float]:
    """Recursive-halving reduce-scatter (power-of-two ``p``): the ring
    formula's ``n(p-1)/p`` words in ``ceil(log2 p)`` messages."""
    if p <= 1:
        return 0.0, 0.0
    return n * (p - 1) / p, float(math.ceil(math.log2(p)))


def allreduce_crossover_words(
    p: int, *, alpha: float = 2.0e-6, beta: float = 3.2e-10
) -> float:
    """Payload size (words) where the long allreduce overtakes the short.

    Equating the alpha-beta times of :func:`allreduce_short_cost`
    (``alpha ceil(log2 p) + beta n (p-1)``) and :func:`allreduce_cost`
    (``alpha 2(p-1) + beta 2n(p-1)/p``) gives

    ``n* = alpha (2(p-1) - ceil(log2 p)) / (beta (p-1)(p-2)/p)``.

    For ``p <= 2`` the short algorithm is never worse (the bandwidth
    terms coincide), so the crossover is infinite.
    """
    if p <= 2:
        return math.inf
    latency_gain = alpha * (2.0 * (p - 1) - math.ceil(math.log2(p)))
    bandwidth_loss = beta * (p - 1) * (p - 2) / p
    return latency_gain / bandwidth_loss


def select_allreduce_algorithm(
    n: float, p: int, *, alpha: float = 2.0e-6, beta: float = 3.2e-10
) -> str:
    """Pick ``"short"`` or ``"long"`` for an ``n``-word allreduce.

    Uses the same alpha/beta constants the cost formulas charge (the
    :class:`~repro.vmpi.machine.MachineModel` defaults), so the
    executing layer's algorithm choice and the simulator's charges are
    driven by one threshold: payloads at or below
    :func:`allreduce_crossover_words` go latency-optimal, larger ones
    bandwidth-optimal.
    """
    if p <= 1:
        return "short"
    return (
        "short"
        if n <= allreduce_crossover_words(p, alpha=alpha, beta=beta)
        else "long"
    )


def fit_alpha_beta(
    nbytes: Sequence[float], seconds: Sequence[float]
) -> tuple[float, float]:
    """Least-squares ``(alpha, beta)`` of ``t = alpha + beta * bytes``.

    The standard postal-model fit used to characterize a transport
    from measured ping-style timings: ``alpha`` is the per-message
    latency (seconds), ``beta`` the per-byte cost (seconds/byte, the
    inverse bandwidth).  ``beta`` is clamped at zero — with noisy
    small-message timings the unconstrained slope can come out
    (meaninglessly) negative.
    """
    x = np.asarray(nbytes, dtype=float)
    y = np.asarray(seconds, dtype=float)
    if x.size != y.size or x.size < 2:
        raise ValueError("need >= 2 (bytes, seconds) samples to fit")
    a = np.stack([np.ones_like(x), x], axis=1)
    (alpha, beta), *_ = np.linalg.lstsq(a, y, rcond=None)
    return float(alpha), float(max(beta, 0.0))


def transport_crossover_bytes(
    fast_fit: tuple[float, float], slow_fit: tuple[float, float]
) -> float:
    """Message size (bytes) where the higher-latency transport wins.

    Given two fitted postal models — ``fast_fit`` for the transport
    with the lower per-message latency (e.g. pooled shm) and
    ``slow_fit`` for the other (e.g. tcp loopback) — the lines cross
    at ``n* = (alpha_slow - alpha_fast) / (beta_fast - beta_slow)``.
    Returns ``inf`` when the fast transport also has the smaller (or
    equal) per-byte cost: it then wins at every size and the slow
    transport's value is reach (multi-host), not speed.  Returns
    ``0.0`` when the "slow" transport is in fact never worse.
    """
    alpha_f, beta_f = fast_fit
    alpha_s, beta_s = slow_fit
    if alpha_s <= alpha_f and beta_s <= beta_f:
        return 0.0
    if beta_f <= beta_s:
        return math.inf
    return max(0.0, (alpha_s - alpha_f) / (beta_f - beta_s))


def hooi_collective_counts(
    d: int,
    n_ttms: int,
    *,
    subspace: bool = True,
    n_subspace_iters: int = 1,
) -> dict[str, int]:
    """Per-iteration collective-call counts of the executed HOOI layer.

    The process-parallel engines issue a fixed collective schedule per
    iteration: every multi-TTM step (including the core-forming TTM) is
    one ``reduce_scatter`` over its mode sub-communicator, and each of
    the ``d`` factor updates runs either the subspace LLSV (per sweep:
    one ``reduce_scatter`` for ``G = U^T Y``, two ``allgather``
    redistributions, one global ``allreduce`` for ``Z``) or the
    Gram-EVD LLSV (one ``allgather``, one ``allreduce``).  ``n_ttms``
    is the multi-TTM count of the variant — see
    :func:`repro.analysis.costs.hooi_ttm_count` — so this function
    stays free of a dependency on the tree layer.  The schedule-cost
    tests assert real mp traces match these counts exactly.
    """
    if d < 1 or n_ttms < 0:
        raise ValueError("d must be positive and n_ttms non-negative")
    if subspace:
        if n_subspace_iters < 1:
            raise ValueError("n_subspace_iters must be at least 1")
        return {
            "reduce_scatter": n_ttms + d * n_subspace_iters,
            "allgather": 2 * d * n_subspace_iters,
            "allreduce": d * n_subspace_iters,
        }
    return {
        "reduce_scatter": n_ttms,
        "allgather": d,
        "allreduce": d,
    }
