"""Block-level collectives and their alpha-beta cost formulas.

Two layers live here:

* **Executable collectives** operating on lists of per-rank NumPy
  blocks.  These implement the actual data movement (validated against
  NumPy references in the tests) and are used by the scatter/gather
  paths of :class:`repro.distributed.dist_tensor.DistTensor` and by the
  small-``P`` SPMD validation tests.
* **Cost formulas** returning per-rank ``(words, messages)`` for each
  collective under standard bandwidth-optimal algorithms (ring
  reduce-scatter/allgather, ring allreduce, binomial-tree broadcast).
  The distributed kernels charge these to the
  :class:`~repro.vmpi.cost.CostLedger`.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

__all__ = [
    "allreduce_blocks",
    "reduce_scatter_blocks",
    "allgather_blocks",
    "alltoall_blocks",
    "bcast_block",
    "gather_blocks",
    "allreduce_cost",
    "reduce_scatter_cost",
    "allgather_cost",
    "alltoall_cost",
    "bcast_cost",
    "gather_cost",
]


# ---------------------------------------------------------------------------
# executable collectives
# ---------------------------------------------------------------------------


def _check_blocks(blocks: Sequence[np.ndarray]) -> None:
    if len(blocks) == 0:
        raise ValueError("collective needs at least one rank")
    shape = blocks[0].shape
    for i, b in enumerate(blocks):
        if b.shape != shape:
            raise ValueError(
                f"rank {i} block shape {b.shape} differs from {shape}"
            )


def allreduce_blocks(blocks: Sequence[np.ndarray]) -> list[np.ndarray]:
    """Sum of all ranks' blocks, replicated to every rank."""
    _check_blocks(blocks)
    total = blocks[0].copy()
    for b in blocks[1:]:
        total += b
    return [total.copy() for _ in blocks]


def reduce_scatter_blocks(
    blocks: Sequence[np.ndarray], axis: int = 0
) -> list[np.ndarray]:
    """Sum all ranks' blocks, then scatter equal slabs along ``axis``.

    Rank ``i`` receives the ``i``-th of ``p`` near-equal slabs (NumPy
    ``array_split`` semantics, so extents need not divide evenly).
    """
    _check_blocks(blocks)
    total = blocks[0].copy()
    for b in blocks[1:]:
        total += b
    return [s.copy() for s in np.array_split(total, len(blocks), axis=axis)]


def allgather_blocks(
    blocks: Sequence[np.ndarray], axis: int = 0
) -> list[np.ndarray]:
    """Concatenate all ranks' blocks along ``axis``; replicate result."""
    if len(blocks) == 0:
        raise ValueError("collective needs at least one rank")
    cat = np.concatenate(list(blocks), axis=axis)
    return [cat.copy() for _ in blocks]


def alltoall_blocks(
    send: Sequence[Sequence[np.ndarray]],
) -> list[list[np.ndarray]]:
    """Personalized all-to-all: ``recv[j][i] = send[i][j]``."""
    p = len(send)
    for i, row in enumerate(send):
        if len(row) != p:
            raise ValueError(f"rank {i} sends {len(row)} pieces, expected {p}")
    return [[send[i][j].copy() for i in range(p)] for j in range(p)]


def bcast_block(block: np.ndarray, p: int) -> list[np.ndarray]:
    """Replicate ``block`` to ``p`` ranks."""
    if p < 1:
        raise ValueError("p must be positive")
    return [block.copy() for _ in range(p)]


def gather_blocks(
    blocks: Sequence[np.ndarray], root: int = 0
) -> list[np.ndarray | None]:
    """Collect every rank's block at ``root`` (others receive ``None``)."""
    out: list[np.ndarray | None] = [None] * len(blocks)
    out[root] = list(b.copy() for b in blocks)  # type: ignore[assignment]
    return out


# ---------------------------------------------------------------------------
# cost formulas: per-rank (words, messages)
# ---------------------------------------------------------------------------


def allreduce_cost(n: float, p: int) -> tuple[float, float]:
    """Ring allreduce of ``n`` total words over ``p`` ranks."""
    if p <= 1:
        return 0.0, 0.0
    return 2.0 * n * (p - 1) / p, 2.0 * (p - 1)


def reduce_scatter_cost(n: float, p: int) -> tuple[float, float]:
    """Ring reduce-scatter of ``n`` total words over ``p`` ranks."""
    if p <= 1:
        return 0.0, 0.0
    return n * (p - 1) / p, float(p - 1)


def allgather_cost(n: float, p: int) -> tuple[float, float]:
    """Ring allgather whose *result* is ``n`` words, over ``p`` ranks."""
    if p <= 1:
        return 0.0, 0.0
    return n * (p - 1) / p, float(p - 1)


def alltoall_cost(n_local: float, p: int) -> tuple[float, float]:
    """Personalized all-to-all where each rank holds ``n_local`` words."""
    if p <= 1:
        return 0.0, 0.0
    return n_local * (p - 1) / p, float(p - 1)


def bcast_cost(n: float, p: int) -> tuple[float, float]:
    """Binomial-tree broadcast of ``n`` words over ``p`` ranks."""
    if p <= 1:
        return 0.0, 0.0
    return float(n), float(math.ceil(math.log2(p)))


def gather_cost(n: float, p: int) -> tuple[float, float]:
    """Binomial-tree gather of ``n`` total words to one root over ``p``
    ranks (root bandwidth ``n (p-1)/p``, ``log p`` latency rounds)."""
    if p <= 1:
        return 0.0, 0.0
    return n * (p - 1) / p, float(math.ceil(math.log2(p)))
