"""Deterministic fault injection for the process-parallel layer.

Long-running distributed decompositions must survive transient faults
and node loss (TuckerMPI-scale sweeps forfeit hours of progress when a
single rank dies).  To make every failure mode *testable*, this module
defines a seeded :class:`FaultPlan` that the launcher threads through
:class:`~repro.vmpi.mp_comm.CommConfig` into every rank.  A plan is a
tuple of :class:`FaultSpec` entries, each naming a target rank and an
optional ``(phase, collective-index)`` trigger point:

``delay``
    Sleep ``delay`` seconds at the collective boundary — a transient
    transport stall.  Peers blocked on the stalled rank observe it as
    a slow network; ``CommConfig.transient_retries`` governs whether
    they ride it out (retry with backoff) or raise
    :class:`~repro.vmpi.mp_comm.CollectiveTimeoutError`.
``drop``
    Silently discard this rank's next matching transport send — a lost
    message.  The receiving peer times out (the collective is dead).
``bitflip``
    Flip one seeded-random bit in the next matching payload — silent
    data corruption on the wire.  Pair with
    ``CommConfig.check_numerics`` to study detection.
``crash``
    Raise :class:`InjectedRankCrash` at the collective boundary.  With
    ``hard=True`` (default) the worker ships a best-effort crash
    report and then dies via ``os._exit`` — no cleanup, no sentinel,
    orphaned shared memory — simulating node loss; with ``hard=False``
    the exception unwinds normally (a soft failure).

Everything is deterministic: trigger points are exact matches and the
bit-flip positions come from a per-rank generator seeded from
``FaultPlan.seed``, so a failing scenario replays bit-identically.
When no plan is set the injector is never constructed and the hot
paths pay a single ``is None`` test.

The wire hooks (``on_send``) fire at the :class:`~repro.vmpi.
transport.Transport` boundary — *before* the backend encodes the
payload — so the same seeded plan drops or corrupts a pooled
shared-memory segment on the shm backend and a length-prefixed frame
on the tcp backend identically; crash/delay specs fire at the
collective boundary, which no backend sees at all.  Fault plans
therefore work on every transport without backend-specific code.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

__all__ = [
    "EXIT_INJECTED_CRASH",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "InjectedRankCrash",
]

#: Exit code of a worker killed by a ``crash`` fault (hard mode), so
#: the launcher's liveness detector can attribute the death.
EXIT_INJECTED_CRASH = 86

_KINDS = frozenset({"delay", "drop", "bitflip", "crash"})


class InjectedRankCrash(RuntimeError):
    """Raised inside a worker by a ``crash`` fault.

    ``hard`` selects the failure mode the worker applies after shipping
    its crash report: ``os._exit`` (simulated node loss) versus normal
    exception unwinding (soft failure).
    """

    def __init__(self, message: str, *, hard: bool = True) -> None:
        super().__init__(message)
        self.hard = hard

    def __reduce__(self):  # keep picklability with the kwarg
        return (_rebuild_crash, (self.args[0], self.hard))


def _rebuild_crash(message: str, hard: bool) -> "InjectedRankCrash":
    return InjectedRankCrash(message, hard=hard)


@dataclass(frozen=True)
class FaultSpec:
    """One injection point.

    Attributes
    ----------
    kind:
        ``"delay"``, ``"drop"``, ``"bitflip"`` or ``"crash"``.
    rank:
        Global rank the fault fires on.
    op_index:
        1-based collective index (the per-rank operation counter every
        collective increments); ``None`` matches any collective.
    phase:
        Caller-set phase label (``comm.phase``) the collective must
        carry; ``None`` matches any phase.
    delay:
        Stall duration in seconds (``delay`` kind only).
    count:
        Maximum number of firings (``drop``/``bitflip``/``delay``);
        a ``crash`` fires at most once by construction.
    hard:
        ``crash`` only: die via ``os._exit`` (True) or unwind (False).
    """

    kind: str
    rank: int
    op_index: int | None = None
    phase: str | None = None
    delay: float = 0.0
    count: int = 1
    hard: bool = True

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (expected one of "
                f"{sorted(_KINDS)})"
            )
        if self.rank < 0:
            raise ValueError("fault rank must be non-negative")
        if self.kind == "delay" and self.delay <= 0:
            raise ValueError("delay faults need delay > 0")
        if self.count < 1:
            raise ValueError("count must be >= 1")

    def matches(self, rank: int, op_index: int, phase: str) -> bool:
        return (
            self.rank == rank
            and (self.op_index is None or self.op_index == op_index)
            and (self.phase is None or self.phase == phase)
        )


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, picklable set of injection points.

    Thread through ``CommConfig(fault_plan=...)``; ``run_spmd`` ships
    the config to every rank, so the same plan object reproduces the
    same failure everywhere.
    """

    faults: tuple[FaultSpec, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))

    def for_rank(self, rank: int) -> tuple[FaultSpec, ...]:
        """The subset of specs targeting ``rank``."""
        return tuple(f for f in self.faults if f.rank == rank)

    # -- convenience constructors (the common single-fault plans) -----------

    @classmethod
    def kill(
        cls,
        rank: int,
        *,
        op_index: int | None = None,
        phase: str | None = None,
        hard: bool = True,
        seed: int = 0,
    ) -> "FaultPlan":
        """Plan with a single ``crash`` fault."""
        return cls(
            faults=(
                FaultSpec(
                    "crash", rank, op_index=op_index, phase=phase, hard=hard
                ),
            ),
            seed=seed,
        )

    @classmethod
    def stall(
        cls,
        rank: int,
        delay: float,
        *,
        op_index: int | None = None,
        phase: str | None = None,
        count: int = 1,
        seed: int = 0,
    ) -> "FaultPlan":
        """Plan with a single ``delay`` fault."""
        return cls(
            faults=(
                FaultSpec(
                    "delay",
                    rank,
                    op_index=op_index,
                    phase=phase,
                    delay=delay,
                    count=count,
                ),
            ),
            seed=seed,
        )


def _first_array(payload: object) -> np.ndarray | None:
    """The first ndarray reachable inside a transport payload."""
    if isinstance(payload, np.ndarray):
        return payload
    if isinstance(payload, dict):
        for v in payload.values():
            if isinstance(v, np.ndarray):
                return v
    if isinstance(payload, (tuple, list)):
        for v in payload:
            if isinstance(v, np.ndarray):
                return v
    return None


def _replace_array(payload: object, old: np.ndarray, new: np.ndarray):
    if payload is old:
        return new
    if isinstance(payload, dict):
        return {k: (new if v is old else v) for k, v in payload.items()}
    if isinstance(payload, tuple):
        return tuple(new if v is old else v for v in payload)
    if isinstance(payload, list):
        return [new if v is old else v for v in payload]
    return payload


class FaultInjector:
    """Per-rank runtime state of a :class:`FaultPlan`.

    The communicator calls :meth:`at_collective` as every collective
    starts (setting the ``(op_index, phase)`` context and firing
    boundary faults); the transport calls :meth:`on_send` per outgoing
    message (firing wire faults in that context).  ``fired`` logs every
    firing as ``(kind, op_index, phase)`` for assertions.
    """

    def __init__(self, plan: FaultPlan, rank: int) -> None:
        self.rank = rank
        self._armed: list[list] = [
            [spec, spec.count] for spec in plan.for_rank(rank)
        ]
        self._rng = np.random.default_rng([plan.seed, rank])
        self.op_index = 0
        self.phase = ""
        self.fired: list[tuple[str, int, str]] = []

    def _take(self, kinds: tuple[str, ...]) -> FaultSpec | None:
        """Consume one firing of the first armed matching spec."""
        for entry in self._armed:
            spec, remaining = entry
            if remaining <= 0 or spec.kind not in kinds:
                continue
            if spec.matches(self.rank, self.op_index, self.phase):
                entry[1] = remaining - 1
                self.fired.append((spec.kind, self.op_index, self.phase))
                return spec
        return None

    def at_collective(self, op_index: int, phase: str) -> None:
        """Boundary hook: update context, fire crash/delay faults."""
        self.op_index = op_index
        self.phase = phase
        spec = self._take(("crash", "delay"))
        if spec is None:
            return
        if spec.kind == "crash":
            raise InjectedRankCrash(
                f"injected crash on rank {self.rank} at collective "
                f"#{op_index} (phase {phase!r})",
                hard=spec.hard,
            )
        time.sleep(spec.delay)

    def on_send(self, payload: object) -> tuple[object, bool]:
        """Wire hook: returns ``(payload, dropped)``.

        ``drop`` discards the message (the caller must not enqueue it);
        ``bitflip`` returns a copy of the payload with one seeded bit
        flipped in its first array.
        """
        spec = self._take(("drop",))
        if spec is not None:
            return payload, True
        spec = self._take(("bitflip",))
        if spec is not None:
            arr = _first_array(payload)
            if arr is not None and arr.nbytes > 0:
                flipped = np.array(arr, copy=True)
                raw = flipped.view(np.uint8).reshape(-1)
                bit = int(self._rng.integers(0, raw.size * 8))
                raw[bit // 8] ^= np.uint8(1 << (bit % 8))
                payload = _replace_array(payload, arr, flipped)
        return payload, False
