"""Machine performance model (alpha-beta-gamma plus memory roofline).

Simulated kernel time is ``max(flops / flop_rate, words / bw_per_rank)``
— a roofline: kernels whose arithmetic intensity (flops per word of
memory traffic) is low run at memory bandwidth, not at peak.  Per-rank
memory bandwidth is the node bandwidth divided by the ranks sharing the
node, which is what makes single-node scaling of the small-``r`` HOOI
kernels flatten (paper §4.1/§5) while multi-node scaling resumes as
aggregate bandwidth grows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "MachineModel",
    "fat_node_like",
    "laptop_like",
    "perlmutter_like",
]


@dataclass(frozen=True)
class MachineModel:
    """Cost constants for the simulated machine.

    Attributes
    ----------
    flop_rate:
        Effective flops/s of one core on BLAS-3-heavy work.
    alpha:
        Per-message latency (seconds).
    beta:
        Per-word (8-byte element) transfer time on the network (s/word).
    cores_per_node:
        Ranks sharing one node's memory system.
    node_mem_bw:
        One node's aggregate memory bandwidth in words/s.
    evd_flops_per_n3:
        Flop-constant of the sequential symmetric EVD, charged as
        ``c * n^3`` (LAPACK ``syev`` tridiagonalization + QL).
    qrcp_flops_per_mn2:
        Flop-constant of sequential QRCP, charged as ``c * m * n^2``.
    node_mem_words:
        One node's DRAM capacity in 8-byte words (Perlmutter CPU nodes:
        512 GB = 6.4e10 words).  Used by the feasibility analysis that
        reproduces the paper's single-node tensor sizing.
    """

    flop_rate: float = 3.5e9
    alpha: float = 2.0e-6
    beta: float = 3.2e-10
    cores_per_node: int = 128
    node_mem_bw: float = 2.5e10
    evd_flops_per_n3: float = 9.0
    qrcp_flops_per_mn2: float = 4.0
    node_mem_words: float = 6.4e10

    def __post_init__(self) -> None:
        if min(self.flop_rate, self.node_mem_bw) <= 0:
            raise ValueError("rates must be positive")
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("alpha/beta must be nonnegative")
        if self.cores_per_node < 1:
            raise ValueError("cores_per_node must be positive")

    def nodes(self, p: int) -> int:
        """Nodes occupied by ``p`` ranks (packed)."""
        return max(1, math.ceil(p / self.cores_per_node))

    def mem_words_per_rank(self, p: int) -> float:
        """DRAM words available to each of ``p`` packed ranks."""
        return self.node_mem_words * self.nodes(p) / max(p, 1)

    def bw_per_rank(self, p: int) -> float:
        """Memory bandwidth available to each of ``p`` packed ranks."""
        return self.node_mem_bw * self.nodes(p) / max(p, 1)

    def compute_seconds(self, flops: float, mem_words: float, p: int) -> float:
        """Roofline time of a parallel kernel step (per-rank max inputs)."""
        return max(
            flops / self.flop_rate,
            mem_words / self.bw_per_rank(p) if mem_words else 0.0,
        )

    def sequential_seconds(self, flops: float) -> float:
        """Time of a redundant/sequential kernel (one core's flop rate)."""
        return flops / self.flop_rate

    def comm_seconds(self, words: float, messages: float) -> float:
        """alpha-beta time of a communication step (per-rank max inputs)."""
        return self.alpha * messages + self.beta * words

    def evd_seconds(self, n: int) -> float:
        """Sequential symmetric-EVD time for an ``n x n`` matrix."""
        return self.sequential_seconds(self.evd_flops_per_n3 * float(n) ** 3)

    def qrcp_seconds(self, m: int, n: int) -> float:
        """Sequential QRCP time for an ``m x n`` matrix."""
        return self.sequential_seconds(
            self.qrcp_flops_per_mn2 * float(m) * float(n) ** 2
        )


def perlmutter_like() -> MachineModel:
    """Constants loosely calibrated to a Perlmutter CPU node.

    AMD EPYC 7763 x2: 128 cores/node, ~200 GB/s usable stream bandwidth
    (2.5e10 words/s), effective per-core DGEMM rate a few GF/s,
    Slingshot-ish latency/bandwidth.  Only the *ratios* matter for the
    reproduced shapes.
    """
    return MachineModel()


def laptop_like() -> MachineModel:
    """A single 8-core workstation node: no network (collectives become
    shared-memory copies with tiny latency), modest bandwidth."""
    return MachineModel(
        flop_rate=8.0e9,
        alpha=2.0e-7,
        beta=1.0e-10,
        cores_per_node=8,
        node_mem_bw=6.0e9,
        node_mem_words=4.0e9,  # 32 GB
    )


def fat_node_like() -> MachineModel:
    """A bandwidth-rich fat node (HBM-class memory, faster fabric):
    shifts the roofline balance point, used by the machine-sensitivity
    study to check the paper's conclusions are not artifacts of one
    constant choice."""
    return MachineModel(
        flop_rate=1.0e10,
        alpha=1.0e-6,
        beta=1.0e-10,
        cores_per_node=64,
        node_mem_bw=2.0e11,
        node_mem_words=1.6e10,  # 128 GB HBM
    )
