"""Cost accounting for the simulated machine.

The ledger records, per *phase* (``"gram"``, ``"evd"``, ``"ttm"``,
``"qrcp"``, ``"contraction"``, ``"core_analysis"``, ...), three kinds of
charges:

* ``COMPUTE`` — a parallel kernel step; caller supplies the per-rank
  *maximum* flops and memory words, the ledger converts to seconds via
  the roofline.
* ``SEQUENTIAL`` — a redundant or rank-0 kernel (EVD, QRCP, core
  analysis) charged at a single core's flop rate.
* ``COMM`` — a communication step; caller supplies per-rank maximum
  words and message count, converted via alpha-beta.

Besides simulated seconds, raw per-rank flop and word counters are kept
so the Table 1 / Table 2 benchmarks can compare *measured* leading-order
counts against the paper's closed forms.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.vmpi.machine import MachineModel

__all__ = ["CostKind", "PhaseCost", "CostLedger"]


class CostKind(enum.Enum):
    COMPUTE = "compute"
    SEQUENTIAL = "sequential"
    COMM = "comm"


@dataclass
class PhaseCost:
    """Accumulated charges for one phase."""

    seconds: float = 0.0
    #: per-rank-max parallel flops, summed over steps
    flops: float = 0.0
    #: redundant/sequential flops, summed over steps
    seq_flops: float = 0.0
    #: per-rank-max communicated words, summed over steps
    words: float = 0.0
    #: per-rank-max message count, summed over steps
    messages: float = 0.0

    def merge(self, other: "PhaseCost") -> None:
        """Accumulate another phase's charges into this one."""
        self.seconds += other.seconds
        self.flops += other.flops
        self.seq_flops += other.seq_flops
        self.words += other.words
        self.messages += other.messages


class CostLedger:
    """Per-phase simulated-time and volume accounting.

    Parameters
    ----------
    machine:
        The :class:`~repro.vmpi.machine.MachineModel` converting counts
        to seconds.
    p:
        Number of simulated ranks (fixed for the ledger's lifetime; the
        roofline needs it to apportion node memory bandwidth).
    """

    def __init__(self, machine: MachineModel, p: int) -> None:
        if p < 1:
            raise ValueError("rank count must be positive")
        self.machine = machine
        self.p = int(p)
        self.phases: dict[str, PhaseCost] = {}
        #: largest per-rank resident set (words) any kernel step noted
        self.peak_words: float = 0.0

    def note_memory(self, words: float) -> None:
        """Record a kernel step's per-rank resident footprint (words)."""
        if words > self.peak_words:
            self.peak_words = float(words)

    def memory_feasible(self, *, dtype_bytes: int = 8) -> bool:
        """Whether the recorded peak fits each rank's DRAM share."""
        budget = self.machine.mem_words_per_rank(self.p) * 8 / dtype_bytes
        return self.peak_words <= budget

    def _phase(self, phase: str) -> PhaseCost:
        return self.phases.setdefault(phase, PhaseCost())

    # -- charging ---------------------------------------------------------

    def compute(
        self, phase: str, flops: float, mem_words: float = 0.0
    ) -> float:
        """Charge a parallel kernel step; returns the seconds charged."""
        dt = self.machine.compute_seconds(flops, mem_words, self.p)
        entry = self._phase(phase)
        entry.seconds += dt
        entry.flops += flops
        return dt

    def sequential(self, phase: str, flops: float) -> float:
        """Charge a sequential/redundant kernel step."""
        dt = self.machine.sequential_seconds(flops)
        entry = self._phase(phase)
        entry.seconds += dt
        entry.seq_flops += flops
        return dt

    def comm(self, phase: str, words: float, messages: float = 1.0) -> float:
        """Charge a communication step (per-rank max words/messages)."""
        if words <= 0 and messages <= 0:
            return 0.0
        dt = self.machine.comm_seconds(words, messages)
        entry = self._phase(phase)
        entry.seconds += dt
        entry.words += words
        entry.messages += messages
        return dt

    # -- reporting ---------------------------------------------------------

    def seconds(self, phase: str | None = None) -> float:
        """Simulated seconds of one phase, or the total when omitted."""
        if phase is not None:
            return self.phases.get(phase, PhaseCost()).seconds
        return sum(c.seconds for c in self.phases.values())

    def total_flops(self) -> float:
        """Per-rank-max parallel flops across all phases."""
        return sum(c.flops for c in self.phases.values())

    def total_seq_flops(self) -> float:
        """Sequential/redundant flops across all phases."""
        return sum(c.seq_flops for c in self.phases.values())

    def total_words(self) -> float:
        """Per-rank-max communicated words across all phases."""
        return sum(c.words for c in self.phases.values())

    def breakdown(self) -> dict[str, float]:
        """Phase -> simulated seconds, sorted descending."""
        return dict(
            sorted(
                ((k, v.seconds) for k, v in self.phases.items()),
                key=lambda kv: -kv[1],
            )
        )

    def merge(self, other: "CostLedger") -> None:
        """Fold another ledger (same machine/p) into this one."""
        if other.p != self.p:
            raise ValueError("cannot merge ledgers with different rank counts")
        for phase, cost in other.phases.items():
            self._phase(phase).merge(cost)

    def snapshot(self) -> dict[str, PhaseCost]:
        """Deep copy of the phase table (for per-iteration deltas)."""
        return {
            k: PhaseCost(v.seconds, v.flops, v.seq_flops, v.words, v.messages)
            for k, v in self.phases.items()
        }

    def seconds_since(self, snap: dict[str, PhaseCost]) -> float:
        """Total simulated seconds accrued since ``snapshot()``."""
        before = sum(c.seconds for c in snap.values())
        return self.seconds() - before

    def breakdown_since(self, snap: dict[str, PhaseCost]) -> dict[str, float]:
        """Per-phase seconds accrued since ``snapshot()`` (zeros dropped)."""
        out: dict[str, float] = {}
        for phase, cost in self.phases.items():
            delta = cost.seconds - (
                snap[phase].seconds if phase in snap else 0.0
            )
            if delta > 0:
                out[phase] = delta
        return out
