"""A real process-parallel mini-MPI built on ``multiprocessing``.

Everything else in :mod:`repro.vmpi` simulates; this module *executes*:
``run_spmd`` launches one OS process per rank and gives each a
:class:`ProcessComm` supporting the collectives the Tucker algorithms
need (allreduce, reduce-scatter, allgather, broadcast, gather), with
sub-communicators for the per-mode operations.  Collectives are
routed through a coordinator process (star topology — correct, not
bandwidth-optimal; performance modeling stays the simulator's job).

This is the closest offline stand-in for the paper's MPI layer: the
SPMD STHOSVD of :mod:`repro.distributed.mp_sthosvd` runs on it with
genuine process parallelism and is tested against the sequential
algorithms.
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

__all__ = ["ProcessComm", "run_spmd"]

_SENTINEL = "__done__"


@dataclass
class _Request:
    op: str
    op_id: int
    group: tuple[int, ...]
    rank: int
    payload: object
    root: int | None = None


class ProcessComm:
    """Per-rank communicator handle (used inside worker processes).

    Collectives are matched across ranks by a per-rank operation
    counter, so programs must be *loosely synchronous*: every member of
    a collective's group must reach that collective after the same
    number of prior ``ProcessComm`` calls (the natural property of SPMD
    programs where all ranks run the same code).  Divergent call
    sequences deadlock, exactly as mismatched MPI collectives would.
    """

    def __init__(
        self,
        rank: int,
        size: int,
        to_coord: "mp.Queue",
        from_coord: "mp.Queue",
    ) -> None:
        self.rank = rank
        self.size = size
        self._to_coord = to_coord
        self._from_coord = from_coord
        self._op_id = 0

    # -- plumbing ---------------------------------------------------------

    def _exchange(
        self,
        op: str,
        payload: object,
        group: Sequence[int] | None = None,
        root: int | None = None,
    ) -> object:
        group_t = (
            tuple(range(self.size)) if group is None else tuple(group)
        )
        if self.rank not in group_t:
            raise ValueError(
                f"rank {self.rank} not in collective group {group_t}"
            )
        self._op_id += 1
        self._to_coord.put(
            _Request(
                op=op,
                op_id=self._op_id,
                group=group_t,
                rank=self.rank,
                payload=payload,
                root=root,
            )
        )
        return self._from_coord.get()

    # -- collectives --------------------------------------------------------

    def allreduce(
        self, block: np.ndarray, group: Sequence[int] | None = None
    ) -> np.ndarray:
        """Sum over the group; every member receives the total."""
        return self._exchange("allreduce", block, group)

    def reduce_scatter(
        self,
        block: np.ndarray,
        axis: int = 0,
        group: Sequence[int] | None = None,
    ) -> np.ndarray:
        """Sum over the group, then scatter slabs along ``axis`` (the
        ``i``-th group member receives the ``i``-th slab)."""
        return self._exchange("reduce_scatter", (block, axis), group)

    def allgather(
        self,
        block: np.ndarray,
        axis: int = 0,
        group: Sequence[int] | None = None,
    ) -> np.ndarray:
        """Concatenate group members' blocks along ``axis``."""
        return self._exchange("allgather", (block, axis), group)

    def bcast(
        self,
        block: np.ndarray | None,
        root: int,
        group: Sequence[int] | None = None,
    ) -> np.ndarray:
        """Broadcast ``root``'s block to the group."""
        return self._exchange("bcast", block, group, root=root)

    def gather(
        self,
        block: np.ndarray,
        root: int,
        group: Sequence[int] | None = None,
    ) -> list[np.ndarray] | None:
        """Collect blocks at ``root`` (group order); others get None."""
        return self._exchange("gather", block, group, root=root)

    def barrier(self, group: Sequence[int] | None = None) -> None:
        """Block until every group member reaches the barrier."""
        self._exchange("barrier", None, group)


def _coordinator(
    size: int,
    to_coord: "mp.Queue",
    reply_queues: list["mp.Queue"],
) -> None:
    """Collect per-collective contributions, combine, reply."""
    pending: dict[tuple, dict[int, _Request]] = {}
    done = 0
    while done < size:
        msg = to_coord.get()
        if msg == _SENTINEL:
            done += 1
            continue
        key = (msg.op, msg.op_id, msg.group)
        bucket = pending.setdefault(key, {})
        bucket[msg.rank] = msg
        if len(bucket) < len(msg.group):
            continue
        # Complete: combine and reply in group order.
        del pending[key]
        group = msg.group
        reqs = [bucket[r] for r in group]
        op = msg.op
        if op == "allreduce":
            total = reqs[0].payload.copy()
            for r in reqs[1:]:
                total += r.payload
            results = [total] * len(group)
        elif op == "reduce_scatter":
            axis = reqs[0].payload[1]
            total = reqs[0].payload[0].copy()
            for r in reqs[1:]:
                total += r.payload[0]
            results = [
                np.ascontiguousarray(s)
                for s in np.array_split(total, len(group), axis=axis)
            ]
        elif op == "allgather":
            axis = reqs[0].payload[1]
            cat = np.concatenate([r.payload[0] for r in reqs], axis=axis)
            results = [cat] * len(group)
        elif op == "bcast":
            root_req = next(r for r in reqs if r.rank == r.root)
            results = [root_req.payload] * len(group)
        elif op == "gather":
            blocks = [r.payload for r in reqs]
            results = [
                blocks if rank == msg.root else None for rank in group
            ]
        elif op == "barrier":
            results = [None] * len(group)
        else:  # pragma: no cover - defensive
            results = [RuntimeError(f"unknown op {op}")] * len(group)
        for rank, result in zip(group, results):
            reply_queues[rank].put(result)


def _worker(
    fn_bytes: bytes,
    rank: int,
    size: int,
    to_coord: "mp.Queue",
    from_coord: "mp.Queue",
    result_queue: "mp.Queue",
    args: tuple,
) -> None:
    comm = ProcessComm(rank, size, to_coord, from_coord)
    try:
        fn = pickle.loads(fn_bytes)
        out = fn(comm, *args)
        result_queue.put((rank, "ok", out))
    except Exception as exc:  # pragma: no cover - surfaced by run_spmd
        result_queue.put((rank, "error", repr(exc)))
    finally:
        to_coord.put(_SENTINEL)


def run_spmd(
    fn: Callable[..., object],
    size: int,
    *args: object,
    timeout: float = 120.0,
) -> list[object]:
    """Run ``fn(comm, *args)`` on ``size`` real processes.

    ``fn`` must be picklable (a module-level function).  Returns each
    rank's return value in rank order; raises ``RuntimeError`` if any
    rank failed.
    """
    if size < 1:
        raise ValueError("size must be positive")
    ctx = mp.get_context("spawn" if mp.get_start_method() == "spawn" else "fork")
    to_coord: mp.Queue = ctx.Queue()
    reply_queues = [ctx.Queue() for _ in range(size)]
    result_queue: mp.Queue = ctx.Queue()

    coord = ctx.Process(
        target=_coordinator, args=(size, to_coord, reply_queues)
    )
    coord.start()
    workers = [
        ctx.Process(
            target=_worker,
            args=(
                pickle.dumps(fn),
                rank,
                size,
                to_coord,
                reply_queues[rank],
                result_queue,
                args,
            ),
        )
        for rank in range(size)
    ]
    for w in workers:
        w.start()

    results: dict[int, object] = {}
    errors: dict[int, str] = {}
    try:
        for _ in range(size):
            rank, status, payload = result_queue.get(timeout=timeout)
            if status == "ok":
                results[rank] = payload
            else:
                errors[rank] = payload
    finally:
        for w in workers:
            w.join(timeout=10)
            if w.is_alive():  # pragma: no cover - hang safety
                w.terminate()
        coord.join(timeout=10)
        if coord.is_alive():  # pragma: no cover - hang safety
            coord.terminate()
    if errors:
        raise RuntimeError(f"SPMD ranks failed: {errors}")
    return [results[r] for r in range(size)]
