"""A real process-parallel mini-MPI built on ``multiprocessing``.

Everything else in :mod:`repro.vmpi` simulates; this module *executes*:
``run_spmd`` launches one OS process per rank and gives each a
communicator supporting the collectives the Tucker algorithms need
(allreduce, reduce-scatter, allgather, broadcast, gather, barrier) with
sub-communicators for the per-mode operations.

Three transports are available:

* ``"p2p"`` (alias ``"shm"``; default, :class:`ProcessComm` over
  :class:`~repro.vmpi.transport.ShmPoolTransport`) — a peer-to-peer
  point-to-point layer (per-rank inbox queues carrying tagged
  messages; NumPy payloads above a size threshold travel through
  *pooled* ``multiprocessing.shared_memory`` segments without
  pickling, smaller or non-array payloads fall back to pickle) with
  *real* collective
  algorithms on top: pairwise-exchange / recursive-halving
  reduce-scatter, ring / recursive-doubling allgather, Bruck /
  recursive-doubling / Rabenseifner allreduce, binomial-tree
  bcast/gather, and a dissemination barrier.  Algorithms are selected
  by payload size with the thresholds the alpha-beta cost formulas of
  :mod:`repro.vmpi.collectives` imply, so the schedule executed here
  matches what the simulator charges (``tests/test_schedule_cost.py``
  certifies this against the per-collective
  :class:`~repro.vmpi.trace.CollectiveRecord` counters).
* ``"tcp"`` (:class:`ProcessComm` over
  :class:`~repro.vmpi.transport.TcpSocketTransport`) — the same
  communicator and collective algorithms over length-prefixed frames
  on per-peer persistent TCP connections, meshed through a rendezvous
  server.  Bit-identical results and identical collective traces
  (``shm_messages`` aside), just a slower wire; the backend that
  generalizes to multi-host runs via
  :mod:`repro.distributed.launch`.
* ``"star"`` (legacy, :class:`StarComm`) — every collective routed
  through a coordinator process.  Correct but neither
  bandwidth-optimal nor latency-optimal; kept as a conformance
  reference and benchmark baseline
  (``benchmarks/bench_mp_transport.py``).

Programs must be *loosely synchronous*: every member of a collective's
group must reach that collective after the same number of prior
communicator calls (the natural property of SPMD programs).  Divergent
call sequences raise :class:`CollectiveTimeoutError` after
``CommConfig.collective_timeout`` seconds instead of deadlocking.

By default (``CommConfig.deterministic``) every reduction combines
contributions in group-rank order, which makes results bit-identical
to the sequential left-to-right sums of the executable block
collectives — and therefore ``mp_sthosvd`` bit-identical to
``spmd_sthosvd``.  Setting ``deterministic=False`` enables the
tree-ordered power-of-two algorithms (recursive doubling,
recursive-halving reduce-scatter, Rabenseifner) whose reductions are
associativity-reordered, as real MPI implementations do.
"""

from __future__ import annotations

import glob
import math
import os
import pickle
import queue as queue_mod
import sys
import threading
import time
import traceback as traceback_mod
import uuid
from collections import deque
from collections.abc import Callable, Sequence
from dataclasses import dataclass, replace

import multiprocessing as mp
import numpy as np

from repro.core.errors import NumericalFaultError
from repro.vmpi.collectives import select_allreduce_algorithm
from repro.vmpi.faults import (
    EXIT_INJECTED_CRASH,
    FaultInjector,
    FaultPlan,
    InjectedRankCrash,
)
from repro.vmpi.trace import CollectiveRecord, CommTrace
from repro.vmpi.transport import (  # noqa: F401  (re-exported)
    CollectiveTimeoutError,
    ShmPoolTransport,
    TcpSocketTransport,
    Transport,
    TransportClosedError,
    WorldRevokedError,
    _FREE_TAG,
    _REVOKE_TAG,
    _contig,
    _payload_arrays,
    open_rendezvous_listener,
    serve_rendezvous,
)

__all__ = [
    "CollectiveTimeoutError",
    "CommConfig",
    "ProcessComm",
    "RankFailureError",
    "ShmPoolTransport",
    "StarComm",
    "TcpSocketTransport",
    "Transport",
    "TransportClosedError",
    "WorldRevokedError",
    "run_spmd",
]

#: ``CommConfig.recovery`` values that enable in-run elastic recovery
#: (buddy replication + revoke-and-agree + orchestrated continuation).
ELASTIC_POLICIES = ("respawn", "shrink")

#: Accepted ``transport=`` spellings for :func:`run_spmd` (and the
#: ``--backend`` flag of ``repro run``) mapped to canonical names.
TRANSPORT_ALIASES = {
    "p2p": "p2p",
    "shm": "p2p",
    "tcp": "tcp",
    "star": "star",
}

#: Backwards-compatible name for the extracted shm backend (PR 6 moved
#: it to :mod:`repro.vmpi.transport` as :class:`ShmPoolTransport`).
_PeerTransport = ShmPoolTransport

_SENTINEL = "__done__"

#: Liveness poll cadence of the launcher while awaiting results.
_LIVENESS_POLL = 0.25

#: Once a failure is observed (error result or dead process), how long
#: the launcher keeps draining in-flight results before aborting the
#: survivors.  Detection latency is bounded by poll + grace + teardown,
#: a few seconds — not the full run timeout.
_ABORT_GRACE = 2.0


class RankFailureError(RuntimeError):
    """One or more SPMD ranks failed (raised by :func:`run_spmd`).

    The message carries, per failed rank, the remote traceback and the
    tail of its executed-collective trace; the attributes give the
    structured view:

    ``failed_ranks``
        Ranks that raised, crashed, or died without posting a result.
    ``succeeded_ranks``
        Ranks whose results arrived before the abort.
    ``aborted_ranks``
        Healthy ranks the launcher terminated once the failure was
        detected (their collectives could never complete).
    ``exitcodes``
        ``rank -> exitcode`` for ranks whose *process* died (crashes
        and kills; absent for ordinary raised exceptions).
    ``profiles``
        ``rank -> RankProfile`` of every profile that reached the
        launcher before the abort (``CommConfig.profile`` runs only):
        the partial span buffers of the failed ranks — each including
        its last *open* span with a start timestamp, so a hang is
        attributable to a phase — plus full profiles from ranks that
        finished first.  Empty when profiling was off.
    ``recovery_reports``
        Elastic runs (``CommConfig.recovery`` in ``respawn``/
        ``shrink``) only: ``rank -> report`` from every survivor that
        ran the revoke-and-agree round and self-extracted, each
        carrying its agreed failed set, last replicated iteration, and
        the serialized buddy replica — everything
        :func:`repro.distributed.recovery.run_elastic` needs to
        continue the run.
    ``flight_records``
        ``rank -> FlightRing`` — every always-on flight-recorder ring
        that reached the launcher (failed ranks embed theirs in the
        failure report; finished ranks ship theirs before their
        result; woken survivors post theirs on the way out).  Empty
        only when ``CommConfig.flight`` was off.
    ``postmortem``
        :class:`repro.observability.telemetry.Postmortem` merging the
        collected rings into one causally-ordered global timeline with
        a verdict naming the diverging rank and collective, or
        ``None`` when no rings were collected.
    """

    def __init__(
        self,
        message: str,
        *,
        failed: Sequence[int] = (),
        succeeded: Sequence[int] = (),
        aborted: Sequence[int] = (),
        exitcodes: dict[int, int] | None = None,
        profiles: dict[int, object] | None = None,
        recovery_reports: dict[int, dict] | None = None,
        flight_records: dict[int, object] | None = None,
        postmortem: object | None = None,
    ) -> None:
        super().__init__(message)
        self.failed_ranks = tuple(failed)
        self.succeeded_ranks = tuple(succeeded)
        self.aborted_ranks = tuple(aborted)
        self.exitcodes = dict(exitcodes or {})
        self.profiles = dict(profiles or {})
        self.recovery_reports = dict(recovery_reports or {})
        self.flight_records = dict(flight_records or {})
        self.postmortem = postmortem


@dataclass(frozen=True)
class CommConfig:
    """Tunables for the process-parallel communicators.

    Attributes
    ----------
    collective_timeout:
        Seconds any single message/coordinator wait may block before a
        :class:`CollectiveTimeoutError` is raised.
    shm_min_bytes:
        Array payloads of at least this many bytes travel through a
        pooled ``multiprocessing.shared_memory`` segment (no pickling);
        smaller ones are pickled through the inbox queue.  The default
        (256 KiB) is where the two-memcpy segment path overtakes
        pickling through a pipe in 64 KiB chunks.
    deterministic:
        Reduce in group-rank order (bit-identical to the sequential
        left-to-right block collectives).  When ``False``, power-of-two
        groups use the tree-ordered algorithms (recursive doubling /
        recursive halving / Rabenseifner).
    eager_max_words:
        Override for the short/long allreduce threshold (in array
        elements).  ``None`` derives it from the alpha-beta machine
        constants via
        :func:`repro.vmpi.collectives.select_allreduce_algorithm`.
    fault_plan:
        Seeded :class:`~repro.vmpi.faults.FaultPlan` of injection
        points (delays, drops, bit-flips, crashes).  ``None`` (the
        default) constructs no injector — the hot paths pay a single
        ``is None`` test.
    check_numerics:
        Screen every collective result for NaN/Inf and raise a typed
        :class:`~repro.core.errors.NumericalFaultError` naming the
        rank, phase, and collective when corruption is observed.
    transient_retries:
        How many times a blocked collective wait is re-armed after a
        :class:`CollectiveTimeoutError`, each wait scaled by
        ``retry_backoff`` — rides out transient transport stalls
        (e.g. injected delays) without declaring the collective dead.
        ``0`` (default) keeps the fail-fast behavior.
    retry_backoff:
        Multiplicative wait growth per retry.
    tcp_connect_timeout:
        TCP backend only: seconds allotted to the whole mesh setup
        (rendezvous check-in, address exchange, peer connect/accept)
        and to each later reconnect attempt.  Distinct from
        ``collective_timeout`` because setup crosses process-spawn
        latency, not collective skew.
    recovery:
        What happens when a rank dies mid-run.  ``"restart"`` (the
        default) keeps the PR-3 behavior: the world tears down and
        :class:`RankFailureError` is raised.  ``"respawn"`` and
        ``"shrink"`` arm elastic recovery
        (:mod:`repro.distributed.recovery`): every rank replicates its
        sweep state to a buddy over the transport, survivors of a
        failure run a revoke-and-agree round and self-extract with
        their replicas, and the orchestrator continues the run —
        respawn relaunches a full-size world, shrink re-meshes the
        survivors with the dead ranks' logical endpoints *hosted* as
        extra threads on their buddies (the logical world size and
        hence every collective schedule is preserved, which is what
        makes the continuation bit-identical).
    buddy_offset:
        Elastic recovery: rank ``r`` replicates to rank
        ``(r + buddy_offset) % size`` (a ring, so any offset coprime
        with nothing in particular still covers everyone).
    agree_timeout:
        Elastic recovery: per-peer wait of each agreement round.
        Bounded best-effort — the launcher's liveness view is the
        authoritative arbiter; the in-run round exists so survivors
        converge without it in the common case.
    verify:
        Run the tier-2 SPMD correctness verifier
        (:mod:`repro.analysis.verify.runtime`): every collective is
        stamped with a per-communicator sequence number and signature
        (kind, op, root, axis, dtype, shape contract) cross-checked at
        the group head before the payload moves, so a mismatched
        schedule raises a named ``CollectiveMismatchError`` (which
        ranks, which call sites, both signatures) instead of timing
        out; blocked receives publish to a shared wait-for board so
        actual deadlock *cycles* are reported (``DeadlockError``)
        within ~2 s; and an shm-lifecycle sanitizer checks every
        pooled segment for use-after-release, double-release, and
        leak-at-exit.  Control traffic is counter-neutral (like the
        ``shmfree`` credits), so traces and reductions stay
        bit-identical to a non-verify run.  Requires the ``"p2p"``
        transport.
    profile:
        Arm the per-rank span profiler and metrics registry
        (:mod:`repro.observability`): nested spans for sweeps, phases,
        kernels, and each collective, plus counters/gauges/histograms
        (bytes moved, TTM flops, cache hits/evictions, checkpoint
        write time, collective wait-vs-transfer split).  Profiles are
        gathered by :func:`run_spmd` (``profile_out``) and attached to
        :class:`RankFailureError` on failure.  Nothing on the payload
        path is touched, so profiled runs stay bit- and
        trace-identical to plain runs; when off (default) no profiler
        exists and every boundary pays a single ``is None`` test, like
        ``fault_plan``.  Requires the ``"p2p"`` transport.
    profile_max_spans:
        Span-buffer capacity per rank; once full, further spans are
        counted in ``RankProfile.dropped`` instead of recorded
        (metrics keep accumulating), bounding profiler memory.
    race_detect:
        Arm the tier-2 happens-before race sanitizer
        (:mod:`repro.analysis.verify.races`): every thread that
        touches the rank runtime (main rank thread, overlap prefetch
        worker, hosted-rank shrink threads) carries a vector clock;
        shm-pool segment accesses, transport-endpoint occupancy, and
        ``annotate_read``/``annotate_write`` user annotations are
        checked for conflicting accesses with no happens-before
        order, which raise ``RaceError`` (SPMD221–223) carrying both
        conflicting stacks.  HB edges are derived from the message
        channels (send→recv), shm free credits, lock
        acquire/release, and fork/join of the overlap worker, so
        detection depends only on the logical schedule — a seeded
        race fires deterministically, not just on unlucky
        interleavings.  Nothing on the payload path changes, so
        clean detect-on runs stay bit- and trace-identical with
        bounded overhead (``bench_race_overhead.py`` gates <10 % in
        CI).  Requires the ``"p2p"`` transport.
    overlap:
        Pipeline (double-buffer) the deterministic reduction
        collectives: each receive is prefetched on a per-rank overlap
        worker thread while the main thread folds the previous
        contribution into the accumulator (pairwise reduce-scatter) or
        copies the previous ring chunk into the output vector (the
        allgather stage of long allreduces), hiding wire wait and
        shm/socket copy-out behind payload math.  The message
        schedule, tags, payloads, reduction order, and counters are
        all unchanged, so overlapped runs stay bit-identical and
        trace-counter-identical to serial runs; with ``profile`` on,
        the hidden blocked time is attributed to
        ``collective_wait_hidden_seconds`` instead of
        ``collective_wait_seconds``, which is how the attribution
        report shows the visible-wait share shrinking.  The strict
        one-in-flight hand-off means the transport never has two
        threads in it at once.  Off by default.  (The plain ring
        allgather is unaffected: its steps are serially dependent and
        it has no local payload math to hide; overlap pays off where
        the α-β model charges per-step payload work.)
    flight:
        Always-on flight recorder
        (:class:`repro.observability.telemetry.FlightRecorder`): every
        rank keeps a bounded ring buffer of structured events --
        collective begin/end with group and sequence number, transport
        posts, sweep/phase transitions, checkpoint/replication/
        recovery events, guard-rail trips -- recorded *even when*
        ``profile`` is off.  Each event costs one clock read and one
        deque append and nothing on the payload path is touched, so
        recorder-on runs stay bit-identical
        (``bench_telemetry_overhead.py`` gates <10 % in CI).  On
        failure all rings are collected and merged into a causal
        postmortem timeline attached to :class:`RankFailureError`.
        On by default; turn off only for overhead baselines.
    flight_capacity:
        Ring capacity (events per rank) of the flight recorder.  Once
        full, the oldest events are dropped (the monotone ``seq``
        makes the drop count visible in the snapshot).
    telemetry_interval:
        Seconds between out-of-band telemetry heartbeats pushed from
        every rank to the launcher over the control plane (sweep
        progress, residual/rank trajectory, current phase,
        blocked-collective info).  ``0`` (default) pushes nothing;
        passing a monitor to :func:`run_spmd` arms it at 0.5 s when
        unset.
    """

    collective_timeout: float = 60.0
    shm_min_bytes: int = 1 << 18
    deterministic: bool = True
    overlap: bool = False
    eager_max_words: int | None = None
    fault_plan: FaultPlan | None = None
    check_numerics: bool = False
    transient_retries: int = 0
    retry_backoff: float = 2.0
    tcp_connect_timeout: float = 20.0
    recovery: str = "restart"
    buddy_offset: int = 1
    agree_timeout: float = 2.0
    verify: bool = False
    profile: bool = False
    profile_max_spans: int = 1 << 16
    race_detect: bool = False
    flight: bool = True
    flight_capacity: int = 256
    telemetry_interval: float = 0.0


# ---------------------------------------------------------------------------
# the peer-to-peer communicator and its collective algorithms
# ---------------------------------------------------------------------------


def _ceil_log2(p: int) -> int:
    return max(1, math.ceil(math.log2(p))) if p > 1 else 0


def _pow2ceil(p: int) -> int:
    return 1 << _ceil_log2(p)


def _split_slices(extent: int, parts: int, axis: int, ndim: int) -> list[tuple]:
    """``np.array_split`` boundaries along ``axis`` as index tuples."""
    sizes = [extent // parts + (1 if i < extent % parts else 0)
             for i in range(parts)]
    out = []
    start = 0
    for s in sizes:
        idx: list[slice] = [slice(None)] * ndim
        idx[axis] = slice(start, start + s)
        out.append(tuple(idx))
        start += s
    return out


class ProcessComm:
    """Per-rank communicator over the peer-to-peer transport.

    Collectives are matched across ranks by a per-rank operation
    counter carried in every message tag, so programs must be *loosely
    synchronous* (see the module docstring); a diverged sequence fails
    with :class:`CollectiveTimeoutError` rather than deadlocking.
    """

    transport = "p2p"

    def __init__(
        self,
        rank: int,
        size: int,
        channel: Transport,
        config: CommConfig | None = None,
        board: object | None = None,
    ) -> None:
        self.rank = rank
        self.size = size
        self._t = channel
        self.config = config or CommConfig()
        self.trace = CommTrace()
        #: caller-set phase label stamped on every CollectiveRecord
        #: (same vocabulary as the simulator's ledger phases); exposed
        #: as the ``phase`` property so transitions land in the flight
        #: recorder.
        self._phase = ""
        self._op_id = 0
        #: live sweep-progress dict published via note_progress() and
        #: shipped in telemetry heartbeats.
        self._progress: dict[str, object] = {}
        #: always-on flight recorder (repro.observability.telemetry):
        #: a bounded ring of structured events kept even when
        #: profiling is off, collected into causal postmortems on
        #: failure.  None only when CommConfig.flight is off, in which
        #: case every recording boundary pays one `is None` test.
        self.flight = None
        if self.config.flight:
            from repro.observability.telemetry import FlightRecorder

            self.flight = FlightRecorder(rank, self.config.flight_capacity)
            channel.flight = self.flight
        #: lazily created single-thread executor for CommConfig.overlap
        #: receive prefetching (None until the first overlapped
        #: collective, so non-overlap runs never spawn a thread).
        self._prefetch_pool = None
        plan = self.config.fault_plan
        self._inj = (
            FaultInjector(plan, rank)
            if plan is not None and plan.for_rank(rank)
            else None
        )
        channel.injector = self._inj
        #: tier-2 verifier (repro.analysis.verify.runtime), imported
        #: lazily: that package's parent imports the distributed
        #: drivers, which import this module — a module-scope import
        #: here would be circular.  At verify-activation time both
        #: sides are fully initialized.
        self._vrt = None
        self._vseq: dict[tuple[int, ...], int] = {}
        if self.config.verify:
            from repro.analysis.verify import runtime as _vrt

            self._vrt = _vrt
            # The shm-lifecycle sanitizer only makes sense on backends
            # with a pooled-segment wire; non-shm transports (tcp) keep
            # signature matching and deadlock detection and skip the
            # lifecycle checks.
            if getattr(channel, "uses_shm_pool", False):
                channel.sanitizer = _vrt.ShmSanitizer(rank)
            if board is not None and size > 1:
                channel.monitor = _vrt.WaitMonitor(board, rank, size)
        #: per-rank span profiler (repro.observability), imported
        #: lazily like the verifier; None unless config.profile, so
        #: every instrumented boundary pays one `is None` test.
        self.profiler = None
        if self.config.profile:
            from repro.observability.spans import SpanProfiler

            self.profiler = SpanProfiler(
                rank, capacity=self.config.profile_max_spans
            )
            channel.profiler = self.profiler
        #: tier-2 happens-before race detector
        #: (repro.analysis.verify.races), imported lazily like the
        #: verifier; process-global so hosted ranks sharing one
        #: address space share one clock space.  None unless
        #: config.race_detect, so every instrumented boundary pays a
        #: single `is None` test.
        self._race = None
        if self.config.race_detect:
            from repro.analysis.verify import races as _races

            self._race = _races.get_detector()
            self._race.register_thread(f"rank-{rank}")
            channel.race_detector = self._race
        #: elastic recovery manager (repro.distributed.recovery),
        #: imported lazily like the verifier/profiler; None unless
        #: CommConfig.recovery asks for respawn/shrink on a >1 world.
        self.recovery_mgr = None
        if self.config.recovery in ELASTIC_POLICIES and size > 1:
            from repro.distributed.recovery import RecoveryManager

            self.recovery_mgr = RecoveryManager(self)

    # -- plumbing -----------------------------------------------------------

    @property
    def phase(self) -> str:
        return self._phase

    @phase.setter
    def phase(self, value: str) -> None:
        if value != self._phase:
            fr = self.flight
            if fr is not None:
                fr.record("phase", self._op_id, value)
        self._phase = value

    def _begin_collective(self, op: str = "", gsize: int = 0) -> None:
        """Advance the operation counter; log the begin; fire faults."""
        self._op_id += 1
        fr = self.flight
        if fr is not None:
            fr.record(
                "collective_begin", self._op_id, self._phase, (op, gsize)
            )
        if self._inj is not None:
            self._inj.at_collective(self._op_id, self.phase)

    def _guard_numerics(self, op: str, result: object) -> None:
        """Optional NaN/Inf screen on a collective's result."""
        if not self.config.check_numerics:
            return
        arrays: list[np.ndarray]
        if isinstance(result, np.ndarray):
            arrays = [result]
        elif isinstance(result, (list, tuple)):
            arrays = [a for a in result if isinstance(a, np.ndarray)]
        else:
            return
        for a in arrays:
            if a.dtype.kind in "fc" and not np.all(np.isfinite(a)):
                fr = getattr(self, "flight", None)
                if fr is not None:
                    fr.record(
                        "guard", self._op_id, self.phase,
                        f"non-finite in {op}",
                    )
                raise NumericalFaultError(
                    f"rank {self.rank}: non-finite values in {op} result "
                    f"(collective #{self._op_id}, phase {self.phase!r})",
                    rank=self.rank,
                    phase=self.phase,
                    op=op,
                )

    def _group(self, group: Sequence[int] | None) -> tuple[int, ...]:
        group_t = (
            tuple(range(self.size)) if group is None else tuple(group)
        )
        if self.rank not in group_t:
            raise ValueError(
                f"rank {self.rank} not in collective group {group_t}"
            )
        return group_t

    def _vsend(
        self, group: tuple[int, ...], dst_v: int, phase: str, payload: object
    ) -> None:
        self._t.send(group[dst_v], (self._op_id, phase), payload)

    def _vrecv(self, group: tuple[int, ...], src_v: int, phase: str) -> object:
        return self._vrecv_via(self._t.recv, group, src_v, phase)

    def _vrecv_prefetch(
        self, group: tuple[int, ...], src_v: int, phase: str
    ) -> object:
        """The overlap worker's receive: same retry/purge behavior,
        but blocked time lands in the hidden-wait histogram."""
        return self._vrecv_via(self._t.recv_prefetch, group, src_v, phase)

    def _vrecv_via(
        self,
        recv: Callable[..., object],
        group: tuple[int, ...],
        src_v: int,
        phase: str,
    ) -> object:
        wait = self.config.collective_timeout
        retries = self.config.transient_retries
        while True:
            try:
                return recv(
                    group[src_v], (self._op_id, phase), timeout=wait
                )
            except CollectiveTimeoutError:
                if retries > 0:
                    # Transient-stall tolerance: re-arm the wait with
                    # backoff before declaring the collective dead.
                    retries -= 1
                    wait *= self.config.retry_backoff
                    continue
                # The collective is dead; peers will not come back for
                # the in-flight segments, so release everything now
                # rather than relying on the launcher's sweep.
                self._t.purge()
                raise

    # -- tier-2 verification -------------------------------------------------

    def _call_site(self) -> str:
        """The first stack frame outside this module — where the user
        program issued the collective."""
        here = __file__
        frame = sys._getframe(1)
        while frame is not None and frame.f_code.co_filename == here:
            frame = frame.f_back
        if frame is None:  # pragma: no cover - always has a caller
            return ""
        code = frame.f_code
        return f"{code.co_filename}:{frame.f_lineno} in {code.co_name}"

    def _verify_collective(
        self,
        kind: str,
        group: tuple[int, ...],
        *,
        op: str = "",
        root: int = -1,
        axis: int = -1,
        block: object = None,
    ) -> None:
        """One matching round of the tier-2 verifier.

        Every group member submits its signature for this communicator
        sequence number to the group head over the counter-neutral
        control channel; the head cross-checks the round and replies a
        verdict.  Runs *before* the payload collective, so a
        mismatched schedule (wrong root, diverged kind, incompatible
        shapes) raises :class:`CollectiveMismatchError` on every
        member instead of corrupting data or stalling to the timeout.
        """
        vrt = self._vrt
        if vrt is None or len(group) < 2:
            return
        vseq = self._vseq.get(group, 0) + 1
        self._vseq[group] = vseq
        dtype, shape = "", ()
        if isinstance(block, np.ndarray):
            dtype, shape = str(block.dtype), tuple(block.shape)
        sig = vrt.CollectiveSignature(
            kind=kind,
            seq=vseq,
            op=op,
            root=root,
            axis=axis,
            dtype=dtype,
            shape=shape,
            call_site=self._call_site(),
        )
        head = group[0]
        sig_tag = ("vfy", group, vseq)
        verdict_tag = ("vok", group, vseq)
        timeout = self.config.collective_timeout
        if self.rank != head:
            # Sanctioned escapes below: the verifier *owns* the
            # vfy/vok control namespace SPMD124 protects.
            self._t.ctrl_send(head, sig_tag, (self.rank, sig))  # spmdlint: ignore[SPMD124]
            try:
                verdict = self._t.ctrl_recv(  # spmdlint: ignore[SPMD124]
                    head, verdict_tag, timeout=timeout
                )
            except CollectiveTimeoutError:
                # The head died or diverged mid-round; it is not
                # coming back for in-flight segments either.
                self._t.purge()
                raise
        else:
            sigs = {self.rank: sig}
            missing: list[int] = []
            for r in group[1:]:
                try:
                    peer_rank, peer_sig = self._t.ctrl_recv(  # spmdlint: ignore[SPMD124]
                        r, sig_tag, timeout=timeout
                    )
                    sigs[peer_rank] = peer_sig
                except CollectiveTimeoutError:
                    missing.append(r)
            if missing:
                verdict = (
                    "SPMD202",
                    vrt.summarize_mismatch(group, sigs, missing, timeout),
                )
            else:
                verdict = vrt.match_signatures(sigs)
            for r in group[1:]:
                if r not in missing:
                    self._t.ctrl_send(r, verdict_tag, verdict)  # spmdlint: ignore[SPMD124]
        if verdict is not None:
            rule_id, message = verdict
            # Peers are not coming back for in-flight segments.
            self._t.purge()
            raise vrt.CollectiveMismatchError(message, rule_id=rule_id)

    def verify_shutdown(self) -> None:
        """End-of-rank verify checks (no-op unless ``verify=True``)."""
        self._t.verify_shutdown()

    def _record(
        self, op: str, algorithm: str, group_size: int, before: tuple[int, ...]
    ) -> None:
        after = self._t.counters()
        delta = tuple(a - b for a, b in zip(after, before))
        self.trace.add(
            CollectiveRecord(op, algorithm, group_size, *delta, self.phase)
        )
        fr = self.flight
        if fr is not None:
            fr.record(
                "collective_end", self._op_id, self._phase, (op, group_size)
            )

    # -- point-to-point -----------------------------------------------------

    def send(self, dest: int, payload: object, tag: int = 0) -> None:
        """Send ``payload`` to global rank ``dest`` (non-blocking)."""
        self._t.send(dest, ("p2p", tag), payload)

    def recv(
        self, src: int, tag: int = 0, timeout: float | None = None
    ) -> object:
        """Receive the next ``tag``-ged message from global rank ``src``."""
        try:
            out = self._t.recv(src, ("p2p", tag), timeout=timeout)
        except CollectiveTimeoutError:
            self._t.purge()
            raise
        fr = self.flight
        if fr is not None:
            fr.record("p2p_recv", self._op_id, self._phase, src)
        return out

    # -- race-sanitizer annotations -----------------------------------------

    def annotate_write(self, label: str) -> None:
        """Declare a write to the shared location ``label`` to the
        happens-before race sanitizer (no-op unless
        ``race_detect=True``).  Hosted ranks run as threads in one
        process and may share Python objects the detector cannot see
        into; annotating accesses (TSan-annotation style) extends race
        coverage to that state.  Raises ``RaceError`` (SPMD221/222)
        when the write is unordered against a prior access by another
        thread."""
        if self._race is not None:
            self._race.on_access(("user", label), "w")

    def annotate_read(self, label: str) -> None:
        """Declare a read of the shared location ``label`` to the race
        sanitizer (see :meth:`annotate_write`)."""
        if self._race is not None:
            self._race.on_access(("user", label), "r")

    # -- telemetry ----------------------------------------------------------

    def note_progress(self, **info: object) -> None:
        """Publish sweep progress (``iteration=``, ``total=``,
        ``residual=``, ``ranks=``, ...) to the flight recorder and the
        live telemetry channel.  Drivers call this at sweep/mode
        boundaries; it costs one dict update (plus one ring append
        when the recorder is armed) and touches nothing on the payload
        path."""
        self._progress.update(info)
        fr = self.flight
        if fr is not None:
            fr.record("sweep", self._op_id, self._phase, dict(info))

    def note_event(self, kind: str, detail: object = "") -> None:
        """Record a structured runtime event (``checkpoint``,
        ``replicate``, ``recovery``, ...) in the flight recorder.
        No-op when the recorder is disarmed; ``detail`` must be
        picklable."""
        fr = self.flight
        if fr is not None:
            fr.record(kind, self._op_id, self._phase, detail)

    def telemetry_sample(self) -> dict:
        """One heartbeat for the out-of-band telemetry channel.

        Called from the pusher thread, so every read of main-thread
        state is tolerant of concurrent mutation (a torn sample is
        dropped; the next beat sees fresh state)."""
        try:
            progress = dict(self._progress)
        except RuntimeError:  # raced a note_progress update
            progress = {}
        sample = {
            "kind": "heartbeat",
            "rank": self.rank,
            "ts": time.time(),
            "op_id": self._op_id,
            "phase": self._phase,
            "progress": progress,
        }
        fr = self.flight
        if fr is not None:
            sample["flight_seq"] = fr.seq
            open_ev = fr.open_collective()
            if open_ev is not None:
                detail = open_ev[5]
                sample["blocked"] = {
                    "op": detail[0]
                    if isinstance(detail, tuple)
                    else str(detail),
                    "op_id": open_ev[3],
                    "seconds": round(fr.now() - open_ev[1], 3),
                }
        prof = self.profiler
        if prof is not None:
            try:
                sample["metrics"] = prof.metrics.snapshot()
            except RuntimeError:  # pragma: no cover - raced an update
                pass
        return sample

    # -- collectives --------------------------------------------------------

    def allreduce(
        self, block: np.ndarray, group: Sequence[int] | None = None
    ) -> np.ndarray:
        """Sum over the group; every member receives the total."""
        group_t = self._group(group)
        self._begin_collective("allreduce", len(group_t))
        block = np.asarray(block)
        self._verify_collective("allreduce", group_t, op="sum", block=block)
        before = self._t.counters()
        prof = self.profiler
        if prof is not None:
            prof.begin("allreduce", "collective", self.phase)
        try:
            out, algorithm = self._allreduce(block, group_t)
        finally:
            if prof is not None:
                prof.end()
        self._record("allreduce", algorithm, len(group_t), before)
        self._guard_numerics("allreduce", out)
        return out

    def reduce_scatter(
        self,
        block: np.ndarray,
        axis: int = 0,
        group: Sequence[int] | None = None,
    ) -> np.ndarray:
        """Sum over the group, then scatter slabs along ``axis`` (the
        ``i``-th group member receives the ``i``-th slab)."""
        group_t = self._group(group)
        self._begin_collective("reduce_scatter", len(group_t))
        block = np.asarray(block)
        self._verify_collective(
            "reduce_scatter", group_t, op="sum", axis=axis, block=block
        )
        before = self._t.counters()
        prof = self.profiler
        if prof is not None:
            prof.begin("reduce_scatter", "collective", self.phase)
        try:
            out, algorithm = self._reduce_scatter(block, axis, group_t)
        finally:
            if prof is not None:
                prof.end()
        self._record("reduce_scatter", algorithm, len(group_t), before)
        self._guard_numerics("reduce_scatter", out)
        return out

    def allgather(
        self,
        block: np.ndarray,
        axis: int = 0,
        group: Sequence[int] | None = None,
    ) -> np.ndarray:
        """Concatenate group members' blocks along ``axis``."""
        group_t = self._group(group)
        self._begin_collective("allgather", len(group_t))
        block = np.asarray(block)
        self._verify_collective("allgather", group_t, axis=axis, block=block)
        before = self._t.counters()
        prof = self.profiler
        if prof is not None:
            prof.begin("allgather", "collective", self.phase)
        try:
            out, algorithm = self._allgather(block, axis, group_t)
        finally:
            if prof is not None:
                prof.end()
        self._record("allgather", algorithm, len(group_t), before)
        self._guard_numerics("allgather", out)
        return out

    def bcast(
        self,
        block: np.ndarray | None,
        root: int,
        group: Sequence[int] | None = None,
    ) -> np.ndarray:
        """Broadcast ``root``'s block to the group (binomial tree)."""
        group_t = self._group(group)
        self._begin_collective("bcast", len(group_t))
        self._verify_collective("bcast", group_t, root=root, block=block)
        before = self._t.counters()
        prof = self.profiler
        if prof is not None:
            prof.begin("bcast", "collective", self.phase)
        try:
            out = self._bcast(block, root, group_t)
        finally:
            if prof is not None:
                prof.end()
        self._record("bcast", "binomial", len(group_t), before)
        self._guard_numerics("bcast", out)
        return out

    def gather(
        self,
        block: np.ndarray,
        root: int,
        group: Sequence[int] | None = None,
    ) -> list[np.ndarray] | None:
        """Collect blocks at ``root`` (group order); others get None."""
        group_t = self._group(group)
        self._begin_collective("gather", len(group_t))
        block = np.asarray(block)
        self._verify_collective("gather", group_t, root=root, block=block)
        before = self._t.counters()
        prof = self.profiler
        if prof is not None:
            prof.begin("gather", "collective", self.phase)
        try:
            out = self._gather(block, root, group_t)
        finally:
            if prof is not None:
                prof.end()
        self._record("gather", "binomial", len(group_t), before)
        self._guard_numerics("gather", out)
        return out

    def barrier(self, group: Sequence[int] | None = None) -> None:
        """Block until every group member reaches the barrier
        (dissemination algorithm, ``ceil(log2 p)`` rounds)."""
        group_t = self._group(group)
        self._begin_collective("barrier", len(group_t))
        self._verify_collective("barrier", group_t)
        before = self._t.counters()
        prof = self.profiler
        if prof is not None:
            prof.begin("barrier", "collective", self.phase)
        try:
            self._barrier(group_t)
        finally:
            if prof is not None:
                prof.end()
        self._record("barrier", "dissemination", len(group_t), before)

    # -- algorithm building blocks -----------------------------------------

    def _bruck_allgather_items(
        self,
        group: tuple[int, ...],
        me: int,
        item: np.ndarray,
        phase: str,
    ) -> dict[int, np.ndarray]:
        """Recursive-doubling (Bruck) allgather of one item per rank.

        Works for any group size in ``ceil(log2 p)`` rounds; every rank
        sends exactly ``p - 1`` items in total.  Each rank's held set is
        a contiguous (mod ``p``) window starting at its own position.
        """
        g = len(group)
        have: dict[int, np.ndarray] = {me: item}
        held = 1
        r = 0
        while held < g:
            cnt = min(held, g - held)
            dst = (me - held) % g
            src = (me + held) % g
            self._vsend(
                group,
                dst,
                f"{phase}/bk{r}",
                {(me + i) % g: have[(me + i) % g] for i in range(cnt)},
            )
            got = self._vrecv(group, src, f"{phase}/bk{r}")
            have.update(got)
            held += cnt
            r += 1
        return have

    # -- CommConfig.overlap machinery ---------------------------------------
    #
    # The overlap worker and the main thread obey a strict one-in-flight
    # hand-off: while a prefetched receive is outstanding, the main
    # thread touches only NumPy buffers (accumulator adds, assembly
    # copies) and never the transport, and it joins the future before
    # issuing its next transport call.  The transport therefore always
    # has exactly one user at any instant — it needs no locks — and the
    # profiler/metrics registries are never written concurrently (the
    # worker writes only the transport-level wait/transfer histograms,
    # which the main thread leaves alone while a collective is open).

    def _overlap_pool(self) -> "ThreadPoolExecutor":
        pool = self._prefetch_pool
        if pool is None:
            from concurrent.futures import ThreadPoolExecutor

            pool = self._prefetch_pool = ThreadPoolExecutor(
                max_workers=1, thread_name_prefix=f"overlap-r{self.rank}"
            )
        return pool

    def shutdown_overlap(self) -> None:
        """Stop the overlap worker if one was ever created.  Cheap: by
        construction every prefetch future has been drained, so the
        worker is idle and the join returns immediately."""
        pool = self._prefetch_pool
        if pool is not None:
            self._prefetch_pool = None
            pool.shutdown(wait=True)

    @staticmethod
    def _drain_future(fut: object) -> None:
        """Join a still-outstanding prefetch on an error path so no
        worker is left inside the transport, swallowing its outcome
        (the primary exception is already propagating)."""
        if fut is not None:
            try:
                fut.result()
            except BaseException:
                pass

    def _submit_prefetch(self, group, src_v, tag):
        """Submit a receive prefetch to the overlap worker, carrying
        fork/join happens-before edges when the race detector is on:
        the worker joins the submitter's clock on entry and hands its
        own clock back with the result, so accesses on either side of
        the hand-off are ordered and the one-in-flight contract shows
        up clean (only genuinely concurrent access would race)."""
        pool = self._overlap_pool()
        det = self._race
        if det is None:
            return pool.submit(self._vrecv_prefetch, group, src_v, tag)
        start = det.fork_point()

        def _task():
            det.register_thread(f"overlap-worker-rank-{self.rank}")
            det.join_point(start)
            out = self._vrecv_prefetch(group, src_v, tag)
            return (det.fork_point(), out)

        return pool.submit(_task)

    def _join_prefetch(self, fut):
        """Blockingly take a prefetch result, merging the worker's
        clock into the calling thread when the race detector is on."""
        out = fut.result()
        det = self._race
        if det is not None:
            token, out = out
            det.join_point(token)
        return out

    def _pairwise_reduce_parts(
        self,
        group: tuple[int, ...],
        me: int,
        parts: Sequence[np.ndarray],
        phase: str,
    ) -> np.ndarray:
        """Pairwise-exchange reduce-scatter: rank ``j`` receives every
        rank's ``j``-th part and reduces them in group-rank order
        (bit-identical to a left-to-right sum).  ``p - 1`` messages and
        ``n (p-1)/p`` words per rank — the ring reduce-scatter cost."""
        g = len(group)
        for j in range(g):
            if j != me:
                self._vsend(group, j, f"{phase}/pw", {me: parts[j]})
        if self.config.overlap and g > 1:
            return self._pairwise_reduce_overlap(group, me, parts, phase)
        acc: np.ndarray | None = None
        for j in range(g):
            if j == me:
                contrib = np.asarray(parts[me])
            else:
                contrib = self._vrecv(group, j, f"{phase}/pw")[j]
            if acc is None:
                acc = np.array(contrib, copy=True)
            else:
                acc += contrib
        assert acc is not None
        return acc

    def _pairwise_reduce_overlap(
        self,
        group: tuple[int, ...],
        me: int,
        parts: Sequence[np.ndarray],
        phase: str,
    ) -> np.ndarray:
        """The pipelined tail of :meth:`_pairwise_reduce_parts` (all
        sends already posted): identical receives in identical order,
        but each receive after the first is prefetched on the overlap
        worker while the main thread folds the previous contribution
        into the accumulator — the wire wait and copy-out of
        contribution ``j+1`` hide behind the ``acc += contrib_j``
        payload math.  Same adds in the same group-rank order, so the
        result is bit-identical to the serial loop."""
        g = len(group)
        tag = f"{phase}/pw"
        sources = [j for j in range(g) if j != me]
        fut = self._submit_prefetch(group, sources[0], tag)
        nxt = 1
        acc: np.ndarray | None = None
        try:
            for j in range(g):
                if j == me:
                    contrib = np.asarray(parts[me])
                else:
                    payload = self._join_prefetch(fut)
                    fut = (
                        self._submit_prefetch(group, sources[nxt], tag)
                        if nxt < len(sources)
                        else None
                    )
                    nxt += 1
                    contrib = payload[j]
                if acc is None:
                    acc = np.array(contrib, copy=True)
                else:
                    acc += contrib
        except BaseException:
            if fut is not None and not fut.done():
                self._drain_future(fut)
            raise
        assert acc is not None
        return acc

    def _ring_allgather_overlap(
        self,
        group: tuple[int, ...],
        me: int,
        part: np.ndarray,
        phase: str,
        slices: Sequence[slice],
        out: np.ndarray,
    ) -> np.ndarray:
        """Ring allgather of reduced chunks assembled directly into
        ``out`` (chunk geometry is known to the caller), with the
        assembly copy overlapped: each step posts its forward send,
        prefetches the ring receive on the overlap worker, and writes
        the *previous* chunk into ``out`` while the receive blocks.
        Same sends, receives, and tags as
        :meth:`_ring_allgather_parts` plus the same total copy work as
        the ``np.concatenate`` it replaces — just scheduled under the
        wire wait."""
        g = len(group)
        right = (me + 1) % g
        left = (me - 1) % g
        prev_idx, prev = me, np.asarray(part)
        fut = None
        try:
            for s in range(g - 1):
                self._vsend(
                    group, right, f"{phase}/rg{s}", {prev_idx: prev}
                )
                fut = self._submit_prefetch(group, left, f"{phase}/rg{s}")
                out[slices[prev_idx]] = prev
                got = self._join_prefetch(fut)
                fut = None
                ((prev_idx, prev),) = got.items()
        except BaseException:
            if fut is not None and not fut.done():
                self._drain_future(fut)
            raise
        out[slices[prev_idx]] = prev
        return out

    def _halving_reduce_scatter_parts(
        self,
        group: tuple[int, ...],
        me: int,
        parts: Sequence[np.ndarray],
        phase: str,
    ) -> np.ndarray:
        """Recursive-halving reduce-scatter (power-of-two groups):
        ``ceil(log2 p)`` rounds, ``n (p-1)/p`` words per rank, with the
        tree-ordered reduction real MPI uses."""
        g = len(group)
        cur: dict[int, np.ndarray] = {
            j: np.array(parts[j], copy=True) for j in range(g)
        }
        lo, hi = 0, g
        r = 0
        while hi - lo > 1:
            half = (hi - lo) // 2
            mid = lo + half
            if me < mid:
                partner = me + half
                send_keys = range(mid, hi)
            else:
                partner = me - half
                send_keys = range(lo, mid)
            self._vsend(
                group,
                partner,
                f"{phase}/rh{r}",
                {k: cur[k] for k in send_keys},
            )
            got = self._vrecv(group, partner, f"{phase}/rh{r}")
            for k, v in got.items():
                cur[k] += v
            if me < mid:
                hi = mid
            else:
                lo = mid
            cur = {k: cur[k] for k in range(lo, hi)}
            r += 1
        return cur[me]

    def _ring_allgather_parts(
        self,
        group: tuple[int, ...],
        me: int,
        part: np.ndarray,
        phase: str,
    ) -> dict[int, np.ndarray]:
        """Ring allgather: ``p - 1`` steps, each rank forwarding the
        chunk it received last round to its right neighbour."""
        g = len(group)
        have: dict[int, np.ndarray] = {me: np.asarray(part)}
        right = (me + 1) % g
        left = (me - 1) % g
        for s in range(g - 1):
            send_idx = (me - s) % g
            self._vsend(
                group, right, f"{phase}/rg{s}", {send_idx: have[send_idx]}
            )
            got = self._vrecv(group, left, f"{phase}/rg{s}")
            have.update(got)
        return have

    def _doubling_allgather_parts(
        self,
        group: tuple[int, ...],
        me: int,
        part: np.ndarray,
        phase: str,
    ) -> dict[int, np.ndarray]:
        """Recursive-doubling allgather (power-of-two groups)."""
        g = len(group)
        have: dict[int, np.ndarray] = {me: np.asarray(part)}
        mask = 1
        r = 0
        while mask < g:
            partner = me ^ mask
            self._vsend(group, partner, f"{phase}/dg{r}", dict(have))
            have.update(self._vrecv(group, partner, f"{phase}/dg{r}"))
            mask <<= 1
            r += 1
        return have

    # -- collective implementations ----------------------------------------

    def _use_short_allreduce(self, n_words: int, g: int) -> bool:
        if self.config.eager_max_words is not None:
            return n_words <= self.config.eager_max_words
        return select_allreduce_algorithm(float(n_words), g) == "short"

    def _allreduce(
        self, arr: np.ndarray, group: tuple[int, ...]
    ) -> tuple[np.ndarray, str]:
        g = len(group)
        if g == 1:
            return arr.copy(), "single"
        me = group.index(self.rank)
        flat = np.ascontiguousarray(arr).reshape(-1)
        n = flat.size
        pow2 = g & (g - 1) == 0
        short = self._use_short_allreduce(n, g)

        if short and not self.config.deterministic and pow2:
            # Recursive doubling on partial sums.
            acc = flat.copy()
            mask = 1
            r = 0
            while mask < g:
                partner = me ^ mask
                self._vsend(group, partner, f"ar/rd{r}", acc)
                acc = acc + self._vrecv(group, partner, f"ar/rd{r}")
                mask <<= 1
                r += 1
            return acc.reshape(arr.shape), "recursive-doubling"

        if short:
            # Bruck allgather of contributions, rank-order local sum.
            have = self._bruck_allgather_items(group, me, flat, "ar")
            acc = np.array(have[0], copy=True)
            for j in range(1, g):
                acc += have[j]
            return acc.reshape(arr.shape), "bruck-gather"

        # Long payloads: reduce-scatter the flat vector, allgather the
        # reduced chunks.  Chunking is elementwise-disjoint, so the
        # rank-order pairwise path reproduces the left-to-right sum.
        bounds = _split_slices(n, g, 0, 1)
        parts = [flat[s[0]] for s in bounds]
        if self.config.deterministic or not pow2:
            mine = self._pairwise_reduce_parts(group, me, parts, "ar")
            if self.config.overlap:
                # Assemble straight into the output while the ring
                # receives block: same sends/receives/tags as the
                # serial ring + concatenate, same bits out.
                out = np.empty(n, dtype=flat.dtype)
                self._ring_allgather_overlap(
                    group, me, mine, "ar", [s[0] for s in bounds], out
                )
                return out.reshape(arr.shape), "pairwise-rs+ring-ag"
            have = self._ring_allgather_parts(group, me, mine, "ar")
            algorithm = "pairwise-rs+ring-ag"
        else:
            mine = self._halving_reduce_scatter_parts(group, me, parts, "ar")
            have = self._doubling_allgather_parts(group, me, mine, "ar")
            algorithm = "rabenseifner"
        out = np.concatenate([have[j] for j in range(g)])
        return out.reshape(arr.shape), algorithm

    def _reduce_scatter(
        self, arr: np.ndarray, axis: int, group: tuple[int, ...]
    ) -> tuple[np.ndarray, str]:
        g = len(group)
        if g == 1:
            return arr.copy(), "single"
        me = group.index(self.rank)
        slices = _split_slices(arr.shape[axis], g, axis, arr.ndim)
        parts = [_contig(arr[s]) for s in slices]
        pow2 = g & (g - 1) == 0
        if self.config.deterministic or not pow2:
            out = self._pairwise_reduce_parts(group, me, parts, "rs")
            algorithm = "pairwise"
        else:
            out = self._halving_reduce_scatter_parts(group, me, parts, "rs")
            algorithm = "recursive-halving"
        return np.ascontiguousarray(out), algorithm

    def _allgather(
        self, arr: np.ndarray, axis: int, group: tuple[int, ...]
    ) -> tuple[np.ndarray, str]:
        g = len(group)
        if g == 1:
            return arr.copy(), "single"
        me = group.index(self.rank)
        have = self._ring_allgather_parts(group, me, _contig(arr), "ag")
        cat = np.concatenate([have[j] for j in range(g)], axis=axis)
        return cat, "ring"

    def _bcast(
        self,
        block: np.ndarray | None,
        root: int,
        group: tuple[int, ...],
    ) -> np.ndarray:
        g = len(group)
        if root not in group:
            raise ValueError(f"bcast root {root} not in group {group}")
        me = group.index(self.rank)
        vroot = group.index(root)
        if g == 1:
            return np.asarray(block).copy()
        rel = (me - vroot) % g
        if rel == 0:
            data = np.asarray(block)
            mask = _pow2ceil(g) >> 1
        else:
            lsb = rel & -rel
            parent = (rel - lsb + vroot) % g
            data = self._vrecv(group, parent, "bc")
            mask = lsb >> 1
        while mask >= 1:
            child_rel = rel + mask
            if child_rel < g:
                self._vsend(group, (child_rel + vroot) % g, "bc", data)
            mask >>= 1
        return np.asarray(data)

    def _gather(
        self,
        arr: np.ndarray,
        root: int,
        group: tuple[int, ...],
    ) -> list[np.ndarray] | None:
        g = len(group)
        if root not in group:
            raise ValueError(f"gather root {root} not in group {group}")
        me = group.index(self.rank)
        vroot = group.index(root)
        if g == 1:
            return [arr.copy()]
        rel = (me - vroot) % g
        have: dict[int, np.ndarray] = {me: _contig(arr)}
        mask = 1
        while mask < g:
            if rel & mask:
                parent_rel = rel - mask
                self._vsend(group, (parent_rel + vroot) % g, "ga", have)
                have = {}
                break
            src_rel = rel + mask
            if src_rel < g:
                got = self._vrecv(group, (src_rel + vroot) % g, "ga")
                have.update(got)
            mask <<= 1
        if me == vroot:
            return [have[j] for j in range(g)]
        return None

    def _barrier(self, group: tuple[int, ...]) -> None:
        g = len(group)
        if g == 1:
            return
        me = group.index(self.rank)
        dist = 1
        r = 0
        while dist < g:
            self._vsend(group, (me + dist) % g, f"br{r}", None)
            self._vrecv(group, (me - dist) % g, f"br{r}")
            dist <<= 1
            r += 1


# ---------------------------------------------------------------------------
# legacy star transport (coordinator process)
# ---------------------------------------------------------------------------


def _star_payload_size(obj: object) -> tuple[int, int]:
    """(words, bytes) of the arrays inside a star request/reply."""
    if isinstance(obj, np.ndarray):
        return obj.size, obj.nbytes
    if isinstance(obj, tuple) and obj and isinstance(obj[0], np.ndarray):
        return obj[0].size, obj[0].nbytes
    if isinstance(obj, (list, dict)):
        vals = obj.values() if isinstance(obj, dict) else obj
        arrays = [v for v in vals if isinstance(v, np.ndarray)]
        return sum(a.size for a in arrays), sum(a.nbytes for a in arrays)
    return 0, 0


@dataclass
class _Request:
    op: str
    op_id: int
    group: tuple[int, ...]
    rank: int
    payload: object
    root: int | None = None


class StarComm:
    """Legacy communicator: every collective through a coordinator.

    Correct but star-shaped (the coordinator serializes and pickles
    every block twice per collective); kept as the conformance
    reference and the benchmark baseline for the peer-to-peer
    transport.  Interface-compatible with :class:`ProcessComm` for the
    collective subset (no point-to-point ``send``/``recv``).
    """

    transport = "star"

    def __init__(
        self,
        rank: int,
        size: int,
        to_coord: "mp.Queue",
        from_coord: "mp.Queue",
        config: CommConfig | None = None,
    ) -> None:
        self.rank = rank
        self.size = size
        self._to_coord = to_coord
        self._from_coord = from_coord
        self.config = config or CommConfig()
        if self.config.verify:
            raise ValueError(
                "verify mode requires the p2p transport (StarComm routes "
                "every collective through the coordinator, which already "
                "serializes matching)"
            )
        if self.config.profile:
            raise ValueError(
                "profile mode requires the p2p transport (the star "
                "coordinator serializes every collective, so its timings "
                "measure the coordinator, not the algorithm)"
            )
        self.trace = CommTrace()
        #: caller-set phase label (interface parity with ProcessComm).
        self.phase = ""
        #: interface parity with ProcessComm (always None here: the
        #: flight recorder and telemetry ride the p2p transports).
        self.profiler = None
        self.flight = None
        self._op_id = 0
        plan = self.config.fault_plan
        self._inj: FaultInjector | None = (
            FaultInjector(plan, rank)
            if plan is not None and plan.for_rank(rank)
            else None
        )

    def _exchange(
        self,
        op: str,
        payload: object,
        group: Sequence[int] | None = None,
        root: int | None = None,
    ) -> object:
        group_t = (
            tuple(range(self.size)) if group is None else tuple(group)
        )
        if self.rank not in group_t:
            raise ValueError(
                f"rank {self.rank} not in collective group {group_t}"
            )
        self._op_id += 1
        dropped = False
        if self._inj is not None:
            self._inj.at_collective(self._op_id, self.phase)
            payload, dropped = self._inj.on_send(payload)
        if not dropped:
            self._to_coord.put(
                _Request(
                    op=op,
                    op_id=self._op_id,
                    group=group_t,
                    rank=self.rank,
                    payload=payload,
                    root=root,
                )
            )
        wait = self.config.collective_timeout
        retries = self.config.transient_retries
        while True:
            try:
                result = self._from_coord.get(timeout=wait)
                break
            except queue_mod.Empty:
                if retries > 0:
                    retries -= 1
                    wait *= self.config.retry_backoff
                    continue
                raise CollectiveTimeoutError(
                    f"rank {self.rank}: coordinator did not answer {op!r} "
                    f"within {wait:.1f}s — "
                    f"collective call sequences have diverged across ranks"
                ) from None
        sent_words, sent_bytes = _star_payload_size(payload)
        recv_words, recv_bytes = _star_payload_size(result)
        self.trace.add(
            CollectiveRecord(
                op=op,
                algorithm="star",
                group_size=len(group_t),
                sent_messages=1,
                sent_words=sent_words,
                sent_bytes=sent_bytes,
                recv_messages=1,
                recv_words=recv_words,
                recv_bytes=recv_bytes,
                shm_messages=0,
                phase=self.phase,
            )
        )
        self._guard_numerics(op, result)
        return result

    # Same screen as the p2p communicator (reads only config/rank/
    # _op_id/phase, all of which StarComm shares).
    _guard_numerics = ProcessComm._guard_numerics

    def allreduce(
        self, block: np.ndarray, group: Sequence[int] | None = None
    ) -> np.ndarray:
        """Sum over the group; every member receives the total."""
        return self._exchange("allreduce", block, group)

    def reduce_scatter(
        self,
        block: np.ndarray,
        axis: int = 0,
        group: Sequence[int] | None = None,
    ) -> np.ndarray:
        """Sum over the group, then scatter slabs along ``axis``."""
        return self._exchange("reduce_scatter", (block, axis), group)

    def allgather(
        self,
        block: np.ndarray,
        axis: int = 0,
        group: Sequence[int] | None = None,
    ) -> np.ndarray:
        """Concatenate group members' blocks along ``axis``."""
        return self._exchange("allgather", (block, axis), group)

    def bcast(
        self,
        block: np.ndarray | None,
        root: int,
        group: Sequence[int] | None = None,
    ) -> np.ndarray:
        """Broadcast ``root``'s block to the group."""
        return self._exchange("bcast", block, group, root=root)

    def gather(
        self,
        block: np.ndarray,
        root: int,
        group: Sequence[int] | None = None,
    ) -> list[np.ndarray] | None:
        """Collect blocks at ``root`` (group order); others get None."""
        return self._exchange("gather", block, group, root=root)

    def barrier(self, group: Sequence[int] | None = None) -> None:
        """Block until every group member reaches the barrier."""
        self._exchange("barrier", None, group)


def _coordinator(
    size: int,
    to_coord: "mp.Queue",
    reply_queues: list["mp.Queue"],
) -> None:
    """Collect per-collective contributions, combine, reply."""
    pending: dict[tuple, dict[int, _Request]] = {}
    done = 0
    while done < size:
        msg = to_coord.get()
        if msg == _SENTINEL:
            done += 1
            continue
        key = (msg.op, msg.op_id, msg.group)
        bucket = pending.setdefault(key, {})
        bucket[msg.rank] = msg
        if len(bucket) < len(msg.group):
            continue
        # Complete: combine and reply in group order.
        del pending[key]
        group = msg.group
        reqs = [bucket[r] for r in group]
        op = msg.op
        if op == "allreduce":
            total = reqs[0].payload.copy()
            for r in reqs[1:]:
                total += r.payload
            results = [total] * len(group)
        elif op == "reduce_scatter":
            axis = reqs[0].payload[1]
            total = reqs[0].payload[0].copy()
            for r in reqs[1:]:
                total += r.payload[0]
            results = [
                np.ascontiguousarray(s)
                for s in np.array_split(total, len(group), axis=axis)
            ]
        elif op == "allgather":
            axis = reqs[0].payload[1]
            cat = np.concatenate([r.payload[0] for r in reqs], axis=axis)
            results = [cat] * len(group)
        elif op == "bcast":
            root_req = next(r for r in reqs if r.rank == r.root)
            results = [root_req.payload] * len(group)
        elif op == "gather":
            blocks = [r.payload for r in reqs]
            results = [
                blocks if rank == msg.root else None for rank in group
            ]
        elif op == "barrier":
            results = [None] * len(group)
        else:  # pragma: no cover - defensive
            results = [RuntimeError(f"unknown op {op}")] * len(group)
        for rank, result in zip(group, results):
            reply_queues[rank].put(result)


# ---------------------------------------------------------------------------
# SPMD launcher
# ---------------------------------------------------------------------------


def _flight_snapshot(comm) -> object | None:
    """Snapshot a comm's flight ring (None when disarmed), stamped
    with the rank's final vector clock when the race sanitizer is on
    so postmortem merging can order last-known states causally."""
    fr = getattr(comm, "flight", None)
    if fr is None:
        return None
    clock = None
    det = getattr(comm, "_race", None)
    if det is not None:
        try:
            clock = det.fork_point().clocks
        except Exception:  # pragma: no cover - clock extraction is
            clock = None   # best-effort refinement only
    return fr.snapshot(clock)


def _failure_report(exc: BaseException, comm) -> dict:
    """What a dying rank ships home: error, traceback, trace tail,
    flight-recorder ring — and, when profiling, the partial profile
    whose ``open_span`` names what the rank was doing (phase +
    wall-clock start) when it died."""
    report = {
        "error": repr(exc),
        "traceback": traceback_mod.format_exc(),
        "trace_tail": comm.trace.tail(),
        # A closed-peer abort (or a launcher-revoked world) is a
        # casualty of some other rank's death, not a primary failure:
        # the launcher demotes it to the aborted set when a primary
        # failure explains it.
        "secondary": isinstance(
            exc, (TransportClosedError, WorldRevokedError)
        ),
    }
    fr = getattr(comm, "flight", None)
    if fr is not None:
        fr.record("error", comm._op_id, comm.phase, repr(exc)[:200])
        report["flight"] = _flight_snapshot(comm)
    prof = comm.profiler
    if prof is not None:
        prof.finalize_transport(comm._t)
        report["profile"] = prof.rank_profile()
    return report


def _star_worker(
    fn_bytes: bytes,
    rank: int,
    size: int,
    to_coord: "mp.Queue",
    from_coord: "mp.Queue",
    result_queue: "mp.Queue",
    config: CommConfig,
    args: tuple,
) -> None:
    comm = StarComm(rank, size, to_coord, from_coord, config)
    try:
        fn = pickle.loads(fn_bytes)
        out = fn(comm, *args)
        result_queue.put((rank, "ok", out))
    except InjectedRankCrash as exc:
        result_queue.put((rank, "crashed", _failure_report(exc, comm)))
        if exc.hard:
            # Simulated node loss: give the queue feeder a moment to
            # flush the crash report, then die without cleanup — no
            # coordinator sentinel, exactly like a killed node.
            time.sleep(0.2)
            os._exit(EXIT_INJECTED_CRASH)
    except Exception as exc:
        result_queue.put((rank, "error", _failure_report(exc, comm)))
    finally:
        to_coord.put(_SENTINEL)


def _rank_body(
    fn_bytes: bytes,
    rank: int,
    size: int,
    inboxes: list["mp.Queue"] | None,
    result_queue: "mp.Queue",
    run_token: str,
    config: CommConfig,
    args: tuple,
    board: object | None = None,
    ctrl_conns: dict[int, object] | None = None,
    backend: str = "p2p",
    rendezvous: tuple[str, int] | None = None,
) -> None:
    """One logical rank's lifetime: transport, comm, program, report."""
    channel: Transport
    if backend == "tcp":
        try:
            channel = TcpSocketTransport(rank, size, config, rendezvous)
        except Exception as exc:  # mesh setup failed: report, don't hang
            result_queue.put(
                (
                    rank,
                    "error",
                    {
                        "error": repr(exc),
                        "traceback": traceback_mod.format_exc(),
                        "trace_tail": [],
                    },
                )
            )
            return
    else:
        channel = ShmPoolTransport(rank, size, inboxes, run_token, config)
        channel.ctrl_conns = ctrl_conns
    comm = ProcessComm(rank, size, channel, config, board=board)
    pusher = None
    if config.telemetry_interval > 0:
        from repro.observability.telemetry import TelemetryPusher

        pusher = TelemetryPusher(
            comm.telemetry_sample,
            lambda sample, _r=rank: result_queue.put(
                (_r, "telemetry", sample)
            ),
            config.telemetry_interval,
        )
        pusher.start()
    try:
        fn = pickle.loads(fn_bytes)
        out = fn(comm, *args)
        # Verify mode: a leaked shm segment turns the rank's result
        # into an error *before* it is posted (SPMD213).
        comm.verify_shutdown()
        if comm.profiler is not None:
            comm.profiler.finalize_transport(channel)
            result_queue.put(
                (rank, "profile", comm.profiler.rank_profile())
            )
        # Ship the flight ring before the completion signal so an
        # early finisher's ring is available for a postmortem even
        # when *other* ranks later hang or die.
        ring = _flight_snapshot(comm)
        if ring is not None:
            result_queue.put((rank, "flight", ring))
        result_queue.put((rank, "ok", out))
    except InjectedRankCrash as exc:
        result_queue.put((rank, "crashed", _failure_report(exc, comm)))
        if exc.hard:
            # Simulated node loss: skip channel.close() so any pooled
            # shm segments are orphaned — the launcher's sweep must
            # reclaim them.
            time.sleep(0.2)
            os._exit(EXIT_INJECTED_CRASH)
    except (WorldRevokedError, TransportClosedError) as exc:
        # A peer died.  With elastic recovery armed, this survivor
        # revokes the world, runs the agreement round, and
        # self-extracts with its buddy replica instead of erroring —
        # the orchestrator (recovery.run_elastic) continues the run
        # from these reports.
        mgr = comm.recovery_mgr
        if mgr is None:
            result_queue.put((rank, "error", _failure_report(exc, comm)))
        else:
            try:
                report = mgr.on_failure(exc)
                result_queue.put((rank, "recovery", report))
            except Exception as exc2:  # pragma: no cover - agree broke
                result_queue.put(
                    (rank, "error", _failure_report(exc2, comm))
                )
    except Exception as exc:
        result_queue.put((rank, "error", _failure_report(exc, comm)))
    finally:
        if pusher is not None:
            pusher.stop()
        comm.shutdown_overlap()
        try:
            channel.close()
        except Exception:  # pragma: no cover - cleanup best-effort
            pass


def _p2p_worker(
    fn_bytes: bytes,
    ranks: Sequence[int],
    size: int,
    inboxes: list["mp.Queue"] | None,
    result_queue: "mp.Queue",
    run_token: str,
    config: CommConfig,
    args: tuple,
    board: object | None = None,
    ctrl_conns: dict[int, object] | None = None,
    backend: str = "p2p",
    rendezvous: tuple[str, int] | None = None,
) -> None:
    """One OS process hosting one or more logical ranks.

    The common case is one rank per process.  The shrink recovery
    policy re-launches a smaller process world whose surviving
    processes *host* the failed logical ranks as extra threads — each
    hosted rank gets its own transport endpoint (its own inbox queue /
    its own socket mesh) and its own :class:`ProcessComm`, so the
    logical world size, and with it every collective schedule and
    reduction order, is exactly that of the original run.
    """
    ranks = list(ranks)
    if len(ranks) == 1:
        _rank_body(
            fn_bytes, ranks[0], size, inboxes, result_queue, run_token,
            config, args, board, ctrl_conns, backend, rendezvous,
        )
        return
    threads = [
        threading.Thread(
            target=_rank_body,
            args=(
                fn_bytes, r, size, inboxes, result_queue, run_token,
                config, args, board, ctrl_conns, backend, rendezvous,
            ),
            name=f"hosted-rank-{r}",
        )
        for r in ranks
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()


def _serve_rendezvous_quietly(
    listener, size: int, timeout: float
) -> None:
    """Daemon-thread wrapper around :func:`serve_rendezvous`: a failed
    exchange (a rank crashed before checking in, teardown closed the
    listener) is surfaced by the ranks themselves as mesh-setup errors;
    the thread must not spew a traceback on top."""
    try:
        serve_rendezvous(listener, size, timeout)
    except Exception:
        pass


def _sweep_shm(run_token: str) -> None:
    """Unlink any shared-memory segments a crashed rank orphaned."""
    shm_dir = "/dev/shm"
    if not os.path.isdir(shm_dir):  # pragma: no cover - non-Linux
        return
    for path in glob.glob(os.path.join(shm_dir, f"mpx{run_token}*")):
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - raced with receiver
            pass


def run_spmd(
    fn: Callable[..., object],
    size: int,
    *args: object,
    timeout: float = 120.0,
    transport: str = "p2p",
    config: CommConfig | None = None,
    collective_timeout: float | None = None,
    profile_out: dict[int, object] | None = None,
    monitor: object | None = None,
    host_map: Sequence[Sequence[int]] | None = None,
) -> list[object]:
    """Run ``fn(comm, *args)`` on ``size`` real processes.

    ``fn`` must be picklable (a module-level function).  Returns each
    rank's return value in rank order; raises
    :class:`RankFailureError` (a ``RuntimeError``) if any rank failed,
    carrying each failed rank's remote traceback and collective-trace
    tail plus the succeeded/aborted rank sets.

    Failure detection does not wait out ``timeout``: the launcher
    polls worker liveness every ``_LIVENESS_POLL`` seconds, so a rank
    that dies without posting a result (a hard crash, an ``os._exit``,
    a kill) aborts the job within poll + ``_ABORT_GRACE`` + teardown —
    a few seconds.  Shared-memory segments are swept on every exit
    path, and the star coordinator is drained (stand-in sentinels for
    ranks that never posted theirs) so it cannot linger.

    Parameters
    ----------
    transport:
        ``"p2p"`` (default; alias ``"shm"``) hands every rank a
        :class:`ProcessComm` over the pooled shared-memory
        point-to-point layer; ``"tcp"`` hands out the same
        communicator over per-peer TCP connections meshed through a
        loopback rendezvous; ``"star"`` hands out the legacy
        coordinator-routed :class:`StarComm`.
    config:
        :class:`CommConfig` for timeouts, the shared-memory threshold,
        algorithm determinism, the short/long allreduce threshold,
        fault injection (``fault_plan``), numerics guards, and
        transient-stall retries.
    collective_timeout:
        Shorthand overriding ``config.collective_timeout``.
    profile_out:
        With ``config.profile``, filled with each rank's
        :class:`~repro.observability.spans.RankProfile` — on success
        all ranks, on failure whatever profiles reached the launcher
        (also attached to the :class:`RankFailureError`).
    monitor:
        A :class:`repro.observability.telemetry.TelemetryMonitor` (or
        anything with its ``on_start``/``on_sample``/``on_done``/
        ``on_postmortem`` surface).  Arms per-rank telemetry pushers
        (``CommConfig.telemetry_interval``, defaulted to 0.5 s when
        unset) whose heartbeats are routed to the monitor from the
        launcher's drain loop — the live feed behind ``repro top``.
        Requires a peer-to-peer transport.
    host_map:
        Optional partition of ``range(size)`` into per-process groups:
        entry ``p`` lists the logical ranks process ``p`` hosts (extra
        ranks run as threads with their own transport endpoints).  The
        shrink recovery policy uses this to continue a run at full
        *logical* world size on fewer OS processes.  ``None`` (the
        default) is one rank per process.
    """
    if size < 1:
        raise ValueError("size must be positive")
    if transport not in TRANSPORT_ALIASES:
        raise ValueError(f"unknown transport {transport!r}")
    transport = TRANSPORT_ALIASES[transport]
    cfg = config or CommConfig()
    if collective_timeout is not None:
        cfg = replace(cfg, collective_timeout=collective_timeout)
    if cfg.verify and transport == "star":
        raise ValueError(
            "verify mode requires a peer-to-peer transport (p2p/shm or tcp)"
        )
    if cfg.profile and transport == "star":
        raise ValueError(
            "profile mode requires a peer-to-peer transport (p2p/shm or tcp)"
        )
    if cfg.race_detect and transport == "star":
        raise ValueError(
            "race_detect requires a peer-to-peer transport (p2p/shm or tcp)"
        )
    if monitor is not None and transport == "star":
        raise ValueError(
            "telemetry monitoring requires a peer-to-peer transport "
            "(p2p/shm or tcp)"
        )
    if monitor is not None and cfg.telemetry_interval <= 0:
        cfg = replace(cfg, telemetry_interval=0.5)
    if monitor is not None:
        monitor.on_start(size, transport)
    if cfg.recovery not in ("restart",) + ELASTIC_POLICIES:
        raise ValueError(
            f"unknown recovery policy {cfg.recovery!r} "
            f"(expected 'restart', 'respawn', or 'shrink')"
        )
    if host_map is not None:
        if transport == "star":
            raise ValueError(
                "host_map requires a peer-to-peer transport (p2p/shm or tcp)"
            )
        if cfg.verify:
            raise ValueError(
                "host_map is incompatible with verify mode (the ctrl-pipe "
                "mesh and wait-for board assume one rank per process)"
            )
        hosted_ranks = sorted(r for entry in host_map for r in entry)
        if hosted_ranks != list(range(size)):
            raise ValueError(
                f"host_map must partition ranks 0..{size - 1}, "
                f"got {[list(e) for e in host_map]!r}"
            )
        host_map = [list(entry) for entry in host_map]
    ctx = mp.get_context("spawn" if mp.get_start_method() == "spawn" else "fork")
    result_queue: mp.Queue = ctx.Queue()
    run_token = uuid.uuid4().hex[:8]
    fn_bytes = pickle.dumps(fn)

    coord = None
    ctrl_mesh = None
    rdv_listener = None
    if transport == "star":
        to_coord: mp.Queue = ctx.Queue()
        reply_queues = [ctx.Queue() for _ in range(size)]
        coord = ctx.Process(
            target=_coordinator, args=(size, to_coord, reply_queues)
        )
        coord.start()
        workers = [
            ctx.Process(
                target=_star_worker,
                args=(
                    fn_bytes,
                    rank,
                    size,
                    to_coord,
                    reply_queues[rank],
                    result_queue,
                    cfg,
                    args,
                ),
            )
            for rank in range(size)
        ]
        proc_map = {rank: rank for rank in range(size)}
    else:
        inboxes = (
            [ctx.Queue() for _ in range(size)]
            if transport == "p2p"
            else None
        )
        # Verify mode: a lock-free shared board of (waiting_on, op_id,
        # stamp) triples, one per rank, feeding the wait-for-graph
        # deadlock detector.  Each rank writes only its own slots.
        board = (
            ctx.Array("q", 3 * size, lock=False)
            if cfg.verify and size > 1
            else None
        )
        if board is not None:
            for r in range(size):
                board[3 * r] = -1  # idle, not "waiting on rank 0"
        # Verify mode, shm backend only: a dedicated duplex pipe per
        # rank pair carries the control rounds — Connection.send is a
        # synchronous write with no feeder thread, so the verifier's
        # fixed latency stays small even with every rank contending
        # for CPU.  The tcp backend rides its control traffic on the
        # ordinary frame stream instead (no extra descriptors).
        if cfg.verify and size > 1 and transport == "p2p":
            ctrl_mesh = [{} for _ in range(size)]
            for i in range(size):
                for j in range(i + 1, size):
                    end_i, end_j = ctx.Pipe(duplex=True)
                    ctrl_mesh[i][j] = end_i
                    ctrl_mesh[j][i] = end_j
        # TCP backend: the launcher runs the one-shot rendezvous round
        # (address exchange) on a loopback listener; ranks mesh up
        # against it during transport construction.
        rendezvous: tuple[str, int] | None = None
        if transport == "tcp" and size > 1:
            rdv_listener = open_rendezvous_listener("127.0.0.1")
            rendezvous = rdv_listener.getsockname()[:2]
            rdv_thread = threading.Thread(
                target=_serve_rendezvous_quietly,
                args=(rdv_listener, size, cfg.tcp_connect_timeout),
                daemon=True,
            )
            rdv_thread.start()
        if host_map is None:
            host_map = [[rank] for rank in range(size)]
        workers = [
            ctx.Process(
                target=_p2p_worker,
                args=(
                    fn_bytes,
                    tuple(hosted),
                    size,
                    inboxes,
                    result_queue,
                    run_token,
                    cfg,
                    args,
                    board,
                    ctrl_mesh[hosted[0]] if ctrl_mesh is not None else None,
                    transport,
                    rendezvous,
                ),
            )
            for hosted in host_map
        ]
        proc_map = {
            r: pi for pi, hosted in enumerate(host_map) for r in hosted
        }
    for w in workers:
        w.start()
    if ctrl_mesh is not None:
        # The launcher keeps no ctrl endpoints: workers own them now
        # (dup'd into each child), so drop the parent's copies.
        for conns in ctrl_mesh:
            for conn in conns.values():
                conn.close()

    results: dict[int, object] = {}
    errors: dict[int, dict] = {}
    recoveries: dict[int, dict] = {}  # rank -> recovery report
    profiles: dict[int, object] = {}  # rank -> RankProfile
    flights: dict[int, object] = {}  # rank -> FlightRing
    hard_crashed: set[int] = set()  # ranks whose process is dying
    dead: dict[int, int] = {}  # rank -> exitcode, no result posted
    timed_out = False
    abort_deadline: float | None = None
    elastic = cfg.recovery in ELASTIC_POLICIES
    # Elastic survivors must finish the revoke-and-agree round and
    # serialize their replica reports before the abort: extend the
    # drain window by the worst-case agreement cost (two rounds, up to
    # agree_timeout per unreachable peer).
    abort_grace = _ABORT_GRACE + (
        2.0 * cfg.agree_timeout * size if elastic else 0.0
    )
    revoke_sent = False
    try:
        deadline = time.monotonic() + timeout
        while len(results) + len(errors) + len(recoveries) < size:
            now = time.monotonic()
            if now >= deadline:
                timed_out = True
                break
            if abort_deadline is not None and now >= abort_deadline:
                break
            try:
                rank, status, payload = result_queue.get(
                    timeout=min(_LIVENESS_POLL, deadline - now)
                )
            except queue_mod.Empty:
                # Liveness check: a rank that died without posting a
                # result will never answer — don't wait out `timeout`.
                dead = {
                    r: workers[proc_map[r]].exitcode
                    for r in range(size)
                    if r not in results
                    and r not in errors
                    and r not in recoveries
                    and workers[proc_map[r]].exitcode is not None
                }
                if (dead or errors) and abort_deadline is None:
                    # Brief drain window before aborting: in-flight
                    # results (a clean exit racing the poll, peers
                    # blocked on the failed rank posting their own
                    # failures) are still collected.
                    abort_deadline = time.monotonic() + abort_grace
                elif not dead and not errors and not recoveries:
                    abort_deadline = None
                if (
                    not revoke_sent
                    and transport == "p2p"
                    and (dead or hard_crashed or (elastic and errors))
                ):
                    # The shm wire has no in-band death signal: the
                    # launcher *is* the failure detector, and it wakes
                    # blocked survivors by posting a revoke notice
                    # straight into their inbox queues (src = -1, a
                    # launcher-origin sentinel).  Elastic runs revoke
                    # on any failure (survivors must run the agreement
                    # round); non-elastic runs revoke on process death
                    # only, so the woken survivors post their flight
                    # rings (as demoted-secondary errors) instead of
                    # being terminated ringless — ordinary raised
                    # exceptions keep the PR-3 timeout semantics.
                    suspects = sorted(set(dead) | set(errors))
                    for r in range(size):
                        if (
                            r in results or r in errors
                            or r in recoveries or r in dead
                        ):
                            continue
                        try:
                            inboxes[r].put((-1, _REVOKE_TAG, suspects))
                        except Exception:  # pragma: no cover - torn queue
                            pass
                    revoke_sent = True
                continue
            if status == "profile":
                # Precedes the rank's "ok"; not a completion signal.
                profiles[rank] = payload
                continue
            if status == "flight":
                # Precedes the rank's "ok"; not a completion signal.
                flights[rank] = payload
                continue
            if status == "telemetry":
                # Out-of-band heartbeat; never a completion signal.
                if monitor is not None:
                    monitor.on_sample(rank, payload)
                continue
            if status == "ok":
                results[rank] = payload
            elif status == "recovery":
                # A survivor finished its agreement round and
                # self-extracted with its replica: terminal for the
                # rank, but the run as a whole has failed.
                recoveries[rank] = payload
                if abort_deadline is None:
                    abort_deadline = time.monotonic() + abort_grace
            else:  # "error" or "crashed"
                errors[rank] = payload
                if status == "crashed":
                    # The rank's process is about to os._exit (or
                    # already has): treat like an observed death so
                    # blocked shm survivors are woken for their rings.
                    hard_crashed.add(rank)
                if abort_deadline is None:
                    abort_deadline = time.monotonic() + abort_grace
            if monitor is not None:
                monitor.on_done(rank, status)
            dead.pop(rank, None)
    finally:
        failure = (
            bool(errors) or bool(dead) or bool(recoveries) or timed_out
        )
        if failure:
            for w in workers:
                if w.is_alive():
                    w.terminate()
        if coord is not None and failure:
            # Ranks that died before posting their _SENTINEL leave the
            # coordinator waiting forever; post stand-ins so it can
            # drain and exit instead of being terminated mid-reply.
            # A rank that posted a *result* may still have skipped its
            # sentinel (a hard crash os._exits between the two), so
            # post a full set: every worker is already terminated, and
            # the coordinator stops at `size`, ignoring extras.
            for _ in range(size):
                try:
                    to_coord.put(_SENTINEL)
                except Exception:  # pragma: no cover - queue torn down
                    break
        for w in workers:
            w.join(timeout=10)
            if w.is_alive():  # pragma: no cover - hang safety
                w.terminate()
                w.join(timeout=10)
        if coord is not None:
            coord.join(timeout=10)
            if coord.is_alive():  # pragma: no cover - hang safety
                coord.terminate()
                coord.join(timeout=10)
        if rdv_listener is not None:
            try:
                rdv_listener.close()
            except OSError:  # pragma: no cover - already closed
                pass
        if transport == "p2p":
            _sweep_shm(run_token)
    if errors or dead or recoveries or timed_out:
        # tcp detects a vanished peer in-band (TransportClosedError),
        # so the victim's neighbours self-report before the launcher's
        # liveness poll fires.  On the shm wire those ranks block and
        # end up terminated-without-a-report — the aborted set.  Fold
        # the self-reported casualties into the same set whenever a
        # primary failure explains them, so both wires classify one
        # crash identically.
        secondary = [
            r for r, rep in errors.items() if rep.get("secondary")
        ]
        if (set(errors) - set(secondary)) | set(dead) | set(recoveries):
            for r in secondary:
                rep = errors.pop(r)
                if rep.get("profile") is not None:
                    profiles[r] = rep["profile"]
                if rep.get("flight") is not None:
                    flights[r] = rep["flight"]
        failed = sorted(set(errors) | set(dead))
        succeeded = sorted(results)
        aborted = sorted(
            r
            for r in range(size)
            if r not in results
            and r not in errors
            and r not in dead
            and r not in recoveries
        )
        # Failed ranks embed their partial profile in the failure
        # report; fold them into the gathered set so the error carries
        # every profile that reached the launcher.
        for r, rep in errors.items():
            if rep.get("profile") is not None:
                profiles[r] = rep["profile"]
        for r, rep in recoveries.items():
            if rep.get("profile") is not None:
                profiles[r] = rep["profile"]
        if profile_out is not None:
            profile_out.update(profiles)
        # Same folding for flight rings: failed ranks embed theirs in
        # the failure/recovery report, finished ranks shipped theirs
        # ahead of their result.
        for r, rep in errors.items():
            if rep.get("flight") is not None:
                flights[r] = rep["flight"]
        for r, rep in recoveries.items():
            if rep.get("flight") is not None:
                flights[r] = rep["flight"]
        postmortem = None
        if flights:
            from repro.observability.telemetry import build_postmortem

            postmortem = build_postmortem(
                flights,
                completed=set(results),
                crashed=set(hard_crashed) | set(dead),
            )
            if monitor is not None:
                monitor.on_postmortem(
                    postmortem.verdict, postmortem.diverging
                )
        lines = []
        for r in failed:
            if r in errors:
                rep = errors[r]
                lines.append(f"rank {r} failed: {rep['error']}")
                prof = rep.get("profile")
                open_span = (
                    prof.open_span if prof is not None else None
                )
                if open_span is not None:
                    lines.append(
                        f"rank {r} last open span: "
                        f"'{open_span['name']}' "
                        f"({open_span['category']}"
                        + (
                            f", phase {open_span['phase']}"
                            if open_span["phase"]
                            else ""
                        )
                        + f") started t+{open_span['start']:.3f}s "
                        f"(unix {open_span['wall_start']:.3f}), open "
                        f"{open_span['open_for']:.3f}s at failure"
                    )
                tail = rep.get("trace_tail") or []
                if tail:
                    lines.append(f"rank {r} last collectives:")
                    lines.extend(f"  {t}" for t in tail)
                ring = flights.get(r)
                if ring is not None and getattr(ring, "events", None):
                    ftail = ring.tail()
                    lines.append(
                        f"rank {r} flight recorder "
                        f"(last {len(ftail)} of {ring.seq} events):"
                    )
                    lines.extend(f"  {t}" for t in ftail)
                tb = rep.get("traceback", "")
                if tb:
                    lines.append(f"rank {r} remote traceback:")
                    lines.extend(
                        f"  {t}" for t in tb.rstrip().splitlines()
                    )
            else:
                lines.append(
                    f"rank {r} died without posting a result "
                    f"(exitcode {dead[r]})"
                )
        for r in sorted(recoveries):
            rep = recoveries[r]
            lines.append(
                f"rank {r} survived and entered recovery "
                f"(agreed failed set {sorted(rep.get('failed', ()))}, "
                f"replica at iteration {rep.get('iteration')})"
            )
        if postmortem is not None:
            lines.extend(postmortem.lines())
        if timed_out and not failed:
            head = (
                f"SPMD run timed out after {timeout:.0f}s waiting for "
                f"{size - len(results)} of {size} ranks"
            )
        else:
            head = (
                f"SPMD run failed: ranks {failed} failed, "
                f"{succeeded} succeeded"
                + (f", {aborted} aborted" if aborted else "")
                + (
                    f", {sorted(recoveries)} recovered state"
                    if recoveries
                    else ""
                )
            )
        raise RankFailureError(
            "\n".join([head] + lines),
            failed=failed,
            succeeded=succeeded,
            aborted=aborted,
            exitcodes=dead,
            profiles=profiles,
            recovery_reports=recoveries,
            flight_records=flights,
            postmortem=postmortem,
        )
    if profile_out is not None:
        profile_out.update(profiles)
    return [results[r] for r in range(size)]
