"""TensorLy-style convenience facade.

Users coming from TensorLy expect ``tucker(tensor, rank)`` returning a
``(core, factors)`` pair; this module provides that spelling on top of
the library's algorithms so downstream code can switch with a one-line
import change.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.hooi import HOOIOptions, hooi
from repro.core.rank_adaptive import RankAdaptiveOptions, rank_adaptive_hooi
from repro.core.sthosvd import sthosvd
from repro.core.tucker import TuckerTensor
from repro.tensor.ops import multi_ttm

__all__ = ["tucker", "partial_tucker", "tucker_to_tensor"]


def tucker(
    tensor: np.ndarray,
    rank: Sequence[int] | None = None,
    *,
    tol: float | None = None,
    n_iter_max: int = 2,
    init: str = "random",
    random_state: int | None = 0,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Tucker decomposition with a TensorLy-flavoured signature.

    ``rank`` alone runs rank-specified HOSI-DT; ``tol`` alone (or with
    ``rank`` as the starting guess) runs the error-specified RA-HOSI-DT.
    Returns ``(core, factors)``.
    """
    if rank is None and tol is None:
        raise ValueError("provide rank and/or tol")
    if tol is not None:
        start = (
            tuple(rank)
            if rank is not None
            else tuple(max(1, n // 8) for n in tensor.shape)
        )
        tt, _ = rank_adaptive_hooi(
            tensor,
            tol,
            start,
            RankAdaptiveOptions(max_iters=max(n_iter_max, 3)),
        )
    else:
        tt, _ = hooi(
            tensor,
            rank,
            HOOIOptions(
                max_iters=n_iter_max, init=init, seed=random_state
            ),
        )
    return tt.core, list(tt.factors)


def partial_tucker(
    tensor: np.ndarray,
    modes: Sequence[int],
    rank: Sequence[int],
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Tucker compression in a subset of modes (others left dense).

    Runs error-free STHOSVD restricted to ``modes``; the returned core
    has original extents in the untouched modes.
    """
    modes = list(modes)
    if len(modes) != len(rank):
        raise ValueError("one rank per compressed mode required")
    full_ranks = list(tensor.shape)
    for m, r in zip(modes, rank):
        full_ranks[m] = int(r)
    tt, _ = sthosvd(tensor, ranks=full_ranks)
    core = tt.core
    factors = [tt.factors[m] for m in modes]
    # Undo the compression in the untouched modes (their factors are
    # square orthonormal; contract them back in).
    undo = [
        None if m in modes else tt.factors[m]
        for m in range(tensor.ndim)
    ]
    core = multi_ttm(core, undo)
    return core, factors


def tucker_to_tensor(
    tucker_pair: tuple[np.ndarray, Sequence[np.ndarray]],
) -> np.ndarray:
    """Reconstruct a full tensor from a ``(core, factors)`` pair."""
    core, factors = tucker_pair
    return TuckerTensor(core=core, factors=list(factors)).reconstruct()
