"""Command-line drivers mirroring the TuckerMPI-HOOI artifact.

``repro-sthosvd --parameter-file STHOSVD.cfg`` and
``repro-hooi --parameter-file HOOI.cfg`` accept the artifact's
parameter-file keys, generate the synthetic tensor the drivers would
(``Global dims`` + construction ranks + ``Noise``), run the requested
algorithm on the simulated machine, and print progress/timings to
stdout the way the artifact's output stream does.

Both drivers accept ``--checkpoint-dir DIR`` (or the parameter-file
key ``Checkpoint dir``), which switches execution to the real
process-parallel layer and makes rank 0 overwrite a sweep checkpoint
(see :mod:`repro.distributed.checkpoint`) after every non-final
iteration/mode, with the parameter file snapshotted alongside.  An
interrupted run is then continued with::

    repro resume DIR/checkpoint.npz

which regenerates the tensor from the snapshotted parameters, verifies
the checkpoint's input digest, and replays the remaining sweeps —
bit-identically to an uninterrupted run.  ``repro`` is the umbrella
entry point (``repro sthosvd|hooi|resume ...``).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

import numpy as np

from repro.analysis.breakdown import group_breakdown
from repro.analysis.metrics import compression_ratio
from repro.config import ParameterFile
from repro.core.errors import ConfigError
from repro.core.hooi import HOOIOptions
from repro.core.rank_adaptive import RankAdaptiveOptions
from repro.distributed.checkpoint import SweepCheckpoint
from repro.distributed.hooi import dist_hooi
from repro.distributed.rank_adaptive import dist_rank_adaptive_hooi
from repro.distributed.sthosvd import dist_sthosvd
from repro.linalg.llsv import LLSVMethod
from repro.tensor.random import tucker_plus_noise

__all__ = ["sthosvd_main", "hooi_main", "resume_main", "run_main", "main"]

#: File names inside a ``--checkpoint-dir``.
CHECKPOINT_NAME = "checkpoint.npz"
PARAMS_SNAPSHOT = "parameters.cfg"


def _parse_args(
    argv: Sequence[str] | None, prog: str
) -> tuple[ParameterFile, argparse.Namespace]:
    parser = argparse.ArgumentParser(
        prog=prog,
        description=f"{prog}: TuckerMPI-style driver on the simulated machine",
    )
    parser.add_argument(
        "--parameter-file",
        required=True,
        help="TuckerMPI-style 'Key = value' parameter file",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        help=(
            "run on the process-parallel layer and write a sweep "
            "checkpoint (resumable with 'repro resume') into this "
            "directory after every non-final iteration"
        ),
    )
    args = parser.parse_args(argv)
    return ParameterFile.from_path(args.parameter_file), args


def _checkpoint_path(
    params: ParameterFile, args: argparse.Namespace
) -> str | None:
    """Resolve ``--checkpoint-dir`` / ``Checkpoint dir``; snapshot the
    parameter file next to the checkpoint so ``repro resume`` can
    regenerate the same tensor."""
    ckdir = (
        Path(args.checkpoint_dir)
        if args.checkpoint_dir
        else params.get_path("checkpoint dir")
    )
    if ckdir is None:
        return None
    ckdir.mkdir(parents=True, exist_ok=True)
    (ckdir / PARAMS_SNAPSHOT).write_text(
        Path(args.parameter_file).read_text()
    )
    path = ckdir / CHECKPOINT_NAME
    print(f"Checkpointing to {path} after every sweep")
    return str(path)


def _print_options(params: ParameterFile) -> None:
    print("Parsed parameter file options:")
    for key, value in sorted(params.values.items()):
        print(f"  {key} = {value}")


def _svd_method(code: int) -> LLSVMethod:
    if code == 0:
        return LLSVMethod.GRAM_EVD
    if code == 2:
        return LLSVMethod.SUBSPACE
    raise ConfigError(
        f"SVD Method = {code} unsupported (0 = Gram+EVD, 2 = subspace)"
    )


def _print_timings(breakdown: dict[str, float]) -> None:
    print("Simulated time breakdown (seconds):")
    for label, secs in group_breakdown(breakdown).items():
        print(f"  {label:>14s}: {secs:.6g}")


def _resolve_grid(
    params: ParameterFile,
    dims: tuple[int, ...],
    ranks: tuple[int, ...],
    algorithm: str,
) -> tuple[int, ...]:
    """Handle ``Processor grid dims = auto`` (needs ``Processors``)."""
    raw = params.get_str("processor grid dims", "")
    if raw.strip().lower() == "auto":
        from repro.analysis.autotune import autotune_grid

        p = params.get_int("processors")
        choice = autotune_grid(dims, ranks, p, algorithm)
        print(
            f"Auto-tuned grid for {algorithm} at P={p}: "
            f"{'x'.join(map(str, choice.grid))} "
            f"({choice.seconds:.4g} simulated s)"
        )
        return choice.grid
    return params.get_ints("processor grid dims", (1,) * len(dims))


def sthosvd_main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``repro-sthosvd``."""
    params, args = _parse_args(argv, "repro-sthosvd")
    if params.get_bool("print options", True):
        _print_options(params)

    dims = params.get_ints("global dims")
    noise = params.get_float("noise", 1e-4)
    ranks = params.get_ints("ranks")
    eps = params.get_float("sv threshold", 0.0)
    seed = params.get_int("seed", 0)
    grid = _resolve_grid(params, dims, ranks, "sthosvd")
    ck_path = _checkpoint_path(params, args)

    print(f"Generating synthetic tensor {dims} with ranks {ranks}")
    x = tucker_plus_noise(dims, ranks, noise=noise, seed=seed)

    if ck_path is not None:
        # Checkpointing implies the real process-parallel layer.
        from repro.distributed.mp_sthosvd import mp_sthosvd

        print(
            f"Running STHOSVD on {int(np.prod(grid))} processes "
            f"({'x'.join(map(str, grid))} grid)"
        )
        tucker_mp = mp_sthosvd(
            x,
            grid,
            eps=eps if eps > 0 else None,
            ranks=None if eps > 0 else ranks,
            checkpoint_path=ck_path,
        )
        _print_mp_result(tucker_mp, x)
        return 0

    # "Mode order = auto" applies the exchange-optimal processing order.
    mode_order = None
    if params.get_str("mode order", "").strip().lower() == "auto":
        from repro.core.sthosvd import auto_mode_order

        mode_order = auto_mode_order(dims, ranks)
        print(f"Auto mode order: {mode_order}")

    print(f"Running STHOSVD on a {'x'.join(map(str, grid))} grid")
    tucker, stats = dist_sthosvd(
        x,
        grid,
        eps=eps if eps > 0 else None,
        ranks=None if eps > 0 else ranks,
        mode_order=mode_order,
    )
    assert tucker is not None
    err = tucker.relative_error(x)
    print(f"STHOSVD ranks: {tucker.ranks}")
    print(f"Approximation relative error: {err:.6e}")
    print(
        "Compression ratio: "
        f"{compression_ratio(x.shape, tucker.ranks):.3f}x"
    )
    print(f"Simulated wall time: {stats.simulated_seconds:.6g} s")
    if params.get_bool("print timings", True):
        _print_timings(stats.breakdown)
    return 0


def _print_mp_result(tucker, x: np.ndarray) -> None:
    print(f"Final ranks: {tucker.ranks}")
    print(f"Final relative error: {tucker.relative_error(x):.6e}")
    print(
        "Compression ratio: "
        f"{compression_ratio(x.shape, tucker.ranks):.3f}x"
    )


def hooi_main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``repro-hooi``."""
    params, args = _parse_args(argv, "repro-hooi")
    if params.get_bool("print options", True):
        _print_options(params)

    dims = params.get_ints("global dims")
    noise = params.get_float("noise", 1e-4)
    construction = params.get_ints("construction ranks")
    use_dt = params.get_bool("dimension tree memoization", False)
    method = _svd_method(params.get_int("svd method", 0))
    max_iters = params.get_int("hooi max iters", 2)
    adapt = params.get_float("hooi-adapt threshold", 0.0)
    seed = params.get_int("seed", 0)
    # Accepted for artifact compatibility; the simulator always gathers.
    params.get_bool("hooi adapt core tensor gather type", False)

    variant = {
        (False, LLSVMethod.GRAM_EVD): "HOOI",
        (True, LLSVMethod.GRAM_EVD): "HOOI-DT",
        (False, LLSVMethod.SUBSPACE): "HOSI",
        (True, LLSVMethod.SUBSPACE): "HOSI-DT",
    }[(use_dt, method)]

    print(f"Generating synthetic tensor {dims} with ranks {construction}")
    x = tucker_plus_noise(dims, construction, noise=noise, seed=seed)

    # "Decomposition Ranks = auto" estimates starting ranks from
    # sampled unfolding spectra (requires the adaptive threshold).
    if params.get_str("decomposition ranks", "").strip().lower() == "auto":
        if adapt <= 0:
            raise ConfigError(
                "Decomposition Ranks = auto requires HOOI-Adapt Threshold"
            )
        from repro.core.rank_estimate import estimate_ranks

        decomposition = estimate_ranks(x, adapt, seed=seed)
        print(f"Estimated starting ranks: {decomposition}")
    else:
        decomposition = params.get_ints("decomposition ranks", construction)

    grid = _resolve_grid(params, dims, decomposition, variant.lower())
    ck_path = _checkpoint_path(params, args)
    print(
        f"Running {'rank-adaptive ' if adapt > 0 else ''}{variant} on a "
        f"{'x'.join(map(str, grid))} grid "
        f"(SVD method: {method.value}, dimension tree: {use_dt})"
    )

    if ck_path is not None:
        # Checkpointing implies the real process-parallel layer.
        from repro.distributed.mp_hooi import mp_hooi_dt, mp_rahosi_dt

        if adapt > 0:
            ra_options = RankAdaptiveOptions(
                max_iters=max_iters,
                use_dimension_tree=use_dt,
                llsv_method=method,
                stop_at_threshold=True,
                seed=seed,
            )
            tucker_mp, mp_ra_stats = mp_rahosi_dt(
                x,
                adapt,
                decomposition,
                grid,
                ra_options,
                checkpoint_path=ck_path,
            )
            for rec in mp_ra_stats.history:
                print(
                    f"iteration {rec.iteration}: ranks {rec.ranks_used} "
                    f"error {rec.error:.6e}"
                )
            print(f"Converged: {mp_ra_stats.converged}")
        else:
            h_options = HOOIOptions(
                use_dimension_tree=use_dt,
                llsv_method=method,
                max_iters=max_iters,
                seed=seed,
            )
            tucker_mp, _ = mp_hooi_dt(
                x,
                decomposition,
                grid,
                h_options,
                checkpoint_path=ck_path,
            )
        _print_mp_result(tucker_mp, x)
        return 0

    if adapt > 0:
        options = RankAdaptiveOptions(
            max_iters=max_iters,
            use_dimension_tree=use_dt,
            llsv_method=method,
            stop_at_threshold=True,
            seed=seed,
        )
        tucker, ra_stats = dist_rank_adaptive_hooi(
            x, adapt, decomposition, grid, options=options
        )
        for rec in ra_stats.history:
            post = (
                f" -> truncated to {rec.truncated_ranks} "
                f"(error {rec.truncated_error:.6e})"
                if rec.truncated_ranks is not None
                else ""
            )
            print(
                f"iteration {rec.iteration}: ranks {rec.ranks_used} "
                f"error {rec.error:.6e}{post}"
            )
        print(f"Converged: {ra_stats.converged}")
        breakdown = ra_stats.breakdown
        sim_seconds = ra_stats.simulated_seconds
    else:
        options = HOOIOptions(
            use_dimension_tree=use_dt,
            llsv_method=method,
            max_iters=max_iters,
            seed=seed,
        )
        tucker, h_stats = dist_hooi(x, decomposition, grid, options=options)
        assert tucker is not None
        for i, err in enumerate(h_stats.errors, start=1):
            print(f"iteration {i}: approximation error {err:.6e}")
        breakdown = h_stats.breakdown
        sim_seconds = h_stats.simulated_seconds

    assert tucker is not None
    print(f"Final ranks: {tucker.ranks}")
    print(f"Final relative error: {tucker.relative_error(x):.6e}")
    print(
        "Compression ratio: "
        f"{compression_ratio(x.shape, tucker.ranks):.3f}x"
    )
    print(f"Simulated wall time: {sim_seconds:.6g} s")
    if params.get_bool("print timings", True):
        _print_timings(breakdown)
    return 0


def resume_main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``repro resume <checkpoint>``.

    Loads a sweep checkpoint, regenerates the input tensor from the
    parameter-file snapshot written next to it (or ``--parameter-file``),
    and replays the remaining iterations on the process-parallel
    layer — bit-identically to an uninterrupted run (the drivers verify
    the checkpoint's input-tensor digest before continuing).  The
    checkpoint's recorded world size and backend are validated against
    the requested run up front, so a grid or ``--backend`` mismatch
    fails with an actionable message instead of a shape error
    mid-sweep.
    """
    parser = argparse.ArgumentParser(
        prog="repro resume",
        description="continue an interrupted checkpointed run",
    )
    parser.add_argument(
        "checkpoint", help="path to the sweep checkpoint (.npz)"
    )
    parser.add_argument(
        "--parameter-file",
        default=None,
        help=(
            "parameter file describing the original run (default: "
            f"{PARAMS_SNAPSHOT} next to the checkpoint)"
        ),
    )
    parser.add_argument(
        "--backend",
        choices=("shm", "tcp"),
        default=None,
        help=(
            "rank interconnect (default: the backend recorded in the "
            "checkpoint, else shm)"
        ),
    )
    args = parser.parse_args(argv)

    ck = SweepCheckpoint.load(args.checkpoint)
    pfile = Path(
        args.parameter_file
        or Path(args.checkpoint).parent / PARAMS_SNAPSHOT
    )
    if not pfile.exists():
        raise ConfigError(
            f"no parameter file at {pfile} — pass --parameter-file to "
            "point at the original run's parameters"
        )
    params = ParameterFile.from_path(pfile)

    dims = params.get_ints("global dims")
    noise = params.get_float("noise", 1e-4)
    seed = params.get_int("seed", 0)
    grid = ck.grid_dims

    # Fail actionably on a world-size or backend mismatch now, instead
    # of surfacing it as a shape error three collectives into a sweep.
    import math as _math

    pgrid = params.get_ints("processor grid dims", ())
    if tuple(pgrid) and tuple(pgrid) != tuple(grid):
        raise ConfigError(
            f"checkpoint was written on a {'x'.join(map(str, grid))} "
            f"grid but the parameter file requests "
            f"{'x'.join(map(str, pgrid))} — a resumed run must keep the "
            "original processor grid (reduction order and block layout "
            "depend on it); edit 'Processor grid dims' or resume with "
            "the original parameter file"
        )
    ck_world = ck.extra.get("world_size")
    if ck_world is not None and int(ck_world) != _math.prod(grid):
        raise ConfigError(
            f"checkpoint records world size {ck_world} but its grid "
            f"{'x'.join(map(str, grid))} implies "
            f"{_math.prod(grid)} ranks — the checkpoint is "
            "inconsistent; re-create it from the original run"
        )
    ck_backend = ck.extra.get("backend")
    backend = args.backend or ck_backend or "shm"
    if (
        args.backend is not None
        and ck_backend is not None
        and args.backend != ck_backend
    ):
        raise ConfigError(
            f"checkpoint was written on the {ck_backend!r} backend but "
            f"--backend {args.backend!r} was requested — pass "
            f"--backend {ck_backend} (or drop --backend to use the "
            "recorded one); a silent switch usually means the wrong "
            "checkpoint file"
        )
    transport = "tcp" if backend == "tcp" else "p2p"
    print(
        f"Resuming {ck.algorithm} from {args.checkpoint} "
        f"({ck.iteration} completed "
        f"{'modes' if ck.algorithm == 'mp_sthosvd' else 'iterations'}) "
        f"on a {'x'.join(map(str, grid))} grid"
    )

    if ck.algorithm == "mp_sthosvd":
        from repro.distributed.mp_sthosvd import mp_sthosvd

        ranks = params.get_ints("ranks")
        eps = params.get_float("sv threshold", 0.0)
        print(f"Regenerating synthetic tensor {dims} with ranks {ranks}")
        x = tucker_plus_noise(dims, ranks, noise=noise, seed=seed)
        tucker = mp_sthosvd(
            x,
            grid,
            eps=eps if eps > 0 else None,
            ranks=None if eps > 0 else ranks,
            resume_from=ck,
            checkpoint_path=args.checkpoint,
            transport=transport,
        )
    elif ck.algorithm in ("mp_hooi_dt", "mp_rahosi_dt"):
        from repro.distributed.mp_hooi import mp_hooi_dt, mp_rahosi_dt

        construction = params.get_ints("construction ranks")
        decomposition = params.get_ints(
            "decomposition ranks", construction
        )
        use_dt = params.get_bool("dimension tree memoization", False)
        method = _svd_method(params.get_int("svd method", 0))
        max_iters = params.get_int("hooi max iters", 2)
        adapt = params.get_float("hooi-adapt threshold", 0.0)
        print(
            f"Regenerating synthetic tensor {dims} with ranks "
            f"{construction}"
        )
        x = tucker_plus_noise(dims, construction, noise=noise, seed=seed)
        if ck.algorithm == "mp_rahosi_dt":
            if adapt <= 0:
                raise ConfigError(
                    "checkpoint is from a rank-adaptive run but the "
                    "parameter file sets no HOOI-Adapt Threshold"
                )
            tucker, _ = mp_rahosi_dt(
                x,
                adapt,
                decomposition,
                grid,
                RankAdaptiveOptions(
                    max_iters=max_iters,
                    use_dimension_tree=use_dt,
                    llsv_method=method,
                    stop_at_threshold=True,
                    seed=seed,
                ),
                resume_from=ck,
                checkpoint_path=args.checkpoint,
                transport=transport,
            )
        else:
            tucker, _ = mp_hooi_dt(
                x,
                decomposition,
                grid,
                HOOIOptions(
                    use_dimension_tree=use_dt,
                    llsv_method=method,
                    max_iters=max_iters,
                    seed=seed,
                ),
                resume_from=ck,
                checkpoint_path=args.checkpoint,
                transport=transport,
            )
    else:
        raise ConfigError(
            f"checkpoint algorithm {ck.algorithm!r} has no CLI driver"
        )

    _print_mp_result(tucker, x)
    return 0


def run_main(argv: Sequence[str] | None = None) -> int:
    """``repro run``: execute on the process-parallel layer with an
    explicit transport backend.

    ``--backend shm`` (default) forks ranks that exchange payloads
    through the pooled shared-memory transport; ``--backend tcp``
    connects the ranks over loopback TCP sockets instead — same
    drivers, same collectives, bit-identical results (the
    backend-parameterized conformance matrix in the test suite holds
    them to that).  ``--smoke`` runs a tiny conformance program:
    under tcp it exercises the full launcher shim
    (:mod:`repro.distributed.launch`) — independent ``python -m
    repro.distributed.launch`` subprocesses joining the job through
    the ``REPRO_*`` env contract — which is the path a future
    multi-host runner will take.
    """
    parser = argparse.ArgumentParser(
        prog="repro run",
        description="run on the mp layer with a selectable transport",
    )
    parser.add_argument(
        "--backend",
        choices=("shm", "tcp"),
        default="shm",
        help="rank interconnect (default: shm)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "run a tiny conformance program instead of a driver "
            "(tcp: via spawned launcher subprocesses)"
        ),
    )
    parser.add_argument(
        "--np",
        type=int,
        default=2,
        dest="nprocs",
        help="rank count for --smoke (default: 2)",
    )
    parser.add_argument(
        "--parameter-file",
        default=None,
        help="TuckerMPI-style parameter file (driver mode)",
    )
    parser.add_argument(
        "--algorithm",
        choices=("sthosvd", "hooi"),
        default="sthosvd",
        help="driver to run against --parameter-file",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        from repro.distributed.launch import _smoke_program, launch_spmd
        from repro.vmpi.mp_comm import run_spmd

        if args.nprocs < 1:
            raise ConfigError("--np must be positive")
        if args.backend == "tcp":
            out = launch_spmd(_smoke_program, args.nprocs)
            how = "spawned launcher subprocesses over loopback TCP"
        else:
            out = run_spmd(
                _smoke_program, args.nprocs, transport="shm"
            )
            how = "forked ranks over pooled shared memory"
        expected = float(
            args.nprocs * (args.nprocs + 1) // 2
        )
        if out != [expected] * args.nprocs:  # pragma: no cover
            print(f"smoke FAILED: {out}", file=sys.stderr)
            return 1
        print(
            f"smoke ok: {args.nprocs} ranks ({how}), "
            f"allreduce -> {out[0]:g}"
        )
        return 0

    if args.parameter_file is None:
        parser.error("driver mode needs --parameter-file (or --smoke)")
    params = ParameterFile.from_path(args.parameter_file)
    if params.get_bool("print options", True):
        _print_options(params)
    dims = params.get_ints("global dims")
    noise = params.get_float("noise", 1e-4)
    seed = params.get_int("seed", 0)

    if args.algorithm == "sthosvd":
        from repro.distributed.mp_sthosvd import mp_sthosvd

        ranks = params.get_ints("ranks")
        eps = params.get_float("sv threshold", 0.0)
        grid = _resolve_grid(params, dims, ranks, "sthosvd")
        print(f"Generating synthetic tensor {dims} with ranks {ranks}")
        x = tucker_plus_noise(dims, ranks, noise=noise, seed=seed)
        print(
            f"Running STHOSVD on {int(np.prod(grid))} processes "
            f"({'x'.join(map(str, grid))} grid, "
            f"{args.backend} backend)"
        )
        tucker = mp_sthosvd(
            x,
            grid,
            eps=eps if eps > 0 else None,
            ranks=None if eps > 0 else ranks,
            transport=args.backend,
        )
    else:
        from repro.distributed.mp_hooi import mp_hooi_dt

        construction = params.get_ints("construction ranks")
        decomposition = params.get_ints(
            "decomposition ranks", construction
        )
        use_dt = params.get_bool("dimension tree memoization", False)
        method = _svd_method(params.get_int("svd method", 0))
        grid = _resolve_grid(params, dims, decomposition, "hooi")
        print(
            f"Generating synthetic tensor {dims} with ranks "
            f"{construction}"
        )
        x = tucker_plus_noise(dims, construction, noise=noise, seed=seed)
        print(
            f"Running HOOI on {int(np.prod(grid))} processes "
            f"({'x'.join(map(str, grid))} grid, "
            f"{args.backend} backend)"
        )
        tucker, _ = mp_hooi_dt(
            x,
            decomposition,
            grid,
            HOOIOptions(
                use_dimension_tree=use_dt,
                llsv_method=method,
                max_iters=params.get_int("hooi max iters", 2),
                seed=seed,
            ),
            transport=args.backend,
        )
    _print_mp_result(tucker, x)
    return 0


def lint_main(argv: Sequence[str] | None = None) -> int:
    """``repro lint``: static SPMD correctness lint (spmdlint), plus
    the whole-program protocol model checker under ``--protocol``.

    Imported lazily — the analyzer package pulls in the full analysis
    stack, which the numeric subcommands never need.
    """
    from repro.analysis.verify.cli import lint_main as _lint_main

    return _lint_main(list(argv) if argv is not None else None)


def prof_main(argv: Sequence[str] | None = None) -> int:
    """``repro prof``: run an mp driver under the span profiler.

    Imported lazily, like ``lint`` — the renderers pull in the
    analysis stack.
    """
    from repro.observability.cli import prof_main as _prof_main

    return _prof_main(list(argv) if argv is not None else None)


def top_main(argv: Sequence[str] | None = None) -> int:
    """``repro top``: live telemetry view of an mp driver run.

    Imported lazily, like ``prof``.
    """
    from repro.observability.cli import top_main as _top_main

    return _top_main(list(argv) if argv is not None else None)


_SUBCOMMANDS = {
    "sthosvd": sthosvd_main,
    "hooi": hooi_main,
    "resume": resume_main,
    "run": run_main,
    "lint": lint_main,
    "prof": prof_main,
    "top": top_main,
}


def main(argv: Sequence[str] | None = None) -> int:
    """Umbrella entry point:
    ``repro sthosvd|hooi|resume|run|lint|prof|top ...``."""
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(
            "usage: repro {sthosvd,hooi,resume,run,lint,prof,top} ...\n"
            "  sthosvd  run STHOSVD from a parameter file\n"
            "  hooi     run HOOI/HOSI (optionally rank-adaptive)\n"
            "  resume   continue an interrupted checkpointed run\n"
            "  run      run on the mp layer (--backend shm|tcp)\n"
            "  lint     static SPMD lint (spmdlint; --protocol adds the\n"
            "           whole-program schedule model checker)\n"
            "  prof     profile an mp run (trace, metrics, attribution)\n"
            "  top      live telemetry view of an mp run (repro top)",
            file=sys.stderr,
        )
        return 0 if argv else 2
    cmd = argv.pop(0)
    if cmd not in _SUBCOMMANDS:
        print(
            f"repro: unknown command {cmd!r} "
            f"(expected one of {sorted(_SUBCOMMANDS)})",
            file=sys.stderr,
        )
        return 2
    return _SUBCOMMANDS[cmd](argv)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
