"""Artifact-style batch experiment workflow.

The paper's artifact drives its studies with generator scripts
(``ScaleScript.py``, ``RankScript.py``) that emit one parameter file
and SLURM script per data point, and collector scripts
(``CollectScaleScript.py``, ``CollectRankScript.py``) that parse the
resulting CSVs into figures.  This subpackage reproduces that workflow
against the simulator: generate a directory of parameter files +
manifest, run every point (no queueing system needed), collect the
per-point CSVs into figure-ready tables.
"""

from repro.artifact.rank import (
    collect_rank_experiments,
    generate_rank_experiments,
    run_rank_experiments,
)
from repro.artifact.scale import (
    collect_scale_experiments,
    generate_scale_experiments,
    run_scale_experiments,
)

__all__ = [
    "collect_rank_experiments",
    "collect_scale_experiments",
    "generate_rank_experiments",
    "generate_scale_experiments",
    "run_rank_experiments",
    "run_scale_experiments",
]
