"""Strong-scaling batch workflow (ScaleScript / CollectScaleScript).

Directory layout produced, mirroring the artifact's
``experiments/4way_560_10_Single/`` structure::

    <outdir>/
      manifest.json               experiment description
      configs/<algo>_p<P>.cfg     TuckerMPI-style parameter file per point
      csv/<algo>_p<P>.csv         one CSV per completed point
      collected.csv               merged results (after collect)
      figure.txt                  figure-ready series table
"""

from __future__ import annotations

import csv
import json
import math
from collections.abc import Sequence
from pathlib import Path

from repro.analysis.reporting import format_series
from repro.analysis.scaling import ALGORITHMS, default_grid, run_variant
from repro.config import ParameterFile
from repro.core.errors import ConfigError
from repro.distributed.arrays import SymbolicArray
from repro.vmpi.machine import MachineModel, perlmutter_like

__all__ = [
    "generate_scale_experiments",
    "run_scale_experiments",
    "collect_scale_experiments",
]


def generate_scale_experiments(
    outdir: str | Path,
    *,
    shape: Sequence[int] = (560, 560, 560, 560),
    ranks: Sequence[int] = (10, 10, 10, 10),
    proc_scale: Sequence[int] = tuple(2**k for k in range(13)),
    algorithms: Sequence[str] = ALGORITHMS,
    max_iters: int = 2,
) -> Path:
    """Emit one parameter file per (algorithm, P) point plus a manifest.

    Defaults regenerate the artifact's default experiment: the 4-way
    560^4 rank-10 strong-scaling study from p=1 to p=4096.
    """
    outdir = Path(outdir)
    configs = outdir / "configs"
    configs.mkdir(parents=True, exist_ok=True)
    shape = tuple(int(s) for s in shape)
    ranks = tuple(int(r) for r in ranks)

    points = []
    for algo in algorithms:
        if algo not in ALGORITHMS:
            raise ConfigError(f"unknown algorithm {algo!r}")
        for p in proc_scale:
            grid = default_grid(p, shape, algo)
            name = f"{algo}_p{p}"
            lines = [
                f"# generated scale point: {name}",
                "Print options = false",
                "Print timings = true",
                f"Algorithm = {algo}",
                f"Processor grid dims = {' '.join(map(str, grid))}",
                f"Global dims = {' '.join(map(str, shape))}",
                f"Ranks = {' '.join(map(str, ranks))}",
                f"HOOI max iters = {max_iters}",
            ]
            (configs / f"{name}.cfg").write_text("\n".join(lines) + "\n")
            points.append(name)

    manifest = {
        "kind": "strong_scaling",
        "shape": list(shape),
        "ranks": list(ranks),
        "proc_scale": list(proc_scale),
        "algorithms": list(algorithms),
        "max_iters": max_iters,
        "points": points,
    }
    (outdir / "manifest.json").write_text(json.dumps(manifest, indent=2))
    return outdir


def run_scale_experiments(
    outdir: str | Path,
    *,
    machine: MachineModel | None = None,
) -> int:
    """Run every generated point on the simulator; returns the count.

    Plays the role of the artifact's SLURM submission loop — each point
    reads its own parameter file and writes its own CSV, so partial
    re-runs behave like re-submitting failed jobs.
    """
    outdir = Path(outdir)
    manifest = json.loads((outdir / "manifest.json").read_text())
    machine = machine or perlmutter_like()
    csv_dir = outdir / "csv"
    csv_dir.mkdir(exist_ok=True)

    done = 0
    for name in manifest["points"]:
        params = ParameterFile.from_path(outdir / "configs" / f"{name}.cfg")
        algo = params.get_str("algorithm")
        grid = params.get_ints("processor grid dims")
        dims = params.get_ints("global dims")
        ranks = params.get_ints("ranks")
        max_iters = params.get_int("hooi max iters", 2)

        x = SymbolicArray(dims)
        _, stats = run_variant(
            x, algo, grid, ranks=ranks, machine=machine, max_iters=max_iters
        )
        with (csv_dir / f"{name}.csv").open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(
                ["algorithm", "p", "grid", "seconds", *stats.breakdown]
            )
            writer.writerow(
                [
                    algo,
                    math.prod(grid),
                    "x".join(map(str, grid)),
                    repr(stats.simulated_seconds),
                    *[repr(v) for v in stats.breakdown.values()],
                ]
            )
        done += 1
    return done


def collect_scale_experiments(outdir: str | Path) -> str:
    """Merge per-point CSVs into ``collected.csv`` and ``figure.txt``.

    Returns the figure text (the Fig. 2-style series table).  Missing
    points (failed "jobs") are reported as gaps rather than errors,
    matching the artifact's tolerant collector.
    """
    outdir = Path(outdir)
    manifest = json.loads((outdir / "manifest.json").read_text())
    rows: list[tuple[str, int, str, float]] = []
    missing: list[str] = []
    for name in manifest["points"]:
        path = outdir / "csv" / f"{name}.csv"
        if not path.exists():
            missing.append(name)
            continue
        with path.open(newline="") as fh:
            rec = next(csv.DictReader(fh))
        rows.append(
            (
                rec["algorithm"],
                int(rec["p"]),
                rec["grid"],
                float(rec["seconds"]),
            )
        )

    with (outdir / "collected.csv").open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["algorithm", "p", "grid", "seconds"])
        writer.writerows(rows)

    ps = sorted({p for _, p, _, _ in rows})
    series = {}
    for algo in manifest["algorithms"]:
        vals = []
        for p in ps:
            match = [s for a, q, _, s in rows if a == algo and q == p]
            vals.append(match[0] if match else float("nan"))
        series[algo] = vals
    title = (
        f"strong scaling: {'x'.join(map(str, manifest['shape']))}, "
        f"ranks {'x'.join(map(str, manifest['ranks']))}"
    )
    if missing:
        title += f"  [missing points: {', '.join(missing)}]"
    text = format_series("P", ps, series, title=title)
    (outdir / "figure.txt").write_text(text + "\n")
    return text
