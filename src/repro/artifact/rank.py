"""Dataset rank-study batch workflow (RankScript / CollectRankScript).

Mirrors the artifact's Miranda study generator/collector: one config
per (tolerance, algorithm, starting-rank kind), CSVs per run, and a
collected progression table (the Fig. 4/6/8 data).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.analysis.experiments import run_dataset_experiment
from repro.analysis.metrics import relative_size
from repro.analysis.reporting import format_table
from repro.core.errors import ConfigError
from repro.datasets import DATASETS, load_dataset
from repro.vmpi.machine import MachineModel, perlmutter_like

__all__ = [
    "generate_rank_experiments",
    "run_rank_experiments",
    "collect_rank_experiments",
]


def generate_rank_experiments(
    outdir: str | Path,
    *,
    dataset: str = "miranda",
    dataset_kwargs: dict | None = None,
    cores: int | None = None,
    tolerances: tuple[float, ...] = (0.1, 0.05, 0.01),
    max_iters: int = 3,
    seed: int = 0,
) -> Path:
    """Emit the manifest for a dataset rank study."""
    key = dataset.lower()
    if key not in DATASETS:
        raise ConfigError(
            f"unknown dataset {dataset!r}; available: {sorted(DATASETS)}"
        )
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    manifest = {
        "kind": "rank_study",
        "dataset": key,
        "dataset_kwargs": dataset_kwargs or {},
        "cores": cores or DATASETS[key].paper_cores,
        "tolerances": list(tolerances),
        "max_iters": max_iters,
        "seed": seed,
    }
    (outdir / "manifest.json").write_text(json.dumps(manifest, indent=2))
    return outdir


def run_rank_experiments(
    outdir: str | Path,
    *,
    machine: MachineModel | None = None,
) -> int:
    """Execute the study; one CSV row per (eps, algo, start, iteration)."""
    outdir = Path(outdir)
    manifest = json.loads((outdir / "manifest.json").read_text())
    machine = machine or perlmutter_like()
    x = load_dataset(
        manifest["dataset"],
        seed=manifest["seed"],
        **manifest["dataset_kwargs"],
    ).astype("float64")
    exp = run_dataset_experiment(
        manifest["dataset"],
        x,
        manifest["cores"],
        tolerances=tuple(manifest["tolerances"]),
        machine=machine,
        max_iters=manifest["max_iters"],
        seed=manifest["seed"],
    )

    rows = 0
    with (outdir / "results.csv").open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            [
                "eps", "algorithm", "start", "iteration", "ranks",
                "cum_seconds", "rel_error", "rel_size",
            ]
        )
        for eps, base in exp.baselines.items():
            writer.writerow(
                [
                    eps, "sthosvd", "", "",
                    " ".join(map(str, base.ranks)),
                    repr(base.seconds), repr(base.error),
                    repr(base.relative_size),
                ]
            )
            rows += 1
            for kind in ("perfect", "over", "under"):
                run = exp.adaptive_for(eps, kind)
                cum = 0.0
                for rec, secs in zip(
                    run.history, run.stats.iteration_seconds
                ):
                    cum += secs
                    ranks = rec.truncated_ranks or rec.ranks_used
                    err = (
                        rec.truncated_error
                        if rec.truncated_error is not None
                        else rec.error
                    )
                    writer.writerow(
                        [
                            eps, "ra-hosi-dt", kind, rec.iteration,
                            " ".join(map(str, ranks)),
                            repr(cum), repr(err),
                            repr(relative_size(x.shape, ranks)),
                        ]
                    )
                    rows += 1
    return rows


def collect_rank_experiments(outdir: str | Path) -> str:
    """Render ``results.csv`` into the Fig. 4/6/8-style table."""
    outdir = Path(outdir)
    manifest = json.loads((outdir / "manifest.json").read_text())
    path = outdir / "results.csv"
    if not path.exists():
        raise FileNotFoundError(
            f"{path} missing; run run_rank_experiments first"
        )
    with path.open(newline="") as fh:
        records = list(csv.DictReader(fh))
    rows = [
        [
            float(r["eps"]),
            r["algorithm"] + (f" ({r['start']})" if r["start"] else ""),
            r["iteration"] or "-",
            f"({r['ranks'].replace(' ', ', ')})",
            float(r["cum_seconds"]),
            float(r["rel_error"]),
            float(r["rel_size"]),
        ]
        for r in records
    ]
    text = format_table(
        [
            "eps", "algorithm", "iter", "ranks", "cum sim sec",
            "rel error", "rel size",
        ],
        rows,
        title=(
            f"{manifest['dataset']} rank study "
            f"({manifest['cores']} simulated cores)"
        ),
    )
    (outdir / "figure.txt").write_text(text + "\n")
    return text
