"""Unified LLSV dispatch used by the sequential algorithms.

``SVD Method`` in the TuckerMPI-HOOI artifact's parameter files selects
the kernel (0 = Gram+EVD, 2 = subspace iteration); this module is the
Python analogue, adding the LQ+SVD and randomized alternatives the
paper cites.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np
import scipy.linalg

from repro.linalg.evd import gram_evd, rank_from_spectrum
from repro.linalg.randomized import randomized_range_finder
from repro.linalg.subspace import subspace_iteration_llsv
from repro.tensor.dense import unfold
from repro.tensor.ops import gram

__all__ = ["LLSVMethod", "LLSVResult", "llsv"]


class LLSVMethod(enum.Enum):
    """Available LLSV kernels (artifact ``SVD Method`` values noted)."""

    GRAM_EVD = "gram_evd"  # SVD Method = 0
    LQ_SVD = "lq_svd"  # Li et al. [18] numerically stable variant
    RANDOMIZED = "randomized"  # randomized range finder [20, 21]
    SUBSPACE = "subspace"  # SVD Method = 2 (Alg. 5)


@dataclass(frozen=True)
class LLSVResult:
    """Factor matrix plus the spectrum information used to pick ranks.

    ``sq_singular_values`` is ``None`` for kernels that never form a
    spectrum (subspace iteration, randomized range finder).
    """

    factor: np.ndarray
    rank: int
    sq_singular_values: np.ndarray | None = None


def llsv(
    tensor: np.ndarray,
    mode: int,
    *,
    rank: int | None = None,
    threshold_sq: float | None = None,
    method: LLSVMethod = LLSVMethod.GRAM_EVD,
    u_prev: np.ndarray | None = None,
    n_subspace_iters: int = 1,
    seed: int | np.random.Generator | None = None,
) -> LLSVResult:
    """Leading left singular vectors of ``unfold(tensor, mode)``.

    Exactly one of ``rank`` (rank-specified formulation) or
    ``threshold_sq`` (error-specified: per-mode discarded-energy budget
    ``eps^2 ||X||^2 / d``) must be given, except that spectrum-forming
    methods accept both (rank acts as a cap).

    Parameters
    ----------
    tensor, mode:
        The operand and the unfolding mode.
    rank:
        Number of singular vectors (rank-specified problem).
    threshold_sq:
        Squared per-mode truncation budget (error-specified problem).
        Only the spectrum-forming kernels (``GRAM_EVD``, ``LQ_SVD``)
        support it.
    method:
        Which kernel to run.
    u_prev:
        Previous factor, required by ``SUBSPACE``.
    n_subspace_iters:
        Sweep count for ``SUBSPACE``.
    seed:
        RNG for ``RANDOMIZED``.
    """
    if rank is None and threshold_sq is None:
        raise ValueError("provide rank and/or threshold_sq")
    n = tensor.shape[mode]
    if rank is not None and not 1 <= rank <= n:
        raise ValueError(f"rank {rank} out of range for mode extent {n}")

    if method in (LLSVMethod.GRAM_EVD, LLSVMethod.LQ_SVD):
        if method is LLSVMethod.GRAM_EVD:
            sq_vals, vecs = gram_evd(gram(tensor, mode))
        else:
            mat = unfold(tensor, mode)
            # LQ of the unfolding: A = L Q^T via QR of A^T; then the SVD
            # of the small square L yields the left singular vectors.
            _, r_fac = np.linalg.qr(mat.T)
            u, s, _ = scipy.linalg.svd(r_fac.T, full_matrices=False)
            sq_vals, vecs = s * s, u
        out_rank = (
            rank
            if rank is not None
            else rank_from_spectrum(sq_vals, threshold_sq)
        )
        if threshold_sq is not None and rank is not None:
            out_rank = min(rank, rank_from_spectrum(sq_vals, threshold_sq))
        return LLSVResult(
            factor=np.ascontiguousarray(vecs[:, :out_rank]),
            rank=out_rank,
            sq_singular_values=sq_vals,
        )

    if rank is None:
        raise ValueError(
            f"{method.value} is rank-specified only; no spectrum is formed"
        )

    if method is LLSVMethod.RANDOMIZED:
        q = randomized_range_finder(unfold(tensor, mode), rank, seed=seed)
        return LLSVResult(factor=q, rank=rank)

    if method is LLSVMethod.SUBSPACE:
        if u_prev is None:
            raise ValueError("subspace iteration needs the previous factor")
        q = subspace_iteration_llsv(
            tensor, mode, u_prev, rank, n_iters=n_subspace_iters
        )
        return LLSVResult(factor=q, rank=rank)

    raise ValueError(f"unknown LLSV method {method!r}")  # pragma: no cover
