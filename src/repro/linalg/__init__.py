"""Leading-left-singular-vector (LLSV) kernels.

The paper considers several interchangeable LLSV algorithms (§2.1,
§3.4): the Gram-matrix eigendecomposition TuckerMPI defaults to, an
LQ+SVD variant, a randomized range finder, and the subspace-iteration
kernel (Alg. 5) that is one of this paper's two optimizations.
"""

from repro.linalg.evd import (
    gram_evd,
    rank_from_spectrum,
)
from repro.linalg.llsv import LLSVMethod, LLSVResult, llsv
from repro.linalg.qrcp import householder_qrcp, qrcp
from repro.linalg.randomized import (
    kronecker_range_finder,
    randomized_range_finder,
)
from repro.linalg.subspace import subspace_iteration_llsv

__all__ = [
    "LLSVMethod",
    "LLSVResult",
    "gram_evd",
    "householder_qrcp",
    "kronecker_range_finder",
    "llsv",
    "qrcp",
    "randomized_range_finder",
    "rank_from_spectrum",
    "subspace_iteration_llsv",
]
