"""Randomized range finders (Halko–Martinsson–Tropp style).

Listed by the paper (§2.1) as an alternative LLSV kernel; we include
both the unstructured Gaussian sketch and the Kronecker-structured
sketch of Minster et al. [20] (whose structure the paper notes "HOOI
with initial randomization" can be viewed as) as ablation baselines.
One optional power iteration sharpens the basis for slowly decaying
spectra.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["randomized_range_finder", "kronecker_range_finder"]


def randomized_range_finder(
    a: np.ndarray,
    rank: int,
    *,
    oversample: int = 8,
    power_iters: int = 0,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Orthonormal basis approximating the leading range of ``a``.

    Parameters
    ----------
    a:
        ``m x n`` matrix (an unfolding).
    rank:
        Target number of basis vectors.
    oversample:
        Extra sketch columns beyond ``rank`` (trimmed before return).
    power_iters:
        Number of ``(A A^T)`` power passes for spectrum sharpening.
    seed:
        RNG seed or generator.
    """
    if rank <= 0:
        raise ValueError("rank must be positive")
    m, n = a.shape
    rank = min(rank, m)
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    sketch = min(rank + max(oversample, 0), m, n)
    omega = rng.standard_normal((n, sketch))
    y = a @ omega
    q, _ = np.linalg.qr(y)
    for _ in range(power_iters):
        q, _ = np.linalg.qr(a.T @ q)
        q, _ = np.linalg.qr(a @ q)
    if q.shape[1] > rank:
        # Rotate so the leading columns track the leading singular
        # directions before trimming the oversampled tail.
        b = q.T @ a
        u, _, _ = np.linalg.svd(b, full_matrices=False)
        q = q @ u
    return q[:, :rank]


def kronecker_range_finder(
    tensor: np.ndarray,
    mode: int,
    rank: int,
    *,
    oversample: int = 4,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Structured sketch of a mode unfolding (Minster et al. [20]).

    The Gaussian test matrix is a Kronecker product of small per-mode
    Gaussians, so the sketch ``Y_(j) Omega^T`` is computed as an
    all-but-one multi-TTM with the small factors — never materializing
    the ``prod(n_i) x s`` test matrix.  Cheaper than the unstructured
    sketch whenever the tensor is large; slightly less accurate for the
    same sketch size (the rows of the test matrix are correlated).

    Parameters
    ----------
    tensor:
        The d-way operand.
    mode:
        Mode whose unfolding's range is sought.
    rank:
        Number of basis vectors to return.
    oversample:
        Extra sketch columns beyond ``rank`` (split across modes).
    seed:
        RNG seed or generator.
    """
    from repro.tensor.dense import unfold
    from repro.tensor.ops import multi_ttm
    from repro.tensor.validation import check_mode

    if rank <= 0:
        raise ValueError("rank must be positive")
    mode = check_mode(tensor.ndim, mode)
    n = tensor.shape[mode]
    rank = min(rank, n)
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    others = [m for m in range(tensor.ndim) if m != mode]
    # Split the sketch size across the other modes: per-mode sizes s_m
    # with prod(s_m) >= rank + oversample, as even as possible.
    target = rank + max(oversample, 0)
    per_mode = max(
        int(math.ceil(target ** (1.0 / max(len(others), 1)))), 1
    )
    sketch_sizes = {
        m: min(per_mode, tensor.shape[m]) for m in others
    }
    # Grow sizes greedily until the product covers the target (or the
    # modes are exhausted).
    while math.prod(sketch_sizes.values()) < target:
        grew = False
        for m in others:
            if sketch_sizes[m] < tensor.shape[m]:
                sketch_sizes[m] += 1
                grew = True
                if math.prod(sketch_sizes.values()) >= target:
                    break
        if not grew:
            break
    mats = [
        None
        if m == mode
        else rng.standard_normal((tensor.shape[m], sketch_sizes[m]))
        for m in range(tensor.ndim)
    ]
    sketched = multi_ttm(tensor, mats, transpose=True, skip=mode)
    y = unfold(sketched, mode)
    q, _ = np.linalg.qr(y)
    if q.shape[1] > rank:
        b = q.T @ unfold(tensor, mode)
        u, _, _ = np.linalg.svd(b, full_matrices=False)
        q = q @ u
    return np.ascontiguousarray(q[:, :rank])
