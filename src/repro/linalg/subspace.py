"""LLSV via subspace iteration (paper Alg. 5).

Given the all-but-one multi-TTM result ``Y`` and the previous factor
``U`` for mode ``j``, one sweep computes

    G = U^T Y_(j)          (a TTM — line 2)
    Z = Y_(j) G^T          (all-but-one contraction — line 3)
    Q = QRCP(Z)            (orthonormalize + energy-sort — line 4)

The paper uses a *single* sweep because the initialization (the factor
from the previous HOOI iteration) is already accurate; ``n_iters`` is
exposed for the ablation the paper mentions ("in principle, the
computations could be repeated").
"""

from __future__ import annotations

import numpy as np

from repro.linalg.qrcp import qrcp
from repro.tensor.ops import contract_all_but_mode, ttm

__all__ = ["subspace_iteration_llsv"]


def subspace_iteration_llsv(
    tensor: np.ndarray,
    mode: int,
    u_prev: np.ndarray,
    rank: int,
    *,
    n_iters: int = 1,
    qrcp_method: str = "lapack",
) -> np.ndarray:
    """Approximate leading left singular vectors of ``unfold(tensor, mode)``.

    Parameters
    ----------
    tensor:
        The intermediate tensor ``Y`` (all-but-``mode`` multi-TTM of the
        input with the current factors).
    mode:
        Mode whose factor is being updated.
    u_prev:
        Previous factor matrix for this mode; its column count sets the
        subspace dimension actually iterated.
    rank:
        Number of columns to return (``<= u_prev.shape[1]``).
    n_iters:
        Number of subspace-iteration sweeps (paper default: 1).
    qrcp_method:
        Passed through to :func:`repro.linalg.qrcp.qrcp`.
    """
    if n_iters < 1:
        raise ValueError("subspace iteration needs at least one sweep")
    n = tensor.shape[mode]
    if u_prev.shape[0] != n:
        raise ValueError(
            f"previous factor has {u_prev.shape[0]} rows, mode {mode} has "
            f"extent {n}"
        )
    if rank > u_prev.shape[1]:
        raise ValueError(
            f"requested rank {rank} exceeds subspace width {u_prev.shape[1]}"
        )
    q = u_prev
    for _ in range(n_iters):
        core_slice = ttm(tensor, q, mode, transpose=True)
        z = contract_all_but_mode(tensor, core_slice, mode)
        q, _, _ = qrcp(z, method=qrcp_method)
    return np.ascontiguousarray(q[:, :rank])
