"""QR with column pivoting.

Subspace iteration (Alg. 5) orthonormalizes with QRCP rather than plain
QR because the pivot order sorts the basis by captured energy, which is
what lets the core-analysis step (§3.2) search only *leading* subtensors
of the core.

Two implementations are provided: a from-scratch Householder QRCP (used
for validation and as a reference) and a LAPACK-backed fast path via
``scipy.linalg.qr(pivoting=True)``.
"""

from __future__ import annotations

import numpy as np
import scipy.linalg

__all__ = ["householder_qrcp", "qrcp"]


def householder_qrcp(
    a: np.ndarray, rank: int | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Householder QR with column pivoting, from scratch.

    Parameters
    ----------
    a:
        ``m x n`` matrix.
    rank:
        Number of factorization steps (defaults to ``min(m, n)``).

    Returns
    -------
    (Q, R, piv):
        ``Q`` is ``m x k`` with orthonormal columns, ``R`` is ``k x n``
        upper triangular, and ``piv`` is the pivot permutation such that
        ``a[:, piv] ~= Q @ R``.
    """
    r_mat = np.array(a, dtype=np.float64, copy=True)
    m, n = r_mat.shape
    k = min(m, n) if rank is None else min(rank, m, n)
    if k <= 0:
        raise ValueError("rank must be positive")

    piv = np.arange(n)
    col_norms = np.sum(r_mat * r_mat, axis=0)
    vs: list[np.ndarray] = []

    for j in range(k):
        # Pivot: bring the column of largest remaining norm to position j.
        p = j + int(np.argmax(col_norms[j:]))
        if p != j:
            r_mat[:, [j, p]] = r_mat[:, [p, j]]
            piv[[j, p]] = piv[[p, j]]
            col_norms[[j, p]] = col_norms[[p, j]]

        x = r_mat[j:, j]
        normx = np.linalg.norm(x)
        v = x.copy()
        if normx > 0.0:
            v[0] += np.copysign(normx, x[0] if x[0] != 0 else 1.0)
            vnorm = np.linalg.norm(v)
            if vnorm > 0.0:
                v /= vnorm
        # Apply the reflector H = I - 2 v v^T to the trailing block.
        w = v @ r_mat[j:, j:]
        r_mat[j:, j:] -= 2.0 * np.outer(v, w)
        vs.append(v)

        # Downdate trailing column norms; recompute on heavy cancellation.
        if j + 1 < n:
            col_norms[j + 1 :] -= r_mat[j, j + 1 :] ** 2
            stale = col_norms[j + 1 :] < 1e-10 * np.abs(col_norms[j + 1 :]).max(
                initial=1.0
            )
            if np.any(stale):
                idx = np.nonzero(stale)[0] + j + 1
                col_norms[idx] = np.sum(
                    r_mat[j + 1 :, idx] * r_mat[j + 1 :, idx], axis=0
                )

    # Accumulate Q by applying the reflectors to the leading identity.
    q = np.zeros((m, k))
    q[:k, :k] = np.eye(k)
    for j in range(k - 1, -1, -1):
        v = vs[j]
        w = v @ q[j:, :]
        q[j:, :] -= 2.0 * np.outer(v, w)

    r_out = np.triu(r_mat[:k, :])
    return q, r_out, piv


def qrcp(
    a: np.ndarray, rank: int | None = None, *, method: str = "lapack"
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Economy QRCP dispatch.

    ``method='lapack'`` uses ``scipy.linalg.qr`` (dgeqp3); ``'householder'``
    uses the from-scratch reference implementation.  Both return
    ``(Q, R, piv)`` with ``a[:, piv] ~= Q @ R`` and ``Q`` truncated to
    ``rank`` columns when requested.
    """
    if method == "householder":
        return householder_qrcp(a, rank)
    if method != "lapack":
        raise ValueError(f"unknown qrcp method {method!r}")
    q, r, piv = scipy.linalg.qr(a, mode="economic", pivoting=True)
    if rank is not None:
        k = min(rank, q.shape[1])
        q, r = q[:, :k], r[:k, :]
    return q, r, piv
