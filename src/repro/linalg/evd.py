"""Gram-matrix eigendecomposition and threshold-based rank selection.

TuckerMPI's default LLSV forms the Gram matrix ``Y_(j) Y_(j)^T`` and
eigendecomposes it *sequentially* — the ``O(n^3)`` term that bottlenecks
STHOSVD scaling in Fig. 2 when a tensor dimension is large.
"""

from __future__ import annotations

import numpy as np

__all__ = ["gram_evd", "rank_from_spectrum"]


def gram_evd(gram_matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Eigendecomposition of a symmetric PSD Gram matrix.

    Returns ``(eigvals, eigvecs)`` sorted by *descending* eigenvalue,
    with tiny negative rounding noise clipped to zero.  The eigenvalues
    equal the squared singular values of the unfolding.
    """
    vals, vecs = np.linalg.eigh(gram_matrix)
    order = np.argsort(vals)[::-1]
    vals = np.maximum(vals[order], 0.0)
    return vals, vecs[:, order]


def rank_from_spectrum(
    sq_singular_values: np.ndarray, threshold_sq: float
) -> int:
    """Smallest rank whose discarded tail satisfies the error budget.

    Picks the smallest ``r`` such that ``sum_{i>r} sigma_i^2 <=
    threshold_sq`` (the per-mode budget ``eps^2 ||X||^2 / d`` of Alg. 1,
    line 4).  Always returns at least 1.
    """
    if threshold_sq < 0:
        raise ValueError("threshold must be nonnegative")
    vals = np.asarray(sq_singular_values, dtype=np.float64)
    # tail[r] = sum of vals[r:], i.e. the discarded energy at rank r.
    tail = np.concatenate([np.cumsum(vals[::-1])[::-1], [0.0]])
    ok = np.nonzero(tail <= threshold_sq)[0]
    rank = int(ok[0]) if ok.size else len(vals)
    return max(rank, 1)
