"""Run-level profile artifact and its renderers.

A :class:`RunProfile` assembles the per-rank
:class:`~repro.observability.spans.RankProfile` snapshots gathered by
``run_spmd`` into one artifact with three views:

``chrome_trace()``
    Chrome ``trace_event`` JSON — one lane (``tid``) per rank, nested
    sweep/phase/kernel/collective spans as complete (``"X"``) events —
    loadable directly in ``chrome://tracing`` or Perfetto.  Lanes are
    aligned on a shared wall-clock axis via each rank's recorded
    ``wall_origin``, so cross-rank wait chains line up visually.
``metrics()``
    Per-rank counters/gauges/histograms as plain JSON.
``timeline()``
    The extended ASCII view — one lane per rank — reusing the
    simulator's :func:`~repro.vmpi.trace.render_lanes`.

:func:`validate_chrome_trace` is the schema check the tests and the CI
``profile-smoke`` job run against the emitted JSON.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

from repro.observability.spans import RankProfile, merge_intervals
from repro.vmpi.trace import render_lanes

__all__ = ["RunProfile", "validate_chrome_trace"]


class RunProfile:
    """Profiles of every rank of one ``run_spmd`` launch."""

    def __init__(self, ranks: Iterable[RankProfile]) -> None:
        self.ranks: list[RankProfile] = sorted(
            ranks, key=lambda p: p.rank
        )
        if not self.ranks:
            raise ValueError("RunProfile needs at least one rank")
        #: shared time origin: the earliest rank's profiler epoch.
        self.wall_origin = min(p.wall_origin for p in self.ranks)

    @classmethod
    def from_ranks(
        cls, profiles: Mapping[int, RankProfile]
    ) -> "RunProfile":
        """From the ``profile_out`` dict ``run_spmd`` fills."""
        return cls(profiles.values())

    @property
    def size(self) -> int:
        return len(self.ranks)

    def shift(self, profile: RankProfile) -> float:
        """Seconds between the run origin and this rank's epoch."""
        return profile.wall_origin - self.wall_origin

    # -- renderers ----------------------------------------------------------

    def chrome_trace(self) -> dict[str, Any]:
        """``trace_event`` JSON object: one ``tid`` lane per rank."""
        events: list[dict[str, Any]] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": "mp run"},
            }
        ]
        for p in self.ranks:
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": p.rank,
                    "args": {"name": f"rank {p.rank}"},
                }
            )
        for p in self.ranks:
            shift = self.shift(p)
            for s in p.spans:
                events.append(
                    {
                        "name": s.name,
                        "cat": s.category,
                        "ph": "X",
                        "ts": (shift + s.start) * 1e6,
                        "dur": s.seconds * 1e6,
                        "pid": 0,
                        "tid": p.rank,
                        "args": {
                            "phase": s.phase,
                            "depth": s.depth,
                        },
                    }
                )
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def metrics(self) -> dict[str, Any]:
        """Per-rank metrics snapshot as one JSON-able object."""
        return {
            "ranks": {
                str(p.rank): {
                    "spans": len(p.spans),
                    "dropped": p.dropped,
                    **p.metrics,
                }
                for p in self.ranks
            }
        }

    def timeline(
        self, *, width: int = 72, category: str = "phase"
    ) -> str:
        """ASCII view: one lane per rank, busy = in-``category`` spans,
        on the shared wall-clock axis."""
        lanes = []
        for p in self.ranks:
            shift = self.shift(p)
            intervals = merge_intervals(
                [
                    (shift + s.start, shift + s.end)
                    for s in p.spans
                    if s.category == category
                ]
            )
            lanes.append((f"rank {p.rank}", intervals))
        return render_lanes(
            lanes, width=width, lane_header="rank", unit="measured s"
        )


def validate_chrome_trace(obj: Any) -> None:
    """Raise ``ValueError`` unless ``obj`` is a well-formed JSON-object
    format ``trace_event`` document (the subset we emit: ``"M"``
    metadata and ``"X"`` complete events)."""

    def fail(msg: str) -> None:
        raise ValueError(f"invalid trace_event document: {msg}")

    if not isinstance(obj, dict) or "traceEvents" not in obj:
        fail("top level must be an object with 'traceEvents'")
    events = obj["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("'traceEvents' must be a non-empty list")
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail(f"event {i} is not an object")
        if not isinstance(e.get("name"), str):
            fail(f"event {i} has no string 'name'")
        ph = e.get("ph")
        if ph not in ("X", "M"):
            fail(f"event {i} has unsupported phase {ph!r}")
        for key in ("pid", "tid"):
            if not isinstance(e.get(key), int):
                fail(f"event {i} has no integer {key!r}")
        if ph == "X":
            ts, dur = e.get("ts"), e.get("dur")
            if not isinstance(ts, (int, float)) or ts < 0:
                fail(f"event {i} has invalid 'ts' {ts!r}")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"event {i} has invalid 'dur' {dur!r}")
