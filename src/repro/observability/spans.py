"""Per-rank span profiler and metrics registry for the mp layer.

The paper's evidence is per-phase time breakdowns (Figs. 2-9); the
executed process-parallel layer previously recorded only collective
*counts* (:class:`~repro.vmpi.trace.CommTrace`).  This module adds the
measured-time side: a :class:`SpanProfiler` records nested spans —
sweeps, algorithm phases, local kernels, and each collective — and a
:class:`MetricsRegistry` accumulates per-rank counters, gauges, and
log-bucketed histograms (bytes moved, TTM flops, cache hits and
evictions, checkpoint write time, collective wait-vs-transfer split).

The design contract mirrors :class:`~repro.vmpi.faults.FaultPlan`:
when ``CommConfig.profile`` is off no profiler object exists and every
instrumented boundary pays exactly one ``is None`` test.  When on, a
span costs two ``perf_counter`` reads and one list append; nothing on
the payload path is touched, so profiled runs stay bit-identical to
unprofiled runs.  The span buffer is capacity-bounded (a ring buffer
that stops recording rather than wrapping, keeping the *earliest*
spans, with a ``dropped`` count) so a runaway sweep cannot exhaust
memory.

Each worker ships its :class:`RankProfile` (a plain picklable
snapshot) back through the result queue at shutdown; on rank failure
the failure report carries the partial profile plus the innermost
*open* span, so a hang or crash is attributable to a phase and a start
timestamp, not just a collective index.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Any

__all__ = [
    "SPAN_CATEGORIES",
    "Histogram",
    "MetricsRegistry",
    "RankProfile",
    "Span",
    "SpanProfiler",
]

#: Nesting order of the instrumented layers, outermost first: driver
#: sweeps contain algorithm phases contain local kernels and
#: collectives.
SPAN_CATEGORIES = ("sweep", "phase", "kernel", "collective")


@dataclass(frozen=True)
class Span:
    """One finished span on one rank.

    ``start`` is seconds since the rank's profiler epoch
    (``perf_counter``-based, monotonic); :attr:`RankProfile.wall_origin`
    maps the epoch to wall-clock time so lanes from different ranks can
    be aligned on one axis.
    """

    name: str
    category: str
    phase: str
    start: float
    seconds: float
    depth: int

    @property
    def end(self) -> float:
        return self.start + self.seconds


# Histogram buckets are powers of two spanning ~1 microsecond to ~2^31
# seconds; values are durations/sizes, so a fixed log2 grid gives
# mergeable per-rank distributions with no per-observation allocation.
_BUCKET_LO_EXP = -20
_BUCKET_COUNT = 52


class Histogram:
    """Fixed log2-bucketed histogram with count/total/min/max."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.buckets = [0] * _BUCKET_COUNT

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if value > 0:
            _, exp = math.frexp(value)
            idx = min(max(exp - _BUCKET_LO_EXP, 0), _BUCKET_COUNT - 1)
        else:
            idx = 0
        self.buckets[idx] += 1

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict form: stats plus ``{upper_bound: count}`` for the
        non-empty buckets (bounds are ``2.0**k`` seconds/units)."""
        if self.count == 0:
            return {"count": 0, "total": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.total / self.count,
            "min": self.min,
            "max": self.max,
            "buckets": {
                format(2.0 ** (i + _BUCKET_LO_EXP), ".3g"): n
                for i, n in enumerate(self.buckets)
                if n
            },
        }


class MetricsRegistry:
    """Per-rank named counters, gauges, and histograms.

    Counters accumulate (``inc``), gauges hold the last value
    (``gauge``), histograms record distributions (``observe``).  All
    three namespaces are independent dicts keyed by metric name; the
    hot paths are a dict lookup plus a float add.
    """

    __slots__ = ("counters", "gauges", "histograms")

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    def inc(self, name: str, value: float = 1.0) -> None:
        self.counters[name] = self.counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def snapshot(self) -> dict[str, Any]:
        """Plain-dict copy of all three namespaces.

        Tolerant of concurrent writers: hosted-rank threads and the
        telemetry pusher snapshot a registry the rank is still
        updating, so a histogram inserted mid-iteration (RuntimeError
        from the comprehension) just retries — values read during a
        retry window are each internally consistent, which is all a
        heartbeat needs.
        """
        for _ in range(8):
            try:
                return {
                    "counters": dict(self.counters),
                    "gauges": dict(self.gauges),
                    "histograms": {
                        k: h.snapshot()
                        for k, h in self.histograms.items()
                    },
                }
            except RuntimeError:  # dict resized mid-iteration
                continue
        # Writer is inserting faster than we can iterate (pathological
        # — metric *names* are created once, then updated in place).
        # Fall back to whatever names are stable right now.
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                k: self.histograms[k].snapshot()
                for k in tuple(self.histograms)
                if k in self.histograms
            },
        }


@dataclass(frozen=True)
class RankProfile:
    """Picklable snapshot of one rank's profiler at shutdown.

    ``open_span`` is ``None`` after a clean shutdown; on the failure
    path it names the innermost span still open when the rank died
    (name, category, phase, start offset, wall-clock start, and how
    long it had been open), which is what attributes a hang to a
    phase.
    """

    rank: int
    wall_origin: float
    spans: tuple[Span, ...]
    dropped: int
    metrics: dict[str, Any]
    open_span: dict[str, Any] | None = None

    def by_category(self, category: str) -> list[Span]:
        return [s for s in self.spans if s.category == category]

    def phase_seconds(self) -> dict[str, float]:
        """Measured seconds per phase, overlap-free.

        Phase spans of the same phase can nest (a kernel helper opens
        the phase its caller is already in), so per-phase time is the
        length of the *union* of that phase's intervals, not the sum
        of span durations.
        """
        out: dict[str, float] = {}
        for phase, intervals in self.phase_intervals().items():
            out[phase] = sum(end - start for start, end in intervals)
        return out

    def phase_intervals(self) -> dict[str, list[tuple[float, float]]]:
        """Merged ``(start, end)`` intervals of each phase's spans, in
        time order — one interval per executed phase instance."""
        raw: dict[str, list[tuple[float, float]]] = {}
        for s in self.spans:
            if s.category == "phase":
                raw.setdefault(s.name, []).append((s.start, s.end))
        return {
            phase: merge_intervals(ivs) for phase, ivs in raw.items()
        }


def merge_intervals(
    intervals: list[tuple[float, float]],
) -> list[tuple[float, float]]:
    """Union of possibly-nested/overlapping intervals, sorted."""
    merged: list[tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            last_start, last_end = merged[-1]
            merged[-1] = (last_start, max(last_end, end))
        else:
            merged.append((start, end))
    return merged


class SpanProfiler:
    """Low-overhead nested span recorder for one rank.

    ``begin``/``end`` bracket a span; nesting depth is the open-stack
    height.  ``end`` returns the span's duration so call sites that
    also want a histogram observation don't pay a third clock read.
    """

    __slots__ = (
        "rank",
        "capacity",
        "metrics",
        "spans",
        "dropped",
        "wall_origin",
        "_origin",
        "_stack",
    )

    def __init__(self, rank: int, capacity: int = 1 << 16) -> None:
        self.rank = rank
        self.capacity = capacity
        self.metrics = MetricsRegistry()
        self.spans: list[Span] = []
        self.dropped = 0
        self._stack: list[tuple[str, str, str, float]] = []
        # Both clocks sampled back to back: perf_counter drives every
        # span, wall time only anchors this rank's lane on the shared
        # cross-rank axis.
        self.wall_origin = time.time()
        self._origin = time.perf_counter()

    def begin(self, name: str, category: str, phase: str = "") -> None:
        self._stack.append(
            (name, category, phase, time.perf_counter())
        )

    def end(self) -> float:
        name, category, phase, start = self._stack.pop()
        now = time.perf_counter()
        if len(self.spans) < self.capacity:
            self.spans.append(
                Span(
                    name,
                    category,
                    phase,
                    start - self._origin,
                    now - start,
                    len(self._stack),
                )
            )
        else:
            self.dropped += 1
        return now - start

    def open_span(self) -> dict[str, Any] | None:
        """The innermost still-open span, or ``None``.

        Used by the failure path: a rank that dies mid-span reports
        what it was doing and since when (wall clock), so hangs are
        attributable to a phase, not just a collective index.
        """
        if not self._stack:
            return None
        name, category, phase, start = self._stack[-1]
        offset = start - self._origin
        return {
            "name": name,
            "category": category,
            "phase": phase,
            "start": offset,
            "wall_start": self.wall_origin + offset,
            "open_for": time.perf_counter() - start,
        }

    def finalize_transport(self, channel: Any) -> None:
        """Stamp the transport's lifetime byte/message counters as
        gauges (the "bytes moved" metrics) before snapshotting."""
        for name in (
            "sent_messages",
            "sent_bytes",
            "recv_messages",
            "recv_bytes",
            "shm_messages",
        ):
            value = getattr(channel, name, None)
            if value is not None:
                self.metrics.gauge(name, float(value))

    def rank_profile(self) -> RankProfile:
        return RankProfile(
            rank=self.rank,
            wall_origin=self.wall_origin,
            spans=tuple(self.spans),
            dropped=self.dropped,
            metrics=self.metrics.snapshot(),
            open_span=self.open_span(),
        )
