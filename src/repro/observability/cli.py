"""``repro prof``: run an mp driver with the span profiler armed.

Parses the same TuckerMPI-style parameter file as ``repro hooi`` /
``repro sthosvd``, runs the requested algorithm on the real
process-parallel layer with ``CommConfig(profile=True)``, and renders
the gathered :class:`~repro.observability.profile.RunProfile`:

``--trace-out``
    Chrome ``trace_event`` JSON — open in Perfetto / chrome://tracing;
    one lane per rank, spans nested sweep > phase > kernel/collective.
``--metrics-out``
    Per-rank metrics JSON (counters, gauges, histograms).
``--report``
    Measured-vs-modeled attribution: the same run is priced on the
    simulated machine and joined per phase against the measured spans
    (see :mod:`repro.analysis.attribution`).
``--timeline``
    Per-rank ASCII timeline on stdout.

Profiled runs are bit-identical to unprofiled ones — the profiler
only reads clocks around existing boundaries.

``repro top`` (:func:`top_main`) shares the same parameter files and
drivers but attaches a live
:class:`~repro.observability.telemetry.TelemetryMonitor` instead: the
driver runs in a background thread while the foreground redraws the
monitor's rank table (state, phase, sweep progress, stall flags) at
the telemetry cadence, writes the JSONL event log on request, and
prints the causal postmortem timeline when the run dies.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
from collections.abc import Sequence
from pathlib import Path

from repro.config import ParameterFile
from repro.core.errors import ConfigError
from repro.core.hooi import HOOIOptions
from repro.core.rank_adaptive import RankAdaptiveOptions
from repro.linalg.llsv import LLSVMethod
from repro.observability.profile import RunProfile, validate_chrome_trace
from repro.tensor.random import tucker_plus_noise
from repro.vmpi.mp_comm import CommConfig

__all__ = ["prof_main", "top_main"]


def _svd_method(code: int) -> LLSVMethod:
    if code == 0:
        return LLSVMethod.GRAM_EVD
    if code == 2:
        return LLSVMethod.SUBSPACE
    raise ConfigError(
        f"SVD Method = {code} unsupported (0 = Gram+EVD, 2 = subspace)"
    )


def _run_hooi(
    params: ParameterFile,
    *,
    want_model: bool,
    cfg: CommConfig | None = None,
    transport: str = "p2p",
    monitor: object | None = None,
) -> tuple[RunProfile, dict[str, float] | None, str]:
    dims = params.get_ints("global dims")
    noise = params.get_float("noise", 1e-4)
    construction = params.get_ints("construction ranks")
    decomposition = params.get_ints("decomposition ranks", construction)
    use_dt = params.get_bool("dimension tree memoization", False)
    method = _svd_method(params.get_int("svd method", 0))
    max_iters = params.get_int("hooi max iters", 2)
    adapt = params.get_float("hooi-adapt threshold", 0.0)
    seed = params.get_int("seed", 0)
    grid = params.get_ints("processor grid dims", (1,) * len(dims))

    print(f"Generating synthetic tensor {dims} with ranks {construction}")
    x = tucker_plus_noise(dims, construction, noise=noise, seed=seed)
    sink: dict[int, object] = {}
    cfg = cfg or CommConfig(profile=True)
    model: dict[str, float] | None = None

    if adapt > 0:
        ra_options = RankAdaptiveOptions(
            max_iters=max_iters,
            use_dimension_tree=use_dt,
            llsv_method=method,
            stop_at_threshold=True,
            seed=seed,
        )
        print(
            f"Profiling rank-adaptive HOSI on "
            f"{'x'.join(map(str, grid))} processes"
        )
        from repro.distributed.mp_hooi import mp_rahosi_dt

        mp_rahosi_dt(
            x,
            adapt,
            decomposition,
            grid,
            ra_options,
            transport=transport,
            comm_config=cfg,
            profile_out=sink,
            monitor=monitor,
        )
        if want_model:
            from repro.distributed.rank_adaptive import (
                dist_rank_adaptive_hooi,
            )

            _, ra_stats = dist_rank_adaptive_hooi(
                x, adapt, decomposition, grid, options=ra_options
            )
            model = ra_stats.breakdown
        label = "dist_rank_adaptive_hooi"
    else:
        h_options = HOOIOptions(
            use_dimension_tree=use_dt,
            llsv_method=method,
            max_iters=max_iters,
            seed=seed,
        )
        print(
            f"Profiling HOOI-DT on {'x'.join(map(str, grid))} processes"
        )
        from repro.distributed.mp_hooi import mp_hooi_dt

        mp_hooi_dt(
            x,
            decomposition,
            grid,
            h_options,
            transport=transport,
            comm_config=cfg,
            profile_out=sink,
            monitor=monitor,
        )
        if want_model:
            from repro.distributed.hooi import dist_hooi

            _, h_stats = dist_hooi(
                x, decomposition, grid, options=h_options
            )
            model = h_stats.breakdown
        label = "dist_hooi"
    return RunProfile.from_ranks(sink), model, label


def _run_sthosvd(
    params: ParameterFile,
    *,
    want_model: bool,
    cfg: CommConfig | None = None,
    transport: str = "p2p",
    monitor: object | None = None,
) -> tuple[RunProfile, dict[str, float] | None, str]:
    dims = params.get_ints("global dims")
    noise = params.get_float("noise", 1e-4)
    ranks = params.get_ints("ranks")
    eps = params.get_float("sv threshold", 0.0)
    seed = params.get_int("seed", 0)
    grid = params.get_ints("processor grid dims", (1,) * len(dims))

    print(f"Generating synthetic tensor {dims} with ranks {ranks}")
    x = tucker_plus_noise(dims, ranks, noise=noise, seed=seed)
    sink: dict[int, object] = {}
    print(f"Profiling STHOSVD on {'x'.join(map(str, grid))} processes")
    from repro.distributed.mp_sthosvd import mp_sthosvd

    mp_sthosvd(
        x,
        grid,
        eps=eps if eps > 0 else None,
        ranks=None if eps > 0 else ranks,
        transport=transport,
        comm_config=cfg or CommConfig(profile=True),
        profile_out=sink,
        monitor=monitor,
    )
    model: dict[str, float] | None = None
    if want_model:
        from repro.distributed.sthosvd import dist_sthosvd

        _, s_stats = dist_sthosvd(
            x,
            grid,
            eps=eps if eps > 0 else None,
            ranks=None if eps > 0 else ranks,
        )
        model = s_stats.breakdown
    return RunProfile.from_ranks(sink), model, "dist_sthosvd"


def prof_main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``repro prof``."""
    parser = argparse.ArgumentParser(
        prog="repro prof",
        description=(
            "profile an mp driver: spans, metrics, and the "
            "measured-vs-modeled attribution report"
        ),
    )
    parser.add_argument(
        "driver",
        choices=("hooi", "sthosvd"),
        help="which mp algorithm to run under the profiler",
    )
    parser.add_argument(
        "--parameter-file",
        required=True,
        help="TuckerMPI-style 'Key = value' parameter file",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help="write Chrome trace_event JSON (Perfetto / chrome://tracing)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        help="write per-rank metrics JSON (counters, gauges, histograms)",
    )
    parser.add_argument(
        "--report",
        action="store_true",
        help=(
            "price the same run on the simulated machine and print the "
            "measured-vs-modeled attribution report"
        ),
    )
    parser.add_argument(
        "--timeline",
        action="store_true",
        help="print the per-rank ASCII timeline",
    )
    args = parser.parse_args(argv)

    params = ParameterFile.from_path(args.parameter_file)
    runner = _run_hooi if args.driver == "hooi" else _run_sthosvd
    profile, model, model_label = runner(params, want_model=args.report)

    spans = sum(len(p.spans) for p in profile.ranks)
    dropped = sum(p.dropped for p in profile.ranks)
    print(
        f"Profiled {profile.size} ranks: {spans} spans"
        + (f" ({dropped} dropped at capacity)" if dropped else "")
    )

    if args.trace_out is not None:
        trace = profile.chrome_trace()
        validate_chrome_trace(trace)
        Path(args.trace_out).write_text(json.dumps(trace))
        print(
            f"Wrote Chrome trace ({profile.size} rank lanes) to "
            f"{args.trace_out}"
        )
    if args.metrics_out is not None:
        Path(args.metrics_out).write_text(
            json.dumps(profile.metrics(), indent=2, sort_keys=True)
        )
        print(f"Wrote metrics to {args.metrics_out}")
    if args.timeline:
        print()
        print(profile.timeline())
    if args.report:
        from repro.analysis.attribution import format_attribution_report

        print()
        print(
            format_attribution_report(
                profile, model, model_label=model_label
            )
        )
    return 0


def top_main(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``repro top``: live telemetry view of an mp run."""
    parser = argparse.ArgumentParser(
        prog="repro top",
        description=(
            "run an mp driver with the live telemetry monitor attached "
            "and render per-rank progress while it runs"
        ),
    )
    parser.add_argument(
        "driver",
        choices=("hooi", "sthosvd"),
        help="which mp algorithm to run under the monitor",
    )
    parser.add_argument(
        "--parameter-file",
        required=True,
        help="TuckerMPI-style 'Key = value' parameter file",
    )
    parser.add_argument(
        "--backend",
        choices=("shm", "tcp"),
        default="shm",
        help="collective wire (shm = shared-memory pool, tcp = sockets)",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=0.5,
        help="telemetry heartbeat / redraw cadence in seconds",
    )
    parser.add_argument(
        "--jsonl",
        default=None,
        help="write the telemetry event log (JSON Lines, schema v1)",
    )
    parser.add_argument(
        "--no-ui",
        action="store_true",
        help="no live redraw (CI): run, then print the final table once",
    )
    args = parser.parse_args(argv)

    from repro.observability.telemetry import TelemetryMonitor

    params = ParameterFile.from_path(args.parameter_file)
    transport = "p2p" if args.backend == "shm" else "tcp"
    monitor = TelemetryMonitor()
    # profile=True keeps the runner helpers' RunProfile assembly valid;
    # telemetry rides out of band either way.
    cfg = CommConfig(profile=True, telemetry_interval=args.interval)
    runner = _run_hooi if args.driver == "hooi" else _run_sthosvd
    outcome: dict[str, BaseException] = {}

    def _drive() -> None:
        try:
            runner(
                params,
                want_model=False,
                cfg=cfg,
                transport=transport,
                monitor=monitor,
            )
        except BaseException as exc:  # surfaced after the UI loop
            outcome["exc"] = exc

    worker = threading.Thread(target=_drive, daemon=True)
    worker.start()
    live = not args.no_ui and sys.stdout.isatty()
    try:
        while worker.is_alive():
            worker.join(max(args.interval, 0.1))
            if live and worker.is_alive():
                sys.stdout.write("\x1b[2J\x1b[H" + monitor.render() + "\n")
                sys.stdout.flush()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        pass
    print()
    print(monitor.render())
    if args.jsonl is not None:
        monitor.write_jsonl(args.jsonl)
        print(f"Wrote telemetry log to {args.jsonl}")
    exc = outcome.get("exc")
    if exc is None:
        return 0
    from repro.vmpi.mp_comm import RankFailureError

    if isinstance(exc, RankFailureError) and exc.postmortem is not None:
        print()
        print(exc.postmortem.render())
    else:
        print(f"run failed: {exc!r}", file=sys.stderr)
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(prof_main())
