"""Measured-time observability for the process-parallel layer.

The span profiler and metrics registry (:mod:`.spans`) record where
wall-clock actually goes on a live mp run; :mod:`.profile` gathers the
per-rank snapshots into a :class:`RunProfile` with Chrome-trace,
metrics-JSON, and ASCII renderers.  Armed via
``CommConfig(profile=True)``; zero cost when off.  The
model-vs-measured join lives in :mod:`repro.analysis.attribution`.

:mod:`.telemetry` covers the runs that never reach clean shutdown:
the always-on :class:`FlightRecorder` ring (on even when profiling is
off), the live out-of-band telemetry channel
(:class:`TelemetryMonitor` + ``repro top``), and the causal
:class:`Postmortem` timelines merged from all rank rings on failure.
"""

from repro.observability.profile import RunProfile, validate_chrome_trace
from repro.observability.spans import (
    SPAN_CATEGORIES,
    Histogram,
    MetricsRegistry,
    RankProfile,
    Span,
    SpanProfiler,
)
from repro.observability.telemetry import (
    FlightRecorder,
    FlightRing,
    Postmortem,
    TelemetryMonitor,
    TelemetryPusher,
    build_postmortem,
    merge_flight_rings,
    validate_telemetry_jsonl,
)

__all__ = [
    "SPAN_CATEGORIES",
    "FlightRecorder",
    "FlightRing",
    "Histogram",
    "MetricsRegistry",
    "Postmortem",
    "RankProfile",
    "RunProfile",
    "Span",
    "SpanProfiler",
    "TelemetryMonitor",
    "TelemetryPusher",
    "build_postmortem",
    "merge_flight_rings",
    "validate_telemetry_jsonl",
]
