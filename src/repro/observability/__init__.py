"""Measured-time observability for the process-parallel layer.

The span profiler and metrics registry (:mod:`.spans`) record where
wall-clock actually goes on a live mp run; :mod:`.profile` gathers the
per-rank snapshots into a :class:`RunProfile` with Chrome-trace,
metrics-JSON, and ASCII renderers.  Armed via
``CommConfig(profile=True)``; zero cost when off.  The
model-vs-measured join lives in :mod:`repro.analysis.attribution`.
"""

from repro.observability.profile import RunProfile, validate_chrome_trace
from repro.observability.spans import (
    SPAN_CATEGORIES,
    Histogram,
    MetricsRegistry,
    RankProfile,
    Span,
    SpanProfiler,
)

__all__ = [
    "SPAN_CATEGORIES",
    "Histogram",
    "MetricsRegistry",
    "RankProfile",
    "RunProfile",
    "Span",
    "SpanProfiler",
    "validate_chrome_trace",
]
