"""Always-on flight recorder, live telemetry streaming, and causal postmortems.

Three cooperating pieces, NCCL-flight-recorder style:

``FlightRecorder``
    A bounded, near-zero-overhead ring buffer of structured events kept by
    every rank *even when profiling is off*.  Each event is a plain tuple
    ``(seq, t, kind, op_id, phase, detail)`` where ``seq`` is a monotonically
    increasing per-rank counter (so dropped events are visible after the ring
    wraps), ``t`` is a ``perf_counter`` offset from the recorder's origin and
    ``op_id`` is the rank's collective sequence number.  Recording an event
    is one clock read plus one deque append; nothing on the payload path is
    touched, so armed runs stay bit-identical.

``TelemetryPusher`` / ``TelemetryMonitor``
    Out-of-band live telemetry: a daemon thread per rank periodically emits
    heartbeat samples (sweep progress, residual/rank trajectory, current
    phase, blocked-collective info, light metrics) over the existing control
    plane — the launcher result queue on the shm wire, the rendezvous report
    socket on the tcp wire.  The monitor aggregates latest-state per rank,
    flags stalls *before* ``CollectiveTimeoutError`` fires, renders the
    ``repro top`` console view and exports a JSONL event log.

``build_postmortem``
    On failure, all rank rings are merged into one causally-ordered global
    timeline using collective sequence numbers (with PR-9 vector clocks as a
    refinement when the race sanitizer is armed) and a per-rank
    last-known-state report that names the diverging rank and collective.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

__all__ = [
    "FlightRecorder",
    "FlightRing",
    "Postmortem",
    "TelemetryMonitor",
    "TelemetryPusher",
    "build_postmortem",
    "format_event",
    "merge_flight_rings",
    "validate_telemetry_jsonl",
]

# Known flight-recorder event kinds.  Unknown kinds are tolerated on read
# (forward compatibility) but everything the substrate emits is listed here.
EVENT_KINDS = frozenset(
    {
        "collective_begin",
        "collective_end",
        "post",
        "p2p_recv",
        "phase",
        "sweep",
        "checkpoint",
        "replicate",
        "recovery",
        "guard",
        "timeout",
        "error",
    }
)

# Merge order inside one collective sequence number: every rank's begin
# happens before any in-flight post, which happens before any rank's end,
# which happens before whatever the rank does next at the same op_id.
_STAGE = {"collective_begin": 0, "post": 1, "collective_end": 2}

TELEMETRY_SCHEMA_VERSION = 1

_RECORD_KINDS = frozenset({"run", "heartbeat", "stall", "final", "postmortem"})
_REQUIRED_FIELDS = {
    "run": ("size", "backend"),
    "heartbeat": ("rank", "op_id", "phase"),
    "stall": ("rank", "op", "op_id", "seconds"),
    "final": ("rank", "status"),
    "postmortem": ("verdict",),
}


def _fmt_detail(detail: Any) -> str:
    if detail == "" or detail is None:
        return ""
    if isinstance(detail, tuple) and len(detail) == 2 and isinstance(detail[0], str):
        return f"{detail[0]} p={detail[1]}"
    if isinstance(detail, dict):
        return " ".join(f"{k}={v}" for k, v in detail.items())
    return str(detail)[:80]


def format_event(event: tuple) -> str:
    """Render one ring event as a single human-readable line."""

    seq, t, kind, op_id, phase, detail = event
    parts = [f"#{seq}", f"+{t:.3f}s", f"op#{op_id}", kind]
    if phase:
        parts.append(f"phase={phase}")
    txt = _fmt_detail(detail)
    if txt:
        parts.append(txt)
    return " ".join(parts)


class FlightRecorder:
    """Bounded per-rank ring buffer of structured runtime events.

    Always on by default (``CommConfig.flight``); the only cost per event is
    one ``perf_counter`` read and one bounded-deque append.  The recorder is
    written from the rank's main thread and read (racily but safely) from
    the telemetry pusher thread; readers retry on concurrent mutation.
    """

    __slots__ = ("rank", "capacity", "wall_origin", "_origin", "_events", "seq")

    def __init__(self, rank: int, capacity: int = 256) -> None:
        self.rank = int(rank)
        self.capacity = max(8, int(capacity))
        self.wall_origin = time.time()
        self._origin = time.perf_counter()
        self._events: deque[tuple] = deque(maxlen=self.capacity)
        self.seq = 0

    def record(self, kind: str, op_id: int, phase: str, detail: Any = "") -> None:
        self.seq += 1
        self._events.append(
            (self.seq, time.perf_counter() - self._origin, kind, op_id, phase, detail)
        )

    def now(self) -> float:
        return time.perf_counter() - self._origin

    def last(self) -> tuple | None:
        try:
            return self._events[-1]
        except IndexError:
            return None

    def open_collective(self) -> tuple | None:
        """Return the begin event of an unmatched collective, if any.

        Safe to call from the pusher thread: a concurrent append can raise
        ``RuntimeError`` mid-iteration, in which case we retry once and give
        up (a missed sample is fine; the next heartbeat sees fresh state).
        """

        for _ in range(2):
            try:
                for ev in reversed(self._events):
                    if ev[2] == "collective_end":
                        return None
                    if ev[2] == "collective_begin":
                        return ev
                return None
            except RuntimeError:
                continue
        return None

    def snapshot(self, clock: Mapping[int, int] | None = None) -> "FlightRing":
        return FlightRing(
            rank=self.rank,
            wall_origin=self.wall_origin,
            capacity=self.capacity,
            seq=self.seq,
            events=list(self._events),
            clock=dict(clock) if clock else None,
        )


@dataclass
class FlightRing:
    """Picklable snapshot of one rank's flight recorder."""

    rank: int
    wall_origin: float
    capacity: int
    seq: int
    events: list
    clock: dict | None = None

    @property
    def dropped(self) -> int:
        return max(0, self.seq - len(self.events))

    def tail(self, n: int = 8) -> list[str]:
        return [format_event(ev) for ev in self.events[-n:]]

    def last_state(self) -> dict:
        """Summarize the rank's last known state from its ring."""

        state = {
            "rank": self.rank,
            "op_id": 0,
            "phase": "",
            "open_op": None,
            "last_kind": None,
            "t": 0.0,
        }
        if self.events:
            seq, t, kind, op_id, phase, detail = self.events[-1]
            state.update(op_id=op_id, phase=phase, last_kind=kind, t=t)
        for ev in reversed(self.events):
            if ev[2] == "collective_end":
                break
            if ev[2] == "collective_begin":
                detail = ev[5]
                state["open_op"] = detail[0] if isinstance(detail, tuple) else str(detail)
                state["op_id"] = ev[3]
                break
        return state


def merge_flight_rings(rings: Mapping[int, FlightRing]) -> list[dict]:
    """Merge per-rank rings into one causally-ordered global timeline.

    The collective sequence number is the causal backbone: every rank's
    ``collective_begin`` for op *k* precedes any transport post inside *k*,
    which precedes any ``collective_end`` for *k*, which precedes everything
    a rank does before entering *k+1*.  Wall time only breaks ties inside a
    causal stage, so clock skew between ranks cannot reorder the causally
    meaningful structure.
    """

    rows: list[dict] = []
    for rank in sorted(rings):
        ring = rings[rank]
        for seq, t, kind, op_id, phase, detail in ring.events:
            rows.append(
                {
                    "rank": ring.rank,
                    "seq": seq,
                    "t": t,
                    "wall": ring.wall_origin + t,
                    "kind": kind,
                    "op_id": op_id,
                    "phase": phase,
                    "detail": detail,
                }
            )
    rows.sort(
        key=lambda r: (r["op_id"], _STAGE.get(r["kind"], 3), r["wall"], r["rank"], r["seq"])
    )
    return rows


def _clock_dominated(a: Mapping[int, int], b: Mapping[int, int]) -> bool:
    """True when clock ``a`` happened strictly before clock ``b``."""

    keys = set(a) | set(b)
    le = all(a.get(k, 0) <= b.get(k, 0) for k in keys)
    lt = any(a.get(k, 0) < b.get(k, 0) for k in keys)
    return le and lt


def _causally_earliest(rings: Mapping[int, FlightRing]) -> int | None:
    """Rank whose final vector clock precedes every other rank's, if known."""

    clocked = {r: ring.clock for r, ring in rings.items() if ring.clock}
    if len(clocked) < 2:
        return None
    for r, clk in sorted(clocked.items()):
        if all(_clock_dominated(clk, other) for q, other in clocked.items() if q != r):
            return r
    return None


@dataclass
class Postmortem:
    """Merged causal timeline plus a diagnosis naming the diverging rank."""

    timeline: list[dict]
    last_states: dict[int, dict]
    verdict: str
    diverging: list[int]
    collective: str | None
    op_id: int | None
    completed: list[int] = field(default_factory=list)
    crashed: list[int] = field(default_factory=list)

    def lines(self) -> list[str]:
        """Short block suitable for embedding in a RankFailureError message."""

        out = [f"postmortem: {self.verdict}"]
        for rank in sorted(self.last_states):
            s = self.last_states[rank]
            if rank in self.completed:
                where = "completed"
            elif s["open_op"]:
                where = f"blocked in {s['open_op']} (op #{s['op_id']})"
            else:
                where = f"last event {s['last_kind'] or 'none'} (op #{s['op_id']})"
            phase = f" phase={s['phase']}" if s["phase"] else ""
            out.append(f"  rank {rank}: {where}{phase}")
        return out

    def render(self, max_events: int = 48) -> str:
        out = list(self.lines())
        shown = self.timeline[-max_events:]
        if len(self.timeline) > len(shown):
            out.append(
                f"global timeline (last {len(shown)} of {len(self.timeline)} events):"
            )
        else:
            out.append(f"global timeline ({len(shown)} events):")
        for row in shown:
            phase = f" phase={row['phase']}" if row["phase"] else ""
            txt = _fmt_detail(row["detail"])
            detail = f" {txt}" if txt else ""
            out.append(
                f"  op#{row['op_id']:<4d} r{row['rank']} {row['kind']}{phase}{detail}"
                f" (+{row['t']:.3f}s)"
            )
        return "\n".join(out)


def build_postmortem(
    rings: Mapping[int, FlightRing],
    completed: Iterable[int] = (),
    crashed: Iterable[int] = (),
) -> Postmortem:
    """Merge rank rings and diagnose which rank diverged at which collective.

    ``completed`` are ranks that returned normally; ``crashed`` are ranks
    whose *process* died (hard crash / injected crash), as opposed to ranks
    that merely reported an error.  The diagnosis prefers, in order: a
    crashed rank, ranks lagging behind the blocked frontier, mismatched
    collectives at the frontier, and ranks that exited while peers still
    wait.  Vector clocks (attached when ``race_detect`` is armed) refine
    the verdict with the causally-earliest stop.
    """

    completed = sorted(set(completed) & set(rings))
    crashed = sorted(set(crashed) & set(rings))
    timeline = merge_flight_rings(rings)
    states = {r: rings[r].last_state() for r in rings}

    verdict = "no flight-recorder events collected"
    diverging: list[int] = []
    collective: str | None = None
    op_id: int | None = None

    blocked = {
        r: s for r, s in states.items() if s["open_op"] is not None and r not in completed
    }
    if crashed:
        diverging = list(crashed)
        head = states[crashed[0]]
        collective = head["open_op"]
        op_id = head["op_id"]
        if collective:
            verdict = (
                f"rank {crashed[0]} crashed inside {collective} (op #{op_id})"
            )
        else:
            where = f" after {head['last_kind']}" if head["last_kind"] else ""
            verdict = f"rank {crashed[0]} crashed between collectives (op #{op_id}){where}"
        others = sorted(set(blocked) - set(crashed))
        if others:
            verdict += f"; ranks {others} still blocked"
    elif blocked:
        frontier = max(s["op_id"] for s in blocked.values())
        waiters = {r: s for r, s in blocked.items() if s["op_id"] == frontier}
        ops = sorted({s["open_op"] for s in waiters.values()})
        laggards = sorted(
            r
            for r, s in states.items()
            if s["op_id"] < frontier and r not in completed
        )
        op_id = frontier
        if laggards:
            diverging = laggards
            collective = ops[0]
            verdict = (
                f"rank(s) {laggards} never reached {collective} (op #{frontier}); "
                f"ranks {sorted(waiters)} blocked waiting"
            )
        elif len(ops) > 1:
            by_op: dict[str, list[int]] = {}
            for r, s in sorted(waiters.items()):
                by_op.setdefault(s["open_op"], []).append(r)
            minority_op = min(by_op, key=lambda o: (len(by_op[o]), o))
            diverging = by_op[minority_op]
            collective = minority_op
            verdict = (
                f"mismatched collectives at op #{frontier}: "
                + ", ".join(f"{o} on ranks {rs}" for o, rs in sorted(by_op.items()))
            )
        elif completed:
            diverging = list(completed)
            collective = ops[0]
            verdict = (
                f"rank(s) {completed} completed while ranks {sorted(waiters)} "
                f"still blocked in {collective} (op #{frontier})"
            )
        else:
            collective = ops[0]
            verdict = (
                f"all ranks blocked in {collective} (op #{frontier}); "
                "no diverging rank in recorded window"
            )
    elif states:
        verdict = "no blocked collectives recorded"

    earliest = _causally_earliest(rings)
    if earliest is not None:
        verdict += f"; causally earliest stop: rank {earliest} (vector clocks)"

    return Postmortem(
        timeline=timeline,
        last_states=states,
        verdict=verdict,
        diverging=diverging,
        collective=collective,
        op_id=op_id,
        completed=completed,
        crashed=crashed,
    )


class TelemetryPusher(threading.Thread):
    """Daemon thread that periodically emits a rank's telemetry sample.

    ``sample`` is a zero-argument callable returning a picklable dict (the
    comm's ``telemetry_sample``); ``emit`` ships it over whatever control
    plane the launcher provided.  Emit failures stop the pusher silently —
    telemetry must never take a rank down.
    """

    def __init__(
        self,
        sample: Callable[[], dict],
        emit: Callable[[dict], None],
        interval: float,
    ) -> None:
        super().__init__(name="telemetry-pusher", daemon=True)
        self._sample = sample
        self._emit = emit
        self._interval = max(0.05, float(interval))
        self._halt = threading.Event()

    def run(self) -> None:
        while True:
            try:
                self._emit(self._sample())
            except Exception:
                return
            if self._halt.wait(self._interval):
                return

    def stop(self, timeout: float = 2.0) -> None:
        self._halt.set()
        self.join(timeout=timeout)


class TelemetryMonitor:
    """Launcher-side aggregator behind ``repro top`` and the JSONL log.

    Thread-safe: samples arrive from the launcher's drain loop while the
    console renderer reads.  Stalls are flagged when a heartbeat shows a
    collective open longer than ``stall_after`` seconds — deliberately far
    below ``CommConfig.collective_timeout`` so operators see the hang while
    it is still live.
    """

    def __init__(self, *, stall_after: float = 5.0, max_events: int = 20000) -> None:
        self.stall_after = float(stall_after)
        self._lock = threading.Lock()
        self.latest: dict[int, dict] = {}
        self.done: dict[int, str] = {}
        self.events: deque[dict] = deque(maxlen=max_events)
        self.size: int | None = None
        self.backend: str | None = None
        self.started = time.time()
        self._flagged: dict[int, int] = {}

    def _log(self, kind: str, **fields: Any) -> None:
        rec = {"v": TELEMETRY_SCHEMA_VERSION, "ts": time.time(), "kind": kind}
        rec.update(fields)
        self.events.append(rec)

    def on_start(self, size: int, backend: str) -> None:
        with self._lock:
            self.size = size
            self.backend = backend
            self.started = time.time()
            self._log("run", size=size, backend=backend)

    def on_sample(self, rank: int, sample: dict) -> None:
        with self._lock:
            self.latest[rank] = sample
            self._log(
                "heartbeat",
                rank=rank,
                op_id=sample.get("op_id", 0),
                phase=sample.get("phase", ""),
                progress=sample.get("progress", {}),
                blocked=sample.get("blocked"),
                flight_seq=sample.get("flight_seq"),
                metrics=sample.get("metrics"),
            )
            blocked = sample.get("blocked")
            if blocked and blocked.get("seconds", 0.0) >= self.stall_after:
                if self._flagged.get(rank) != blocked.get("op_id"):
                    self._flagged[rank] = blocked.get("op_id")
                    self._log(
                        "stall",
                        rank=rank,
                        op=blocked.get("op", "?"),
                        op_id=blocked.get("op_id", 0),
                        seconds=round(float(blocked.get("seconds", 0.0)), 3),
                    )
            else:
                self._flagged.pop(rank, None)

    def on_done(self, rank: int, status: str) -> None:
        with self._lock:
            self.done[rank] = status
            self._flagged.pop(rank, None)
            self._log("final", rank=rank, status=status)

    def on_postmortem(self, verdict: str, diverging: Iterable[int] = ()) -> None:
        with self._lock:
            self._log("postmortem", verdict=verdict, diverging=sorted(diverging))

    def stalls(self) -> list[dict]:
        with self._lock:
            return [e for e in self.events if e["kind"] == "stall"]

    def _progress_text(self, sample: dict) -> str:
        prog = sample.get("progress") or {}
        bits = []
        it, total = prog.get("iteration"), prog.get("total")
        if it is not None:
            bits.append(f"sweep {it}/{total}" if total else f"sweep {it}")
        if prog.get("mode") is not None:
            bits.append(f"mode {prog['mode']}")
        if prog.get("residual") is not None:
            bits.append(f"res={prog['residual']:.3e}")
        if prog.get("ranks") is not None:
            bits.append(f"ranks={prog['ranks']}")
        for k, v in prog.items():
            if k not in ("iteration", "total", "mode", "residual", "ranks"):
                bits.append(f"{k}={v}")
        return " ".join(bits) or "-"

    def render(self) -> str:
        """ASCII console view for ``repro top``."""

        with self._lock:
            now = time.time()
            size = self.size if self.size is not None else len(self.latest)
            head = (
                f"repro top — {size} ranks, backend={self.backend or '?'}, "
                f"elapsed {now - self.started:.1f}s"
            )
            rows = [head, f"{'rank':<5} {'state':<12} {'phase':<12} {'op#':>6}  "
                          f"{'progress':<32} last beat"]
            ranks = sorted(set(self.latest) | set(self.done) | set(range(size or 0)))
            for rank in ranks:
                sample = self.latest.get(rank)
                if rank in self.done:
                    state = f"done({self.done[rank]})"
                elif sample is None:
                    state = "starting"
                else:
                    blocked = sample.get("blocked")
                    if blocked and blocked.get("seconds", 0.0) >= self.stall_after:
                        state = "STALLED"
                    elif blocked:
                        state = "blocked"
                    else:
                        state = "running"
                phase = (sample or {}).get("phase") or "-"
                op = (sample or {}).get("op_id", 0)
                prog = self._progress_text(sample or {})
                beat = f"{now - sample['ts']:.1f}s ago" if sample and "ts" in sample else "-"
                extra = ""
                sample_blocked = (sample or {}).get("blocked")
                if sample_blocked and rank not in self.done:
                    extra = (
                        f"  ({sample_blocked.get('seconds', 0.0):.1f}s in "
                        f"{sample_blocked.get('op', '?')})"
                    )
                rows.append(
                    f"{rank:<5} {state:<12} {phase:<12} {op:>6}  {prog:<32} {beat}{extra}"
                )
            stalls = [e for e in self.events if e["kind"] == "stall"]
            if stalls:
                rows.append("recent stalls:")
                for e in stalls[-4:]:
                    rows.append(
                        f"  rank {e['rank']} stalled {e['seconds']:.1f}s in "
                        f"{e['op']} (op #{e['op_id']})"
                    )
            return "\n".join(rows)

    def jsonl(self) -> list[str]:
        with self._lock:
            return [json.dumps(e, sort_keys=True, default=str) for e in self.events]

    def write_jsonl(self, path: str) -> None:
        lines = self.jsonl()
        with open(path, "w", encoding="utf-8") as fh:
            for line in lines:
                fh.write(line + "\n")


def validate_telemetry_jsonl(lines: Iterable[str]) -> dict[str, int]:
    """Validate a telemetry JSONL export; return a per-kind record count.

    Raises ``ValueError`` naming the first offending line on malformed JSON,
    wrong schema version, unknown record kind, or missing required fields.
    Used by the CI telemetry smoke job and the test suite.
    """

    counts: dict[str, int] = {}
    n = 0
    for n, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ValueError(f"line {n}: invalid JSON: {exc}") from exc
        if not isinstance(rec, dict):
            raise ValueError(f"line {n}: expected object, got {type(rec).__name__}")
        if rec.get("v") != TELEMETRY_SCHEMA_VERSION:
            raise ValueError(
                f"line {n}: schema version {rec.get('v')!r} != {TELEMETRY_SCHEMA_VERSION}"
            )
        kind = rec.get("kind")
        if kind not in _RECORD_KINDS:
            raise ValueError(f"line {n}: unknown record kind {kind!r}")
        if "ts" not in rec:
            raise ValueError(f"line {n}: missing ts")
        for fld in _REQUIRED_FIELDS[kind]:
            if fld not in rec:
                raise ValueError(f"line {n}: {kind} record missing {fld!r}")
        counts[kind] = counts.get(kind, 0) + 1
    if n == 0:
        raise ValueError("empty telemetry log")
    return counts
