"""Rank launcher for socket-connected SPMD runs.

:func:`repro.vmpi.mp_comm.run_spmd` forks ranks from one parent
process, which is the right tool on one host.  This module is the
other half of ROADMAP item 1: spawn ranks as *independent processes*
that find each other over TCP, in the style of hydroFlow's
``produtil.mpi_impl`` runner layer — detect what launchers exist on
the machine, build the per-rank command line, and plumb a small env
contract so the same worker entry point works whether ranks are
started by this module (loopback subprocesses), by ``ssh`` on other
hosts, or by a site scheduler.

The env contract (everything a rank needs to join a job):

``REPRO_RANK``
    This rank's index, ``0 .. world_size - 1``.
``REPRO_WORLD_SIZE``
    Number of ranks in the job.
``REPRO_RENDEZVOUS``
    ``host:port`` of the launcher's rendezvous listener.  Ranks
    announce their own mesh listener there, receive the full address
    map (:func:`repro.vmpi.transport.serve_rendezvous`), and later
    post their result to the same address.
``REPRO_BACKEND``
    Transport backend (currently ``"tcp"``; the fork path of
    ``run_spmd`` covers ``"shm"``).
``REPRO_PROGRAM``
    Path to the pickled ``(fn, args, config)`` job file.  Only
    meaningful on a shared filesystem (loopback now; for multi-host
    the job file must be shipped first — the contract deliberately
    keeps that concern out of the worker).

Entry point: ``python -m repro.distributed.launch`` reads the
contract, builds a :class:`~repro.vmpi.transport.TcpSocketTransport`
plus :class:`~repro.vmpi.mp_comm.ProcessComm`, runs the program, and
reports ``("result", rank, status, payload)`` back over a fresh
connection to the rendezvous address.
"""

from __future__ import annotations

import os
import pickle
import shutil
import socket
import subprocess
import sys
import tempfile
import time
import traceback as traceback_mod
from collections.abc import Callable, Sequence

from dataclasses import replace

from repro.vmpi.mp_comm import (
    CommConfig,
    ProcessComm,
    RankFailureError,
    TcpSocketTransport,
    _flight_snapshot,
)
from repro.vmpi.transport import (
    CollectiveTimeoutError,
    TransportClosedError,
    WorldRevokedError,
    _sock_recv_obj,
    _sock_send_obj,
    open_rendezvous_listener,
    serve_rendezvous,
)

__all__ = [
    "build_rank_command",
    "detect_runners",
    "launch_spmd",
]

#: Environment variable names of the rank contract.
ENV_RANK = "REPRO_RANK"
ENV_WORLD_SIZE = "REPRO_WORLD_SIZE"
ENV_RENDEZVOUS = "REPRO_RENDEZVOUS"
ENV_BACKEND = "REPRO_BACKEND"
ENV_PROGRAM = "REPRO_PROGRAM"


def detect_runners() -> list[str]:
    """Rank-spawn mechanisms available on this machine, best first.

    ``"fork"`` (always: ``run_spmd``'s in-process fork) and
    ``"loopback"`` (always: ``sys.executable`` subprocesses on
    127.0.0.1, this module) are unconditional; ``"ssh"`` and
    ``"mpiexec"`` are reported when the binaries exist — the env
    contract is what they would plumb, but no remote spawn is wired
    up yet.
    """
    runners = ["fork", "loopback"]
    for tool in ("ssh", "mpiexec"):
        if shutil.which(tool):
            runners.append(tool)
    return runners


def _src_root() -> str:
    """The directory that must be on ``PYTHONPATH`` for ``import
    repro`` to work in a spawned rank (the parent of the package)."""
    import repro

    return os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


def build_rank_command(
    rank: int,
    world_size: int,
    rendezvous: tuple[str, int],
    program_path: str,
    *,
    backend: str = "tcp",
    python: str | None = None,
    extra_paths: Sequence[str] = (),
) -> tuple[list[str], dict[str, str]]:
    """The ``(argv, env)`` that starts one rank of a job.

    ``env`` contains only the contract variables (plus ``PYTHONPATH``
    with the package root and any ``extra_paths`` prepended); the
    caller merges it over whatever base environment the spawn
    mechanism provides — exactly what an ``ssh`` or scheduler
    integration needs to template.
    """
    argv = [python or sys.executable, "-m", "repro.distributed.launch"]
    parts = [_src_root(), *extra_paths]
    existing = os.environ.get("PYTHONPATH", "")
    if existing:
        parts.append(existing)
    path = os.pathsep.join(dict.fromkeys(parts))
    env = {
        ENV_RANK: str(rank),
        ENV_WORLD_SIZE: str(world_size),
        ENV_RENDEZVOUS: f"{rendezvous[0]}:{rendezvous[1]}",
        ENV_BACKEND: backend,
        ENV_PROGRAM: program_path,
        "PYTHONPATH": path,
    }
    return argv, env


def launch_spmd(
    fn: Callable[..., object],
    size: int,
    *args: object,
    config: CommConfig | None = None,
    runner: str = "loopback",
    timeout: float = 120.0,
    host: str = "127.0.0.1",
    monitor: object | None = None,
) -> list[object]:
    """Run ``fn(comm, *args)`` on ``size`` socket-connected processes.

    The subprocess counterpart of
    :func:`~repro.vmpi.mp_comm.run_spmd`: ranks are spawned as fresh
    ``python -m repro.distributed.launch`` processes (no inherited
    address space, no fork), mesh up over TCP through this launcher's
    rendezvous listener, and post results back over the same listener.
    Returns each rank's return value in rank order; raises
    :class:`~repro.vmpi.mp_comm.RankFailureError` if any rank failed.

    ``monitor`` mirrors ``run_spmd``'s parameter: ranks push periodic
    telemetry heartbeats over fresh rendezvous connections (out of
    band — never on the collective wire), routed to the monitor from
    the launcher's drain loop, and flight rings collected on failure
    are merged into a causal postmortem attached to the error.
    """
    if size < 1:
        raise ValueError("size must be positive")
    if runner != "loopback":
        known = detect_runners()
        if runner not in known:
            raise ValueError(
                f"unknown runner {runner!r} (detected: {known})"
            )
        raise NotImplementedError(
            f"runner {runner!r}: only 'loopback' spawning is wired up; "
            f"'fork' is run_spmd's job, and remote runners need a "
            f"job-file shipping step (the env contract is ready for "
            f"them)"
        )
    cfg = config or CommConfig()
    if monitor is not None and cfg.telemetry_interval <= 0:
        cfg = replace(cfg, telemetry_interval=0.5)
    if monitor is not None:
        monitor.on_start(size, "tcp")
    listener = open_rendezvous_listener(host)
    rendezvous = listener.getsockname()[:2]
    procs: list[subprocess.Popen] = []
    program_path = None
    results: dict[int, object] = {}
    errors: dict[int, dict] = {}
    recoveries: dict[int, dict] = {}
    flights: dict[int, object] = {}
    try:
        fd, program_path = tempfile.mkstemp(
            prefix="repro-job-", suffix=".pkl"
        )
        with os.fdopen(fd, "wb") as f:
            pickle.dump((fn, args, cfg), f)
        # The pickled program references fn by module name: make its
        # defining module importable in the spawned rank too (the
        # package root alone covers repro-internal programs).
        extra_paths = []
        mod = sys.modules.get(getattr(fn, "__module__", ""), None)
        mod_file = getattr(mod, "__file__", None)
        if mod_file:
            extra_paths.append(os.path.dirname(os.path.abspath(mod_file)))
        for rank in range(size):
            argv, env = build_rank_command(
                rank, size, rendezvous, program_path,
                extra_paths=extra_paths,
            )
            procs.append(
                subprocess.Popen(argv, env={**os.environ, **env})
            )
        if size > 1:
            serve_rendezvous(listener, size, cfg.tcp_connect_timeout)
        deadline = time.monotonic() + timeout
        listener.settimeout(0.25)
        while len(results) + len(errors) + len(recoveries) < size:
            if time.monotonic() >= deadline:
                break
            try:
                conn, _ = listener.accept()
            except socket.timeout:
                # Liveness: a rank that died without reporting will
                # never connect — don't wait out the full timeout.
                if any(
                    p.poll() is not None and r not in results
                    and r not in errors and r not in recoveries
                    for r, p in enumerate(procs)
                ):
                    time.sleep(0.5)  # drain stragglers' reports
                    _collect_pending(
                        listener, results, errors, recoveries,
                        monitor=monitor, flights=flights,
                    )
                    break
                continue
            _read_report(
                conn, results, errors, recoveries,
                monitor=monitor, flights=flights,
            )
    finally:
        listener.close()
        for p in procs:
            if p.poll() is None:
                p.terminate()
        for p in procs:
            try:
                p.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover
                p.kill()
        if program_path is not None:
            try:
                os.unlink(program_path)
            except OSError:  # pragma: no cover - already gone
                pass
    if len(results) < size:
        failed = sorted(
            r for r in range(size) if r not in results
        )
        # Failure reports embed the rank's ring; fold them in with any
        # rings shipped out of band so the postmortem sees every rank
        # that managed to report at all.
        for src in (errors, recoveries):
            for r, rep in src.items():
                if rep.get("flight") is not None:
                    flights[r] = rep["flight"]
        postmortem = None
        if flights:
            from repro.observability.telemetry import build_postmortem

            # Ranks that died without posting any report (process
            # exit, SIGKILL) are the launched-mode "crashed" set.
            crashed = {
                r for r in failed
                if r not in errors and r not in recoveries
            }
            postmortem = build_postmortem(
                flights, completed=set(results), crashed=crashed,
            )
            if monitor is not None:
                monitor.on_postmortem(
                    postmortem.verdict, postmortem.diverging
                )
        lines = [
            f"launched SPMD run failed: ranks {failed} did not succeed, "
            f"{sorted(results)} succeeded"
        ]
        for r in failed:
            if r in recoveries:
                rep = recoveries[r]
                lines.append(
                    f"rank {r} survived and entered recovery "
                    f"(agreed failed set {sorted(rep.get('failed', ()))}, "
                    f"replica at iteration {rep.get('iteration')})"
                )
            elif r in errors:
                rep = errors[r]
                lines.append(f"rank {r} failed: {rep.get('error')}")
                ring = flights.get(r)
                if ring is not None and getattr(ring, "events", None):
                    ftail = ring.tail()
                    lines.append(
                        f"rank {r} flight recorder "
                        f"(last {len(ftail)} of {ring.seq} events):"
                    )
                    lines.extend(f"  {t}" for t in ftail)
                tb = rep.get("traceback", "")
                if tb:
                    lines.append(f"rank {r} remote traceback:")
                    lines.extend(
                        f"  {t}" for t in tb.rstrip().splitlines()
                    )
            else:
                code = procs[r].poll() if r < len(procs) else None
                lines.append(
                    f"rank {r} posted no result (exitcode {code})"
                )
        if postmortem is not None:
            lines.extend(postmortem.lines())
        raise RankFailureError(
            "\n".join(lines),
            failed=sorted(set(failed) - set(recoveries)),
            succeeded=sorted(results),
            exitcodes={
                r: procs[r].poll()
                for r in failed
                if r < len(procs) and procs[r].poll() is not None
            },
            recovery_reports=recoveries,
            flight_records=flights,
            postmortem=postmortem,
        )
    return [results[r] for r in range(size)]


def _read_report(
    conn, results: dict, errors: dict, recoveries: dict | None = None,
    monitor: object | None = None, flights: dict | None = None,
) -> None:
    try:
        with conn:
            conn.settimeout(5.0)
            msg = _sock_recv_obj(conn)
    except (OSError, CollectiveTimeoutError, pickle.PickleError):
        return
    if isinstance(msg, tuple) and len(msg) == 3:
        # Out-of-band frames: telemetry heartbeats and pre-result
        # flight rings, one fresh connection each.  Neither counts
        # toward run completion.
        kind, rank, payload = msg
        if kind == "telemetry" and monitor is not None:
            try:
                monitor.on_sample(int(rank), payload)
            except Exception:  # pragma: no cover - monitor is advisory
                pass
        elif kind == "flight" and flights is not None:
            flights[int(rank)] = payload
        return
    if not (isinstance(msg, tuple) and len(msg) == 4
            and msg[0] == "result"):
        return
    _, rank, status, payload = msg
    if status == "ok":
        results[int(rank)] = payload
    elif status == "recovery" and recoveries is not None:
        recoveries[int(rank)] = payload
    else:
        errors[int(rank)] = payload
    if monitor is not None:
        try:
            monitor.on_done(int(rank), status)
        except Exception:  # pragma: no cover - monitor is advisory
            pass


def _collect_pending(
    listener, results: dict, errors: dict, recoveries: dict | None = None,
    monitor: object | None = None, flights: dict | None = None,
) -> None:
    """Drain result connections already queued on the listener."""
    while True:
        try:
            conn, _ = listener.accept()
        except (socket.timeout, OSError):
            return
        _read_report(conn, results, errors, recoveries,
                     monitor=monitor, flights=flights)


# ---------------------------------------------------------------------------
# worker entry point (python -m repro.distributed.launch)
# ---------------------------------------------------------------------------


def _smoke_program(comm: ProcessComm) -> float:
    """Tiny conformance program for launcher smoke tests
    (``repro run --backend tcp --smoke``): one allreduce, one
    barrier, returns the reduced value."""
    import numpy as np

    total = comm.allreduce(np.array([float(comm.rank + 1)]))
    comm.barrier()
    return float(total[0])


def _post_frame(rendezvous: tuple[str, int], frame: tuple) -> None:
    """Ship one frame to the rendezvous listener over a fresh
    connection (the same connect-send-close discipline as result
    reports, so telemetry never holds a socket the launcher must
    babysit)."""
    try:
        conn = socket.create_connection(rendezvous, timeout=10.0)
    except OSError:  # pragma: no cover - launcher already gone
        return
    try:
        _sock_send_obj(conn, frame)
    finally:
        conn.close()


def _report(rendezvous: tuple[str, int], rank: int, status: str,
            payload: object) -> None:
    _post_frame(rendezvous, ("result", rank, status, payload))


def _worker_main() -> int:
    rank = int(os.environ[ENV_RANK])
    size = int(os.environ[ENV_WORLD_SIZE])
    host, _, port = os.environ[ENV_RENDEZVOUS].rpartition(":")
    rendezvous = (host, int(port))
    backend = os.environ.get(ENV_BACKEND, "tcp")
    if backend != "tcp":
        print(
            f"repro.distributed.launch: unsupported backend "
            f"{backend!r} (spawned ranks are socket-connected)",
            file=sys.stderr,
        )
        return 2
    with open(os.environ[ENV_PROGRAM], "rb") as f:
        fn, args, cfg = pickle.load(f)
    try:
        channel = TcpSocketTransport(
            rank, size, cfg, rendezvous if size > 1 else None
        )
    except Exception as exc:
        _report(rendezvous, rank, "error", {
            "error": repr(exc),
            "traceback": traceback_mod.format_exc(),
        })
        return 1
    comm = ProcessComm(rank, size, channel, cfg)
    pusher = None
    if cfg.telemetry_interval > 0:
        from repro.observability.telemetry import TelemetryPusher

        pusher = TelemetryPusher(
            comm.telemetry_sample,
            lambda sample: _post_frame(
                rendezvous, ("telemetry", rank, sample)
            ),
            cfg.telemetry_interval,
        )
        pusher.start()
    try:
        out = fn(comm, *args)
        comm.verify_shutdown()
        # Ship the ring before the result so this rank's view is
        # available for a postmortem even when peers later hang.
        ring = _flight_snapshot(comm)
        if ring is not None:
            _post_frame(rendezvous, ("flight", rank, ring))
        _report(rendezvous, rank, "ok", out)
        return 0
    except (WorldRevokedError, TransportClosedError) as exc:
        mgr = comm.recovery_mgr
        if mgr is not None:
            try:
                _report(rendezvous, rank, "recovery", mgr.on_failure(exc))
                return 1
            except Exception:  # pragma: no cover - agreement broke
                pass
        _report(rendezvous, rank, "error", {
            "error": repr(exc),
            "traceback": traceback_mod.format_exc(),
            "trace_tail": comm.trace.tail(),
            "flight": _flight_snapshot(comm),
        })
        return 1
    except Exception as exc:
        _report(rendezvous, rank, "error", {
            "error": repr(exc),
            "traceback": traceback_mod.format_exc(),
            "trace_tail": comm.trace.tail(),
            "flight": _flight_snapshot(comm),
        })
        return 1
    finally:
        if pusher is not None:
            pusher.stop()
        try:
            channel.close()
        except Exception:  # pragma: no cover - cleanup best-effort
            pass


if __name__ == "__main__":
    sys.exit(_worker_main())
