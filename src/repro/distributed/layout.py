"""Block distribution of a dense tensor over a processor grid.

TuckerMPI block-distributes: grid coordinate ``c_j`` along mode ``j``
owns the ``c_j``-th of ``P_j`` near-equal slabs of that mode (NumPy
``array_split`` semantics, so uneven divisions are allowed and the
*maximum* block size — which governs load-imbalanced cost — can exceed
``n_j / P_j``).
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.vmpi.grid import ProcessorGrid

__all__ = ["BlockLayout"]


def _split_bounds(n: int, parts: int) -> list[tuple[int, int]]:
    """Start/stop of each of ``parts`` near-equal slabs of ``range(n)``."""
    sizes = [len(chunk) for chunk in np.array_split(np.arange(n), parts)]
    bounds, start = [], 0
    for s in sizes:
        bounds.append((start, start + s))
        start += s
    return bounds


class BlockLayout:
    """Maps grid coordinates to the sub-block each rank owns."""

    def __init__(self, shape: Sequence[int], grid: ProcessorGrid):
        self.shape = tuple(int(s) for s in shape)
        self.grid = grid
        if len(self.shape) != grid.ndim:
            raise ValueError(
                f"{len(self.shape)}-way tensor on a {grid.ndim}-way grid"
            )
        self.bounds = [
            _split_bounds(n, p) for n, p in zip(self.shape, grid.dims)
        ]

    def local_slices(self, coords: Sequence[int]) -> tuple[slice, ...]:
        """Slices of the global tensor owned by grid ``coords``."""
        coords = tuple(int(c) for c in coords)
        if len(coords) != len(self.shape):
            raise ValueError("coordinate order mismatch")
        return tuple(
            slice(*self.bounds[j][c]) for j, c in enumerate(coords)
        )

    def local_shape(self, coords: Sequence[int]) -> tuple[int, ...]:
        """Block extents owned by grid ``coords``."""
        return tuple(
            self.bounds[j][c][1] - self.bounds[j][c][0]
            for j, c in enumerate(coords)
        )

    def local_size(self, coords: Sequence[int]) -> int:
        """Entry count of the block owned by grid ``coords``."""
        return math.prod(self.local_shape(coords))

    def max_local_shape(self) -> tuple[int, ...]:
        """Largest block extent per mode (load-imbalance bound)."""
        return tuple(
            max(b - a for a, b in mode_bounds)
            for mode_bounds in self.bounds
        )

    def max_local_size(self) -> int:
        """Largest per-rank block size (drives per-rank-max costs)."""
        return math.prod(self.max_local_shape())

    def mode_share(self, mode: int) -> int:
        """Largest slab extent of ``mode`` (``ceil(n_j / P_j)``-ish)."""
        return max(b - a for a, b in self.bounds[mode])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BlockLayout(shape={self.shape}, grid={self.grid.dims})"
