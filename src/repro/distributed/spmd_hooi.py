"""Genuinely SPMD HOOI: all four variants on per-rank blocks.

Extends :mod:`repro.distributed.spmd` with the HOOI-side kernels —
block-parallel subspace iteration (the nonsymmetric contraction of
§3.4, implemented exactly as the paper describes: redistribute both
operands to full-mode layout inside the mode sub-communicator, form
local partial products, allreduce, replicated QRCP) — and drives the
shared dimension-tree traversal with an engine whose ``tensor`` state
is a ``(blocks, layout)`` pair.  The test suite checks every variant
against the sequential implementation.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.dimension_tree import hooi_iteration_dt
from repro.core.hooi import HOOIOptions
from repro.core.tucker import TuckerTensor
from repro.distributed.layout import BlockLayout
from repro.distributed.spmd import (
    gather_tensor,
    scatter_tensor,
    spmd_gram,
    spmd_multi_ttm,
    spmd_ttm,
    subcomm_apply,
)
from repro.linalg.evd import gram_evd
from repro.linalg.qrcp import qrcp
from repro.tensor.ops import contract_all_but_mode, ttm
from repro.tensor.random import random_orthonormal
from repro.tensor.validation import check_ranks
from repro.vmpi.collectives import allgather_blocks, allreduce_blocks
from repro.vmpi.grid import ProcessorGrid

__all__ = ["spmd_subspace_llsv", "SPMDTreeEngine", "spmd_hooi"]

State = tuple[list[np.ndarray], BlockLayout]


def spmd_subspace_llsv(
    blocks: Sequence[np.ndarray],
    layout: BlockLayout,
    mode: int,
    u_prev: np.ndarray,
    rank: int,
    *,
    n_iters: int = 1,
) -> np.ndarray:
    """One (or more) subspace-iteration sweeps on real blocks (Alg. 5).

    Line 2 (``G = U^T Y``) is a block-parallel TTM; line 3
    (``Z = Y_(j) G_(j)^T``) redistributes both tensors to a full-mode
    layout within the mode sub-communicator, forms local partial
    ``n_j x width`` products, and allreduces; line 4 is a replicated
    QRCP (every rank computes the same factor, like TuckerMPI's EVD).
    """
    grid = layout.grid
    n = layout.shape[mode]
    width = u_prev.shape[1]
    if rank > width:
        raise ValueError(f"rank {rank} exceeds subspace width {width}")

    q = u_prev
    for _ in range(n_iters):
        g_blocks, g_layout = spmd_ttm(blocks, layout, q, mode)

        y_full = subcomm_apply(
            blocks, grid, mode, lambda bs: allgather_blocks(bs, axis=mode)
        )
        g_full = subcomm_apply(
            g_blocks, grid, mode,
            lambda bs: allgather_blocks(bs, axis=mode),
        )
        partials = []
        for r, coords in grid.iter_ranks():
            if coords[mode] != 0:
                partials.append(
                    np.zeros((n, width), dtype=blocks[0].dtype)
                )
                continue
            partials.append(
                contract_all_but_mode(y_full[r], g_full[r], mode)
            )
        z = allreduce_blocks(partials)[0]

        q, _, _ = qrcp(z)
    return np.ascontiguousarray(q[:, :rank])


def spmd_gram_evd_llsv(
    blocks: Sequence[np.ndarray],
    layout: BlockLayout,
    mode: int,
    rank: int,
) -> np.ndarray:
    """Rank-specified Gram+EVD LLSV on real blocks (replicated EVD)."""
    g = spmd_gram(blocks, layout, mode)
    _, vecs = gram_evd(g)
    return np.ascontiguousarray(vecs[:, :rank])


class SPMDTreeEngine:
    """Dimension-tree engine whose state is ``(blocks, layout)``."""

    def __init__(
        self,
        grid: ProcessorGrid,
        factors: list[np.ndarray],
        ranks: Sequence[int],
        *,
        subspace: bool = True,
        n_subspace_iters: int = 1,
    ) -> None:
        self.grid = grid
        self.factors = factors
        self.ranks = tuple(int(r) for r in ranks)
        self.subspace = subspace
        self.n_subspace_iters = n_subspace_iters
        self.last_mode = len(factors) - 1
        self.core_state: State | None = None

    def contract(self, state: State, modes: Sequence[int]) -> State:
        """Block-parallel multi-TTM over the listed modes, in order."""
        blocks, layout = state
        for m in modes:
            blocks, layout = spmd_ttm(blocks, layout, self.factors[m], m)
        return blocks, layout

    def update_factor(self, state: State, mode: int) -> None:
        """Block-parallel LLSV update of ``factors[mode]``."""
        blocks, layout = state
        if self.subspace:
            self.factors[mode] = spmd_subspace_llsv(
                blocks,
                layout,
                mode,
                self.factors[mode],
                self.ranks[mode],
                n_iters=self.n_subspace_iters,
            )
        else:
            self.factors[mode] = spmd_gram_evd_llsv(
                blocks, layout, mode, self.ranks[mode]
            )

    def form_core(self, state: State, mode: int) -> None:
        """Final block-parallel TTM producing the core blocks."""
        blocks, layout = state
        self.core_state = spmd_ttm(blocks, layout, self.factors[mode], mode)


def spmd_hooi(
    x: np.ndarray,
    ranks: Sequence[int],
    grid_dims: Sequence[int],
    options: HOOIOptions | None = None,
) -> TuckerTensor:
    """Rank-specified HOOI executed end-to-end on per-rank blocks.

    Ground truth for :func:`repro.distributed.hooi.dist_hooi`: supports
    all four variants through the same :class:`HOOIOptions` (dimension
    tree on/off x Gram-EVD / subspace iteration).
    """
    from repro.linalg.llsv import LLSVMethod

    options = options or HOOIOptions()
    ranks = check_ranks(x.shape, ranks)
    grid = ProcessorGrid(grid_dims)
    if grid.ndim != x.ndim:
        raise ValueError(f"{x.ndim}-way tensor needs a {x.ndim}-way grid")
    subspace = options.llsv_method is LLSVMethod.SUBSPACE

    rng = np.random.default_rng(options.seed)
    factors: list[np.ndarray] = [
        random_orthonormal(n, r, seed=rng, dtype=x.dtype)
        for n, r in zip(x.shape, ranks)
    ]
    blocks, layout = scatter_tensor(x, grid)
    core: np.ndarray | None = None

    for _ in range(options.max_iters):
        if options.use_dimension_tree:
            engine = SPMDTreeEngine(
                grid,
                factors,
                ranks,
                subspace=subspace,
                n_subspace_iters=options.n_subspace_iters,
            )
            hooi_iteration_dt((blocks, layout), engine)
            factors = engine.factors
            assert engine.core_state is not None
            core = gather_tensor(*engine.core_state)
        else:
            d = x.ndim
            for j in range(d):
                y_blocks, y_layout = spmd_multi_ttm(
                    blocks, layout, factors, skip=j
                )
                if subspace:
                    factors[j] = spmd_subspace_llsv(
                        y_blocks,
                        y_layout,
                        j,
                        factors[j],
                        ranks[j],
                        n_iters=options.n_subspace_iters,
                    )
                else:
                    factors[j] = spmd_gram_evd_llsv(
                        y_blocks, y_layout, j, ranks[j]
                    )
            c_blocks, c_layout = spmd_ttm(
                y_blocks, y_layout, factors[d - 1], d - 1
            )
            core = gather_tensor(c_blocks, c_layout)

    assert core is not None
    return TuckerTensor(core=core, factors=factors)
