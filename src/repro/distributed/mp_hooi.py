"""HOOI/HOSI and rank-adaptive HOSI on real processes.

The paper's preferred iterations executed on the mini-MPI: every rank
is an OS process holding one block, all data moves through the
collectives of :mod:`repro.vmpi.mp_comm`.  Three drivers live here:

* :func:`mp_hooi_dt` — rank-specified HOOI.  By default it drives the
  shared dimension-tree traversal
  (:func:`repro.core.dimension_tree.hooi_iteration_dt`) with
  :class:`MPTreeEngine`, whose state is a per-rank
  ``(block, layout, signature)`` triple and which memoizes partial
  contractions keyed by factor versions (rank adaptation bumps the
  versions, so truncation correctly discards stale tree nodes).  For
  1-D/2-D inputs — where the tree memoizes nothing
  (:func:`~repro.core.dimension_tree.tree_applicable`) — and for
  ``use_dimension_tree=False`` it falls back to the direct
  subiteration.  Either way the core-forming TTM runs once, after the
  final sweep, not once per outer iteration.
* :func:`mp_rahosi_dt` — the error-specified Alg. 3 on processes: the
  core is formed (and gathered) every iteration for the norm-identity
  error check, rank 0 runs the eq. (3) core analysis and broadcasts
  the truncation/growth decision, and every rank truncates or expands
  its replicated factors identically.
* :func:`mp_hosi` — the original direct-TTM HOSI entry point, now a
  thin wrapper over :func:`mp_hooi_dt`.

Subspace iteration moves data exactly as §3.4 describes
(mode-subcommunicator redistributions + a global reduction + a
replicated QRCP) via the shared executed kernels of
:mod:`repro.distributed.kernels`; every collective carries a phase tag
so the traced per-iteration TTM count can be certified against the
memoized Table 1 formula
(:func:`repro.analysis.costs.hooi_ttm_count`).  With the deterministic
transport the results are bit-identical to the in-process
:func:`repro.distributed.spmd_hooi.spmd_hooi`.
"""

from __future__ import annotations

import math
import time
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.core_analysis import (
    greedy_rank_truncation,
    leading_subtensor_energies,
    solve_rank_truncation,
)
from repro.core.dimension_tree import hooi_iteration_dt, tree_applicable
from repro.core.errors import CheckpointError, ConfigError
from repro.core.hooi import HOOIOptions
from repro.core.rank_adaptive import (
    IterationRecord,
    RankAdaptiveOptions,
    _grow_ranks,
    expand_factor,
)
from repro.core.tucker import TuckerTensor
from repro.distributed.checkpoint import (
    SweepCheckpoint,
    decode_history,
    encode_history,
    tensor_digest,
)
from repro.distributed.kernels import (
    check_factor_orthogonality,
    mp_gather_core,
    mp_gram_evd_llsv,
    mp_subspace_llsv,
    mp_ttm,
)
from repro.distributed.layout import BlockLayout
from repro.distributed.recovery import run_elastic
from repro.linalg.llsv import LLSVMethod
from repro.tensor.dense import tensor_norm
from repro.tensor.random import random_orthonormal
from repro.tensor.validation import check_ranks
from repro.vmpi.grid import ProcessorGrid
from repro.vmpi.mp_comm import CommConfig, ProcessComm
from repro.vmpi.trace import CommTrace

__all__ = [
    "MPTreeEngine",
    "MPHooiStats",
    "MPRankAdaptiveStats",
    "mp_hooi_dt",
    "mp_rahosi_dt",
    "mp_hosi",
]

#: Engine state: this rank's block, its layout, and the contraction
#: signature — the ordered ``(mode, factor_version)`` pairs applied so
#: far, rooted at ``()`` for the unreduced input.
MPState = tuple[np.ndarray, BlockLayout, tuple[tuple[int, int], ...]]


class MPTreeEngine:
    """Dimension-tree engine over the mini-MPI with memoized nodes.

    State threading follows :class:`~repro.distributed.spmd_hooi.\
SPMDTreeEngine`, but each state carries a *signature* identifying the
    partial contraction: the sequence of ``(mode, version)`` pairs
    applied to the input, where ``version`` counts updates of that
    mode's factor.  ``contract`` consults a signature-keyed cache
    before issuing a TTM, so a node computed with the current factors
    is never recomputed; ``update_factor`` bumps the mode's version and
    evicts every cached node that involved the stale factor, and
    :meth:`reset_factors` (called after rank-adaptive truncation or
    growth) bumps all versions — stale tree nodes can then never be
    hit, and the cache is dropped wholesale.

    Within one vanilla traversal every node is visited once and every
    factor changes every iteration, so organic hits are zero — the
    memoization that makes the tree fast is the traversal itself
    threading parent states into both children.  The cache is the
    bookkeeping that keeps *cross*-traversal reuse correct when ranks
    change mid-run, and it is what the eviction tests exercise.
    """

    def __init__(
        self,
        comm: ProcessComm,
        coords: tuple[int, ...],
        factors: list[np.ndarray],
        ranks: Sequence[int],
        *,
        subspace: bool = True,
        n_subspace_iters: int = 1,
        memoize: bool = True,
        orthogonality_tol: float | None = None,
    ) -> None:
        self.comm = comm
        self.coords = coords
        self.factors = factors
        self.ranks = tuple(int(r) for r in ranks)
        self.subspace = subspace
        self.n_subspace_iters = n_subspace_iters
        self.memoize = memoize
        #: optional guard rail: after every factor update, verify the
        #: replicated factor is still orthonormal to this tolerance
        #: (raises NumericalFaultError on drift — e.g. a wire bit-flip
        #: that survived the reduction).
        self.orthogonality_tol = orthogonality_tol
        self.last_mode = len(factors) - 1
        self.versions = [0] * len(factors)
        self._cache: dict[
            tuple[tuple[int, int], ...], tuple[np.ndarray, BlockLayout]
        ] = {}
        self.ttm_count = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_evictions = 0
        self.core_state: tuple[np.ndarray, BlockLayout] | None = None
        #: Drivers disable this on non-final fixed-rank iterations: the
        #: core is only needed once, after the last sweep (the
        #: rank-adaptive driver keeps it on — it consumes the core
        #: every iteration for the error check).
        self.form_core_enabled = True

    def contract(self, state: MPState, modes: Sequence[int]) -> MPState:
        """Block-parallel multi-TTM over ``modes`` with memoization.

        Cache decisions depend only on replicated data (signatures and
        versions), so every rank hits or misses identically and the
        collective schedules stay aligned.
        """
        block, layout, sig = state
        for m in modes:
            sig = sig + ((m, self.versions[m]),)
            if self.memoize and sig in self._cache:
                block, layout = self._cache[sig]
                self.cache_hits += 1
                continue
            block, layout = mp_ttm(
                self.comm,
                block,
                layout,
                self.coords,
                self.factors[m],
                m,
                phase="ttm",
            )
            self.ttm_count += 1
            if self.memoize:
                self.cache_misses += 1
                self._cache[sig] = (block, layout)
        return block, layout, sig

    def update_factor(self, state: MPState, mode: int) -> None:
        """Block-parallel LLSV update of ``factors[mode]``."""
        block, layout, _ = state
        if self.subspace:
            self.factors[mode] = mp_subspace_llsv(
                self.comm,
                block,
                layout,
                self.coords,
                mode,
                self.factors[mode],
                self.ranks[mode],
                n_iters=self.n_subspace_iters,
                phase="llsv",
            )
        else:
            self.factors[mode] = mp_gram_evd_llsv(
                self.comm,
                block,
                layout,
                self.coords,
                mode,
                self.ranks[mode],
                phase="llsv",
            )
        if self.orthogonality_tol is not None:
            check_factor_orthogonality(
                self.factors[mode],
                mode=mode,
                rank=self.comm.rank,
                tol=self.orthogonality_tol,
                phase="llsv",
            )
        self.versions[mode] += 1
        self._evict(mode)

    def _evict(self, mode: int) -> None:
        """Drop cached nodes contracted with a stale factor of ``mode``."""
        stale = [
            key
            for key in self._cache
            if any(m == mode for m, _ in key)
        ]
        self.cache_evictions += len(stale)
        for key in stale:
            del self._cache[key]

    def form_core(self, state: MPState, mode: int) -> None:
        """Final block-parallel TTM producing the core blocks."""
        if not self.form_core_enabled:
            return
        block, layout, _ = state
        c_block, c_layout = mp_ttm(
            self.comm,
            block,
            layout,
            self.coords,
            self.factors[mode],
            mode,
            phase="core",
        )
        self.ttm_count += 1
        self.core_state = (c_block, c_layout)

    def reset_factors(
        self, factors: list[np.ndarray], ranks: Sequence[int]
    ) -> None:
        """Swap in externally modified factors (truncation / growth).

        Every version is bumped so signatures built from the old
        factors can never match again, and the cache is cleared — the
        rank-adaptive invalidation step.
        """
        self.factors = factors
        self.ranks = tuple(int(r) for r in ranks)
        for m in range(len(self.versions)):
            self.versions[m] += 1
        self.cache_evictions += len(self._cache)
        self._cache.clear()


def _stamp_engine_metrics(prof, engine: MPTreeEngine) -> None:
    """End-of-program gauges: the engine's lifetime TTM/cache counters."""
    from repro import kernels

    # Which local-kernel backend produced this profile (0 = numpy,
    # 1 = numba): lets the attribution report group runs by backend.
    prof.metrics.gauge(
        "kernels_numba", 1.0 if kernels.backend_name() == "numba" else 0.0
    )
    prof.metrics.gauge("ttm_count", float(engine.ttm_count))
    prof.metrics.gauge("cache_hits", float(engine.cache_hits))
    prof.metrics.gauge("cache_misses", float(engine.cache_misses))
    prof.metrics.gauge(
        "cache_evictions", float(engine.cache_evictions)
    )


def _direct_sweep(engine: MPTreeEngine, state: MPState, d: int) -> None:
    """One direct (unmemoized) HOOI iteration: ``d`` all-but-one
    sweeps, then the single core-forming TTM (if enabled)."""
    y = state
    for j in range(d):
        y = engine.contract(state, [m for m in range(d) if m != j])
        engine.update_factor(y, j)
    engine.form_core(y, d - 1)


@dataclass
class MPHooiStats:
    """Run-level diagnostics of :func:`mp_hooi_dt` (from rank 0).

    ``per_iteration_ttms`` lists the executed multi-TTM count of each
    outer iteration — certified in the tests against
    :func:`repro.analysis.costs.hooi_ttm_count` (the core-forming TTM
    appears only in the final entry).  ``trace`` is rank 0's
    phase-tagged collective trace.  ``profile`` is the gathered
    :class:`~repro.observability.profile.RunProfile` when the run was
    launched with ``CommConfig(profile=True)``, else ``None``.
    """

    per_iteration_ttms: list[int] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    used_tree: bool = True
    rule: str = "half"
    trace: CommTrace = field(default_factory=CommTrace)
    profile: object | None = None
    #: one entry per in-run recovery episode (elastic policies only).
    recovery_events: list = field(default_factory=list)


@dataclass
class MPRankAdaptiveStats:
    """Run-level diagnostics of :func:`mp_rahosi_dt` (from rank 0)."""

    x_norm: float = 0.0
    history: list[IterationRecord] = field(default_factory=list)
    converged: bool = False
    first_satisfied: int | None = None
    per_iteration_ttms: list[int] = field(default_factory=list)
    cache_hits: int = 0
    cache_misses: int = 0
    used_tree: bool = True
    rule: str = "half"
    trace: CommTrace = field(default_factory=CommTrace)
    profile: object | None = None
    #: one entry per in-run recovery episode (elastic policies only).
    recovery_events: list = field(default_factory=list)


def _gather_run_profile(profiles: dict[int, object]):
    """Assemble ``run_spmd``'s profile_out dict into a RunProfile
    (lazy import: observability is only loaded on profiled runs)."""
    if not profiles:
        return None
    from repro.observability.profile import RunProfile

    return RunProfile.from_ranks(profiles)


def _hooi_rank_program(
    comm: ProcessComm,
    blocks: list[np.ndarray],
    grid_dims: tuple[int, ...],
    shape: tuple[int, ...],
    ranks: tuple[int, ...],
    use_tree: bool,
    rule: str,
    subspace: bool,
    n_subspace_iters: int,
    max_iters: int,
    seed: int | None,
    x_digest: str,
    checkpoint_path: str | None,
    resume: SweepCheckpoint | None,
    orthogonality_tol: float | None,
) -> tuple[np.ndarray | None, list[np.ndarray] | None, dict]:
    grid = ProcessorGrid(grid_dims)
    coords = grid.coords(comm.rank)
    x_block = blocks[comm.rank]
    x_layout = BlockLayout(shape, grid)
    d = len(shape)
    use_tree = use_tree and tree_applicable(d)

    if resume is not None:
        # Factors are replicated, so the checkpoint *is* the complete
        # inter-sweep state; the seeded init is skipped entirely.
        factors = [np.ascontiguousarray(u) for u in resume.factors]
    else:
        # Identical seeded init on every rank (replicated factors).
        rng = np.random.default_rng(seed)
        factors = [
            random_orthonormal(n, r, seed=rng, dtype=x_block.dtype)
            for n, r in zip(shape, ranks)
        ]

    engine = MPTreeEngine(
        comm,
        coords,
        factors,
        ranks,
        subspace=subspace,
        n_subspace_iters=n_subspace_iters,
        memoize=use_tree,
        orthogonality_tol=orthogonality_tol,
    )
    per_iter: list[int] = []
    start_it = 0
    if resume is not None:
        # Restore the factor-version counters so contraction
        # signatures continue exactly where the interrupted run's
        # would be (the memo cache itself is provably empty at every
        # iteration boundary — each factor updates each iteration and
        # every update evicts that mode's nodes).
        engine.versions = list(resume.versions)
        start_it = resume.iteration
        per_iter = list(resume.extra.get("per_iteration_ttms", []))
        engine.ttm_count = int(resume.extra.get("ttm_count", 0))
        engine.cache_hits = int(resume.extra.get("cache_hits", 0))
        engine.cache_misses = int(resume.extra.get("cache_misses", 0))

    def _boundary_ck(completed: int) -> SweepCheckpoint:
        return SweepCheckpoint(
            algorithm="mp_hooi_dt",
            iteration=completed,
            shape=shape,
            grid_dims=grid_dims,
            ranks=engine.ranks,
            factors=engine.factors,
            versions=list(engine.versions),
            x_digest=x_digest,
            extra={
                "per_iteration_ttms": per_iter,
                "ttm_count": engine.ttm_count,
                "cache_hits": engine.cache_hits,
                "cache_misses": engine.cache_misses,
                "world_size": comm.size,
                "backend": comm._t.kind,
            },
        )

    mgr = comm.recovery_mgr
    if mgr is not None:
        # Starting-point snapshot (iteration 0 or the resume point): a
        # crash inside the very first sweep must also be recoverable.
        mgr.replicate(_boundary_ck(start_it))
    state: MPState = (x_block, x_layout, ())
    prof = comm.profiler
    for it in range(start_it, max_iters):
        comm.note_progress(iteration=it + 1, total=max_iters)
        if prof is not None:
            prof.begin(f"sweep {it + 1}", "sweep")
        # The core feeds nothing until the run ends, so the trailing
        # TTM runs exactly once, after the final sweep.
        engine.form_core_enabled = it == max_iters - 1
        before = engine.ttm_count
        if use_tree:
            hooi_iteration_dt(state, engine, rule=rule)
        else:
            _direct_sweep(engine, state, d)
        per_iter.append(engine.ttm_count - before)
        if mgr is not None and it + 1 < max_iters:
            mgr.replicate(_boundary_ck(it + 1))
        if (
            checkpoint_path is not None
            and comm.rank == 0
            and it + 1 < max_iters
        ):
            if prof is not None:
                prof.begin("checkpoint", "kernel")
            _boundary_ck(it + 1).save(checkpoint_path)
            comm.note_event("checkpoint", {"iteration": it + 1})
            if prof is not None:
                prof.metrics.observe(
                    "checkpoint_write_seconds", prof.end()
                )
        if prof is not None:
            prof.end()

    assert engine.core_state is not None
    core = mp_gather_core(comm, *engine.core_state)
    if prof is not None:
        _stamp_engine_metrics(prof, engine)
    stats = {
        "per_iteration_ttms": per_iter,
        "cache_hits": engine.cache_hits,
        "cache_misses": engine.cache_misses,
        "used_tree": use_tree,
        "rule": rule,
        "trace": comm.trace,
    }
    if comm.rank != 0:
        return None, None, stats
    return core, engine.factors, stats


def _hooi_dispatch(comm: ProcessComm, *args: object):
    return _hooi_rank_program(comm, *args)  # type: ignore[arg-type]


def _llsv_is_subspace(method: LLSVMethod) -> bool:
    if method not in (LLSVMethod.GRAM_EVD, LLSVMethod.SUBSPACE):
        raise ConfigError(
            "process-parallel HOOI supports GRAM_EVD or SUBSPACE kernels"
        )
    return method is LLSVMethod.SUBSPACE


def _prepare_resume(
    algorithm: str,
    x: np.ndarray,
    grid: ProcessorGrid,
    resume_from: str | SweepCheckpoint | None,
    checkpoint_path: str | None,
    *,
    max_iters: int,
) -> tuple[SweepCheckpoint | None, str]:
    """Load/validate a resume checkpoint; digest ``x`` when needed.

    The digest is only computed when checkpointing or resuming is
    requested — plain runs must not pay a full pass over ``x``.
    """
    if resume_from is None and checkpoint_path is None:
        return None, ""
    x_dig = tensor_digest(x)
    if resume_from is None:
        return None, x_dig
    resume = (
        resume_from
        if isinstance(resume_from, SweepCheckpoint)
        else SweepCheckpoint.load(resume_from)
    )
    resume.validate_resume(
        algorithm=algorithm,
        shape=tuple(x.shape),
        grid_dims=tuple(grid.dims),
        x_digest=x_dig,
    )
    if resume.iteration >= max_iters:
        raise CheckpointError(
            f"checkpoint already covers {resume.iteration} iterations; "
            f"max_iters={max_iters} leaves nothing to resume"
        )
    return resume, x_dig


def _scatter_blocks(
    x: np.ndarray, grid: ProcessorGrid
) -> list[np.ndarray]:
    layout = BlockLayout(x.shape, grid)
    return [
        np.ascontiguousarray(x[layout.local_slices(coords)])
        for _, coords in grid.iter_ranks()
    ]


def mp_hooi_dt(
    x: np.ndarray,
    ranks: Sequence[int],
    grid_dims: Sequence[int],
    options: HOOIOptions | None = None,
    *,
    rule: str = "half",
    timeout: float = 240.0,
    transport: str = "p2p",
    comm_config: CommConfig | None = None,
    collective_timeout: float | None = None,
    checkpoint_path: str | None = None,
    resume_from: str | SweepCheckpoint | None = None,
    orthogonality_tol: float | None = None,
    profile_out: dict[int, object] | None = None,
    monitor: object | None = None,
) -> tuple[TuckerTensor, MPHooiStats]:
    """Rank-specified HOOI on real processes (one per grid cell).

    Uses the dimension-tree memoized traversal by default
    (``options.use_dimension_tree``), falling back to the direct sweep
    for 1-D/2-D inputs where the tree memoizes nothing.  ``rule``
    selects the tree shape (``"half"`` or the ``"single"`` caterpillar
    ablation).  ``transport``/``comm_config``/``collective_timeout``
    select and tune the communication layer exactly as in
    :func:`repro.distributed.mp_sthosvd.mp_sthosvd`.  With the default
    deterministic transport the result is bit-identical to the
    in-process :func:`repro.distributed.spmd_hooi.spmd_hooi` with the
    same options.

    ``checkpoint_path`` makes rank 0 overwrite a
    :class:`~repro.distributed.checkpoint.SweepCheckpoint` after every
    non-final iteration; ``resume_from`` (a path or loaded checkpoint)
    restarts from one, bit-identically to an uninterrupted run.
    ``orthogonality_tol`` enables the per-update factor drift guard.
    With ``comm_config.profile``, ``stats.profile`` carries the
    gathered :class:`~repro.observability.profile.RunProfile` (and
    ``profile_out``, when given, the raw per-rank profiles).
    """
    options = options or HOOIOptions()
    ranks = check_ranks(x.shape, ranks)
    grid = ProcessorGrid(grid_dims)
    if grid.ndim != x.ndim:
        raise ValueError(f"{x.ndim}-way tensor needs a {x.ndim}-way grid")
    subspace = _llsv_is_subspace(options.llsv_method)

    resume, x_dig = _prepare_resume(
        "mp_hooi_dt",
        x,
        grid,
        resume_from,
        checkpoint_path,
        max_iters=options.max_iters,
    )
    if resume is not None and resume.ranks != tuple(ranks):
        raise CheckpointError(
            f"checkpoint ranks {resume.ranks} do not match requested "
            f"ranks {tuple(ranks)}"
        )

    prof_sink: dict[int, object] = {}
    events: list = []
    outs = run_elastic(
        _hooi_dispatch,
        grid.size,
        _scatter_blocks(x, grid),
        tuple(grid.dims),
        tuple(x.shape),
        tuple(ranks),
        options.use_dimension_tree,
        rule,
        subspace,
        options.n_subspace_iters,
        options.max_iters,
        options.seed,
        x_dig,
        checkpoint_path,
        resume,
        orthogonality_tol,
        resume_slot=12,
        timeout=timeout,
        transport=transport,
        config=comm_config,
        collective_timeout=collective_timeout,
        profile_out=prof_sink,
        events_out=events,
        monitor=monitor,
    )
    if profile_out is not None:
        profile_out.update(prof_sink)
    core, factors, st = outs[0]
    assert core is not None and factors is not None
    stats = MPHooiStats(
        per_iteration_ttms=st["per_iteration_ttms"],
        cache_hits=st["cache_hits"],
        cache_misses=st["cache_misses"],
        used_tree=st["used_tree"],
        rule=st["rule"],
        trace=st["trace"],
        profile=_gather_run_profile(prof_sink),
        recovery_events=events,
    )
    return TuckerTensor(core=core, factors=factors), stats


def _rahosi_rank_program(
    comm: ProcessComm,
    blocks: list[np.ndarray],
    grid_dims: tuple[int, ...],
    shape: tuple[int, ...],
    init_ranks: tuple[int, ...],
    eps: float,
    x_norm: float,
    opts: RankAdaptiveOptions,
    rule: str,
    x_digest: str,
    checkpoint_path: str | None,
    resume: SweepCheckpoint | None,
    orthogonality_tol: float | None,
) -> tuple[np.ndarray | None, list[np.ndarray] | None, dict]:
    grid = ProcessorGrid(grid_dims)
    coords = grid.coords(comm.rank)
    x_block = blocks[comm.rank]
    x_layout = BlockLayout(shape, grid)
    d = len(shape)
    use_tree = opts.use_dimension_tree and tree_applicable(d)
    subspace = opts.llsv_method is LLSVMethod.SUBSPACE

    rng = np.random.default_rng(opts.seed)
    if resume is not None:
        # Replicated factors + generator state are the complete
        # inter-sweep state: restoring them (and the factor versions,
        # below) makes the remaining iterations — including the next
        # ``expand_factor`` draws — bit-identical to an uninterrupted
        # run.
        ranks = resume.ranks
        factors = [np.ascontiguousarray(u) for u in resume.factors]
        assert resume.rng_state is not None
        rng.bit_generator.state = resume.rng_state
    else:
        ranks = tuple(init_ranks)
        factors = [
            random_orthonormal(n, r, seed=rng, dtype=x_block.dtype)
            for n, r in zip(shape, ranks)
        ]

    x_norm_sq = x_norm**2
    target_sq = (1.0 - eps * eps) * x_norm_sq

    engine = MPTreeEngine(
        comm,
        coords,
        factors,
        ranks,
        subspace=subspace,
        n_subspace_iters=opts.n_subspace_iters,
        memoize=use_tree,
        orthogonality_tol=orthogonality_tol,
    )
    per_iter: list[int] = []
    history: list[IterationRecord] = []
    converged = False
    first_satisfied: int | None = None
    result_core: np.ndarray | None = None
    result_factors: list[np.ndarray] | None = None
    core: np.ndarray | None = None

    start_it = 0
    if resume is not None:
        engine.versions = list(resume.versions)
        start_it = resume.iteration
        per_iter = list(resume.extra.get("per_iteration_ttms", []))
        history = decode_history(resume.extra.get("history", []))
        converged = bool(resume.extra.get("converged", False))
        first_satisfied = resume.extra.get("first_satisfied")
        engine.ttm_count = int(resume.extra.get("ttm_count", 0))
        engine.cache_hits = int(resume.extra.get("cache_hits", 0))
        engine.cache_misses = int(resume.extra.get("cache_misses", 0))

    def _boundary_ck(completed: int) -> SweepCheckpoint:
        # Late-binding closure: reads the *current* factors, ranks,
        # history, and generator state — the same post-growth boundary
        # semantics as the disk checkpoint.
        return SweepCheckpoint(
            algorithm="mp_rahosi_dt",
            iteration=completed,
            shape=shape,
            grid_dims=grid_dims,
            ranks=ranks,
            factors=factors,
            versions=list(engine.versions),
            rng_state=rng.bit_generator.state,
            x_digest=x_digest,
            extra={
                "per_iteration_ttms": per_iter,
                "history": encode_history(history),
                "converged": converged,
                "first_satisfied": first_satisfied,
                "ttm_count": engine.ttm_count,
                "cache_hits": engine.cache_hits,
                "cache_misses": engine.cache_misses,
                "world_size": comm.size,
                "backend": comm._t.kind,
            },
        )

    mgr = comm.recovery_mgr
    if mgr is not None:
        # Starting-point snapshot (iteration 0 or the resume point): a
        # crash inside the very first sweep must also be recoverable.
        mgr.replicate(_boundary_ck(start_it))
    state: MPState = (x_block, x_layout, ())
    prof = comm.profiler
    for it in range(start_it + 1, opts.max_iters + 1):
        comm.note_progress(iteration=it, total=opts.max_iters, ranks=ranks)
        if prof is not None:
            prof.begin(f"sweep {it}", "sweep")
        t0 = time.perf_counter()
        before = engine.ttm_count
        # Alg. 3 consumes the core every iteration (norm-identity error
        # check + eq. (3) analysis), so form_core stays enabled.
        if use_tree:
            hooi_iteration_dt(state, engine, rule=rule)
        else:
            _direct_sweep(engine, state, d)
        per_iter.append(engine.ttm_count - before)
        factors = engine.factors

        assert engine.core_state is not None
        core = mp_gather_core(comm, *engine.core_state)

        # Rank 0 analyzes the gathered core and broadcasts the decision
        # so every rank truncates/expands its replicated factors
        # identically.
        record: IterationRecord | None = None
        if comm.rank == 0:
            assert core is not None
            core_sq = tensor_norm(core) ** 2
            err = math.sqrt(max(x_norm_sq - core_sq, 0.0)) / max(
                x_norm, 1e-300
            )
            satisfied = core_sq >= target_sq - 1e-12 * max(x_norm_sq, 1.0)
            record = IterationRecord(
                iteration=it,
                ranks_used=ranks,
                error=err,
                satisfied=satisfied,
                storage_size=TuckerTensor(
                    core=core, factors=factors
                ).storage_size(),
                seconds=time.perf_counter() - t0,
            )
            if satisfied:
                solver = (
                    solve_rank_truncation
                    if opts.truncation == "exhaustive"
                    else greedy_rank_truncation
                )
                new_ranks = solver(core, target_sq, shape)
                assert new_ranks is not None  # satisfied implies feasible
            elif it < opts.max_iters:
                new_ranks = _grow_ranks(ranks, opts.alpha, shape)
            else:
                new_ranks = ranks
            payload = np.array(
                [1 if satisfied else 0, *new_ranks], dtype=np.int64
            )
        else:
            payload = None
        payload = comm.bcast(payload, root=0)
        satisfied = bool(payload[0])
        new_ranks = tuple(int(r) for r in payload[1:])
        # Residual/rank trajectory for the live telemetry channel
        # (the residual is only computed on rank 0 — peers publish
        # the replicated rank decision).
        if record is not None:
            comm.note_progress(
                ranks=new_ranks, satisfied=satisfied,
                residual=record.error,
            )
        else:
            comm.note_progress(ranks=new_ranks, satisfied=satisfied)

        if satisfied:
            if comm.rank == 0:
                assert record is not None and core is not None
                energies = leading_subtensor_energies(core)
                kept_sq = float(
                    energies[tuple(r - 1 for r in new_ranks)]
                )
                trunc = TuckerTensor(core=core, factors=factors).truncate(
                    new_ranks
                )
                record.truncated_ranks = new_ranks
                record.truncated_error = math.sqrt(
                    max(x_norm_sq - kept_sq, 0.0)
                ) / max(x_norm, 1e-300)
                record.truncated_storage = trunc.storage_size()
                history.append(record)
                result_core = trunc.core
                result_factors = trunc.factors
            converged = True
            if first_satisfied is None:
                first_satisfied = it
            # Same leading-column truncation as TuckerTensor.truncate,
            # replicated on every rank.
            factors = [
                np.ascontiguousarray(u[:, :r])
                for u, r in zip(factors, new_ranks)
            ]
            ranks = new_ranks
            engine.reset_factors(factors, ranks)
            if opts.stop_at_threshold:
                if prof is not None:
                    prof.end()
                break
        else:
            if comm.rank == 0:
                assert record is not None
                history.append(record)
            if it < opts.max_iters:
                # Grow only when another iteration will actually run,
                # so the returned factors match the returned core.
                # expand_factor consumes the shared rng identically on
                # every rank (replicated determinism).
                factors = [
                    expand_factor(u, r, rng)
                    for u, r in zip(factors, new_ranks)
                ]
                ranks = new_ranks
                engine.reset_factors(factors, ranks)
                if mgr is not None:
                    # Post-growth boundary: expanded factors, grown
                    # ranks, bumped versions, generator state *after*
                    # the expand_factor draws.
                    mgr.replicate(_boundary_ck(it))
                if checkpoint_path is not None and comm.rank == 0:
                    if prof is not None:
                        prof.begin("checkpoint", "kernel")
                    _boundary_ck(it).save(checkpoint_path)
                    comm.note_event("checkpoint", {"iteration": it})
                    if prof is not None:
                        prof.metrics.observe(
                            "checkpoint_write_seconds", prof.end()
                        )
        if prof is not None:
            prof.end()

    if result_core is None and comm.rank == 0:
        # Budget never met within max_iters; return the last iterate.
        assert core is not None
        result_core = core
        result_factors = list(factors)

    if prof is not None:
        _stamp_engine_metrics(prof, engine)
    stats = {
        "x_norm": x_norm,
        "history": history,
        "converged": converged,
        "first_satisfied": first_satisfied,
        "per_iteration_ttms": per_iter,
        "cache_hits": engine.cache_hits,
        "cache_misses": engine.cache_misses,
        "used_tree": use_tree,
        "rule": rule,
        "trace": comm.trace,
    }
    if comm.rank != 0:
        return None, None, stats
    return result_core, result_factors, stats


def _rahosi_dispatch(comm: ProcessComm, *args: object):
    return _rahosi_rank_program(comm, *args)  # type: ignore[arg-type]


def mp_rahosi_dt(
    x: np.ndarray,
    eps: float,
    init_ranks: Sequence[int],
    grid_dims: Sequence[int],
    options: RankAdaptiveOptions | None = None,
    *,
    rule: str = "half",
    timeout: float = 240.0,
    transport: str = "p2p",
    comm_config: CommConfig | None = None,
    collective_timeout: float | None = None,
    checkpoint_path: str | None = None,
    resume_from: str | SweepCheckpoint | None = None,
    orthogonality_tol: float | None = None,
    profile_out: dict[int, object] | None = None,
    monitor: object | None = None,
) -> tuple[TuckerTensor, MPRankAdaptiveStats]:
    """Error-specified rank-adaptive HOSI on real processes (Alg. 3).

    The process-parallel counterpart of
    :func:`repro.core.rank_adaptive.rank_adaptive_hooi`: the same
    grow-until-satisfied / truncate-via-core-analysis control flow,
    with the iteration itself running on the mini-MPI through
    :class:`MPTreeEngine`.  Rank adaptation invalidates the engine's
    memoized tree nodes through factor-version bumps
    (:meth:`MPTreeEngine.reset_factors`).

    ``checkpoint_path`` makes rank 0 overwrite a
    :class:`~repro.distributed.checkpoint.SweepCheckpoint` after every
    growth iteration (factors, ranks, rng state, history);
    ``resume_from`` restarts from one, bit-identically to an
    uninterrupted run.  ``orthogonality_tol`` enables the per-update
    factor drift guard.
    """
    options = options or RankAdaptiveOptions()
    if eps <= 0 or eps >= 1:
        raise ConfigError("eps must lie in (0, 1)")
    init_ranks = check_ranks(x.shape, init_ranks, allow_exceed=True)
    grid = ProcessorGrid(grid_dims)
    if grid.ndim != x.ndim:
        raise ValueError(f"{x.ndim}-way tensor needs a {x.ndim}-way grid")
    _llsv_is_subspace(options.llsv_method)

    resume, x_dig = _prepare_resume(
        "mp_rahosi_dt",
        x,
        grid,
        resume_from,
        checkpoint_path,
        max_iters=options.max_iters,
    )

    prof_sink: dict[int, object] = {}
    events: list = []
    outs = run_elastic(
        _rahosi_dispatch,
        grid.size,
        _scatter_blocks(x, grid),
        tuple(grid.dims),
        tuple(x.shape),
        tuple(init_ranks),
        float(eps),
        tensor_norm(x),
        options,
        rule,
        x_dig,
        checkpoint_path,
        resume,
        orthogonality_tol,
        resume_slot=10,
        timeout=timeout,
        transport=transport,
        config=comm_config,
        collective_timeout=collective_timeout,
        profile_out=prof_sink,
        events_out=events,
        monitor=monitor,
    )
    if profile_out is not None:
        profile_out.update(prof_sink)
    core, factors, st = outs[0]
    assert core is not None and factors is not None
    stats = MPRankAdaptiveStats(
        x_norm=st["x_norm"],
        history=st["history"],
        converged=st["converged"],
        first_satisfied=st["first_satisfied"],
        per_iteration_ttms=st["per_iteration_ttms"],
        cache_hits=st["cache_hits"],
        cache_misses=st["cache_misses"],
        used_tree=st["used_tree"],
        rule=st["rule"],
        trace=st["trace"],
        profile=_gather_run_profile(prof_sink),
        recovery_events=events,
    )
    return TuckerTensor(core=core, factors=factors), stats


def mp_hosi(
    x: np.ndarray,
    ranks: Sequence[int],
    grid_dims: Sequence[int],
    *,
    max_iters: int = 2,
    seed: int = 0,
    timeout: float = 240.0,
    transport: str = "p2p",
    comm_config: CommConfig | None = None,
    collective_timeout: float | None = None,
) -> TuckerTensor:
    """Rank-specified direct-TTM HOSI on real processes.

    Kept as the unmemoized baseline (the ``mp_hooi_dt`` ablation
    partner); the core-forming TTM now runs once after the final
    sweep instead of once per outer iteration.
    """
    options = HOOIOptions(
        use_dimension_tree=False,
        llsv_method=LLSVMethod.SUBSPACE,
        max_iters=max_iters,
        seed=seed,
    )
    tucker, _ = mp_hooi_dt(
        x,
        ranks,
        grid_dims,
        options,
        timeout=timeout,
        transport=transport,
        comm_config=comm_config,
        collective_timeout=collective_timeout,
    )
    return tucker
