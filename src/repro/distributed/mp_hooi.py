"""HOSI (HOOI with subspace iteration) on real processes.

The paper's preferred iteration executed on the mini-MPI: per
subiteration, a block-parallel all-but-one multi-TTM, then subspace
iteration whose contraction moves data exactly as §3.4 describes
(mode-subcommunicator redistributions + a global reduction + a
replicated QRCP).  Direct (unmemoized) TTMs keep the per-rank program
simple; the memoized variants are covered by the in-process SPMD layer.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.tucker import TuckerTensor
from repro.distributed.layout import BlockLayout
from repro.linalg.qrcp import qrcp
from repro.tensor.ops import contract_all_but_mode, ttm
from repro.tensor.random import random_orthonormal
from repro.tensor.validation import check_ranks
from repro.vmpi.grid import ProcessorGrid
from repro.vmpi.mp_comm import CommConfig, ProcessComm, run_spmd

__all__ = ["mp_hosi"]


def _mp_ttm(
    comm: ProcessComm,
    block: np.ndarray,
    layout: BlockLayout,
    coords: tuple[int, ...],
    u: np.ndarray,
    mode: int,
) -> tuple[np.ndarray, BlockLayout]:
    """Block-parallel truncating TTM (transpose direction)."""
    grid = layout.grid
    group = tuple(grid.mode_comm_ranks(mode, coords))
    a, b = layout.bounds[mode][coords[mode]]
    partial = ttm(block, u.T[:, a:b], mode)
    out = comm.reduce_scatter(partial, axis=mode, group=group)
    new_shape = list(layout.shape)
    new_shape[mode] = u.shape[1]
    return out, BlockLayout(new_shape, grid)


def _mp_subspace_llsv(
    comm: ProcessComm,
    block: np.ndarray,
    layout: BlockLayout,
    coords: tuple[int, ...],
    mode: int,
    u_prev: np.ndarray,
    rank: int,
) -> np.ndarray:
    """One subspace-iteration sweep on real blocks (Alg. 5)."""
    grid = layout.grid
    group = tuple(grid.mode_comm_ranks(mode, coords))
    n = layout.shape[mode]

    # Line 2: G = U^T Y (block-parallel TTM).
    g_block, g_layout = _mp_ttm(comm, block, layout, coords, u_prev, mode)

    # Line 3: Z = Y_(j) G_(j)^T — redistribute both to full-mode layout
    # within the mode sub-communicator, partial product at the
    # coordinate-0 member, global allreduce.
    y_full = comm.allgather(block, axis=mode, group=group)
    g_full = comm.allgather(g_block, axis=mode, group=group)
    width = u_prev.shape[1]
    if coords[mode] == 0:
        z_local = contract_all_but_mode(y_full, g_full, mode)
    else:
        z_local = np.zeros((n, width), dtype=block.dtype)
    z = comm.allreduce(z_local)

    # Line 4: replicated QRCP.
    q, _, _ = qrcp(z)
    return np.ascontiguousarray(q[:, :rank])


def _rank_program(
    comm: ProcessComm,
    blocks: list[np.ndarray],
    grid_dims: tuple[int, ...],
    shape: tuple[int, ...],
    ranks: tuple[int, ...],
    max_iters: int,
    seed: int,
) -> tuple[np.ndarray | None, list[np.ndarray] | None]:
    grid = ProcessorGrid(grid_dims)
    coords = grid.coords(comm.rank)
    x_block = blocks[comm.rank]
    x_layout = BlockLayout(shape, grid)
    d = len(shape)

    # Identical seeded init on every rank (replicated factors).
    rng = np.random.default_rng(seed)
    factors = [
        random_orthonormal(n, r, seed=rng, dtype=x_block.dtype)
        for n, r in zip(shape, ranks)
    ]

    block, layout = x_block, x_layout
    for _ in range(max_iters):
        for j in range(d):
            block, layout = x_block, x_layout
            for m in range(d):
                if m == j:
                    continue
                block, layout = _mp_ttm(
                    comm, block, layout, coords, factors[m], m
                )
            factors[j] = _mp_subspace_llsv(
                comm, block, layout, coords, j, factors[j], ranks[j]
            )
        block, layout = _mp_ttm(
            comm, block, layout, coords, factors[d - 1], d - 1
        )

    gathered = comm.gather(block, root=0)
    if comm.rank != 0:
        return None, None
    core = np.empty(layout.shape, dtype=block.dtype)
    for rank_id, piece in enumerate(gathered):
        core[layout.local_slices(grid.coords(rank_id))] = piece
    return core, factors


def mp_hosi(
    x: np.ndarray,
    ranks: Sequence[int],
    grid_dims: Sequence[int],
    *,
    max_iters: int = 2,
    seed: int = 0,
    timeout: float = 240.0,
    transport: str = "p2p",
    comm_config: CommConfig | None = None,
) -> TuckerTensor:
    """Rank-specified HOSI on real processes (one per grid cell).

    ``transport``/``comm_config`` select and tune the communication
    layer exactly as in :func:`repro.distributed.mp_sthosvd.mp_sthosvd`.
    """
    ranks = check_ranks(x.shape, ranks)
    grid = ProcessorGrid(grid_dims)
    if grid.ndim != x.ndim:
        raise ValueError(f"{x.ndim}-way tensor needs a {x.ndim}-way grid")
    layout = BlockLayout(x.shape, grid)
    blocks = [
        np.ascontiguousarray(x[layout.local_slices(coords)])
        for _, coords in grid.iter_ranks()
    ]
    outs = run_spmd(
        _rank_program,
        grid.size,
        blocks,
        tuple(grid.dims),
        tuple(x.shape),
        tuple(ranks),
        max_iters,
        seed,
        timeout=timeout,
        transport=transport,
        config=comm_config,
    )
    core, factors = outs[0]
    assert core is not None and factors is not None
    return TuckerTensor(core=core, factors=factors)
