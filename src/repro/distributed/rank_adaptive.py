"""Distributed RA-HOSI-DT (paper Alg. 3 on the simulated machine).

The rank-adaptation logic matches the sequential
:func:`repro.core.rank_adaptive.rank_adaptive_hooi`; iterations run
through the distributed engine so every phase is cost-charged, the core
gather and analysis included.  Per-iteration simulated seconds are
recorded via ledger snapshots — these drive the Fig. 4/6/8 progression
plots and the Fig. 5/7/9 breakdowns.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.core_analysis import (
    greedy_rank_truncation,
    leading_subtensor_energies,
    solve_rank_truncation,
)
from repro.core.dimension_tree import hooi_iteration_dt
from repro.core.errors import ConfigError
from repro.core.rank_adaptive import (
    IterationRecord,
    RankAdaptiveOptions,
    expand_factor,
)
from repro.core.tucker import TuckerTensor
from repro.distributed.dist_tensor import DistTensor
from repro.distributed.hooi import DistributedTreeEngine, _direct_iteration
from repro.distributed.kernels import dist_core_analysis_cost
from repro.tensor.dense import tensor_norm
from repro.tensor.random import random_orthonormal
from repro.tensor.validation import check_ranks
from repro.vmpi.cost import CostLedger
from repro.vmpi.trace import TracingLedger
from repro.vmpi.grid import ProcessorGrid
from repro.vmpi.machine import MachineModel, perlmutter_like

__all__ = ["DistRankAdaptiveStats", "dist_rank_adaptive_hooi"]


@dataclass
class DistRankAdaptiveStats:
    """Simulated-run diagnostics for distributed RA-HOOI."""

    x_norm: float = 0.0
    history: list[IterationRecord] = field(default_factory=list)
    converged: bool = False
    first_satisfied: int | None = None
    grid_dims: tuple[int, ...] = ()
    simulated_seconds: float = 0.0
    #: per-iteration simulated seconds (parallel to ``history``)
    iteration_seconds: list[float] = field(default_factory=list)
    #: per-iteration phase->seconds deltas (parallel to ``history``)
    iteration_breakdowns: list[dict[str, float]] = field(default_factory=list)
    breakdown: dict[str, float] = field(default_factory=dict)
    ledger: CostLedger | None = None


def _grow(ranks: tuple[int, ...], alpha: float, shape: tuple[int, ...]):
    return tuple(
        min(max(math.ceil(alpha * r), r + 1), n) for r, n in zip(ranks, shape)
    )


def dist_rank_adaptive_hooi(
    x: np.ndarray,
    eps: float,
    init_ranks: Sequence[int],
    grid_dims: Sequence[int],
    *,
    machine: MachineModel | None = None,
    options: RankAdaptiveOptions | None = None,
    trace: bool = False,
) -> tuple[TuckerTensor, DistRankAdaptiveStats]:
    """Error-specified Tucker approximation on the simulated machine.

    Concrete inputs only (rank adaptation needs real core energies).
    See :class:`repro.core.rank_adaptive.RankAdaptiveOptions` for the
    algorithmic knobs.
    """
    options = options or RankAdaptiveOptions()
    if not isinstance(x, np.ndarray):
        raise ConfigError("rank adaptation requires concrete data")
    if eps <= 0 or eps >= 1:
        raise ConfigError("eps must lie in (0, 1)")
    ranks = check_ranks(x.shape, init_ranks, allow_exceed=True)

    machine = machine or perlmutter_like()
    grid = ProcessorGrid(grid_dims)
    if grid.ndim != x.ndim:
        raise ConfigError(f"{x.ndim}-way tensor needs a {x.ndim}-way grid")
    ledger = (
        TracingLedger(machine, grid.size)
        if trace
        else CostLedger(machine, grid.size)
    )
    dt = DistTensor(x, grid, ledger)
    rng = np.random.default_rng(options.seed)

    stats = DistRankAdaptiveStats(
        x_norm=tensor_norm(x), grid_dims=grid.dims, ledger=ledger
    )
    x_norm_sq = stats.x_norm**2
    target_sq = (1.0 - eps * eps) * x_norm_sq

    factors: list[np.ndarray] = [
        random_orthonormal(n, r, seed=rng, dtype=x.dtype)
        for n, r in zip(x.shape, ranks)
    ]
    core_dt: DistTensor | None = None
    result: TuckerTensor | None = None

    for it in range(1, options.max_iters + 1):
        snap = ledger.snapshot()
        if options.use_dimension_tree:
            engine = DistributedTreeEngine(
                factors,  # type: ignore[arg-type]
                ranks,
                llsv_method=options.llsv_method,
                n_subspace_iters=options.n_subspace_iters,
            )
            hooi_iteration_dt(dt, engine)
            factors, core_dt = engine.factors, engine.core  # type: ignore[assignment]
        else:
            core_dt = _direct_iteration(
                dt,
                factors,  # type: ignore[arg-type]
                ranks,
                llsv_method=options.llsv_method,
                n_subspace_iters=options.n_subspace_iters,
            )
        assert core_dt is not None
        core = core_dt.data
        assert isinstance(core, np.ndarray)

        core_sq = tensor_norm(core) ** 2
        err = math.sqrt(max(x_norm_sq - core_sq, 0.0)) / max(
            stats.x_norm, 1e-300
        )
        satisfied = core_sq >= target_sq - 1e-12 * max(x_norm_sq, 1.0)

        # Core analysis runs every iteration (the error check itself is
        # performed on the gathered core); its truncation search only
        # matters when satisfied.
        dist_core_analysis_cost(core_dt)

        record = IterationRecord(
            iteration=it,
            ranks_used=ranks,
            error=err,
            satisfied=satisfied,
            storage_size=TuckerTensor(core=core, factors=factors).storage_size(),
            seconds=0.0,
        )

        if satisfied:
            solver = (
                solve_rank_truncation
                if options.truncation == "exhaustive"
                else greedy_rank_truncation
            )
            new_ranks = solver(core, target_sq, x.shape)
            assert new_ranks is not None
            energies = leading_subtensor_energies(core)
            kept_sq = float(energies[tuple(r - 1 for r in new_ranks)])
            trunc = TuckerTensor(core=core, factors=factors).truncate(new_ranks)
            record.truncated_ranks = new_ranks
            record.truncated_error = math.sqrt(
                max(x_norm_sq - kept_sq, 0.0)
            ) / max(stats.x_norm, 1e-300)
            record.truncated_storage = trunc.storage_size()
            stats.converged = True
            if stats.first_satisfied is None:
                stats.first_satisfied = it
            result = trunc
            core, factors, ranks = trunc.core, trunc.factors, trunc.ranks
            core_dt = dt.like(core)

        record.seconds = ledger.seconds_since(snap)
        stats.iteration_seconds.append(record.seconds)
        stats.iteration_breakdowns.append(ledger.breakdown_since(snap))
        stats.history.append(record)

        if satisfied and options.stop_at_threshold:
            break
        if not satisfied and it < options.max_iters:
            # Grow only when another iteration will actually run, so the
            # returned factors always match the returned core.
            new_ranks = _grow(ranks, options.alpha, x.shape)
            factors = [
                expand_factor(u, r, rng) for u, r in zip(factors, new_ranks)
            ]
            ranks = new_ranks

    stats.simulated_seconds = ledger.seconds()
    stats.breakdown = ledger.breakdown()
    if result is None:
        assert core_dt is not None and isinstance(core_dt.data, np.ndarray)
        result = TuckerTensor(core=core_dt.data, factors=list(factors))
    return result, stats
