"""Distributed HOOI variants (HOOI / HOOI-DT / HOSI / HOSI-DT).

Reuses the dimension-tree traversal of
:mod:`repro.core.dimension_tree` with a distributed engine whose
contractions and factor updates go through the cost-charging kernels.
Numerics are exact for concrete inputs and shape-only for symbolic
ones; simulated time comes from the ledger either way.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.dimension_tree import hooi_iteration_dt
from repro.core.errors import ConfigError
from repro.core.hooi import HOOIOptions
from repro.core.tucker import TuckerTensor
from repro.distributed.arrays import SymbolicArray, is_concrete
from repro.distributed.dist_tensor import DistTensor
from repro.distributed.kernels import (
    dist_gram_evd_llsv,
    dist_multi_ttm,
    dist_subspace_llsv,
    dist_ttm,
)
from repro.linalg.llsv import LLSVMethod
from repro.tensor.dense import tensor_norm
from repro.tensor.random import random_orthonormal
from repro.tensor.validation import check_ranks
from repro.vmpi.cost import CostLedger
from repro.vmpi.trace import TracingLedger
from repro.vmpi.grid import ProcessorGrid
from repro.vmpi.machine import MachineModel, perlmutter_like

__all__ = ["DistHOOIStats", "DistributedTreeEngine", "dist_hooi"]


@dataclass
class DistHOOIStats:
    """Simulated-run diagnostics for distributed HOOI."""

    iterations: int = 0
    errors: list[float] = field(default_factory=list)
    grid_dims: tuple[int, ...] = ()
    simulated_seconds: float = 0.0
    breakdown: dict[str, float] = field(default_factory=dict)
    ledger: CostLedger | None = None


class DistributedTreeEngine:
    """Dimension-tree engine running on :class:`DistTensor` operands."""

    def __init__(
        self,
        factors: list[np.ndarray | SymbolicArray],
        ranks: Sequence[int],
        *,
        llsv_method: LLSVMethod = LLSVMethod.SUBSPACE,
        n_subspace_iters: int = 1,
    ) -> None:
        self.factors = factors
        self.ranks = tuple(int(r) for r in ranks)
        self.llsv_method = llsv_method
        self.n_subspace_iters = n_subspace_iters
        self.last_mode = len(factors) - 1
        self.core: DistTensor | None = None

    def contract(
        self, tensor: DistTensor, modes: Sequence[int]
    ) -> DistTensor:
        """Cost-charged multi-TTM with ``U_m^T`` per listed mode."""
        out = tensor
        for m in modes:
            out = dist_ttm(out, self.factors[m], m, transpose=True)
        return out

    def update_factor(self, tensor: DistTensor, mode: int) -> None:
        """Distributed LLSV update of ``factors[mode]``."""
        if self.llsv_method is LLSVMethod.SUBSPACE:
            self.factors[mode] = dist_subspace_llsv(
                tensor,
                mode,
                self.factors[mode],
                self.ranks[mode],
                n_iters=self.n_subspace_iters,
            )
        else:
            self.factors[mode], _ = dist_gram_evd_llsv(
                tensor, mode, rank=self.ranks[mode]
            )

    def form_core(self, tensor: DistTensor, mode: int) -> None:
        """Final cost-charged TTM producing the distributed core."""
        self.core = dist_ttm(
            tensor, self.factors[mode], mode, transpose=True
        )


def _direct_iteration(
    x: DistTensor,
    factors: list[np.ndarray | SymbolicArray],
    ranks: tuple[int, ...],
    *,
    llsv_method: LLSVMethod,
    n_subspace_iters: int,
) -> DistTensor:
    """Unmemoized HOOI iteration (Alg. 2 body) on the simulator."""
    d = x.ndim
    y = x
    for j in range(d):
        y = dist_multi_ttm(x, factors, skip=j, transpose=True)
        if llsv_method is LLSVMethod.SUBSPACE:
            factors[j] = dist_subspace_llsv(
                y, j, factors[j], ranks[j], n_iters=n_subspace_iters
            )
        else:
            factors[j], _ = dist_gram_evd_llsv(y, j, rank=ranks[j])
    return dist_ttm(y, factors[d - 1], d - 1, transpose=True)


def initial_dist_factors(
    x: np.ndarray | SymbolicArray,
    ranks: tuple[int, ...],
    *,
    seed: int | None = 0,
) -> list[np.ndarray | SymbolicArray]:
    """Random orthonormal factors (concrete) or symbolic placeholders."""
    if is_concrete(x):
        rng = np.random.default_rng(seed)
        return [
            random_orthonormal(n, r, seed=rng, dtype=x.dtype)
            for n, r in zip(x.shape, ranks)
        ]
    return [
        SymbolicArray((n, r), x.dtype) for n, r in zip(x.shape, ranks)
    ]


def dist_hooi(
    x: np.ndarray | SymbolicArray,
    ranks: Sequence[int],
    grid_dims: Sequence[int],
    *,
    machine: MachineModel | None = None,
    options: HOOIOptions | None = None,
    trace: bool = False,
) -> tuple[TuckerTensor | None, DistHOOIStats]:
    """Rank-specified HOOI on the simulated machine.

    Same variant knobs as the sequential :func:`repro.core.hooi.hooi`
    (via ``options``); ``grid_dims`` selects the processor grid.
    Early-stop ``tol`` is honoured only for concrete inputs (symbolic
    runs have no error signal and always execute ``max_iters``
    iterations, matching the paper's fixed two-iteration protocol).
    """
    options = options or HOOIOptions()
    ranks = check_ranks(x.shape, ranks)
    machine = machine or perlmutter_like()
    grid = ProcessorGrid(grid_dims)
    if grid.ndim != len(x.shape):
        raise ConfigError(
            f"{len(x.shape)}-way tensor needs a {len(x.shape)}-way grid"
        )
    ledger = (
        TracingLedger(machine, grid.size)
        if trace
        else CostLedger(machine, grid.size)
    )
    dt = DistTensor(x, grid, ledger)

    factors = initial_dist_factors(x, ranks, seed=options.seed)
    stats = DistHOOIStats(grid_dims=grid.dims, ledger=ledger)
    x_norm = tensor_norm(x) if is_concrete(x) else None
    core: DistTensor | None = None
    prev_err = float("inf")

    for _ in range(options.max_iters):
        if options.use_dimension_tree:
            engine = DistributedTreeEngine(
                factors,
                ranks,
                llsv_method=options.llsv_method,
                n_subspace_iters=options.n_subspace_iters,
            )
            hooi_iteration_dt(dt, engine)
            factors, core = engine.factors, engine.core
        else:
            core = _direct_iteration(
                dt,
                factors,
                ranks,
                llsv_method=options.llsv_method,
                n_subspace_iters=options.n_subspace_iters,
            )
        stats.iterations += 1
        assert core is not None
        if x_norm is not None:
            gap = max(x_norm**2 - tensor_norm(core.data) ** 2, 0.0)
            err = float(np.sqrt(gap)) / x_norm if x_norm else 0.0
            stats.errors.append(err)
            if options.tol is not None and prev_err - err <= options.tol:
                break
            prev_err = err

    stats.simulated_seconds = ledger.seconds()
    stats.breakdown = ledger.breakdown()
    assert core is not None
    if is_concrete(x):
        return (
            TuckerTensor(core=core.data, factors=list(factors)),  # type: ignore[arg-type]
            stats,
        )
    return None, stats
