"""Distributed STHOSVD (TuckerMPI's algorithm, simulated).

The baseline the paper compares against: per mode, a parallel Gram +
sequential EVD picks the factor (rank- or error-specified), then a
parallel TTM truncates the mode.  Works on concrete tensors (real
numerics + costs) and symbolic ones (costs only, rank-specified).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.core.errors import ConfigError
from repro.core.tucker import TuckerTensor
from repro.distributed.arrays import SymbolicArray, is_concrete
from repro.distributed.dist_tensor import DistTensor
from repro.distributed.kernels import dist_gram_evd_llsv, dist_ttm
from repro.tensor.dense import tensor_norm
from repro.tensor.validation import check_ranks
from repro.vmpi.cost import CostLedger
from repro.vmpi.trace import TracingLedger
from repro.vmpi.grid import ProcessorGrid
from repro.vmpi.machine import MachineModel, perlmutter_like

__all__ = ["DistSTHOSVDStats", "dist_sthosvd"]


@dataclass
class DistSTHOSVDStats:
    """Simulated-run diagnostics for distributed STHOSVD."""

    ranks: tuple[int, ...] = ()
    grid_dims: tuple[int, ...] = ()
    simulated_seconds: float = 0.0
    breakdown: dict[str, float] = field(default_factory=dict)
    ledger: CostLedger | None = None


def dist_sthosvd(
    x: np.ndarray | SymbolicArray,
    grid_dims: Sequence[int],
    *,
    machine: MachineModel | None = None,
    eps: float | None = None,
    ranks: Sequence[int] | None = None,
    mode_order: Sequence[int] | None = None,
    trace: bool = False,
) -> tuple[TuckerTensor | None, DistSTHOSVDStats]:
    """Run STHOSVD on the simulated machine.

    Parameters
    ----------
    x:
        Global tensor (concrete) or a :class:`SymbolicArray` (costs
        only; requires ``ranks``).
    grid_dims:
        Processor grid, one entry per tensor mode.
    machine:
        Machine model (default: Perlmutter-like).
    eps, ranks:
        Error- or rank-specified formulation (as in
        :func:`repro.core.sthosvd.sthosvd`).
    mode_order:
        Mode processing order (default increasing).

    Returns
    -------
    ``(TuckerTensor | None, DistSTHOSVDStats)`` — the decomposition is
    ``None`` for symbolic inputs.
    """
    if eps is None and ranks is None:
        raise ConfigError("dist_sthosvd needs eps or ranks")
    if not is_concrete(x) and ranks is None:
        raise ConfigError("symbolic mode requires fixed ranks")
    d = len(x.shape)
    if ranks is not None:
        ranks = check_ranks(x.shape, ranks)
    order = tuple(range(d)) if mode_order is None else tuple(mode_order)
    if sorted(order) != list(range(d)):
        raise ConfigError(f"mode_order {order} is not a permutation")

    machine = machine or perlmutter_like()
    grid = ProcessorGrid(grid_dims)
    if grid.ndim != d:
        raise ConfigError(
            f"{d}-way tensor needs a {d}-way grid, got {grid.dims}"
        )
    ledger = (
        TracingLedger(machine, grid.size)
        if trace
        else CostLedger(machine, grid.size)
    )
    y = DistTensor(x, grid, ledger)

    threshold_sq = None
    if eps is not None:
        if eps <= 0:
            raise ConfigError("eps must be positive")
        threshold_sq = (eps * tensor_norm(x)) ** 2 / d  # concrete only

    factors: list[np.ndarray | SymbolicArray | None] = [None] * d
    for mode in order:
        factor, _ = dist_gram_evd_llsv(
            y,
            mode,
            rank=None if ranks is None else ranks[mode],
            threshold_sq=threshold_sq,
        )
        factors[mode] = factor
        y = dist_ttm(y, factor, mode, transpose=True)

    stats = DistSTHOSVDStats(
        ranks=tuple(y.shape),
        grid_dims=grid.dims,
        simulated_seconds=ledger.seconds(),
        breakdown=ledger.breakdown(),
        ledger=ledger,
    )
    if is_concrete(x):
        tucker = TuckerTensor(
            core=y.data,
            factors=[u for u in factors if u is not None],  # type: ignore[misc]
        )
        return tucker, stats
    return None, stats
