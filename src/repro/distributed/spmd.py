"""Genuinely SPMD execution on per-rank blocks.

The cost-simulation layer (:mod:`repro.distributed.kernels`) executes
numerics globally; this module is its ground truth: the same parallel
algorithms TuckerMPI uses, run for real on *per-rank blocks* through
the executable collectives of :mod:`repro.vmpi.collectives` — every
rank holds only its slab, data moves only through collectives, and the
final answers must match the sequential algorithms bit-for-bit (up to
BLAS reduction order).  The test suite uses this layer to validate the
block layout, the collectives, and the parallel TTM/Gram algorithms at
small rank counts.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.core.tucker import TuckerTensor
from repro.distributed.layout import BlockLayout
from repro.linalg.evd import gram_evd, rank_from_spectrum
from repro.tensor.ops import gram, ttm
from repro.tensor.validation import check_ranks
from repro.vmpi.collectives import (
    allgather_blocks,
    allreduce_blocks,
    reduce_scatter_blocks,
)
from repro.vmpi.grid import ProcessorGrid

__all__ = [
    "scatter_tensor",
    "gather_tensor",
    "subcomm_apply",
    "spmd_ttm",
    "spmd_gram",
    "spmd_multi_ttm",
    "spmd_sthosvd",
]


def scatter_tensor(
    x: np.ndarray, grid: ProcessorGrid
) -> tuple[list[np.ndarray], BlockLayout]:
    """Split a global tensor into per-rank block copies."""
    layout = BlockLayout(x.shape, grid)
    blocks = [
        np.array(x[layout.local_slices(coords)], copy=True, order="C")
        for _, coords in grid.iter_ranks()
    ]
    return blocks, layout


def gather_tensor(
    blocks: Sequence[np.ndarray],
    layout: BlockLayout,
) -> np.ndarray:
    """Reassemble the global tensor from per-rank blocks."""
    out = np.empty(layout.shape, dtype=blocks[0].dtype)
    for rank, coords in layout.grid.iter_ranks():
        out[layout.local_slices(coords)] = blocks[rank]
    return out


def subcomm_apply(
    blocks: Sequence[np.ndarray],
    grid: ProcessorGrid,
    mode: int,
    fn: Callable[[list[np.ndarray]], list[np.ndarray]],
) -> list[np.ndarray]:
    """Apply a collective independently in every mode sub-communicator.

    ``fn`` receives the blocks of one sub-communicator (in coordinate
    order along ``mode``) and returns the same number of blocks.
    """
    out: list[np.ndarray | None] = [None] * grid.size
    for rank, coords in grid.iter_ranks():
        if out[rank] is not None:
            continue
        comm_ranks = grid.mode_comm_ranks(mode, coords)
        results = fn([blocks[r] for r in comm_ranks])
        if len(results) != len(comm_ranks):
            raise ValueError("collective changed the sub-communicator size")
        for r, res in zip(comm_ranks, results):
            out[r] = res
    return out  # type: ignore[return-value]


def spmd_ttm(
    blocks: Sequence[np.ndarray],
    layout: BlockLayout,
    u: np.ndarray,
    mode: int,
    *,
    transpose: bool = True,
) -> tuple[list[np.ndarray], BlockLayout]:
    """TuckerMPI's parallel TTM on real blocks.

    Each rank multiplies the factor rows matching its mode-``mode``
    slab against its local block (a partial product over the full
    output extent), then the mode sub-communicator reduce-scatters the
    partials back into block layout.
    """
    grid = layout.grid
    op = u.T if transpose else u
    out_rows = op.shape[0]

    partials: list[np.ndarray] = []
    for rank, coords in grid.iter_ranks():
        a, b = layout.bounds[mode][coords[mode]]
        local_op = op[:, a:b]
        partials.append(ttm(blocks[rank], local_op, mode))

    reduced = subcomm_apply(
        partials,
        grid,
        mode,
        lambda bs: reduce_scatter_blocks(bs, axis=mode),
    )
    new_shape = list(layout.shape)
    new_shape[mode] = out_rows
    return reduced, BlockLayout(new_shape, grid)


def spmd_multi_ttm(
    blocks: Sequence[np.ndarray],
    layout: BlockLayout,
    factors: Sequence[np.ndarray | None],
    *,
    skip: int | None = None,
    transpose: bool = True,
) -> tuple[list[np.ndarray], BlockLayout]:
    """All-but-``skip`` multi-TTM on real blocks (increasing mode order)."""
    out_blocks, out_layout = list(blocks), layout
    for mode, u in enumerate(factors):
        if u is None or mode == skip:
            continue
        out_blocks, out_layout = spmd_ttm(
            out_blocks, out_layout, u, mode, transpose=transpose
        )
    return out_blocks, out_layout


def spmd_gram(
    blocks: Sequence[np.ndarray],
    layout: BlockLayout,
    mode: int,
) -> np.ndarray:
    """Parallel Gram of the mode unfolding on real blocks.

    Redistribute to a 1-D column layout by allgathering the mode slabs
    inside each mode sub-communicator (every rank then holds full
    mode-``mode`` fibers for its share of columns), compute local
    Grams, and allreduce.  Returns the replicated ``n_j x n_j`` Gram.
    """
    grid = layout.grid
    full_mode = subcomm_apply(
        blocks,
        grid,
        mode,
        lambda bs: allgather_blocks(bs, axis=mode),
    )
    n = layout.shape[mode]
    zeros = np.zeros((n, n), dtype=blocks[0].dtype)
    zeros.setflags(write=False)
    local_grams = []
    for rank, coords in grid.iter_ranks():
        # After the allgather every rank of a mode sub-communicator
        # holds the same columns; only the coordinate-0 representative
        # contributes them to the global reduction (the shared zero
        # block is filler the reduction only reads — allreduce_blocks
        # copies before accumulating).
        if coords[mode] != 0:
            local_grams.append(zeros)
            continue
        # Shared GEMM kernel (repro.kernels via ops.gram): the same
        # local Gram mp_gram computes, keeping the layers bit-identical.
        local_grams.append(gram(full_mode[rank], mode))
    reduced = allreduce_blocks(local_grams)
    g = reduced[0]
    # In-place symmetrize, matching mp_gram operation for operation.
    g += g.T
    g *= 0.5
    return g


def spmd_sthosvd(
    x: np.ndarray,
    grid_dims: Sequence[int],
    *,
    ranks: Sequence[int] | None = None,
    eps: float | None = None,
) -> TuckerTensor:
    """STHOSVD executed end-to-end on per-rank blocks.

    Ground-truth SPMD version of
    :func:`repro.distributed.sthosvd.dist_sthosvd`: scatter, then per
    mode a block-parallel Gram, a replicated EVD, and a block-parallel
    TTM; the core is gathered at the end.
    """
    if ranks is None and eps is None:
        raise ValueError("spmd_sthosvd needs ranks or eps")
    if ranks is not None:
        ranks = check_ranks(x.shape, ranks)
    grid = ProcessorGrid(grid_dims)
    if grid.ndim != x.ndim:
        raise ValueError(f"{x.ndim}-way tensor needs a {x.ndim}-way grid")
    threshold_sq = (
        None
        if eps is None
        else (eps * float(np.linalg.norm(x.ravel()))) ** 2 / x.ndim
    )

    blocks, layout = scatter_tensor(x, grid)
    factors: list[np.ndarray] = []
    for mode in range(x.ndim):
        g = spmd_gram(blocks, layout, mode)
        # Replicated sequential EVD: every rank computes the same
        # factor from the allreduced Gram (TuckerMPI's scheme).
        sq_vals, vecs = gram_evd(g)
        if ranks is not None:
            r = ranks[mode]
        else:
            r = rank_from_spectrum(sq_vals, threshold_sq)
        u = np.ascontiguousarray(vecs[:, :r])
        factors.append(u)
        blocks, layout = spmd_ttm(blocks, layout, u, mode, transpose=True)

    core = gather_tensor(blocks, layout)
    return TuckerTensor(core=core, factors=factors)
