"""Elastic in-run failure recovery for the process-parallel drivers.

PR 3 made rank failure *detectable* (seeded faults, RankFailureError,
disk checkpoints + ``repro resume``); this module makes it
*survivable* without a shared filesystem.  Three pieces:

**Diskless buddy checkpointing** (:meth:`RecoveryManager.replicate`).
At every sweep boundary each rank serializes its
:class:`~repro.distributed.checkpoint.SweepCheckpoint`
(:meth:`~repro.distributed.checkpoint.SweepCheckpoint.to_bytes`) and
ring-exchanges it over the existing Transport: rank ``r`` sends to
``(r + buddy_offset) % size`` and holds the replica of
``(r - buddy_offset) % size``.  The exchange rides the raw
counter-neutral channel (like the shm free credits and the verifier's
control rounds), so the CollectiveRecord traces of an elastic run stay
bit-identical to a plain run's — replication is invisible to the
certified cost accounting.

**Failure agreement** (:meth:`RecoveryManager.on_failure`).  On a peer
death — :class:`~repro.vmpi.transport.TransportClosedError` in-band on
tcp, a launcher-posted revoke sentinel
(:class:`~repro.vmpi.transport.WorldRevokedError`) on shm — the
survivor revokes the world (ULFM-style: a revoke notice wakes every
peer still blocked on a *live* rank) and runs a bounded two-round
suspect-set exchange so survivors converge on the same failed set.
The round is best-effort by construction (a survivor that never
enters a collective cannot answer and is over-suspected); the
launcher's liveness view is the authoritative arbiter — a rank is
failed iff it posted neither a result nor a recovery report.
Transient stalls never reach this path: they surface as
:class:`~repro.vmpi.transport.CollectiveTimeoutError` and are retried
by the ``transient_retries``/``retry_backoff`` machinery; only a
closed transport or an explicit revoke — the permanent classification
— triggers recovery.

**Recovery policies** (:func:`run_elastic`), selected by
``CommConfig.recovery``:

* ``"restart"`` (default) — the PR-3 behavior: tear down, raise.
* ``"respawn"`` — relaunch the full-size world, every rank rehydrated
  from the buddy replica of the newest sweep boundary (injected as the
  drivers' ``resume`` argument).
* ``"shrink"`` — relaunch on *fewer OS processes*: each failed logical
  rank is hosted as an extra thread (own transport endpoint, own
  ``ProcessComm``) inside its buddy's process via ``run_spmd``'s
  ``host_map``.  The logical world size — and with it the processor
  grid, the block layout, every collective group, schedule, and
  reduction order — is exactly that of the original run, which is what
  makes the continuation *bit-identical*: mp_hooi results are not
  grid-invariant (reductions combine in group-rank order with
  grid-dependent blocking), so a true re-gridding could not reproduce
  the unfailed factors.

Both elastic policies resume from the last completed sweep boundary
(including an iteration-0 snapshot taken before the first sweep, so a
crash in sweep 1 is also covered) and produce factors bit-identical to
an unfailed run at the same world size — certified by
``tests/test_recovery.py`` against the PR-3 fault matrix on both
wires.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, replace

from repro.distributed.checkpoint import SweepCheckpoint
from repro.vmpi.mp_comm import (
    ELASTIC_POLICIES,
    CommConfig,
    RankFailureError,
    _flight_snapshot,
    run_spmd,
)
from repro.vmpi.transport import (
    CollectiveTimeoutError,
    TransportClosedError,
)

__all__ = [
    "RecoveryEvent",
    "RecoveryManager",
    "run_elastic",
    "shrink_host_map",
]

#: Tag kinds of the recovery control plane.  They ride the raw
#: counter-neutral transport channel (``_post`` / ``_recv_body``), a
#: namespace disjoint from collective tags ``(op_id, phase)``, control
#: tags ``("ctl", ...)``, and the shm free credits.
_BUDDY_TAG = "buddy"
_AGREE_TAG = "agree"


@dataclass
class RecoveryEvent:
    """One recovery episode, as observed by the orchestrator."""

    policy: str
    attempt: int
    failed: tuple[int, ...]
    reporters: tuple[int, ...]
    resumed_iteration: int
    source: str
    agree_seconds: float
    #: wall seconds of the continuation run (relaunch + remaining
    #: sweeps); filled in once that attempt returns.
    relaunch_seconds: float = -1.0
    #: rank -> FlightRing collected from the failed attempt — the
    #: flight-recorder events of the episode survive the respawn/
    #: shrink relaunch here (hosted ranks included: each gets its own
    #: comm and therefore its own ring).
    flight_records: dict | None = None
    #: the failed attempt's causal postmortem (or None).
    postmortem: object | None = None


class RecoveryManager:
    """Per-rank elastic recovery state, installed by ``ProcessComm``
    when ``CommConfig.recovery`` is ``respawn`` or ``shrink``.

    Holds the rank's own latest snapshot and the buddy replica it
    protects; on failure runs the revoke-and-agree round and builds
    the report the worker posts home.
    """

    def __init__(self, comm) -> None:
        self.comm = comm
        size = comm.size
        offset = int(comm.config.buddy_offset) % size
        if offset == 0:
            offset = 1 if size > 1 else 0
        self.buddy_offset = offset
        #: the rank holding *our* replica.
        self.buddy = (comm.rank + offset) % size
        #: the rank whose replica *we* hold.
        self.protects = (comm.rank - offset) % size
        self._seq = 0
        self.iteration = -1
        self.own_bytes: bytes | None = None
        self.replica_bytes: bytes | None = None

    # -- diskless buddy checkpointing ---------------------------------------

    def replicate(self, ck: SweepCheckpoint) -> None:
        """Ring-exchange this sweep boundary's checkpoint.

        Every rank calls this at the same program point (it pairs a
        non-blocking raw post with a blocking raw receive, so any
        ``buddy_offset`` ring completes without deadlock).  Factors
        are replicated across ranks, so each rank serializes its own
        complete state; what the exchange buys is *placement*: after a
        rank dies, its newest state is guaranteed to exist on a
        surviving process without any shared filesystem.
        """
        comm = self.comm
        t = comm._t
        self._seq += 1
        tag = (_BUDDY_TAG, self._seq)
        prof = comm.profiler
        if prof is not None:
            prof.begin("buddy_replicate", "kernel", phase="buddy_replicate")
        t0 = time.perf_counter()
        try:
            payload = ck.to_bytes()
            t._post(self.buddy, tag, payload)
            blob = t._recv_body(
                self.protects, tag, comm.config.collective_timeout
            )
            self.own_bytes = payload
            self.replica_bytes = blob
            self.iteration = int(ck.iteration)
            comm.note_event(
                "replicate",
                {"iteration": self.iteration, "buddy": self.buddy},
            )
        finally:
            if prof is not None:
                prof.end()
                prof.metrics.observe(
                    "buddy_replicate_seconds", time.perf_counter() - t0
                )

    # -- revoke and agree ---------------------------------------------------

    def on_failure(self, exc: BaseException) -> dict:
        """Revoke the world, agree on the failed set, build the report.

        Bounded: two fixed agreement rounds, each waiting at most
        ``CommConfig.agree_timeout`` per unreachable peer.  Every wire
        interaction is best-effort — a peer that cannot be reached is
        a suspect, never a hang.
        """
        comm = self.comm
        t = comm._t
        t0 = time.perf_counter()
        comm.note_event("recovery", repr(exc)[:120])
        prof = comm.profiler
        if prof is not None:
            prof.begin("recovery", "phase", phase="recovery")
        suspects: set[int] = set(getattr(exc, "failed_hint", ()) or ())
        suspects |= set(getattr(t, "_gone", ()))
        suspects |= set(t.revoked_hint)
        suspects.discard(comm.rank)
        # Survivors keep receiving during the agreement; the revoked
        # flag must not abort their own recovery waits.
        t._in_recovery = True
        # Wake peers still blocked on live ranks: without this, a
        # survivor two hops from the dead rank would wait out its full
        # collective timeout before noticing anything happened.
        t.post_revoke(frozenset(suspects))
        suspects |= set(t.revoked_hint)
        suspects.discard(comm.rank)
        t_agree = time.perf_counter()
        if prof is not None:
            prof.begin("agree", "phase", phase="agree")
        try:
            agreed = self._agree(suspects)
        finally:
            if prof is not None:
                prof.end()
        agree_seconds = time.perf_counter() - t_agree
        report = {
            "rank": comm.rank,
            "failed": sorted(agreed),
            "iteration": self.iteration,
            "replica": self.replica_bytes,
            "replica_from": self.protects,
            "own": self.own_bytes,
            "error": repr(exc),
            "agree_seconds": agree_seconds,
        }
        if prof is not None:
            prof.end()
            prof.metrics.observe("recovery_agree_seconds", agree_seconds)
            prof.metrics.observe(
                "recovery_seconds", time.perf_counter() - t0
            )
            prof.finalize_transport(t)
            report["profile"] = prof.rank_profile()
        report["flight"] = _flight_snapshot(comm)
        report["recovery_seconds"] = time.perf_counter() - t0
        return report

    def _agree(self, suspects: set[int]) -> set[int]:
        """Two-round suspect-set exchange (exchange, then re-exchange
        the unions).  With every survivor seeded the same hint — the
        common case on both wires, since the detector broadcasts its
        suspects in the revoke notice — both rounds complete at
        message latency; timeouts only arm for peers that really
        cannot answer, and those become suspects themselves."""
        comm = self.comm
        t = comm._t
        agreed = set(suspects)
        wait = max(0.05, float(comm.config.agree_timeout))
        for rnd in (1, 2):
            tag = (_AGREE_TAG, rnd)
            notice = sorted(agreed)
            for peer in range(comm.size):
                if peer == comm.rank or peer in agreed:
                    continue
                try:
                    t._post(peer, tag, notice)
                except (OSError, CollectiveTimeoutError):
                    agreed.add(peer)
            for peer in range(comm.size):
                if peer == comm.rank or peer in agreed:
                    continue
                try:
                    got = t._recv_body(peer, tag, wait)
                    agreed.update(int(r) for r in got)
                except (OSError, CollectiveTimeoutError):
                    agreed.add(peer)
            agreed.discard(comm.rank)
        return agreed


# ---------------------------------------------------------------------------
# the orchestrator
# ---------------------------------------------------------------------------


def shrink_host_map(
    host_map: Sequence[Sequence[int]] | None,
    failed: set[int],
    size: int,
    buddy_offset: int = 1,
) -> list[list[int]]:
    """The post-shrink process layout: failed logical ranks move in
    with their buddies.

    A process death orphans *all* its hosted ranks; each orphan walks
    the buddy ring (``+buddy_offset``) to the first logical rank still
    hosted by a surviving process and joins that process.  Raises
    :class:`RankFailureError` if no process survived.
    """
    hm = (
        [list(entry) for entry in host_map]
        if host_map is not None
        else [[r] for r in range(size)]
    )
    offset = buddy_offset % size or 1
    dead_procs = {
        pi for pi, hosted in enumerate(hm)
        if any(r in failed for r in hosted)
    }
    orphans = sorted(r for pi in dead_procs for r in hm[pi])
    keep = [hosted for pi, hosted in enumerate(hm) if pi not in dead_procs]
    if not keep:
        raise RankFailureError(
            f"shrink: every process died (failed ranks {sorted(failed)})",
            failed=sorted(failed),
        )
    owner = {r: hosted for hosted in keep for r in hosted}
    for r in orphans:
        target = (r + offset) % size
        while target not in owner:
            target = (target + offset) % size
        owner[target].append(r)
        owner[r] = owner[target]
    return keep


def _pick_snapshot(
    reports: dict[int, dict], failed: set[int]
) -> tuple[bytes | None, int, str]:
    """The newest replicated snapshot among the survivor reports.

    Prefers a buddy replica held *for* a failed rank (the protocol's
    reason to exist); falls back to any survivor's own snapshot of the
    same boundary (identical content — factors are replicated).
    """
    best_it = max(
        (int(rep.get("iteration", -1)) for rep in reports.values()),
        default=-1,
    )
    if best_it < 0:
        return None, -1, ""
    for r in sorted(reports):
        rep = reports[r]
        if (
            int(rep.get("iteration", -1)) == best_it
            and rep.get("replica") is not None
            and rep.get("replica_from") in failed
        ):
            return (
                rep["replica"],
                best_it,
                f"buddy replica of rank {rep['replica_from']} "
                f"held by rank {r}",
            )
    for r in sorted(reports):
        rep = reports[r]
        if (
            int(rep.get("iteration", -1)) == best_it
            and rep.get("own") is not None
        ):
            return rep["own"], best_it, f"own snapshot of rank {r}"
    return None, -1, ""


def run_elastic(
    fn: Callable[..., object],
    size: int,
    *args: object,
    resume_slot: int,
    timeout: float = 120.0,
    transport: str = "p2p",
    config: CommConfig | None = None,
    collective_timeout: float | None = None,
    profile_out: dict[int, object] | None = None,
    events_out: list[RecoveryEvent] | None = None,
    monitor: object | None = None,
    max_attempts: int | None = None,
) -> list[object]:
    """:func:`~repro.vmpi.mp_comm.run_spmd` with in-run recovery.

    Runs ``fn`` like ``run_spmd``; when the world fails under an
    elastic policy, picks the newest buddy replica from the survivor
    reports, injects it at ``args[resume_slot]`` (the driver's
    ``resume`` parameter), strips the ``fault_plan`` (a seeded crash
    must not re-fire in the continuation), and relaunches — full size
    for ``respawn``, survivors-host-the-dead (``host_map``) for
    ``shrink``.  Repeats until the run completes or ``max_attempts``
    (default: the world size) is exhausted; non-elastic configs and
    failures without recovery reports re-raise unchanged.

    ``events_out`` collects one :class:`RecoveryEvent` per episode
    (the benchmark and stats surfaces read these).
    """
    cfg = config or CommConfig()
    if cfg.recovery not in ELASTIC_POLICIES or size < 2:
        return run_spmd(
            fn, size, *args, timeout=timeout, transport=transport,
            config=cfg, collective_timeout=collective_timeout,
            profile_out=profile_out, monitor=monitor,
        )
    attempts = max_attempts if max_attempts is not None else size
    run_args = list(args)
    host_map: list[list[int]] | None = None
    event: RecoveryEvent | None = None
    for attempt in range(attempts):
        t0 = time.monotonic()
        try:
            out = run_spmd(
                fn, size, *run_args, timeout=timeout, transport=transport,
                config=cfg, collective_timeout=collective_timeout,
                profile_out=profile_out, monitor=monitor,
                host_map=host_map,
            )
            if event is not None:
                event.relaunch_seconds = time.monotonic() - t0
            return out
        except RankFailureError as exc:
            if event is not None:
                event.relaunch_seconds = time.monotonic() - t0
            reports = exc.recovery_reports
            if not reports or attempt == attempts - 1:
                raise
            failed = set(exc.failed_ranks)
            blob, resumed_it, source = _pick_snapshot(reports, failed)
            if blob is None:
                raise
            run_args[resume_slot] = SweepCheckpoint.from_bytes(blob)
            # The seeded fault already fired; re-arming it would crash
            # the continuation at the same op index forever.
            cfg = replace(cfg, fault_plan=None)
            if cfg.recovery == "shrink":
                host_map = shrink_host_map(
                    host_map, failed, size, cfg.buddy_offset
                )
            event = RecoveryEvent(
                policy=cfg.recovery,
                attempt=attempt,
                failed=tuple(sorted(failed)),
                reporters=tuple(sorted(reports)),
                resumed_iteration=resumed_it,
                source=source,
                agree_seconds=max(
                    (
                        float(rep.get("agree_seconds", 0.0))
                        for rep in reports.values()
                    ),
                    default=0.0,
                ),
                flight_records=dict(exc.flight_records),
                postmortem=exc.postmortem,
            )
            if events_out is not None:
                events_out.append(event)
    raise AssertionError("unreachable")  # pragma: no cover
