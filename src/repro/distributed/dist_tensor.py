"""Block-distributed tensor handle.

A :class:`DistTensor` pairs a global operand (a real ``ndarray`` or a
:class:`~repro.distributed.arrays.SymbolicArray`) with a processor grid,
its block layout, and the cost ledger every kernel charges.  The
per-rank blocks of a concrete tensor are *views* into the global array
(``local_block``), which the tests use to validate the layout and the
genuine scatter/gather data movement.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.distributed.arrays import SymbolicArray, is_concrete
from repro.distributed.layout import BlockLayout
from repro.vmpi.collectives import gather_cost
from repro.vmpi.cost import CostLedger
from repro.vmpi.grid import ProcessorGrid

__all__ = ["DistTensor"]


class DistTensor:
    """A (possibly symbolic) tensor distributed over a processor grid."""

    def __init__(
        self,
        data: np.ndarray | SymbolicArray,
        grid: ProcessorGrid,
        ledger: CostLedger,
    ):
        if grid.size != ledger.p:
            raise ValueError(
                f"grid has {grid.size} ranks but ledger models {ledger.p}"
            )
        self.data = data
        self.grid = grid
        self.ledger = ledger
        self.layout = BlockLayout(data.shape, grid)
        # Every materialized distributed tensor occupies its block on
        # each rank; the ledger tracks the peak for feasibility checks.
        ledger.note_memory(self.layout.max_local_size())

    # -- metadata ----------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return tuple(self.data.shape)

    @property
    def ndim(self) -> int:
        return len(self.data.shape)

    @property
    def size(self) -> int:
        return int(np.prod(self.data.shape))

    @property
    def concrete(self) -> bool:
        return is_concrete(self.data)

    # -- derived tensors ----------------------------------------------------

    def like(self, data: np.ndarray | SymbolicArray) -> "DistTensor":
        """New handle on the same grid/ledger with different global data."""
        return DistTensor(data, self.grid, self.ledger)

    # -- real data movement (concrete only) ---------------------------------

    def local_block(self, rank: int) -> np.ndarray:
        """View of the block owned by ``rank`` (concrete tensors only)."""
        if not self.concrete:
            raise TypeError("symbolic tensors have no blocks")
        coords = self.grid.coords(rank)
        return self.data[self.layout.local_slices(coords)]

    def all_blocks(self) -> list[np.ndarray]:
        """Views of every rank's block, in rank order."""
        return [self.local_block(r) for r in range(self.grid.size)]

    @classmethod
    def assemble(
        cls,
        blocks: Sequence[np.ndarray],
        shape: Sequence[int],
        grid: ProcessorGrid,
        ledger: CostLedger,
    ) -> "DistTensor":
        """Rebuild a global tensor from per-rank blocks (inverse of
        :meth:`all_blocks`); validates every block shape against the
        layout."""
        out = np.empty(tuple(shape), dtype=blocks[0].dtype)
        tensor = cls(out, grid, ledger)
        for rank, block in enumerate(blocks):
            coords = grid.coords(rank)
            sl = tensor.layout.local_slices(coords)
            if out[sl].shape != block.shape:
                raise ValueError(
                    f"rank {rank} block shape {block.shape} does not match "
                    f"layout {out[sl].shape}"
                )
            out[sl] = block
        return tensor

    def gather(self, phase: str = "core_comm") -> np.ndarray | SymbolicArray:
        """Gather the tensor onto one rank, charging the collective.

        Used by rank adaptation to collect the core for analysis (cost
        ``r^d`` words per iteration, §3.2).
        """
        words, msgs = gather_cost(self.size, self.grid.size)
        self.ledger.comm(phase, words, msgs)
        return self.data

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "concrete" if self.concrete else "symbolic"
        return (
            f"DistTensor({kind}, shape={self.shape}, grid={self.grid.dims})"
        )
