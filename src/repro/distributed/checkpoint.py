"""Versioned sweep-level checkpoints for the process-parallel drivers.

Long decompositions must not forfeit completed sweeps when a rank dies
(the fault model :mod:`repro.vmpi.faults` makes testable).  After each
outer iteration, rank 0 of :func:`~repro.distributed.mp_hooi.mp_hooi_dt`
/ :func:`~repro.distributed.mp_hooi.mp_rahosi_dt` — and after each
mode of :func:`~repro.distributed.mp_sthosvd.mp_sthosvd` — serializes
the replicated algorithm state into a single ``.npz`` file:

* a JSON *header* (format tag, version, algorithm, shape, grid,
  iteration counter, current ranks, engine factor versions, the
  rng bit-generator state, the input-tensor digest, and an ``extra``
  dict of driver-specific scalars) stored as a 0-d unicode array;
* the replicated factor matrices as ``factor0 .. factor{d-1}``;
* a SHA-256 *integrity digest* over the header (sans the digest field)
  and the raw factor bytes, verified on load.

Because the drivers keep factors replicated and the dimension-tree
cache is provably empty at iteration boundaries (every factor updates
every iteration, and each update evicts that mode's cached nodes),
this header is the *complete* inter-sweep state: a resumed run
re-roots the traversal at the input block and replays the remaining
iterations bit-identically to an uninterrupted one (asserted by
``tests/test_checkpoint.py`` with exact array equality).

Writes are atomic (temp file + ``os.replace``) so a crash mid-write
never corrupts the previous checkpoint.  All validation failures raise
:class:`~repro.core.errors.CheckpointError`.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core.errors import CheckpointError
from repro.core.rank_adaptive import IterationRecord

__all__ = [
    "CHECKPOINT_FORMAT",
    "CHECKPOINT_VERSION",
    "SweepCheckpoint",
    "decode_history",
    "encode_history",
    "tensor_digest",
]

CHECKPOINT_FORMAT = "repro-sweep-checkpoint"
CHECKPOINT_VERSION = 1


def tensor_digest(x: np.ndarray) -> str:
    """SHA-256 over an array's dtype, shape, and contiguous bytes.

    Stored in every checkpoint so ``resume_from=`` can refuse to
    continue against a different input tensor.
    """
    h = hashlib.sha256()
    h.update(str(x.dtype).encode())
    h.update(repr(tuple(x.shape)).encode())
    h.update(np.ascontiguousarray(x).tobytes())
    return h.hexdigest()


def encode_history(history: list[IterationRecord]) -> list[dict]:
    """JSON-able encoding of the RA-HOSI iteration history."""
    out = []
    for r in history:
        out.append(
            {
                "iteration": r.iteration,
                "ranks_used": list(r.ranks_used),
                "error": r.error,
                "satisfied": r.satisfied,
                "storage_size": r.storage_size,
                "seconds": r.seconds,
                "truncated_ranks": (
                    None
                    if r.truncated_ranks is None
                    else list(r.truncated_ranks)
                ),
                "truncated_error": r.truncated_error,
                "truncated_storage": r.truncated_storage,
            }
        )
    return out


def decode_history(encoded: list[dict]) -> list[IterationRecord]:
    """Inverse of :func:`encode_history`."""
    out = []
    for e in encoded:
        out.append(
            IterationRecord(
                iteration=int(e["iteration"]),
                ranks_used=tuple(int(r) for r in e["ranks_used"]),
                error=float(e["error"]),
                satisfied=bool(e["satisfied"]),
                storage_size=int(e["storage_size"]),
                seconds=float(e["seconds"]),
                truncated_ranks=(
                    None
                    if e["truncated_ranks"] is None
                    else tuple(int(r) for r in e["truncated_ranks"])
                ),
                truncated_error=e["truncated_error"],
                truncated_storage=e["truncated_storage"],
            )
        )
    return out


def _jsonable(obj: Any) -> Any:
    """Coerce numpy scalars/sequences into plain JSON types."""
    if isinstance(obj, dict):
        return {k: _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, np.integer):
        return int(obj)
    if isinstance(obj, np.floating):
        return float(obj)
    if isinstance(obj, np.bool_):
        return bool(obj)
    return obj


def _fsync_dir(dirname: str) -> None:
    """fsync a directory so a just-renamed entry survives a crash.

    Platforms without directory fds (Windows) simply skip: the rename
    is still atomic there, just not durability-ordered.
    """
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        fd = os.open(dirname, flags)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fs without dir-fsync
        pass
    finally:
        os.close(fd)


def _digest(header: dict, factors: list[np.ndarray]) -> str:
    """Integrity digest: header (digest field excluded) + factor bytes."""
    clean = {k: v for k, v in header.items() if k != "digest"}
    h = hashlib.sha256()
    h.update(
        json.dumps(clean, sort_keys=True, separators=(",", ":")).encode()
    )
    for u in factors:
        h.update(str(u.dtype).encode())
        h.update(repr(tuple(u.shape)).encode())
        h.update(np.ascontiguousarray(u).tobytes())
    return h.hexdigest()


@dataclass
class SweepCheckpoint:
    """Complete inter-sweep state of one process-parallel run.

    ``iteration`` counts *completed* outer iterations (HOOI/RA-HOSI)
    or completed modes (STHOSVD); a resumed run continues at
    ``iteration + 1``.  ``versions`` restores the dimension-tree
    engine's factor-version counters so contraction signatures line up
    with an uninterrupted run; ``rng_state`` restores the replicated
    generator RA-HOSI's ``expand_factor`` consumes.  ``extra`` holds
    driver-specific JSON-able state (history, convergence flags,
    per-iteration TTM counts, the truncation threshold, ...).
    """

    algorithm: str
    iteration: int
    shape: tuple[int, ...]
    grid_dims: tuple[int, ...]
    ranks: tuple[int, ...]
    factors: list[np.ndarray]
    versions: list[int] = field(default_factory=list)
    rng_state: dict | None = None
    x_digest: str = ""
    extra: dict = field(default_factory=dict)

    def _header(self) -> dict:
        return {
            "format": CHECKPOINT_FORMAT,
            "version": CHECKPOINT_VERSION,
            "algorithm": self.algorithm,
            "iteration": int(self.iteration),
            "shape": list(self.shape),
            "grid_dims": list(self.grid_dims),
            "ranks": list(self.ranks),
            "n_factors": len(self.factors),
            "versions": [int(v) for v in self.versions],
            "rng_state": _jsonable(self.rng_state),
            "x_digest": self.x_digest,
            "extra": _jsonable(self.extra),
        }

    def to_bytes(self) -> bytes:
        """The checkpoint as one self-verifying ``.npz`` byte string.

        The same encoding :meth:`save` writes to disk; the elastic
        recovery layer ships these bytes to a buddy rank over the
        Transport instead of a shared filesystem (diskless
        checkpointing), and :meth:`from_bytes` integrity-checks them on
        rehydration exactly like :meth:`load` does for files.
        """
        header = self._header()
        header["digest"] = _digest(header, self.factors)
        arrays = {
            f"factor{i}": np.ascontiguousarray(u)
            for i, u in enumerate(self.factors)
        }
        arrays["header"] = np.array(json.dumps(header))
        buf = io.BytesIO()
        np.savez(buf, **arrays)
        return buf.getvalue()

    def save(self, path: str | os.PathLike) -> str:
        """Atomically and durably write the checkpoint.

        Write-to-temp + fsync + ``os.replace`` + directory fsync: a
        reader never observes a torn file, and once this returns the
        new checkpoint survives a crash of the whole machine, not just
        of this process.  Returns the final path.
        """
        path = os.fspath(path)
        payload = self.to_bytes()
        tmp = f"{path}.tmp.{os.getpid()}"
        try:
            with open(tmp, "wb") as fh:
                fh.write(payload)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
            # The file fsync above makes the *contents* durable, but the
            # rename itself lives in the directory: without a directory
            # fsync a crash right after os.replace can roll the entry
            # back to the previous checkpoint — or, for a first write,
            # to no file at all — despite save() having returned.
            _fsync_dir(os.path.dirname(path) or ".")
        except OSError as exc:
            raise CheckpointError(
                f"could not write checkpoint {path!r}: {exc}"
            ) from exc
        finally:
            if os.path.exists(tmp):  # pragma: no cover - replace raced
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
        return path

    @classmethod
    def from_bytes(cls, data: bytes) -> "SweepCheckpoint":
        """Decode and integrity-check :meth:`to_bytes` output."""
        return cls._parse(io.BytesIO(data), "<bytes>")

    @classmethod
    def load(cls, path: str | os.PathLike) -> "SweepCheckpoint":
        """Read and integrity-check a checkpoint."""
        path = os.fspath(path)
        return cls._parse(path, repr(path))

    @classmethod
    def _parse(cls, source, label: str) -> "SweepCheckpoint":
        try:
            with np.load(source, allow_pickle=False) as data:
                if "header" not in data:
                    raise CheckpointError(
                        f"{label} is not a repro checkpoint "
                        "(missing header)"
                    )
                header = json.loads(str(data["header"][()]))
                n = int(header.get("n_factors", 0))
                factors = [data[f"factor{i}"] for i in range(n)]
        except CheckpointError:
            raise
        except Exception as exc:
            raise CheckpointError(
                f"could not read checkpoint {label}: {exc}"
            ) from exc
        if header.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"{label}: unknown checkpoint format "
                f"{header.get('format')!r}"
            )
        if header.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"{label}: checkpoint version {header.get('version')} "
                f"unsupported (expected {CHECKPOINT_VERSION})"
            )
        stored = header.get("digest", "")
        if _digest(header, factors) != stored:
            raise CheckpointError(
                f"{label}: integrity digest mismatch — the checkpoint "
                "is corrupted or was modified"
            )
        return cls(
            algorithm=header["algorithm"],
            iteration=int(header["iteration"]),
            shape=tuple(int(n) for n in header["shape"]),
            grid_dims=tuple(int(g) for g in header["grid_dims"]),
            ranks=tuple(int(r) for r in header["ranks"]),
            factors=factors,
            versions=[int(v) for v in header["versions"]],
            rng_state=header["rng_state"],
            x_digest=header["x_digest"],
            extra=header["extra"],
        )

    def validate_resume(
        self,
        *,
        algorithm: str,
        shape: tuple[int, ...],
        grid_dims: tuple[int, ...],
        x_digest: str | None = None,
    ) -> None:
        """Refuse resumes against a different run configuration."""
        if self.algorithm != algorithm:
            raise CheckpointError(
                f"checkpoint was written by {self.algorithm!r}, cannot "
                f"resume with {algorithm!r}"
            )
        if tuple(self.shape) != tuple(shape):
            raise CheckpointError(
                f"checkpoint tensor shape {tuple(self.shape)} does not "
                f"match input shape {tuple(shape)}"
            )
        if tuple(self.grid_dims) != tuple(grid_dims):
            raise CheckpointError(
                f"checkpoint grid {tuple(self.grid_dims)} does not "
                f"match requested grid {tuple(grid_dims)}"
            )
        if (
            x_digest is not None
            and self.x_digest
            and self.x_digest != x_digest
        ):
            raise CheckpointError(
                "checkpoint input-tensor digest does not match the "
                "given tensor — resuming would silently mix runs"
            )
