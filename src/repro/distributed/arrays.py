"""Symbolic (shape-only) arrays and concrete/symbolic dispatch helpers.

The pure cost simulation of the strong-scaling experiments never needs
tensor *values* — only shapes.  :class:`SymbolicArray` carries a shape
and dtype; the ``any_*`` helpers run the real kernel on ``ndarray``
inputs and propagate shapes on symbolic ones, so the distributed
algorithms are written once and work in both modes.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.tensor.ops import contract_all_but_mode, gram, ttm
from repro.tensor.validation import check_mode

__all__ = [
    "SymbolicArray",
    "is_concrete",
    "any_shape",
    "any_ttm",
    "any_gram",
    "any_contract",
]

ArrayLike = "np.ndarray | SymbolicArray"


class SymbolicArray:
    """An array that exists only as a shape (no storage, no values)."""

    __slots__ = ("shape", "dtype")

    def __init__(
        self, shape: Sequence[int], dtype: np.dtype | type = np.float32
    ):
        self.shape = tuple(int(s) for s in shape)
        if any(s < 0 for s in self.shape):
            raise ValueError(f"negative extent in {self.shape}")
        self.dtype = np.dtype(dtype)

    @property
    def ndim(self) -> int:
        return len(self.shape)

    @property
    def size(self) -> int:
        return math.prod(self.shape)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SymbolicArray(shape={self.shape}, dtype={self.dtype})"


def is_concrete(x: object) -> bool:
    """True when ``x`` holds actual data (a NumPy array)."""
    return isinstance(x, np.ndarray)


def any_shape(x: np.ndarray | SymbolicArray) -> tuple[int, ...]:
    """Shape of a concrete or symbolic array, as a plain tuple."""
    return tuple(x.shape)


def any_ttm(
    x: np.ndarray | SymbolicArray,
    u: np.ndarray | SymbolicArray,
    mode: int,
    *,
    transpose: bool = False,
) -> np.ndarray | SymbolicArray:
    """TTM that executes on concrete inputs, propagates shape otherwise."""
    if is_concrete(x) and is_concrete(u):
        return ttm(x, u, mode, transpose=transpose)
    mode = check_mode(len(x.shape), mode)
    rows, cols = (u.shape[1], u.shape[0]) if transpose else u.shape
    if cols != x.shape[mode]:
        raise ValueError(
            f"factor contracts {cols} entries but mode {mode} has extent "
            f"{x.shape[mode]}"
        )
    out_shape = list(x.shape)
    out_shape[mode] = rows
    return SymbolicArray(out_shape, x.dtype)


def any_gram(
    x: np.ndarray | SymbolicArray, mode: int
) -> np.ndarray | SymbolicArray:
    """Unfolding Gram matrix; symbolic inputs yield a symbolic result."""
    if is_concrete(x):
        return gram(x, mode)
    mode = check_mode(len(x.shape), mode)
    n = x.shape[mode]
    return SymbolicArray((n, n), x.dtype)


def any_contract(
    a: np.ndarray | SymbolicArray,
    b: np.ndarray | SymbolicArray,
    mode: int,
) -> np.ndarray | SymbolicArray:
    """All-but-one-mode contraction with symbolic fall-through."""
    if is_concrete(a) and is_concrete(b):
        return contract_all_but_mode(a, b, mode)
    mode = check_mode(len(a.shape), mode)
    return SymbolicArray((a.shape[mode], b.shape[mode]), a.dtype)
