"""Distributed Tucker algorithms on the virtual-MPI substrate.

Execution model (see DESIGN.md): numerics run *semantically globally*
(one exact NumPy op per kernel, independent of the simulated rank
count), while every kernel charges the
:class:`~repro.vmpi.cost.CostLedger` the per-rank flop, memory and
communication costs implied by the block layout — so simulated time
scales with the processor grid exactly as the paper's Tables 1-2
predict.  Kernels also accept :class:`SymbolicArray` operands (shape
only, no data), which lets the strong-scaling experiments use the
paper's full tensor dimensions (3750^3, 560^4) without allocating them.
"""

from repro.distributed.arrays import SymbolicArray, is_concrete
from repro.distributed.checkpoint import (
    SweepCheckpoint,
    tensor_digest,
)
from repro.distributed.dist_tensor import DistTensor
from repro.distributed.hooi import (
    DistHOOIStats,
    DistributedTreeEngine,
    dist_hooi,
)
from repro.distributed.layout import BlockLayout
from repro.distributed.rank_adaptive import (
    DistRankAdaptiveStats,
    dist_rank_adaptive_hooi,
)
from repro.distributed.mp_hooi import (
    MPHooiStats,
    MPRankAdaptiveStats,
    MPTreeEngine,
    mp_hooi_dt,
    mp_hosi,
    mp_rahosi_dt,
)
from repro.distributed.mp_sthosvd import mp_sthosvd
from repro.distributed.recovery import (
    RecoveryEvent,
    RecoveryManager,
    run_elastic,
)
from repro.distributed.spmd import (
    gather_tensor,
    scatter_tensor,
    spmd_gram,
    spmd_multi_ttm,
    spmd_sthosvd,
    spmd_ttm,
)
from repro.distributed.sthosvd import DistSTHOSVDStats, dist_sthosvd

__all__ = [
    "gather_tensor",
    "mp_hooi_dt",
    "mp_hosi",
    "mp_rahosi_dt",
    "mp_sthosvd",
    "scatter_tensor",
    "spmd_gram",
    "spmd_multi_ttm",
    "spmd_sthosvd",
    "spmd_ttm",
    "BlockLayout",
    "DistHOOIStats",
    "DistRankAdaptiveStats",
    "DistSTHOSVDStats",
    "DistTensor",
    "DistributedTreeEngine",
    "MPHooiStats",
    "MPRankAdaptiveStats",
    "MPTreeEngine",
    "RecoveryEvent",
    "RecoveryManager",
    "SweepCheckpoint",
    "SymbolicArray",
    "dist_hooi",
    "dist_rank_adaptive_hooi",
    "dist_sthosvd",
    "is_concrete",
    "run_elastic",
    "tensor_digest",
]
