"""STHOSVD with *real* process parallelism.

Runs TuckerMPI's STHOSVD algorithm on the mini-MPI of
:mod:`repro.vmpi.mp_comm`: every rank is an OS process holding only its
block; Grams, truncating TTMs, and the final core assembly move data
exclusively through the communicator, via the shared executed kernels
of :mod:`repro.distributed.kernels` (which phase-tag each collective).
Functionally equivalent to the sequential algorithm (tested) — this is
the closest thing to the paper's MPI execution an offline single
machine can offer.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.errors import CheckpointError
from repro.core.tucker import TuckerTensor
from repro.distributed.checkpoint import SweepCheckpoint, tensor_digest
from repro.distributed.kernels import (
    check_factor_orthogonality,
    mp_gather_core,
    mp_gram,
    mp_ttm,
)
from repro.distributed.layout import BlockLayout
from repro.linalg.evd import gram_evd, rank_from_spectrum
from repro.tensor.validation import check_ranks
from repro.distributed.recovery import run_elastic
from repro.vmpi.grid import ProcessorGrid
from repro.vmpi.mp_comm import CommConfig, ProcessComm

__all__ = ["mp_sthosvd"]


def _rank_program(
    comm: ProcessComm,
    block: np.ndarray,
    grid_dims: tuple[int, ...],
    shape: tuple[int, ...],
    ranks: tuple[int, ...] | None,
    threshold_sq: float | None,
    x_digest: str,
    checkpoint_path: str | None,
    resume: SweepCheckpoint | None,
    orthogonality_tol: float | None,
) -> tuple[np.ndarray | None, list[np.ndarray] | None]:
    """The per-rank SPMD program (runs inside a worker process)."""
    grid = ProcessorGrid(grid_dims)
    coords = grid.coords(comm.rank)
    layout = BlockLayout(shape, grid)
    factors: list[np.ndarray] = []
    start_mode = 0

    if resume is not None:
        # The checkpoint stores the already-chosen factors; replaying
        # their (deterministic) truncating TTMs from the input block
        # rebuilds this rank's partially-truncated block exactly —
        # the Grams and EVDs of the completed modes are skipped.
        start_mode = resume.iteration
        for mode, u in enumerate(resume.factors):
            u = np.ascontiguousarray(u)
            factors.append(u)
            block, layout = mp_ttm(
                comm, block, layout, coords, u, mode, phase="ttm"
            )

    def _boundary_ck(completed: int) -> SweepCheckpoint:
        return SweepCheckpoint(
            algorithm="mp_sthosvd",
            iteration=completed,
            shape=shape,
            grid_dims=grid_dims,
            ranks=tuple(f.shape[1] for f in factors),
            factors=factors,
            x_digest=x_digest,
            extra={
                "world_size": comm.size,
                "backend": comm._t.kind,
            },
        )

    mgr = comm.recovery_mgr
    if mgr is not None:
        # Starting-point snapshot (mode 0 or the resume point): a
        # crash inside the very first mode must also be recoverable.
        mgr.replicate(_boundary_ck(start_mode))
    prof = comm.profiler
    for mode in range(start_mode, len(shape)):
        comm.note_progress(
            mode=mode,
            total=len(shape),
            ranks=tuple(f.shape[1] for f in factors),
        )
        if prof is not None:
            # STHOSVD's outer loop is its "sweep": one pass per mode.
            prof.begin(f"mode {mode}", "sweep")
        # --- parallel Gram (allgather + coord-0 local Gram + allreduce)
        # and replicated EVD + rank choice (every rank identical).
        g = mp_gram(comm, block, layout, coords, mode, phase="gram")
        if prof is not None:
            prof.begin("gram:evd", "kernel", "gram")
        sq_vals, vecs = gram_evd(g)
        if prof is not None:
            prof.end()
        if ranks is not None:
            r = ranks[mode]
        else:
            r = rank_from_spectrum(sq_vals, threshold_sq)
        u = np.ascontiguousarray(vecs[:, :r])
        if orthogonality_tol is not None:
            check_factor_orthogonality(
                u,
                mode=mode,
                rank=comm.rank,
                tol=orthogonality_tol,
                phase="gram",
            )
        factors.append(u)

        # --- parallel truncating TTM: local partial with the factor
        # rows of this rank's slab, reduce-scatter over the mode comm.
        block, layout = mp_ttm(
            comm, block, layout, coords, u, mode, phase="ttm"
        )

        if mgr is not None and mode + 1 < len(shape):
            mgr.replicate(_boundary_ck(mode + 1))
        if (
            checkpoint_path is not None
            and comm.rank == 0
            and mode + 1 < len(shape)
        ):
            if prof is not None:
                prof.begin("checkpoint", "kernel")
            _boundary_ck(mode + 1).save(checkpoint_path)
            comm.note_event("checkpoint", {"mode": mode + 1})
            if prof is not None:
                prof.metrics.observe(
                    "checkpoint_write_seconds", prof.end()
                )
        if prof is not None:
            prof.end()

    # --- gather the core blocks at rank 0.
    core = mp_gather_core(comm, block, layout)
    if comm.rank != 0:
        return None, None
    return core, factors


def mp_sthosvd(
    x: np.ndarray,
    grid_dims: Sequence[int],
    *,
    ranks: Sequence[int] | None = None,
    eps: float | None = None,
    timeout: float = 120.0,
    transport: str = "p2p",
    comm_config: CommConfig | None = None,
    collective_timeout: float | None = None,
    checkpoint_path: str | None = None,
    resume_from: str | SweepCheckpoint | None = None,
    orthogonality_tol: float | None = None,
    profile_out: dict[int, object] | None = None,
    monitor: object | None = None,
) -> TuckerTensor:
    """Run STHOSVD on real processes (one per grid cell).

    Parameters mirror :func:`repro.distributed.spmd.spmd_sthosvd`; the
    difference is execution: ``prod(grid_dims)`` OS processes, data
    moving only through the mini-MPI collectives.  ``transport`` and
    ``comm_config`` select and tune the communication layer (see
    :func:`repro.vmpi.mp_comm.run_spmd`); ``collective_timeout`` is a
    shorthand for the per-collective deadline of
    :class:`~repro.vmpi.mp_comm.CommConfig`.  The default deterministic
    peer-to-peer transport reduces in rank order, so the result is
    bit-identical to :func:`~repro.distributed.spmd.spmd_sthosvd`.

    ``checkpoint_path`` makes rank 0 overwrite a
    :class:`~repro.distributed.checkpoint.SweepCheckpoint` after every
    non-final mode; ``resume_from`` restarts from one, bit-identically
    to an uninterrupted run.  ``orthogonality_tol`` enables the
    per-mode factor drift guard.  With ``comm_config.profile``,
    ``profile_out`` receives each rank's
    :class:`~repro.observability.spans.RankProfile`.  ``monitor``
    attaches a live telemetry monitor
    (:class:`~repro.observability.telemetry.TelemetryMonitor`): ranks
    publish per-mode progress out of band while the sweep runs.
    """
    if ranks is None and eps is None:
        raise ValueError("mp_sthosvd needs ranks or eps")
    if ranks is not None:
        ranks = check_ranks(x.shape, ranks)
    grid = ProcessorGrid(grid_dims)
    if grid.ndim != x.ndim:
        raise ValueError(f"{x.ndim}-way tensor needs a {x.ndim}-way grid")
    threshold_sq = (
        None
        if eps is None
        else (eps * float(np.linalg.norm(x.ravel()))) ** 2 / x.ndim
    )

    resume: SweepCheckpoint | None = None
    x_dig = ""
    if resume_from is not None or checkpoint_path is not None:
        x_dig = tensor_digest(x)
    if resume_from is not None:
        resume = (
            resume_from
            if isinstance(resume_from, SweepCheckpoint)
            else SweepCheckpoint.load(resume_from)
        )
        resume.validate_resume(
            algorithm="mp_sthosvd",
            shape=tuple(x.shape),
            grid_dims=tuple(grid.dims),
            x_digest=x_dig,
        )
        if resume.iteration >= x.ndim:
            raise CheckpointError(
                f"checkpoint already covers all {resume.iteration} "
                "modes; nothing to resume"
            )

    layout = BlockLayout(x.shape, grid)
    # Scatter: per-rank blocks are passed as each worker's argument.
    blocks = [
        np.ascontiguousarray(x[layout.local_slices(coords)])
        for _, coords in grid.iter_ranks()
    ]

    # run_spmd passes identical *args to every rank; blocks differ per
    # rank, so wrap the program to index by comm.rank.
    outs = run_elastic(
        _dispatch,
        grid.size,
        blocks,
        tuple(grid.dims),
        tuple(x.shape),
        None if ranks is None else tuple(ranks),
        threshold_sq,
        x_dig,
        checkpoint_path,
        resume,
        orthogonality_tol,
        resume_slot=7,
        timeout=timeout,
        transport=transport,
        config=comm_config,
        collective_timeout=collective_timeout,
        profile_out=profile_out,
        monitor=monitor,
    )
    core, factors = outs[0]
    assert core is not None and factors is not None
    return TuckerTensor(core=core, factors=factors)


def _dispatch(
    comm: ProcessComm,
    blocks: list[np.ndarray],
    grid_dims: tuple[int, ...],
    shape: tuple[int, ...],
    ranks: tuple[int, ...] | None,
    threshold_sq: float | None,
    x_digest: str,
    checkpoint_path: str | None,
    resume: SweepCheckpoint | None,
    orthogonality_tol: float | None,
) -> tuple[np.ndarray | None, list[np.ndarray] | None]:
    return _rank_program(
        comm,
        blocks[comm.rank],
        grid_dims,
        shape,
        ranks,
        threshold_sq,
        x_digest,
        checkpoint_path,
        resume,
        orthogonality_tol,
    )
