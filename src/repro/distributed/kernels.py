"""Distributed computational kernels with cost charging.

Each kernel (a) performs the exact global numerics when the operand is
concrete (or propagates shapes when symbolic) and (b) charges the cost
ledger the per-rank-maximum flops, memory traffic and communication of
the TuckerMPI parallel algorithm it models.  The charged quantities are
precisely the leading-order terms of the paper's Tables 1 and 2, plus
the lower-order terms (message latencies, redistributions) the paper
identifies but drops.

Ledger phase names::

    ttm / ttm_comm            TTMs (tree, direct, truncation, core)
    gram / gram_comm          Gram-matrix formation + its allreduce
    redistribute_comm         1-D relayout before a Gram (all-to-all)
    evd                       sequential symmetric eigendecomposition
    subspace / subspace_comm  Alg. 5 lines 2-3 (+ the Z reduce/bcast)
    qrcp                      sequential QR with column pivoting
    core_analysis / core_comm eq. (3) analysis + core gather

The second half of this module holds the *executed* counterparts: the
same parallel schedules run on the mini-MPI of
:mod:`repro.vmpi.mp_comm`, one block per OS process, each kernel
phase-tagging its collectives (the ``phase`` field of
:class:`~repro.vmpi.trace.CollectiveRecord`) so traced per-phase
collective counts can be certified against the closed-form schedules.
Their numerics are copied verbatim from the in-process SPMD layer
(:mod:`repro.distributed.spmd_hooi`), so with the deterministic
transport the mp drivers are bit-identical to it.
"""

from __future__ import annotations

import numpy as np

from repro.core.errors import NumericalFaultError
from repro.distributed.arrays import (
    SymbolicArray,
    any_contract,
    any_gram,
    any_ttm,
    is_concrete,
)
from repro.distributed.dist_tensor import DistTensor
from repro.distributed.layout import BlockLayout
from repro.linalg.evd import gram_evd, rank_from_spectrum
from repro.linalg.qrcp import qrcp
from repro.linalg.subspace import subspace_iteration_llsv
from repro.tensor.ops import contract_all_but_mode, gram, ttm
from repro.vmpi.collectives import (
    allreduce_cost,
    alltoall_cost,
    bcast_cost,
    reduce_scatter_cost,
)
from repro.vmpi.mp_comm import ProcessComm

__all__ = [
    "check_factor_orthogonality",
    "dist_ttm",
    "dist_multi_ttm",
    "dist_gram",
    "dist_gram_evd_llsv",
    "dist_subspace_llsv",
    "dist_core_analysis_cost",
    "mp_ttm",
    "mp_gram",
    "mp_subspace_llsv",
    "mp_gram_evd_llsv",
    "mp_gather_core",
]


def check_factor_orthogonality(
    u: np.ndarray,
    *,
    mode: int,
    rank: int | None = None,
    tol: float = 1e-8,
    phase: str = "",
) -> float:
    """Guard rail: ``max |UᵀU − I|`` must stay below ``tol``.

    Factor columns leaving every LLSV kernel are orthonormal by
    construction; drift beyond ``tol`` means the factor was corrupted
    in flight (bit-flips, a broken reduction) and every later TTM
    would silently amplify the damage.  Raises
    :class:`~repro.core.errors.NumericalFaultError` naming the
    detecting rank, the algorithm phase, and the tensor mode; returns
    the measured drift otherwise.
    """
    r = u.shape[1]
    gram = u.conj().T @ u
    drift = float(np.max(np.abs(gram - np.eye(r, dtype=gram.dtype))))
    if not np.isfinite(drift) or drift > tol:
        where = f"rank {rank}: " if rank is not None else ""
        raise NumericalFaultError(
            f"{where}mode-{mode} factor lost orthogonality "
            f"(drift {drift:.3e} > tol {tol:.1e}"
            + (f", phase {phase!r})" if phase else ")"),
            rank=rank,
            phase=phase,
            mode=mode,
        )
    return drift


def dist_ttm(
    dt: DistTensor,
    u: np.ndarray | SymbolicArray,
    mode: int,
    *,
    transpose: bool = True,
    phase: str = "ttm",
) -> DistTensor:
    """Parallel TTM (local GEMM + reduce-scatter over the mode comm).

    Each rank multiplies the factor rows matching its slab against its
    local block (``2 * r_out * |block|`` flops), producing a partial
    result of the full output-mode extent that is reduce-scattered over
    the ``P_j`` ranks of the mode sub-communicator — the
    ``(r^j n^{d-j} / P)(P_j - 1)`` bandwidth term of Table 2.
    """
    out_rows = u.shape[1] if transpose else u.shape[0]
    local = dt.layout.max_local_size()
    mode_share = dt.layout.mode_share(mode)
    partial = out_rows * (local // max(mode_share, 1))

    dt.ledger.compute(
        phase, flops=2.0 * out_rows * local, mem_words=float(local + partial)
    )
    # Resident during the step: the input block plus the pre-reduction
    # partial result (the intermediate blow-up TuckerMPI also pays).
    dt.ledger.note_memory(float(local + partial))
    p_j = dt.grid.mode_size(mode)
    words, msgs = reduce_scatter_cost(float(partial), p_j)
    dt.ledger.comm(f"{phase}_comm", words, msgs)

    return dt.like(any_ttm(dt.data, u, mode, transpose=transpose))


def dist_multi_ttm(
    dt: DistTensor,
    factors: list[np.ndarray | SymbolicArray],
    *,
    skip: int | None = None,
    transpose: bool = True,
    phase: str = "ttm",
) -> DistTensor:
    """All-but-``skip`` multi-TTM, contracted in increasing mode order.

    Matches the direct (unmemoized) HOOI subiteration the paper analyzes
    — the first TTM dominates, so one subiteration costs
    ``~2 r n^d / P``.
    """
    out = dt
    for mode, u in enumerate(factors):
        if u is None or mode == skip:
            continue
        out = dist_ttm(out, u, mode, transpose=transpose, phase=phase)
    return out


def dist_gram(
    dt: DistTensor, mode: int, *, phase: str = "gram"
) -> np.ndarray | SymbolicArray:
    """Parallel Gram of the mode unfolding (TuckerMPI's LLSV front end).

    Redistribute to a 1-D column layout (all-to-all over the mode comm;
    free when ``P_j = 1``), form local Grams, then allreduce the
    ``n_j x n_j`` result.
    """
    n = dt.shape[mode]
    p = dt.grid.size
    p_j = dt.grid.mode_size(mode)
    local = dt.layout.max_local_size()

    words, msgs = alltoall_cost(float(local), p_j)
    dt.ledger.comm("redistribute_comm", words, msgs)

    cols = -(-int(np.prod(dt.shape)) // n // p)  # ceil(size / n / p)
    dt.ledger.compute(
        phase,
        flops=2.0 * n * n * cols,
        mem_words=float(n * cols + n * n),
    )
    # Resident: the original block, its 1-D-relayout copy, and the
    # replicated n x n Gram.
    dt.ledger.note_memory(float(local + n * cols + n * n))
    words, msgs = allreduce_cost(float(n) * n, p)
    dt.ledger.comm(f"{phase}_comm", words, msgs)

    return any_gram(dt.data, mode)


def dist_gram_evd_llsv(
    dt: DistTensor,
    mode: int,
    *,
    rank: int | None = None,
    threshold_sq: float | None = None,
) -> tuple[np.ndarray | SymbolicArray, np.ndarray | None]:
    """LLSV via parallel Gram + redundant sequential EVD.

    The EVD is charged at one core's flop rate — the sequential
    bottleneck (``O(n^3)`` in Tables 1-2) that caps STHOSVD and
    Gram-based HOOI scaling in Fig. 2.

    Returns ``(factor, squared-singular-value spectrum | None)``.
    """
    if rank is None and threshold_sq is None:
        raise ValueError("provide rank and/or threshold_sq")
    g = dist_gram(dt, mode)
    n = dt.shape[mode]
    dt.ledger.sequential(
        "evd", dt.ledger.machine.evd_flops_per_n3 * float(n) ** 3
    )
    if is_concrete(g):
        sq_vals, vecs = gram_evd(g)
        out_rank = (
            rank if rank is not None else rank_from_spectrum(sq_vals, threshold_sq)
        )
        if threshold_sq is not None and rank is not None:
            out_rank = min(rank, rank_from_spectrum(sq_vals, threshold_sq))
        return np.ascontiguousarray(vecs[:, :out_rank]), sq_vals
    if rank is None:
        raise ValueError(
            "error-specified LLSV needs concrete data (no spectrum in "
            "symbolic mode)"
        )
    return SymbolicArray((n, rank), dt.data.dtype), None


def dist_subspace_llsv(
    dt: DistTensor,
    mode: int,
    u_prev: np.ndarray | SymbolicArray,
    rank: int,
    *,
    n_iters: int = 1,
) -> np.ndarray | SymbolicArray:
    """LLSV via one (or more) parallel subspace-iteration sweeps (§3.4).

    Per sweep: a TTM forming the core unfolding ``G`` (reduce-scatter,
    ``(r^d / P)(P_j - 1)`` words), the all-but-one contraction forming
    ``Z = Y_(j) G_(j)^T`` (lower-order all-to-all + a reduce-broadcast
    of the ``n x r`` result, the ``2 n r`` term of Table 2), and a
    redundant sequential QRCP of ``Z`` — ``O(n r^2)`` flops instead of
    the EVD's ``O(n^3)``, which is why HOSI keeps scaling in Fig. 2.
    """
    n = dt.shape[mode]
    width = u_prev.shape[1]
    if rank > width:
        raise ValueError(f"rank {rank} exceeds subspace width {width}")
    p = dt.grid.size
    p_j = dt.grid.mode_size(mode)
    local = dt.layout.max_local_size()
    mode_share = dt.layout.mode_share(mode)
    machine = dt.ledger.machine

    for _ in range(n_iters):
        # Line 2: G = U^T Y_(j), a TTM in `mode`.
        partial = width * (local // max(mode_share, 1))
        dt.ledger.compute(
            "subspace",
            flops=2.0 * width * local,
            mem_words=float(local + partial),
        )
        words, msgs = reduce_scatter_cost(float(partial), p_j)
        dt.ledger.comm("subspace_comm", words, msgs)

        # Line 3: Z = Y_(j) G_(j)^T, contraction over all modes but one.
        words, msgs = alltoall_cost(float(local) / max(p_j, 1), p_j)
        dt.ledger.comm("subspace_comm", words, msgs)
        dt.ledger.compute(
            "subspace",
            flops=2.0 * width * local,
            mem_words=float(local + n * width),
        )
        # Reduce + broadcast of the n x width contraction result so every
        # rank can run the QRCP redundantly (the paper's 2nr words).
        r_words, r_msgs = bcast_cost(float(n) * width, p)
        dt.ledger.comm(
            "subspace_comm", 2.0 * r_words, 2.0 * r_msgs
        )

        # Line 4: sequential QRCP of the n x width matrix.
        dt.ledger.sequential(
            "qrcp", machine.qrcp_flops_per_mn2 * float(n) * width**2
        )

    if is_concrete(dt.data) and is_concrete(u_prev):
        return subspace_iteration_llsv(
            dt.data, mode, u_prev, rank, n_iters=n_iters
        )
    return SymbolicArray((n, rank), dt.data.dtype)


def dist_core_analysis_cost(core: DistTensor) -> None:
    """Charge the gather + sequential prefix-sum analysis of §3.2.

    The core (``r^d`` words) is gathered to one rank (``core_comm``) and
    analyzed sequentially: ``d`` cumulative-sum passes plus the storage
    grid and argmin, ~``(2d + 3) r^d`` flops (``core_analysis``).
    """
    core.gather("core_comm")
    d = core.ndim
    core.ledger.sequential(
        "core_analysis", float((2 * d + 3)) * core.size
    )


# ---------------------------------------------------------------------------
# executed kernels on the mini-MPI (one block per OS process)
# ---------------------------------------------------------------------------


class _comm_phase:
    """Tag collectives issued in this block with an algorithm phase.

    With ``CommConfig(profile=True)`` the block is additionally
    bracketed by a phase-category span, so the profiler's timeline
    mirrors the trace's phase attribution with zero extra plumbing at
    the call sites."""

    def __init__(self, comm: ProcessComm, phase: str) -> None:
        self._comm = comm
        self._phase = phase
        self._prev = ""

    def __enter__(self) -> None:
        self._prev = self._comm.phase
        self._comm.phase = self._phase
        if self._comm.profiler is not None:
            self._comm.profiler.begin(self._phase, "phase", self._phase)

    def __exit__(self, *exc: object) -> None:
        if self._comm.profiler is not None:
            self._comm.profiler.end()
        self._comm.phase = self._prev


# Non-root members of a mode group contribute an all-zero block to the
# reduction collectives.  Those blocks are pure protocol filler — the
# collective only ever *reads* them (every reduce path copies before
# accumulating, and send paths never mutate payloads) — so one
# read-only instance per (shape, dtype) is shared instead of calloc'ing
# a fresh n x n block per mode per sweep.
_ZEROS_CACHE: dict[tuple[tuple[int, ...], np.dtype], np.ndarray] = {}


def _zeros_contribution(
    shape: tuple[int, ...], dtype: np.dtype | type
) -> np.ndarray:
    key = (tuple(int(s) for s in shape), np.dtype(dtype))
    out = _ZEROS_CACHE.get(key)
    if out is None:
        out = np.zeros(key[0], dtype=key[1])
        out.setflags(write=False)
        _ZEROS_CACHE[key] = out
    return out


def mp_ttm(
    comm: ProcessComm,
    block: np.ndarray,
    layout: BlockLayout,
    coords: tuple[int, ...],
    u: np.ndarray,
    mode: int,
    *,
    phase: str = "ttm",
) -> tuple[np.ndarray, BlockLayout]:
    """Block-parallel truncating TTM (transpose direction).

    The local GEMM uses the factor rows matching this rank's slab; the
    partial result (full output-mode extent) is reduce-scattered over
    the mode sub-communicator — the same schedule :func:`dist_ttm`
    charges.  Identical numerics to
    :func:`repro.distributed.spmd.spmd_ttm`.
    """
    grid = layout.grid
    group = tuple(grid.mode_comm_ranks(mode, coords))
    a, b = layout.bounds[mode][coords[mode]]
    prof = comm.profiler
    if prof is not None:
        # GEMM (r x local_n) @ (local_n x rest): local_n*rest = block.size.
        prof.metrics.inc("ttm_flops", 2.0 * u.shape[1] * block.size)
        prof.begin("ttm:gemm", "kernel", phase)
    # Contiguous row slice, transposed inside the kernel: u[a:b] is a
    # zero-copy C-contiguous view and BLAS consumes the transpose
    # natively, whereas spelling it u.T[:, a:b] hands the GEMM a
    # column-strided operand.  Same values, same bits (parity-fuzzed).
    partial = ttm(block, u[a:b], mode, transpose=True)
    if prof is not None:
        prof.end()
    with _comm_phase(comm, phase):
        out = comm.reduce_scatter(partial, axis=mode, group=group)
    new_shape = list(layout.shape)
    new_shape[mode] = u.shape[1]
    return out, BlockLayout(new_shape, grid)


def mp_gram(
    comm: ProcessComm,
    block: np.ndarray,
    layout: BlockLayout,
    coords: tuple[int, ...],
    mode: int,
    *,
    phase: str = "gram",
) -> np.ndarray:
    """Parallel Gram of the mode unfolding, replicated to every rank.

    Allgather the mode slabs inside the mode sub-communicator, local
    Gram at the coordinate-0 member (zeros elsewhere), global
    allreduce, then symmetrize — exactly the schedule of
    :func:`repro.distributed.spmd.spmd_gram`.
    """
    grid = layout.grid
    group = tuple(grid.mode_comm_ranks(mode, coords))
    n = layout.shape[mode]
    prof = comm.profiler
    with _comm_phase(comm, phase):
        full_mode = comm.allgather(block, axis=mode, group=group)
        if prof is not None:
            prof.begin("gram:local", "kernel", phase)
        if coords[mode] == 0:
            # Shared GEMM kernel (repro.kernels via ops.gram): the same
            # local Gram every execution layer computes, so the layers
            # stay mutually bit-identical.
            local_gram = gram(full_mode, mode)
        else:
            local_gram = _zeros_contribution((n, n), block.dtype)
        if prof is not None:
            prof.end()
        g = comm.allreduce(local_gram)
    # In-place symmetrize: one internal buffer for the aliased add
    # instead of two explicit n x n temporaries.  The allreduce output
    # is freshly allocated and exactly symmetric already (a rank-order
    # sum of exactly symmetric local Grams), so this is a bitwise no-op
    # guard for the downstream eigensolver, as before.
    g += g.T
    g *= 0.5
    return g


def mp_subspace_llsv(
    comm: ProcessComm,
    block: np.ndarray,
    layout: BlockLayout,
    coords: tuple[int, ...],
    mode: int,
    u_prev: np.ndarray,
    rank: int,
    *,
    n_iters: int = 1,
    phase: str = "llsv",
) -> np.ndarray:
    """Subspace-iteration LLSV on real blocks (Alg. 5, §3.4).

    Per sweep: ``G = U^T Y`` as a block-parallel TTM, both operands
    redistributed to full-mode layout within the mode sub-communicator,
    the nonsymmetric contraction ``Z = Y_(j) G_(j)^T`` at the
    coordinate-0 member, a global allreduce, and a replicated QRCP.
    Mirrors :func:`repro.distributed.spmd_hooi.spmd_subspace_llsv`
    operation for operation (bit-identical with the deterministic
    transport).  All collectives — including the ``G``-forming
    reduce-scatter — are tagged ``phase``, so TTM-phase traces count
    only the sweep/tree TTMs.
    """
    grid = layout.grid
    group = tuple(grid.mode_comm_ranks(mode, coords))
    n = layout.shape[mode]
    width = u_prev.shape[1]
    if rank > width:
        raise ValueError(f"rank {rank} exceeds subspace width {width}")

    q = u_prev
    prof = comm.profiler
    for _ in range(n_iters):
        g_block, _ = mp_ttm(
            comm, block, layout, coords, q, mode, phase=phase
        )
        with _comm_phase(comm, phase):
            y_full = comm.allgather(block, axis=mode, group=group)
            g_full = comm.allgather(g_block, axis=mode, group=group)
            if prof is not None:
                prof.begin("llsv:contract", "kernel", phase)
            if coords[mode] == 0:
                z_local = contract_all_but_mode(y_full, g_full, mode)
            else:
                z_local = _zeros_contribution((n, width), block.dtype)
            if prof is not None:
                prof.end()
            z = comm.allreduce(z_local)
        if prof is not None:
            prof.begin("llsv:qrcp", "kernel", phase)
        q, _, _ = qrcp(z)
        if prof is not None:
            prof.end()
    return np.ascontiguousarray(q[:, :rank])


def mp_gram_evd_llsv(
    comm: ProcessComm,
    block: np.ndarray,
    layout: BlockLayout,
    coords: tuple[int, ...],
    mode: int,
    rank: int,
    *,
    phase: str = "llsv",
) -> np.ndarray:
    """Rank-specified Gram+EVD LLSV on real blocks (replicated EVD)."""
    g = mp_gram(comm, block, layout, coords, mode, phase=phase)
    prof = comm.profiler
    if prof is not None:
        prof.begin("llsv:evd", "kernel", phase)
    _, vecs = gram_evd(g)
    if prof is not None:
        prof.end()
    return np.ascontiguousarray(vecs[:, :rank])


def mp_gather_core(
    comm: ProcessComm,
    block: np.ndarray,
    layout: BlockLayout,
    *,
    root: int = 0,
    phase: str = "core_comm",
) -> np.ndarray | None:
    """Gather the core blocks and assemble the full core at ``root``.

    Non-root ranks return ``None``.
    """
    grid = layout.grid
    with _comm_phase(comm, phase):
        gathered = comm.gather(block, root=root)
    if comm.rank != root:
        return None
    prof = comm.profiler
    if prof is not None:
        prof.begin("core:assemble", "kernel", phase)
    core = np.empty(layout.shape, dtype=block.dtype)
    for rank_id, piece in enumerate(gathered):
        core[layout.local_slices(grid.coords(rank_id))] = piece
    if prof is not None:
        prof.end()
    return core
