"""Roofline analysis of the Tucker kernels.

The paper's §5 attributes RA-HOSI-DT's below-peak local performance to
arithmetic intensity: once the smallest GEMM dimension drops from ``n``
to ``r``, the kernels run at memory bandwidth instead of peak flops.
These helpers compute per-kernel intensities and the machine's balance
point so the effect can be tabulated and asserted.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.vmpi.machine import MachineModel, perlmutter_like

__all__ = ["KernelPoint", "machine_balance", "kernel_point", "KERNELS"]

#: kernel name -> (flops, memory words) as functions of (n, r, d, P)
KERNELS = ("sthosvd_gram", "hooi_ttm", "subspace_contraction")


@dataclass(frozen=True)
class KernelPoint:
    """One kernel's position on the roofline."""

    kernel: str
    intensity: float  # flops per word of memory traffic
    flops: float
    words: float
    memory_bound: bool
    attainable_flops: float  # flops/s at the given concurrency


def machine_balance(machine: MachineModel | None = None, p: int = 1) -> float:
    """Machine balance (flops/word): kernels below it are memory-bound."""
    machine = machine or perlmutter_like()
    return machine.flop_rate / machine.bw_per_rank(p)


def kernel_point(
    kernel: str,
    n: int,
    r: int,
    d: int,
    *,
    p: int = 1,
    machine: MachineModel | None = None,
) -> KernelPoint:
    """Roofline coordinates of one leading kernel.

    Supported kernels (leading-order per-rank models):

    * ``"sthosvd_gram"`` — first-mode Gram: ``2 n^{d+1}/P`` flops over
      ``n^d/P`` words (intensity ``2n``; compute-bound for real ``n``);
    * ``"hooi_ttm"`` — dominant tree TTM: ``2 r n^d/P`` flops over
      ``~n^d/P`` words (intensity ``2r``; memory-bound for small ``r`` —
      the paper's single-node saturation);
    * ``"subspace_contraction"`` — ``2 r^d n/P`` flops over
      ``~ r^{d-1} n/P`` words (intensity ``2r``).
    """
    machine = machine or perlmutter_like()
    nf, rf = float(n), float(r)
    if kernel == "sthosvd_gram":
        flops = 2.0 * nf ** (d + 1) / p
        words = nf**d / p
    elif kernel == "hooi_ttm":
        flops = 2.0 * rf * nf**d / p
        words = nf**d / p
    elif kernel == "subspace_contraction":
        flops = 2.0 * rf**d * nf / p
        words = rf ** (d - 1) * nf / p
    else:
        raise ValueError(f"unknown kernel {kernel!r}; pick from {KERNELS}")
    intensity = flops / words
    balance = machine_balance(machine, p)
    bw = machine.bw_per_rank(p)
    attainable = min(machine.flop_rate, intensity * bw)
    return KernelPoint(
        kernel=kernel,
        intensity=intensity,
        flops=flops,
        words=words,
        memory_bound=intensity < balance,
        attainable_flops=attainable,
    )
