"""Processor-grid auto-tuning by simulated time.

The paper hand-searches grids per algorithm and reports the fastest;
this utility automates the search: simulate the candidate grids on the
machine model (symbolically — milliseconds, no data) and return the
winner.  Exposed through the CLI as ``Processor grid dims = auto``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.analysis.scaling import run_variant
from repro.distributed.arrays import SymbolicArray
from repro.vmpi.grid import candidate_grids, suggested_grids
from repro.vmpi.machine import MachineModel, perlmutter_like

__all__ = ["GridChoice", "autotune_grid"]


@dataclass(frozen=True)
class GridChoice:
    """Result of a grid search."""

    grid: tuple[int, ...]
    seconds: float
    #: every candidate evaluated, grid -> simulated seconds
    candidates: dict[tuple[int, ...], float]


def autotune_grid(
    shape: Sequence[int],
    ranks: Sequence[int],
    p: int,
    algorithm: str = "hosi-dt",
    *,
    machine: MachineModel | None = None,
    exhaustive: bool = False,
    max_iters: int = 2,
    dtype: np.dtype | type = np.float32,
) -> GridChoice:
    """Pick the fastest processor grid for a configuration.

    Parameters
    ----------
    shape, ranks:
        Problem description (rank-specified; for error-specified runs
        pass the expected output ranks — cost depends only on shapes).
    p:
        Rank count.
    algorithm:
        One of :data:`repro.analysis.scaling.ALGORITHMS`.
    machine:
        Machine model (default Perlmutter-like).
    exhaustive:
        Search *all* ordered factorizations of ``p`` instead of the
        heuristic candidates.  Exponential in the exponent of ``p``;
        fine for tests and small ``p``.
    max_iters:
        HOOI iterations to simulate.
    dtype:
        Symbolic dtype.
    """
    import math

    machine = machine or perlmutter_like()
    d = len(shape)
    grids = (
        candidate_grids(p, d)
        if exhaustive
        else suggested_grids(p, d, shape)
    )
    x = SymbolicArray(shape, dtype)
    evaluated: dict[tuple[int, ...], float] = {}
    for grid in grids:
        # Drop oversubscribed grids and the degraded fallback grids
        # suggested_grids emits when no exact factorization fits.
        if math.prod(grid) != p or any(
            g > n for g, n in zip(grid, shape)
        ):
            continue
        _, stats = run_variant(
            x, algorithm, grid,
            ranks=ranks, machine=machine, max_iters=max_iters,
        )
        evaluated[tuple(grid)] = stats.simulated_seconds
    if not evaluated:
        raise ValueError(
            f"no feasible grid for p={p} on shape {tuple(shape)}"
        )
    best = min(evaluated, key=evaluated.get)
    return GridChoice(
        grid=best, seconds=evaluated[best], candidates=evaluated
    )
