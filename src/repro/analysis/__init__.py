"""Experiment harness: cost formulas, scaling runner, reporting.

These modules regenerate the paper's tables and figures (see the
per-experiment index in DESIGN.md and the measured results in
EXPERIMENTS.md).
"""

from repro.analysis.breakdown import DISPLAY_GROUPS, group_breakdown
from repro.analysis.csv_io import (
    read_scaling_csv,
    write_dataset_csv,
    write_scaling_csv,
)
from repro.analysis.memory import (
    max_cubic_dim,
    required_nodes,
    tensor_fits,
)
from repro.analysis.costs import (
    hooi_iteration_flops,
    hooi_iteration_words,
    ra_hosi_dt_flops,
    sthosvd_flops,
    sthosvd_words,
)
from repro.analysis.experiments import (
    DatasetExperiment,
    RankStart,
    rank_start_variants,
    run_dataset_experiment,
)
from repro.analysis.metrics import compression_ratio, relative_size
from repro.analysis.reporting import format_series, format_table
from repro.analysis.scaling import (
    ALGORITHMS,
    ScalingPoint,
    default_grid,
    run_variant,
    strong_scaling,
)

__all__ = [
    "ALGORITHMS",
    "DISPLAY_GROUPS",
    "DatasetExperiment",
    "RankStart",
    "ScalingPoint",
    "compression_ratio",
    "default_grid",
    "format_series",
    "format_table",
    "group_breakdown",
    "hooi_iteration_flops",
    "hooi_iteration_words",
    "max_cubic_dim",
    "ra_hosi_dt_flops",
    "read_scaling_csv",
    "required_nodes",
    "tensor_fits",
    "write_dataset_csv",
    "write_scaling_csv",
    "rank_start_variants",
    "relative_size",
    "run_dataset_experiment",
    "run_variant",
    "sthosvd_flops",
    "sthosvd_words",
    "strong_scaling",
]
