"""Strong-scaling experiment runner (paper Figs. 2-3).

For each core count and algorithm, every suggested processor grid is
simulated and the fastest is reported — the paper's methodology ("we
test all algorithms on a variety of grids ... and report the fastest
observed running times").  Symbolic tensors make sweeps at the paper's
full dimensions (3750^3, 560^4) instantaneous.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.core.errors import ConfigError
from repro.core.hooi import variant_options
from repro.distributed.arrays import SymbolicArray
from repro.distributed.hooi import DistHOOIStats, dist_hooi
from repro.distributed.sthosvd import DistSTHOSVDStats, dist_sthosvd
from repro.vmpi.grid import suggested_grids
from repro.vmpi.machine import MachineModel, perlmutter_like

__all__ = [
    "ALGORITHMS",
    "ScalingPoint",
    "default_grid",
    "run_variant",
    "strong_scaling",
    "weak_scaling",
]

#: Algorithms compared in Fig. 2, paper's legend names.
ALGORITHMS: tuple[str, ...] = (
    "sthosvd",
    "hooi",
    "hooi-dt",
    "hosi",
    "hosi-dt",
)


@dataclass
class ScalingPoint:
    """Best-grid result for one (algorithm, core count) pair."""

    algorithm: str
    p: int
    grid: tuple[int, ...]
    seconds: float
    breakdown: dict[str, float]


def default_grid(
    p: int, shape: Sequence[int], algorithm: str
) -> tuple[int, ...]:
    """Single heuristic grid for an algorithm (no search).

    STHOSVD prefers ``P_1 = 1``; dimension-tree variants prefer
    ``P_1 = P_d = 1`` (paper §3/§4).  Falls back to the first suggested
    grid when the preference is infeasible.
    """
    d = len(shape)
    grids = suggested_grids(p, d, shape)
    algorithm = algorithm.lower()

    def pref(g: tuple[int, ...]) -> tuple[int, ...]:
        if algorithm == "sthosvd":
            return (g[0] != 1, max(g))
        if algorithm.endswith("-dt"):
            return (g[0] != 1 or g[-1] != 1, g[0] != 1, max(g))
        return (max(g),)

    return min(grids, key=pref)


def run_variant(
    x: np.ndarray | SymbolicArray,
    algorithm: str,
    grid_dims: Sequence[int],
    *,
    ranks: Sequence[int] | None = None,
    eps: float | None = None,
    machine: MachineModel | None = None,
    max_iters: int = 2,
    seed: int | None = 0,
) -> tuple[object, DistSTHOSVDStats | DistHOOIStats]:
    """Dispatch one named algorithm on the simulator."""
    algorithm = algorithm.lower()
    if algorithm == "sthosvd":
        return dist_sthosvd(
            x, grid_dims, machine=machine, eps=eps, ranks=ranks
        )
    if ranks is None:
        raise ConfigError("HOOI variants are rank-specified")
    opts = variant_options(algorithm, max_iters=max_iters, seed=seed)
    return dist_hooi(x, ranks, grid_dims, machine=machine, options=opts)


def strong_scaling(
    shape: Sequence[int],
    ranks: Sequence[int],
    p_values: Sequence[int],
    *,
    algorithms: Sequence[str] = ALGORITHMS,
    machine: MachineModel | None = None,
    dtype: np.dtype | type = np.float32,
    max_iters: int = 2,
    data: np.ndarray | None = None,
) -> list[ScalingPoint]:
    """Strong-scaling sweep; returns one best-grid point per (algo, P).

    Parameters
    ----------
    shape, ranks:
        Tensor dimensions and (rank-specified) target ranks.
    p_values:
        Simulated core counts.
    algorithms:
        Subset of :data:`ALGORITHMS`.
    machine:
        Machine model (default Perlmutter-like).
    dtype:
        Dtype of the symbolic tensor (paper: float32 for synthetic).
    max_iters:
        HOOI iterations (paper: 2).
    data:
        Optional concrete tensor; when omitted a
        :class:`SymbolicArray` is used (costs only).
    """
    machine = machine or perlmutter_like()
    x: np.ndarray | SymbolicArray = (
        data if data is not None else SymbolicArray(shape, dtype)
    )
    points: list[ScalingPoint] = []
    for algo in algorithms:
        for p in p_values:
            points.append(
                _best_point(x, algo, p, ranks, machine, max_iters)
            )
    return points


def _best_point(
    x: np.ndarray | SymbolicArray,
    algo: str,
    p: int,
    ranks: Sequence[int],
    machine: MachineModel,
    max_iters: int,
) -> ScalingPoint:
    best: ScalingPoint | None = None
    for grid in suggested_grids(p, len(x.shape), x.shape):
        _, stats = run_variant(
            x, algo, grid, ranks=ranks, machine=machine, max_iters=max_iters
        )
        if best is None or stats.simulated_seconds < best.seconds:
            best = ScalingPoint(
                algorithm=algo,
                p=p,
                grid=tuple(grid),
                seconds=stats.simulated_seconds,
                breakdown=dict(stats.breakdown),
            )
    assert best is not None
    return best


def weak_scaling(
    base_shape: Sequence[int],
    base_ranks: Sequence[int],
    p_values: Sequence[int],
    *,
    algorithms: Sequence[str] = ALGORITHMS,
    machine: MachineModel | None = None,
    dtype: np.dtype | type = np.float32,
    max_iters: int = 2,
) -> list[ScalingPoint]:
    """Weak-scaling sweep (extension beyond the paper's evaluation).

    The per-rank problem size is held constant: at ``p`` ranks every
    mode extent is scaled by ``p**(1/d)`` (rounded), so the global
    tensor grows linearly with ``p``.  Ranks are kept fixed (the
    compression-target regime).  Flat curves indicate perfect weak
    scaling; the sequential EVD term makes STHOSVD's curve *grow* with
    ``p`` on large single modes.
    """
    machine = machine or perlmutter_like()
    d = len(base_shape)
    points: list[ScalingPoint] = []
    for algo in algorithms:
        for p in p_values:
            factor = float(p) ** (1.0 / d)
            shape = tuple(
                max(int(round(n * factor)), r)
                for n, r in zip(base_shape, base_ranks)
            )
            x = SymbolicArray(shape, dtype)
            points.append(
                _best_point(x, algo, p, base_ranks, machine, max_iters)
            )
    return points
