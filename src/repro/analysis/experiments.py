"""Error-specified dataset experiments (paper §4.2, Figs. 4-9).

Protocol (mirroring the paper):

1. run error-specified STHOSVD at each tolerance; its output ranks are
   the "perfect" starting ranks;
2. run RA-HOSI-DT from perfect, overshot (+25%) and undershot (-25%)
   starting ranks, capped at 3 iterations, recording error / relative
   size / simulated time after every iteration;
3. compare time-to-threshold and compression against the STHOSVD
   baseline.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.metrics import relative_size
from repro.core.rank_adaptive import IterationRecord, RankAdaptiveOptions
from repro.distributed.rank_adaptive import (
    DistRankAdaptiveStats,
    dist_rank_adaptive_hooi,
)
from repro.distributed.sthosvd import dist_sthosvd
from repro.vmpi.grid import suggested_grids
from repro.vmpi.machine import MachineModel, perlmutter_like

__all__ = [
    "RankStart",
    "rank_start_variants",
    "BaselineResult",
    "AdaptiveResult",
    "DatasetExperiment",
    "run_dataset_experiment",
]

#: The paper's three tolerance regimes.
TOLERANCES: tuple[float, ...] = (0.1, 0.05, 0.01)


@dataclass(frozen=True)
class RankStart:
    """A named starting-rank choice for RA-HOSI-DT."""

    kind: str  # "perfect" | "over" | "under"
    ranks: tuple[int, ...]


def rank_start_variants(
    perfect: Sequence[int], shape: Sequence[int]
) -> list[RankStart]:
    """Perfect / +25% overshoot / -25% undershoot starting ranks."""
    perfect = tuple(int(r) for r in perfect)
    over = tuple(
        min(math.ceil(1.25 * r), n) for r, n in zip(perfect, shape)
    )
    under = tuple(max(math.floor(0.75 * r), 1) for r in perfect)
    return [
        RankStart("perfect", perfect),
        RankStart("over", over),
        RankStart("under", under),
    ]


@dataclass
class BaselineResult:
    """Error-specified STHOSVD baseline at one tolerance."""

    eps: float
    ranks: tuple[int, ...]
    error: float
    seconds: float
    relative_size: float
    grid: tuple[int, ...]
    breakdown: dict[str, float]


@dataclass
class AdaptiveResult:
    """RA-HOSI-DT run from one starting-rank choice at one tolerance."""

    eps: float
    start: RankStart
    stats: DistRankAdaptiveStats
    grid: tuple[int, ...]

    @property
    def history(self) -> list[IterationRecord]:
        return self.stats.history

    def time_to_threshold(self) -> float | None:
        """Simulated seconds until the error budget was first met."""
        if self.stats.first_satisfied is None:
            return None
        return sum(
            self.stats.iteration_seconds[: self.stats.first_satisfied]
        )

    def final_relative_size(self, shape: Sequence[int]) -> float | None:
        """Relative size of the last truncated iterate (None if never)."""
        for rec in reversed(self.history):
            if rec.truncated_ranks is not None:
                return relative_size(shape, rec.truncated_ranks)
        return None


@dataclass
class DatasetExperiment:
    """All runs for one dataset (one Fig. 4/6/8 + Fig. 5/7/9 pair)."""

    name: str
    shape: tuple[int, ...]
    cores: int
    baselines: dict[float, BaselineResult] = field(default_factory=dict)
    adaptive: list[AdaptiveResult] = field(default_factory=list)

    def adaptive_for(self, eps: float, kind: str) -> AdaptiveResult:
        """Look up the RA run for one (tolerance, starting-rank) pair."""
        for run in self.adaptive:
            if run.eps == eps and run.start.kind == kind:
                return run
        raise KeyError(f"no RA run for eps={eps}, start={kind}")


def _best_sthosvd(
    x: np.ndarray,
    eps: float,
    cores: int,
    machine: MachineModel,
) -> BaselineResult:
    best: BaselineResult | None = None
    for grid in suggested_grids(cores, x.ndim, x.shape):
        tucker, stats = dist_sthosvd(x, grid, machine=machine, eps=eps)
        assert tucker is not None
        cand = BaselineResult(
            eps=eps,
            ranks=tucker.ranks,
            error=tucker.relative_error_via_core(
                float(np.linalg.norm(x.ravel()))
            ),
            seconds=stats.simulated_seconds,
            relative_size=relative_size(x.shape, tucker.ranks),
            grid=tuple(grid),
            breakdown=dict(stats.breakdown),
        )
        if best is None or cand.seconds < best.seconds:
            best = cand
    assert best is not None
    return best


def run_dataset_experiment(
    name: str,
    x: np.ndarray,
    cores: int,
    *,
    tolerances: Sequence[float] = TOLERANCES,
    machine: MachineModel | None = None,
    max_iters: int = 3,
    alpha: float = 1.5,
    seed: int | None = 0,
) -> DatasetExperiment:
    """Run the full §4.2 protocol on one dataset surrogate.

    Parameters
    ----------
    name:
        Label for reporting.
    x:
        The dataset tensor.
    cores:
        Simulated core count (paper: 1024 Miranda, 128 HCCI, 2048 SP).
    tolerances:
        Error tolerances (paper: 0.1 / 0.05 / 0.01).
    machine, max_iters, alpha, seed:
        Simulation and Alg. 3 knobs.
    """
    machine = machine or perlmutter_like()
    exp = DatasetExperiment(name=name, shape=x.shape, cores=cores)

    # One grid for all RA runs: the DT-friendly suggestion.
    from repro.analysis.scaling import default_grid

    ra_grid = default_grid(cores, x.shape, "hosi-dt")

    for eps in tolerances:
        base = _best_sthosvd(x, eps, cores, machine)
        exp.baselines[eps] = base
        for start in rank_start_variants(base.ranks, x.shape):
            opts = RankAdaptiveOptions(
                alpha=alpha,
                max_iters=max_iters,
                stop_at_threshold=False,
                seed=seed,
            )
            _, stats = dist_rank_adaptive_hooi(
                x, eps, start.ranks, ra_grid, machine=machine, options=opts
            )
            exp.adaptive.append(
                AdaptiveResult(eps=eps, start=start, stats=stats, grid=ra_grid)
            )
    return exp
